(* Incremental deployment (paper §2.4): two DIP domains joined across
   a DIP-agnostic IPv4 domain by tunneling, plus the DHCP/BGP-style
   FN bootstrap that tells a host what it may use on a path.

     dune exec examples/incremental_deployment.exe *)

open Dip_core
module Sim = Dip_netsim.Sim
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string

let () =
  let registry = Ops.default_registry () in

  (* --- FN bootstrap across ASes (§2.3/§2.4) --- *)
  print_endline "== FN discovery ==";
  let world = Bootstrap.create () in
  let full = Registry.supported registry in
  Bootstrap.add_as world 100 full;
  Bootstrap.add_as world 200 [ Opkey.F_32_match; Opkey.F_source ] (* legacy-ish *);
  Bootstrap.add_as world 300 full;
  Bootstrap.link world 100 200;
  Bootstrap.link world 200 300;
  Printf.printf "AS100 offers %d FNs to attached hosts\n"
    (List.length (Bootstrap.local_offer world 100));
  (match Bootstrap.path_supported world ~src:100 ~dst:300 with
  | Some keys ->
      Printf.printf "usable on the path 100->200->300: %s\n"
        (String.concat ", " (List.map Opkey.name keys));
      (match Bootstrap.plan ~required:[ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ] ~offered:keys with
      | Ok () -> print_endline "OPT available end-to-end"
      | Error missing ->
          Printf.printf "OPT NOT available end-to-end; AS200 lacks: %s\n"
            (String.concat ", " (List.map Opkey.name missing)))
  | None -> print_endline "unreachable");

  (* --- Tunneling across the legacy domain --- *)
  print_endline "\n== DIP-in-IPv4 tunnel across the legacy core ==";
  let sim = Sim.create () in

  (* Left DIP border router: encapsulates toward the right border. *)
  let left_tunnel_src = v4 "198.51.100.1" in
  let right_tunnel_dst = v4 "198.51.100.2" in
  let left_border _sim ~now:_ ~ingress:_ pkt =
    let tunneled =
      Compat.encapsulate_ipv4 ~src:left_tunnel_src ~dst:right_tunnel_dst pkt
    in
    [ Sim.Forward (1, tunneled) ]
  in

  (* Legacy core: a plain IPv4 router that has no idea about DIP. *)
  let legacy_table = Dip_tables.Fib.V4.create () in
  Dip_ip.Ipv4.add_route legacy_table (Ipaddr.Prefix.of_string "198.51.100.2/32") 1;
  let legacy = Dip_ip.Ipv4.handler legacy_table in

  (* Right border: decapsulates and processes the inner DIP packet. *)
  let renv = Env.create ~name:"right-dip" () in
  Dip_ip.Ipv4.add_route renv.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  let right_border sim_ ~now ~ingress pkt =
    match Compat.decapsulate_ipv4 pkt with
    | Error e -> [ Sim.Drop e ]
    | Ok inner -> Engine.handler ~registry renv sim_ ~now ~ingress inner
  in

  (* Destination host. *)
  let henv = Env.create ~name:"server" () in
  henv.Env.local_v4 <- Some (v4 "10.7.7.7");

  let lb = Sim.add_node sim ~name:"left-border" left_border in
  let core = Sim.add_node sim ~name:"legacy-core" legacy in
  let rb = Sim.add_node sim ~name:"right-border" right_border in
  let server = Sim.add_node sim ~name:"server" (Engine.handler ~registry henv) in
  Sim.connect sim (lb, 1) (core, 0);
  Sim.connect sim (core, 1) (rb, 0);
  Sim.connect sim (rb, 1) (server, 0);

  let dip_packet =
    Realize.ipv4 ~src:(v4 "10.1.0.1") ~dst:(v4 "10.7.7.7")
      ~payload:"through the legacy core" ()
  in
  Sim.inject sim ~at:0.0 ~node:lb ~port:0 dip_packet;
  Sim.run sim;

  (match Sim.consumed sim with
  | [ (node, _, pkt) ] ->
      Printf.printf "inner DIP packet delivered at %s; payload %S\n"
        (Sim.node_name sim node)
        (Packet.payload (Result.get_ok (Packet.parse pkt)));
      assert (node = server)
  | l -> failwith (Printf.sprintf "expected 1 delivery, got %d" (List.length l)));

  (* --- Strip/restore at a legacy boundary (§2.4) --- *)
  print_endline "\n== strip / restore at the border ==";
  let stripped = Result.get_ok (Compat.strip dip_packet) in
  Printf.printf "stripped to %d bytes (locations+payload only)\n"
    (Dip_bitbuf.Bitbuf.length stripped);
  let restored =
    Result.get_ok
      (Compat.restore
         ~fns:
           [
             Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
             Fn.v ~loc:32 ~len:32 Opkey.F_source;
           ]
         ~loc_len:8 stripped)
  in
  Printf.printf "restored DIP header: %d bytes\n"
    (Result.get_ok (Packet.header_size restored));
  print_endline "done"
