(* Tests for the fault-injection layer (Dip_netsim.Faults) and the
   reliable host pair (Dip_core.Host.Reliable) that recovers from it,
   including the canned chaos experiment (Dip_core.Chaos). *)

open Dip_netsim
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Reliable = Dip_core.Host.Reliable
module Chaos = Dip_core.Chaos

let packet s = Bitbuf.of_string s

let relay_handler _sim ~now:_ ~ingress pkt =
  [ Sim.Forward ((if ingress = 0 then 1 else 0), pkt) ]

let consume_handler _sim ~now:_ ~ingress:_ _pkt = [ Sim.Consume ]

(* A relay [r] feeding a consumer [d] over one faulted link. *)
let relay_pair () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let d = Sim.add_node sim ~name:"d" consume_handler in
  Sim.connect sim ~latency:1e-3 (r, 1) (d, 0);
  (sim, r, d)

(* --- Fault kinds in isolation --- *)

let test_drop_all () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.all_links faults (Faults.spec ~drop:1.0 ());
  for i = 0 to 9 do
    Sim.inject sim ~at:(0.001 *. float_of_int i) ~node:r ~port:0 (packet "x")
  done;
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 (List.length (Sim.consumed sim));
  Alcotest.(check (list (pair string int))) "all counted" [ ("drop", 10) ]
    (Faults.counts faults);
  Alcotest.(check int) "sim counter mirrors" 10
    (Stats.Counters.get (Sim.counters sim) "fault.drop")

let test_duplicate_all () =
  let sim, r, d = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.all_links faults (Faults.spec ~duplicate:1.0 ());
  for i = 0 to 4 do
    Sim.inject sim ~at:(0.001 *. float_of_int i) ~node:r ~port:0 (packet "x")
  done;
  Sim.run sim;
  Alcotest.(check int) "every packet doubled" 10
    (List.length (Sim.consumed sim));
  Alcotest.(check bool) "all at d" true
    (List.for_all (fun (n, _, _) -> n = d) (Sim.consumed sim));
  Alcotest.(check (option int)) "duplicates counted" (Some 5)
    (List.assoc_opt "duplicate" (Faults.counts faults))

let test_corrupt_all () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.all_links faults (Faults.spec ~corrupt:1.0 ());
  let original = "corrupt-me" in
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (packet original);
  Sim.run sim;
  (match Sim.consumed sim with
  | [ (_, _, pkt) ] ->
      let s = Bitbuf.to_string pkt in
      Alcotest.(check int) "length unchanged" (String.length original)
        (String.length s);
      Alcotest.(check bool) "bytes damaged in flight" true (s <> original)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check (option int)) "corruption counted" (Some 1)
    (List.assoc_opt "corrupt" (Faults.counts faults))

let test_link_down_window () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.link_down faults (r, 1) ~from_:0.0 ~until:0.1;
  Sim.inject sim ~at:0.05 ~node:r ~port:0 (packet "lost");
  Sim.inject sim ~at:0.2 ~node:r ~port:0 (packet "alive");
  Sim.run sim;
  (match Sim.consumed sim with
  | [ (_, _, pkt) ] ->
      Alcotest.(check string) "only the post-window packet" "alive"
        (Bitbuf.to_string pkt)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check (option int)) "down-window drop counted" (Some 1)
    (List.assoc_opt "link-down" (Faults.counts faults))

let test_node_crash_and_restart () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.crash_node faults r ~at:0.0 ~until:1.0;
  Sim.inject sim ~at:0.5 ~node:r ~port:0 (packet "blackholed");
  Sim.inject sim ~at:1.5 ~node:r ~port:0 (packet "recovered");
  Sim.run sim;
  (match Sim.consumed sim with
  | [ (_, _, pkt) ] ->
      Alcotest.(check string) "handler restored after the window"
        "recovered" (Bitbuf.to_string pkt)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check (option int)) "crash drop counted" (Some 1)
    (List.assoc_opt "node-crash" (Faults.counts faults));
  Alcotest.(check int) "drop reason at the node" 1
    (Stats.Counters.get (Sim.counters sim) "r.drop.node-crash")

(* Regression: overlapping crash windows. The second window used to
   capture the first window's *drop handler* as the "original" and
   reinstall it at its end, leaving the node black-holed forever. The
   node must be down for exactly the union of its windows. *)
let test_crash_overlapping_windows () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.crash_node faults r ~at:0.0 ~until:1.0;
  Faults.crash_node faults r ~at:0.5 ~until:1.5;
  Sim.inject sim ~at:1.2 ~node:r ~port:0 (packet "in-union");
  Sim.inject sim ~at:2.0 ~node:r ~port:0 (packet "after-union");
  Sim.run sim;
  (match Sim.consumed sim with
  | [ (_, _, pkt) ] ->
      Alcotest.(check string) "true handler restored at union end"
        "after-union" (Bitbuf.to_string pkt)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l));
  Alcotest.(check (option int)) "in-union arrival black-holed" (Some 1)
    (List.assoc_opt "node-crash" (Faults.counts faults))

(* Regression: a window nested inside another must not restore the
   handler when the inner window ends. *)
let test_crash_nested_windows () =
  let sim, r, _ = relay_pair () in
  let faults = Faults.attach ~seed:1L sim in
  Faults.crash_node faults r ~at:0.0 ~until:2.0;
  Faults.crash_node faults r ~at:0.5 ~until:1.0;
  Sim.inject sim ~at:1.5 ~node:r ~port:0 (packet "still-down");
  Sim.inject sim ~at:2.5 ~node:r ~port:0 (packet "back-up");
  Sim.run sim;
  match Sim.consumed sim with
  | [ (_, _, pkt) ] ->
      Alcotest.(check string) "outer window governs" "back-up"
        (Bitbuf.to_string pkt)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

(* --- Integrity check at the reliable endpoints --- *)

let test_corruption_detected_not_delivered () =
  (* Every transmission (data and ACK) is corrupted: nothing may be
     delivered as valid data, and at least some corruptions must be
     caught by the CRC specifically (others land in the basic header
     and fail parsing instead — also a drop, never a delivery). *)
  let sim = Sim.create () in
  let sender =
    Reliable.add_sender
      ~config:{ Reliable.default_config with max_retries = 2 }
      sim ~name:"s" ~seed:9L
      ~src:(Ipaddr.V4.of_string "192.168.0.1")
      ~dst:(Ipaddr.V4.of_string "10.0.0.1")
      ~out_port:0
  in
  let recv, recv_node = Reliable.add_receiver sim ~name:"d" in
  Sim.connect sim ~latency:1e-3 (Reliable.sender_node sender, 0) (recv_node, 0);
  let faults = Faults.attach ~seed:9L sim in
  Faults.all_links faults (Faults.spec ~corrupt:1.0 ());
  for i = 0 to 2 do
    Reliable.send sender ~at:(0.001 *. float_of_int i)
      ~payload:(Printf.sprintf "payload-%d" i)
  done;
  Sim.run sim;
  let ss = Reliable.sender_stats sender in
  Alcotest.(check int) "nothing delivered" 0 (Reliable.delivered recv);
  Alcotest.(check int) "every sequence abandoned" 3 ss.Reliable.gave_up;
  Alcotest.(check bool) "CRC caught corruptions" true
    (Reliable.rejected recv >= 1);
  Alcotest.(check int) "integrity drops counted" (Reliable.rejected recv)
    (Stats.Counters.get (Sim.counters sim)
       ("d.drop." ^ Dip_core.Errors.integrity_reason))

(* --- End-to-end recovery and determinism (via Chaos) --- *)

let chaos_cfg =
  {
    Chaos.default with
    Chaos.packets = 80;
    seed = 7L;
    spec = Faults.spec ~drop:0.05 ~corrupt:0.03 ~duplicate:0.03 ();
    flap = Some (0.2, 0.3);
  }

let test_reliable_full_recovery () =
  let r = Chaos.run chaos_cfg in
  Alcotest.(check int) "all unique payloads delivered" r.Chaos.sent
    r.Chaos.delivered;
  Alcotest.(check int) "every fate resolved" 0 r.Chaos.in_flight;
  Alcotest.(check bool) "recovery cost extra transmissions" true
    (r.Chaos.transmissions > r.Chaos.sent);
  List.iter
    (fun kind ->
      Alcotest.(check bool) (kind ^ " injected at least once") true
        (match List.assoc_opt kind r.Chaos.faults with
        | Some n -> n >= 1
        | None -> false))
    [ "drop"; "corrupt"; "duplicate"; "link-down" ]

let test_same_seed_same_schedule () =
  let a = Chaos.run chaos_cfg in
  let b = Chaos.run chaos_cfg in
  Alcotest.(check bool) "schedules non-trivial" true
    (List.length a.Chaos.events > 0);
  Alcotest.(check bool) "fault schedules identical" true
    (a.Chaos.events = b.Chaos.events);
  Alcotest.(check int) "deliveries identical" a.Chaos.delivered
    b.Chaos.delivered;
  let c = Chaos.run { chaos_cfg with Chaos.seed = 8L } in
  Alcotest.(check bool) "a different seed reschedules" true
    (a.Chaos.events <> c.Chaos.events)

let test_no_retransmit_loses_packets () =
  let r =
    Chaos.run
      {
        chaos_cfg with
        Chaos.reliable = { Reliable.default_config with max_retries = 0 };
      }
  in
  Alcotest.(check bool) "losses stick without retransmission" true
    (r.Chaos.delivered < r.Chaos.sent);
  Alcotest.(check int) "one transmission per payload" r.Chaos.sent
    r.Chaos.transmissions

(* --- Retransmit timer regressions --- *)

let reliable_pair ?config ?custody () =
  let sim = Sim.create () in
  let sender =
    Reliable.add_sender ?config ?custody sim ~name:"s" ~seed:5L
      ~src:(Ipaddr.V4.of_string "192.168.0.1")
      ~dst:(Ipaddr.V4.of_string "10.0.0.1")
      ~out_port:0
  in
  let recv, recv_node = Reliable.add_receiver sim ~name:"d" in
  Sim.connect sim ~latency:1e-3 (Reliable.sender_node sender, 0) (recv_node, 0);
  (sim, sender, recv)

(* Regression: the retry timer used to rely on the *handler* to
   re-arm. If the self-injected retransmission never reached the
   handler — here, a crash window over the sender swallows it — the
   sequence wedged in [pending] forever: never retried, never
   abandoned. The timer must re-arm itself. *)
let test_retransmit_survives_sender_crash () =
  let cfg = { Reliable.default_config with Reliable.max_jitter = 0.0 } in
  let sim, sender, recv = reliable_pair ~config:cfg () in
  let faults = Faults.attach ~seed:2L sim in
  (* t=0 transmission dies on a down link; the t=0.05 retransmit
     self-injection is black-holed by the crash before the handler
     can re-arm; recovery must still happen at t=0.15. *)
  Faults.link_down faults
    (Reliable.sender_node sender, 0)
    ~from_:0.0 ~until:0.02;
  Faults.crash_node faults (Reliable.sender_node sender) ~at:0.03 ~until:0.08;
  Reliable.send sender ~at:0.0 ~payload:"stubborn";
  Sim.run sim;
  let ss = Reliable.sender_stats sender in
  Alcotest.(check int) "delivered despite swallowed retransmit" 1
    (Reliable.delivered recv);
  Alcotest.(check int) "acked" 1 ss.Reliable.acked;
  Alcotest.(check int) "nothing wedged in flight" 0 ss.Reliable.in_flight;
  Alcotest.(check int) "nothing abandoned" 0 ss.Reliable.gave_up

let test_rto_max_clamps_backoff () =
  let recover cfg =
    let sim, sender, recv = reliable_pair ~config:cfg () in
    let faults = Faults.attach ~seed:3L sim in
    Faults.link_down faults
      (Reliable.sender_node sender, 0)
      ~from_:0.0 ~until:0.18;
    Reliable.send sender ~at:0.0 ~payload:"p";
    Sim.run sim;
    Alcotest.(check int) "delivered" 1 (Reliable.delivered recv);
    match Reliable.deliveries recv with
    | [ (_, t) ] -> t
    | _ -> Alcotest.fail "expected exactly one delivery"
  in
  let base = { Reliable.default_config with Reliable.max_jitter = 0.0 } in
  (* Unclamped retries at 0.05/0.15/0.35 recover at ~0.35; clamping
     to rto keeps retrying every 50 ms and recovers at ~0.20. *)
  let unclamped = recover base in
  let clamped = recover { base with Reliable.rto_max = 0.05 } in
  Alcotest.(check bool) "clamped recovers sooner" true (clamped < unclamped);
  Alcotest.(check bool) "clamped retries stay at rto" true (clamped < 0.25);
  Alcotest.(check bool) "unclamped backoff overshoots" true (unclamped > 0.3)

let test_rto_max_validated () =
  let sim = Sim.create () in
  Alcotest.check_raises "rto_max below rto rejected"
    (Invalid_argument "Reliable: rto_max must be >= rto") (fun () ->
      ignore
        (Reliable.add_sender
           ~config:{ Reliable.default_config with Reliable.rto_max = 0.01 }
           sim ~name:"s" ~seed:1L
           ~src:(Ipaddr.V4.of_string "192.168.0.1")
           ~dst:(Ipaddr.V4.of_string "10.0.0.1")
           ~out_port:0))

(* --- Custody transfer (disruption tolerance) --- *)

module Custody = Dip_core.Custody

let custody_cfg =
  {
    Chaos.default with
    Chaos.packets = 20;
    seed = 11L;
    schedule = [ (0.0, 15.0) ];
    custody = Some Custody.default_config;
  }

let test_custody_rides_out_long_outage () =
  (* The e2e retry budget (8 retries, backoff 2 from 50 ms) is spent
     after ~12.8 s, so a 15 s outage defeats pure end-to-end
     recovery... *)
  let baseline = Chaos.run { custody_cfg with Chaos.custody = None } in
  Alcotest.(check int) "baseline delivers nothing" 0 baseline.Chaos.delivered;
  Alcotest.(check int) "baseline abandons everything" baseline.Chaos.sent
    baseline.Chaos.gave_up;
  (* ...while custodians hold the bundles and replay them on link-up. *)
  let r = Chaos.run custody_cfg in
  Alcotest.(check int) "custody delivers everything" r.Chaos.sent
    r.Chaos.delivered;
  Alcotest.(check int) "sender handed every bundle off" r.Chaos.sent
    r.Chaos.custodied;
  Alcotest.(check int) "every fate resolved" 0 r.Chaos.in_flight;
  Alcotest.(check bool) "custody was taken" true
    (List.assoc "take" r.Chaos.custody > 0);
  Alcotest.(check int) "no copies stranded after drain" 0
    (List.assoc "held" r.Chaos.custody);
  Alcotest.(check bool) "latency reflects the outage, not a timeout" true
    (r.Chaos.latency_p99 > 10.0)

let test_custody_deterministic () =
  let a = Chaos.run custody_cfg in
  let b = Chaos.run custody_cfg in
  Alcotest.(check bool) "delivery order and times identical" true
    (a.Chaos.deliveries = b.Chaos.deliveries);
  Alcotest.(check bool) "fault schedules identical" true
    (a.Chaos.events = b.Chaos.events);
  Alcotest.(check bool) "custody counters identical" true
    (a.Chaos.custody = b.Chaos.custody)

let test_custody_survives_lossy_acks () =
  (* Random drops can eat custody ACKs; the periodic replay sweep
     must still converge on full delivery with nothing stranded. *)
  let r =
    Chaos.run
      {
        custody_cfg with
        Chaos.packets = 10;
        spec = Faults.spec ~drop:0.2 ();
        schedule = [ (0.0, 5.0) ];
      }
  in
  Alcotest.(check int) "all delivered despite losses" r.Chaos.sent
    r.Chaos.delivered;
  Alcotest.(check int) "no copies stranded" 0 (List.assoc "held" r.Chaos.custody)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_duplicate_all;
          Alcotest.test_case "corrupt all" `Quick test_corrupt_all;
          Alcotest.test_case "link down window" `Quick test_link_down_window;
          Alcotest.test_case "node crash + restart" `Quick
            test_node_crash_and_restart;
          Alcotest.test_case "overlapping crash windows" `Quick
            test_crash_overlapping_windows;
          Alcotest.test_case "nested crash windows" `Quick
            test_crash_nested_windows;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "corruption never delivered" `Quick
            test_corruption_detected_not_delivered;
          Alcotest.test_case "full recovery under faults" `Quick
            test_reliable_full_recovery;
          Alcotest.test_case "seeded schedule reproducible" `Quick
            test_same_seed_same_schedule;
          Alcotest.test_case "no-retransmit baseline loses" `Quick
            test_no_retransmit_loses_packets;
          Alcotest.test_case "retransmit survives sender crash" `Quick
            test_retransmit_survives_sender_crash;
          Alcotest.test_case "rto_max clamps backoff" `Quick
            test_rto_max_clamps_backoff;
          Alcotest.test_case "rto_max validated" `Quick test_rto_max_validated;
        ] );
      ( "custody",
        [
          Alcotest.test_case "rides out a 15 s outage" `Quick
            test_custody_rides_out_long_outage;
          Alcotest.test_case "seeded runs identical" `Quick
            test_custody_deterministic;
          Alcotest.test_case "replay sweep covers lost ACKs" `Quick
            test_custody_survives_lossy_acks;
        ] );
    ]
