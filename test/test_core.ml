(* Tests for the DIP core: FN triples, the header of Figure 1, packet
   construction, Algorithm 1's engine, the five §3 realizations, the
   §2.4 design concerns (guard, heterogeneous registries, F_pass,
   compatibility) and the §2.3 bootstrap. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string
let reg = Ops.default_registry ()

(* --- Opkey --- *)

let test_opkey_table1 () =
  (* Table 1's numbering must hold exactly. *)
  let expect =
    [
      (1, "F_32_match", "32-bit address match");
      (2, "F_128_match", "128-bit address match");
      (3, "F_source", "source address");
      (4, "F_FIB", "forwarding information base match");
      (5, "F_PIT", "pending interest table match");
      (6, "F_parm", "load parameters");
      (7, "F_MAC", "calculate MAC");
      (8, "F_mark", "mark update");
      (9, "F_ver", "destination verification");
      (10, "F_DAG", "parse the directed acyclic graph");
      (11, "F_intent", "handle intent");
    ]
  in
  List.iter
    (fun (key, name, desc) ->
      match Opkey.of_int key with
      | None -> Alcotest.failf "key %d missing" key
      | Some k ->
          Alcotest.(check string) "notation" name (Opkey.name k);
          Alcotest.(check string) "description" desc (Opkey.description k);
          Alcotest.(check int) "roundtrip" key (Opkey.to_int k))
    expect;
  Alcotest.(check (option reject)) "key 0 unknown" None (Opkey.of_int 0);
  (* Keys 13-16 are this repo's documented extensions (F_cc, F_tel,
     F_hvf, F_cust). *)
  (match Opkey.of_int 16 with
  | Some k -> Alcotest.(check string) "key 16 is F_cust" "F_cust" (Opkey.name k)
  | None -> Alcotest.fail "key 16 missing");
  Alcotest.(check (option reject)) "key 17 unknown" None (Opkey.of_int 17)

(* --- Fn --- *)

let test_fn_wire_roundtrip () =
  let fn = Fn.v ~loc:288 ~len:128 Opkey.F_mark in
  let buf = Bitbuf.create 6 in
  Fn.encode fn buf ~pos:0;
  match Fn.decode buf ~pos:0 with
  | Ok fn' -> Alcotest.(check bool) "equal" true (Fn.equal fn fn')
  | Error e -> Alcotest.fail e

let test_fn_size_is_6_bytes () =
  (* 6-byte triples are what make Table 2 come out exactly. *)
  Alcotest.(check int) "triple size" 6 Fn.size

let test_fn_tag_bit () =
  let fn = Fn.v ~tag:Fn.Host ~loc:0 ~len:544 Opkey.F_ver in
  let buf = Bitbuf.create 6 in
  Fn.encode fn buf ~pos:0;
  (* Highest bit of the op-key word is the tag (§2.2). *)
  Alcotest.(check bool) "tag bit set" true (Bitbuf.get_uint16 buf 4 land 0x8000 <> 0);
  match Fn.decode buf ~pos:0 with
  | Ok fn' -> Alcotest.(check bool) "host tag survives" true (fn'.Fn.tag = Fn.Host)
  | Error e -> Alcotest.fail e

let test_fn_decode_rejects () =
  let buf = Bitbuf.create 6 in
  Bitbuf.set_uint16 buf 2 8;
  Bitbuf.set_uint16 buf 4 99 (* unknown key *);
  (match Fn.decode buf ~pos:0 with
  | Error e -> Alcotest.(check string) "unknown key" "unknown operation key 99" e
  | Ok _ -> Alcotest.fail "accepted unknown key");
  match Fn.decode (Bitbuf.create 4) ~pos:0 with
  | Error e -> Alcotest.(check string) "truncated" "truncated FN triple" e
  | Ok _ -> Alcotest.fail "accepted truncated triple"

(* --- Header --- *)

let test_header_roundtrip () =
  let h =
    { Header.next_header = 17; fn_num = 5; hop_limit = 64; parallel = true;
      fn_loc_len = 72 }
  in
  let buf = Bitbuf.create (Header.header_length h) in
  Header.encode h buf;
  match Header.decode buf with
  | Ok h' -> Alcotest.(check bool) "roundtrip" true (h = h')
  | Error e -> Alcotest.fail e

let test_header_basic_size () =
  (* Table 2: "The basic DIP header occupies 6 bytes." *)
  Alcotest.(check int) "basic header" 6 Header.basic_size

let test_header_length_derivation () =
  (* §2.2: header length = basic + FN_Num * 6 + FN_LocLen. *)
  let h =
    { Header.next_header = 0; fn_num = 4; hop_limit = 1; parallel = false;
      fn_loc_len = 68 }
  in
  Alcotest.(check int) "OPT header length" 98 (Header.header_length h)

let test_header_loc_len_limit () =
  Alcotest.(check bool) "10-bit limit" true
    (try
       Header.encode
         { Header.next_header = 0; fn_num = 0; hop_limit = 1; parallel = false;
           fn_loc_len = 1024 }
         (Bitbuf.create 8);
       false
     with Invalid_argument _ -> true)

let test_header_hop_limit () =
  let h =
    { Header.next_header = 0; fn_num = 0; hop_limit = 2; parallel = false;
      fn_loc_len = 0 }
  in
  let buf = Bitbuf.create 6 in
  Header.encode h buf;
  Alcotest.(check bool) "first decrement" true (Header.decrement_hop_limit buf);
  Alcotest.(check bool) "second refused" false (Header.decrement_hop_limit buf)

(* --- Packet --- *)

let test_packet_build_parse () =
  let fns = [ Fn.v ~loc:0 ~len:32 Opkey.F_fib ] in
  let buf = Packet.build ~fns ~locations:"abcd" ~payload:"payload" () in
  match Packet.parse buf with
  | Ok view ->
      Alcotest.(check int) "fn count" 1 (Array.length view.Packet.fns);
      Alcotest.(check int) "loc base" 12 view.Packet.loc_base;
      Alcotest.(check string) "target" "abcd"
        (Packet.get_target view view.Packet.fns.(0));
      Alcotest.(check string) "payload" "payload" (Packet.payload view)
  | Error e -> Alcotest.fail e

let test_packet_rejects_fn_out_of_bounds () =
  Alcotest.(check bool) "FN beyond locations" true
    (try
       ignore
         (Packet.build
            ~fns:[ Fn.v ~loc:0 ~len:64 Opkey.F_fib ]
            ~locations:"abcd" ~payload:"" ());
       false
     with Invalid_argument _ -> true)

let test_packet_parse_rejects_corrupt_fn () =
  let buf = Packet.build ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_fib ] ~locations:"abcd" ~payload:"" () in
  (* Corrupt the FN length so the target exceeds the region. *)
  Bitbuf.set_uint16 buf 8 999;
  match Packet.parse buf with
  | Error e ->
      Alcotest.(check string) "bounds check" "FN 1: target exceeds locations region" e
  | Ok _ -> Alcotest.fail "accepted out-of-bounds FN"

let test_packet_set_target () =
  let buf = Packet.build ~fns:[ Fn.v ~loc:8 ~len:16 Opkey.F_source ] ~locations:"abcd" ~payload:"" () in
  match Packet.parse buf with
  | Ok view ->
      Packet.set_target view view.Packet.fns.(0) "XY";
      Alcotest.(check string) "updated" "XY"
        (Packet.get_target view view.Packet.fns.(0))
  | Error e -> Alcotest.fail e

(* --- Table 2: exact reproduction --- *)

let test_table2_exact () =
  let expect =
    [
      (Realize.P_ipv6_native, 40);
      (Realize.P_ipv4_native, 20);
      (Realize.P_dip128, 50);
      (Realize.P_dip32, 26);
      (Realize.P_ndn, 16);
      (Realize.P_opt, 98);
      (Realize.P_ndn_opt, 108);
    ]
  in
  List.iter
    (fun (p, bytes) ->
      Alcotest.(check int) (Realize.protocol_name p) bytes
        (Realize.header_overhead p))
    expect

(* --- Engine: DIP IP forwarding --- *)

let env_with_v4_routes () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 3;
  env

let test_engine_dip32_forward () =
  let env = env_with_v4_routes () in
  let pkt = Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3") ~payload:"x" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 3 ], info ->
      Alcotest.(check int) "two router FNs ran" 2 info.Engine.ops_run
  | v, _ -> Alcotest.failf "unexpected verdict %s"
              (match v with Engine.Dropped r -> r | _ -> "?")

let test_engine_dip32_no_route () =
  let env = env_with_v4_routes () in
  let pkt = Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "203.0.113.9") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "no-route", _ -> ()
  | _ -> Alcotest.fail "expected no-route drop"

let test_engine_dip32_local_delivery () =
  let env = env_with_v4_routes () in
  env.Env.local_v4 <- Some (v4 "10.1.2.3");
  let pkt = Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Delivered, _ -> ()
  | _ -> Alcotest.fail "expected local delivery"

let test_engine_dip128_forward () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv6.add_route env.Env.v6_routes (Ipaddr.Prefix.of_string "2001:db8::/32") 5;
  let pkt =
    Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::99") ~payload:"" ()
  in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 5 ], _ -> ()
  | _ -> Alcotest.fail "expected v6 forward"

let test_engine_hop_limit_decrement () =
  let env = env_with_v4_routes () in
  let pkt =
    Realize.ipv4 ~hop_limit:2 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  (match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded _, _ -> ()
  | _ -> Alcotest.fail "first hop forwards");
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "hop-limit-expired", _ -> ()
  | _ -> Alcotest.fail "second hop must expire"

let test_engine_first_decision_wins () =
  (* Two route-proposing FNs over different address fields: Algorithm 1
     runs both, the first proposal sticks. *)
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "20.0.0.0/8") 2;
  let locations =
    Ipaddr.V4.to_wire (v4 "10.1.1.1") ^ Ipaddr.V4.to_wire (v4 "20.1.1.1")
  in
  let pkt =
    Packet.build
      ~fns:
        [
          Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
          Fn.v ~loc:32 ~len:32 Opkey.F_32_match;
        ]
      ~locations ~payload:"" ()
  in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], info ->
      Alcotest.(check int) "both FNs still ran" 2 info.Engine.ops_run
  | _ -> Alcotest.fail "first route proposal must win"

let test_engine_local_beats_later_route () =
  let env = Env.create ~name:"r" () in
  env.Env.local_v4 <- Some (v4 "10.1.1.1");
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "20.0.0.0/8") 2;
  let locations =
    Ipaddr.V4.to_wire (v4 "10.1.1.1") ^ Ipaddr.V4.to_wire (v4 "20.1.1.1")
  in
  let pkt =
    Packet.build
      ~fns:
        [
          Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
          Fn.v ~loc:32 ~len:32 Opkey.F_32_match;
        ]
      ~locations ~payload:"" ()
  in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Delivered, _ -> ()
  | _ -> Alcotest.fail "first (local-delivery) decision must win"

let prop_opt_random_hops_verify =
  (* The OPT chain must verify for any path length and payload. *)
  QCheck.Test.make ~name:"opt over dip: random hop counts verify" ~count:60
    QCheck.(pair (int_range 1 6) small_string)
    (fun (hops, payload) ->
      let g = Dip_stdext.Prng.create (Int64.of_int (hops * 1009)) in
      let secrets = List.init hops (fun _ -> Dip_opt.Drkey.secret_gen g) in
      let dst_secret = Dip_opt.Drkey.secret_gen g in
      let session_id = Int64.of_int (hops * 31337) in
      let session_keys = Dip_opt.Drkey.session_keys secrets ~session_id in
      let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
      let pkt =
        Realize.opt ~hops ~session_id ~timestamp:1l ~dest_key ~payload ()
      in
      List.iteri
        (fun i secret ->
          let env = Env.create ~name:"r" () in
          Env.set_opt_identity env ~secret ~hop:(i + 1);
          ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt))
        secrets;
      let host = Env.create ~name:"h" () in
      Env.register_opt_session host ~session_id ~session_keys ~dest_key;
      match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
      | Engine.Delivered, _ -> true
      | _ -> false)

(* --- Engine: DIP NDN --- *)

let ndn_env ?cache_capacity () =
  let env = Env.create ?cache_capacity ~name:"r" () in
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/video/intro.mp4") 2;
  env

let test_engine_ndn_interest_then_data () =
  let env = ndn_env () in
  let name = Name.of_string "/video/intro.mp4" in
  let interest = Realize.ndn_interest ~name ~payload:"" () in
  (match Engine.process ~registry:reg env ~now:0.0 ~ingress:7 interest with
  | Engine.Forwarded [ 2 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "interest dropped: %s" r
  | _ -> Alcotest.fail "interest must forward via FIB");
  (* Aggregation: same name from another port is Quiet. *)
  (match Engine.process ~registry:reg env ~now:0.1 ~ingress:8 interest with
  | Engine.Quiet, _ -> ()
  | _ -> Alcotest.fail "second interest must aggregate");
  (* Data follows the PIT back to both ports. *)
  let data = Realize.ndn_data ~name ~content:"body" () in
  (match Engine.process ~registry:reg env ~now:0.2 ~ingress:2 data with
  | Engine.Forwarded ports, _ ->
      Alcotest.(check (list int)) "both requesters" [ 7; 8 ]
        (List.sort compare ports)
  | _ -> Alcotest.fail "data must follow PIT");
  (* Consumed entry: replay is unsolicited. *)
  match Engine.process ~registry:reg env ~now:0.3 ~ingress:2 data with
  | Engine.Dropped "unsolicited-data", _ -> ()
  | _ -> Alcotest.fail "replayed data must drop"

let test_engine_ndn_cache_responds () =
  let env = ndn_env ~cache_capacity:16 () in
  let name = Name.of_string "/video/intro.mp4" in
  let interest = Realize.ndn_interest ~name ~payload:"" () in
  ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:7 interest);
  let data = Realize.ndn_data ~name ~content:"cached!" () in
  ignore (Engine.process ~registry:reg env ~now:0.1 ~ingress:2 data);
  (* A later interest is answered from the content store (§4.1 fn 2). *)
  match Engine.process ~registry:reg env ~now:0.5 ~ingress:9 interest with
  | Engine.Responded reply, _ -> (
      match Packet.parse reply with
      | Ok view ->
          Alcotest.(check string) "cached body" "cached!" (Packet.payload view);
          Alcotest.(check int) "reply carries F_PIT" 5
            (Opkey.to_int view.Packet.fns.(0).Fn.key)
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected a cache response"

let test_engine_ndn_no_fib () =
  let env = Env.create ~name:"r" () in
  let interest = Realize.ndn_interest ~name:(Name.of_string "/nowhere") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 interest with
  | Engine.Dropped "no-fib-entry", _ -> ()
  | _ -> Alcotest.fail "expected FIB miss"

(* --- Engine: OPT over DIP, full 3-hop chain --- *)

let opt_setup hops =
  let g = Dip_stdext.Prng.create 77L in
  let secrets = List.init hops (fun _ -> Dip_opt.Drkey.secret_gen g) in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let session_id = 0xABCDEFL in
  let session_keys = Dip_opt.Drkey.session_keys secrets ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  let routers =
    List.mapi
      (fun i secret ->
        let env = Env.create ~name:(Printf.sprintf "r%d" (i + 1)) () in
        Env.set_opt_identity env ~secret ~hop:(i + 1);
        (* every router also forwards the packet somewhere *)
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "0.0.0.0/0") 1;
        env)
      secrets
  in
  let host = Env.create ~name:"dst" () in
  Env.register_opt_session host ~session_id ~session_keys ~dest_key;
  (session_id, session_keys, dest_key, routers, host)

(* OPT alone has no forwarding FN; pair it with the default route by
   processing through routers that only run the OPT FNs and treat
   "no-forwarding-decision" as pass-through in this unit test. *)
let run_opt_chain pkt routers =
  List.iter
    (fun env ->
      match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
      | Engine.Dropped "no-forwarding-decision", _ -> ()
      | Engine.Dropped r, _ -> Alcotest.failf "router dropped: %s" r
      | _ -> ())
    routers

let test_engine_opt_end_to_end () =
  let hops = 3 in
  let session_id, _, dest_key, routers, host = opt_setup hops in
  let payload = "secret content" in
  let pkt =
    Realize.opt ~hops ~session_id ~timestamp:5l ~dest_key ~payload ()
  in
  run_opt_chain pkt routers;
  match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
  | Engine.Delivered, info ->
      Alcotest.(check int) "host ran F_ver only" 1 info.Engine.ops_run
  | Engine.Dropped r, _ -> Alcotest.failf "verification failed: %s" r
  | _ -> Alcotest.fail "expected delivery"

let test_engine_opt_detects_missing_hop () =
  let hops = 3 in
  let session_id, _, dest_key, routers, host = opt_setup hops in
  let pkt = Realize.opt ~hops ~session_id ~timestamp:5l ~dest_key ~payload:"p" () in
  (* Skip router 2. *)
  run_opt_chain pkt [ List.nth routers 0; List.nth routers 2 ];
  match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped r, _ ->
      Alcotest.(check bool) "names OPV 2" true
        (String.length r > 0 && r <> "no-forwarding-decision")
  | _ -> Alcotest.fail "must detect the skipped hop"

let test_engine_opt_detects_payload_tamper () =
  let hops = 2 in
  let session_id, _, dest_key, routers, host = opt_setup hops in
  let pkt = Realize.opt ~hops ~session_id ~timestamp:5l ~dest_key ~payload:"AAAA" () in
  run_opt_chain pkt routers;
  (* Corrupt the payload after the tags were computed. *)
  let last = Bitbuf.length pkt - 1 in
  Bitbuf.set_uint8 pkt last (Bitbuf.get_uint8 pkt last lxor 0xFF);
  match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped _, _ -> ()
  | _ -> Alcotest.fail "tampered payload must be rejected"

let test_engine_opt_unknown_session () =
  let hops = 1 in
  let session_id, _, dest_key, routers, _ = opt_setup hops in
  let host = Env.create ~name:"stranger" () in
  let pkt = Realize.opt ~hops ~session_id ~timestamp:0l ~dest_key ~payload:"" () in
  run_opt_chain pkt routers;
  match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "unknown-session", _ -> ()
  | _ -> Alcotest.fail "unknown session must be rejected"

(* --- Engine: NDN+OPT (the derived protocol) --- *)

let test_engine_ndn_opt_data_path () =
  (* One router that is both an NDN forwarder and an OPT hop: the
     data packet must follow the PIT *and* update the tags, then
     verify at the consumer. *)
  let name = Name.of_string "/secure/file" in
  let g = Dip_stdext.Prng.create 99L in
  let secret = Dip_opt.Drkey.secret_gen g in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let session_id = 0x55AAL in
  let session_keys = Dip_opt.Drkey.session_keys [ secret ] ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  let router = Env.create ~name:"r" () in
  Env.set_opt_identity router ~secret ~hop:1;
  Dip_tables.Name_fib.insert router.Env.fib name 2;
  let consumer = Env.create ~name:"consumer" () in
  Env.register_opt_session consumer ~session_id ~session_keys ~dest_key;
  (* Interest up. *)
  let interest = Realize.ndn_opt_interest ~name ~payload:"" () in
  (match Engine.process ~registry:reg router ~now:0.0 ~ingress:6 interest with
  | Engine.Forwarded [ 2 ], _ -> ()
  | _ -> Alcotest.fail "interest must forward");
  (* Data back, with OPT tags. *)
  let data =
    Realize.ndn_opt_data ~hops:1 ~session_id ~timestamp:9l ~dest_key ~name
      ~content:"secure bytes" ()
  in
  (match Engine.process ~registry:reg router ~now:0.1 ~ingress:2 data with
  | Engine.Forwarded [ 6 ], info ->
      (* F_PIT + F_parm + F_MAC + F_mark ran; F_ver skipped (host). *)
      Alcotest.(check int) "4 router FNs" 4 info.Engine.ops_run;
      Alcotest.(check int) "1 host FN skipped" 1 info.Engine.ops_skipped
  | Engine.Dropped r, _ -> Alcotest.failf "router dropped data: %s" r
  | _ -> Alcotest.fail "data must follow the PIT");
  match Engine.host_process ~registry:reg consumer ~now:0.2 ~ingress:0 data with
  | Engine.Delivered, _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "consumer rejected: %s" r
  | _ -> Alcotest.fail "expected verified delivery"

(* --- Engine: XIA over DIP --- *)

let test_engine_xia_forward_and_deliver () =
  let open Dip_xia in
  let svc = Xid.of_name Xid.SID "svc" in
  let dag = Dag.fallback ~intent:svc ~via:[ Xid.of_name Xid.AD "ad1" ] in
  let transit = Env.create ~name:"transit" () in
  Router.add_route transit.Env.xia (Xid.of_name Xid.AD "ad1") 4;
  let pkt = Realize.xia ~dag ~payload:"req" () in
  (match Engine.process ~registry:reg transit ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 4 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "transit dropped: %s" r
  | _ -> Alcotest.fail "transit must forward by fallback");
  let owner = Env.create ~name:"owner" () in
  Router.add_local owner.Env.xia (Xid.of_name Xid.AD "ad1");
  Router.add_local owner.Env.xia svc;
  match Engine.process ~registry:reg owner ~now:0.0 ~ingress:0 pkt with
  | Engine.Delivered, _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "owner dropped: %s" r
  | _ -> Alcotest.fail "intent owner must deliver"

let test_engine_xia_dead_end () =
  let open Dip_xia in
  let dag = Dag.direct (Xid.of_name Xid.SID "nowhere") in
  let env = Env.create ~name:"r" () in
  let pkt = Realize.xia ~dag ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped r, _ ->
      Alcotest.(check string) "dead end" "dag: dead-end" r
  | _ -> Alcotest.fail "unroutable DAG must drop"

(* --- §2.4: guard --- *)

let test_engine_guard_ops_limit () =
  let env = Env.create ~guard:(Guard.create ~max_ops:1 ()) ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "0.0.0.0/0") 1;
  let pkt = Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "guard-ops-exhausted", _ -> ()
  | _ -> Alcotest.fail "2-FN packet must exceed a 1-op budget"

let test_engine_guard_state_limit () =
  let env = Env.create ~guard:(Guard.create ~max_state_bytes:8 ()) ~name:"r" () in
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  let pkt = Realize.ndn_interest ~name:(Name.of_string "/a") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "guard-state-exhausted", _ -> ()
  | _ -> Alcotest.fail "PIT insert must exceed an 8-byte state budget"

(* --- §2.4: heterogeneous configuration --- *)

let test_engine_unsupported_mandatory_fn () =
  (* An AS without the OPT modules receives an OPT packet: it must
     return an FN-unsupported notification. *)
  let limited =
    Registry.restrict reg [ Opkey.F_32_match; Opkey.F_128_match; Opkey.F_source ]
  in
  let env = Env.create ~name:"legacy-as" () in
  let pkt =
    Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~payload:"" ()
  in
  match Engine.process ~registry:limited env ~now:0.0 ~ingress:0 pkt with
  | Engine.Unsupported key, _ ->
      Alcotest.(check string) "names the key" "F_parm" (Opkey.name key)
  | _ -> Alcotest.fail "mandatory unsupported FN must be reported"

let test_engine_unsupported_partial_opt () =
  (* An AS with F_parm but not F_MAC runs what it has, then reports
     the first mandatory key it cannot execute. *)
  let partial = Registry.restrict reg [ Opkey.F_parm ] in
  let env = Env.create ~name:"half-as" () in
  Env.set_opt_identity env
    ~secret:(Dip_opt.Drkey.secret_of_string "0123456789abcdef") ~hop:1;
  let pkt =
    Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~payload:"" ()
  in
  match Engine.process ~registry:partial env ~now:0.0 ~ingress:0 pkt with
  | Engine.Unsupported key, info ->
      Alcotest.(check string) "stops at F_MAC" "F_MAC" (Opkey.name key);
      Alcotest.(check int) "F_parm ran first" 1 info.Engine.ops_run
  | _ -> Alcotest.fail "partial OPT support must report F_MAC"

let test_engine_ignorable_telemetry_skipped () =
  (* F_tel is per-AS (§2.4): a node without it forwards and counts
     the skip. *)
  let no_tel =
    Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ]
  in
  let env = env_with_v4_routes () in
  let pkt =
    Realize.ipv4_telemetry ~max_hops:4 ~src:(v4 "192.0.2.1")
      ~dst:(v4 "10.1.2.3") ~payload:"" ()
  in
  match Engine.process ~registry:no_tel env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 3 ], info ->
      Alcotest.(check int) "telemetry skipped" 1 info.Engine.ops_skipped;
      Alcotest.(check int) "forwarding still ran" 2 info.Engine.ops_run
  | _ -> Alcotest.fail "missing F_tel must not stop forwarding"

let test_engine_ignorable_unsupported_fn () =
  (* F_pass is ignorable: a node without it just skips (§2.4). *)
  let no_pass = Registry.restrict reg [ Opkey.F_fib ] in
  let env = Env.create ~name:"r" () in
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  let pkt =
    Realize.ndn_interest ~pass:Dip_crypto.Siphash.default_key
      ~name:(Name.of_string "/a") ~payload:"" ()
  in
  match Engine.process ~registry:no_pass env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], info ->
      Alcotest.(check int) "pass skipped" 1 info.Engine.ops_skipped
  | _ -> Alcotest.fail "ignorable FN must be skipped"

let test_errors_echo_truncated () =
  (* Long rejected packets are echoed only up to the 64-byte limit. *)
  let rejected =
    Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8")
      ~payload:(String.make 500 'z') ()
  in
  let note = Errors.fn_unsupported ~key:Opkey.F_parm ~rejected in
  match Errors.parse note with
  | Ok { Errors.echo; _ } ->
      Alcotest.(check int) "echo capped at 64" 64 (String.length echo)
  | Error e -> Alcotest.fail e

let test_errors_rejects_noncontrol () =
  let data = Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"" () in
  match Errors.parse data with
  | Error "not a control packet" -> ()
  | _ -> Alcotest.fail "data packets must not parse as notifications"

let test_errors_roundtrip () =
  let rejected =
    Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"xyz" ()
  in
  let note = Errors.fn_unsupported ~key:Opkey.F_mac ~rejected in
  Alcotest.(check bool) "is control" true (Errors.is_control note);
  Alcotest.(check bool) "data packet is not control" false
    (Errors.is_control rejected);
  match Errors.parse note with
  | Ok { Errors.key; echo } ->
      Alcotest.(check string) "key" "F_MAC" (Opkey.name key);
      Alcotest.(check bool) "echo prefix" true
        (String.length echo > 0
        && String.sub (Bitbuf.to_string rejected) 0 (String.length echo) = echo)
  | Error e -> Alcotest.fail e

(* --- §2.4: F_pass --- *)

let pass_key = Dip_crypto.Siphash.default_key

let test_fpass_accepts_genuine () =
  let env = Env.create ~name:"r" () in
  Env.enable_pass env ~key:pass_key;
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  let pkt = Realize.ndn_interest ~pass:pass_key ~name:(Name.of_string "/a") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "genuine dropped: %s" r
  | _ -> Alcotest.fail "genuine labelled packet must pass"

let test_fpass_rejects_forged () =
  let env = Env.create ~name:"r" () in
  Env.enable_pass env ~key:pass_key;
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  (* Label computed with the wrong key → forgery. *)
  let wrong = Dip_crypto.Siphash.key_of_string "attacker-key-16b" in
  let pkt = Realize.ndn_interest ~pass:wrong ~name:(Name.of_string "/a") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "pass-verify-failed", _ -> ()
  | _ -> Alcotest.fail "forged label must be dropped"

let test_fpass_disabled_is_free () =
  (* §2.4: "DIP allows the network operators to dynamically adjust
     security policies" — disabled F_pass costs nothing and drops
     nothing. *)
  let env = Env.create ~name:"r" () in
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  let wrong = Dip_crypto.Siphash.key_of_string "attacker-key-16b" in
  let pkt = Realize.ndn_interest ~pass:wrong ~name:(Name.of_string "/a") ~payload:"" () in
  match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], _ -> ()
  | _ -> Alcotest.fail "disabled F_pass must not filter"

(* --- parallel flag --- *)

let test_parallel_depth () =
  (* NDN+OPT: FIB (name) is independent of the OPT chain, but the
     OPT FNs overlap each other, so the critical path is shorter
     than the op count. *)
  let data =
    Realize.ndn_opt_data ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~name:(Name.of_string "/a") ~content:"" ()
  in
  (* Rebuild with the parallel bit set. *)
  let view = match Packet.parse data with Ok v -> v | Error e -> Alcotest.fail e in
  let fns = Array.to_list view.Packet.fns in
  let locations =
    Bitbuf.get_field data
      (Field.v ~off_bits:(8 * view.Packet.loc_base)
         ~len_bits:(8 * view.Packet.header.Header.fn_loc_len))
  in
  let par = Packet.build ~parallel:true ~fns ~locations ~payload:"" () in
  let env = Env.create ~name:"r" () in
  Env.set_opt_identity env ~secret:(Dip_opt.Drkey.secret_of_string "0123456789abcdef") ~hop:1;
  ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 par);
  let _, info = Engine.process ~registry:reg env ~now:0.0 ~ingress:1 par in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d < 5 FNs" info.Engine.parallel_depth)
    true
    (info.Engine.parallel_depth < 5 && info.Engine.parallel_depth >= 1)

let test_parallel_depth_excludes_skipped () =
  (* Regression: a host-tagged FN bridging two otherwise-independent
     router FNs used to lengthen the router's critical path. The two
     F_source slices are disjoint; only the skipped host FN overlaps
     both. *)
  let fns =
    [
      Fn.v ~loc:0 ~len:32 Opkey.F_source;
      Fn.v ~tag:Fn.Host ~loc:0 ~len:64 Opkey.F_ver;
      Fn.v ~loc:32 ~len:32 Opkey.F_source;
    ]
  in
  let pkt =
    Packet.build ~parallel:true ~fns ~locations:(String.make 8 'L') ~payload:"" ()
  in
  let arr = Array.of_list fns in
  Alcotest.(check int) "full-program critical path" 3 (Engine.critical_path arr);
  Alcotest.(check int) "masked critical path" 1
    (Engine.critical_path_over arr ~included:(fun i -> i <> 1));
  let env = Env.create ~name:"r" () in
  let _, info = Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt in
  Alcotest.(check int) "router ran the two F_source" 2 info.Engine.ops_run;
  Alcotest.(check int) "depth over executed subset" 1 info.Engine.parallel_depth

let test_parallel_depth_excludes_ignorable () =
  (* Unknown-but-ignorable FNs execute nothing, so a node supporting
     none of the program reports depth 0. *)
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_source; Fn.v ~loc:0 ~len:32 Opkey.F_source ]
  in
  let pkt =
    Packet.build ~parallel:true ~fns ~locations:(String.make 4 'L') ~payload:"" ()
  in
  let none = Registry.restrict reg [] in
  let env = Env.create ~name:"r" () in
  let _, info = Engine.process ~registry:none env ~now:0.0 ~ingress:0 pkt in
  Alcotest.(check int) "nothing ran" 0 info.Engine.ops_run;
  Alcotest.(check int) "depth 0 when nothing ran" 0 info.Engine.parallel_depth

(* --- program cache --- *)

let mk_cached_env ?(capacity = 512) () =
  let env = Env.create ~prog_cache_capacity:capacity ~name:"c" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  env

let dip32 ?(dst = "10.1.2.3") ?(hop_limit = 64) () =
  Realize.ipv4 ~hop_limit ~src:(v4 "192.0.2.1") ~dst:(v4 dst) ~payload:"p" ()

let test_progcache_hit_miss () =
  let env = mk_cached_env () in
  let c = env.Env.prog_cache in
  (* First packet is a miss; later packets of the same program hit,
     independent of addresses and hop limit. *)
  List.iter
    (fun pkt ->
      match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
      | Engine.Forwarded _, _ -> ()
      | v, _ -> Alcotest.failf "unexpected verdict %s"
                  (match v with Engine.Dropped r -> r | _ -> "?"))
    [ dip32 (); dip32 ~dst:"10.9.9.9" (); dip32 ~hop_limit:7 () ];
  Alcotest.(check int) "one miss" 1 (Progcache.misses c);
  Alcotest.(check int) "two hits" 2 (Progcache.hits c);
  Alcotest.(check int) "one entry" 1 (Progcache.size c);
  Env.publish_cache_stats env;
  Alcotest.(check int) "mirrored hit counter" 2
    (Dip_netsim.Stats.Counters.get env.Env.counters "progcache.hit");
  Alcotest.(check int) "mirrored miss counter" 1
    (Dip_netsim.Stats.Counters.get env.Env.counters "progcache.miss")

let test_progcache_disabled () =
  let env = mk_cached_env ~capacity:0 () in
  ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 (dip32 ()));
  ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 (dip32 ()));
  Alcotest.(check bool) "disabled" false (Progcache.enabled env.Env.prog_cache);
  Alcotest.(check int) "no hits" 0 (Progcache.hits env.Env.prog_cache);
  Alcotest.(check int) "no misses" 0 (Progcache.misses env.Env.prog_cache)

let test_progcache_lru_eviction () =
  let env = mk_cached_env ~capacity:2 () in
  let c = env.Env.prog_cache in
  (* Three distinct programs (different field locations) through a
     2-entry cache: A B C evicts A, so A misses again. *)
  let prog loc =
    Packet.build
      ~fns:[ Fn.v ~loc ~len:32 Opkey.F_source ]
      ~locations:(String.make 16 'L') ~payload:"" ()
  in
  List.iter
    (fun loc ->
      ignore (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 (prog loc)))
    [ 0; 32; 64; 0 ];
  Alcotest.(check int) "bounded" 2 (Progcache.size c);
  Alcotest.(check int) "A evicted, misses again" 4 (Progcache.misses c);
  Alcotest.(check int) "no hits" 0 (Progcache.hits c)

let test_progcache_verify_memoized () =
  let env = mk_cached_env () in
  let calls = ref 0 in
  let verify _view = incr calls; Ok () in
  for _ = 1 to 3 do
    ignore (Engine.process ~verify ~registry:reg env ~now:0.0 ~ingress:0 (dip32 ()))
  done;
  Alcotest.(check int) "verify ran once for a cached program" 1 !calls;
  (* A known-bad verdict is memoized too: the packet keeps failing
     without re-running the checker. *)
  let bad_calls = ref 0 in
  let bad _view = incr bad_calls; Error "nope" in
  let pkt loc =
    Packet.build ~fns:[ Fn.v ~loc ~len:32 Opkey.F_source ]
      ~locations:(String.make 8 'L') ~payload:"" ()
  in
  let verdicts =
    List.init 3 (fun _ ->
        fst (Engine.process ~verify:bad ~registry:reg env ~now:0.0 ~ingress:0 (pkt 0)))
  in
  Alcotest.(check bool) "all dropped" true
    (List.for_all (function Engine.Dropped "verify: nope" -> true | _ -> false)
       verdicts);
  Alcotest.(check int) "bad verdict memoized" 1 !bad_calls

let test_progcache_cold_cache_agree () =
  (* The cached view must be indistinguishable from the cold parse:
     header, FNs, loc_base, payload. *)
  let env = mk_cached_env () in
  let pkt = dip32 ~hop_limit:9 () in
  ignore (Progcache.parse env.Env.prog_cache pkt);
  let cached =
    match Progcache.parse env.Env.prog_cache pkt with
    | Ok (view, Some _) -> view
    | Ok (_, None) -> Alcotest.fail "expected a cache entry"
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "that was a hit" 1 (Progcache.hits env.Env.prog_cache);
  let cold = match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "headers equal" true
    (cached.Packet.header = cold.Packet.header);
  Alcotest.(check int) "hop limit patched" 9
    cached.Packet.header.Header.hop_limit;
  Alcotest.(check bool) "fns equal" true
    (Array.for_all2 Fn.equal cached.Packet.fns cold.Packet.fns);
  Alcotest.(check int) "loc_base" cold.Packet.loc_base cached.Packet.loc_base;
  Alcotest.(check string) "payload" (Packet.payload cold) (Packet.payload cached)

let test_progcache_truncation_still_errors () =
  (* A packet whose prefix matches a cached program but whose buffer
     is shorter than the full header must fail exactly like the cold
     parse — the hit path may not hand out out-of-bounds slices. *)
  let env = mk_cached_env () in
  let pkt = dip32 () in
  ignore (Progcache.parse env.Env.prog_cache pkt);
  let view = match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e in
  let cut = Header.locations_offset view.Packet.header + 2 in
  let truncated = Bitbuf.of_string (String.sub (Bitbuf.to_string pkt) 0 cut) in
  let cold_err =
    match Packet.parse truncated with Error e -> e | Ok _ -> Alcotest.fail "cold parse accepted"
  in
  (match Progcache.parse env.Env.prog_cache truncated with
  | Error e -> Alcotest.(check string) "same error as cold parse" cold_err e
  | Ok _ -> Alcotest.fail "cached parse accepted a truncated packet")

let test_progcache_control_invalidation () =
  let master = Ops.default_registry () in
  let live = Registry.restrict master [ Opkey.F_32_match; Opkey.F_source ] in
  let env = mk_cached_env () in
  let c = env.Env.prog_cache in
  let key = Dip_crypto.Prf.key_of_string "controller-key-0" in
  let state = Control.initial_state () in
  let push seq cmd =
    match
      Control.apply ~key ~state ~env ~registry:live ~master
        (Control.encode ~key ~seq cmd)
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  ignore (Engine.process ~registry:live env ~now:0.0 ~ingress:0 (dip32 ()));
  let ndn = Realize.ndn_interest ~name:(Name.of_string "/a") ~payload:"" () in
  ignore (Engine.process ~registry:live env ~now:0.0 ~ingress:0 ndn);
  Alcotest.(check int) "two programs cached" 2 (Progcache.size c);
  (* Installing F_FIB must invalidate the NDN program (its verdict and
     unsupported-handling depend on the registry) but not DIP-32. *)
  push 1L (Control.Enable_op Opkey.F_fib);
  Alcotest.(check int) "NDN entry invalidated" 1 (Progcache.size c);
  ignore (Engine.process ~registry:live env ~now:0.0 ~ingress:0 (dip32 ()));
  Alcotest.(check int) "DIP-32 entry survived" 1 (Progcache.hits c);
  (* Disabling an op drops the programs using it. *)
  push 2L (Control.Disable_op Opkey.F_source);
  Alcotest.(check int) "DIP-32 entry invalidated" 0 (Progcache.size c)

let test_progcache_stale_verdict_without_control () =
  (* The documented sharp edge: a memoized verdict reflects the world
     at first-parse time; changes made behind the engine's back (not
     through Control) need an explicit clear. *)
  let env = mk_cached_env () in
  let world = ref (Error "not-yet-deployed") in
  let verify _view = !world in
  let run () = fst (Engine.process ~verify ~registry:reg env ~now:0.0 ~ingress:0 (dip32 ())) in
  Alcotest.(check bool) "rejected at first" true
    (run () = Engine.Dropped "verify: not-yet-deployed");
  world := Ok ();
  Alcotest.(check bool) "stale verdict still rejects" true
    (run () = Engine.Dropped "verify: not-yet-deployed");
  Progcache.clear env.Env.prog_cache;
  Alcotest.(check bool) "clear unsticks it" true
    (match run () with Engine.Forwarded _ -> true | _ -> false)

(* --- bootstrap --- *)

let test_bootstrap_local_offer () =
  let b = Bootstrap.create () in
  Bootstrap.add_as b 100 [ Opkey.F_32_match; Opkey.F_fib ];
  Alcotest.(check (list string)) "offer"
    [ "F_32_match"; "F_FIB" ]
    (List.map Opkey.name (Bootstrap.local_offer b 100))

let test_bootstrap_path_intersection () =
  let b = Bootstrap.create () in
  Bootstrap.add_as b 1 [ Opkey.F_32_match; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ];
  Bootstrap.add_as b 2 [ Opkey.F_32_match; Opkey.F_parm ];
  Bootstrap.add_as b 3 [ Opkey.F_32_match; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ];
  Bootstrap.link b 1 2;
  Bootstrap.link b 2 3;
  match Bootstrap.path_supported b ~src:1 ~dst:3 with
  | Some keys ->
      (* AS 2 lacks F_MAC/F_mark, so the path cannot do OPT. *)
      Alcotest.(check (list string)) "intersection"
        [ "F_32_match"; "F_parm" ]
        (List.map Opkey.name keys)
  | None -> Alcotest.fail "path exists"

let test_bootstrap_unreachable () =
  let b = Bootstrap.create () in
  Bootstrap.add_as b 1 [ Opkey.F_32_match ];
  Bootstrap.add_as b 2 [ Opkey.F_32_match ];
  Alcotest.(check bool) "unreachable" true
    (Bootstrap.path_supported b ~src:1 ~dst:2 = None)

let test_bootstrap_plan () =
  Alcotest.(check bool) "satisfied" true
    (Bootstrap.plan ~required:[ Opkey.F_fib ] ~offered:[ Opkey.F_fib; Opkey.F_pit ]
    = Ok ());
  match Bootstrap.plan ~required:[ Opkey.F_mac; Opkey.F_fib ] ~offered:[ Opkey.F_fib ] with
  | Error [ Opkey.F_mac ] -> ()
  | _ -> Alcotest.fail "must report the missing key"

(* --- compat --- *)

let test_compat_tunnel_roundtrip () =
  let dip = Realize.ipv4 ~src:(v4 "10.0.0.1") ~dst:(v4 "10.0.0.2") ~payload:"pp" () in
  let tunneled =
    Compat.encapsulate_ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "198.51.100.1") dip
  in
  (* The tunnel packet is a legacy IPv4 packet that legacy routers
     can forward. *)
  (match Dip_ip.Ipv4.decode tunneled with
  | Ok h ->
      Alcotest.(check int) "DIP protocol number" Compat.dip_protocol_number
        h.Dip_ip.Ipv4.protocol
  | Error e -> Alcotest.fail e);
  match Compat.decapsulate_ipv4 tunneled with
  | Ok inner -> Alcotest.(check bool) "identical" true (Bitbuf.equal inner dip)
  | Error e -> Alcotest.fail e

let test_compat_decapsulate_rejects () =
  let plain =
    Dip_ip.Ipv4.encode
      { Dip_ip.Ipv4.src = v4 "1.2.3.4"; dst = v4 "5.6.7.8"; ttl = 4;
        protocol = 6; payload_len = 0 }
      ~payload:""
  in
  match Compat.decapsulate_ipv4 plain with
  | Error "tunnel: not a DIP tunnel packet" -> ()
  | _ -> Alcotest.fail "non-tunnel packets must be rejected"

let test_compat_strip_restore () =
  let dip = Realize.ipv4 ~src:(v4 "10.0.0.1") ~dst:(v4 "10.0.0.2") ~payload:"data" () in
  match Compat.strip dip with
  | Error e -> Alcotest.fail e
  | Ok legacy -> (
      (* The stripped packet is locations ∥ payload: 8 + 4 bytes. *)
      Alcotest.(check int) "stripped size" 12 (Bitbuf.length legacy);
      let fns =
        [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:32 ~len:32 Opkey.F_source ]
      in
      match Compat.restore ~fns ~loc_len:8 legacy with
      | Error e -> Alcotest.fail e
      | Ok restored -> (
          match Packet.parse restored with
          | Ok view ->
              Alcotest.(check string) "payload back" "data" (Packet.payload view);
              Alcotest.(check int) "2 FNs" 2 (Array.length view.Packet.fns)
          | Error e -> Alcotest.fail e))

let test_compat_restore_preserves_parallel () =
  let legacy = Bitbuf.of_string "ABCDxyz" in
  match
    Compat.restore ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_32_match ] ~parallel:true
      ~hop_limit:9 ~loc_len:4 legacy
  with
  | Error e -> Alcotest.fail e
  | Ok pkt -> (
      match Packet.parse pkt with
      | Ok view ->
          Alcotest.(check bool) "parallel bit" true view.Packet.header.Header.parallel;
          Alcotest.(check int) "hop limit" 9 view.Packet.header.Header.hop_limit;
          Alcotest.(check string) "payload split" "xyz" (Packet.payload view)
      | Error e -> Alcotest.fail e)

let test_compat_restore_short () =
  match Compat.restore ~fns:[] ~loc_len:10 (Bitbuf.of_string "short") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short packet must be rejected"

(* --- registry --- *)

let test_registry_restrict_and_supported () =
  let r = Ops.default_registry () in
  Alcotest.(check int) "all 16 installed" 16 (List.length (Registry.supported r));
  let limited = Registry.restrict r [ Opkey.F_fib; Opkey.F_pit ] in
  Alcotest.(check (list string)) "restricted" [ "F_FIB"; "F_PIT" ]
    (List.map Opkey.name (Registry.supported limited));
  Registry.uninstall limited Opkey.F_pit;
  Alcotest.(check bool) "uninstalled" false (Registry.supports limited Opkey.F_pit)


(* --- Host constructions (§2.3 API) --- *)

let test_host_unrestricted () =
  let h = Host.create ~name:"h" () in
  match Host.send_ipv4 h ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"" () with
  | Ok pkt ->
      Alcotest.(check int) "dip32 header" 26
        (Result.get_ok (Packet.header_size pkt))
  | Error _ -> Alcotest.fail "unrestricted host must construct"

let test_host_checks_offer () =
  let h = Host.create ~offer:[ Opkey.F_32_match; Opkey.F_source ] ~name:"h" () in
  (match Host.send_ipv4 h ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"" () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "offered keys must work");
  match Host.send_interest h ~name:(Name.of_string "/a") ~payload:"" () with
  | Error [ Opkey.F_fib ] -> ()
  | _ -> Alcotest.fail "missing F_FIB must be reported"

let test_host_attach_bootstrap () =
  let world = Bootstrap.create () in
  Bootstrap.add_as world 1 [ Opkey.F_fib; Opkey.F_pit ];
  let h = Host.create ~name:"h" () in
  Host.attach h world ~as_id:1;
  Alcotest.(check bool) "interest ok" true
    (Result.is_ok (Host.send_interest h ~name:(Name.of_string "/a") ~payload:"" ()));
  Alcotest.(check bool) "ip refused" true
    (Result.is_error (Host.send_ipv4 h ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"" ()))

let test_host_attach_path_intersection () =
  let world = Bootstrap.create () in
  let full = Registry.supported reg in
  Bootstrap.add_as world 1 full;
  Bootstrap.add_as world 2 [ Opkey.F_32_match; Opkey.F_source ];
  Bootstrap.link world 1 2;
  let h = Host.create ~name:"h" () in
  (match Host.attach_path h world ~src:1 ~dst:2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* OPT needs all-path support; AS 2 lacks it. *)
  let g = Dip_stdext.Prng.create 55L in
  Host.open_opt_session h ~session_id:9L
    ~path_secrets:[ Dip_opt.Drkey.secret_gen g ]
    ~dst_secret:(Dip_opt.Drkey.secret_gen g);
  match Host.send_opt h ~session_id:9L ~timestamp:0l ~payload:"" () with
  | Error missing ->
      Alcotest.(check bool) "names OPT keys" true
        (List.mem Opkey.F_parm missing)
  | Ok _ -> Alcotest.fail "path without OPT support must refuse"

let test_host_opt_roundtrip () =
  let g = Dip_stdext.Prng.create 56L in
  let path_secrets = List.init 2 (fun _ -> Dip_opt.Drkey.secret_gen g) in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let sender = Host.create ~name:"sender" () in
  Host.open_opt_session sender ~session_id:11L ~path_secrets ~dst_secret;
  let pkt =
    match Host.send_opt sender ~session_id:11L ~timestamp:4l ~payload:"data" () with
    | Ok p -> p
    | Error _ -> Alcotest.fail "construction failed"
  in
  (* Run the two on-path routers. *)
  List.iteri
    (fun i secret ->
      let renv = Env.create ~name:(Printf.sprintf "r%d" (i + 1)) () in
      Env.set_opt_identity renv ~secret ~hop:(i + 1);
      ignore (Engine.process ~registry:reg renv ~now:0.0 ~ingress:0 pkt))
    path_secrets;
  (* The destination (same session knowledge) verifies. *)
  let receiver = Host.create ~name:"receiver" () in
  Host.open_opt_session receiver ~session_id:11L ~path_secrets ~dst_secret;
  match Host.receive receiver ~registry:reg ~now:0.0 pkt with
  | Engine.Delivered -> ()
  | Engine.Dropped r -> Alcotest.failf "receiver rejected: %s" r
  | _ -> Alcotest.fail "expected delivery"

let test_host_remaining_constructors () =
  let h = Host.create ~name:"h" () in
  let name = Name.of_string "/a/b" in
  Alcotest.(check bool) "data" true
    (Result.is_ok (Host.send_data h ~name ~content:"c" ()));
  let dag = Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s") in
  Alcotest.(check bool) "xia" true
    (Result.is_ok (Host.send_xia h ~dag ~payload:"p" ()));
  let g = Dip_stdext.Prng.create 66L in
  let secrets = [ Dip_opt.Drkey.secret_gen g; Dip_opt.Drkey.secret_gen g ] in
  (match
     Host.send_epic h ~src_id:1l ~timestamp:2l ~path_secrets:secrets
       ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"e" ()
   with
  | Ok pkt ->
      (* The constructed packet passes both routers. *)
      List.iteri
        (fun i secret ->
          let env = Env.create ~name:"r" () in
          Env.set_opt_identity env ~secret ~hop:(i + 1);
          Dip_ip.Ipv4.add_route env.Env.v4_routes
            (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
          match Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt with
          | Engine.Forwarded _, _ -> ()
          | Engine.Dropped r, _ -> Alcotest.failf "hop %d dropped: %s" (i + 1) r
          | _ -> Alcotest.fail "expected forward")
        secrets
  | Error _ -> Alcotest.fail "epic construction failed");
  (* A restricted host refuses what the network lacks. *)
  let limited = Host.create ~offer:[ Opkey.F_fib ] ~name:"l" () in
  Alcotest.(check bool) "xia refused" true
    (Result.is_error (Host.send_xia limited ~dag ~payload:"p" ()))

let test_host_unknown_session () =
  let h = Host.create ~name:"h" () in
  Alcotest.(check bool) "unknown session raises" true
    (try ignore (Host.send_opt h ~session_id:99L ~timestamp:0l ~payload:"" ()); false
     with Not_found -> true)

(* --- QCheck --- *)

let prop_fn_wire_roundtrip =
  QCheck.Test.make ~name:"fn: wire roundtrip" ~count:500
    QCheck.(triple (int_range 0 0xFFFF) (int_range 1 0xFFFF) (pair (int_range 1 15) bool))
    (fun (loc, len, (key, host)) ->
      let key = Option.get (Opkey.of_int key) in
      let fn = Fn.v ~tag:(if host then Fn.Host else Fn.Router) ~loc ~len key in
      let buf = Bitbuf.create 6 in
      Fn.encode fn buf ~pos:0;
      match Fn.decode buf ~pos:0 with Ok fn' -> Fn.equal fn fn' | Error _ -> false)

let prop_fn_decode_total =
  (* Fn.decode must be total: random bytes at any position, including
     out-of-range and truncated ones, yield Ok or Error — never an
     exception. *)
  QCheck.Test.make ~name:"fn: decode never raises" ~count:500
    QCheck.(pair small_string (int_range (-8) 16))
    (fun (bytes, pos) ->
      let buf = Bitbuf.of_string bytes in
      match Fn.decode buf ~pos with Ok _ | Error _ -> true)

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"packet: build/parse roundtrip" ~count:300
    QCheck.(pair (int_range 0 64) small_string)
    (fun (loc_len, payload) ->
      let locations = String.make loc_len 'L' in
      let fns =
        if loc_len >= 4 then [ Fn.v ~loc:0 ~len:32 Opkey.F_fib ] else []
      in
      let buf = Packet.build ~fns ~locations ~payload () in
      match Packet.parse buf with
      | Ok view ->
          Packet.payload view = payload
          && view.Packet.header.Header.fn_loc_len = loc_len
          && Array.length view.Packet.fns = List.length fns
      | Error _ -> false)

let prop_progcache_cold_agree =
  (* Cached parse ≡ cold parse, on well-formed, malformed and
     truncated packets alike — both the insert (miss) and the reuse
     (hit) path. *)
  QCheck.Test.make ~name:"progcache: cached parse agrees with cold parse"
    ~count:300
    QCheck.(
      quad
        (list_of_size (Gen.int_range 0 4)
           (triple (int_range 0 200) (int_range 1 56)
              (pair (int_range 1 15) bool)))
        (int_range 0 300) small_string (int_range 0 300))
    (fun (specs, smash, payload, cut) ->
      let fns =
        List.map
          (fun (loc, len, (k, host)) ->
            Fn.v
              ~tag:(if host then Fn.Host else Fn.Router)
              ~loc ~len
              (Option.get (Opkey.of_int k)))
          specs
      in
      (* 32-byte region: every generated FN fits, so malformed inputs
         come from the byte-smash and truncation below. *)
      let built = Packet.build ~fns ~locations:(String.make 32 'L') ~payload () in
      let views_equal a b =
        a.Packet.header = b.Packet.header
        && Array.length a.Packet.fns = Array.length b.Packet.fns
        && Array.for_all2 Fn.equal a.Packet.fns b.Packet.fns
        && a.Packet.loc_base = b.Packet.loc_base
        && Packet.payload a = Packet.payload b
      in
      let check_buf str =
        let cold = Packet.parse (Bitbuf.of_string str) in
        let cache = Progcache.create () in
        let agree = function
          | Ok (v, _) -> (match cold with Ok v' -> views_equal v v' | Error _ -> false)
          | Error e -> (match cold with Error e' -> e = e' | Ok _ -> false)
        in
        agree (Progcache.parse cache (Bitbuf.of_string str))
        && agree (Progcache.parse cache (Bitbuf.of_string str))
      in
      let s = Bitbuf.to_string built in
      let smashed =
        let b = Bytes.of_string s in
        Bytes.set b (smash mod Bytes.length b) '\xFF';
        Bytes.to_string b
      in
      check_buf s
      && check_buf (String.sub s 0 (min cut (String.length s)))
      && check_buf smashed
      && check_buf (String.sub smashed 0 (min cut (String.length smashed))))

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine: same input, same verdict" ~count:200
    QCheck.(pair int32 small_string)
    (fun (dst, payload) ->
      let run () =
        let env = Env.create ~name:"d" () in
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
        let pkt = Realize.ipv4 ~src:(v4 "9.9.9.9") ~dst ~payload () in
        fst (Engine.process ~registry:reg env ~now:0.0 ~ingress:0 pkt)
      in
      run () = run ())

let prop_realize_always_parses =
  (* Every realization must produce a packet its own parser accepts,
     with FN fields inside the locations region. *)
  QCheck.Test.make ~name:"realize: constructions always parse" ~count:200
    QCheck.(pair (int_range 0 5) (int_range 1 4))
    (fun (which, hops) ->
      let dest_key = String.make 16 'k' in
      let name = Name.of_string "/p/q" in
      let pkt =
        match which with
        | 0 -> Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"x" ()
        | 1 -> Realize.ipv6 ~src:(v6 "::1") ~dst:(v6 "::2") ~payload:"x" ()
        | 2 -> Realize.ndn_interest ~name ~payload:"x" ()
        | 3 -> Realize.opt ~hops ~session_id:1L ~timestamp:0l ~dest_key ~payload:"x" ()
        | 4 ->
            Realize.ndn_opt_data ~hops ~session_id:1L ~timestamp:0l ~dest_key
              ~name ~content:"x" ()
        | _ ->
            Realize.xia
              ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
              ~payload:"x" ()
      in
      match Packet.parse pkt with Ok _ -> true | Error _ -> false)

let () =
  Alcotest.run "dip-core"
    [
      ( "opkey",
        [ Alcotest.test_case "Table 1" `Quick test_opkey_table1 ] );
      ( "fn",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_fn_wire_roundtrip;
          Alcotest.test_case "6-byte triples" `Quick test_fn_size_is_6_bytes;
          Alcotest.test_case "tag bit" `Quick test_fn_tag_bit;
          Alcotest.test_case "decode rejects" `Quick test_fn_decode_rejects;
          QCheck_alcotest.to_alcotest prop_fn_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_fn_decode_total;
        ] );
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "basic size" `Quick test_header_basic_size;
          Alcotest.test_case "length derivation" `Quick test_header_length_derivation;
          Alcotest.test_case "loc_len limit" `Quick test_header_loc_len_limit;
          Alcotest.test_case "hop limit" `Quick test_header_hop_limit;
        ] );
      ( "packet",
        [
          Alcotest.test_case "build/parse" `Quick test_packet_build_parse;
          Alcotest.test_case "FN bounds" `Quick test_packet_rejects_fn_out_of_bounds;
          Alcotest.test_case "corrupt FN" `Quick test_packet_parse_rejects_corrupt_fn;
          Alcotest.test_case "set target" `Quick test_packet_set_target;
          QCheck_alcotest.to_alcotest prop_packet_roundtrip;
        ] );
      ( "table2",
        [ Alcotest.test_case "exact reproduction" `Quick test_table2_exact ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_engine_deterministic;
          QCheck_alcotest.to_alcotest prop_realize_always_parses;
        ] );
      ( "engine-ip",
        [
          Alcotest.test_case "dip32 forward" `Quick test_engine_dip32_forward;
          Alcotest.test_case "dip32 no route" `Quick test_engine_dip32_no_route;
          Alcotest.test_case "dip32 local" `Quick test_engine_dip32_local_delivery;
          Alcotest.test_case "dip128 forward" `Quick test_engine_dip128_forward;
          Alcotest.test_case "hop limit" `Quick test_engine_hop_limit_decrement;
          Alcotest.test_case "first decision wins" `Quick test_engine_first_decision_wins;
          Alcotest.test_case "local beats later route" `Quick test_engine_local_beats_later_route;
        ] );
      ( "engine-ndn",
        [
          Alcotest.test_case "interest/data" `Quick test_engine_ndn_interest_then_data;
          Alcotest.test_case "cache responds" `Quick test_engine_ndn_cache_responds;
          Alcotest.test_case "no fib" `Quick test_engine_ndn_no_fib;
        ] );
      ( "engine-opt",
        [
          Alcotest.test_case "end to end" `Quick test_engine_opt_end_to_end;
          Alcotest.test_case "missing hop" `Quick test_engine_opt_detects_missing_hop;
          Alcotest.test_case "payload tamper" `Quick test_engine_opt_detects_payload_tamper;
          Alcotest.test_case "unknown session" `Quick test_engine_opt_unknown_session;
          QCheck_alcotest.to_alcotest prop_opt_random_hops_verify;
        ] );
      ( "engine-ndn-opt",
        [ Alcotest.test_case "data path" `Quick test_engine_ndn_opt_data_path ] );
      ( "engine-xia",
        [
          Alcotest.test_case "forward and deliver" `Quick test_engine_xia_forward_and_deliver;
          Alcotest.test_case "dead end" `Quick test_engine_xia_dead_end;
        ] );
      ( "guard",
        [
          Alcotest.test_case "ops limit" `Quick test_engine_guard_ops_limit;
          Alcotest.test_case "state limit" `Quick test_engine_guard_state_limit;
        ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "unsupported mandatory" `Quick test_engine_unsupported_mandatory_fn;
          Alcotest.test_case "unsupported partial OPT" `Quick test_engine_unsupported_partial_opt;
          Alcotest.test_case "ignorable skipped" `Quick test_engine_ignorable_unsupported_fn;
          Alcotest.test_case "ignorable telemetry" `Quick test_engine_ignorable_telemetry_skipped;
          Alcotest.test_case "error message roundtrip" `Quick test_errors_roundtrip;
          Alcotest.test_case "error echo truncated" `Quick test_errors_echo_truncated;
          Alcotest.test_case "error rejects non-control" `Quick test_errors_rejects_noncontrol;
        ] );
      ( "f-pass",
        [
          Alcotest.test_case "accepts genuine" `Quick test_fpass_accepts_genuine;
          Alcotest.test_case "rejects forged" `Quick test_fpass_rejects_forged;
          Alcotest.test_case "disabled is free" `Quick test_fpass_disabled_is_free;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "critical path" `Quick test_parallel_depth;
          Alcotest.test_case "skipped host FNs excluded" `Quick
            test_parallel_depth_excludes_skipped;
          Alcotest.test_case "ignorable FNs excluded" `Quick
            test_parallel_depth_excludes_ignorable;
        ] );
      ( "progcache",
        [
          Alcotest.test_case "hit/miss counting" `Quick test_progcache_hit_miss;
          Alcotest.test_case "disabled cache" `Quick test_progcache_disabled;
          Alcotest.test_case "LRU eviction" `Quick test_progcache_lru_eviction;
          Alcotest.test_case "verify memoized" `Quick test_progcache_verify_memoized;
          Alcotest.test_case "cold/cached agree" `Quick test_progcache_cold_cache_agree;
          Alcotest.test_case "truncation still errors" `Quick
            test_progcache_truncation_still_errors;
          Alcotest.test_case "control invalidation" `Quick
            test_progcache_control_invalidation;
          Alcotest.test_case "stale without control" `Quick
            test_progcache_stale_verdict_without_control;
          QCheck_alcotest.to_alcotest prop_progcache_cold_agree;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "local offer" `Quick test_bootstrap_local_offer;
          Alcotest.test_case "path intersection" `Quick test_bootstrap_path_intersection;
          Alcotest.test_case "unreachable" `Quick test_bootstrap_unreachable;
          Alcotest.test_case "plan" `Quick test_bootstrap_plan;
        ] );
      ( "compat",
        [
          Alcotest.test_case "tunnel roundtrip" `Quick test_compat_tunnel_roundtrip;
          Alcotest.test_case "decapsulate rejects" `Quick test_compat_decapsulate_rejects;
          Alcotest.test_case "strip/restore" `Quick test_compat_strip_restore;
          Alcotest.test_case "restore short" `Quick test_compat_restore_short;
          Alcotest.test_case "restore preserves flags" `Quick test_compat_restore_preserves_parallel;
        ] );
      ( "host",
        [
          Alcotest.test_case "unrestricted" `Quick test_host_unrestricted;
          Alcotest.test_case "checks offer" `Quick test_host_checks_offer;
          Alcotest.test_case "attach bootstrap" `Quick test_host_attach_bootstrap;
          Alcotest.test_case "path intersection" `Quick test_host_attach_path_intersection;
          Alcotest.test_case "OPT roundtrip" `Quick test_host_opt_roundtrip;
          Alcotest.test_case "unknown session" `Quick test_host_unknown_session;
          Alcotest.test_case "remaining constructors" `Quick test_host_remaining_constructors;
        ] );
      ( "registry",
        [ Alcotest.test_case "restrict/supported" `Quick test_registry_restrict_and_supported ] );
    ]
