(* Tests for the lookup substrate: IP addresses/prefixes, the LPM
   trie, content names, the name FIB, the PIT and the content store. *)

open Dip_tables

(* --- Ipaddr --- *)

let test_v4_parse () =
  let a = Ipaddr.V4.of_string "192.168.1.42" in
  Alcotest.(check string) "roundtrip" "192.168.1.42" (Ipaddr.V4.to_string a);
  Alcotest.(check int32) "value" 0xC0A8012Al a

let test_v4_parse_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Ipaddr.V4.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1..2.3"; "" ]

let test_v4_wire () =
  let a = Ipaddr.V4.of_string "10.0.0.1" in
  Alcotest.(check string) "wire" "\x0a\x00\x00\x01" (Ipaddr.V4.to_wire a);
  Alcotest.(check int32) "roundtrip" a (Ipaddr.V4.of_wire (Ipaddr.V4.to_wire a))

let test_v4_bits () =
  let a = Ipaddr.V4.of_string "128.0.0.1" in
  Alcotest.(check bool) "msb" true (Ipaddr.V4.bit a 0);
  Alcotest.(check bool) "lsb" true (Ipaddr.V4.bit a 31);
  Alcotest.(check bool) "middle" false (Ipaddr.V4.bit a 15)

let test_v6_parse_full () =
  let a = Ipaddr.V6.of_string "2001:db8:0:0:0:0:0:1" in
  Alcotest.(check string) "roundtrip" "2001:db8:0:0:0:0:0:1" (Ipaddr.V6.to_string a)

let test_v6_parse_elision () =
  let a = Ipaddr.V6.of_string "2001:db8::1" in
  let b = Ipaddr.V6.of_string "2001:db8:0:0:0:0:0:1" in
  Alcotest.(check bool) ":: expands" true (Ipaddr.V6.compare a b = 0);
  let z = Ipaddr.V6.of_string "::" in
  Alcotest.(check bool) "all zero" true (z = (0L, 0L))

let test_v6_parse_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Ipaddr.V6.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "1:2:3"; "2001:db8::1::2"; "12345::"; "g::1" ]

let test_v6_wire () =
  let a = Ipaddr.V6.of_string "2001:db8::ff" in
  let w = Ipaddr.V6.to_wire a in
  Alcotest.(check int) "16 bytes" 16 (String.length w);
  Alcotest.(check bool) "roundtrip" true (Ipaddr.V6.of_wire w = a)

let test_v6_bits () =
  let a = Ipaddr.V6.of_string "8000::1" in
  Alcotest.(check bool) "msb" true (Ipaddr.V6.bit a 0);
  Alcotest.(check bool) "lsb" true (Ipaddr.V6.bit a 127);
  Alcotest.(check bool) "bit 64" false (Ipaddr.V6.bit a 64)

let test_prefix_parse_and_match () =
  let p = Ipaddr.Prefix.of_string "10.0.0.0/8" in
  Alcotest.(check string) "render" "10.0.0.0/8" (Ipaddr.Prefix.to_string p);
  let inside = Ipaddr.Prefix.V4 (Ipaddr.V4.of_string "10.1.2.3") in
  let outside = Ipaddr.Prefix.V4 (Ipaddr.V4.of_string "11.0.0.1") in
  Alcotest.(check bool) "inside" true (Ipaddr.Prefix.matches p inside);
  Alcotest.(check bool) "outside" false (Ipaddr.Prefix.matches p outside)

let test_prefix_masks_host_bits () =
  let p = Ipaddr.Prefix.of_string "10.1.2.3/8" in
  Alcotest.(check string) "host bits cleared" "10.0.0.0/8"
    (Ipaddr.Prefix.to_string p)

let test_prefix_v6_match () =
  let p = Ipaddr.Prefix.of_string "2001:db8::/32" in
  let inside = Ipaddr.Prefix.V6 (Ipaddr.V6.of_string "2001:db8:dead::beef") in
  let outside = Ipaddr.Prefix.V6 (Ipaddr.V6.of_string "2001:db9::1") in
  Alcotest.(check bool) "inside" true (Ipaddr.Prefix.matches p inside);
  Alcotest.(check bool) "outside" false (Ipaddr.Prefix.matches p outside);
  (* Cross-family never matches. *)
  Alcotest.(check bool) "cross family" false
    (Ipaddr.Prefix.matches p (Ipaddr.Prefix.V4 0l))

(* --- LPM trie --- *)

let v4_bits a i = Ipaddr.V4.bit a i

let test_lpm_basic () =
  let t = Lpm_trie.create () in
  let p8 = Ipaddr.V4.of_string "10.0.0.0" in
  let p16 = Ipaddr.V4.of_string "10.1.0.0" in
  Lpm_trie.insert t ~bits:(v4_bits p8) ~len:8 "coarse";
  Lpm_trie.insert t ~bits:(v4_bits p16) ~len:16 "fine";
  Alcotest.(check int) "size" 2 (Lpm_trie.size t);
  let q = Ipaddr.V4.of_string "10.1.2.3" in
  Alcotest.(check (option (pair int string))) "longest wins" (Some (16, "fine"))
    (Lpm_trie.lookup t ~bits:(v4_bits q) ~len:32);
  let q2 = Ipaddr.V4.of_string "10.2.0.1" in
  Alcotest.(check (option (pair int string))) "falls back" (Some (8, "coarse"))
    (Lpm_trie.lookup t ~bits:(v4_bits q2) ~len:32);
  let q3 = Ipaddr.V4.of_string "11.0.0.1" in
  Alcotest.(check (option (pair int string))) "no match" None
    (Lpm_trie.lookup t ~bits:(v4_bits q3) ~len:32)

let test_lpm_default_route () =
  let t = Lpm_trie.create () in
  Lpm_trie.insert t ~bits:(fun _ -> false) ~len:0 "default";
  let q = Ipaddr.V4.of_string "203.0.113.7" in
  Alcotest.(check (option (pair int string))) "default" (Some (0, "default"))
    (Lpm_trie.lookup t ~bits:(v4_bits q) ~len:32)

let test_lpm_replace () =
  let t = Lpm_trie.create () in
  let p = Ipaddr.V4.of_string "10.0.0.0" in
  Lpm_trie.insert t ~bits:(v4_bits p) ~len:8 1;
  Lpm_trie.insert t ~bits:(v4_bits p) ~len:8 2;
  Alcotest.(check int) "still one entry" 1 (Lpm_trie.size t);
  Alcotest.(check (option int)) "replaced" (Some 2)
    (Lpm_trie.find_exact t ~bits:(v4_bits p) ~len:8)

let test_lpm_remove () =
  let t = Lpm_trie.create () in
  let p8 = Ipaddr.V4.of_string "10.0.0.0" in
  let p16 = Ipaddr.V4.of_string "10.1.0.0" in
  Lpm_trie.insert t ~bits:(v4_bits p8) ~len:8 "a";
  Lpm_trie.insert t ~bits:(v4_bits p16) ~len:16 "b";
  Alcotest.(check bool) "removed" true (Lpm_trie.remove t ~bits:(v4_bits p16) ~len:16);
  Alcotest.(check bool) "absent now" false
    (Lpm_trie.remove t ~bits:(v4_bits p16) ~len:16);
  let q = Ipaddr.V4.of_string "10.1.2.3" in
  Alcotest.(check (option (pair int string))) "falls back after removal"
    (Some (8, "a"))
    (Lpm_trie.lookup t ~bits:(v4_bits q) ~len:32);
  (* Pruning: depth shrinks back to the 8-bit path. *)
  Alcotest.(check int) "pruned" 8 (Lpm_trie.depth t)

let test_lpm_128bit_keys () =
  let t = Lpm_trie.create () in
  let p = Ipaddr.V6.of_string "2001:db8::" in
  Lpm_trie.insert t ~bits:(Ipaddr.V6.bit p) ~len:32 "v6";
  let q = Ipaddr.V6.of_string "2001:db8::42" in
  Alcotest.(check (option (pair int string))) "v6 lookup" (Some (32, "v6"))
    (Lpm_trie.lookup t ~bits:(Ipaddr.V6.bit q) ~len:128)

let test_lpm_fold_counts () =
  let t = Lpm_trie.create () in
  let g = Dip_stdext.Prng.create 99L in
  for _ = 1 to 100 do
    let a = Int32.of_int (Dip_stdext.Prng.int g 0x3FFFFFFF) in
    let len = Dip_stdext.Prng.int_in g 1 32 in
    Lpm_trie.insert t ~bits:(Ipaddr.V4.bit a) ~len ()
  done;
  let folded = Lpm_trie.fold (fun _ _ acc -> acc + 1) t 0 in
  Alcotest.(check int) "fold visits size entries" (Lpm_trie.size t) folded

let prop_lpm_against_reference =
  (* The trie must agree with a brute-force longest-match scan. *)
  QCheck.Test.make ~name:"lpm: agrees with linear scan" ~count:100
    QCheck.(small_list (pair int32 (int_range 0 32)))
    (fun entries ->
      let t = Lpm_trie.create () in
      let norm =
        List.map
          (fun (a, len) ->
            let masked =
              if len = 0 then 0l
              else Int32.logand a (Int32.shift_left (-1l) (32 - len))
            in
            (masked, len))
          entries
      in
      List.iter
        (fun (a, len) -> Lpm_trie.insert t ~bits:(Ipaddr.V4.bit a) ~len (a, len))
        norm;
      let g = Dip_stdext.Prng.create 5L in
      List.for_all
        (fun _ ->
          let q = Int32.of_int (Dip_stdext.Prng.int g 0x3FFFFFFF) in
          let reference =
            List.fold_left
              (fun best (a, len) ->
                let m =
                  if len = 0 then true
                  else
                    Int32.logand q (Int32.shift_left (-1l) (32 - len)) = a
                in
                match (m, best) with
                | false, _ -> best
                | true, Some (_, bl) when bl >= len -> best
                | true, _ -> Some (a, len))
              None norm
          in
          let got = Lpm_trie.lookup t ~bits:(Ipaddr.V4.bit q) ~len:32 in
          match (reference, got) with
          | None, None -> true
          | Some (_, len), Some (gl, _) -> len = gl
          | _ -> false)
        (List.init 20 Fun.id))

(* --- Name --- *)

let test_name_parse () =
  let n = Name.of_string "/video/intro.mp4/seg3" in
  Alcotest.(check (list string)) "components"
    [ "video"; "intro.mp4"; "seg3" ] (Name.components n);
  Alcotest.(check string) "canonical" "/video/intro.mp4/seg3" (Name.to_string n);
  Alcotest.(check string) "no leading slash ok" "/a/b"
    (Name.to_string (Name.of_string "a/b"))

let test_name_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Name.of_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "/"; "/a//b" ]

let test_name_prefix_relation () =
  let ab = Name.of_string "/a/b" in
  let abc = Name.of_string "/a/b/c" in
  let abx = Name.of_string "/a/bc" in
  Alcotest.(check bool) "prefix" true (Name.is_prefix ~prefix:ab abc);
  Alcotest.(check bool) "self" true (Name.is_prefix ~prefix:ab ab);
  Alcotest.(check bool) "component-wise, not string-wise" false
    (Name.is_prefix ~prefix:ab abx);
  Alcotest.(check bool) "not reversed" false (Name.is_prefix ~prefix:abc ab)

let test_name_wire_roundtrip () =
  let n = Name.of_string "/hotnets.org/papers/dip" in
  Alcotest.(check bool) "roundtrip" true (Name.equal n (Name.of_wire (Name.to_wire n)))

let test_name_wire_rejects_garbage () =
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Name.of_wire "\x02\x00\x01a");
       false
     with Invalid_argument _ -> true)

let test_name_hash_stable () =
  let a = Name.of_string "/hotnets.org" in
  Alcotest.(check int32) "stable" (Name.hash32 a)
    (Name.hash32 (Name.of_string "/hotnets.org"))

let prop_name_wire_roundtrip =
  QCheck.Test.make ~name:"name: wire roundtrip" ~count:300
    QCheck.(small_list (string_gen_of_size (QCheck.Gen.int_range 1 8)
                          (QCheck.Gen.char_range 'a' 'z')))
    (fun cs ->
      QCheck.assume (cs <> [] && List.length cs < 256);
      let n = Name.of_components cs in
      Name.equal n (Name.of_wire (Name.to_wire n)))

(* --- Name FIB --- *)

let test_fib_lpm () =
  let fib = Name_fib.create () in
  Name_fib.insert fib (Name.of_string "/video") 1;
  Name_fib.insert fib (Name.of_string "/video/intro.mp4") 2;
  let q = Name.of_string "/video/intro.mp4/seg1" in
  (match Name_fib.lookup fib q with
  | Some (p, v) ->
      Alcotest.(check string) "longest prefix" "/video/intro.mp4" (Name.to_string p);
      Alcotest.(check int) "port" 2 v
  | None -> Alcotest.fail "expected a match");
  (match Name_fib.lookup fib (Name.of_string "/video/other") with
  | Some (p, v) ->
      Alcotest.(check string) "falls back" "/video" (Name.to_string p);
      Alcotest.(check int) "port" 1 v
  | None -> Alcotest.fail "expected fallback");
  Alcotest.(check bool) "miss" true
    (Name_fib.lookup fib (Name.of_string "/audio/x") = None)

let test_fib_hash_path () =
  let fib = Name_fib.create () in
  let n = Name.of_string "/hotnets.org" in
  Name_fib.insert fib n 7;
  Alcotest.(check (option int)) "hash hit" (Some 7)
    (Name_fib.lookup_hash fib (Name.hash32 n));
  Alcotest.(check (option int)) "hash miss" None
    (Name_fib.lookup_hash fib (Name.hash32 (Name.of_string "/other")))

let test_fib_remove () =
  let fib = Name_fib.create () in
  let n = Name.of_string "/a/b" in
  Name_fib.insert fib n 1;
  Alcotest.(check bool) "removed" true (Name_fib.remove fib n);
  Alcotest.(check bool) "gone" true (Name_fib.lookup fib n = None);
  Alcotest.(check (option int)) "hash gone" None
    (Name_fib.lookup_hash fib (Name.hash32 n));
  Alcotest.(check bool) "second remove false" false (Name_fib.remove fib n)

let test_fib_replace_and_size () =
  let fib = Name_fib.create () in
  Name_fib.insert fib (Name.of_string "/a") 1;
  Name_fib.insert fib (Name.of_string "/a") 2;
  Alcotest.(check int) "size" 1 (Name_fib.size fib);
  match Name_fib.lookup fib (Name.of_string "/a") with
  | Some (_, v) -> Alcotest.(check int) "replaced" 2 v
  | None -> Alcotest.fail "expected match"

(* --- PIT --- *)

let test_pit_forward_then_aggregate () =
  let pit = Pit.create () in
  let key = Name.hash32 (Name.of_string "/f") in
  Alcotest.(check bool) "first is Forwarded" true
    (Pit.insert pit ~key ~port:1 ~now:0.0 ~lifetime:4.0 = Pit.Forwarded);
  Alcotest.(check bool) "second port aggregates" true
    (Pit.insert pit ~key ~port:2 ~now:1.0 ~lifetime:4.0 = Pit.Aggregated);
  Alcotest.(check bool) "same port aggregates" true
    (Pit.insert pit ~key ~port:1 ~now:1.0 ~lifetime:4.0 = Pit.Aggregated);
  Alcotest.(check (list int)) "both ports recorded" [ 1; 2 ]
    (List.sort compare (Pit.consume pit ~key ~now:2.0));
  Alcotest.(check (list int)) "consumed" [] (Pit.consume pit ~key ~now:2.0)

let test_pit_expiry () =
  let pit = Pit.create () in
  let key = 42l in
  ignore (Pit.insert pit ~key ~port:3 ~now:0.0 ~lifetime:1.0);
  Alcotest.(check (list int)) "live before expiry" [ 3 ]
    (Pit.pending pit ~key ~now:0.5);
  Alcotest.(check (list int)) "expired" [] (Pit.consume pit ~key ~now:2.0)

let test_pit_capacity () =
  let pit = Pit.create ~capacity:2 () in
  ignore (Pit.insert pit ~key:1l ~port:0 ~now:0.0 ~lifetime:10.0);
  ignore (Pit.insert pit ~key:2l ~port:0 ~now:0.0 ~lifetime:10.0);
  Alcotest.(check bool) "full table rejects" true
    (Pit.insert pit ~key:3l ~port:0 ~now:0.0 ~lifetime:10.0 = Pit.Rejected);
  Alcotest.(check int) "size bounded" 2 (Pit.size pit)

let test_pit_purge () =
  let pit = Pit.create () in
  ignore (Pit.insert pit ~key:1l ~port:0 ~now:0.0 ~lifetime:1.0);
  ignore (Pit.insert pit ~key:2l ~port:0 ~now:0.0 ~lifetime:5.0);
  Alcotest.(check int) "one purged" 1 (Pit.purge_expired pit ~now:2.0);
  Alcotest.(check int) "one left" 1 (Pit.size pit)

let test_pit_expired_slot_reusable () =
  let pit = Pit.create ~capacity:1 () in
  ignore (Pit.insert pit ~key:1l ~port:0 ~now:0.0 ~lifetime:1.0);
  Alcotest.(check bool) "expired entry frees its slot" true
    (Pit.insert pit ~key:1l ~port:5 ~now:2.0 ~lifetime:1.0 = Pit.Forwarded);
  Alcotest.(check (list int)) "new ports only" [ 5 ] (Pit.pending pit ~key:1l ~now:2.5)

(* --- Content store --- *)

let test_cs_basic () =
  let cs = Content_store.create ~capacity:2 in
  let a = Name.of_string "/a" and b = Name.of_string "/b" in
  Content_store.insert cs a "A";
  Content_store.insert cs b "B";
  Alcotest.(check (option string)) "hit" (Some "A") (Content_store.find cs a);
  Alcotest.(check int) "hits counted" 1 (Content_store.hits cs);
  Alcotest.(check (option string)) "miss" None
    (Content_store.find cs (Name.of_string "/c"));
  Alcotest.(check int) "misses counted" 1 (Content_store.misses cs)

let test_cs_lru_eviction () =
  let cs = Content_store.create ~capacity:2 in
  let a = Name.of_string "/a" and b = Name.of_string "/b" in
  let c = Name.of_string "/c" in
  Content_store.insert cs a "A";
  Content_store.insert cs b "B";
  (* Touch /a so /b becomes LRU, then insert /c. *)
  ignore (Content_store.find cs a);
  Content_store.insert cs c "C";
  Alcotest.(check bool) "b evicted" false (Content_store.mem cs b);
  Alcotest.(check bool) "a kept" true (Content_store.mem cs a);
  Alcotest.(check bool) "c present" true (Content_store.mem cs c);
  Alcotest.(check int) "size bounded" 2 (Content_store.size cs)

let test_cs_update_refreshes () =
  let cs = Content_store.create ~capacity:2 in
  let a = Name.of_string "/a" and b = Name.of_string "/b" in
  let c = Name.of_string "/c" in
  Content_store.insert cs a "A";
  Content_store.insert cs b "B";
  Content_store.insert cs a "A2";
  Content_store.insert cs c "C";
  Alcotest.(check (option string)) "updated value survives" (Some "A2")
    (Content_store.find cs a);
  Alcotest.(check bool) "b was evicted" false (Content_store.mem cs b)

let test_cs_remove_and_clear () =
  let cs = Content_store.create ~capacity:4 in
  let a = Name.of_string "/a" in
  Content_store.insert cs a "A";
  Alcotest.(check bool) "remove" true (Content_store.remove cs a);
  Alcotest.(check bool) "remove again" false (Content_store.remove cs a);
  Content_store.insert cs a "A";
  Content_store.clear cs;
  Alcotest.(check int) "cleared" 0 (Content_store.size cs)

(* --- generic LRU --- *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 () in
  Lru.insert l 1 "a";
  Lru.insert l 2 "b";
  Alcotest.(check (option string)) "hit" (Some "a") (Lru.find l 1);
  Alcotest.(check int) "size" 2 (Lru.size l);
  Alcotest.(check int) "capacity" 2 (Lru.capacity l)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 () in
  Lru.insert l 1 "a";
  Lru.insert l 2 "b";
  ignore (Lru.find l 1) (* 2 becomes LRU *);
  Lru.insert l 3 "c";
  Alcotest.(check bool) "2 evicted" false (Lru.mem l 2);
  Alcotest.(check bool) "1 kept" true (Lru.mem l 1);
  Alcotest.(check bool) "3 present" true (Lru.mem l 3)

let test_lru_update_refreshes () =
  let l = Lru.create ~capacity:2 () in
  Lru.insert l 1 "a";
  Lru.insert l 2 "b";
  Lru.insert l 1 "a2" (* refresh: 2 is now LRU *);
  Lru.insert l 3 "c";
  Alcotest.(check (option string)) "updated survives" (Some "a2") (Lru.find l 1);
  Alcotest.(check bool) "2 evicted" false (Lru.mem l 2)

let test_lru_remove_clear_fold () =
  let l = Lru.create ~capacity:4 () in
  Lru.insert l 1 "a";
  Lru.insert l 2 "b";
  Alcotest.(check bool) "remove" true (Lru.remove l 1);
  Alcotest.(check bool) "remove again" false (Lru.remove l 1);
  Alcotest.(check (list int)) "fold most-recent first" [ 2 ]
    (Lru.fold (fun k _ acc -> k :: acc) l [] |> List.rev);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.size l)

let test_lru_custom_equality () =
  (* Case-insensitive string keys via custom hash/equal. *)
  let norm s = String.lowercase_ascii s in
  let l =
    Lru.create
      ~hash:(fun s -> Hashtbl.hash (norm s))
      ~equal:(fun a b -> norm a = norm b)
      ~capacity:2 ()
  in
  Lru.insert l "Key" 1;
  Alcotest.(check (option int)) "case-insensitive hit" (Some 1) (Lru.find l "kEY");
  Lru.insert l "KEY" 2;
  Alcotest.(check int) "same entry" 1 (Lru.size l)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru: size <= capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap () in
      List.iter (fun k -> Lru.insert l k k) keys;
      Lru.size l <= cap)

let prop_lru_most_recent_survives =
  QCheck.Test.make ~name:"lru: most recent insert always present" ~count:200
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
      QCheck.assume (keys <> []);
      let l = Lru.create ~capacity:cap () in
      List.iter (fun k -> Lru.insert l k k) keys;
      Lru.mem l (List.nth keys (List.length keys - 1)))

(* --- custody store --- *)

let cust ?(capacity = 4) ?(max_bytes = 100) () =
  Custody_store.create ~capacity ~max_bytes ~size:String.length ()

let test_cust_basic () =
  let s = cust () in
  Alcotest.(check bool) "stored" true (Custody_store.take s 1 "aaaa" = `Stored);
  Alcotest.(check bool) "stored" true (Custody_store.take s 2 "bb" = `Stored);
  Alcotest.(check int) "size" 2 (Custody_store.size s);
  Alcotest.(check int) "bytes" 6 (Custody_store.bytes s);
  Alcotest.(check (option string)) "find" (Some "aaaa") (Custody_store.find s 1);
  Alcotest.(check bool) "release" true (Custody_store.release s 1);
  Alcotest.(check bool) "release again" false (Custody_store.release s 1);
  Alcotest.(check int) "bytes refunded" 2 (Custody_store.bytes s);
  let c = Custody_store.counters s in
  Alcotest.(check int) "takes" 2 c.Custody_store.takes;
  Alcotest.(check int) "releases" 1 c.Custody_store.releases

let test_cust_capacity_evicts_lru () =
  let s = cust ~capacity:2 () in
  ignore (Custody_store.take s 1 "a");
  ignore (Custody_store.take s 2 "b");
  ignore (Custody_store.find s 1) (* 2 becomes LRU *);
  Alcotest.(check bool) "stored" true (Custody_store.take s 3 "c" = `Stored);
  Alcotest.(check bool) "LRU evicted" false (Custody_store.mem s 2);
  Alcotest.(check bool) "MRU kept" true (Custody_store.mem s 1);
  Alcotest.(check int) "one eviction" 1
    (Custody_store.counters s).Custody_store.evicts

let test_cust_byte_bound_evicts () =
  let s = cust ~capacity:10 ~max_bytes:10 () in
  ignore (Custody_store.take s 1 "aaaa");
  ignore (Custody_store.take s 2 "bbbb");
  (* 8 bytes held; a 4-byte bundle must push out the LRU (key 1). *)
  Alcotest.(check bool) "stored" true (Custody_store.take s 3 "cccc" = `Stored);
  Alcotest.(check bool) "1 evicted for space" false (Custody_store.mem s 1);
  Alcotest.(check int) "bytes bounded" 8 (Custody_store.bytes s);
  Alcotest.(check int) "high water bytes" 8 (Custody_store.high_water_bytes s)

let test_cust_oversized_rejected () =
  let s = cust ~max_bytes:4 () in
  ignore (Custody_store.take s 1 "ab");
  Alcotest.(check bool) "rejected" true
    (Custody_store.take s 2 "too-big" = `Rejected);
  Alcotest.(check bool) "existing untouched" true (Custody_store.mem s 1);
  Alcotest.(check int) "reject counted" 1
    (Custody_store.counters s).Custody_store.rejects

let test_cust_retake_replaces () =
  let s = cust () in
  ignore (Custody_store.take s 1 "aaaa");
  Alcotest.(check bool) "replace" true (Custody_store.take s 1 "bb" = `Stored);
  Alcotest.(check int) "one entry" 1 (Custody_store.size s);
  Alcotest.(check int) "bytes re-measured" 2 (Custody_store.bytes s);
  Alcotest.(check (option string)) "new value" (Some "bb")
    (Custody_store.find s 1)

let test_cust_observer_sees_transitions () =
  let s = cust ~capacity:1 ~max_bytes:4 () in
  let seen = ref [] in
  Custody_store.set_observer s (fun ev -> seen := ev :: !seen);
  ignore (Custody_store.take s 1 "a");
  ignore (Custody_store.take s 2 "b") (* evicts 1, then stores *);
  ignore (Custody_store.release s 2);
  ignore (Custody_store.take s 3 "too-big");
  Alcotest.(check bool) "take/evict/release/reject all observed" true
    (List.rev !seen
    = Custody_store.[ Take; Evict; Take; Release; Reject ])

(* The tentpole safety property: no interleaving of operations may
   ever break either bound — a custodian that over-commits memory
   loses bundles it promised to keep. *)
let prop_cust_bounds_hold =
  QCheck.Test.make ~name:"custody store: bounds hold under interleavings"
    ~count:300
    QCheck.(
      triple (int_range 1 6) (int_range 1 32)
        (small_list
           (pair (int_range 0 3) (pair (int_range 0 9) (int_range 0 12)))))
    (fun (cap, max_bytes, ops) ->
      let s =
        Custody_store.create ~capacity:cap ~max_bytes ~size:String.length ()
      in
      List.for_all
        (fun (op, (key, len)) ->
          (match op with
          | 0 | 1 -> ignore (Custody_store.take s key (String.make len 'x'))
          | 2 -> ignore (Custody_store.release s key)
          | _ -> ignore (Custody_store.evict_lru s));
          Custody_store.size s <= cap
          && Custody_store.bytes s <= max_bytes
          && Custody_store.high_water s <= cap
          && Custody_store.high_water_bytes s <= max_bytes)
        ops)

(* Conservation: everything admitted is either still held or counted
   out exactly once (released or evicted). *)
let prop_cust_conservation =
  QCheck.Test.make ~name:"custody store: takes = held + releases + evicts"
    ~count:300
    QCheck.(
      pair (int_range 1 4)
        (small_list (pair (int_range 0 2) (int_range 0 9))))
    (fun (cap, ops) ->
      let s =
        Custody_store.create ~capacity:cap ~max_bytes:1000
          ~size:String.length ()
      in
      let stored = ref 0 in
      List.iter
        (fun (op, key) ->
          match op with
          | 0 | 1 ->
              (* Re-takes replace in place: count only fresh admissions
                 so the ledger matches held entries. *)
              if not (Custody_store.mem s key) then
                if Custody_store.take s key "pkt" = `Stored then incr stored
                else ()
              else ignore (Custody_store.take s key "pkt")
          | _ -> ignore (Custody_store.release s key))
        ops;
      let c = Custody_store.counters s in
      !stored
      = Custody_store.size s + c.Custody_store.releases
        + c.Custody_store.evicts)

let prop_cs_never_exceeds_capacity =
  QCheck.Test.make ~name:"content store: size <= capacity" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
      let cs = Content_store.create ~capacity:cap in
      List.iter
        (fun k -> Content_store.insert cs (Name.of_string (Printf.sprintf "/k%d" k)) k)
        keys;
      Content_store.size cs <= cap)

let () =
  Alcotest.run "tables"
    [
      ( "ipaddr",
        [
          Alcotest.test_case "v4 parse" `Quick test_v4_parse;
          Alcotest.test_case "v4 invalid" `Quick test_v4_parse_invalid;
          Alcotest.test_case "v4 wire" `Quick test_v4_wire;
          Alcotest.test_case "v4 bits" `Quick test_v4_bits;
          Alcotest.test_case "v6 parse full" `Quick test_v6_parse_full;
          Alcotest.test_case "v6 elision" `Quick test_v6_parse_elision;
          Alcotest.test_case "v6 invalid" `Quick test_v6_parse_invalid;
          Alcotest.test_case "v6 wire" `Quick test_v6_wire;
          Alcotest.test_case "v6 bits" `Quick test_v6_bits;
          Alcotest.test_case "prefix parse/match" `Quick test_prefix_parse_and_match;
          Alcotest.test_case "prefix masks host bits" `Quick test_prefix_masks_host_bits;
          Alcotest.test_case "prefix v6 match" `Quick test_prefix_v6_match;
        ] );
      ( "lpm",
        [
          Alcotest.test_case "basic" `Quick test_lpm_basic;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "replace" `Quick test_lpm_replace;
          Alcotest.test_case "remove + prune" `Quick test_lpm_remove;
          Alcotest.test_case "128-bit keys" `Quick test_lpm_128bit_keys;
          Alcotest.test_case "fold" `Quick test_lpm_fold_counts;
          QCheck_alcotest.to_alcotest prop_lpm_against_reference;
        ] );
      ( "name",
        [
          Alcotest.test_case "parse" `Quick test_name_parse;
          Alcotest.test_case "invalid" `Quick test_name_invalid;
          Alcotest.test_case "prefix relation" `Quick test_name_prefix_relation;
          Alcotest.test_case "wire roundtrip" `Quick test_name_wire_roundtrip;
          Alcotest.test_case "wire rejects garbage" `Quick test_name_wire_rejects_garbage;
          Alcotest.test_case "hash stable" `Quick test_name_hash_stable;
          QCheck_alcotest.to_alcotest prop_name_wire_roundtrip;
        ] );
      ( "fib",
        [
          Alcotest.test_case "longest prefix" `Quick test_fib_lpm;
          Alcotest.test_case "hash path" `Quick test_fib_hash_path;
          Alcotest.test_case "remove" `Quick test_fib_remove;
          Alcotest.test_case "replace/size" `Quick test_fib_replace_and_size;
        ] );
      ( "pit",
        [
          Alcotest.test_case "forward then aggregate" `Quick test_pit_forward_then_aggregate;
          Alcotest.test_case "expiry" `Quick test_pit_expiry;
          Alcotest.test_case "capacity" `Quick test_pit_capacity;
          Alcotest.test_case "purge" `Quick test_pit_purge;
          Alcotest.test_case "expired slot reusable" `Quick test_pit_expired_slot_reusable;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "update refreshes" `Quick test_lru_update_refreshes;
          Alcotest.test_case "remove/clear/fold" `Quick test_lru_remove_clear_fold;
          Alcotest.test_case "custom equality" `Quick test_lru_custom_equality;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_lru_most_recent_survives;
        ] );
      ( "content-store",
        [
          Alcotest.test_case "basic" `Quick test_cs_basic;
          Alcotest.test_case "lru eviction" `Quick test_cs_lru_eviction;
          Alcotest.test_case "update refreshes" `Quick test_cs_update_refreshes;
          Alcotest.test_case "remove/clear" `Quick test_cs_remove_and_clear;
          QCheck_alcotest.to_alcotest prop_cs_never_exceeds_capacity;
        ] );
      ( "custody-store",
        [
          Alcotest.test_case "basic" `Quick test_cust_basic;
          Alcotest.test_case "capacity evicts lru" `Quick
            test_cust_capacity_evicts_lru;
          Alcotest.test_case "byte bound evicts" `Quick
            test_cust_byte_bound_evicts;
          Alcotest.test_case "oversized rejected" `Quick
            test_cust_oversized_rejected;
          Alcotest.test_case "re-take replaces" `Quick test_cust_retake_replaces;
          Alcotest.test_case "observer transitions" `Quick
            test_cust_observer_sees_transitions;
          QCheck_alcotest.to_alcotest prop_cust_bounds_hold;
          QCheck_alcotest.to_alcotest prop_cust_conservation;
        ] );
    ]
