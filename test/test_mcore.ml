(* Tests for Dip_mcore, the domain-parallel batched data plane: the
   SPSC rings, flow-hash sharding, batch ≡ sequential-fold
   equivalence (engine-level and pool-level), snapshot publication,
   per-worker metrics merging, and the headline determinism property:
   an N-domain simulator run delivers exactly what the single-domain
   run delivers. *)

open Dip_core
module Mcore = Dip_mcore
module Sim = Dip_netsim.Sim
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string
let registry = Ops.default_registry ()

(* --- Spsc --- *)

let test_spsc_fifo () =
  let q = Mcore.Spsc.create ~capacity:8 in
  Alcotest.(check int) "rounded capacity" 8 (Mcore.Spsc.capacity q);
  Alcotest.(check bool) "empty" true (Mcore.Spsc.is_empty q);
  for i = 1 to 8 do
    Alcotest.(check bool) "push" true (Mcore.Spsc.push q i)
  done;
  Alcotest.(check bool) "full push rejected" false (Mcore.Spsc.push q 9);
  Alcotest.(check int) "size" 8 (Mcore.Spsc.size q);
  for i = 1 to 8 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Mcore.Spsc.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Mcore.Spsc.pop q);
  (* Wrap around the ring a few times. *)
  for round = 0 to 5 do
    for i = 0 to 5 do
      ignore (Mcore.Spsc.push q ((round * 10) + i))
    done;
    for i = 0 to 5 do
      Alcotest.(check (option int)) "wrapped fifo"
        (Some ((round * 10) + i))
        (Mcore.Spsc.pop q)
    done
  done

let test_spsc_cross_domain () =
  (* One producer domain, one consumer domain, blocking consumption:
     every item arrives exactly once, in order, and the stop flag
     lets the consumer drain before exiting. *)
  let q = Mcore.Spsc.create ~capacity:4 in
  let n = 500 in
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () ->
        let got = ref [] in
        let rec loop () =
          match Mcore.Spsc.pop_wait q ~stop:(fun () -> Atomic.get stop) with
          | Some v ->
              got := v :: !got;
              loop ()
          | None -> List.rev !got
        in
        loop ())
  in
  for i = 1 to n do
    while not (Mcore.Spsc.push q i) do
      Domain.cpu_relax ()
    done
  done;
  Atomic.set stop true;
  Mcore.Spsc.wake q;
  let got = Domain.join consumer in
  Alcotest.(check (list int)) "all items, in order" (List.init n (fun i -> i + 1)) got

let test_spsc_capacity_guard () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Spsc.create: capacity must be >= 1") (fun () ->
      ignore (Mcore.Spsc.create ~capacity:0))

(* Regression (PR 7): [size] used to load tail before head, so a pop
   landing between the two loads made it return a negative count.
   Sample it from both ring ends and a third observer domain while a
   push/pop storm runs: every sample must stay within [0, capacity]. *)
let prop_spsc_size_bounded =
  QCheck.Test.make
    ~name:"spsc: size in [0, capacity] under concurrent push/pop" ~count:15
    QCheck.(pair (int_range 1 8) (int_range 0 250))
    (fun (capacity, n) ->
      let q = Mcore.Spsc.create ~capacity in
      let cap = Mcore.Spsc.capacity q in
      let ok = Atomic.make true in
      let finished = Atomic.make false in
      let check () =
        let s = Mcore.Spsc.size q in
        if s < 0 || s > cap then Atomic.set ok false
      in
      let observer =
        Domain.spawn (fun () ->
            while not (Atomic.get finished) do
              check ();
              Domain.cpu_relax ()
            done)
      in
      let producer =
        Domain.spawn (fun () ->
            for i = 1 to n do
              check ();
              while not (Mcore.Spsc.push q i) do
                Domain.cpu_relax ()
              done
            done)
      in
      let popped = ref 0 in
      while !popped < n do
        check ();
        match Mcore.Spsc.pop q with
        | Some _ -> incr popped
        | None -> Domain.cpu_relax ()
      done;
      Domain.join producer;
      Atomic.set finished true;
      Domain.join observer;
      Atomic.get ok && Mcore.Spsc.size q = 0)

(* --- Flow --- *)

let mk_ipv4 ?(payload = "flowtest") flow =
  Realize.ipv4 ~src:(v4 "192.0.2.1")
    ~dst:(v4 (Printf.sprintf "10.0.%d.%d" (flow / 250) (1 + (flow mod 250))))
    ~payload ()

let test_flow_deterministic () =
  let a = mk_ipv4 3 and b = mk_ipv4 3 in
  Alcotest.(check int) "same flow, same hash" (Mcore.Flow.hash a)
    (Mcore.Flow.hash b);
  (* The hash covers the match field, not the payload. *)
  let c = mk_ipv4 ~payload:"something-else-entirely" 3 in
  Alcotest.(check int) "payload-independent" (Mcore.Flow.hash a)
    (Mcore.Flow.hash c);
  Alcotest.(check bool) "non-negative" true (Mcore.Flow.hash a >= 0)

let test_flow_spreads () =
  (* 64 distinct destination addresses should not all land on one of
     4 workers (CRC-32 over the address field). *)
  let shards =
    List.init 64 (fun f -> Mcore.Flow.shard (mk_ipv4 f) ~workers:4)
  in
  List.iter
    (fun s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 4))
    shards;
  let distinct = List.sort_uniq compare shards in
  Alcotest.(check bool) "uses several workers" true (List.length distinct > 1);
  List.iter
    (fun s -> Alcotest.(check int) "1 worker => shard 0" 0 s)
    (List.init 8 (fun f -> Mcore.Flow.shard (mk_ipv4 f) ~workers:1))

let test_flow_garbage_safe () =
  (* Unparsable buffers fall back to whole-buffer hashing and never
     raise. *)
  List.iter
    (fun s ->
      let buf = Bitbuf.of_string s in
      let h = Mcore.Flow.hash buf in
      Alcotest.(check int) "stable" h (Mcore.Flow.hash buf))
    [ ""; "\x00"; "abcdefgh"; String.make 64 '\xff' ]

let test_flow_match_field_agrees_with_analyzer () =
  (* Flow.match_field (raw-triple scan, absolute bits) and the
     analyzer's flow_field (decoded FNs, region-relative bits) must
     pick the same slice — the Sharding check protects exactly what
     the sharder hashes. *)
  let module Field = Dip_bitbuf.Field in
  let name = Name.of_string "/mcore/test" in
  List.iter
    (fun (label, pkt) ->
      let view =
        match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e
      in
      let rel = Dip_analysis.flow_field (Array.to_list view.Packet.fns) in
      match (Mcore.Flow.match_field pkt, rel) with
      | None, None -> ()
      | Some abs, Some rel ->
          Alcotest.(check int)
            (label ^ ": offset")
            (8 * view.Packet.loc_base + rel.Field.off_bits)
            abs.Field.off_bits;
          Alcotest.(check int) (label ^ ": length") rel.Field.len_bits
            abs.Field.len_bits
      | Some _, None -> Alcotest.failf "%s: only Flow found a field" label
      | None, Some _ -> Alcotest.failf "%s: only the analyzer found one" label)
    [
      ("ipv4", mk_ipv4 1);
      ( "ipv6",
        Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::2")
          ~payload:"x" () );
      ("ndn", Realize.ndn_interest ~name ~payload:"" ());
      ( "xia",
        Realize.xia
          ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
          ~payload:"x" () );
    ]

(* --- shared workload helpers --- *)

let chain_name = Name.of_string "/mcore/test"

let mk_env ?(v4_port = 1) _w =
  let env = Env.create ~name:"mcore-test" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Ipaddr.Prefix.of_string "10.0.0.0/8")
    v4_port;
  Dip_ip.Ipv6.add_route env.Env.v6_routes
    (Ipaddr.Prefix.of_string "2001:db8::/32")
    1;
  Dip_tables.Name_fib.insert env.Env.fib chain_name 1;
  for i = 0 to 31 do
    Dip_tables.Name_fib.insert env.Env.fib
      (Name.of_string (Printf.sprintf "/mcore/f%d" i))
      1
  done;
  env

(* A mixed-protocol packet from a (protocol selector, flow id) pair:
   DIP-32, DIP-128 and NDN interests, with the flow id driving the
   match field. *)
let mk_packet (proto, flow) =
  match proto mod 3 with
  | 0 -> mk_ipv4 flow
  | 1 ->
      Realize.ipv6 ~src:(v6 "2001:db8::1")
        ~dst:(v6 (Printf.sprintf "2001:db8::%x" (1 + flow)))
        ~payload:"flowtest" ()
  | _ ->
      Realize.ndn_interest
        ~name:(Name.of_string (Printf.sprintf "/mcore/f%d" (flow mod 32)))
        ~payload:"" ()

let verdict_summary = function
  | Engine.Forwarded ports ->
      "forwarded:" ^ String.concat "," (List.map string_of_int ports)
  | Engine.Delivered -> "delivered"
  | Engine.Responded b -> Printf.sprintf "responded:%d" (Bitbuf.length b)
  | Engine.Quiet -> "quiet"
  | Engine.Dropped r -> "dropped:" ^ r
  | Engine.Unsupported k -> "unsupported:" ^ Opkey.name k

let result_summary (v, (i : Engine.info)) =
  Printf.sprintf "%s run=%d skip=%d depth=%d" (verdict_summary v) i.Engine.ops_run
    i.Engine.ops_skipped i.Engine.parallel_depth

(* Obs counter snapshot with the wall-clock-dependent instruments
   (sampled nanosecond totals and span histograms) filtered out:
   everything left is a deterministic function of the workload. *)
let obs_counts m =
  List.filter_map
    (fun (name, _, v) ->
      match v with
      | Dip_obs.Metrics.Counter_v n
        when not (Filename.check_suffix name ".ns") ->
          Some (name, n)
      | _ -> None)
    (Dip_obs.Metrics.snapshot m)

(* --- batch ≡ sequential fold (engine level) --- *)

let prop_batch_equals_fold =
  QCheck.Test.make ~name:"engine: process_batch ≡ sequential process fold"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_range 0 40)
        (pair (int_range 0 2) (int_range 0 15)))
    (fun specs ->
      let pkts = List.map mk_packet specs in
      let run_seq () =
        let env = mk_env 0 in
        let m = Dip_obs.Metrics.create () in
        let obs = Obs.create m in
        let out =
          List.map
            (fun p ->
              result_summary
                (Engine.process ~obs ~registry env ~now:0.0 ~ingress:0
                   (Bitbuf.copy p)))
            pkts
        in
        Env.publish_cache_stats env;
        (out, obs_counts m)
      in
      let run_batch () =
        let env = mk_env 0 in
        let m = Dip_obs.Metrics.create () in
        let obs = Obs.create m in
        let out =
          Engine.process_batch ~obs ~registry env ~now:0.0 ~ingress:0
            (Array.of_list (List.map Bitbuf.copy pkts))
        in
        (Array.to_list (Array.map result_summary out), obs_counts m)
      in
      let seq_out, seq_counts = run_seq () in
      let batch_out, batch_counts = run_batch () in
      seq_out = batch_out && seq_counts = batch_counts)

(* Batches also mutate the packets identically (hop limits, marks). *)
let prop_batch_mutations_agree =
  QCheck.Test.make ~name:"engine: batch mutates packets like process"
    ~count:40
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (pair (int_range 0 2) (int_range 0 15)))
    (fun specs ->
      let pkts = List.map mk_packet specs in
      let seq = List.map Bitbuf.copy pkts in
      let batch = Array.of_list (List.map Bitbuf.copy pkts) in
      let env1 = mk_env 0 and env2 = mk_env 0 in
      List.iter
        (fun p -> ignore (Engine.process ~registry env1 ~now:0.0 ~ingress:0 p))
        seq;
      ignore (Engine.process_batch ~registry env2 ~now:0.0 ~ingress:0 batch);
      List.for_all2
        (fun a b -> Bitbuf.to_string a = Bitbuf.to_string b)
        seq (Array.to_list batch))

(* --- pool ≡ sequential fold --- *)

let pool_vs_fold ~domains specs =
  let pkts = List.map mk_packet specs in
  let seq =
    let env = mk_env 0 in
    List.map
      (fun p ->
        verdict_summary
          (fst (Engine.process ~registry env ~now:0.0 ~ingress:0 (Bitbuf.copy p))))
      pkts
  in
  let pool =
    Mcore.Pool.create ~domains (Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) ())
  in
  let items =
    Array.of_list
      (List.map
         (fun p -> { Mcore.Pool.now = 0.0; ingress = 0; pkt = Bitbuf.copy p })
         pkts)
  in
  let out = Mcore.Pool.process_batch pool items in
  Mcore.Pool.shutdown pool;
  (seq, Array.to_list (Array.map (fun (v, _) -> verdict_summary v) out))

let prop_pool_equals_fold =
  QCheck.Test.make
    ~name:"pool: sharded multi-domain batch ≡ sequential fold" ~count:25
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 0 30)
           (pair (int_range 0 2) (int_range 0 15))))
    (fun (domains, specs) ->
      let seq, pool = pool_vs_fold ~domains specs in
      seq = pool)

(* --- pool: snapshot publication --- *)

let test_pool_publish () =
  let snap0 = Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) () in
  let pool = Mcore.Pool.create ~domains:2 snap0 in
  Alcotest.(check int) "epoch 0" 0 (Mcore.Pool.epoch pool);
  let items =
    Array.init 8 (fun i ->
        { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 i })
  in
  let ports out =
    Array.to_list
      (Array.map
         (fun (v, _) ->
           match v with Engine.Forwarded p -> p | _ -> [])
         out)
  in
  Alcotest.(check (list (list int)))
    "old snapshot routes to port 1"
    (List.init 8 (fun _ -> [ 1 ]))
    (ports (Mcore.Pool.process_batch pool items));
  (* RCU-style cutover: next batch sees the new forwarding table. *)
  (match
     Mcore.Pool.publish pool
       (Mcore.Snapshot.next ~mk_env:(mk_env ~v4_port:7) snap0)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("publish rejected: " ^ e));
  Alcotest.(check int) "epoch bumped" 1 (Mcore.Pool.epoch pool);
  let items2 =
    Array.init 8 (fun i ->
        { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 i })
  in
  Alcotest.(check (list (list int)))
    "published snapshot routes to port 7"
    (List.init 8 (fun _ -> [ 7 ]))
    (ports (Mcore.Pool.process_batch pool items2));
  Mcore.Pool.shutdown pool

(* The publish-time analysis gate is not advisory: a snapshot whose
   registry fails Dip_analysis.registry_gate never reaches the epoch
   swap, and the previous configuration keeps serving. *)
let test_pool_publish_gate_rejects () =
  let good = mk_ipv4 0 in
  (* F_tel stamped over the match field: sharding-unsafe by design. *)
  let bad =
    Packet.build
      ~fns:
        [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:0 ~len:72 Opkey.F_tel ]
      ~locations:(String.make 9 '\000') ~payload:"" ()
  in
  let snap0 =
    Mcore.Snapshot.v
      ~check:(Dip_analysis.registry_gate ~programs:[ good ])
      ~registry
      ~mk_env:(fun w -> mk_env w)
      ()
  in
  let pool = Mcore.Pool.create ~domains:2 snap0 in
  Alcotest.(check int) "epoch 0" 0 (Mcore.Pool.epoch pool);
  (match
     Mcore.Pool.publish pool
       (Mcore.Snapshot.next
          ~check:(Dip_analysis.registry_gate ~programs:[ good; bad ])
          snap0)
   with
  | Ok () -> Alcotest.fail "sharding-unsafe snapshot published"
  | Error e ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "says rejected" true (contains "rejected" e));
  Alcotest.(check int) "epoch unchanged" 0 (Mcore.Pool.epoch pool);
  (* the surviving epoch still processes packets *)
  let out =
    Mcore.Pool.process_batch pool
      [| { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 1 } |]
  in
  (match out.(0) with
  | Engine.Forwarded [ 1 ], _ -> ()
  | _ -> Alcotest.fail "old epoch must keep forwarding");
  Mcore.Pool.shutdown pool;
  (* and an initial snapshot failing the gate never builds a pool *)
  match
    Mcore.Pool.create ~domains:1
      (Mcore.Snapshot.v
         ~check:(Dip_analysis.registry_gate ~programs:[ bad ])
         ~registry
         ~mk_env:(fun w -> mk_env w)
         ())
  with
  | exception Invalid_argument _ -> ()
  | p ->
      Mcore.Pool.shutdown p;
      Alcotest.fail "Pool.create accepted a gated-out snapshot"

let test_pool_counters_and_metrics () =
  let pool =
    Mcore.Pool.create ~domains:3 ~metrics:true ~obs_sample_every:1
      (Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) ())
  in
  let n = 48 in
  let items =
    Array.init n (fun i -> { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 i })
  in
  let out = Mcore.Pool.process_batch pool items in
  Array.iter
    (fun (v, _) ->
      match v with
      | Engine.Forwarded [ 1 ] -> ()
      | v -> Alcotest.failf "unexpected verdict %s" (verdict_summary v))
    out;
  (* Counters merge across the 3 worker envs: every packet either hit
     or missed each worker's program cache. *)
  let c = Mcore.Pool.counters pool in
  Alcotest.(check int) "cache hits+misses = packets" n
    (Dip_netsim.Stats.Counters.get c "progcache.hit"
    + Dip_netsim.Stats.Counters.get c "progcache.miss");
  (* Metrics merge across the per-worker registries. *)
  (match Mcore.Pool.metrics pool with
  | None -> Alcotest.fail "metrics expected"
  | Some m ->
      Alcotest.(check (option (pair string int)))
        "engine.packets sums the workers"
        (Some ("engine.packets", n))
        (List.find_opt (fun (k, _) -> k = "engine.packets") (obs_counts m)));
  Mcore.Pool.shutdown pool;
  (* Shutdown is idempotent. *)
  Mcore.Pool.shutdown pool

(* Regression (PR 7): [publish] used to drop the retiring epoch's
   per-worker envs — and their counters and metrics with them — so a
   configuration swap silently zeroed the pool's history. Totals must
   accumulate across epochs. *)
let test_pool_counters_survive_publish () =
  let snap0 = Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) () in
  let pool = Mcore.Pool.create ~domains:2 ~metrics:true snap0 in
  let batch n =
    ignore
      (Mcore.Pool.process_batch pool
         (Array.init n (fun i ->
              { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 i })))
  in
  let n1 = 30 and n2 = 20 in
  batch n1;
  (match
     Mcore.Pool.publish pool
       (Mcore.Snapshot.next ~mk_env:(mk_env ~v4_port:7) snap0)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("publish rejected: " ^ e));
  batch n2;
  let c = Mcore.Pool.counters pool in
  Alcotest.(check int) "progcache traffic spans both epochs" (n1 + n2)
    (Dip_netsim.Stats.Counters.get c "progcache.hit"
    + Dip_netsim.Stats.Counters.get c "progcache.miss");
  (match Mcore.Pool.metrics pool with
  | None -> Alcotest.fail "metrics expected"
  | Some m ->
      Alcotest.(check (option (pair string int)))
        "engine.packets spans both epochs"
        (Some ("engine.packets", n1 + n2))
        (List.find_opt (fun (k, _) -> k = "engine.packets") (obs_counts m)));
  Mcore.Pool.shutdown pool

(* Regression (PR 7): workers used to read the published world at
   job-pop time, so a publish landing between dispatch and execution
   retargeted an in-flight batch — the RCU contract says a batch runs
   on the epoch it was dispatched under. The pin is per-job state
   written before the ring push, so this holds under {e any} worker
   scheduling: the assertion below is race-free even though the
   publish deliberately races the workers. *)
let test_pool_epoch_pinned_at_dispatch () =
  let snap0 = Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) () in
  let pool = Mcore.Pool.create ~domains:2 snap0 in
  let items =
    Array.init 24 (fun i ->
        { Mcore.Pool.now = 0.0; ingress = 0; pkt = mk_ipv4 i })
  in
  let ticket = Mcore.Pool.dispatch_async pool ~want_actions:false items in
  (* Swap the config while the batch is (potentially) still queued:
     old epoch routes 10/8 to port 1, new epoch to port 7. *)
  (match
     Mcore.Pool.publish pool
       (Mcore.Snapshot.next ~mk_env:(mk_env ~v4_port:7) snap0)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("publish rejected: " ^ e));
  Alcotest.(check int) "epoch bumped" 1 (Mcore.Pool.epoch pool);
  let verdicts, _ = Mcore.Pool.await pool ticket in
  Array.iter
    (fun (v, _) ->
      match v with
      | Engine.Forwarded [ 1 ] -> ()
      | v ->
          Alcotest.failf "in-flight batch leaked onto the new epoch: %s"
            (verdict_summary v))
    verdicts;
  (* A batch dispatched after the swap runs on the new epoch. *)
  let out = Mcore.Pool.process_batch pool items in
  (match out.(0) with
  | Engine.Forwarded [ 7 ], _ -> ()
  | v, _ -> Alcotest.failf "post-publish batch on old epoch: %s"
              (verdict_summary v));
  Mcore.Pool.shutdown pool

(* Hand-off sanity: a 1-domain pool must stay in the same ballpark as
   the plain sequential fold (the bench asserts the real >= 0.9x
   floor; here a generous 0.4x bound just catches the PR-5 class of
   regression without becoming a flaky timing test). *)
let test_pool_throughput_sanity () =
  let n = 4096 in
  let pkts = Array.init n (fun i -> mk_ipv4 (i mod 64)) in
  let items =
    Array.map (fun pkt -> { Mcore.Pool.now = 0.0; ingress = 0; pkt }) pkts
  in
  let reset () = Array.iter (fun p -> Bitbuf.set_uint8 p 2 64) pkts in
  (* Fastest-of-N with interleaved sampling, as in bench_mcore:
     interference only adds time, so minima compare the true costs
     even when the machine is noisy. *)
  let sample pass =
    reset ();
    let t0 = Unix.gettimeofday () in
    pass ();
    Unix.gettimeofday () -. t0
  in
  let env = mk_env 0 in
  let seq_pass () =
    Array.iter
      (fun pkt ->
        ignore
          (Sys.opaque_identity
             (Engine.process ~registry env ~now:0.0 ~ingress:0 pkt)))
      pkts
  in
  let pool =
    Mcore.Pool.create ~domains:1
      (Mcore.Snapshot.v ~registry ~mk_env:(fun w -> mk_env w) ())
  in
  let pool_pass () =
    ignore (Sys.opaque_identity (Mcore.Pool.process_batch pool items))
  in
  ignore (sample seq_pass) (* warm caches *);
  ignore (sample pool_pass);
  let seq = ref infinity and par = ref infinity in
  for _ = 1 to 20 do
    seq := Float.min !seq (sample seq_pass);
    par := Float.min !par (sample pool_pass)
  done;
  Mcore.Pool.shutdown pool;
  if !par > !seq /. 0.4 then
    Alcotest.failf "1-domain pool at %.2fx of sequential (floor 0.4x)"
      (!seq /. !par)

(* --- simulator determinism across domain counts --- *)

let run_chain ~mode count =
  let sim = Sim.create () in
  let mk_router i _w =
    let env = mk_env 0 in
    ignore i;
    env
  in
  let sink_consumed = ref 0 in
  let sink _sim ~now:_ ~ingress:_ _ = incr sink_consumed; [ Sim.Consume ] in
  let pools, ids =
    match mode with
    | `Handler ->
        let ids =
          List.init 2 (fun i ->
              Sim.add_node sim
                ~name:(Printf.sprintf "r%d" (i + 1))
                (Engine.handler ~registry (mk_router i 0)))
        in
        ([], ids)
    | `Pool domains ->
        let pools =
          List.init 2 (fun i ->
              Mcore.Pool.create ~domains
                (Mcore.Snapshot.v ~registry ~mk_env:(mk_router i) ()))
        in
        let ids =
          List.mapi
            (fun i pool ->
              Sim.add_node sim
                ~name:(Printf.sprintf "r%d" (i + 1))
                (fun _sim ~now ~ingress pkt ->
                  (Mcore.Pool.handle_batch pool
                     [| { Mcore.Pool.now; ingress; pkt } |]).(0)))
            pools
        in
        (pools, ids)
  in
  let sink_id = Sim.add_node sim ~name:"sink" sink in
  (match ids with
  | [ a; b ] ->
      Sim.connect sim (a, 1) (b, 0);
      Sim.connect sim (b, 1) (sink_id, 0)
  | _ -> assert false);
  for k = 0 to count - 1 do
    Sim.inject sim
      ~at:(float_of_int k *. 1e-6)
      ~node:(List.hd ids) ~port:0
      (mk_packet (k mod 3, k mod 16))
  done;
  (match mode with
  | `Handler -> Sim.run sim
  | `Pool _ ->
      Mcore.Runner.run_parallel ~window:8e-6 sim
        ~pools:(List.combine ids pools));
  List.iter Mcore.Pool.shutdown pools;
  (!sink_consumed, Dip_netsim.Stats.Counters.to_list (Sim.counters sim))

let test_parallel_determinism () =
  (* The headline property: delivery counts and every per-node
     counter are a function of the workload, not of the domain
     count — and they match the plain sequential handler run. *)
  let count = 90 in
  let seq = run_chain ~mode:`Handler count in
  let one = run_chain ~mode:(`Pool 1) count in
  let four = run_chain ~mode:(`Pool 4) count in
  Alcotest.(check (pair int (list (pair string int))))
    "1-domain batched ≡ sequential handlers" seq one;
  Alcotest.(check (pair int (list (pair string int))))
    "4-domain ≡ 1-domain" one four;
  let four' = run_chain ~mode:(`Pool 4) count in
  Alcotest.(check (pair int (list (pair string int))))
    "4-domain reruns reproduce" four four'

(* --- run_batched: tail flush --- *)

let test_run_batched_tail_flush () =
  (* Regression: the final flush schedules downstream arrivals; the
     loop must keep running until they drain, or the tail of every
     run is silently lost. *)
  let sim = Sim.create () in
  let consumed = ref 0 in
  let fwd _sim ~now:_ ~ingress:_ pkt = [ Sim.Forward (1, pkt) ] in
  let sink _sim ~now:_ ~ingress:_ _ = incr consumed; [ Sim.Consume ] in
  let r1 = Sim.add_node sim ~name:"r1" fwd in
  let r2 = Sim.add_node sim ~name:"r2" fwd in
  let s = Sim.add_node sim ~name:"sink" sink in
  Sim.connect sim (r1, 1) (r2, 0);
  Sim.connect sim (r2, 1) (s, 0);
  let n = 10 in
  for k = 0 to n - 1 do
    Sim.inject sim ~at:(float_of_int k *. 1e-6) ~node:r1 ~port:0
      (Bitbuf.create 32)
  done;
  (* A window wide enough that all injections form one batch. *)
  Sim.run_batched ~window:1.0 sim
    ~batchable:(fun id -> id = r1 || id = r2)
    ~exec:(fun items ->
      Array.map (fun it -> [ Sim.Forward (1, it.Sim.b_packet) ]) items);
  Alcotest.(check int) "all packets delivered" n !consumed

let () =
  Alcotest.run "dip_mcore"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo + capacity" `Quick test_spsc_fifo;
          Alcotest.test_case "cross-domain" `Quick test_spsc_cross_domain;
          Alcotest.test_case "capacity guard" `Quick test_spsc_capacity_guard;
          QCheck_alcotest.to_alcotest prop_spsc_size_bounded;
        ] );
      ( "flow",
        [
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "spreads" `Quick test_flow_spreads;
          Alcotest.test_case "garbage safe" `Quick test_flow_garbage_safe;
          Alcotest.test_case "match field agrees with analyzer" `Quick
            test_flow_match_field_agrees_with_analyzer;
        ] );
      ( "batch",
        [
          QCheck_alcotest.to_alcotest prop_batch_equals_fold;
          QCheck_alcotest.to_alcotest prop_batch_mutations_agree;
        ] );
      ( "pool",
        [
          QCheck_alcotest.to_alcotest prop_pool_equals_fold;
          Alcotest.test_case "publish" `Quick test_pool_publish;
          Alcotest.test_case "publish gate rejects" `Quick
            test_pool_publish_gate_rejects;
          Alcotest.test_case "counters + metrics" `Quick
            test_pool_counters_and_metrics;
          Alcotest.test_case "counters survive publish" `Quick
            test_pool_counters_survive_publish;
          Alcotest.test_case "epoch pinned at dispatch" `Quick
            test_pool_epoch_pinned_at_dispatch;
          Alcotest.test_case "1-domain throughput sanity" `Quick
            test_pool_throughput_sanity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "domains don't change delivery" `Quick
            test_parallel_determinism;
          Alcotest.test_case "run_batched tail flush" `Quick
            test_run_batched_tail_flush;
        ] );
    ]
