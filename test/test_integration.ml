(* Integration tests: whole-network scenarios that exercise several
   libraries at once, plus fuzzing of the packet-facing surfaces. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Sim = Dip_netsim.Sim
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string

(* --- 1. One router, all five protocols interleaved --- *)

let test_mixed_traffic_single_router () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv6.add_route env.Env.v6_routes (Ipaddr.Prefix.of_string "2001:db8::/32") 2;
  let name = Name.of_string "/mixed/content" in
  Dip_tables.Name_fib.insert env.Env.fib name 3;
  Env.set_opt_identity env ~secret:(Dip_opt.Drkey.secret_of_string "mixed-router-sec") ~hop:1;
  Dip_xia.Router.add_route env.Env.xia (Dip_xia.Xid.of_name Dip_xia.Xid.AD "as9") 4;
  let dag =
    Dip_xia.Dag.fallback
      ~intent:(Dip_xia.Xid.of_name Dip_xia.Xid.SID "s")
      ~via:[ Dip_xia.Xid.of_name Dip_xia.Xid.AD "as9" ]
  in
  let cases =
    [
      ( "dip32",
        Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.1.1") ~payload:"a" (),
        1 );
      ( "dip128",
        Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::2") ~payload:"b" (),
        2 );
      ("ndn", Realize.ndn_interest ~name ~payload:"c" (), 3);
      ("xia", Realize.xia ~dag ~payload:"d" (), 4);
    ]
  in
  (* Interleave the protocols several times over the same router. *)
  for round = 1 to 5 do
    List.iter
      (fun (label, pkt_template, expect_port) ->
        let pkt = Bitbuf.copy pkt_template in
        match Engine.process ~registry env ~now:(float_of_int round) ~ingress:9 pkt with
        | Engine.Forwarded [ p ], _ ->
            Alcotest.(check int) (label ^ " port") expect_port p
        | Engine.Quiet, _ when label = "ndn" && round > 1 ->
            (* later rounds of the same interest aggregate in the PIT *)
            ()
        | Engine.Dropped r, _ -> Alcotest.failf "%s dropped: %s" label r
        | _ -> Alcotest.failf "%s: unexpected verdict" label)
      cases
  done;
  (* The derived NDN+OPT data packet also traverses the same node. *)
  ignore
    (Dip_tables.Pit.insert env.Env.pit ~key:(Name.hash32 name) ~port:7 ~now:9.0
       ~lifetime:10.0);
  let data =
    Realize.ndn_opt_data ~hops:1 ~session_id:3L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~name ~content:"x" ()
  in
  match Engine.process ~registry env ~now:9.1 ~ingress:3 data with
  | Engine.Forwarded [ 7 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "ndn+opt dropped: %s" r
  | _ -> Alcotest.fail "ndn+opt must follow the PIT"

(* --- 2. Heterogeneous deployment: the FN-unsupported notification
   travels back to the source over the simulator --- *)

let test_unsupported_notification_returns_to_source () =
  let sim = Sim.create () in
  (* Source host records control messages it receives. *)
  let notifications = ref [] in
  let source _sim ~now:_ ~ingress:_ pkt =
    if Errors.is_control pkt then begin
      (match Errors.parse pkt with
      | Ok { Errors.key; _ } -> notifications := Opkey.name key :: !notifications
      | Error _ -> ());
      [ Sim.Consume ]
    end
    else [ Sim.Drop "unexpected" ]
  in
  (* A legacy AS router that supports only IP FNs. *)
  let limited = Registry.restrict registry [ Opkey.F_32_match; Opkey.F_source ] in
  let env = Env.create ~name:"legacy" () in
  let s = Sim.add_node sim ~name:"source" source in
  let r = Sim.add_node sim ~name:"legacy" (Engine.handler ~registry:limited env) in
  Sim.connect sim (s, 0) (r, 0);
  (* The source sends an OPT packet that AS cannot serve. *)
  let pkt =
    Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~payload:"" ()
  in
  Sim.inject sim ~at:0.0 ~node:r ~port:0 pkt;
  Sim.run sim;
  Alcotest.(check (list string)) "source notified about F_parm" [ "F_parm" ]
    !notifications;
  Alcotest.(check int) "unsupported counted" 1
    (Dip_netsim.Stats.Counters.get env.Env.counters "dip.unsupported.F_parm")

(* --- 3. Tunnel across a legacy IPv4 core --- *)

let test_tunnel_across_legacy_core () =
  let sim = Sim.create () in
  let left _sim ~now:_ ~ingress:_ pkt =
    [ Sim.Forward
        (1, Compat.encapsulate_ipv4 ~src:(v4 "198.51.100.1") ~dst:(v4 "198.51.100.2") pkt);
    ]
  in
  let legacy_table = Dip_tables.Fib.V4.create () in
  Dip_ip.Ipv4.add_route legacy_table (Ipaddr.Prefix.of_string "198.51.100.2/32") 1;
  let renv = Env.create ~name:"right" () in
  Dip_ip.Ipv4.add_route renv.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  let right sim_ ~now ~ingress pkt =
    match Compat.decapsulate_ipv4 pkt with
    | Error e -> [ Sim.Drop e ]
    | Ok inner -> Engine.handler ~registry renv sim_ ~now ~ingress inner
  in
  let henv = Env.create ~name:"server" () in
  henv.Env.local_v4 <- Some (v4 "10.7.7.7");
  let lb = Sim.add_node sim ~name:"left" left in
  let core = Sim.add_node sim ~name:"core" (Dip_ip.Ipv4.handler legacy_table) in
  let rb = Sim.add_node sim ~name:"right" right in
  let server = Sim.add_node sim ~name:"server" (Engine.handler ~registry henv) in
  Sim.connect sim (lb, 1) (core, 0);
  Sim.connect sim (core, 1) (rb, 0);
  Sim.connect sim (rb, 1) (server, 0);
  Sim.inject sim ~at:0.0 ~node:lb ~port:0
    (Realize.ipv4 ~src:(v4 "10.1.0.1") ~dst:(v4 "10.7.7.7") ~payload:"tunneled" ());
  Sim.run sim;
  match Sim.consumed sim with
  | [ (node, _, pkt) ] ->
      Alcotest.(check int) "server got it" server node;
      Alcotest.(check string) "payload survives both hops" "tunneled"
        (Packet.payload (Result.get_ok (Packet.parse pkt)))
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

(* --- 4. Content poisoning, then F_pass enabled on the fly (§2.4) --- *)

let test_fpass_enabled_on_the_fly () =
  let key = Dip_crypto.Siphash.default_key in
  let wrong = Dip_crypto.Siphash.key_of_string "poison-key-16byt" in
  let name = Name.of_string "/popular/item" in
  let env = Env.create ~cache_capacity:8 ~name:"edge" () in
  Dip_tables.Name_fib.insert env.Env.fib name 1;
  let forged_interest = Realize.ndn_interest ~pass:wrong ~name ~payload:"" () in
  (* Phase 1: F_pass disabled — the forged interest gets through and
     the attacker's data poisons the cache. *)
  (match Engine.process ~registry env ~now:0.0 ~ingress:5 (Bitbuf.copy forged_interest) with
  | Engine.Forwarded _, _ -> ()
  | _ -> Alcotest.fail "phase 1: forged interest should pass while disabled");
  let poison = Realize.ndn_data ~name ~content:"POISON" () in
  (match Engine.process ~registry env ~now:0.1 ~ingress:1 poison with
  | Engine.Forwarded _, _ -> ()
  | _ -> Alcotest.fail "phase 1: poison data follows the PIT");
  Alcotest.(check (option string)) "cache now poisoned" (Some "POISON")
    (Env.cache_find env (Name.hash32 name));
  (* Phase 2: the operator detects the attack and enables F_pass. *)
  Env.enable_pass env ~key;
  (match Engine.process ~registry env ~now:1.0 ~ingress:5 (Bitbuf.copy forged_interest) with
  | Engine.Dropped "pass-verify-failed", _ -> ()
  | _ -> Alcotest.fail "phase 2: forged interest must now be dropped");
  (* Genuine clients keep working. *)
  let genuine = Realize.ndn_interest ~pass:key ~name ~payload:"" () in
  match Engine.process ~registry env ~now:1.1 ~ingress:6 genuine with
  | Engine.Responded _, _ -> () (* answered from (poisoned) cache *)
  | Engine.Forwarded _, _ -> ()
  | _ -> Alcotest.fail "phase 2: genuine traffic must still flow"

(* --- 5. OPT end-to-end over the simulator, 3 hops --- *)

let test_opt_three_hop_simulation () =
  let hops = 3 in
  let g = Dip_stdext.Prng.create 404L in
  let secrets = List.init hops (fun _ -> Dip_opt.Drkey.secret_gen g) in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let session_id = 0xFEEDL in
  let session_keys = Dip_opt.Drkey.session_keys secrets ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  let sim = Sim.create () in
  let mk_router i secret =
    let env = Env.create ~name:(Printf.sprintf "r%d" i) () in
    Env.set_opt_identity env ~secret ~hop:i;
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    Engine.handler ~registry env
  in
  let henv = Env.create ~name:"dst" () in
  Env.register_opt_session henv ~session_id ~session_keys ~dest_key;
  let accept = ref None in
  let host sim_ ~now ~ingress pkt =
    (match Engine.host_process ~registry henv ~now ~ingress pkt with
    | Engine.Delivered, _ -> accept := Some true
    | _ -> accept := Some false);
    ignore sim_;
    [ Sim.Consume ]
  in
  let rs = List.mapi (fun i s -> Sim.add_node sim ~name:(Printf.sprintf "r%d" (i + 1)) (mk_router (i + 1) s)) secrets in
  let h = Sim.add_node sim ~name:"dst" host in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        Sim.connect sim (a, 1) (b, 0);
        wire rest
    | [ last ] -> Sim.connect sim (last, 1) (h, 0)
    | [] -> ()
  in
  wire rs;
  (* OPT composed with DIP-32 so the chain can route it. *)
  let opt_bits = Dip_opt.Header.size_bits ~hops in
  let region = Bitbuf.create ((opt_bits / 8) + 8) in
  Dip_opt.Protocol.source_init region ~base:0 ~hops ~session_id ~timestamp:2l
    ~dest_key ~payload:"simulated";
  Bitbuf.blit
    ~src:(Bitbuf.of_string (Ipaddr.V4.to_wire (v4 "10.0.0.9") ^ Ipaddr.V4.to_wire (v4 "192.0.2.3")))
    ~src_off:0 ~dst:region ~dst_off:(opt_bits / 8) ~len:8;
  let pkt =
    Packet.build
      ~fns:
        [
          Fn.v ~loc:128 ~len:128 Opkey.F_parm;
          Fn.v ~loc:0 ~len:416 Opkey.F_mac;
          Fn.v ~loc:288 ~len:128 Opkey.F_mark;
          Fn.v ~tag:Fn.Host ~loc:0 ~len:opt_bits Opkey.F_ver;
          Fn.v ~loc:opt_bits ~len:32 Opkey.F_32_match;
          Fn.v ~loc:(opt_bits + 32) ~len:32 Opkey.F_source;
        ]
      ~locations:(Bitbuf.to_string region) ~payload:"simulated" ()
  in
  Sim.inject sim ~at:0.0 ~node:(List.hd rs) ~port:0 pkt;
  Sim.run sim;
  Alcotest.(check (option bool)) "verified after 3 simulated hops" (Some true)
    !accept


(* --- 5b. Telemetry reads real queue state (F_tel + link queues) --- *)

let test_telemetry_reports_real_queue () =
  let sim = Sim.create () in
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  let r_id = ref (-1) in
  Env.set_telemetry_identity env ~node_id:42 ~queue_depth:(fun () ->
      Sim.queue_depth sim !r_id 1);
  let registry = Ops.default_registry () in
  let r = Sim.add_node sim ~name:"r" (Engine.handler ~registry env) in
  r_id := r;
  let sink = Sim.add_node sim ~name:"sink" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Consume ]) in
  (* Slow egress link: a burst builds a real queue. *)
  Sim.connect sim ~latency:0.0 ~bandwidth:10_000.0 (r, 1) (sink, 0);
  for i = 0 to 19 do
    Sim.inject sim
      ~at:(1e-6 *. float_of_int i)
      ~node:r ~port:0
      (Realize.ipv4_telemetry ~max_hops:2 ~src:(v4 "192.0.2.1")
         ~dst:(v4 "10.0.0.1") ~payload:(String.make 400 'q') ())
  done;
  Sim.run sim;
  (* The last packets of the burst saw a deep queue. *)
  let depths =
    List.filter_map
      (fun (_, _, pkt) ->
        match Packet.parse pkt with
        | Ok view -> (
            match
              Telemetry.read pkt ~base:view.Packet.loc_base
                ~region_bytes:(Telemetry.region_size ~max_hops:2)
            with
            | [ rec1 ], _ -> Some rec1.Telemetry.queue_depth
            | _ -> None)
        | Error _ -> None)
      (Sim.consumed sim)
  in
  Alcotest.(check int) "all delivered with telemetry" 20 (List.length depths);
  Alcotest.(check bool)
    (Printf.sprintf "max observed depth %d > 5"
       (List.fold_left max 0 depths))
    true
    (List.fold_left max 0 depths > 5)

(* --- 6. Fuzzing --- *)

let prop_parse_never_raises =
  QCheck.Test.make ~name:"fuzz: Packet.parse total on random bytes" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Packet.parse (Bitbuf.of_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_engine_never_raises_on_corruption =
  (* Take a valid packet of each protocol, corrupt one random byte,
     and require a clean verdict (never an exception). *)
  let mk_env () =
    let env = Env.create ~name:"fz" () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "0.0.0.0/0") 1;
    Dip_ip.Ipv6.add_route env.Env.v6_routes (Ipaddr.Prefix.of_string "::/0") 1;
    Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/f") 1;
    Env.set_opt_identity env ~secret:(Dip_opt.Drkey.secret_of_string "fuzz-router-sec!") ~hop:1;
    env
  in
  let templates =
    [
      Realize.ipv4 ~src:(v4 "1.2.3.4") ~dst:(v4 "5.6.7.8") ~payload:"pl" ();
      Realize.ipv6 ~src:(v6 "::1") ~dst:(v6 "::2") ~payload:"pl" ();
      Realize.ndn_interest ~name:(Name.of_string "/f") ~payload:"pl" ();
      Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
        ~dest_key:(String.make 16 'k') ~payload:"pl" ();
      Realize.xia
        ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
        ~payload:"pl" ();
    ]
  in
  QCheck.Test.make ~name:"fuzz: engine total under single-byte corruption"
    ~count:2000
    QCheck.(pair (int_range 0 4) (pair small_nat (int_range 0 255)))
    (fun (ti, (pos, value)) ->
      let env = mk_env () in
      let pkt = Bitbuf.copy (List.nth templates ti) in
      let pos = pos mod Bitbuf.length pkt in
      Bitbuf.set_uint8 pkt pos value;
      match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
      | _, _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "engine raised %s (template %d, byte %d=%02x)"
            (Printexc.to_string e) ti pos value)

let prop_host_engine_never_raises =
  QCheck.Test.make ~name:"fuzz: host engine total on random bytes" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      let env = Env.create ~name:"h" () in
      match
        Engine.host_process ~registry env ~now:0.0 ~ingress:0 (Bitbuf.of_string s)
      with
      | _, _ -> true
      | exception _ -> false)

let prop_ndn_decode_never_raises =
  QCheck.Test.make ~name:"fuzz: NDN packet decode total" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Dip_ndn.Packet.decode (Bitbuf.of_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_xia_decode_never_raises =
  QCheck.Test.make ~name:"fuzz: XIA packet decode total" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 128))
    (fun s ->
      match Dip_xia.Router.decode_packet (Bitbuf.of_string s) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_engine_total_on_random_constructions =
  (* Arbitrary *well-formed* packets: random FN triples with random
     keys over a random locations region. Whatever nonsense the host
     asks for, Algorithm 1 must return a verdict, never raise. *)
  let arb =
    QCheck.make
      ~print:(fun (fns, loc_len, _) ->
        Printf.sprintf "%d FNs over %d bytes" (List.length fns) loc_len)
      QCheck.Gen.(
        let* loc_len = int_range 1 96 in
        let* nfns = int_range 0 6 in
        let* fns =
          list_repeat nfns
            (let* key = int_range 1 15 in
             let* len = int_range 1 (8 * loc_len) in
             let* loc = int_range 0 ((8 * loc_len) - len) in
             let* host = bool in
             return (loc, len, key, host))
        in
        let* seed = int_range 0 10000 in
        return (fns, loc_len, seed))
  in
  QCheck.Test.make ~name:"fuzz: engine total on random well-formed packets"
    ~count:1500 arb
    (fun (fns, loc_len, seed) ->
      let fns =
        List.map
          (fun (loc, len, key, host) ->
            Dip_core.Fn.v
              ~tag:(if host then Dip_core.Fn.Host else Dip_core.Fn.Router)
              ~loc ~len
              (Option.get (Dip_core.Opkey.of_int key)))
          fns
      in
      let g = Dip_stdext.Prng.create (Int64.of_int seed) in
      let locations = Bytes.to_string (Dip_stdext.Prng.bytes g loc_len) in
      let pkt = Packet.build ~fns ~locations ~payload:"fz" () in
      let env = Env.create ~cache_capacity:4 ~name:"fz" () in
      Env.set_opt_identity env
        ~secret:(Dip_opt.Drkey.secret_of_string "fuzz-router-sec!")
        ~hop:1;
      Env.enable_pass env ~key:Dip_crypto.Siphash.default_key;
      match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
      | _, _ -> (
          match Engine.host_process ~registry env ~now:0.0 ~ingress:0 pkt with
          | _, _ -> true
          | exception e ->
              QCheck.Test.fail_reportf "host engine raised %s"
                (Printexc.to_string e))
      | exception e ->
          QCheck.Test.fail_reportf "engine raised %s" (Printexc.to_string e))

(* --- 7. PIT multicast fanout delivers independent copies --- *)

let test_pit_fanout_independent_copies () =
  (* Regression: the engine handler used to hand the {e same} buffer
     to every fanout port, so a downstream mutation (hop-limit
     decrement, header rewrite) bled into the sibling deliveries. *)
  let sim = Sim.create () in
  let env = Env.create ~name:"r" () in
  let name = Name.of_string "/fan/out" in
  let key = Name.hash32 name in
  ignore (Dip_tables.Pit.insert env.Env.pit ~key ~port:1 ~now:0.0 ~lifetime:10.0);
  ignore (Dip_tables.Pit.insert env.Env.pit ~key ~port:2 ~now:0.0 ~lifetime:10.0);
  let r = Sim.add_node sim ~name:"r" (Engine.handler ~registry env) in
  let got = ref [] in
  let sink _ ~now:_ ~ingress:_ pkt =
    got := pkt :: !got;
    [ Sim.Consume ]
  in
  let a = Sim.add_node sim ~name:"a" sink in
  let b = Sim.add_node sim ~name:"b" sink in
  Sim.connect sim (r, 1) (a, 0);
  Sim.connect sim (r, 2) (b, 0);
  Sim.inject sim ~at:0.0 ~node:r ~port:3
    (Realize.ndn_data ~name ~content:"multicast" ());
  Sim.run sim;
  match !got with
  | [ p2; p1 ] ->
      Alcotest.(check string) "same bytes on both ports"
        (Bitbuf.to_string p1) (Bitbuf.to_string p2);
      (* Clobber one copy end to end; the sibling must not move. *)
      let sibling = Bitbuf.to_string p2 in
      for i = 0 to Bitbuf.length p1 - 1 do
        Bitbuf.set_uint8 p1 i 0xFF
      done;
      Alcotest.(check string) "hop limit and payload independent" sibling
        (Bitbuf.to_string p2)
  | l -> Alcotest.failf "expected a 2-port fanout, got %d deliveries"
           (List.length l)

let prop_compiled_interpreter_parity =
  (* Randomized destinations through both engines must agree. *)
  let env = Env.create ~name:"par" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.32.0.0/11") 2;
  let template = Realize.ipv4 ~src:(v4 "9.9.9.9") ~dst:(v4 "10.0.0.1") ~payload:"" () in
  let prog =
    match Dip_pisa.Compile.compile ~registry ~template with
    | Ok p -> p
    | Error e -> failwith e
  in
  QCheck.Test.make ~name:"fuzz: compiled/interpreter parity on DIP-32" ~count:500
    QCheck.int32
    (fun dst ->
      let a = Realize.ipv4 ~src:(v4 "9.9.9.9") ~dst ~payload:"" () in
      let b = Bitbuf.copy a in
      let vi, _ = Engine.process ~registry env ~now:0.0 ~ingress:0 a in
      let vc = Dip_pisa.Compile.run prog env ~now:0.0 ~ingress:0 b in
      vi = vc)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "mixed traffic, one router" `Quick
            test_mixed_traffic_single_router;
          Alcotest.test_case "unsupported-FN notification" `Quick
            test_unsupported_notification_returns_to_source;
          Alcotest.test_case "tunnel across legacy core" `Quick
            test_tunnel_across_legacy_core;
          Alcotest.test_case "F_pass enabled on the fly" `Quick
            test_fpass_enabled_on_the_fly;
          Alcotest.test_case "OPT over 3 simulated hops" `Quick
            test_opt_three_hop_simulation;
          Alcotest.test_case "telemetry reads real queues" `Quick
            test_telemetry_reports_real_queue;
          Alcotest.test_case "PIT fanout copies independent" `Quick
            test_pit_fanout_independent_copies;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_parse_never_raises;
          QCheck_alcotest.to_alcotest prop_engine_never_raises_on_corruption;
          QCheck_alcotest.to_alcotest prop_host_engine_never_raises;
          QCheck_alcotest.to_alcotest prop_ndn_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_xia_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_engine_total_on_random_constructions;
          QCheck_alcotest.to_alcotest prop_compiled_interpreter_parity;
        ] );
    ]
