(* Tests for Dip_analysis: the static FN-program verifier. Every
   check class must fire on a crafted bad program and stay silent on
   the §3 realizations. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name
module Report = Dip_analysis.Report
module Topology = Dip_netsim.Topology

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string
let reg = Ops.default_registry ()
let dest_key = String.make 16 'k'
let name = Name.of_string "/a/b"

let section3 () =
  [
    ( "ipv4",
      Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"x" () );
    ("ipv6", Realize.ipv6 ~src:(v6 "::1") ~dst:(v6 "::2") ~payload:"x" ());
    ("ndn interest", Realize.ndn_interest ~name ~payload:"" ());
    ("ndn data", Realize.ndn_data ~name ~content:"x" ());
    ( "opt",
      Realize.opt ~hops:3 ~session_id:1L ~timestamp:0l ~dest_key ~payload:"x" () );
    ( "ndn+opt",
      Realize.ndn_opt_data ~hops:3 ~session_id:1L ~timestamp:0l ~dest_key ~name
        ~content:"x" () );
    ( "xia",
      Realize.xia
        ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
        ~payload:"x" () );
  ]

let has check r = List.exists (fun d -> d.Report.check = check) r.Report.diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_error check r =
  List.exists
    (fun d -> d.Report.check = check && d.Report.severity = Report.Error)
    r.Report.diags

(* The OPT program of Realize.opt (§3), as an FN list. *)
let opt_fns =
  [
    Fn.v ~loc:128 ~len:128 Opkey.F_parm;
    Fn.v ~loc:0 ~len:416 Opkey.F_mac;
    Fn.v ~loc:288 ~len:128 Opkey.F_mark;
    Fn.v ~tag:Fn.Host ~loc:0 ~len:544 Opkey.F_ver;
  ]

(* --- the §3 realizations must be accepted --- *)

let test_section3_clean () =
  List.iter
    (fun (label, pkt) ->
      let r = Dip_analysis.analyze_packet ~registry:reg pkt in
      Alcotest.(check bool)
        (Printf.sprintf "%s clean: %s" label
           (Option.value ~default:"" (Report.first_error r)))
        true (Report.clean r);
      Alcotest.(check int)
        (label ^ " depth matches engine")
        r.Report.engine_depth r.Report.depth)
    (section3 ())

let test_depth_matches_engine_info () =
  (* Rebuild each §3 packet with the §2.2 parallel bit and compare the
     analyzer's hazard-aware depth with what the engine reports. The
     analyzer's depth is a whole-program static property; the engine
     reports the critical path of the FNs that {e actually executed},
     so runtime depth can only match the static depth when every FN
     ran (no host tags, no abort) and must never exceed it. *)
  List.iter
    (fun (label, pkt) ->
      let view =
        match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e
      in
      let fns = Array.to_list view.Packet.fns in
      let locations =
        Bitbuf.get_field pkt
          (Field.v
             ~off_bits:(8 * view.Packet.loc_base)
             ~len_bits:(8 * view.Packet.header.Header.fn_loc_len))
      in
      let par = Packet.build ~parallel:true ~fns ~locations ~payload:"" () in
      let r = Dip_analysis.analyze_packet ~registry:reg par in
      let env = Env.create ~name:"r" () in
      let _, info = Engine.process ~registry:reg env ~now:0.0 ~ingress:0 par in
      Alcotest.(check bool)
        (label ^ " engine parallel_depth bounded by static depth")
        true
        (info.Engine.parallel_depth <= r.Report.depth);
      if info.Engine.ops_run = List.length fns then
        Alcotest.(check int)
          (label ^ " engine parallel_depth")
          info.Engine.parallel_depth r.Report.depth)
    (section3 ())

(* --- bounds --- *)

let test_bounds_region () =
  let r =
    Dip_analysis.analyze ~loc_len:8 [ Fn.v ~loc:0 ~len:65 Opkey.F_32_match ]
  in
  Alcotest.(check bool) "65 bits over a 64-bit region" true
    (has_error Report.Bounds r);
  Alcotest.(check bool) "not ok" false (Report.ok r)

let test_bounds_corrupt_packet () =
  (* Corrupt the FN length in a real packet: analyze_packet must
     report the slice, not abort like Packet.parse does. *)
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  Bitbuf.set_uint16 pkt 8 999;
  let r = Dip_analysis.analyze_packet ~registry:reg pkt in
  Alcotest.(check bool) "bounds error" true (has_error Report.Bounds r);
  Alcotest.(check int) "both FNs still analyzed" 2 r.Report.fn_count

(* --- races under the parallel flag --- *)

let test_race_write_write () =
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_cc; Fn.v ~loc:16 ~len:32 Opkey.F_tel ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:8 fns in
  Alcotest.(check bool) "race under parallel" true (has_error Report.Race par);
  (* Sequential execution order is authoritative: no race. *)
  let seq = Dip_analysis.analyze ~loc_len:8 fns in
  Alcotest.(check bool) "clean when sequential" true (Report.clean seq)

let test_race_read_only_overlap_is_fine () =
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:0 ~len:32 Opkey.F_fib ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:8 fns in
  Alcotest.(check bool) "two readers never race" false (has Report.Race par)

let test_parallel_scratch_hazard () =
  (* F_parm and F_mark on disjoint slices: nothing orders them under
     the engine's overlap-only leveling, so the scratch dependency is
     unsafe with the parallel flag. *)
  let fns =
    [ Fn.v ~loc:0 ~len:128 Opkey.F_parm; Fn.v ~loc:128 ~len:128 Opkey.F_mark ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:32 fns in
  Alcotest.(check bool) "scratch escapes overlap ordering" true
    (has_error Report.Race par
    && List.exists
         (fun d -> contains ~sub:"parallel flag unsafe" d.Report.message)
         par.Report.diags);
  (* In the real OPT program the slices overlap, so the engine's
     leveling orders producer before consumer: no scratch hazard
     (the overlaps themselves still make the parallel claim false,
     which is a separate write-write/read-write diagnostic). *)
  let opt = Dip_analysis.analyze ~parallel:true ~loc_len:68 opt_fns in
  Alcotest.(check bool) "OPT has no scratch hazard" false
    (List.exists
       (fun d -> contains ~sub:"parallel flag unsafe" d.Report.message)
       opt.Report.diags);
  Alcotest.(check bool) "sequential OPT is clean" true
    (Report.clean (Dip_analysis.analyze ~loc_len:68 opt_fns))

(* --- dependency order --- *)

let test_dependency_mac_before_parm () =
  let fns =
    [ Fn.v ~loc:0 ~len:416 Opkey.F_mac; Fn.v ~loc:128 ~len:128 Opkey.F_parm ]
  in
  let r = Dip_analysis.analyze ~loc_len:68 fns in
  Alcotest.(check bool) "F_MAC before F_parm" true
    (has_error Report.Dependency r);
  let good = Dip_analysis.analyze ~loc_len:68 opt_fns in
  Alcotest.(check bool) "OPT order accepted" false (has Report.Dependency good)

let test_dependency_respects_tags () =
  (* A host-tagged producer is invisible to a router-tagged consumer:
     the engine skips it on the router side (Algorithm 1 line 5). *)
  let fns =
    [
      Fn.v ~tag:Fn.Host ~loc:128 ~len:128 Opkey.F_parm;
      Fn.v ~loc:0 ~len:416 Opkey.F_mac;
    ]
  in
  let r = Dip_analysis.analyze ~loc_len:68 fns in
  Alcotest.(check bool) "producer on the wrong side" true
    (has_error Report.Dependency r)

(* --- keys and tags --- *)

let test_unknown_key_diagnostic () =
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  (* First triple's op-key word sits at byte 10 (6-byte header + loc
     + len). *)
  Bitbuf.set_uint16 pkt 10 99;
  let r = Dip_analysis.analyze_packet ~registry:reg pkt in
  Alcotest.(check bool) "unknown key reported" true (has_error Report.Key r);
  Alcotest.(check bool) "message names the key" true
    (List.exists
       (fun d -> d.Report.message = "unknown operation key 99")
       r.Report.diags)

let test_missing_mandatory_key () =
  let limited = Registry.restrict reg [ Opkey.F_parm ] in
  let r = Dip_analysis.analyze ~registry:limited ~loc_len:68 opt_fns in
  Alcotest.(check bool) "missing F_MAC is an error" true
    (has_error Report.Key r)

let test_missing_ignorable_key_warns () =
  let no_tel = Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ] in
  let fns = [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:64 ~len:32 Opkey.F_tel ] in
  let r = Dip_analysis.analyze ~registry:no_tel ~loc_len:12 fns in
  Alcotest.(check bool) "warning, not error" true
    (has Report.Key r && Report.ok r)

let test_host_tagged_forwarding_warns () =
  let fns = [ Fn.v ~tag:Fn.Host ~loc:0 ~len:32 Opkey.F_32_match ] in
  let r = Dip_analysis.analyze ~loc_len:4 fns in
  Alcotest.(check bool) "routers would skip it" true (has Report.Tag r);
  (* F_ver is host-tagged by design and not a forwarding FN. *)
  let ver = Dip_analysis.analyze ~loc_len:68 opt_fns in
  Alcotest.(check bool) "host-tagged F_ver is fine" false (has Report.Tag ver)

(* --- deployment (§2.4) --- *)

let test_deployment_gap () =
  let topo = Topology.linear 3 in
  let limited = Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ] in
  let registry_at n = if n = 1 then limited else reg in
  let diags =
    Dip_analysis.check_deployment ~topology:topo ~registry_at ~src:0 ~dst:2
      opt_fns
  in
  (* The middle router lacks F_parm, F_MAC and F_mark; F_ver is not
     mandatory so the (fully equipped) destination is fine. *)
  Alcotest.(check int) "three gaps on node 1" 3 (List.length diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "names node 1" true
        (contains ~sub:"node 1" d.Report.message))
    diags;
  let clean =
    Dip_analysis.check_deployment ~topology:topo ~registry_at:(fun _ -> reg)
      ~src:0 ~dst:2 opt_fns
  in
  Alcotest.(check int) "full deployment is clean" 0 (List.length clean)

let test_deployment_unreachable () =
  let topo = { Topology.node_count = 2; edges = [] } in
  match
    Dip_analysis.check_deployment ~topology:topo ~registry_at:(fun _ -> reg)
      ~src:0 ~dst:1 opt_fns
  with
  | [ d ] ->
      Alcotest.(check bool) "deployment error" true
        (d.Report.check = Report.Deployment)
  | l -> Alcotest.failf "expected one diagnostic, got %d" (List.length l)

(* --- the engine hook --- *)

let test_engine_verify_rejects () =
  let bad =
    Packet.build
      ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
      ~locations:(String.make 68 '\000') ~payload:"" ()
  in
  let env = Env.create ~name:"r" () in
  match Dip_analysis.process ~verify:true ~registry:reg env ~now:0.0 ~ingress:0 bad with
  | Engine.Dropped reason, info ->
      Alcotest.(check bool) "verify: prefix" true
        (String.length reason >= 7 && String.sub reason 0 7 = "verify:");
      Alcotest.(check int) "nothing executed" 0 info.Engine.ops_run
  | _ -> Alcotest.fail "verification must drop the packet"

let test_engine_verify_passes_good () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Ipaddr.Prefix.of_string "10.0.0.0/8") 3;
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  match Dip_analysis.process ~verify:true ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 3 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "verified packet dropped: %s" r
  | _ -> Alcotest.fail "expected forward"

let test_verifier_shape () =
  let pkt = Realize.ndn_interest ~name ~payload:"" () in
  let view = match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e in
  (match Dip_analysis.verifier ~registry:reg () view with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good program refused: %s" e);
  let bad_view =
    let buf =
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
        ~locations:(String.make 68 '\000') ~payload:"" ()
    in
    match Packet.parse buf with Ok v -> v | Error e -> Alcotest.fail e
  in
  match Dip_analysis.verifier () bad_view with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "orphan F_MAC must be refused"

(* --- odds and ends --- *)

let test_depth_values () =
  Alcotest.(check int) "empty program" 0 (Dip_analysis.depth []);
  Alcotest.(check int) "OPT depth 4" 4 (Dip_analysis.depth opt_fns);
  Alcotest.(check int) "independent FNs" 1
    (Dip_analysis.depth
       [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:32 ~len:32 Opkey.F_source ])

let test_garbage_header () =
  let r = Dip_analysis.analyze_packet ~registry:reg (Bitbuf.of_string "ab") in
  Alcotest.(check bool) "parse error" true (has_error Report.Parse r)

let () =
  Alcotest.run "dip-analysis"
    [
      ( "section3",
        [
          Alcotest.test_case "all realizations clean" `Quick test_section3_clean;
          Alcotest.test_case "depth matches engine info" `Quick
            test_depth_matches_engine_info;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "region overflow" `Quick test_bounds_region;
          Alcotest.test_case "corrupt packet" `Quick test_bounds_corrupt_packet;
        ] );
      ( "races",
        [
          Alcotest.test_case "write-write" `Quick test_race_write_write;
          Alcotest.test_case "readers don't race" `Quick
            test_race_read_only_overlap_is_fine;
          Alcotest.test_case "scratch hazard" `Quick test_parallel_scratch_hazard;
        ] );
      ( "dependency",
        [
          Alcotest.test_case "MAC before parm" `Quick
            test_dependency_mac_before_parm;
          Alcotest.test_case "tag sides" `Quick test_dependency_respects_tags;
        ] );
      ( "keys",
        [
          Alcotest.test_case "unknown key" `Quick test_unknown_key_diagnostic;
          Alcotest.test_case "missing mandatory" `Quick test_missing_mandatory_key;
          Alcotest.test_case "missing ignorable" `Quick
            test_missing_ignorable_key_warns;
          Alcotest.test_case "host-tagged forwarding" `Quick
            test_host_tagged_forwarding_warns;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "gap on path" `Quick test_deployment_gap;
          Alcotest.test_case "unreachable" `Quick test_deployment_unreachable;
        ] );
      ( "engine-hook",
        [
          Alcotest.test_case "rejects bad" `Quick test_engine_verify_rejects;
          Alcotest.test_case "passes good" `Quick test_engine_verify_passes_good;
          Alcotest.test_case "verifier shape" `Quick test_verifier_shape;
        ] );
      ( "misc",
        [
          Alcotest.test_case "depth values" `Quick test_depth_values;
          Alcotest.test_case "garbage header" `Quick test_garbage_header;
        ] );
    ]
