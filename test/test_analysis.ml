(* Tests for Dip_analysis: the static FN-program verifier. Every
   check class must fire on a crafted bad program and stay silent on
   the §3 realizations. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name
module Report = Dip_analysis.Report
module Topology = Dip_netsim.Topology

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string
let reg = Ops.default_registry ()
let dest_key = String.make 16 'k'
let name = Name.of_string "/a/b"

let section3 () =
  [
    ( "ipv4",
      Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"x" () );
    ("ipv6", Realize.ipv6 ~src:(v6 "::1") ~dst:(v6 "::2") ~payload:"x" ());
    ("ndn interest", Realize.ndn_interest ~name ~payload:"" ());
    ("ndn data", Realize.ndn_data ~name ~content:"x" ());
    ( "opt",
      Realize.opt ~hops:3 ~session_id:1L ~timestamp:0l ~dest_key ~payload:"x" () );
    ( "ndn+opt",
      Realize.ndn_opt_data ~hops:3 ~session_id:1L ~timestamp:0l ~dest_key ~name
        ~content:"x" () );
    ( "xia",
      Realize.xia
        ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
        ~payload:"x" () );
  ]

let has check r = List.exists (fun d -> d.Report.check = check) r.Report.diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_error check r =
  List.exists
    (fun d -> d.Report.check = check && d.Report.severity = Report.Error)
    r.Report.diags

(* The OPT program of Realize.opt (§3), as an FN list. *)
let opt_fns =
  [
    Fn.v ~loc:128 ~len:128 Opkey.F_parm;
    Fn.v ~loc:0 ~len:416 Opkey.F_mac;
    Fn.v ~loc:288 ~len:128 Opkey.F_mark;
    Fn.v ~tag:Fn.Host ~loc:0 ~len:544 Opkey.F_ver;
  ]

(* --- the §3 realizations must be accepted --- *)

let test_section3_clean () =
  List.iter
    (fun (label, pkt) ->
      let r = Dip_analysis.analyze_packet ~registry:reg pkt in
      Alcotest.(check bool)
        (Printf.sprintf "%s clean: %s" label
           (Option.value ~default:"" (Report.first_error r)))
        true (Report.clean r);
      Alcotest.(check int)
        (label ^ " depth matches engine")
        r.Report.engine_depth r.Report.depth)
    (section3 ())

let test_depth_matches_engine_info () =
  (* Rebuild each §3 packet with the §2.2 parallel bit and compare the
     analyzer's hazard-aware depth with what the engine reports. The
     analyzer's depth is a whole-program static property; the engine
     reports the critical path of the FNs that {e actually executed},
     so runtime depth can only match the static depth when every FN
     ran (no host tags, no abort) and must never exceed it. *)
  List.iter
    (fun (label, pkt) ->
      let view =
        match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e
      in
      let fns = Array.to_list view.Packet.fns in
      let locations =
        Bitbuf.get_field pkt
          (Field.v
             ~off_bits:(8 * view.Packet.loc_base)
             ~len_bits:(8 * view.Packet.header.Header.fn_loc_len))
      in
      let par = Packet.build ~parallel:true ~fns ~locations ~payload:"" () in
      let r = Dip_analysis.analyze_packet ~registry:reg par in
      let env = Env.create ~name:"r" () in
      let _, info = Engine.process ~registry:reg env ~now:0.0 ~ingress:0 par in
      Alcotest.(check bool)
        (label ^ " engine parallel_depth bounded by static depth")
        true
        (info.Engine.parallel_depth <= r.Report.depth);
      if info.Engine.ops_run = List.length fns then
        Alcotest.(check int)
          (label ^ " engine parallel_depth")
          info.Engine.parallel_depth r.Report.depth)
    (section3 ())

(* --- bounds --- *)

let test_bounds_region () =
  let r =
    Dip_analysis.analyze ~loc_len:8 [ Fn.v ~loc:0 ~len:65 Opkey.F_32_match ]
  in
  Alcotest.(check bool) "65 bits over a 64-bit region" true
    (has_error Report.Bounds r);
  Alcotest.(check bool) "not ok" false (Report.ok r)

let test_bounds_corrupt_packet () =
  (* Corrupt the FN length in a real packet: analyze_packet must
     report the slice, not abort like Packet.parse does. *)
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  Bitbuf.set_uint16 pkt 8 999;
  let r = Dip_analysis.analyze_packet ~registry:reg pkt in
  Alcotest.(check bool) "bounds error" true (has_error Report.Bounds r);
  Alcotest.(check int) "both FNs still analyzed" 2 r.Report.fn_count

(* --- races under the parallel flag --- *)

let test_race_write_write () =
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_cc; Fn.v ~loc:16 ~len:32 Opkey.F_tel ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:8 fns in
  Alcotest.(check bool) "race under parallel" true (has_error Report.Race par);
  (* Sequential execution order is authoritative: no race. *)
  let seq = Dip_analysis.analyze ~loc_len:8 fns in
  Alcotest.(check bool) "clean when sequential" true (Report.clean seq)

let test_race_read_only_overlap_is_fine () =
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:0 ~len:32 Opkey.F_fib ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:8 fns in
  Alcotest.(check bool) "two readers never race" false (has Report.Race par)

let test_parallel_scratch_hazard () =
  (* F_parm and F_mark on disjoint slices: nothing orders them under
     the engine's overlap-only leveling, so the scratch dependency is
     unsafe with the parallel flag. *)
  let fns =
    [ Fn.v ~loc:0 ~len:128 Opkey.F_parm; Fn.v ~loc:128 ~len:128 Opkey.F_mark ]
  in
  let par = Dip_analysis.analyze ~parallel:true ~loc_len:32 fns in
  Alcotest.(check bool) "scratch escapes overlap ordering" true
    (has_error Report.Race par
    && List.exists
         (fun d -> contains ~sub:"parallel flag unsafe" d.Report.message)
         par.Report.diags);
  (* In the real OPT program the slices overlap, so the engine's
     leveling orders producer before consumer: no scratch hazard
     (the overlaps themselves still make the parallel claim false,
     which is a separate write-write/read-write diagnostic). *)
  let opt = Dip_analysis.analyze ~parallel:true ~loc_len:68 opt_fns in
  Alcotest.(check bool) "OPT has no scratch hazard" false
    (List.exists
       (fun d -> contains ~sub:"parallel flag unsafe" d.Report.message)
       opt.Report.diags);
  Alcotest.(check bool) "sequential OPT is clean" true
    (Report.clean (Dip_analysis.analyze ~loc_len:68 opt_fns))

(* --- dependency order --- *)

let test_dependency_mac_before_parm () =
  let fns =
    [ Fn.v ~loc:0 ~len:416 Opkey.F_mac; Fn.v ~loc:128 ~len:128 Opkey.F_parm ]
  in
  let r = Dip_analysis.analyze ~loc_len:68 fns in
  Alcotest.(check bool) "F_MAC before F_parm" true
    (has_error Report.Dependency r);
  let good = Dip_analysis.analyze ~loc_len:68 opt_fns in
  Alcotest.(check bool) "OPT order accepted" false (has Report.Dependency good)

let test_dependency_respects_tags () =
  (* A host-tagged producer is invisible to a router-tagged consumer:
     the engine skips it on the router side (Algorithm 1 line 5). *)
  let fns =
    [
      Fn.v ~tag:Fn.Host ~loc:128 ~len:128 Opkey.F_parm;
      Fn.v ~loc:0 ~len:416 Opkey.F_mac;
    ]
  in
  let r = Dip_analysis.analyze ~loc_len:68 fns in
  Alcotest.(check bool) "producer on the wrong side" true
    (has_error Report.Dependency r)

(* --- keys and tags --- *)

let test_unknown_key_diagnostic () =
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  (* First triple's op-key word sits at byte 10 (6-byte header + loc
     + len). *)
  Bitbuf.set_uint16 pkt 10 99;
  let r = Dip_analysis.analyze_packet ~registry:reg pkt in
  Alcotest.(check bool) "unknown key reported" true (has_error Report.Key r);
  Alcotest.(check bool) "message names the key" true
    (List.exists
       (fun d -> d.Report.message = "unknown operation key 99")
       r.Report.diags)

let test_missing_mandatory_key () =
  let limited = Registry.restrict reg [ Opkey.F_parm ] in
  let r = Dip_analysis.analyze ~registry:limited ~loc_len:68 opt_fns in
  Alcotest.(check bool) "missing F_MAC is an error" true
    (has_error Report.Key r)

let test_missing_ignorable_key_warns () =
  let no_tel = Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ] in
  let fns = [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:64 ~len:32 Opkey.F_tel ] in
  let r = Dip_analysis.analyze ~registry:no_tel ~loc_len:12 fns in
  Alcotest.(check bool) "warning, not error" true
    (has Report.Key r && Report.ok r)

let test_host_tagged_forwarding_warns () =
  let fns = [ Fn.v ~tag:Fn.Host ~loc:0 ~len:32 Opkey.F_32_match ] in
  let r = Dip_analysis.analyze ~loc_len:4 fns in
  Alcotest.(check bool) "routers would skip it" true (has Report.Tag r);
  (* F_ver is host-tagged by design and not a forwarding FN. *)
  let ver = Dip_analysis.analyze ~loc_len:68 opt_fns in
  Alcotest.(check bool) "host-tagged F_ver is fine" false (has Report.Tag ver)

(* --- deployment (§2.4) --- *)

let test_deployment_gap () =
  let topo = Topology.linear 3 in
  let limited = Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ] in
  let registry_at n = if n = 1 then limited else reg in
  let diags =
    Dip_analysis.check_deployment ~topology:topo ~registry_at ~src:0 ~dst:2
      opt_fns
  in
  (* The middle router lacks F_parm, F_MAC and F_mark; F_ver is not
     mandatory so the (fully equipped) destination is fine. *)
  Alcotest.(check int) "three gaps on node 1" 3 (List.length diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "names node 1" true
        (contains ~sub:"node 1" d.Report.message))
    diags;
  let clean =
    Dip_analysis.check_deployment ~topology:topo ~registry_at:(fun _ -> reg)
      ~src:0 ~dst:2 opt_fns
  in
  Alcotest.(check int) "full deployment is clean" 0 (List.length clean)

let test_deployment_unreachable () =
  let topo = { Topology.node_count = 2; edges = [] } in
  match
    Dip_analysis.check_deployment ~topology:topo ~registry_at:(fun _ -> reg)
      ~src:0 ~dst:1 opt_fns
  with
  | [ d ] ->
      Alcotest.(check bool) "deployment error" true
        (d.Report.check = Report.Deployment)
  | l -> Alcotest.failf "expected one diagnostic, got %d" (List.length l)

(* --- the engine hook --- *)

let test_engine_verify_rejects () =
  let bad =
    Packet.build
      ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
      ~locations:(String.make 68 '\000') ~payload:"" ()
  in
  let env = Env.create ~name:"r" () in
  match Dip_analysis.process ~verify:true ~registry:reg env ~now:0.0 ~ingress:0 bad with
  | Engine.Dropped reason, info ->
      Alcotest.(check bool) "verify: prefix" true
        (String.length reason >= 7 && String.sub reason 0 7 = "verify:");
      Alcotest.(check int) "nothing executed" 0 info.Engine.ops_run
  | _ -> Alcotest.fail "verification must drop the packet"

let test_engine_verify_passes_good () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Ipaddr.Prefix.of_string "10.0.0.0/8") 3;
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  match Dip_analysis.process ~verify:true ~registry:reg env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 3 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "verified packet dropped: %s" r
  | _ -> Alcotest.fail "expected forward"

let test_verifier_shape () =
  let pkt = Realize.ndn_interest ~name ~payload:"" () in
  let view = match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e in
  (match Dip_analysis.verifier ~registry:reg () view with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good program refused: %s" e);
  let bad_view =
    let buf =
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
        ~locations:(String.make 68 '\000') ~payload:"" ()
    in
    match Packet.parse buf with Ok v -> v | Error e -> Alcotest.fail e
  in
  match Dip_analysis.verifier () bad_view with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "orphan F_MAC must be refused"

(* --- the transfer table must agree with the access modes the
   engine schedules by: a disagreement means the abstract semantics
   verify a different program than the one Algorithm 1 executes --- *)

let test_transfer_consistency () =
  List.iter
    (fun k ->
      let a = Registry.access k and t = Registry.transfer k in
      Alcotest.(check bool)
        (Opkey.name k ^ ": writes_target iff t_writes")
        (Registry.writes_target a)
        (t.Registry.t_writes <> []);
      if a.Registry.forwarding then
        Alcotest.(check bool)
          (Opkey.name k ^ ": forwarding implies t_match")
          true t.Registry.t_match;
      Alcotest.(check bool)
        (Opkey.name k ^ ": reads_scratch iff t_consumes")
        a.Registry.reads_scratch
        (t.Registry.t_consumes <> []);
      Alcotest.(check bool)
        (Opkey.name k ^ ": writes_scratch iff t_produces")
        a.Registry.writes_scratch
        (t.Registry.t_produces <> []))
    Opkey.all

(* --- sharding: no router-side FN may rewrite the flow-hash field --- *)

let test_sharding_rewrite_detected () =
  let fns =
    [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:0 ~len:72 Opkey.F_tel ]
  in
  let r = Dip_analysis.analyze ~registry:reg ~loc_len:9 fns in
  Alcotest.(check bool) "sharding error" true (has_error Report.Sharding r);
  Alcotest.(check bool) "names the workers" true
    (List.exists
       (fun d -> contains ~sub:"mcore workers" d.Report.message)
       r.Report.diags)

let test_sharding_step_writes_exempt () =
  (* XIA's F_DAG advances the DAG pointer inside its own target — a
     deterministic step every packet of the flow takes identically,
     so worker affinity is preserved and no diagnostic is due. *)
  let xia =
    Realize.xia
      ~dag:(Dip_xia.Dag.direct (Dip_xia.Xid.of_name Dip_xia.Xid.SID "s"))
      ~payload:"x" ()
  in
  let r = Dip_analysis.analyze_packet ~registry:reg xia in
  Alcotest.(check bool) "xia has no sharding diag" false (has Report.Sharding r)

let test_sharding_host_writer_exempt () =
  (* A host-tagged writer never executes on the sharded routers. *)
  let fns =
    [
      Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
      Fn.v ~tag:Fn.Host ~loc:0 ~len:72 Opkey.F_tel;
    ]
  in
  let r = Dip_analysis.analyze ~registry:reg ~loc_len:9 fns in
  Alcotest.(check bool) "no sharding diag" false (has Report.Sharding r)

(* --- dataflow hazards beyond pairwise overlap --- *)

let test_latent_hazard_sequential_warns () =
  (* Without the parallel flag the program is correct today, but the
     scratch edge F_parm→F_mark escapes the engine's overlap leveling
     (disjoint targets, both level 1): flipping §2.2 breaks it. *)
  let fns =
    [ Fn.v ~loc:128 ~len:128 Opkey.F_parm; Fn.v ~loc:288 ~len:128 Opkey.F_mark ]
  in
  let r = Dip_analysis.analyze ~registry:reg ~parallel:false ~loc_len:52 fns in
  Alcotest.(check bool) "no errors" true (Report.ok r);
  Alcotest.(check bool) "latent-hazard warning" true
    (List.exists
       (fun d ->
         d.Report.severity = Report.Warning
         && contains ~sub:"latent parallel hazard" d.Report.message)
       r.Report.diags)

let test_hazard_chain_depth_two () =
  (* F_parm —scratch→ F_mark —region read→ F_pass: the second edge is
     one step removed from any scratch pair, which the v1 pairwise
     checks could not see. All three targets are disjoint, so the
     engine runs everything at level 1 under the parallel flag. *)
  let fns =
    [
      Fn.v ~loc:416 ~len:128 Opkey.F_parm;
      Fn.v ~loc:0 ~len:128 Opkey.F_mark;
      Fn.v ~loc:544 ~len:32 Opkey.F_pass;
    ]
  in
  let r = Dip_analysis.analyze ~registry:reg ~parallel:true ~loc_len:72 fns in
  let unsafe fn_index =
    List.exists
      (fun d ->
        d.Report.severity = Report.Error
        && d.Report.fn_index = Some fn_index
        && contains ~sub:"parallel flag unsafe" d.Report.message)
      r.Report.diags
  in
  Alcotest.(check bool) "scratch edge flagged (F_mark)" true (unsafe 1);
  Alcotest.(check bool) "depth-2 read edge flagged (F_pass)" true (unsafe 2)

(* --- topology-wide reachability --- *)

module Reach = Dip_analysis.Reach

let reach_node ?registry routes =
  {
    Reach.n_registry = Some (Option.value registry ~default:reg);
    n_routes = routes;
    n_local = [];
  }

let ipv4_view () =
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"x" ()
  in
  match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e

let reach_match_value view =
  match Reach.match_value view with
  | Some v -> v
  | None -> Alcotest.fail "no match value"

let test_reach_clean_chain () =
  let view = ipv4_view () in
  let v = reach_match_value view in
  let config =
    {
      Reach.c_topology = Topology.linear 4;
      c_node = (fun i -> reach_node (if i < 3 then [ (v, i + 1) ] else []));
      c_src = 0;
      c_dst = 3;
    }
  in
  Alcotest.(check int) "no diagnostics" 0
    (List.length (Reach.check_view config view))

let test_reach_loop () =
  let view = ipv4_view () in
  let v = reach_match_value view in
  let config =
    {
      Reach.c_topology = Topology.linear 4;
      c_node =
        (fun i ->
          reach_node
            (match i with
            | 0 -> [ (v, 1) ]
            | 1 -> [ (v, 2) ]
            | 2 -> [ (v, 0) ]
            | _ -> []));
      c_src = 0;
      c_dst = 3;
    }
  in
  let diags = Reach.check_view config view in
  Alcotest.(check bool) "loop reported" true
    (List.exists
       (fun d ->
         d.Report.check = Report.Loop && d.Report.severity = Report.Error
         && contains ~sub:"0→1→2→0" d.Report.message)
       diags)

let test_reach_blackhole () =
  let view = ipv4_view () in
  let v = reach_match_value view in
  let config =
    {
      Reach.c_topology = Topology.linear 3;
      c_node = (fun i -> reach_node (if i = 0 then [ (v, 1) ] else []));
      c_src = 0;
      c_dst = 2;
    }
  in
  let diags = Reach.check_view config view in
  Alcotest.(check bool) "blackhole at node 1" true
    (List.exists
       (fun d ->
         d.Report.check = Report.Blackhole
         && contains ~sub:"node 1 has no route" d.Report.message)
       diags)

let test_reach_post_rewrite_gap () =
  (* Node 1 fans out to node 2 only for packets whose match value an
     upstream F_tel rewrote; node 2 lacks mandatory F_hvf. The
     shortest path 0→1→3 is clean, so only the symbolic pass that
     follows the rewritten (unknown) value finds the gap. *)
  let pkt =
    Packet.build
      ~fns:
        [
          Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
          Fn.v ~loc:0 ~len:72 Opkey.F_tel;
          Fn.v ~loc:72 ~len:32 Opkey.F_hvf;
        ]
      ~locations:(String.make 13 '\000') ~payload:"" ()
  in
  let view = match Packet.parse pkt with Ok v -> v | Error e -> Alcotest.fail e in
  let v = reach_match_value view in
  let gapped =
    Registry.restrict reg
      (List.filter (fun k -> k <> Opkey.F_hvf) (Registry.supported reg))
  in
  let config =
    {
      Reach.c_topology = Topology.linear 4;
      c_node =
        (fun i ->
          match i with
          | 0 -> reach_node [ (v, 1) ]
          | 1 -> reach_node [ (v, 3); ("\xffoff-path", 2) ]
          | 2 -> reach_node ~registry:gapped [ (v, 3) ]
          | _ -> reach_node []);
      c_src = 0;
      c_dst = 3;
    }
  in
  let diags = Reach.check_view config view in
  let gap =
    List.find_opt
      (fun d ->
        d.Report.check = Report.Deployment && d.Report.severity = Report.Error)
      diags
  in
  match gap with
  | None -> Alcotest.fail "deployment gap not found"
  | Some d ->
      Alcotest.(check bool) "names node 2" true
        (contains ~sub:"node 2" d.Report.message);
      Alcotest.(check bool) "explains the rewrite" true
        (contains ~sub:"rewrote the match field" d.Report.message)

(* --- engine verdict memoization re-keys on the hook identity --- *)

let test_verify_memo_rekeys_on_hook () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Ipaddr.Prefix.of_string "10.0.0.0/8") 3;
  let pkt () =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  let hook_a _ = Error "hook-a says no" in
  let hook_b _ = Ok () in
  let run hook =
    fst (Engine.process ~verify:hook ~registry:reg env ~now:0.0 ~ingress:0 (pkt ()))
  in
  (match run hook_a with
  | Engine.Dropped r ->
      Alcotest.(check bool) "a's reason" true (contains ~sub:"hook-a" r)
  | _ -> Alcotest.fail "hook a must drop");
  (* Same cached program, different hook: the memoized verdict must
     not be served — hook b accepts and the packet forwards. *)
  (match run hook_b with
  | Engine.Forwarded [ 3 ] -> ()
  | Engine.Dropped r -> Alcotest.failf "stale verdict served: %s" r
  | _ -> Alcotest.fail "hook b must forward");
  match run hook_a with
  | Engine.Dropped _ -> ()
  | _ -> Alcotest.fail "switching back re-verifies"

(* --- qcheck: soundness + cache-stability of the verifying engine --- *)

let soundness_candidates =
  lazy
    (Array.of_list
       (List.map snd (section3 ())
       @ [
           (* programs the analyzer must reject *)
           Packet.build
             ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
             ~locations:(String.make 52 '\000') ~payload:"" ();
           Packet.build ~parallel:true
             ~fns:
               [
                 Fn.v ~loc:0 ~len:32 Opkey.F_cc; Fn.v ~loc:0 ~len:72 Opkey.F_tel;
               ]
             ~locations:(String.make 9 '\000') ~payload:"" ();
           Packet.build
             ~fns:
               [
                 Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
                 Fn.v ~loc:0 ~len:72 Opkey.F_tel;
               ]
             ~locations:(String.make 9 '\000') ~payload:"" ();
         ]))

let verdict_sig = function
  | Engine.Forwarded ps ->
      "fwd:" ^ String.concat "," (List.map string_of_int ps)
  | Engine.Delivered -> "delivered"
  | Engine.Responded _ -> "responded"
  | Engine.Quiet -> "quiet"
  | Engine.Dropped r -> "drop:" ^ r
  | Engine.Unsupported k -> "unsupported:" ^ Opkey.name k

let prop_verify_sound_and_cache_stable =
  QCheck.Test.make ~count:60
    ~name:"analyzer-clean programs execute; verdicts cache-stable"
    QCheck.(int_bound (Array.length (Lazy.force soundness_candidates) - 1))
    (fun i ->
      let pkt = (Lazy.force soundness_candidates).(i) in
      let report = Dip_analysis.analyze_packet ~registry:reg pkt in
      let mk cap =
        let env = Env.create ~prog_cache_capacity:cap ~name:"q" () in
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
        Dip_ip.Ipv6.add_route env.Env.v6_routes
          (Ipaddr.Prefix.of_string "::/0") 1;
        Dip_tables.Name_fib.insert env.Env.fib name 1;
        env
      in
      let run env =
        verdict_sig
          (fst
             (Dip_analysis.process ~verify:true ~registry:reg env ~now:0.0
                ~ingress:0 (Bitbuf.copy pkt)))
      in
      (* Per-flow engine state may legitimately change verdicts
         between runs (PIT aggregation turns the second interest
         Quiet); the invariant under test is the *verifier's* verdict:
         identical across progcache miss, hit and cache-disabled. *)
      let verify_outcome s =
        if String.length s >= 12 && String.sub s 0 12 = "drop:verify:" then s
        else "pass"
      in
      let cached = mk 64 in
      let cold = verify_outcome (run cached) in
      let warm = verify_outcome (run cached) in
      let uncached = verify_outcome (run (mk 0)) in
      let stable = cold = warm && cold = uncached in
      let sound = (not (Report.ok report)) || cold = "pass" in
      stable && sound)

(* --- odds and ends --- *)

let test_depth_values () =
  Alcotest.(check int) "empty program" 0 (Dip_analysis.depth []);
  Alcotest.(check int) "OPT depth 4" 4 (Dip_analysis.depth opt_fns);
  Alcotest.(check int) "independent FNs" 1
    (Dip_analysis.depth
       [ Fn.v ~loc:0 ~len:32 Opkey.F_32_match; Fn.v ~loc:32 ~len:32 Opkey.F_source ])

let test_garbage_header () =
  let r = Dip_analysis.analyze_packet ~registry:reg (Bitbuf.of_string "ab") in
  Alcotest.(check bool) "parse error" true (has_error Report.Parse r)

let () =
  Alcotest.run "dip-analysis"
    [
      ( "section3",
        [
          Alcotest.test_case "all realizations clean" `Quick test_section3_clean;
          Alcotest.test_case "depth matches engine info" `Quick
            test_depth_matches_engine_info;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "region overflow" `Quick test_bounds_region;
          Alcotest.test_case "corrupt packet" `Quick test_bounds_corrupt_packet;
        ] );
      ( "races",
        [
          Alcotest.test_case "write-write" `Quick test_race_write_write;
          Alcotest.test_case "readers don't race" `Quick
            test_race_read_only_overlap_is_fine;
          Alcotest.test_case "scratch hazard" `Quick test_parallel_scratch_hazard;
        ] );
      ( "dependency",
        [
          Alcotest.test_case "MAC before parm" `Quick
            test_dependency_mac_before_parm;
          Alcotest.test_case "tag sides" `Quick test_dependency_respects_tags;
        ] );
      ( "keys",
        [
          Alcotest.test_case "unknown key" `Quick test_unknown_key_diagnostic;
          Alcotest.test_case "missing mandatory" `Quick test_missing_mandatory_key;
          Alcotest.test_case "missing ignorable" `Quick
            test_missing_ignorable_key_warns;
          Alcotest.test_case "host-tagged forwarding" `Quick
            test_host_tagged_forwarding_warns;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "gap on path" `Quick test_deployment_gap;
          Alcotest.test_case "unreachable" `Quick test_deployment_unreachable;
        ] );
      ( "engine-hook",
        [
          Alcotest.test_case "rejects bad" `Quick test_engine_verify_rejects;
          Alcotest.test_case "passes good" `Quick test_engine_verify_passes_good;
          Alcotest.test_case "verifier shape" `Quick test_verifier_shape;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "table agrees with access modes" `Quick
            test_transfer_consistency;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "rewrite detected" `Quick
            test_sharding_rewrite_detected;
          Alcotest.test_case "step writes exempt (xia)" `Quick
            test_sharding_step_writes_exempt;
          Alcotest.test_case "host writer exempt" `Quick
            test_sharding_host_writer_exempt;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "latent hazard warns when sequential" `Quick
            test_latent_hazard_sequential_warns;
          Alcotest.test_case "hazard chain at depth 2" `Quick
            test_hazard_chain_depth_two;
        ] );
      ( "reach",
        [
          Alcotest.test_case "clean chain" `Quick test_reach_clean_chain;
          Alcotest.test_case "forwarding loop" `Quick test_reach_loop;
          Alcotest.test_case "blackhole" `Quick test_reach_blackhole;
          Alcotest.test_case "post-rewrite deployment gap" `Quick
            test_reach_post_rewrite_gap;
        ] );
      ( "verify-cache",
        [
          Alcotest.test_case "memo re-keys on hook" `Quick
            test_verify_memo_rekeys_on_hook;
          QCheck_alcotest.to_alcotest prop_verify_sound_and_cache_stable;
        ] );
      ( "misc",
        [
          Alcotest.test_case "depth values" `Quick test_depth_values;
          Alcotest.test_case "garbage header" `Quick test_garbage_header;
        ] );
    ]
