(* Tests for native IPv4/IPv6 forwarding — the Figure 2 baselines. *)

open Dip_ip
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string

let v4_header ?(ttl = 64) ~src ~dst payload =
  { Ipv4.src = v4 src; dst = v4 dst; ttl; protocol = 17; payload_len = String.length payload }

(* --- IPv4 --- *)

let test_v4_encode_decode () =
  let h = v4_header ~src:"10.0.0.1" ~dst:"10.0.0.2" "hello" in
  let pkt = Ipv4.encode h ~payload:"hello" in
  Alcotest.(check int) "size" (20 + 5) (Bitbuf.length pkt);
  match Ipv4.decode pkt with
  | Ok h' ->
      Alcotest.(check int32) "src" h.Ipv4.src h'.Ipv4.src;
      Alcotest.(check int32) "dst" h.Ipv4.dst h'.Ipv4.dst;
      Alcotest.(check int) "ttl" 64 h'.Ipv4.ttl;
      Alcotest.(check int) "proto" 17 h'.Ipv4.protocol;
      Alcotest.(check int) "payload_len" 5 h'.Ipv4.payload_len
  | Error e -> Alcotest.fail e

let test_v4_header_size_is_paper_value () =
  (* Table 2: IPv4 forwarding header = 20 bytes. *)
  Alcotest.(check int) "Table 2 row" 20 Ipv4.header_size

let test_v4_checksum_detects_corruption () =
  let pkt = Ipv4.encode (v4_header ~src:"10.0.0.1" ~dst:"10.0.0.2" "") ~payload:"" in
  Alcotest.(check bool) "valid initially" true (Ipv4.checksum_valid pkt);
  Bitbuf.set_uint8 pkt 16 99 (* corrupt dst *);
  Alcotest.(check bool) "detects corruption" false (Ipv4.checksum_valid pkt);
  match Ipv4.decode pkt with
  | Error e -> Alcotest.(check string) "decode rejects" "bad checksum" e
  | Ok _ -> Alcotest.fail "decode accepted corrupt packet"

let test_v4_decode_rejects () =
  Alcotest.(check bool) "truncated" true
    (Ipv4.decode (Bitbuf.create 10) = Error "truncated header");
  let b = Bitbuf.create 20 in
  Bitbuf.set_uint8 b 0 0x65 (* version 6 *);
  Alcotest.(check bool) "wrong version" true (Ipv4.decode b = Error "not IPv4")

let test_v4_ttl_decrement_preserves_checksum () =
  let pkt = Ipv4.encode (v4_header ~src:"1.2.3.4" ~dst:"5.6.7.8" "x") ~payload:"x" in
  Alcotest.(check bool) "decremented" true (Ipv4.decrement_ttl pkt);
  Alcotest.(check bool) "incremental checksum still valid" true
    (Ipv4.checksum_valid pkt);
  match Ipv4.decode pkt with
  | Ok h -> Alcotest.(check int) "ttl 63" 63 h.Ipv4.ttl
  | Error e -> Alcotest.fail e

let test_v4_ttl_expiry () =
  let pkt = Ipv4.encode (v4_header ~ttl:1 ~src:"1.2.3.4" ~dst:"5.6.7.8" "") ~payload:"" in
  Alcotest.(check bool) "refuses at ttl 1" false (Ipv4.decrement_ttl pkt);
  match Ipv4.decode pkt with
  | Ok h -> Alcotest.(check int) "unchanged" 1 h.Ipv4.ttl
  | Error e -> Alcotest.fail e

let test_v4_forward_lpm () =
  let table = Dip_tables.Fib.V4.create () in
  Ipv4.add_route table (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Ipv4.add_route table (Ipaddr.Prefix.of_string "10.1.0.0/16") 2;
  let pkt dst = Ipv4.encode (v4_header ~src:"192.0.2.1" ~dst "") ~payload:"" in
  Alcotest.(check bool) "specific route" true
    (Ipv4.forward table (pkt "10.1.2.3") = Ipv4.Forward 2);
  Alcotest.(check bool) "coarse route" true
    (Ipv4.forward table (pkt "10.9.9.9") = Ipv4.Forward 1);
  Alcotest.(check bool) "no route" true
    (Ipv4.forward table (pkt "203.0.113.9") = Ipv4.Discard "no-route")

let test_v4_forward_local_delivery () =
  let table = Dip_tables.Fib.V4.create () in
  let pkt = Ipv4.encode (v4_header ~src:"192.0.2.1" ~dst:"10.0.0.7" "") ~payload:"" in
  Alcotest.(check bool) "delivered locally" true
    (Ipv4.forward ~local:(v4 "10.0.0.7") table pkt = Ipv4.Deliver)

let test_v4_forward_ttl_drop () =
  let table = Dip_tables.Fib.V4.create () in
  Ipv4.add_route table (Ipaddr.Prefix.of_string "0.0.0.0/0") 0;
  let pkt = Ipv4.encode (v4_header ~ttl:1 ~src:"192.0.2.1" ~dst:"10.0.0.7" "") ~payload:"" in
  Alcotest.(check bool) "ttl expiry" true
    (Ipv4.forward table pkt = Ipv4.Discard "ttl-expired")

let test_v4_add_route_rejects_v6 () =
  let table = Dip_tables.Fib.V4.create () in
  Alcotest.(check bool) "family check" true
    (try
       Ipv4.add_route table (Ipaddr.Prefix.of_string "2001:db8::/32") 0;
       false
     with Invalid_argument _ -> true)

(* --- IPv6 --- *)

let v6_header ?(hop_limit = 64) ~src ~dst payload =
  {
    Ipv6.src = v6 src;
    dst = v6 dst;
    hop_limit;
    next_header = 17;
    payload_len = String.length payload;
  }

let test_v6_encode_decode () =
  let h = v6_header ~src:"2001:db8::1" ~dst:"2001:db8::2" "payload!" in
  let pkt = Ipv6.encode h ~payload:"payload!" in
  Alcotest.(check int) "size" (40 + 8) (Bitbuf.length pkt);
  match Ipv6.decode pkt with
  | Ok h' ->
      Alcotest.(check bool) "src" true (Ipaddr.V6.compare h.Ipv6.src h'.Ipv6.src = 0);
      Alcotest.(check bool) "dst" true (Ipaddr.V6.compare h.Ipv6.dst h'.Ipv6.dst = 0);
      Alcotest.(check int) "hop limit" 64 h'.Ipv6.hop_limit;
      Alcotest.(check int) "payload_len" 8 h'.Ipv6.payload_len
  | Error e -> Alcotest.fail e

let test_v6_header_size_is_paper_value () =
  (* Table 2: IPv6 forwarding header = 40 bytes. *)
  Alcotest.(check int) "Table 2 row" 40 Ipv6.header_size

let test_v6_decode_rejects () =
  Alcotest.(check bool) "truncated" true
    (Ipv6.decode (Bitbuf.create 39) = Error "truncated header");
  let b = Bitbuf.create 40 in
  Bitbuf.set_uint8 b 0 0x45;
  Alcotest.(check bool) "wrong version" true (Ipv6.decode b = Error "not IPv6")

let test_v6_forward_lpm () =
  let table = Dip_tables.Fib.V6.create () in
  Ipv6.add_route table (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  Ipv6.add_route table (Ipaddr.Prefix.of_string "2001:db8:1::/48") 2;
  let pkt dst = Ipv6.encode (v6_header ~src:"2001:db8::1" ~dst "") ~payload:"" in
  Alcotest.(check bool) "specific" true
    (Ipv6.forward table (pkt "2001:db8:1::5") = Ipv6.Forward 2);
  Alcotest.(check bool) "coarse" true
    (Ipv6.forward table (pkt "2001:db8:2::5") = Ipv6.Forward 1);
  Alcotest.(check bool) "none" true
    (Ipv6.forward table (pkt "2001:db9::1") = Ipv6.Discard "no-route")

let test_v6_hop_limit () =
  let table = Dip_tables.Fib.V6.create () in
  Ipv6.add_route table (Ipaddr.Prefix.of_string "::/0") 0;
  let pkt =
    Ipv6.encode (v6_header ~hop_limit:1 ~src:"2001:db8::1" ~dst:"2001:db8::2" "")
      ~payload:""
  in
  Alcotest.(check bool) "expired" true
    (Ipv6.forward table pkt = Ipv6.Discard "hop-limit-expired")

(* --- end-to-end over the simulator --- *)

let test_v4_chain_simulation () =
  (* h0 -- r1 -- r2 -- h3: a packet addressed to h3 crosses both
     routers, losing two TTL steps. *)
  let sim = Dip_netsim.Sim.create () in
  let dst_addr = v4 "10.3.0.1" in
  let host_handler = Ipv4.handler ~local:dst_addr (Dip_tables.Fib.V4.create ()) in
  let mk_router_table port =
    let t = Dip_tables.Fib.V4.create () in
    Ipv4.add_route t (Ipaddr.Prefix.of_string "10.3.0.0/16") port;
    t
  in
  let h0 = Dip_netsim.Sim.add_node sim ~name:"h0" host_handler in
  let r1 = Dip_netsim.Sim.add_node sim ~name:"r1" (Ipv4.handler (mk_router_table 1)) in
  let r2 = Dip_netsim.Sim.add_node sim ~name:"r2" (Ipv4.handler (mk_router_table 1)) in
  let h3 = Dip_netsim.Sim.add_node sim ~name:"h3" host_handler in
  Dip_netsim.Sim.connect sim (h0, 0) (r1, 0);
  Dip_netsim.Sim.connect sim (r1, 1) (r2, 0);
  Dip_netsim.Sim.connect sim (r2, 1) (h3, 0);
  let pkt =
    Ipv4.encode (v4_header ~src:"10.0.0.1" ~dst:"10.3.0.1" "data") ~payload:"data"
  in
  Dip_netsim.Sim.inject sim ~at:0.0 ~node:r1 ~port:0 pkt;
  Dip_netsim.Sim.run sim;
  match Dip_netsim.Sim.consumed sim with
  | [ (node, _, delivered) ] ->
      Alcotest.(check int) "reached h3" h3 node;
      (match Ipv4.decode delivered with
      | Ok h -> Alcotest.(check int) "ttl lost 2" 62 h.Ipv4.ttl
      | Error e -> Alcotest.fail e)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let prop_v4_roundtrip =
  QCheck.Test.make ~name:"ipv4: encode/decode roundtrip" ~count:200
    QCheck.(triple int32 int32 small_string)
    (fun (src, dst, payload) ->
      let h =
        { Ipv4.src = src; dst; ttl = 64; protocol = 6;
          payload_len = String.length payload }
      in
      match Ipv4.decode (Ipv4.encode h ~payload) with
      | Ok h' -> h' = h
      | Error _ -> false)

let prop_v6_roundtrip =
  QCheck.Test.make ~name:"ipv6: encode/decode roundtrip" ~count:200
    QCheck.(pair (pair int64 int64) (pair (pair int64 int64) small_string))
    (fun (src, (dst, payload)) ->
      let h =
        { Ipv6.src = src; dst; hop_limit = 64; next_header = 6;
          payload_len = String.length payload }
      in
      match Ipv6.decode (Ipv6.encode h ~payload) with
      | Ok h' -> h' = h
      | Error _ -> false)

let () =
  Alcotest.run "ip"
    [
      ( "ipv4",
        [
          Alcotest.test_case "encode/decode" `Quick test_v4_encode_decode;
          Alcotest.test_case "header size (Table 2)" `Quick test_v4_header_size_is_paper_value;
          Alcotest.test_case "checksum" `Quick test_v4_checksum_detects_corruption;
          Alcotest.test_case "decode rejects" `Quick test_v4_decode_rejects;
          Alcotest.test_case "ttl decrement" `Quick test_v4_ttl_decrement_preserves_checksum;
          Alcotest.test_case "ttl expiry" `Quick test_v4_ttl_expiry;
          Alcotest.test_case "forward lpm" `Quick test_v4_forward_lpm;
          Alcotest.test_case "local delivery" `Quick test_v4_forward_local_delivery;
          Alcotest.test_case "forward ttl drop" `Quick test_v4_forward_ttl_drop;
          Alcotest.test_case "family check" `Quick test_v4_add_route_rejects_v6;
          QCheck_alcotest.to_alcotest prop_v4_roundtrip;
        ] );
      ( "ipv6",
        [
          Alcotest.test_case "encode/decode" `Quick test_v6_encode_decode;
          Alcotest.test_case "header size (Table 2)" `Quick test_v6_header_size_is_paper_value;
          Alcotest.test_case "decode rejects" `Quick test_v6_decode_rejects;
          Alcotest.test_case "forward lpm" `Quick test_v6_forward_lpm;
          Alcotest.test_case "hop limit" `Quick test_v6_hop_limit;
          QCheck_alcotest.to_alcotest prop_v6_roundtrip;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "v4 chain" `Quick test_v4_chain_simulation ] );
    ]
