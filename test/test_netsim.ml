(* Tests for the discrete-event simulator: the event queue, the
   simulation core, topology builders and workload generators. *)

open Dip_netsim
module Bitbuf = Dip_bitbuf.Bitbuf

(* --- Event queue --- *)

let test_eq_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    [ first; second; third ];
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  let order = List.init 10 (fun _ ->
      match Event_queue.pop q with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_eq_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Event_queue.peek_time q);
  Event_queue.push q ~time:5.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.0) (Event_queue.peek_time q);
  Alcotest.(check int) "size" 1 (Event_queue.size q)

let test_eq_invalid_times () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "nan rejected" true
    (try Event_queue.push q ~time:Float.nan (); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative rejected" true
    (try Event_queue.push q ~time:(-1.0) (); false
     with Invalid_argument _ -> true)

let test_eq_many_random () =
  let q = Event_queue.create () in
  let g = Dip_stdext.Prng.create 3L in
  let times = List.init 1000 (fun _ -> Dip_stdext.Prng.float g 100.0) in
  List.iter (fun t -> Event_queue.push q ~time:t ()) times;
  let rec drain last acc =
    match Event_queue.pop q with
    | None -> acc
    | Some (t, ()) ->
        Alcotest.(check bool) "monotone" true (t >= last);
        drain t (acc + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain 0.0 0)

(* Regression: [pop] used to leave the moved root's old slot pointing
   at a live cell, so the array retained every payload ever popped
   (a space leak) — and a later heap bug could have resurfaced stale
   cells. Times are drawn from a tiny range to force plenty of
   same-timestamp ties. *)
let prop_eq_fifo_ties_and_cleared_slots =
  QCheck.Test.make ~name:"ties pop FIFO and vacated slots are cleared"
    ~count:300
    QCheck.(list (int_bound 7))
    (fun raw ->
      let q = Event_queue.create () in
      let pushed = List.mapi (fun i t -> (float_of_int t, i)) raw in
      List.iter (fun (t, i) -> Event_queue.push q ~time:t i) pushed;
      let rec drain acc cleared =
        match Event_queue.pop q with
        | None -> (List.rev acc, cleared)
        | Some (t, i) ->
            drain ((t, i) :: acc)
              (cleared && Event_queue.vacant_slots_cleared q)
      in
      let popped, cleared = drain [] (Event_queue.vacant_slots_cleared q) in
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pushed
      in
      cleared && popped = expected)

(* --- Sim core --- *)

let packet s = Bitbuf.of_string s

(* A node that forwards everything from port 0 to port 1 and vice
   versa; endpoints consume. *)
let relay_handler _sim ~now:_ ~ingress pkt =
  [ Sim.Forward ((if ingress = 0 then 1 else 0), pkt) ]

let consume_handler _sim ~now:_ ~ingress:_ _pkt = [ Sim.Consume ]

let test_sim_linear_delivery () =
  let sim = Sim.create () in
  let a = Sim.add_node sim ~name:"a" consume_handler in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:1e-3 (a, 0) (r, 0);
  Sim.connect sim ~latency:1e-3 (r, 1) (b, 0);
  (* Inject at r as if coming from a: r must relay to b. *)
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (packet "hello");
  Sim.run sim;
  match Sim.consumed sim with
  | [ (node, time, pkt) ] ->
      Alcotest.(check int) "delivered to b" b node;
      Alcotest.(check bool) "after one link latency" true (time >= 1e-3);
      Alcotest.(check string) "payload intact" "hello" (Bitbuf.to_string pkt)
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l)

let test_sim_counters () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim (r, 1) (b, 0);
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (packet "x");
  Sim.run sim;
  let c = Sim.counters sim in
  Alcotest.(check int) "r.rx" 1 (Stats.Counters.get c "r.rx");
  Alcotest.(check int) "r.tx" 1 (Stats.Counters.get c "r.tx");
  Alcotest.(check int) "b.consumed" 1 (Stats.Counters.get c "b.consumed")

let test_sim_drop_counted () =
  let sim = Sim.create () in
  let d =
    Sim.add_node sim ~name:"d" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Drop "no-route" ])
  in
  Sim.inject sim ~at:0.0 ~node:d ~port:0 (packet "x");
  Sim.run sim;
  Alcotest.(check int) "drop reason counted" 1
    (Stats.Counters.get (Sim.counters sim) "d.drop.no-route")

let test_sim_unwired_port () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (packet "x");
  Sim.run sim;
  Alcotest.(check int) "unwired drop" 1
    (Stats.Counters.get (Sim.counters sim) "r.drop.unwired-port")

let test_sim_bandwidth_delay () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  (* 1000 B/s: a 100-byte packet takes 0.1 s of serialization. *)
  Sim.connect sim ~latency:0.0 ~bandwidth:1000.0 (r, 1) (b, 0);
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100);
  Sim.run sim;
  match Sim.consumed sim with
  | [ (_, time, _) ] ->
      Alcotest.(check (float 1e-9)) "serialization delay" 0.1 time
  | _ -> Alcotest.fail "expected one delivery"

let test_sim_double_wire_rejected () =
  let sim = Sim.create () in
  let a = Sim.add_node sim ~name:"a" consume_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  let c = Sim.add_node sim ~name:"c" consume_handler in
  Sim.connect sim (a, 0) (b, 0);
  Alcotest.(check bool) "rewiring rejected" true
    (try Sim.connect sim (a, 0) (c, 0); false with Invalid_argument _ -> true)

let test_sim_timer () =
  let sim = Sim.create () in
  let fired = ref (-1.0) in
  Sim.schedule sim ~at:2.5 (fun s -> fired := Sim.now s);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "timer fired at its time" 2.5 !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~at:1.0 (fun _ -> incr fired);
  Sim.schedule sim ~at:10.0 (fun _ -> incr fired);
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "only early event ran" 1 !fired;
  Sim.run sim;
  Alcotest.(check int) "rest runs later" 2 !fired

let test_sim_on_consume_hook () =
  let sim = Sim.create () in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  let seen = ref [] in
  Sim.on_consume sim (fun node _ pkt ->
      seen := (node, Bitbuf.to_string pkt) :: !seen);
  Sim.inject sim ~at:0.0 ~node:b ~port:0 (packet "ping");
  Sim.run sim;
  Alcotest.(check bool) "hook saw delivery" true (!seen = [ (b, "ping") ])

let test_sim_deterministic () =
  let run_once () =
    let sim = Sim.create () in
    let r = Sim.add_node sim ~name:"r" relay_handler in
    let b = Sim.add_node sim ~name:"b" consume_handler in
    Sim.connect sim ~latency:1e-4 (r, 1) (b, 0);
    List.iter
      (fun (a : Workload.arrival) ->
        Sim.inject sim ~at:a.time ~node:r ~port:0
          (packet (string_of_int a.index)))
      (Workload.poisson_arrivals ~seed:7L ~rate:100.0 ~count:50);
    Sim.run sim;
    List.map (fun (_, t, p) -> (t, Bitbuf.to_string p)) (Sim.consumed sim)
  in
  Alcotest.(check bool) "identical reruns" true (run_once () = run_once ())


let test_sim_serialization_queueing () =
  (* Two back-to-back packets on a 1000 B/s link: the second waits
     for the first to finish serializing. *)
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:0.0 ~bandwidth:1000.0 (r, 1) (b, 0);
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100);
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100);
  Sim.run sim;
  match Sim.consumed sim with
  | [ (_, t1, _); (_, t2, _) ] ->
      Alcotest.(check (float 1e-9)) "first at 0.1" 0.1 t1;
      Alcotest.(check (float 1e-9)) "second serialized behind it" 0.2 t2
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_sim_queue_overflow () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:0.0 ~bandwidth:1000.0 ~queue_capacity:2 (r, 1) (b, 0);
  for _ = 1 to 5 do
    Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100)
  done;
  Sim.run sim;
  Alcotest.(check int) "two delivered" 2 (List.length (Sim.consumed sim));
  Alcotest.(check int) "three drop-tailed" 3
    (Stats.Counters.get (Sim.counters sim) "r.drop.queue-overflow")

let test_sim_queue_overflow_infinite_bw () =
  (* Regression: infinite-bandwidth links used to bypass the queue
     accounting entirely, so queue_capacity never bound and every
     packet of a burst got through. *)
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:1e-3 ~queue_capacity:2 (r, 1) (b, 0);
  for _ = 1 to 5 do
    Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100)
  done;
  Sim.run sim;
  Alcotest.(check int) "capacity binds" 2 (List.length (Sim.consumed sim));
  Alcotest.(check int) "rest drop-tailed" 3
    (Stats.Counters.get (Sim.counters sim) "r.drop.queue-overflow");
  Alcotest.(check int) "only accepted packets counted as tx" 2
    (Stats.Counters.get (Sim.counters sim) "r.tx");
  Alcotest.(check int) "slots released after departure" 0
    (Sim.queue_depth sim r 1)

let test_sim_counters_infinite_bw_in_flight () =
  (* Regression: the in-flight count on an infinite-bandwidth link
     must rise while a handler's burst is being enqueued — it is what
     an F_tel-style hook observes. The handler transmits its burst
     one action at a time, so capacity 3 admits exactly 3 of 5. *)
  let sim = Sim.create () in
  let burst _sim ~now:_ ~ingress:_ pkt =
    List.init 5 (fun _ -> Sim.Forward (1, pkt))
  in
  let r = Sim.add_node sim ~name:"r" burst in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:1e-3 ~queue_capacity:3 (r, 1) (b, 0);
  Sim.inject sim ~at:0.0 ~node:r ~port:0 (packet "go");
  Sim.run sim;
  Alcotest.(check int) "three admitted" 3 (List.length (Sim.consumed sim));
  Alcotest.(check int) "two overflowed" 2
    (Stats.Counters.get (Sim.counters sim) "r.drop.queue-overflow")

let test_sim_queue_depth_observable () =
  let sim = Sim.create () in
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:0.0 ~bandwidth:1000.0 (r, 1) (b, 0);
  let observed = ref (-1) in
  for _ = 1 to 4 do
    Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100)
  done;
  (* Observe the egress queue right after the burst was enqueued. *)
  Sim.schedule sim ~at:0.01 (fun s -> observed := Sim.queue_depth s r 1);
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "depth was %d" !observed)
    true (!observed >= 3);
  Alcotest.(check int) "drains to zero" 0 (Sim.queue_depth sim r 1)

let test_sim_depth_gauge_drains () =
  (* Regression: the per-link depth gauge in an attached metrics
     registry was written only on enqueue, so after the queue drained
     it kept reading the last enqueue-time depth instead of 0. *)
  let sim = Sim.create () in
  let m = Dip_obs.Metrics.create () in
  Sim.attach_metrics sim m;
  let r = Sim.add_node sim ~name:"r" relay_handler in
  let b = Sim.add_node sim ~name:"b" consume_handler in
  Sim.connect sim ~latency:1e-3 ~bandwidth:1000.0 (r, 1) (b, 0);
  for _ = 1 to 4 do
    Sim.inject sim ~at:0.0 ~node:r ~port:0 (Bitbuf.create 100)
  done;
  Sim.run sim;
  (* Registering an existing name returns the same handle. *)
  let g = Dip_obs.Metrics.gauge m "sim.link.r.p1.queue_depth" in
  Alcotest.(check int) "gauge drained with the queue" 0
    (Dip_obs.Metrics.Gauge.get g);
  Alcotest.(check int) "matches the simulator's own view" 0
    (Sim.queue_depth sim r 1)

(* --- Topology --- *)

let test_topo_linear () =
  let t = Topology.linear 4 in
  Alcotest.(check int) "nodes" 4 t.Topology.node_count;
  Alcotest.(check (list int)) "middle neighbors" [ 0; 2 ] (Topology.neighbors t 1);
  Alcotest.(check int) "port numbering" 1 (Topology.port_of t 1 2);
  Alcotest.(check int) "port numbering" 0 (Topology.port_of t 1 0)

let test_topo_star () =
  let t = Topology.star 5 in
  Alcotest.(check int) "nodes" 6 t.Topology.node_count;
  Alcotest.(check int) "hub degree" 5 (List.length (Topology.neighbors t 0));
  Alcotest.(check (list int)) "leaf sees hub" [ 0 ] (Topology.neighbors t 3)

let test_topo_dumbbell () =
  let t = Topology.dumbbell 2 3 in
  Alcotest.(check int) "nodes" 7 t.Topology.node_count;
  (* switches are 2 and 3 *)
  Alcotest.(check bool) "switches linked" true (List.mem 3 (Topology.neighbors t 2));
  Alcotest.(check int) "left switch degree" 3 (List.length (Topology.neighbors t 2))

let test_topo_random_connected () =
  let t = Topology.random ~seed:5L ~nodes:30 ~degree:3 in
  let pred = Topology.shortest_paths t ~src:0 in
  let reachable = ref 1 in
  for v = 1 to 29 do
    if pred.(v) <> -1 then incr reachable
  done;
  Alcotest.(check int) "connected" 30 !reachable

let test_topo_next_hop () =
  let t = Topology.linear 5 in
  Alcotest.(check (option int)) "forward" (Some 1) (Topology.next_hop t ~src:0 ~dst:4);
  Alcotest.(check (option int)) "backward" (Some 3) (Topology.next_hop t ~src:4 ~dst:0);
  Alcotest.(check (option int)) "self" None (Topology.next_hop t ~src:2 ~dst:2)

let test_topo_instantiate () =
  let t = Topology.linear 3 in
  let sim = Sim.create () in
  let relay i = if i = 1 then relay_handler else consume_handler in
  let ids = Topology.instantiate t sim ~name:(Printf.sprintf "n%d") ~handler:relay in
  (* Node 0 sends through 1 to 2. *)
  Sim.inject sim ~at:0.0 ~node:ids.(1) ~port:0 (packet "via");
  Sim.run sim;
  match Sim.consumed sim with
  | [ (node, _, _) ] -> Alcotest.(check int) "reached n2" ids.(2) node
  | _ -> Alcotest.fail "expected delivery"

(* --- Trace --- *)

let test_trace_journey () =
  let sim = Sim.create () in
  let trace = Trace.attach sim in
  (* Fingerprint by payload content so hop rewrites would not matter
     (relay does not rewrite anyway). *)
  let r = Sim.add_node sim ~name:"r" (Trace.wrap trace ~name:"r" relay_handler) in
  let b = Sim.add_node sim ~name:"b" (Trace.wrap trace ~name:"b" consume_handler) in
  Sim.connect sim ~latency:1e-3 (r, 1) (b, 0);
  let pkt = packet "traced" in
  let fp = Dip_stdext.Crc32.digest "traced" in
  Sim.inject sim ~at:0.0 ~node:r ~port:0 pkt;
  Sim.run sim;
  let j = Trace.journey trace fp in
  let kinds = List.map (fun (e : Trace.event) -> (e.Trace.node, e.Trace.kind)) j in
  Alcotest.(check bool) "r received, b received+consumed" true
    (kinds
    = [ ("r", Trace.Received 0); ("b", Trace.Received 0); ("b", Trace.Consumed) ]);
  Alcotest.(check bool) "rendered" true
    (String.length (Format.asprintf "%a" Trace.pp_events j) > 0)

let test_trace_drop_recorded () =
  let sim = Sim.create () in
  let trace = Trace.attach sim in
  let d =
    Sim.add_node sim ~name:"d"
      (Trace.wrap trace ~name:"d" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Drop "boom" ]))
  in
  Sim.inject sim ~at:0.0 ~node:d ~port:0 (packet "x");
  Sim.run sim;
  match Trace.events trace with
  | [ { Trace.kind = Trace.Received 0; _ }; { Trace.kind = Trace.Dropped "boom"; _ } ] -> ()
  | l -> Alcotest.failf "unexpected trace (%d events)" (List.length l)

let test_trace_event_cap () =
  (* Past max_events the trace stops growing and counts the drops;
     journeys over the kept prefix still work. *)
  let sim = Sim.create () in
  let trace = Trace.attach ~max_events:3 sim in
  let d =
    Sim.add_node sim ~name:"d"
      (Trace.wrap trace ~name:"d" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Drop "full" ]))
  in
  for i = 0 to 4 do
    Sim.inject sim ~at:(float_of_int i) ~node:d ~port:0 (packet "capped")
  done;
  Sim.run sim;
  (* 5 packets x 2 events each (received + dropped), cap 3. *)
  Alcotest.(check int) "kept" 3 (Trace.event_count trace);
  Alcotest.(check int) "dropped" 7 (Trace.dropped_events trace);
  Alcotest.(check int) "events listing matches" 3
    (List.length (Trace.events trace));
  Alcotest.(check int) "journey sees the kept prefix" 3
    (List.length (Trace.journey trace (Dip_stdext.Crc32.digest "capped")));
  Alcotest.(check bool) "cap must be positive" true
    (try ignore (Trace.attach ~max_events:0 (Sim.create ())); false
     with Invalid_argument _ -> true)

let test_trace_journey_isolated () =
  (* Events are indexed per fingerprint: one packet's journey never
     scans (or includes) another's events. *)
  let sim = Sim.create () in
  let trace = Trace.attach sim in
  let d =
    Sim.add_node sim ~name:"d"
      (Trace.wrap trace ~name:"d" consume_handler)
  in
  Sim.inject sim ~at:0.0 ~node:d ~port:0 (packet "aaa");
  Sim.inject sim ~at:1.0 ~node:d ~port:0 (packet "bbb");
  Sim.run sim;
  let ja = Trace.journey trace (Dip_stdext.Crc32.digest "aaa") in
  let jb = Trace.journey trace (Dip_stdext.Crc32.digest "bbb") in
  Alcotest.(check int) "a's events" 2 (List.length ja);
  Alcotest.(check int) "b's events" 2 (List.length jb);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check bool) "a precedes b" true (e.Trace.time < 1.0))
    ja;
  Alcotest.(check int) "nothing for unknown fp" 0
    (List.length (Trace.journey trace 0xDEADl))

(* --- Stats --- *)

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "rx";
  Stats.Counters.incr c "rx";
  Stats.Counters.incr ~by:5 c "tx";
  Alcotest.(check int) "rx" 2 (Stats.Counters.get c "rx");
  Alcotest.(check int) "tx" 5 (Stats.Counters.get c "tx");
  Alcotest.(check int) "missing is 0" 0 (Stats.Counters.get c "nope");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("rx", 2); ("tx", 5) ]
    (Stats.Counters.to_list c)

let test_series_summary () =
  let s = Stats.Series.create () in
  List.iter (Stats.Series.add s) [ 4.0; 1.0; 3.0; 2.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.Series.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Series.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Series.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Series.max s);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.Series.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.Series.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.Series.stddev s)

let test_series_guards () =
  let s = Stats.Series.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.Series.mean s);
  Alcotest.(check bool) "empty percentile raises" true
    (try ignore (Stats.Series.percentile s 50.0); false
     with Invalid_argument _ -> true);
  Stats.Series.add s 1.0;
  Alcotest.(check bool) "p out of range" true
    (try ignore (Stats.Series.percentile s 101.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "summary non-empty" true
    (String.length (Stats.Series.summary s) > 0)

let test_series_reservoir_cap () =
  (* Beyond capacity the streaming stats stay exact while percentiles
     degrade to reservoir estimates — and memory stays bounded. *)
  let s = Stats.Series.create ~capacity:16 () in
  Alcotest.(check int) "capacity" 16 (Stats.Series.capacity s);
  for i = 1 to 1000 do
    Stats.Series.add s (float_of_int i)
  done;
  Alcotest.(check int) "count covers the whole stream" 1000
    (Stats.Series.count s);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Stats.Series.min s);
  Alcotest.(check (float 1e-9)) "max exact" 1000.0 (Stats.Series.max s);
  Alcotest.(check (float 1e-6)) "mean exact" 500.5 (Stats.Series.mean s);
  let p50 = Stats.Series.percentile s 50.0 in
  Alcotest.(check bool) "p50 is an in-range estimate" true
    (p50 >= 1.0 && p50 <= 1000.0);
  (* Within capacity percentiles are exact even after many adds. *)
  let exact = Stats.Series.create ~capacity:16 () in
  List.iter (Stats.Series.add exact) [ 9.0; 7.0; 8.0 ];
  Alcotest.(check (float 1e-9)) "exact under capacity" 8.0
    (Stats.Series.percentile exact 50.0);
  Alcotest.(check int) "default capacity" Stats.Series.default_capacity
    (Stats.Series.capacity (Stats.Series.create ()))

let test_series_tiny_reservoir_percentiles () =
  (* Regression: the old ceiling-rank rule returned the max for every
     quantile once the reservoir held fewer than ~4 samples, so a
     2-sample latency series reported p50 = p99 = max. Type-7
     interpolation keeps small reservoirs informative. *)
  let of_list l =
    let s = Stats.Series.create () in
    List.iter (Stats.Series.add s) l;
    s
  in
  let two = of_list [ 10.0; 20.0 ] in
  Alcotest.(check (float 1e-9)) "n=2 p50 interpolates" 15.0
    (Stats.Series.percentile two 50.0);
  Alcotest.(check (float 1e-9)) "n=2 p0" 10.0 (Stats.Series.percentile two 0.0);
  Alcotest.(check (float 1e-9)) "n=2 p100" 20.0
    (Stats.Series.percentile two 100.0);
  Alcotest.(check (float 1e-9)) "n=2 p99 below max" 19.9
    (Stats.Series.percentile two 99.0);
  let one = of_list [ 7.0 ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=1 p%.0f" p)
        7.0
        (Stats.Series.percentile one p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  let three = of_list [ 30.0; 10.0; 20.0 ] in
  Alcotest.(check (float 1e-9)) "n=3 p50 is the median" 20.0
    (Stats.Series.percentile three 50.0);
  Alcotest.(check (float 1e-9)) "n=3 p25" 15.0
    (Stats.Series.percentile three 25.0);
  Alcotest.(check (float 1e-9)) "n=3 p75" 25.0
    (Stats.Series.percentile three 75.0)

let test_series_empty_and_capacity_guard () =
  let s = Stats.Series.create () in
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Stats.Series.min s);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Stats.Series.max s);
  Alcotest.(check (float 0.0)) "empty stddev" 0.0 (Stats.Series.stddev s);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Stats.Series.create: capacity must be >= 1") (fun () ->
      ignore (Stats.Series.create ~capacity:0 ()))

(* --- Workload --- *)

let test_workload_sizes () =
  Alcotest.(check (list int)) "paper sizes" [ 128; 768; 1500 ]
    Workload.paper_packet_sizes

let test_workload_pad () =
  let hdr = Bitbuf.of_string "abc" in
  let padded = Workload.pad_to hdr 10 in
  Alcotest.(check int) "padded" 10 (Bitbuf.length padded);
  Alcotest.(check string) "header preserved" "abc"
    (String.sub (Bitbuf.to_string padded) 0 3);
  Alcotest.(check int) "no shrink" 3 (Bitbuf.length (Workload.pad_to hdr 2))

let test_workload_poisson () =
  let arrivals = Workload.poisson_arrivals ~seed:1L ~rate:10.0 ~count:100 in
  Alcotest.(check int) "count" 100 (List.length arrivals);
  let times = List.map (fun (a : Workload.arrival) -> a.time) arrivals in
  let sorted = List.sort compare times in
  Alcotest.(check bool) "monotone" true (times = sorted);
  (* Mean inter-arrival should be near 1/rate. *)
  let last = List.nth times 99 in
  Alcotest.(check bool) "plausible horizon" true (last > 2.0 && last < 50.0)

let test_workload_constant () =
  let a = Workload.constant_arrivals ~interval:0.5 ~count:4 in
  Alcotest.(check (list (float 1e-9))) "times" [ 0.0; 0.5; 1.0; 1.5 ]
    (List.map (fun (x : Workload.arrival) -> x.time) a)

let test_workload_zipf () =
  let names = Workload.zipf_names ~seed:2L ~catalog:50 ~count:1000 ~skew:1.0 in
  Alcotest.(check int) "count" 1000 (List.length names);
  let top = Workload.catalog_name 1 in
  let hits = List.length (List.filter (Dip_tables.Name.equal top) names) in
  Alcotest.(check bool) "head item popular" true (hits > 50)

let () =
  Alcotest.run "netsim"
    [
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "peek/size" `Quick test_eq_peek;
          Alcotest.test_case "invalid times" `Quick test_eq_invalid_times;
          Alcotest.test_case "random stress" `Quick test_eq_many_random;
          QCheck_alcotest.to_alcotest prop_eq_fifo_ties_and_cleared_slots;
        ] );
      ( "sim",
        [
          Alcotest.test_case "linear delivery" `Quick test_sim_linear_delivery;
          Alcotest.test_case "counters" `Quick test_sim_counters;
          Alcotest.test_case "drop counted" `Quick test_sim_drop_counted;
          Alcotest.test_case "unwired port" `Quick test_sim_unwired_port;
          Alcotest.test_case "bandwidth delay" `Quick test_sim_bandwidth_delay;
          Alcotest.test_case "double wire rejected" `Quick test_sim_double_wire_rejected;
          Alcotest.test_case "timer" `Quick test_sim_timer;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "consume hook" `Quick test_sim_on_consume_hook;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "serialization queueing" `Quick test_sim_serialization_queueing;
          Alcotest.test_case "queue overflow" `Quick test_sim_queue_overflow;
          Alcotest.test_case "queue overflow infinite bw" `Quick
            test_sim_queue_overflow_infinite_bw;
          Alcotest.test_case "in-flight count infinite bw" `Quick
            test_sim_counters_infinite_bw_in_flight;
          Alcotest.test_case "queue depth observable" `Quick test_sim_queue_depth_observable;
          Alcotest.test_case "depth gauge drains" `Quick test_sim_depth_gauge_drains;
        ] );
      ( "topology",
        [
          Alcotest.test_case "linear" `Quick test_topo_linear;
          Alcotest.test_case "star" `Quick test_topo_star;
          Alcotest.test_case "dumbbell" `Quick test_topo_dumbbell;
          Alcotest.test_case "random connected" `Quick test_topo_random_connected;
          Alcotest.test_case "next hop" `Quick test_topo_next_hop;
          Alcotest.test_case "instantiate" `Quick test_topo_instantiate;
        ] );
      ( "trace",
        [
          Alcotest.test_case "journey" `Quick test_trace_journey;
          Alcotest.test_case "drop recorded" `Quick test_trace_drop_recorded;
          Alcotest.test_case "event cap" `Quick test_trace_event_cap;
          Alcotest.test_case "journey isolated" `Quick
            test_trace_journey_isolated;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "series summary" `Quick test_series_summary;
          Alcotest.test_case "series guards" `Quick test_series_guards;
          Alcotest.test_case "reservoir cap" `Quick test_series_reservoir_cap;
          Alcotest.test_case "tiny reservoir percentiles" `Quick
            test_series_tiny_reservoir_percentiles;
          Alcotest.test_case "empty + capacity guard" `Quick
            test_series_empty_and_capacity_guard;
        ] );
      ( "workload",
        [
          Alcotest.test_case "paper sizes" `Quick test_workload_sizes;
          Alcotest.test_case "pad_to" `Quick test_workload_pad;
          Alcotest.test_case "poisson" `Quick test_workload_poisson;
          Alcotest.test_case "constant" `Quick test_workload_constant;
          Alcotest.test_case "zipf" `Quick test_workload_zipf;
        ] );
    ]
