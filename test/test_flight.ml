(* Tests for Dip_obs.Flight, the per-domain flight recorder: the
   event registry, ring overwrite/drain semantics (qcheck), the
   no-tearing property under parallel recording (3 domains, private
   rings), the Chrome trace-event exporter (validated with a real
   JSON parser, counts round-tripped), and the end-to-end layer
   coverage of a flight-recorded parallel chain run — the regression
   behind `dip profile`. *)

open Dip_core
module Flight = Dip_obs.Flight
module Export = Dip_obs.Export
module Metrics = Dip_obs.Metrics
module Mcore = Dip_mcore
module Sim = Dip_netsim.Sim
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string
let registry = Ops.default_registry ()

(* --- registry --- *)

let test_register_idempotent () =
  let a = Flight.register ~kind:Flight.Span "test.reg.alpha" in
  let b = Flight.register ~kind:Flight.Instant "test.reg.alpha" in
  Alcotest.(check bool) "same name, same id" true (a = b);
  Alcotest.(check string) "name survives" "test.reg.alpha" (Flight.id_name a);
  (* First registration wins the kind. *)
  Alcotest.(check bool) "first kind wins" true (Flight.id_kind a = Flight.Span);
  let c = Flight.register "test.reg.beta" in
  Alcotest.(check bool) "fresh name, fresh id" true (a <> c);
  Alcotest.(check bool) "default kind is Instant" true
    (Flight.id_kind c = Flight.Instant);
  Alcotest.(check bool) "registered lists both" true
    (List.exists (fun (n, _) -> n = "test.reg.alpha") (Flight.registered ())
    && List.exists (fun (n, _) -> n = "test.reg.beta") (Flight.registered ()))

(* --- ring drain semantics (qcheck) --- *)

let ev_q = Flight.register "test.ring.q"

(* Whatever the write count, a drain returns exactly the newest
   [min n capacity] events, oldest first, with monotone timestamps
   and the overwritten remainder accounted as dropped. *)
let qcheck_drain =
  QCheck.Test.make ~count:60 ~name:"ring drains newest events in order"
    QCheck.(pair (int_range 0 3000) (int_range 8 256))
    (fun (n, cap) ->
      let r = Flight.create ~capacity:cap ~pid:1 ~tid:2 () in
      let cap = Flight.capacity r in
      for k = 0 to n - 1 do
        Flight.record r ev_q k (k * 2) (k * 3)
      done;
      let evs = Flight.events r in
      let expect = min n cap in
      let first = max 0 (n - cap) in
      List.length evs = expect
      && Flight.recorded r = n
      && Flight.dropped r = max 0 (n - cap)
      && List.for_all (fun e -> e.Flight.ev_pid = 1 && e.Flight.ev_tid = 2) evs
      && (let ok = ref true and k = ref first and last = ref min_int in
          List.iter
            (fun e ->
              if
                e.Flight.ev_a0 <> !k
                || e.Flight.ev_a1 <> !k * 2
                || e.Flight.ev_a2 <> !k * 3
                || e.Flight.ev_ts < !last
              then ok := false;
              last := e.Flight.ev_ts;
              incr k)
            evs;
          !ok))

let test_clear () =
  let r = Flight.create ~capacity:16 ~pid:0 ~tid:0 () in
  for k = 0 to 99 do
    Flight.record r ev_q k 0 0
  done;
  Flight.clear r;
  Alcotest.(check int) "no events after clear" 0
    (List.length (Flight.events r));
  Alcotest.(check int) "recorded reset" 0 (Flight.recorded r);
  Flight.record r ev_q 7 0 0;
  Alcotest.(check int) "records again" 1 (List.length (Flight.events r))

(* --- no tearing across domains --- *)

let ev_tear = Flight.register "test.ring.tear"

(* Three domains hammer their own rings past capacity. Rings are
   single-writer, so every drained event must be internally
   consistent: the operands are all derived from the loop index, and
   any torn slot (operands from different writes) breaks the
   relation. *)
let test_no_tearing () =
  let domains = 3 and m = 40_000 and cap = 1024 in
  let rings =
    Array.init domains (fun d -> Flight.create ~capacity:cap ~pid:9 ~tid:d ())
  in
  let work d () =
    let r = rings.(d) in
    for k = 0 to m - 1 do
      Flight.record r ev_tear k ((2 * k) + d) (k lxor 0x5A)
    done
  in
  let spawned = Array.init domains (fun d -> Domain.spawn (work d)) in
  Array.iter Domain.join spawned;
  Array.iteri
    (fun d r ->
      let evs = Flight.events r in
      Alcotest.(check int)
        (Printf.sprintf "domain %d drains a full ring" d)
        cap (List.length evs);
      Alcotest.(check int)
        (Printf.sprintf "domain %d dropped the rest" d)
        (m - cap) (Flight.dropped r);
      List.iter
        (fun e ->
          let k = e.Flight.ev_a0 in
          if
            e.Flight.ev_id <> ev_tear
            || e.Flight.ev_a1 <> (2 * k) + d
            || e.Flight.ev_a2 <> k lxor 0x5A
          then
            Alcotest.failf "domain %d: torn event (a0=%d a1=%d a2=%d)" d k
              e.Flight.ev_a1 e.Flight.ev_a2)
        evs)
    rings

let test_merge_sorted () =
  let a = Flight.create ~capacity:64 ~pid:0 ~tid:0 () in
  let b = Flight.create ~capacity:64 ~pid:0 ~tid:1 () in
  for k = 0 to 49 do
    Flight.record (if k mod 2 = 0 then a else b) ev_q k 0 0
  done;
  let merged = Flight.merge [ a; b ] in
  Alcotest.(check int) "all events merged" 50 (List.length merged);
  let last = ref min_int in
  List.iter
    (fun e ->
      Alcotest.(check bool) "merged timestamps monotone" true
        (e.Flight.ev_ts >= !last);
      last := e.Flight.ev_ts)
    merged

(* --- Chrome trace export: real JSON, counts round-trip --- *)

(* A small strict JSON parser — enough to validate the exporter's
   output structurally rather than by substring. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
          || s.[!pos] = '\r')
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let lit l v =
      if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
      then (
        pos := !pos + String.length l;
        v)
      else raise (Bad "bad literal")
    in
    let string_ () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then raise (Bad "bad escape");
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !pos + 4 >= n then raise (Bad "bad \\u");
                pos := !pos + 4;
                Buffer.add_char b '?'
            | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> raise (Bad "bad number")
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then (
            incr pos;
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = string_ () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> raise (Bad "bad object")
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then (
            incr pos;
            Arr [])
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> raise (Bad "bad array")
            in
            elems []
      | Some '"' -> Str (string_ ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> Num (number ())
      | None -> raise (Bad "eof")
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let ev_span = Flight.register ~kind:Flight.Span "test.export.span"
let ev_inst = Flight.register "test.export.instant"
let ev_ctr = Flight.register ~kind:Flight.Counter "test.export.counter"

let test_chrome_trace_roundtrip () =
  let r = Flight.create ~capacity:256 ~pid:3 ~tid:1 () in
  for k = 0 to 19 do
    Flight.record r ev_span (100 + k) k 0;
    Flight.record r ev_inst k (k * 2) (k * 3);
    Flight.record r ev_ctr k 0 0
  done;
  let events = Flight.events r in
  let doc =
    Json.parse (Export.chrome_trace ~pid_names:[ (3, "node-three") ] events)
  in
  let trace_events =
    match doc with
    | Json.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.Arr l) -> l
        | _ -> Alcotest.fail "traceEvents missing or not an array")
    | _ -> Alcotest.fail "top level is not an object"
  in
  let field name obj =
    match obj with
    | Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let ph obj =
    match field "ph" obj with Some (Json.Str s) -> s | _ -> "?"
  in
  let data = List.filter (fun o -> ph o <> "M") trace_events in
  Alcotest.(check int) "one trace record per event" (List.length events)
    (List.length data);
  let count p = List.length (List.filter p data) in
  Alcotest.(check int) "spans become X" 20 (count (fun o -> ph o = "X"));
  Alcotest.(check int) "instants become i" 20 (count (fun o -> ph o = "i"));
  Alcotest.(check int) "counters become C" 20 (count (fun o -> ph o = "C"));
  (* Metadata: a process_name for pid 3 and a thread label. *)
  let meta = List.filter (fun o -> ph o = "M") trace_events in
  Alcotest.(check bool) "process_name present" true
    (List.exists
       (fun o ->
         field "name" o = Some (Json.Str "process_name")
         && field "pid" o = Some (Json.Num 3.0))
       meta);
  (* Spans carry their duration in microseconds and non-negative
     rebased timestamps. *)
  List.iter
    (fun o ->
      if ph o = "X" then begin
        (match field "dur" o with
        | Some (Json.Num d) ->
            Alcotest.(check bool) "dur in [0.1, 0.119] us" true
              (d >= 0.09 && d <= 0.12)
        | _ -> Alcotest.fail "span without dur");
        match field "ts" o with
        | Some (Json.Num ts) ->
            Alcotest.(check bool) "ts rebased to >= 0" true (ts >= 0.0)
        | _ -> Alcotest.fail "span without ts"
      end)
    data

(* --- end-to-end: the `dip profile` layer-coverage regression --- *)

let mk_env _w =
  let env = Env.create ~name:"flight-test" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Ipaddr.Prefix.of_string "10.0.0.0/8")
    1;
  env

let mk_pkt flow =
  Realize.ipv4 ~src:(v4 "192.0.2.1")
    ~dst:(v4 (Printf.sprintf "10.0.%d.%d" (flow / 250) (1 + (flow mod 250))))
    ~payload:"flight" ()

(* A 2-router chain with 2-domain pools, flight recorder armed
   everywhere, one mid-run epoch republish: the merged timeline must
   contain events from every instrumented layer, from at least two
   distinct lanes. This is exactly what `dip profile` asserts its
   trace on. *)
let test_profile_layer_coverage () =
  let sim = Sim.create () in
  let sim_ring = Flight.create ~pid:0 ~tid:0 () in
  Sim.set_flight sim (Some sim_ring);
  let snaps =
    List.init 2 (fun _ -> Mcore.Snapshot.v ~registry ~mk_env ())
  in
  let pools =
    List.mapi
      (fun i snap ->
        Mcore.Pool.create ~domains:2 ~metrics:true ~obs_sample_every:1
          ~flight:(i + 1) snap)
      snaps
  in
  let sink _sim ~now:_ ~ingress:_ _pkt = [ Sim.Consume ] in
  let handler_of pool _sim ~now ~ingress pkt =
    (Mcore.Pool.handle_batch pool [| { Mcore.Pool.now; ingress; pkt } |]).(0)
  in
  let ids =
    List.mapi
      (fun i pool ->
        Sim.add_node sim ~name:(Printf.sprintf "r%d" (i + 1)) (handler_of pool))
      pools
  in
  let sink_id = Sim.add_node sim ~name:"sink" sink in
  (match ids with
  | [ a; b ] ->
      Sim.connect sim (a, 1) (b, 0);
      Sim.connect sim (b, 1) (sink_id, 0)
  | _ -> assert false);
  let count = 400 in
  for k = 0 to count - 1 do
    Sim.inject sim
      ~at:(float_of_int k *. 1e-6)
      ~node:(List.hd ids) ~port:0
      (mk_pkt (k mod 64))
  done;
  Sim.schedule sim
    ~at:(float_of_int (count / 2) *. 1e-6)
    (fun _ ->
      List.iter2
        (fun snap pool ->
          match Mcore.Pool.publish pool (Mcore.Snapshot.next snap) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "republish rejected: %s" e)
        snaps pools);
  Mcore.Runner.run_parallel ~window:16e-6 sim
    ~pools:(List.combine ids pools);
  let events =
    Flight.merge (sim_ring :: List.concat_map Mcore.Pool.flight_rings pools)
  in
  let has prefix =
    List.exists
      (fun e ->
        let name = Flight.id_name e.Flight.ev_id in
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix)
      events
  in
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (prefix ^ " events present") true (has prefix))
    [
      "engine.process"; "progcache."; "pool.dispatch"; "pool.execute";
      "pool.await"; "pool.publish"; "sim.window."; "gc.";
    ];
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Flight.ev_tid) events)
  in
  Alcotest.(check bool) "events from at least two lanes" true
    (List.length tids >= 2);
  (* The hand-off digest exists and covers the dispatches. *)
  List.iter
    (fun pool ->
      match Mcore.Pool.timeline_summary pool with
      | None -> Alcotest.fail "armed pool has no timeline summary"
      | Some s ->
          Alcotest.(check bool) "dispatch lane non-empty" true
            (s.Mcore.Pool.dispatch.Mcore.Pool.count > 0);
          Alcotest.(check int) "one lane per worker" 2
            (List.length s.Mcore.Pool.lanes))
    pools;
  (* Epoch-swap telemetry on the pool-lifetime metrics: one publish,
     gauge at the new epoch, per-worker GC counters exported. *)
  List.iter
    (fun pool ->
      match Mcore.Pool.metrics pool with
      | None -> Alcotest.fail "metrics requested but absent"
      | Some m ->
          let snap = Metrics.snapshot m in
          let value name =
            match List.find_opt (fun (n, _, _) -> n = name) snap with
            | Some (_, _, Metrics.Counter_v v) | Some (_, _, Metrics.Gauge_v v)
              ->
                Some v
            | _ -> None
          in
          Alcotest.(check (option int)) "publish counted" (Some 1)
            (value "pool.publish.count");
          Alcotest.(check (option int)) "epoch gauge at 1" (Some 1)
            (value "pool.epoch");
          Alcotest.(check bool) "gc gauges exported" true
            (value "pool.worker0.gc.minor_collections" <> None
            && value "pool.worker1.gc.minor_collections" <> None))
    pools;
  List.iter Mcore.Pool.shutdown pools

let () =
  Alcotest.run "dip-flight"
    [
      ( "registry",
        [
          Alcotest.test_case "register idempotent" `Quick
            test_register_idempotent;
        ] );
      ( "ring",
        [
          QCheck_alcotest.to_alcotest qcheck_drain;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "no tearing across 3 domains" `Quick
            test_no_tearing;
          Alcotest.test_case "merge sorts by timestamp" `Quick
            test_merge_sorted;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_trace_roundtrip;
        ] );
      ( "profile",
        [
          Alcotest.test_case "layer coverage of a recorded run" `Quick
            test_profile_layer_coverage;
        ] );
    ]
