(* The at-scale FIB engines (Dip_tables.Fib) against the binary-trie
   oracle (Dip_tables.Lpm_trie), plus the PR-10 topology and workload
   generators they are benchmarked with.

   The oracle discipline: every property drives the DIR-24-8 engine
   and the trie through the same operation sequence and compares the
   full longest-match answer (length AND value), on adversarial
   prefix sets — overlapping, adjacent, default (/0) and host (/32)
   routes — and through removals, which exercise slot re-covering and
   spill-block compaction. *)

module Fib = Dip_tables.Fib
module Trie = Dip_tables.Lpm_trie
module Ipaddr = Dip_tables.Ipaddr
module Prng = Dip_stdext.Prng
module Topology = Dip_netsim.Topology
module Workload = Dip_netsim.Workload

let mask32 len = if len <= 0 then 0l else Int32.shift_left (-1l) (32 - len)

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string

(* --- hand-picked v4 cases ----------------------------------------- *)

let test_v4_basic () =
  let t = Fib.V4.create () in
  Fib.V4.insert t (v4 "10.0.0.0") ~len:8 "ten";
  Fib.V4.insert t (v4 "10.1.0.0") ~len:16 "ten-one";
  Fib.V4.insert t (v4 "0.0.0.0") ~len:0 "default";
  Alcotest.(check (option (pair int string)))
    "most specific wins"
    (Some (16, "ten-one"))
    (Fib.V4.lookup t (v4 "10.1.2.3"));
  Alcotest.(check (option (pair int string)))
    "covering /8"
    (Some (8, "ten"))
    (Fib.V4.lookup t (v4 "10.2.2.3"));
  Alcotest.(check (option (pair int string)))
    "default route"
    (Some (0, "default"))
    (Fib.V4.lookup t (v4 "192.0.2.1"));
  Alcotest.(check int) "size" 3 (Fib.V4.size t)

let test_v4_host_and_spill () =
  let t = Fib.V4.create () in
  Fib.V4.insert t (v4 "192.0.2.0") ~len:24 "net";
  Fib.V4.insert t (v4 "192.0.2.128") ~len:25 "upper";
  Fib.V4.insert t (v4 "192.0.2.200") ~len:32 "host";
  Alcotest.(check (option (pair int string)))
    "/24 below the spill split"
    (Some (24, "net"))
    (Fib.V4.lookup t (v4 "192.0.2.7"));
  Alcotest.(check (option (pair int string)))
    "/25 inside the spill block"
    (Some (25, "upper"))
    (Fib.V4.lookup t (v4 "192.0.2.129"));
  Alcotest.(check (option (pair int string)))
    "/32 host route"
    (Some (32, "host"))
    (Fib.V4.lookup t (v4 "192.0.2.200"));
  (* Withdrawing the host and the /25 must compact the spill block
     back into a plain /24 slot. *)
  Alcotest.(check bool) "remove host" true (Fib.V4.remove t (v4 "192.0.2.200") ~len:32);
  Alcotest.(check bool) "remove /25" true (Fib.V4.remove t (v4 "192.0.2.128") ~len:25);
  Alcotest.(check int) "no spill blocks left" 0 (Fib.V4.stats t).Fib.V4.spill_blocks;
  Alcotest.(check (option (pair int string)))
    "falls back to the /24"
    (Some (24, "net"))
    (Fib.V4.lookup t (v4 "192.0.2.200"))

let test_v4_withdraw_recovers () =
  let t = Fib.V4.create () in
  Fib.V4.insert t (v4 "10.0.0.0") ~len:8 "eight";
  Fib.V4.insert t (v4 "10.0.0.0") ~len:9 "nine";
  Fib.V4.insert t (v4 "10.0.0.0") ~len:16 "sixteen";
  Alcotest.(check (option (pair int string)))
    "deepest" (Some (16, "sixteen")) (Fib.V4.lookup t (v4 "10.0.0.1"));
  ignore (Fib.V4.remove t (v4 "10.0.0.0") ~len:16);
  Alcotest.(check (option (pair int string)))
    "re-covered by the /9" (Some (9, "nine")) (Fib.V4.lookup t (v4 "10.0.0.1"));
  ignore (Fib.V4.remove t (v4 "10.0.0.0") ~len:9);
  Alcotest.(check (option (pair int string)))
    "then the /8" (Some (8, "eight")) (Fib.V4.lookup t (v4 "10.0.0.1"));
  ignore (Fib.V4.remove t (v4 "10.0.0.0") ~len:8);
  Alcotest.(check (option (pair int string)))
    "then nothing" None (Fib.V4.lookup t (v4 "10.0.0.1"));
  Alcotest.(check bool) "double remove" false (Fib.V4.remove t (v4 "10.0.0.0") ~len:8)

let test_v4_replace () =
  let t = Fib.V4.create () in
  Fib.V4.insert t (v4 "10.0.0.0") ~len:8 "old";
  Fib.V4.insert t (v4 "10.0.0.0") ~len:8 "new";
  Alcotest.(check int) "replacement keeps size" 1 (Fib.V4.size t);
  Alcotest.(check (option (pair int string)))
    "replacement wins" (Some (8, "new")) (Fib.V4.lookup t (v4 "10.1.2.3"))

(* --- hand-picked v6 cases ----------------------------------------- *)

let test_v6_basic () =
  let t = Fib.V6.create () in
  Fib.V6.insert t (v6 "2001:db8::") ~len:32 "site";
  Fib.V6.insert t (v6 "2001:db8:1::") ~len:48 "subnet";
  Fib.V6.insert t (v6 "::") ~len:0 "default";
  Alcotest.(check (option (pair int string)))
    "most specific wins"
    (Some (48, "subnet"))
    (Fib.V6.lookup t (v6 "2001:db8:1::42"));
  Alcotest.(check (option (pair int string)))
    "covering /32"
    (Some (32, "site"))
    (Fib.V6.lookup t (v6 "2001:db8:2::42"));
  Alcotest.(check (option (pair int string)))
    "default"
    (Some (0, "default"))
    (Fib.V6.lookup t (v6 "2600::1"));
  ignore (Fib.V6.remove t (v6 "2001:db8:1::") ~len:48);
  Alcotest.(check (option (pair int string)))
    "withdrawal re-covers"
    (Some (32, "site"))
    (Fib.V6.lookup t (v6 "2001:db8:1::42"))

let test_v6_off_stride_lengths () =
  (* Lengths that are not multiples of 8 force controlled prefix
     expansion inside a node. *)
  let t = Fib.V6.create () in
  Fib.V6.insert t (v6 "2001::") ~len:13 "thirteen";
  Fib.V6.insert t (v6 "2001:800::") ~len:21 "twentyone";
  Fib.V6.insert t (v6 "2001:abc::") ~len:127 "neighbor";
  Alcotest.(check (option (pair int string)))
    "/13" (Some (13, "thirteen"))
    (Fib.V6.lookup t (v6 "2006::1"));
  Alcotest.(check (option (pair int string)))
    "/21 over /13" (Some (21, "twentyone"))
    (Fib.V6.lookup t (v6 "2001:8ff::1"));
  Alcotest.(check (option (pair int string)))
    "/127" (Some (127, "neighbor"))
    (Fib.V6.lookup t (v6 "2001:abc::1"))

(* --- randomized oracle properties --------------------------------- *)

(* A compact generator biased toward collisions: addresses drawn from
   four /8 blocks so prefixes overlap and nest constantly, lengths
   spanning /0 to /32 with the interesting extremes inflated. *)
let v4_entry_gen =
  QCheck.Gen.(
    let addr =
      map2
        (fun hi lo -> Int32.logor (Int32.shift_left (Int32.of_int hi) 24) (Int32.of_int lo))
        (oneofl [ 10; 10; 172; 192 ])
        (int_bound 0xFFFFFF)
    in
    let len = oneof [ int_range 0 32; oneofl [ 0; 8; 24; 25; 32; 32 ] ] in
    pair addr len)

let v4_ops_arbitrary =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (a, len) -> Printf.sprintf "%s/%d" (Ipaddr.V4.to_string a) len)
           l))
    QCheck.Gen.(list_size (int_range 1 60) v4_entry_gen)

let check_agree_v4 fib trie q =
  let a = Fib.V4.lookup fib q in
  let b = Trie.lookup_ipv4 trie q in
  match (a, b) with
  | None, None -> true
  | Some (l1, v1), Some (l2, v2) -> l1 = l2 && v1 = v2
  | _ -> false

let probe_points entries =
  (* Query at each inserted prefix base, one past it, and seeded
     random points — hits, near-misses, and misses. *)
  let g = Prng.create 77L in
  List.concat_map
    (fun (a, len) ->
      let base = Int32.logand a (mask32 len) in
      [ base; Int32.add base 1l; Int32.sub base 1l ])
    entries
  @ List.init 64 (fun _ -> Int32.of_int (Int64.to_int (Prng.next64 g) land 0xFFFFFFFF))

let prop_v4_oracle =
  QCheck.Test.make ~name:"fib v4: agrees with trie oracle" ~count:300
    v4_ops_arbitrary (fun entries ->
      let fib = Fib.V4.create () in
      let trie = Trie.create () in
      List.iteri
        (fun i (a, len) ->
          Fib.V4.insert fib a ~len i;
          Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len i)
        entries;
      List.for_all (check_agree_v4 fib trie) (probe_points entries))

let prop_v4_oracle_with_removals =
  QCheck.Test.make ~name:"fib v4: agrees with trie through removals" ~count:300
    v4_ops_arbitrary (fun entries ->
      let fib = Fib.V4.create () in
      let trie = Trie.create () in
      List.iteri
        (fun i (a, len) ->
          Fib.V4.insert fib a ~len i;
          Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len i)
        entries;
      (* Remove every other entry (duplicates may already be gone —
         the two sides must agree on that too). *)
      List.iteri
        (fun i (a, len) ->
          if i mod 2 = 0 then begin
            let r1 = Fib.V4.remove fib a ~len in
            let r2 = Trie.remove trie ~bits:(Ipaddr.V4.bit a) ~len in
            if r1 <> r2 then QCheck.Test.fail_report "remove results diverge"
          end)
        entries;
      List.for_all (check_agree_v4 fib trie) (probe_points entries))

let v6_entry_gen =
  QCheck.Gen.(
    let hi =
      map
        (fun x -> Int64.logor 0x2000_0000_0000_0000L (Int64.of_int x))
        (int_bound 0xFFFF)
    in
    let lo = map Int64.of_int (int_bound 0xFF) in
    let len = oneof [ int_range 0 128; oneofl [ 0; 13; 32; 48; 64; 127; 128 ] ] in
    map2 (fun hi (lo, len) -> ((hi, lo), len)) hi (pair lo len))

let v6_ops_arbitrary =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (a, len) -> Printf.sprintf "%s/%d" (Ipaddr.V6.to_string a) len)
           l))
    QCheck.Gen.(list_size (int_range 1 40) v6_entry_gen)

let mask6 (hi, lo) len =
  if len <= 0 then (0L, 0L)
  else if len >= 128 then (hi, lo)
  else if len <= 64 then (Int64.logand hi (Int64.shift_left (-1L) (64 - len)), 0L)
  else (hi, Int64.logand lo (Int64.shift_left (-1L) (128 - len)))

let check_agree_v6 fib trie q =
  let a = Fib.V6.lookup fib q in
  let b = Trie.lookup trie ~bits:(Ipaddr.V6.bit q) ~len:128 in
  match (a, b) with
  | None, None -> true
  | Some (l1, v1), Some (l2, v2) -> l1 = l2 && v1 = v2
  | _ -> false

let prop_v6_oracle =
  QCheck.Test.make ~name:"fib v6: agrees with trie oracle" ~count:200
    v6_ops_arbitrary (fun entries ->
      let fib = Fib.V6.create () in
      let trie = Trie.create () in
      List.iteri
        (fun i (a, len) ->
          Fib.V6.insert fib a ~len i;
          Trie.insert trie ~bits:(Ipaddr.V6.bit a) ~len i)
        entries;
      let probes =
        List.concat_map
          (fun (a, len) ->
            let (bh, bl) = mask6 a len in
            [ (bh, bl); (bh, Int64.add bl 1L); (Int64.add bh 1L, 0L) ])
          entries
      in
      List.for_all (check_agree_v6 fib trie) probes)

let prop_v6_oracle_with_removals =
  QCheck.Test.make ~name:"fib v6: agrees with trie through removals" ~count:200
    v6_ops_arbitrary (fun entries ->
      let fib = Fib.V6.create () in
      let trie = Trie.create () in
      List.iteri
        (fun i (a, len) ->
          Fib.V6.insert fib a ~len i;
          Trie.insert trie ~bits:(Ipaddr.V6.bit a) ~len i)
        entries;
      List.iteri
        (fun i (a, len) ->
          if i mod 2 = 0 then begin
            let r1 = Fib.V6.remove fib a ~len in
            let r2 = Trie.remove trie ~bits:(Ipaddr.V6.bit a) ~len in
            if r1 <> r2 then QCheck.Test.fail_report "remove results diverge"
          end)
        entries;
      let probes =
        List.concat_map
          (fun (a, len) ->
            let (bh, bl) = mask6 a len in
            [ (bh, bl); (bh, Int64.add bl 1L) ])
          entries
      in
      List.for_all (check_agree_v6 fib trie) probes)

(* --- update-under-traffic determinism ------------------------------ *)

(* The bench interleaves lookups with route churn; two identical
   seeded runs must produce identical verdict streams, and every
   verdict must match the trie driven through the same churn. *)
let test_update_under_traffic_determinism () =
  let run () =
    let prefixes = Workload.v4_prefixes ~seed:5L ~count:2_000 in
    let fib = Fib.V4.create () in
    let trie = Trie.create () in
    Array.iteri
      (fun i (a, len) ->
        Fib.V4.insert fib a ~len (i land 7);
        Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len (i land 7))
      prefixes;
    let traffic =
      Workload.v4_traffic ~seed:6L ~prefixes ~flows:500 ~packets:4_000
        ~skew:1.1
    in
    let churn = Prng.create 9L in
    let digest = Buffer.create 4_096 in
    Array.iteri
      (fun i dst ->
        (* Every 16 packets, withdraw or restore a seeded route. *)
        if i land 15 = 0 then begin
          let j = Prng.int churn (Array.length prefixes) in
          let a, len = prefixes.(j) in
          if Prng.bool churn then begin
            ignore (Fib.V4.remove fib a ~len);
            ignore (Trie.remove trie ~bits:(Ipaddr.V4.bit a) ~len)
          end
          else begin
            Fib.V4.insert fib a ~len (j land 7);
            Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len (j land 7)
          end
        end;
        let got = Fib.V4.lookup fib dst in
        if not (check_agree_v4 fib trie dst) then
          Alcotest.failf "fib/trie diverge at packet %d" i;
        Buffer.add_string digest
          (match got with
          | None -> "-"
          | Some (l, v) -> Printf.sprintf "%d:%d;" l v))
      traffic;
    Buffer.contents digest
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two seeded runs agree" true (String.equal a b)

(* --- generators ----------------------------------------------------- *)

let test_v4_prefixes_shape () =
  let ps = Workload.v4_prefixes ~seed:1L ~count:5_000 in
  Alcotest.(check int) "count" 5_000 (Array.length ps);
  let seen = Hashtbl.create 5_000 in
  Array.iter
    (fun (a, len) ->
      if len < 0 || len > 32 then Alcotest.failf "bad length %d" len;
      if Int32.logand a (Int32.lognot (mask32 len)) <> 0l then
        Alcotest.failf "host bits set in %s/%d" (Ipaddr.V4.to_string a) len;
      if Hashtbl.mem seen (a, len) then
        Alcotest.failf "duplicate %s/%d" (Ipaddr.V4.to_string a) len;
      Hashtbl.replace seen (a, len) ())
    ps;
  let n24 =
    Array.fold_left (fun n (_, len) -> if len = 24 then n + 1 else n) 0 ps
  in
  if n24 * 10 < Array.length ps * 4 then
    Alcotest.failf "/24 share unrealistically low: %d of %d" n24
      (Array.length ps);
  (* Determinism. *)
  let ps' = Workload.v4_prefixes ~seed:1L ~count:5_000 in
  Alcotest.(check bool) "seeded rerun identical" true (ps = ps')

let test_v4_traffic_matches_table () =
  let ps = Workload.v4_prefixes ~seed:2L ~count:1_000 in
  let fib = Fib.V4.create () in
  Array.iteri (fun i (a, len) -> Fib.V4.insert fib a ~len i) ps;
  let stream = Workload.v4_traffic ~seed:3L ~prefixes:ps ~flows:200 ~packets:2_000 ~skew:1.1 in
  Alcotest.(check int) "stream length" 2_000 (Array.length stream);
  Array.iter
    (fun dst ->
      if Fib.V4.lookup_id fib dst < 0 then
        Alcotest.failf "destination %s misses the table" (Ipaddr.V4.to_string dst))
    stream

let test_fat_tree () =
  let t = Topology.fat_tree 4 in
  (* 4 cores + 4 pods x (2 agg + 2 edge + 4 hosts). *)
  Alcotest.(check int) "node count" 36 t.Topology.node_count;
  (* k^2/2 core links x2? — count edges: each pod contributes
     2x2 uplinks + 2x2 agg-edge + 4 host links. *)
  Alcotest.(check int) "edge count" (4 * (4 + 4 + 4))
    (List.length t.Topology.edges);
  (* Any host can reach any other host. *)
  let host_a = 4 + 0 * 8 + 4 (* first host of pod 0 *) in
  let host_b = 4 + 3 * 8 + 7 (* last host of pod 3 *) in
  (match Topology.path t ~src:host_a ~dst:host_b with
  | Some p ->
      (* host-edge-agg-core-agg-edge-host = 7 nodes. *)
      Alcotest.(check int) "shortest path length" 7 (List.length p)
  | None -> Alcotest.fail "fat-tree not connected");
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Topology.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Topology.fat_tree 3))

let test_wan () =
  let t = Topology.wan ~seed:4L ~sites:12 ~chords:6 in
  Alcotest.(check int) "site count" 12 t.Topology.node_count;
  Alcotest.(check int) "ring + chords" 18 (List.length t.Topology.edges);
  List.iter
    (fun e ->
      if e.Topology.latency < 0.005 || e.Topology.latency > 0.080 then
        Alcotest.failf "latency %.4f outside the WAN envelope" e.Topology.latency)
    t.Topology.edges;
  (* Connected: every site reachable from site 0. *)
  for dst = 1 to 11 do
    if Topology.path t ~src:0 ~dst = None then
      Alcotest.failf "site %d unreachable" dst
  done;
  (* Determinism. *)
  let t' = Topology.wan ~seed:4L ~sites:12 ~chords:6 in
  Alcotest.(check bool) "seeded rerun identical" true (t = t')

(* --- memory accounting --------------------------------------------- *)

let test_v4_memory_accounting () =
  let t = Fib.V4.create () in
  let empty = (Fib.V4.stats t).Fib.V4.lookup_bytes in
  (* An empty table holds only the shared sentinel chunks: well under
     a million bytes, not the 48 MB of a materialized table. *)
  if empty > 1_000_000 then
    Alcotest.failf "empty table costs %d bytes" empty;
  let ps = Workload.v4_prefixes ~seed:8L ~count:10_000 in
  Array.iteri (fun i (a, len) -> Fib.V4.insert t a ~len (i land 3)) ps;
  let st = Fib.V4.stats t in
  Alcotest.(check int) "routes" 10_000 st.Fib.V4.routes;
  Alcotest.(check int) "next hops interned" 4 st.Fib.V4.next_hops;
  if st.Fib.V4.lookup_bytes <= empty then
    Alcotest.fail "lookup structures did not grow with routes";
  Alcotest.(check int) "memory_bytes = total"
    st.Fib.V4.total_bytes (Fib.V4.memory_bytes t)

let () =
  Alcotest.run "fib"
    [
      ( "v4",
        [
          Alcotest.test_case "basic lpm" `Quick test_v4_basic;
          Alcotest.test_case "host + spill routes" `Quick test_v4_host_and_spill;
          Alcotest.test_case "withdraw re-covers" `Quick test_v4_withdraw_recovers;
          Alcotest.test_case "replacement" `Quick test_v4_replace;
          Alcotest.test_case "memory accounting" `Quick test_v4_memory_accounting;
          QCheck_alcotest.to_alcotest prop_v4_oracle;
          QCheck_alcotest.to_alcotest prop_v4_oracle_with_removals;
        ] );
      ( "v6",
        [
          Alcotest.test_case "basic lpm" `Quick test_v6_basic;
          Alcotest.test_case "off-stride lengths" `Quick test_v6_off_stride_lengths;
          QCheck_alcotest.to_alcotest prop_v6_oracle;
          QCheck_alcotest.to_alcotest prop_v6_oracle_with_removals;
        ] );
      ( "update-under-traffic",
        [
          Alcotest.test_case "deterministic and oracle-equal" `Quick
            test_update_under_traffic_determinism;
        ] );
      ( "generators",
        [
          Alcotest.test_case "v4 prefix distribution" `Quick test_v4_prefixes_shape;
          Alcotest.test_case "traffic hits the table" `Quick
            test_v4_traffic_matches_table;
          Alcotest.test_case "fat-tree" `Quick test_fat_tree;
          Alcotest.test_case "b4-style wan" `Quick test_wan;
        ] );
    ]
