(* Soak test: a randomly generated multi-router DIP network carrying
   mixed traffic from every realized protocol, with conservation and
   determinism checks. This is the "does the whole system hold
   together at scale" test rather than a behaviour-specific one. *)

open Dip_core
module Sim = Dip_netsim.Sim
module Topology = Dip_netsim.Topology
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string

(* Build a random connected network of DIP routers; node 0 hosts the
   destination prefix, content and OPT destination role. Returns the
   counters after running a mixed workload. *)
let run_network ~seed ~nodes ~packets =
  let topo = Topology.random ~seed ~nodes ~degree:3 in
  let sim = Sim.create () in
  let name = Name.of_string "/soak/content" in
  let secret = Dip_opt.Drkey.secret_of_string "soak-router-sec!" in
  let envs =
    Array.init nodes (fun i ->
        let env = Env.create ~cache_capacity:16 ~name:(Printf.sprintf "n%d" i) () in
        Env.set_opt_identity env ~secret ~hop:1;
        Env.set_telemetry_identity env ~node_id:i ~queue_depth:(fun () -> 0);
        env)
  in
  (* Shortest-path routes toward node 0 for the IP prefix and the
     content name; node 0 delivers locally. *)
  Array.iteri
    (fun i env ->
      if i = 0 then begin
        env.Env.local_v4 <- Some (v4 "10.0.0.1");
        Dip_tables.Name_fib.insert env.Env.fib name 255
        (* port 255 is unwired: interests reaching node 0 terminate
           there via the cache/producer logic below *)
      end
      else
        match Topology.next_hop topo ~src:i ~dst:0 with
        | Some nh ->
            let port = Topology.port_of topo i nh in
            Dip_ip.Ipv4.add_route env.Env.v4_routes
              (Ipaddr.Prefix.of_string "10.0.0.0/8") port;
            Dip_tables.Name_fib.insert env.Env.fib name port
        | None -> ())
    envs;
  (* Node 0 answers interests directly (producer-at-router). *)
  Env.cache_insert envs.(0) (Name.hash32 name) "soak body";
  let ids =
    (* Every router statically verifies each packet before running it
       (Dip_analysis): the mixed workload must never trip the
       pre-check. *)
    Topology.instantiate topo sim
      ~name:(Printf.sprintf "n%d")
      ~handler:(fun i -> Dip_analysis.handler ~verify:true ~registry envs.(i))
  in
  (* Mixed workload injected at random non-zero nodes. *)
  let g = Dip_stdext.Prng.create (Int64.add seed 1L) in
  for k = 0 to packets - 1 do
    let src_node = 1 + Dip_stdext.Prng.int g (nodes - 1) in
    let pkt =
      match k mod 3 with
      | 0 ->
          Realize.ipv4 ~src:(v4 "192.0.2.9") ~dst:(v4 "10.0.0.1")
            ~payload:(Printf.sprintf "ip-%d" k) ()
      | 1 -> Realize.ndn_interest ~name ~payload:"" ()
      | _ ->
          Realize.ipv4_telemetry ~max_hops:8 ~src:(v4 "192.0.2.9")
            ~dst:(v4 "10.0.0.1")
            ~payload:(Printf.sprintf "tel-%d" k) ()
    in
    let report = Dip_analysis.analyze_packet ~registry pkt in
    if not (Dip_analysis.Report.clean report) then
      Alcotest.failf "generated packet %d fails lint: %s" k
        (Option.value ~default:"warning only"
           (Dip_analysis.Report.first_error report));
    Sim.inject sim ~at:(0.001 *. float_of_int k) ~node:ids.(src_node) ~port:99
      pkt
  done;
  Sim.run sim;
  (ids, Sim.counters sim, Sim.consumed sim)

let total_with counters suffix =
  List.fold_left
    (fun acc (k, v) ->
      if String.length k >= String.length suffix
         && String.sub k (String.length k - String.length suffix)
              (String.length suffix)
            = suffix
      then acc + v
      else acc)
    0
    (Dip_netsim.Stats.Counters.to_list counters)

let test_soak_conservation () =
  let packets = 300 in
  let _, counters, consumed = run_network ~seed:1234L ~nodes:30 ~packets in
  let delivered = List.length consumed in
  let dropped =
    List.fold_left
      (fun acc (k, v) ->
        let has_sub needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        if has_sub ".drop." k then acc + v else acc)
      0
      (Dip_netsim.Stats.Counters.to_list counters)
  in
  let quiet = total_with counters "dip.quiet" in
  (* Every injected packet ends somewhere: delivered, dropped, or
     silently aggregated. (Cache responses create extra packets that
     are themselves delivered or dropped, so >= rather than =.) *)
  Alcotest.(check bool)
    (Printf.sprintf "conservation (delivered=%d dropped=%d quiet=%d)" delivered
       dropped quiet)
    true
    (delivered + dropped + quiet >= packets);
  (* The destination actually received IP traffic. *)
  Alcotest.(check bool) "node 0 delivered traffic" true
    (Dip_netsim.Stats.Counters.get counters "n0.consumed" > 0);
  (* Nothing crashed, no packet vanished without an accounting entry:
     rx events at least cover the injections. *)
  Alcotest.(check bool) "rx at least injections" true
    (total_with counters ".rx" >= packets)

let test_soak_deterministic () =
  let snapshot () =
    let _, counters, consumed = run_network ~seed:77L ~nodes:20 ~packets:150 in
    (Dip_netsim.Stats.Counters.to_list counters, List.length consumed)
  in
  Alcotest.(check bool) "identical reruns" true (snapshot () = snapshot ())

let test_soak_seeds_vary () =
  (* Different seeds produce different topologies/workloads but the
     system stays total. *)
  List.iter
    (fun seed ->
      let _, counters, _ = run_network ~seed ~nodes:25 ~packets:100 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld processed traffic" seed)
        true
        (total_with counters ".rx" > 0))
    [ 2L; 3L; 5L; 8L; 13L ]

let () =
  Alcotest.run "soak"
    [
      ( "random-networks",
        [
          Alcotest.test_case "conservation" `Quick test_soak_conservation;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "seed sweep" `Quick test_soak_seeds_vary;
        ] );
    ]
