(* Tests for the in-band telemetry region (F_tel, key 14): wire-level
   round-trips, the two overflow conditions (region capacity and the
   7-bit count clamp), and the size/capacity edge cases. The
   engine-level behaviour (records collected along a path, overflow
   never blocks forwarding) is covered in test_netfence.ml. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf

let r ?(node_id = 1) ?(timestamp = 0l) ?(queue_depth = 0) () =
  { Telemetry.node_id; timestamp; queue_depth }

let mk max_hops =
  let region_bytes = Telemetry.region_size ~max_hops in
  let buf = Bitbuf.create region_bytes in
  Telemetry.init buf ~base:0;
  (buf, region_bytes)

(* --- round-trip --- *)

let test_round_trip () =
  let buf, region_bytes = mk 4 in
  let records =
    [
      r ~node_id:1 ~timestamp:17l ~queue_depth:0 ();
      r ~node_id:0xFFFF ~timestamp:Int32.max_int ~queue_depth:0xFFFF ();
      r ~node_id:7 ~timestamp:(-1l) ~queue_depth:42 ();
    ]
  in
  List.iter
    (fun rc ->
      Alcotest.(check bool)
        "append" true
        (Telemetry.append buf ~base:0 ~region_bytes rc))
    records;
  let got, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check bool) "no overflow" false overflow;
  Alcotest.(check int) "count" 3 (List.length got);
  List.iter2
    (fun want have ->
      Alcotest.(check int) "node_id" want.Telemetry.node_id have.Telemetry.node_id;
      Alcotest.(check int32) "timestamp" want.Telemetry.timestamp
        have.Telemetry.timestamp;
      Alcotest.(check int) "queue_depth" want.Telemetry.queue_depth
        have.Telemetry.queue_depth)
    records got

let test_round_trip_nonzero_base () =
  (* The region floats inside the FN locations; base must offset
     every access. *)
  let max_hops = 2 in
  let region_bytes = Telemetry.region_size ~max_hops in
  let base = 5 in
  let buf = Bitbuf.create (base + region_bytes + 3) in
  Telemetry.init buf ~base;
  Alcotest.(check bool)
    "append" true
    (Telemetry.append buf ~base ~region_bytes
       (r ~node_id:9 ~timestamp:100l ~queue_depth:3 ()));
  let got, overflow = Telemetry.read buf ~base ~region_bytes in
  Alcotest.(check bool) "no overflow" false overflow;
  (match got with
  | [ only ] ->
      Alcotest.(check int) "node_id" 9 only.Telemetry.node_id;
      Alcotest.(check int) "queue_depth" 3 only.Telemetry.queue_depth
  | l -> Alcotest.failf "expected one record, got %d" (List.length l));
  (* Nothing before the region was touched. *)
  for i = 0 to base - 1 do
    Alcotest.(check int) "prefix untouched" 0 (Bitbuf.get_uint8 buf i)
  done

let test_wide_values_masked () =
  (* node_id and queue_depth are 16-bit on the wire; wider values are
     truncated rather than corrupting neighbours. *)
  let buf, region_bytes = mk 2 in
  Alcotest.(check bool)
    "append" true
    (Telemetry.append buf ~base:0 ~region_bytes
       (r ~node_id:0x1_2345 ~queue_depth:0xF_00FF ()));
  match fst (Telemetry.read buf ~base:0 ~region_bytes) with
  | [ only ] ->
      Alcotest.(check int) "node_id masked" 0x2345 only.Telemetry.node_id;
      Alcotest.(check int) "queue_depth masked" 0x00FF only.Telemetry.queue_depth
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

(* --- overflow --- *)

let test_overflow_at_capacity () =
  let buf, region_bytes = mk 2 in
  Alcotest.(check bool) "1 fits" true
    (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:1 ()));
  Alcotest.(check bool) "2 fits" true
    (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:2 ()));
  Alcotest.(check bool) "3 refused" false
    (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:3 ()));
  let got, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check bool) "overflow flagged" true overflow;
  Alcotest.(check (list int)) "first two kept" [ 1; 2 ]
    (List.map (fun x -> x.Telemetry.node_id) got);
  (* Refusal is sticky: later appends keep failing, the kept records
     stay intact. *)
  Alcotest.(check bool) "still refused" false
    (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:4 ()));
  Alcotest.(check int) "still two records" 2
    (List.length (fst (Telemetry.read buf ~base:0 ~region_bytes)))

let test_overflow_at_count_clamp () =
  (* The hop count is 7 bits: even with room for more, the 128th
     record must be refused (a count of 128 would wrap to 0). *)
  let buf, region_bytes = mk 130 in
  for i = 1 to 127 do
    Alcotest.(check bool)
      (Printf.sprintf "record %d fits" i)
      true
      (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:i ()))
  done;
  Alcotest.(check bool) "128th refused" false
    (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:128 ()));
  let got, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check bool) "overflow flagged" true overflow;
  Alcotest.(check int) "127 records" 127 (List.length got);
  Alcotest.(check int) "last is node 127" 127
    (List.nth got 126).Telemetry.node_id

(* --- size / capacity edges --- *)

let test_region_size_edges () =
  Alcotest.(check int) "one hop" 9 (Telemetry.region_size ~max_hops:1);
  Alcotest.(check int) "eight hops" 65 (Telemetry.region_size ~max_hops:8);
  Alcotest.check_raises "zero hops rejected"
    (Invalid_argument "Telemetry.region_size") (fun () ->
      ignore (Telemetry.region_size ~max_hops:0));
  Alcotest.check_raises "negative hops rejected"
    (Invalid_argument "Telemetry.region_size") (fun () ->
      ignore (Telemetry.region_size ~max_hops:(-3)))

let test_capacity_edges () =
  (* The header byte always comes off the top; partial record slots
     don't count. *)
  Alcotest.(check int) "empty region" 0 (Telemetry.capacity ~region_bytes:1);
  Alcotest.(check int) "header only + 7" 0 (Telemetry.capacity ~region_bytes:8);
  Alcotest.(check int) "exactly one" 1 (Telemetry.capacity ~region_bytes:9);
  Alcotest.(check int) "one + partial" 1 (Telemetry.capacity ~region_bytes:16);
  Alcotest.(check int) "round-trips region_size" 5
    (Telemetry.capacity ~region_bytes:(Telemetry.region_size ~max_hops:5))

let test_append_into_header_only_region () =
  (* A region too small for any record overflows immediately. *)
  let buf = Bitbuf.create 1 in
  Telemetry.init buf ~base:0;
  Alcotest.(check bool) "refused" false
    (Telemetry.append buf ~base:0 ~region_bytes:1 (r ()));
  let got, overflow = Telemetry.read buf ~base:0 ~region_bytes:1 in
  Alcotest.(check int) "no records" 0 (List.length got);
  Alcotest.(check bool) "overflow flagged" true overflow

let test_read_clamps_forged_count () =
  (* A forged count larger than the region's capacity must not read
     past the region. *)
  let buf, region_bytes = mk 2 in
  ignore (Telemetry.append buf ~base:0 ~region_bytes (r ~node_id:1 ()));
  (* Forge count = 100 (fits in 7 bits, overflow bit clear). *)
  Bitbuf.set_uint8 buf 0 100;
  let got, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check int) "clamped to capacity" 2 (List.length got);
  Alcotest.(check bool) "no overflow bit" false overflow

let () =
  Alcotest.run "telemetry"
    [
      ( "round-trip",
        [
          Alcotest.test_case "append/read round-trip" `Quick test_round_trip;
          Alcotest.test_case "non-zero base" `Quick test_round_trip_nonzero_base;
          Alcotest.test_case "wide values masked" `Quick test_wide_values_masked;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "at region capacity" `Quick
            test_overflow_at_capacity;
          Alcotest.test_case "at the 127-count clamp" `Quick
            test_overflow_at_count_clamp;
        ] );
      ( "edges",
        [
          Alcotest.test_case "region_size" `Quick test_region_size_edges;
          Alcotest.test_case "capacity" `Quick test_capacity_edges;
          Alcotest.test_case "header-only region" `Quick
            test_append_into_header_only_region;
          Alcotest.test_case "forged count clamped" `Quick
            test_read_clamps_forged_count;
        ] );
    ]
