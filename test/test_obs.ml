(* Tests for the unified observability layer: the Dip_obs metrics
   registry and exporters, the engine span recorder (Dip_core.Obs),
   the simulator mirror, and the program-cache eviction counter. *)

open Dip_core
module Metrics = Dip_obs.Metrics
module Export = Dip_obs.Export
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string
let registry = Ops.default_registry ()

(* Snapshot readers for assertions. *)
let value m name =
  match List.find_opt (fun (n, _, _) -> n = name) (Metrics.snapshot m) with
  | Some (_, _, v) -> v
  | None -> Alcotest.failf "metric %S not in snapshot" name

let counted m name =
  match value m name with
  | Metrics.Counter_v v -> v
  | _ -> Alcotest.failf "%S is not a counter" name

let gauged m name =
  match value m name with
  | Metrics.Gauge_v v -> v
  | _ -> Alcotest.failf "%S is not a gauge" name

let hsnap m name =
  match value m name with
  | Metrics.Histogram_v h -> h
  | _ -> Alcotest.failf "%S is not a histogram" name

(* --- Metrics registry --- *)

let test_counter_gauge_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.Counter.get c);
  let g = Metrics.gauge m "depth" in
  Metrics.Gauge.set g 9;
  Metrics.Gauge.set g 2;
  Alcotest.(check int) "gauge keeps last" 2 (Metrics.Gauge.get g);
  Alcotest.(check int) "snapshot counter" 5 (counted m "requests");
  Alcotest.(check int) "snapshot gauge" 2 (gauged m "depth")

let test_same_name_shares_handle () =
  let m = Metrics.create () in
  let a = Metrics.counter m "shared" in
  let b = Metrics.counter m "shared" in
  Metrics.Counter.incr a;
  Metrics.Counter.incr b;
  Alcotest.(check int) "both increments visible" 2 (Metrics.Counter.get a)

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics.gauge: \"x\" is already a counter") (fun () ->
      ignore (Metrics.gauge m "x"));
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics.histogram: \"x\" is already a counter") (fun () ->
      ignore (Metrics.histogram m "x"))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter
    (Metrics.Histogram.observe h)
    [ 0.25; 1.0; 3.0; 1000.0; -5.0 (* clamps to 0 *) ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1004.25 (Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Metrics.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (1004.25 /. 5.0) (Metrics.Histogram.mean h);
  let counts = Metrics.Histogram.bucket_counts h in
  Alcotest.(check int) "bucket 0 (v < 1)" 2 counts.(0);
  Alcotest.(check int) "bucket 1 ([1,2))" 1 counts.(1);
  Alcotest.(check int) "bucket 2 ([2,4))" 1 counts.(2);
  Alcotest.(check int) "bucket 10 ([512,1024))" 1 counts.(10)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "q" in
  Alcotest.(check (float 0.0)) "empty -> 0" 0.0 (Metrics.Histogram.quantile h 0.5);
  List.iter (Metrics.Histogram.observe h) [ 2.0; 2.0; 2.0; 1000.0 ];
  (* Estimates carry one-bucket (2x) resolution: the p50 of three 2s
     is reported as its bucket's upper bound. *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 4.0
    (Metrics.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 clamped to max" 1000.0
    (Metrics.Histogram.quantile h 1.0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.Histogram.quantile") (fun () ->
      ignore (Metrics.Histogram.quantile h 1.5))

(* --- exporters --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what out needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains ~needle out)

let sample_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter ~help:"packets seen" m "engine.packets" in
  Metrics.Counter.incr ~by:3 c;
  let g = Metrics.gauge m "q.depth" in
  Metrics.Gauge.set g 7;
  let h = Metrics.histogram m "lat.ns" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 3.0; 1000.0 ];
  m

let test_export_prometheus () =
  let out = Export.prometheus (sample_registry ()) in
  check_contains "prom" out "# TYPE engine_packets counter";
  check_contains "prom" out "# HELP engine_packets packets seen";
  check_contains "prom" out "engine_packets 3";
  check_contains "prom" out "# TYPE q_depth gauge";
  check_contains "prom" out "q_depth 7";
  check_contains "prom" out "# TYPE lat_ns histogram";
  (* Cumulative buckets: 0.5 <= 1, 3.0 <= 4, 1000 <= 1024. *)
  check_contains "prom" out "lat_ns_bucket{le=\"1\"} 1";
  check_contains "prom" out "lat_ns_bucket{le=\"4\"} 2";
  check_contains "prom" out "lat_ns_bucket{le=\"1024\"} 3";
  check_contains "prom" out "lat_ns_bucket{le=\"+Inf\"} 3";
  check_contains "prom" out "lat_ns_count 3";
  check_contains "prom" out "lat_ns_sum 1003.5"

let test_export_json_lines () =
  let out = Export.json_lines (sample_registry ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check int) "one line per metric" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object per line" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  check_contains "json" out "\"name\":\"engine.packets\"";
  check_contains "json" out "\"type\":\"counter\"";
  check_contains "json" out "\"value\":3";
  check_contains "json" out "\"name\":\"q.depth\"";
  check_contains "json" out "\"count\":3";
  check_contains "json" out "\"help\":\"packets seen\""

let test_export_table () =
  let out = Export.table (sample_registry ()) in
  check_contains "table" out "engine.packets";
  check_contains "table" out "q.depth";
  check_contains "table" out "lat.ns";
  check_contains "table" out "histogram";
  check_contains "table" out "n=3"

let test_sanitize () =
  Alcotest.(check string) "dots" "a_b_c" (Export.sanitize "a.b-c");
  Alcotest.(check string) "leading digit" "_9lives" (Export.sanitize "9lives");
  Alcotest.(check string) "kept" "ok_name:x" (Export.sanitize "ok_name:x")

(* --- the engine span recorder --- *)

let fwd_env () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv6.add_route env.Env.v6_routes
    (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  env

let ipv4_pkt () =
  Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3") ~payload:"x" ()

let test_engine_counts () =
  let m = Metrics.create () in
  let obs = Obs.create ~sample_every:1 m in
  let env = fwd_env () in
  for _ = 1 to 5 do
    match Engine.process ~obs ~registry env ~now:0.0 ~ingress:0 (ipv4_pkt ()) with
    | Engine.Forwarded _, _ -> ()
    | v, _ ->
        Alcotest.failf "unexpected verdict %s"
          (match v with Engine.Dropped r -> r | _ -> "?")
  done;
  Alcotest.(check int) "packets" 5 (counted m "engine.packets");
  Alcotest.(check int) "F_32_match runs" 5 (counted m "engine.op.F_32_match.run");
  Alcotest.(check int) "F_source runs" 5 (counted m "engine.op.F_source.run");
  Alcotest.(check int) "no F_FIB runs" 0 (counted m "engine.op.F_FIB.run");
  Alcotest.(check int) "forwarded verdicts" 5
    (counted m "engine.verdict.forwarded");
  Alcotest.(check int) "latency spans" 5 (hsnap m "engine.process_ns").Metrics.count;
  Alcotest.(check bool) "sampled nanos accumulated" true
    (counted m "engine.op.F_32_match.ns" > 0);
  (* The handle mirror of the program cache. *)
  Obs.publish_cache obs env.Env.prog_cache;
  Alcotest.(check int) "cache hits" 4 (gauged m "engine.progcache.hit");
  Alcotest.(check int) "cache misses" 1 (gauged m "engine.progcache.miss")

let test_engine_sampling () =
  (* sample_every:4 over 8 packets: every packet counted, packets 4
     and 8 span-timed. *)
  let m = Metrics.create () in
  let obs = Obs.create ~sample_every:4 m in
  let env = fwd_env () in
  for _ = 1 to 8 do
    ignore (Engine.process ~obs ~registry env ~now:0.0 ~ingress:0 (ipv4_pkt ()))
  done;
  Alcotest.(check int) "all packets counted" 8 (counted m "engine.packets");
  Alcotest.(check int) "all runs counted" 8 (counted m "engine.op.F_32_match.run");
  Alcotest.(check int) "two spans" 2 (hsnap m "engine.process_ns").Metrics.count

let test_engine_skips_and_unsupported () =
  let m = Metrics.create () in
  let obs = Obs.create ~sample_every:1 m in
  (* A router processing an OPT packet skips the host-tagged F_ver. *)
  let env = fwd_env () in
  Env.set_opt_identity env
    ~secret:(Dip_opt.Drkey.secret_of_string "obs-test-secret!")
    ~hop:1;
  let opt_pkt () =
    Realize.opt ~hops:1 ~session_id:7L ~timestamp:1l
      ~dest_key:(String.make 16 'd') ~payload:"x" ()
  in
  ignore (Engine.process ~obs ~registry env ~now:0.0 ~ingress:0 (opt_pkt ()));
  Alcotest.(check int) "F_ver tag-skipped" 1 (counted m "engine.op.F_ver.skip");
  Alcotest.(check int) "F_mac ran" 1 (counted m "engine.op.F_MAC.run");
  (* A registry without the mandatory F_parm yields Unsupported. *)
  let minimal = Registry.restrict registry [ Opkey.F_32_match; Opkey.F_source ] in
  (match
     Engine.process ~obs ~registry:minimal env ~now:0.0 ~ingress:0 (opt_pkt ())
   with
  | Engine.Unsupported k, _ ->
      Alcotest.(check string) "key" "F_parm" (Opkey.name k)
  | _ -> Alcotest.fail "expected Unsupported");
  Alcotest.(check int) "unsupported verdict" 1
    (counted m "engine.verdict.unsupported")

let test_engine_drop_counted () =
  let m = Metrics.create () in
  let obs = Obs.create ~sample_every:1 m in
  let env = Env.create ~name:"r" () in
  (* No route installed: F_32_match aborts the run. *)
  (match
     Engine.process ~obs ~registry env ~now:0.0 ~ingress:0 (ipv4_pkt ())
   with
  | Engine.Dropped "no-route", _ -> ()
  | _ -> Alcotest.fail "expected drop");
  Alcotest.(check int) "dropped verdict" 1 (counted m "engine.verdict.dropped");
  Alcotest.(check int) "abort charged to the FN" 1
    (counted m "engine.op.F_32_match.error");
  Alcotest.(check int) "span still recorded" 1
    (hsnap m "engine.process_ns").Metrics.count

let test_obs_create_validates () =
  Alcotest.check_raises "sample_every >= 1"
    (Invalid_argument "Obs.create: sample_every must be >= 1") (fun () ->
      ignore (Obs.create ~sample_every:0 (Metrics.create ())))

(* --- simulator mirror --- *)

let test_sim_attach_metrics () =
  let m = Metrics.create () in
  let sim = Dip_netsim.Sim.create () in
  Dip_netsim.Sim.attach_metrics sim m;
  let fwd = Dip_netsim.Sim.add_node sim ~name:"fwd" (fun _ ~now:_ ~ingress:_ p ->
      [ Dip_netsim.Sim.Forward (1, p) ]) in
  let sink = Dip_netsim.Sim.add_node sim ~name:"sink" (fun _ ~now:_ ~ingress:_ _ ->
      [ Dip_netsim.Sim.Consume ]) in
  let dropper = Dip_netsim.Sim.add_node sim ~name:"drop" (fun _ ~now:_ ~ingress:_ _ ->
      [ Dip_netsim.Sim.Drop "policy" ]) in
  Dip_netsim.Sim.connect sim (fwd, 1) (sink, 0);
  let pkt () = Dip_bitbuf.Bitbuf.create 8 in
  Dip_netsim.Sim.inject sim ~at:0.0 ~node:fwd ~port:0 (pkt ());
  Dip_netsim.Sim.inject sim ~at:0.0 ~node:dropper ~port:0 (pkt ());
  Dip_netsim.Sim.run sim;
  Alcotest.(check int) "tx" 1 (counted m "sim.tx");
  Alcotest.(check int) "rx" 3 (counted m "sim.rx");
  Alcotest.(check int) "consumed" 1 (counted m "sim.consumed");
  Alcotest.(check int) "drop reason" 1 (counted m "sim.drop.policy");
  Alcotest.(check int) "queue-depth samples" 1
    (hsnap m "sim.link.queue_depth").Metrics.count;
  Alcotest.(check bool) "per-link gauge present" true
    (List.exists
       (fun (n, _, _) -> n = "sim.link.fwd.p1.queue_depth")
       (Metrics.snapshot m))

(* --- program-cache evictions --- *)

let test_progcache_evictions () =
  let env = Env.create ~prog_cache_capacity:1 ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv6.add_route env.Env.v6_routes
    (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  let p4 () = ipv4_pkt () in
  let p6 () =
    Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::42") ~payload:"x" ()
  in
  let run pkt = ignore (Engine.process ~registry env ~now:0.0 ~ingress:0 pkt) in
  run (p4 ());
  Alcotest.(check int) "first insert evicts nothing" 0
    (Progcache.evictions env.Env.prog_cache);
  run (p6 ());
  Alcotest.(check int) "second program evicts the first" 1
    (Progcache.evictions env.Env.prog_cache);
  run (p4 ());
  Alcotest.(check int) "thrash keeps evicting" 2
    (Progcache.evictions env.Env.prog_cache);
  Env.publish_cache_stats env;
  Alcotest.(check int) "published to node counters" 2
    (Dip_netsim.Stats.Counters.get env.Env.counters "progcache.evict");
  (* A repeat of the cached program is a hit, not an eviction. *)
  run (p4 ());
  Alcotest.(check int) "hit does not evict" 2
    (Progcache.evictions env.Env.prog_cache)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter + gauge" `Quick test_counter_gauge_basics;
          Alcotest.test_case "same name shares handle" `Quick
            test_same_name_shares_handle;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus" `Quick test_export_prometheus;
          Alcotest.test_case "json lines" `Quick test_export_json_lines;
          Alcotest.test_case "table" `Quick test_export_table;
          Alcotest.test_case "sanitize" `Quick test_sanitize;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-opkey counts" `Quick test_engine_counts;
          Alcotest.test_case "sampling" `Quick test_engine_sampling;
          Alcotest.test_case "skips + unsupported" `Quick
            test_engine_skips_and_unsupported;
          Alcotest.test_case "drops counted" `Quick test_engine_drop_counted;
          Alcotest.test_case "create validates" `Quick test_obs_create_validates;
        ] );
      ( "sim",
        [ Alcotest.test_case "attach_metrics" `Quick test_sim_attach_metrics ] );
      ( "progcache",
        [ Alcotest.test_case "evictions" `Quick test_progcache_evictions ] );
    ]
