(* Tests for the EPIC extension (F_hvf, key 15): the header region,
   the check-and-update protocol, and the "every packet is checked"
   property over the DIP engine — routers, not destinations, drop
   invalid packets. *)

open Dip_core
module Epic = Dip_epic
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string
let g = Dip_stdext.Prng.create 2025L
let secrets n = List.init n (fun _ -> Dip_opt.Drkey.secret_gen g)

let hop_keys secrets ~src ~timestamp =
  List.map (fun s -> Epic.Protocol.derive_key s ~src ~timestamp) secrets

(* --- header --- *)

let test_header_sizes () =
  Alcotest.(check int) "1 hop" 28 (Epic.Header.size_bytes ~hops:1);
  Alcotest.(check int) "per hop" 4
    (Epic.Header.size_bytes ~hops:2 - Epic.Header.size_bytes ~hops:1)

let test_header_accessors () =
  let buf = Bitbuf.create (Epic.Header.size_bytes ~hops:2) in
  Epic.Header.set_src buf ~base:0 7l;
  Epic.Header.set_timestamp buf ~base:0 99l;
  Epic.Header.set_payload_hash buf ~base:0 (String.make 16 'H');
  Epic.Header.set_hvf buf ~base:0 2 0xCAFEBABEl;
  Alcotest.(check int32) "src" 7l (Epic.Header.get_src buf ~base:0);
  Alcotest.(check int32) "ts" 99l (Epic.Header.get_timestamp buf ~base:0);
  Alcotest.(check string) "hash" (String.make 16 'H')
    (Epic.Header.get_payload_hash buf ~base:0);
  Alcotest.(check int32) "hvf2" 0xCAFEBABEl (Epic.Header.get_hvf buf ~base:0 2);
  Alcotest.(check int32) "hvf1 untouched" 0l (Epic.Header.get_hvf buf ~base:0 1)

(* --- protocol --- *)

let setup ?(hops = 3) ?(payload = "epic data") () =
  let path = secrets hops in
  let src = 0x5001l and timestamp = 424242l in
  let keys = hop_keys path ~src ~timestamp in
  let buf = Bitbuf.create (Epic.Header.size_bytes ~hops) in
  Epic.Protocol.source_init buf ~base:0 ~src ~timestamp ~hop_keys:keys ~payload;
  (buf, keys)

let test_epic_valid_chain () =
  let payload = "epic data" in
  let buf, keys = setup ~payload () in
  List.iteri
    (fun i key ->
      match Epic.Protocol.router_check buf ~base:0 ~hop:(i + 1) ~key with
      | Epic.Protocol.Forwarded -> ()
      | Epic.Protocol.Rejected -> Alcotest.failf "hop %d rejected valid HVF" (i + 1))
    keys;
  match Epic.Protocol.verify_delivery buf ~base:0 ~hop_keys:keys ~payload:(Some payload) with
  | Ok () -> ()
  | Error i -> Alcotest.failf "destination rejected hop %d" i

let test_epic_router_rejects_forged () =
  let buf, keys = setup () in
  (* Corrupt hop 2's HVF: that router must reject the packet. *)
  Epic.Header.set_hvf buf ~base:0 2 0l;
  (match Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key:(List.nth keys 0) with
  | Epic.Protocol.Forwarded -> ()
  | Epic.Protocol.Rejected -> Alcotest.fail "hop 1 should still pass");
  match Epic.Protocol.router_check buf ~base:0 ~hop:2 ~key:(List.nth keys 1) with
  | Epic.Protocol.Rejected -> ()
  | Epic.Protocol.Forwarded -> Alcotest.fail "forged HVF must be rejected at the router"

let test_epic_replay_rejected () =
  (* After a router verifies-and-updates, replaying the packet
     through the same router fails: the HVF is no longer in origin
     form. *)
  let buf, keys = setup ~hops:1 () in
  let key = List.hd keys in
  Alcotest.(check bool) "first pass" true
    (Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key = Epic.Protocol.Forwarded);
  Alcotest.(check bool) "replay rejected" true
    (Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key = Epic.Protocol.Rejected)

let test_epic_delivery_detects_unchecked_hop () =
  (* If a router was bypassed, its HVF stays in origin form and the
     destination notices. *)
  let buf, keys = setup () in
  ignore (Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key:(List.nth keys 0));
  (* hop 2 skipped *)
  ignore (Epic.Protocol.router_check buf ~base:0 ~hop:3 ~key:(List.nth keys 2));
  match Epic.Protocol.verify_delivery buf ~base:0 ~hop_keys:keys ~payload:None with
  | Error 2 -> ()
  | Error i -> Alcotest.failf "wrong hop reported: %d" i
  | Ok () -> Alcotest.fail "bypassed hop must be detected"

let test_epic_payload_binding () =
  let buf, keys = setup ~hops:1 ~payload:"genuine" () in
  ignore (Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key:(List.hd keys));
  match Epic.Protocol.verify_delivery buf ~base:0 ~hop_keys:keys ~payload:(Some "other") with
  | Error 0 -> ()
  | _ -> Alcotest.fail "payload mismatch must be reported as hop 0"

let test_epic_key_depends_on_src_and_ts () =
  let s = Dip_opt.Drkey.secret_of_string "epic-router-sec!" in
  let a = Epic.Protocol.derive_key s ~src:1l ~timestamp:1l in
  Alcotest.(check bool) "src matters" true
    (a <> Epic.Protocol.derive_key s ~src:2l ~timestamp:1l);
  Alcotest.(check bool) "ts matters" true
    (a <> Epic.Protocol.derive_key s ~src:1l ~timestamp:2l)

(* --- DIP engine integration --- *)

let epic_router ~secret ~hop =
  let env = Env.create ~name:(Printf.sprintf "r%d" hop) () in
  Env.set_opt_identity env ~secret ~hop;
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  env

let test_engine_epic_forwards_valid () =
  let hops = 2 in
  let path = secrets hops in
  let src_id = 0xAA55l and timestamp = 777l in
  let keys = hop_keys path ~src:src_id ~timestamp in
  let pkt =
    Realize.epic ~hops ~src_id ~timestamp ~hop_keys:keys ~src:(v4 "192.0.2.1")
      ~dst:(v4 "10.0.0.1") ~payload:"pp" ()
  in
  List.iteri
    (fun i secret ->
      let env = epic_router ~secret ~hop:(i + 1) in
      match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
      | Engine.Forwarded [ 1 ], _ -> ()
      | Engine.Dropped r, _ -> Alcotest.failf "hop %d dropped: %s" (i + 1) r
      | _ -> Alcotest.fail "expected forward")
    path;
  (* Destination validation. *)
  let view = Result.get_ok (Packet.parse pkt) in
  match
    Epic.Protocol.verify_delivery pkt ~base:view.Packet.loc_base ~hop_keys:keys
      ~payload:(Some "pp")
  with
  | Ok () -> ()
  | Error i -> Alcotest.failf "delivery check failed at hop %d" i

let test_engine_epic_drops_forged_at_router () =
  (* The EPIC property: an attacker without the hop keys cannot get a
     packet past the *first* router — contrast with OPT where the bad
     packet travels to the destination before being rejected. *)
  let hops = 2 in
  let path = secrets hops in
  let forged_keys = List.init hops (fun _ -> String.make 16 'z') in
  let pkt =
    Realize.epic ~hops ~src_id:1l ~timestamp:1l ~hop_keys:forged_keys
      ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"evil" ()
  in
  let env = epic_router ~secret:(List.hd path) ~hop:1 in
  match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "hvf-rejected", _ -> ()
  | _ -> Alcotest.fail "forged packet must die at the first router"

let test_engine_epic_mandatory () =
  (* EPIC needs every on-path AS: a router without F_hvf must return
     the FN-unsupported notification rather than skip the check. *)
  let limited = Registry.restrict registry [ Opkey.F_32_match; Opkey.F_source ] in
  let env = Env.create ~name:"legacy" () in
  let pkt =
    Realize.epic ~hops:1 ~src_id:1l ~timestamp:1l
      ~hop_keys:[ String.make 16 'k' ]
      ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()
  in
  match Engine.process ~registry:limited env ~now:0.0 ~ingress:0 pkt with
  | Engine.Unsupported Opkey.F_hvf, _ -> ()
  | _ -> Alcotest.fail "F_hvf must be all-path mandatory"

let prop_epic_corruption_rejected =
  QCheck.Test.make
    ~name:"epic: corrupting the origin region rejects at some router" ~count:150
    QCheck.(int_range 0 23)
    (fun pos ->
      let hops = 2 in
      let path = secrets hops in
      let keys = hop_keys path ~src:9l ~timestamp:9l in
      let buf = Bitbuf.create (Epic.Header.size_bytes ~hops) in
      Epic.Protocol.source_init buf ~base:0 ~src:9l ~timestamp:9l ~hop_keys:keys
        ~payload:"p";
      (* Flip a byte of the origin region (src/ts/hash). *)
      Bitbuf.set_uint8 buf pos (Bitbuf.get_uint8 buf pos lxor 0x40);
      (* With the origin changed, the *carried* HVFs no longer match
         what routers derive — note routers re-derive the key from the
         (corrupted) src/ts, so either hop must reject. *)
      let k1 =
        Epic.Protocol.derive_key (List.hd path)
          ~src:(Epic.Header.get_src buf ~base:0)
          ~timestamp:(Epic.Header.get_timestamp buf ~base:0)
      in
      Epic.Protocol.router_check buf ~base:0 ~hop:1 ~key:k1
      = Epic.Protocol.Rejected)

let () =
  Alcotest.run "epic"
    [
      ( "header",
        [
          Alcotest.test_case "sizes" `Quick test_header_sizes;
          Alcotest.test_case "accessors" `Quick test_header_accessors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "valid chain" `Quick test_epic_valid_chain;
          Alcotest.test_case "router rejects forged" `Quick test_epic_router_rejects_forged;
          Alcotest.test_case "replay rejected" `Quick test_epic_replay_rejected;
          Alcotest.test_case "unchecked hop detected" `Quick
            test_epic_delivery_detects_unchecked_hop;
          Alcotest.test_case "payload binding" `Quick test_epic_payload_binding;
          Alcotest.test_case "key derivation inputs" `Quick test_epic_key_depends_on_src_and_ts;
          QCheck_alcotest.to_alcotest prop_epic_corruption_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "forwards valid" `Quick test_engine_epic_forwards_valid;
          Alcotest.test_case "drops forged at router" `Quick
            test_engine_epic_drops_forged_at_router;
          Alcotest.test_case "all-path mandatory" `Quick test_engine_epic_mandatory;
        ] );
    ]
