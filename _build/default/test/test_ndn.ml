(* Tests for the native NDN substrate: packet codec and the
   FIB/PIT/CS forwarder of paper §3. *)

open Dip_ndn
module Bitbuf = Dip_bitbuf.Bitbuf
module Name = Dip_tables.Name
module Sim = Dip_netsim.Sim

let n = Name.of_string

let test_packet_interest_roundtrip () =
  let p = Packet.interest ~nonce:42l (n "/video/intro.mp4") in
  match Packet.decode (Packet.encode p) with
  | Ok (Packet.Interest { name; nonce }) ->
      Alcotest.(check string) "name" "/video/intro.mp4" (Name.to_string name);
      Alcotest.(check int32) "nonce" 42l nonce
  | _ -> Alcotest.fail "roundtrip failed"

let test_packet_data_roundtrip () =
  let p = Packet.data (n "/a/b") "the content bytes" in
  match Packet.decode (Packet.encode p) with
  | Ok (Packet.Data { name; content }) ->
      Alcotest.(check string) "name" "/a/b" (Name.to_string name);
      Alcotest.(check string) "content" "the content bytes" content
  | _ -> Alcotest.fail "roundtrip failed"

let test_packet_decode_rejects () =
  let bad s = Packet.decode (Bitbuf.of_string s) in
  Alcotest.(check bool) "empty" true (bad "" = Error "empty packet");
  Alcotest.(check bool) "unknown type" true
    (match bad "\x07rest" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "truncated interest" true
    (match bad "\x01\x00\x00" with Error _ -> true | Ok _ -> false)

let test_packet_interest_padding_tolerated () =
  (* Interests padded to a wire size (Figure 2 workloads) must still
     decode. *)
  let p = Packet.encode (Packet.interest (n "/f")) in
  let padded = Dip_netsim.Workload.pad_to p 128 in
  match Packet.decode padded with
  | Ok (Packet.Interest { name; _ }) ->
      Alcotest.(check string) "name survives padding" "/f" (Name.to_string name)
  | _ -> Alcotest.fail "padded interest must decode"

let fwd ?cache_capacity () =
  let f = Forwarder.create ?cache_capacity () in
  Dip_tables.Name_fib.insert (Forwarder.fib f) (n "/video") 7;
  f

let test_forwarder_interest_fib () =
  let f = fwd () in
  let pkt = Packet.encode (Packet.interest (n "/video/intro.mp4")) in
  match Forwarder.process f ~now:0.0 ~ingress:1 pkt with
  | Forwarder.Forward [ 7 ] -> ()
  | _ -> Alcotest.fail "expected FIB forward to port 7"

let test_forwarder_interest_aggregation () =
  let f = fwd () in
  let pkt = Packet.encode (Packet.interest (n "/video/x")) in
  (match Forwarder.process f ~now:0.0 ~ingress:1 pkt with
  | Forwarder.Forward _ -> ()
  | _ -> Alcotest.fail "first interest forwards");
  match Forwarder.process f ~now:0.1 ~ingress:2 pkt with
  | Forwarder.Silent -> ()
  | _ -> Alcotest.fail "second interest must aggregate"

let test_forwarder_interest_no_route () =
  let f = fwd () in
  let pkt = Packet.encode (Packet.interest (n "/audio/x")) in
  match Forwarder.process f ~now:0.0 ~ingress:1 pkt with
  | Forwarder.Discard "no-fib-entry" -> ()
  | _ -> Alcotest.fail "expected discard"

let test_forwarder_data_follows_pit () =
  let f = fwd () in
  let name = n "/video/y" in
  let interest = Packet.encode (Packet.interest name) in
  ignore (Forwarder.process f ~now:0.0 ~ingress:1 interest);
  ignore (Forwarder.process f ~now:0.0 ~ingress:2 interest);
  let data = Packet.encode (Packet.data name "bytes") in
  (match Forwarder.process f ~now:0.5 ~ingress:7 data with
  | Forwarder.Forward ports ->
      Alcotest.(check (list int)) "both requesters" [ 1; 2 ]
        (List.sort compare ports)
  | _ -> Alcotest.fail "data must follow PIT");
  (* PIT entry consumed: replayed data is unsolicited. *)
  match Forwarder.process f ~now:0.6 ~ingress:7 data with
  | Forwarder.Discard "unsolicited-data" -> ()
  | _ -> Alcotest.fail "replayed data must be discarded"

let test_forwarder_pit_expiry () =
  let f = Forwarder.create ~interest_lifetime:1.0 () in
  Dip_tables.Name_fib.insert (Forwarder.fib f) (n "/video") 7;
  let name = n "/video/z" in
  ignore (Forwarder.process f ~now:0.0 ~ingress:1
            (Packet.encode (Packet.interest name)));
  match
    Forwarder.process f ~now:5.0 ~ingress:7
      (Packet.encode (Packet.data name "late"))
  with
  | Forwarder.Discard "unsolicited-data" -> ()
  | _ -> Alcotest.fail "expired PIT entry must not forward data"

let test_forwarder_cache_hit () =
  let f = fwd ~cache_capacity:8 () in
  Alcotest.(check bool) "cache on" true (Forwarder.cache_enabled f);
  let name = n "/video/cached" in
  ignore (Forwarder.process f ~now:0.0 ~ingress:1
            (Packet.encode (Packet.interest name)));
  ignore (Forwarder.process f ~now:0.1 ~ingress:7
            (Packet.encode (Packet.data name "body")));
  (* Second interest is answered from the content store. *)
  match Forwarder.process f ~now:0.2 ~ingress:3
          (Packet.encode (Packet.interest name))
  with
  | Forwarder.Reply pkt -> (
      match Packet.decode pkt with
      | Ok (Packet.Data { content; _ }) ->
          Alcotest.(check string) "cached body" "body" content
      | _ -> Alcotest.fail "reply must be data")
  | _ -> Alcotest.fail "expected a content-store reply"

let test_forwarder_no_cache_by_default () =
  let f = fwd () in
  Alcotest.(check bool) "prototype default: no cache (4.1 fn.2)" false
    (Forwarder.cache_enabled f)

(* End-to-end: consumer -- router -- producer over the simulator. *)
let test_ndn_end_to_end () =
  let sim = Sim.create () in
  let consumer_got = ref None in
  let consumer _sim ~now:_ ~ingress:_ pkt =
    match Packet.decode pkt with
    | Ok (Packet.Data { name; content }) ->
        consumer_got := Some (Name.to_string name, content);
        [ Sim.Consume ]
    | _ -> [ Sim.Drop "unexpected" ]
  in
  let router = Forwarder.create () in
  let producer =
    Forwarder.producer_handler ~prefix:(n "/video")
      ~content:(fun name -> Some ("content-of:" ^ Name.to_string name))
  in
  let c = Sim.add_node sim ~name:"consumer" consumer in
  let r = Sim.add_node sim ~name:"router" (Forwarder.handler router) in
  let p = Sim.add_node sim ~name:"producer" producer in
  Sim.connect sim (c, 0) (r, 0);
  Sim.connect sim (r, 1) (p, 0);
  Dip_tables.Name_fib.insert (Forwarder.fib router) (n "/video") 1;
  (* The consumer sends an interest towards the router. *)
  Sim.inject sim ~at:0.0 ~node:r ~port:0
    (Packet.encode (Packet.interest (n "/video/intro.mp4")));
  Sim.run sim;
  (match !consumer_got with
  | Some (name, content) ->
      Alcotest.(check string) "name" "/video/intro.mp4" name;
      Alcotest.(check string) "content" "content-of:/video/intro.mp4" content
  | None -> Alcotest.fail "consumer never received data");
  ignore (c, p)

(* Model-based property: drive the forwarder with a random
   interleaving of interests and data over a small name space and
   check every verdict against a reference PIT model (a map from
   name to the set of ports with a pending interest). *)
let prop_forwarder_matches_pit_model =
  let module SM = Map.Make (String) in
  QCheck.Test.make ~name:"ndn: forwarder agrees with a reference PIT model"
    ~count:150
    QCheck.(small_list (pair bool (pair (int_range 0 3) (int_range 0 4))))
    (fun ops ->
      (* The model does not track PIT expiry, so give entries a
         lifetime far beyond the simulated steps. *)
      let f = Forwarder.create ~interest_lifetime:1e9 () in
      Dip_tables.Name_fib.insert (Forwarder.fib f) (n "/m") 9;
      let model = ref SM.empty in
      let ok = ref true in
      List.iteri
        (fun step (is_interest, (name_ix, port)) ->
          let name = n (Printf.sprintf "/m/item%d" name_ix) in
          let key = Name.to_string name in
          let now = float_of_int step in
          if is_interest then begin
            let pkt = Packet.encode (Packet.interest name) in
            let pending = Option.value ~default:[] (SM.find_opt key !model) in
            match Forwarder.process f ~now ~ingress:port pkt with
            | Forwarder.Forward [ 9 ] ->
                if pending <> [] then ok := false
                else model := SM.add key [ port ] !model
            | Forwarder.Silent ->
                if pending = [] then ok := false
                else if not (List.mem port pending) then
                  model := SM.add key (port :: pending) !model
            | _ -> ok := false
          end
          else begin
            let pkt = Packet.encode (Packet.data name "b") in
            let pending = Option.value ~default:[] (SM.find_opt key !model) in
            match Forwarder.process f ~now ~ingress:9 pkt with
            | Forwarder.Forward ports ->
                if List.sort compare ports <> List.sort compare pending
                   || pending = []
                then ok := false
                else model := SM.remove key !model
            | Forwarder.Discard "unsolicited-data" ->
                if pending <> [] then ok := false
            | _ -> ok := false
          end)
        ops;
      !ok)

let prop_packet_roundtrip =
  QCheck.Test.make ~name:"ndn: packet roundtrip" ~count:300
    QCheck.(
      pair bool
        (pair
           (small_list
              (string_gen_of_size (Gen.int_range 1 6) (Gen.char_range 'a' 'z')))
           small_string))
    (fun (is_interest, (comps, content)) ->
      QCheck.assume (comps <> [] && List.length comps < 200);
      let name = Name.of_components comps in
      let p =
        if is_interest then Packet.interest name else Packet.data name content
      in
      match Packet.decode (Packet.encode p) with
      | Ok p' -> p = p'
      | Error _ -> false)

let () =
  Alcotest.run "ndn"
    [
      ( "packet",
        [
          Alcotest.test_case "interest roundtrip" `Quick test_packet_interest_roundtrip;
          Alcotest.test_case "data roundtrip" `Quick test_packet_data_roundtrip;
          Alcotest.test_case "decode rejects" `Quick test_packet_decode_rejects;
          Alcotest.test_case "padding tolerated" `Quick test_packet_interest_padding_tolerated;
          QCheck_alcotest.to_alcotest prop_packet_roundtrip;
          QCheck_alcotest.to_alcotest prop_forwarder_matches_pit_model;
        ] );
      ( "forwarder",
        [
          Alcotest.test_case "interest via FIB" `Quick test_forwarder_interest_fib;
          Alcotest.test_case "interest aggregation" `Quick test_forwarder_interest_aggregation;
          Alcotest.test_case "interest no route" `Quick test_forwarder_interest_no_route;
          Alcotest.test_case "data follows PIT" `Quick test_forwarder_data_follows_pit;
          Alcotest.test_case "PIT expiry" `Quick test_forwarder_pit_expiry;
          Alcotest.test_case "cache hit" `Quick test_forwarder_cache_hit;
          Alcotest.test_case "no cache by default" `Quick test_forwarder_no_cache_by_default;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "consumer/router/producer" `Quick test_ndn_end_to_end ] );
    ]
