(* Tests for the PISA model: the cost estimator and the unrolled
   (compiled) dispatch of §4.1. *)

open Dip_pisa
open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let reg = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string
let cfg = Cost.tofino_like

let test_cost_ip_single_pass () =
  let e =
    Cost.estimate cfg ~header_bytes:26
      [ Opkey.F_32_match; Opkey.F_source ]
  in
  Alcotest.(check int) "one pass" 1 e.Cost.passes

let test_cost_em2_vs_aes () =
  let keys = [ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ] in
  let em2 = Cost.estimate cfg ~alg:Dip_opt.Protocol.EM2 ~header_bytes:98 keys in
  let aes = Cost.estimate cfg ~alg:Dip_opt.Protocol.AES ~header_bytes:98 keys in
  Alcotest.(check bool) "AES forces resubmits" true (aes.Cost.passes > em2.Cost.passes);
  Alcotest.(check bool) "AES slower" true (aes.Cost.time_ns > em2.Cost.time_ns)

let test_cost_opt_pricier_than_ip () =
  let ip = Cost.estimate cfg ~header_bytes:26 [ Opkey.F_32_match; Opkey.F_source ] in
  let opt =
    Cost.estimate cfg ~header_bytes:98 [ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ]
  in
  Alcotest.(check bool) "MAC operations are expensive (Fig. 2 shape)" true
    (opt.Cost.time_ns > ip.Cost.time_ns)

let test_cost_parallel_helps () =
  let keys = [ Opkey.F_fib; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ] in
  let seq = Cost.estimate cfg ~header_bytes:108 keys in
  let par = Cost.estimate cfg ~parallel:true ~header_bytes:108 keys in
  Alcotest.(check bool) "parallel never worse" true
    (par.Cost.time_ns <= seq.Cost.time_ns);
  Alcotest.(check bool) "fewer effective stages" true
    (par.Cost.stages_used < seq.Cost.stages_used)

let test_cost_free_source_op () =
  let c = Cost.op_cost ~alg:Dip_opt.Protocol.EM2 Opkey.F_source in
  Alcotest.(check int) "no stages" 0 c.Cost.stages

(* --- compiled dispatch --- *)

let env_v4 () =
  let env = Env.create ~name:"r" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 3;
  env

let ip_pkt ?(dst = "10.1.2.3") () =
  Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 dst) ~payload:"xx" ()

let test_compile_ip () =
  match Compile.compile ~registry:reg ~template:(ip_pkt ()) with
  | Error e -> Alcotest.fail e
  | Ok prog ->
      Alcotest.(check int) "two router FNs" 2 (Compile.fn_count prog);
      Alcotest.(check (list string)) "keys in order" [ "F_32_match"; "F_source" ]
        (List.map Opkey.name (Compile.keys prog))

let test_compiled_matches_interpreter () =
  let env = env_v4 () in
  let prog =
    match Compile.compile ~registry:reg ~template:(ip_pkt ()) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (* Same shape, different destination: both engines agree. *)
  List.iter
    (fun dst ->
      let a = ip_pkt ~dst () in
      let b = ip_pkt ~dst () in
      let vi, _ = Engine.process ~registry:reg env ~now:0.0 ~ingress:0 a in
      let vc = Compile.run prog env ~now:0.0 ~ingress:0 b in
      let show = function
        | Engine.Forwarded p -> "fwd:" ^ String.concat "," (List.map string_of_int p)
        | Engine.Delivered -> "deliver"
        | Engine.Responded _ -> "respond"
        | Engine.Quiet -> "quiet"
        | Engine.Dropped r -> "drop:" ^ r
        | Engine.Unsupported k -> "unsup:" ^ Opkey.name k
      in
      Alcotest.(check string) ("verdict for " ^ dst) (show vi) (show vc))
    [ "10.1.2.3"; "10.250.0.9"; "203.0.113.5" ]

let test_compiled_shape_mismatch () =
  let prog =
    match Compile.compile ~registry:reg ~template:(ip_pkt ()) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let ndn = Realize.ndn_interest ~name:(Name.of_string "/a") ~payload:"" () in
  (match Compile.run prog (env_v4 ()) ~now:0.0 ~ingress:0 ndn with
  | Engine.Dropped "shape-mismatch" -> ()
  | _ -> Alcotest.fail "different shape must miss");
  Alcotest.(check bool) "matches template shape" true
    (Compile.matches prog (ip_pkt ~dst:"99.0.0.1" ()))

let test_compiled_opt_chain () =
  (* The compiled program must preserve OPT semantics end to end. *)
  let g = Dip_stdext.Prng.create 7L in
  let secret = Dip_opt.Drkey.secret_gen g in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let session_id = 42L in
  let session_keys = Dip_opt.Drkey.session_keys [ secret ] ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  let router = Env.create ~name:"r" () in
  Env.set_opt_identity router ~secret ~hop:1;
  Dip_ip.Ipv4.add_route router.Env.v4_routes (Ipaddr.Prefix.of_string "0.0.0.0/0") 1;
  let pkt = Realize.opt ~hops:1 ~session_id ~timestamp:1l ~dest_key ~payload:"pl" () in
  let prog =
    match Compile.compile ~registry:reg ~template:pkt with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (match Compile.run prog router ~now:0.0 ~ingress:0 pkt with
  | Engine.Dropped "no-forwarding-decision" -> () (* OPT has no fwd FN *)
  | Engine.Dropped r -> Alcotest.failf "router dropped: %s" r
  | _ -> ());
  let host = Env.create ~name:"h" () in
  Env.register_opt_session host ~session_id ~session_keys ~dest_key;
  match Engine.host_process ~registry:reg host ~now:0.0 ~ingress:0 pkt with
  | Engine.Delivered, _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "verify failed after compiled run: %s" r
  | _ -> Alcotest.fail "expected delivery"

let test_compile_rejects_unsupported_mandatory () =
  let limited = Registry.restrict reg [ Opkey.F_32_match; Opkey.F_source ] in
  let opt_pkt =
    Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~payload:"" ()
  in
  match Compile.compile ~registry:limited ~template:opt_pkt with
  | Error e -> Alcotest.(check string) "names key" "cannot compile: F_parm unsupported" e
  | Ok _ -> Alcotest.fail "must refuse mandatory unsupported FNs"

let test_compile_estimate () =
  let prog =
    match Compile.compile ~registry:reg ~template:(ip_pkt ()) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let e = Compile.estimate prog cfg in
  Alcotest.(check int) "one pass for IP" 1 e.Cost.passes;
  Alcotest.(check bool) "positive time" true (e.Cost.time_ns > 0.0)


(* --- PHV --- *)

let mk_phv () =
  let pkt = ip_pkt () in
  let phv = Phv.create pkt in
  Phv.bind phv "hop" (Dip_bitbuf.Field.v ~off_bits:16 ~len_bits:8);
  phv

let test_phv_containers () =
  let phv = mk_phv () in
  Alcotest.(check int64) "initial hop" 64L (Phv.get phv "hop");
  Phv.set phv "hop" 63L;
  Alcotest.(check int64) "written through" 63L (Phv.get phv "hop");
  (* The write landed in the packet bytes (deparsing is implicit). *)
  Alcotest.(check int) "wire updated" 63 (Bitbuf.get_uint8 (Phv.packet phv) 2);
  Alcotest.(check bool) "bound" true (Phv.bound phv "hop");
  Alcotest.(check bool) "unbound" false (Phv.bound phv "nope")

let test_phv_bounds () =
  let phv = Phv.create (Bitbuf.create 4) in
  Alcotest.(check bool) "oob bind rejected" true
    (try Phv.bind phv "x" (Dip_bitbuf.Field.v ~off_bits:24 ~len_bits:16); false
     with Invalid_argument _ -> true)

let test_phv_meta_and_flags () =
  let phv = mk_phv () in
  Alcotest.(check int64) "meta default" 0L (Phv.get_meta phv "rounds");
  Phv.set_meta phv "rounds" 3L;
  Alcotest.(check int64) "meta set" 3L (Phv.get_meta phv "rounds");
  Alcotest.(check (option int)) "no egress" None (Phv.egress phv);
  Phv.set_egress phv 4;
  Alcotest.(check (option int)) "egress" (Some 4) (Phv.egress phv);
  Phv.request_resubmit phv;
  Alcotest.(check bool) "resubmit" true (Phv.resubmit_requested phv);
  Phv.clear_resubmit phv;
  Alcotest.(check bool) "cleared" false (Phv.resubmit_requested phv)

(* --- Parser --- *)

let test_parser_validation () =
  Alcotest.(check bool) "unknown target" true
    (try
       ignore
         (Parser.build ~start:"s"
            [ { Parser.name = "s"; extracts = [];
                transition = Parser.Select ("x", [], "missing") } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore
         (Parser.build ~start:"a"
            [
              { Parser.name = "a"; extracts = [];
                transition = Parser.Select ("x", [], "b") };
              { Parser.name = "b"; extracts = [];
                transition = Parser.Select ("x", [], "a") };
            ]);
       false
     with Invalid_argument _ -> true)

let test_parser_truncated_packet () =
  let p = Dip_program.parser () in
  match Parser.run p (Bitbuf.create 8) with
  | Error e -> Alcotest.(check bool) "clean error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "truncated packet must not parse"

let test_parser_shape_select () =
  let p = Dip_program.parser () in
  (* The DIP-32 shape parses… *)
  (match Parser.run p (ip_pkt ()) with
  | Ok phv -> Alcotest.(check int64) "dst slice" 0x0A010203L (Phv.get phv "dip32_dst")
  | Error e -> Alcotest.fail e);
  (* …another FN count is rejected by the select. *)
  let ndn = Realize.ndn_interest ~name:(Name.of_string "/x") ~payload:"" () in
  match Parser.run p ndn with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-DIP-32 shape must be rejected"

(* --- Table --- *)

let test_table_exact () =
  let hit = ref "" in
  let t = Table.create ~name:"t" ~key:"k" Table.Exact in
  Table.add_exact t 7L ~name:"seven" (fun _ -> hit := "seven");
  let phv = Phv.create (Bitbuf.create 2) in
  Phv.bind phv "k" (Dip_bitbuf.Field.v ~off_bits:0 ~len_bits:8);
  Phv.set phv "k" 7L;
  Alcotest.(check string) "hit" "seven" (Table.apply t phv);
  Alcotest.(check string) "side effect" "seven" !hit;
  Phv.set phv "k" 8L;
  Alcotest.(check string) "miss -> default" "NoAction" (Table.apply t phv)

let test_table_lpm_longest_wins () =
  let t = Table.create ~name:"t" ~key:"k" Table.Lpm in
  Table.add_lpm t ~value:0x0A000000L ~prefix_len:8 ~width:32 ~name:"coarse" (fun _ -> ());
  Table.add_lpm t ~value:0x0A010000L ~prefix_len:16 ~width:32 ~name:"fine" (fun _ -> ());
  let phv = Phv.create (Bitbuf.create 4) in
  Phv.bind phv "k" (Dip_bitbuf.Field.v ~off_bits:0 ~len_bits:32);
  Phv.set phv "k" 0x0A010203L;
  Alcotest.(check string) "longest" "fine" (Table.apply t phv);
  Phv.set phv "k" 0x0A990203L;
  Alcotest.(check string) "fallback" "coarse" (Table.apply t phv)

let test_table_ternary_priority () =
  let t = Table.create ~name:"t" ~key:"k" Table.Ternary in
  Table.add_ternary t ~value:0x10L ~mask:0xF0L ~priority:5 ~name:"low" (fun _ -> ());
  Table.add_ternary t ~value:0x12L ~mask:0xFFL ~priority:1 ~name:"high" (fun _ -> ());
  let phv = Phv.create (Bitbuf.create 1) in
  Phv.bind phv "k" (Dip_bitbuf.Field.v ~off_bits:0 ~len_bits:8);
  Phv.set phv "k" 0x12L;
  Alcotest.(check string) "priority wins" "high" (Table.apply t phv);
  Phv.set phv "k" 0x15L;
  Alcotest.(check string) "masked match" "low" (Table.apply t phv)

let test_table_kind_guards () =
  let t = Table.create ~name:"t" ~key:"k" Table.Exact in
  Alcotest.(check bool) "lpm on exact" true
    (try Table.add_lpm t ~value:0L ~prefix_len:8 ~width:32 ~name:"x" (fun _ -> ()); false
     with Invalid_argument _ -> true)

(* --- Pipeline + the §4.1 DIP program --- *)

let routes () =
  [
    (Dip_tables.Ipaddr.Prefix.of_string "10.0.0.0/8", 1);
    (Dip_tables.Ipaddr.Prefix.of_string "10.1.0.0/16", 2);
  ]

let test_dip_program_forwards () =
  let p = Dip_program.parser () in
  let pl = Dip_program.pipeline ~routes:(routes ()) () in
  (match Dip_program.process p pl (ip_pkt ~dst:"10.1.2.3" ()) with
  | Dip_program.Forward 2, Some r ->
      Alcotest.(check int) "single pass" 1 r.Pipeline.passes;
      Alcotest.(check int) "four tables" 4 r.Pipeline.tables_applied
  | Dip_program.Forward p', _ -> Alcotest.failf "wrong port %d" p'
  | Dip_program.Drop e, _ -> Alcotest.failf "dropped: %s" e);
  match Dip_program.process p pl (ip_pkt ~dst:"10.9.9.9" ()) with
  | Dip_program.Forward 1, _ -> ()
  | _ -> Alcotest.fail "coarse route expected"

let test_dip_program_parity_with_engine () =
  let p = Dip_program.parser () in
  let pl = Dip_program.pipeline ~routes:(routes ()) () in
  let env = Env.create ~name:"e" in
  let env = env () in
  List.iter
    (fun (prefix, port) -> Dip_ip.Ipv4.add_route env.Env.v4_routes prefix port)
    (routes ());
  List.iter
    (fun dst ->
      let a = ip_pkt ~dst () and b = ip_pkt ~dst () in
      let engine_verdict, _ = Engine.process ~registry:reg env ~now:0.0 ~ingress:0 a in
      let pipeline_verdict, _ = Dip_program.process p pl b in
      let same =
        match (engine_verdict, pipeline_verdict) with
        | Engine.Forwarded [ x ], Dip_program.Forward y -> x = y
        | Engine.Dropped _, Dip_program.Drop _ -> true
        | _ -> false
      in
      Alcotest.(check bool) ("parity for " ^ dst) true same)
    [ "10.1.2.3"; "10.200.1.1"; "192.0.2.55" ]

let test_dip_program_hop_expiry () =
  let p = Dip_program.parser () in
  let pl = Dip_program.pipeline ~routes:(routes ()) () in
  let pkt =
    Realize.ipv4 ~hop_limit:1 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:"xx" ()
  in
  match Dip_program.process p pl pkt with
  | Dip_program.Drop "hop-limit-expired", _ -> ()
  | _ -> Alcotest.fail "hop expiry in the ternary stage"

let test_dip_program_decrements_wire () =
  let p = Dip_program.parser () in
  let pl = Dip_program.pipeline ~routes:(routes ()) () in
  let pkt = ip_pkt ~dst:"10.1.2.3" () in
  ignore (Dip_program.process p pl pkt);
  Alcotest.(check int) "hop byte decremented on the wire" 63
    (Bitbuf.get_uint8 pkt 2)

let test_pipeline_resubmit_accounting () =
  let pl = Dip_program.demo_resubmit_pipeline ~rounds:5 in
  let pkt = ip_pkt () in
  let phv = Phv.create pkt in
  Phv.bind phv "hop_limit" (Dip_bitbuf.Field.v ~off_bits:16 ~len_bits:8);
  let r = Pipeline.run pl phv in
  Alcotest.(check int) "5 rounds = 5 passes" 5 r.Pipeline.passes;
  Alcotest.(check (option int)) "eventually egresses" (Some 1) r.Pipeline.egress

let test_pipeline_resubmit_cap () =
  let pl = Dip_program.demo_resubmit_pipeline ~rounds:100 in
  let pkt = ip_pkt () in
  let phv = Phv.create pkt in
  Phv.bind phv "hop_limit" (Dip_bitbuf.Field.v ~off_bits:16 ~len_bits:8);
  let r = Pipeline.run pl phv in
  Alcotest.(check (option string)) "capped" (Some "resubmit-limit")
    r.Pipeline.dropped

let test_pipeline_build_guards () =
  Alcotest.(check bool) "no stages" true
    (try ignore (Pipeline.build []); false with Invalid_argument _ -> true);
  let stage = { Pipeline.label = "s"; tables = [] } in
  Alcotest.(check bool) "too many stages" true
    (try ignore (Pipeline.build (List.init 13 (fun _ -> stage))); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "pisa"
    [
      ( "cost",
        [
          Alcotest.test_case "IP single pass" `Quick test_cost_ip_single_pass;
          Alcotest.test_case "2EM vs AES" `Quick test_cost_em2_vs_aes;
          Alcotest.test_case "OPT pricier than IP" `Quick test_cost_opt_pricier_than_ip;
          Alcotest.test_case "parallel helps" `Quick test_cost_parallel_helps;
          Alcotest.test_case "free source op" `Quick test_cost_free_source_op;
        ] );
      ( "phv",
        [
          Alcotest.test_case "containers" `Quick test_phv_containers;
          Alcotest.test_case "bounds" `Quick test_phv_bounds;
          Alcotest.test_case "meta and flags" `Quick test_phv_meta_and_flags;
        ] );
      ( "parser",
        [
          Alcotest.test_case "validation" `Quick test_parser_validation;
          Alcotest.test_case "truncated packet" `Quick test_parser_truncated_packet;
          Alcotest.test_case "shape select" `Quick test_parser_shape_select;
        ] );
      ( "table",
        [
          Alcotest.test_case "exact" `Quick test_table_exact;
          Alcotest.test_case "lpm longest wins" `Quick test_table_lpm_longest_wins;
          Alcotest.test_case "ternary priority" `Quick test_table_ternary_priority;
          Alcotest.test_case "kind guards" `Quick test_table_kind_guards;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "DIP-32 program forwards" `Quick test_dip_program_forwards;
          Alcotest.test_case "parity with engine" `Quick test_dip_program_parity_with_engine;
          Alcotest.test_case "hop expiry" `Quick test_dip_program_hop_expiry;
          Alcotest.test_case "decrements wire" `Quick test_dip_program_decrements_wire;
          Alcotest.test_case "resubmit accounting" `Quick test_pipeline_resubmit_accounting;
          Alcotest.test_case "resubmit cap" `Quick test_pipeline_resubmit_cap;
          Alcotest.test_case "build guards" `Quick test_pipeline_build_guards;
        ] );
      ( "compile",
        [
          Alcotest.test_case "IP program" `Quick test_compile_ip;
          Alcotest.test_case "parity with interpreter" `Quick test_compiled_matches_interpreter;
          Alcotest.test_case "shape mismatch" `Quick test_compiled_shape_mismatch;
          Alcotest.test_case "OPT semantics preserved" `Quick test_compiled_opt_chain;
          Alcotest.test_case "rejects unsupported" `Quick test_compile_rejects_unsupported_mandatory;
          Alcotest.test_case "estimate" `Quick test_compile_estimate;
        ] );
    ]
