(* Unit and property tests for the dip_stdext utility kit. *)

open Dip_stdext

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 42L in
  let c = Prng.split a in
  let x = Prng.next64 a and y = Prng.next64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_prng_copy () =
  let a = Prng.create 7L in
  let _ = Prng.next64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy preserves state" (Prng.next64 a) (Prng.next64 b)

let test_prng_int_bounds () =
  let g = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let g = Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_prng_int_invalid () =
  let g = Prng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 4L in
  for _ = 1 to 1000 do
    let v = Prng.float g 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_bytes_len () =
  let g = Prng.create 5L in
  Alcotest.(check int) "length" 33 (Bytes.length (Prng.bytes g 33))

let test_prng_shuffle_permutation () =
  let g = Prng.create 6L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_zipf_range () =
  let g = Prng.create 8L in
  for _ = 1 to 1000 do
    let v = Prng.zipf g ~n:100 ~s:0.9 in
    Alcotest.(check bool) "rank in [1,n]" true (v >= 1 && v <= 100)
  done

let test_prng_zipf_skew () =
  (* Rank 1 must be sampled far more often than rank 100. *)
  let g = Prng.create 9L in
  let counts = Array.make 101 0 in
  for _ = 1 to 20_000 do
    let v = Prng.zipf g ~n:100 ~s:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "head heavier than tail" true (counts.(1) > 10 * counts.(100))

let test_prng_exponential_positive () =
  let g = Prng.create 10L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.exponential g 2.0 >= 0.0)
  done

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff DIP" in
  Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s))

let test_hex_encode_known () =
  Alcotest.(check string) "known vector" "deadbeef"
    (Hex.encode "\xde\xad\xbe\xef")

let test_hex_decode_upper () =
  Alcotest.(check string) "uppercase accepted" "\xde\xad" (Hex.decode "DEAD")

let test_hex_decode_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Hex.decode: non-hex character") (fun () ->
      ignore (Hex.decode "zz"))

let test_crc32_known_vectors () =
  (* Standard IEEE CRC-32 check value. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest "")

let test_crc32_sub_matches_whole () =
  let b = Bytes.of_string "hotnets.org/papers/dip" in
  Alcotest.(check int32) "full slice = digest"
    (Crc32.digest_bytes b)
    (Crc32.digest_sub b ~pos:0 ~len:(Bytes.length b))

let test_crc32_sub_bounds () =
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Crc32.digest_sub: slice out of bounds") (fun () ->
      ignore (Crc32.digest_sub (Bytes.create 4) ~pos:2 ~len:3))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_tabular_render () =
  let t = Tabular.create ~aligns:[ Tabular.Left; Tabular.Right ] [ "name"; "size" ] in
  Tabular.add_row t [ "IPv4"; "20" ];
  Tabular.add_row t [ "DIP-32"; "26" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "mentions rows" true
    (String.length s > 0 && contains s "IPv4" && contains s "DIP-32")

let test_tabular_arity () =
  let t = Tabular.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tabular.add_row: arity mismatch")
    (fun () -> Tabular.add_row t [ "only-one" ])

let test_hex_dump_format () =
  let s = Format.asprintf "%a" Hex.dump "0123456789ABCDEF!" in
  (* Two lines (17 bytes), offsets, and the ASCII gutter. *)
  Alcotest.(check bool) "offset 0" true (contains s "00000000");
  Alcotest.(check bool) "offset 16" true (contains s "00000010");
  Alcotest.(check bool) "ascii gutter" true (contains s "|0123456789ABCDEF|")

(* QCheck properties *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex: decode . encode = id" ~count:500
    QCheck.string (fun s -> Hex.decode (Hex.encode s) = s)

let prop_crc32_incremental =
  QCheck.Test.make ~name:"crc32: differs on single-bit flip" ~count:200
    QCheck.(pair small_string small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Crc32.digest s <> Crc32.digest (Bytes.to_string b))

let prop_prng_int_uniform_support =
  QCheck.Test.make ~name:"prng: int covers support" ~count:50
    QCheck.(int_range 1 8)
    (fun bound ->
      let g = Prng.create (Int64.of_int (bound * 7919)) in
      let seen = Array.make bound false in
      for _ = 1 to 2000 do
        seen.(Prng.int g bound) <- true
      done;
      Array.for_all Fun.id seen)

let () =
  Alcotest.run "stdext"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_len;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "zipf range" `Quick test_prng_zipf_range;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          QCheck_alcotest.to_alcotest prop_prng_int_uniform_support;
        ] );
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "known vector" `Quick test_hex_encode_known;
          Alcotest.test_case "uppercase" `Quick test_hex_decode_upper;
          Alcotest.test_case "invalid input" `Quick test_hex_decode_invalid;
          Alcotest.test_case "dump format" `Quick test_hex_dump_format;
          QCheck_alcotest.to_alcotest prop_hex_roundtrip;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "sub matches whole" `Quick test_crc32_sub_matches_whole;
          Alcotest.test_case "sub bounds" `Quick test_crc32_sub_bounds;
          QCheck_alcotest.to_alcotest prop_crc32_incremental;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "arity mismatch" `Quick test_tabular_arity;
        ] );
    ]
