test/test_bitbuf.ml: Alcotest Array Bitbuf Bytes Char Dip_bitbuf Dip_stdext Field Int64 Printf QCheck QCheck_alcotest
