test/test_soak.ml: Alcotest Array Dip_core Dip_ip Dip_netsim Dip_opt Dip_stdext Dip_tables Engine Env Int64 List Ops Printf Realize String
