test/test_netfence.mli:
