test/test_netfence.ml: Alcotest Dip_bitbuf Dip_core Dip_crypto Dip_ip Dip_netfence Dip_tables Engine Env Int32 List Ops Packet Printf QCheck QCheck_alcotest Realize Result String Telemetry
