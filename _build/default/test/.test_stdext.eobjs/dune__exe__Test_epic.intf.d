test/test_epic.mli:
