test/test_xia.ml: Alcotest Dag Dip_bitbuf Dip_netsim Dip_xia Fun List Printf QCheck QCheck_alcotest Router String Xid
