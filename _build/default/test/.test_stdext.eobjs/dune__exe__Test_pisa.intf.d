test/test_pisa.mli:
