test/test_control.mli:
