test/test_ndn.ml: Alcotest Dip_bitbuf Dip_ndn Dip_netsim Dip_tables Forwarder Gen List Map Option Packet Printf QCheck QCheck_alcotest String
