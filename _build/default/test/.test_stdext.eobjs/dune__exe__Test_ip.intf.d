test/test_ip.mli:
