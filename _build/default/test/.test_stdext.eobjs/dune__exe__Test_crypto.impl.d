test/test_crypto.ml: Aes128 Alcotest Arx_perm Bytes Cbc_mac Char Dip_crypto Dip_stdext Even_mansour Int64 Prf Printf QCheck QCheck_alcotest Siphash String
