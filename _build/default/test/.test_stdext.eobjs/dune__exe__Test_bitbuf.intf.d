test/test_bitbuf.mli:
