test/test_xia.mli:
