test/test_ip.ml: Alcotest Dip_bitbuf Dip_ip Dip_netsim Dip_tables Ipv4 Ipv6 List QCheck QCheck_alcotest String
