test/test_tables.mli:
