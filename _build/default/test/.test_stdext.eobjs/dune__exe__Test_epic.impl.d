test/test_epic.ml: Alcotest Dip_bitbuf Dip_core Dip_epic Dip_ip Dip_opt Dip_stdext Dip_tables Engine Env List Opkey Ops Packet Printf QCheck QCheck_alcotest Realize Registry Result String
