test/test_pisa.ml: Alcotest Compile Cost Dip_bitbuf Dip_core Dip_ip Dip_opt Dip_pisa Dip_program Dip_stdext Dip_tables Engine Env List Opkey Ops Parser Phv Pipeline Realize Registry String Table
