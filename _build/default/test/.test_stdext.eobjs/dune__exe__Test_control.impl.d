test/test_control.ml: Alcotest Control Dip_bitbuf Dip_core Dip_crypto Dip_ip Dip_netfence Dip_netsim Dip_opt Dip_tables Engine Env Errors Format Int64 List Opkey Ops Realize Registry String
