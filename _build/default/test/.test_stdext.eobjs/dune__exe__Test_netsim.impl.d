test/test_netsim.ml: Alcotest Array Dip_bitbuf Dip_netsim Dip_stdext Dip_tables Event_queue Float Format Fun List Printf Sim Stats String Topology Trace Workload
