test/test_ndn.mli:
