test/test_tables.ml: Alcotest Content_store Dip_stdext Dip_tables Fun Hashtbl Int32 Ipaddr List Lpm_trie Lru Name Name_fib Pit Printf QCheck QCheck_alcotest String
