test/test_stdext.ml: Alcotest Array Bytes Char Crc32 Dip_stdext Format Fun Hex Int64 Prng QCheck QCheck_alcotest String Tabular
