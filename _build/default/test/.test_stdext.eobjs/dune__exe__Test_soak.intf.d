test/test_soak.mli:
