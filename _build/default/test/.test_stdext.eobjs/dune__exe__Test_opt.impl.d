test/test_opt.ml: Alcotest Bytes Char Dip_bitbuf Dip_opt Dip_stdext Drkey Header List Protocol QCheck QCheck_alcotest String
