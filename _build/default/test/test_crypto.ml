(* Tests for the crypto substrate: the ARX permutation, 2EM,
   AES-128 (FIPS-197 known-answer vector), CBC-MAC and the PRF. *)

open Dip_crypto

let hex = Dip_stdext.Hex.decode

let test_arx_inverse () =
  let g = Dip_stdext.Prng.create 11L in
  for _ = 1 to 200 do
    let b = (Dip_stdext.Prng.next64 g, Dip_stdext.Prng.next64 g) in
    let b' = Arx_perm.backward (Arx_perm.forward b) in
    Alcotest.(check bool) "backward . forward = id" true (b = b')
  done

let test_arx_not_identity () =
  let b = (0L, 0L) in
  Alcotest.(check bool) "permutes zero block" true (Arx_perm.forward b <> b)

let test_arx_string_roundtrip () =
  let s = "0123456789abcdef" in
  Alcotest.(check string) "roundtrip" s Arx_perm.(to_string (of_string s))

let test_arx_diffusion () =
  (* Flipping one input bit must flip a substantial number of output
     bits (avalanche). We accept anything in [30, 98] of 128. *)
  let base = Arx_perm.forward (0x0123456789ABCDEFL, 0xFEDCBA9876543210L) in
  let flipped = Arx_perm.forward (0x0123456789ABCDEBL, 0xFEDCBA9876543210L) in
  let popcount x =
    let rec go x acc = if x = 0L then acc
      else go (Int64.shift_right_logical x 1)
             (acc + Int64.to_int (Int64.logand x 1L))
    in
    go x 0
  in
  let d =
    popcount (Int64.logxor (fst base) (fst flipped))
    + popcount (Int64.logxor (snd base) (snd flipped))
  in
  Alcotest.(check bool) (Printf.sprintf "avalanche (%d bits)" d) true
    (d >= 30 && d <= 98)

let em_key = Even_mansour.expand_key "em-master-key-16"

let test_em_roundtrip () =
  let g = Dip_stdext.Prng.create 12L in
  for _ = 1 to 100 do
    let block = Bytes.to_string (Dip_stdext.Prng.bytes g 16) in
    Alcotest.(check string) "decrypt . encrypt = id" block
      (Even_mansour.decrypt_block em_key (Even_mansour.encrypt_block em_key block))
  done

let test_em_key_separation () =
  let k2 = Even_mansour.expand_key "em-master-key-17" in
  let block = "0123456789abcdef" in
  Alcotest.(check bool) "different keys, different ciphertexts" true
    (Even_mansour.encrypt_block em_key block
    <> Even_mansour.encrypt_block k2 block)

let test_em_bad_sizes () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Even_mansour.expand_key: need a 16-byte key") (fun () ->
      ignore (Even_mansour.expand_key "short"));
  Alcotest.check_raises "short block"
    (Invalid_argument "Even_mansour: block must be 16 bytes") (fun () ->
      ignore (Even_mansour.encrypt_block em_key "short"))

let test_em_single_pass () =
  Alcotest.(check int) "2EM is single-pass on PISA" 1 Even_mansour.passes

let test_aes_fips197 () =
  (* FIPS-197 Appendix C.1 known-answer test. *)
  let key = Aes128.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let ct = Aes128.encrypt_block key pt in
  Alcotest.(check string) "FIPS-197 C.1 ciphertext"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (Dip_stdext.Hex.encode ct);
  Alcotest.(check string) "decrypts back"
    (Dip_stdext.Hex.encode pt)
    (Dip_stdext.Hex.encode (Aes128.decrypt_block key ct))

let test_aes_sp800_38a () =
  (* NIST SP 800-38A, ECB-AES128.Encrypt, block #1. *)
  let key = Aes128.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  Alcotest.(check string) "SP 800-38A block 1"
    "3ad77bb40d7a3660a89ecaf32466ef97"
    (Dip_stdext.Hex.encode
       (Aes128.encrypt_block key (hex "6bc1bee22e409f96e93d7e117393172a")))

let test_aes_roundtrip () =
  let g = Dip_stdext.Prng.create 13L in
  let key = Aes128.expand_key (Bytes.to_string (Dip_stdext.Prng.bytes g 16)) in
  for _ = 1 to 50 do
    let block = Bytes.to_string (Dip_stdext.Prng.bytes g 16) in
    Alcotest.(check string) "decrypt . encrypt = id" block
      (Aes128.decrypt_block key (Aes128.encrypt_block key block))
  done

let test_aes_multi_pass () =
  Alcotest.(check bool) "AES needs resubmission on PISA" true (Aes128.passes > 1)

module Mac2em = Cbc_mac.Make (Even_mansour)
module MacAes = Cbc_mac.Make (Aes128)

let mac_key = Mac2em.expand_key "mac-master-key-1"

let test_mac_deterministic () =
  let m = "the quick brown fox" in
  Alcotest.(check string) "same input, same tag" (Mac2em.mac mac_key m)
    (Mac2em.mac mac_key m)

let test_mac_distinct_messages () =
  Alcotest.(check bool) "tags differ" true
    (Mac2em.mac mac_key "message-a" <> Mac2em.mac mac_key "message-b")

let test_mac_length_extension_guard () =
  (* "a" followed by zero padding must not collide with the padded
     block itself: the length prefix separates them. *)
  let a = Mac2em.mac mac_key "a" in
  let b = Mac2em.mac mac_key ("a" ^ String.make 15 '\000') in
  Alcotest.(check bool) "length-prefixed domains" true (a <> b)

let test_mac_empty_message () =
  Alcotest.(check int) "tag width" 16 (String.length (Mac2em.mac mac_key ""))

let test_mac_truncation () =
  let m = "hotnets.org" in
  let full = Mac2em.mac mac_key m in
  Alcotest.(check string) "prefix" (String.sub full 0 4)
    (Mac2em.mac_truncated mac_key 4 m);
  Alcotest.check_raises "bad length"
    (Invalid_argument "Cbc_mac.mac_truncated: bad tag length") (fun () ->
      ignore (Mac2em.mac_truncated mac_key 17 m))

let test_mac_verify () =
  let m = "payload" in
  let tag = Mac2em.mac_truncated mac_key 16 m in
  Alcotest.(check bool) "accepts valid" true (Mac2em.verify mac_key ~tag m);
  Alcotest.(check bool) "rejects tampered msg" false
    (Mac2em.verify mac_key ~tag "Payload");
  let bad = Bytes.of_string tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "rejects tampered tag" false
    (Mac2em.verify mac_key ~tag:(Bytes.to_string bad) m);
  Alcotest.(check bool) "rejects empty tag" false (Mac2em.verify mac_key ~tag:"" m)

let test_mac_ciphers_disagree () =
  (* Same raw key bytes, different ciphers: tags must differ, which
     is what makes the A2 ablation a real comparison. *)
  let k2 = MacAes.expand_key "mac-master-key-1" in
  Alcotest.(check bool) "2EM and AES tags differ" true
    (Mac2em.mac mac_key "x" <> MacAes.mac k2 "x")

let test_prf_derivation () =
  let k = Prf.key_of_string "prf-master-key-0" in
  let a = Prf.derive k ~label:"pvf" "session-1" in
  let b = Prf.derive k ~label:"opv" "session-1" in
  let c = Prf.derive k ~label:"pvf" "session-2" in
  Alcotest.(check int) "width" 16 (String.length a);
  Alcotest.(check bool) "labels separate" true (a <> b);
  Alcotest.(check bool) "inputs separate" true (a <> c);
  Alcotest.(check string) "deterministic" a (Prf.derive k ~label:"pvf" "session-1")

let test_prf_label_framing () =
  let k = Prf.key_of_string "prf-master-key-0" in
  (* ("ab","c") and ("a","bc") must not collide. *)
  Alcotest.(check bool) "framing" true
    (Prf.derive k ~label:"ab" "c" <> Prf.derive k ~label:"a" "bc")

let test_prf_int () =
  let k = Prf.key_of_string "prf-master-key-0" in
  Alcotest.(check bool) "distinct ints" true
    (Prf.derive_int k ~label:"s" 1L <> Prf.derive_int k ~label:"s" 2L)

let test_siphash_reference_vectors () =
  (* Reference vectors from the SipHash paper's test program:
     key = 000102...0f, messages are prefixes of 00 01 02 ... *)
  let k = Siphash.default_key in
  let input n = String.init n Char.chr in
  Alcotest.(check int64) "empty" 0x726fdb47dd0e0e31L (Siphash.hash k (input 0));
  Alcotest.(check int64) "1 byte" 0x74f839c593dc67fdL (Siphash.hash k (input 1));
  Alcotest.(check int64) "8 bytes" 0x93f5f5799a932462L (Siphash.hash k (input 8))

let test_siphash_key_sensitivity () =
  let k2 = Siphash.key_of_string "0123456789abcdef" in
  Alcotest.(check bool) "keys matter" true
    (Siphash.hash Siphash.default_key "dip" <> Siphash.hash k2 "dip")

let test_siphash_hash32 () =
  let h = Siphash.hash32 Siphash.default_key "hotnets.org" in
  Alcotest.(check int32) "stable fold" h
    (Siphash.hash32 Siphash.default_key "hotnets.org")

(* QCheck properties. *)

let prop_em_roundtrip =
  QCheck.Test.make ~name:"2EM: decrypt . encrypt = id" ~count:300
    QCheck.(string_of_size (QCheck.Gen.return 16))
    (fun block ->
      Even_mansour.decrypt_block em_key (Even_mansour.encrypt_block em_key block)
      = block)

let prop_mac_injective_on_samples =
  QCheck.Test.make ~name:"cbc-mac: distinct strings, distinct tags" ~count:300
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Mac2em.mac mac_key a <> Mac2em.mac mac_key b)

let prop_mac_verify_accepts =
  QCheck.Test.make ~name:"cbc-mac: verify accepts own tags" ~count:300
    QCheck.small_string
    (fun m -> Mac2em.verify mac_key ~tag:(Mac2em.mac mac_key m) m)

let () =
  Alcotest.run "crypto"
    [
      ( "arx",
        [
          Alcotest.test_case "inverse" `Quick test_arx_inverse;
          Alcotest.test_case "not identity" `Quick test_arx_not_identity;
          Alcotest.test_case "string roundtrip" `Quick test_arx_string_roundtrip;
          Alcotest.test_case "diffusion" `Quick test_arx_diffusion;
        ] );
      ( "even-mansour",
        [
          Alcotest.test_case "roundtrip" `Quick test_em_roundtrip;
          Alcotest.test_case "key separation" `Quick test_em_key_separation;
          Alcotest.test_case "bad sizes" `Quick test_em_bad_sizes;
          Alcotest.test_case "single pass" `Quick test_em_single_pass;
          QCheck_alcotest.to_alcotest prop_em_roundtrip;
        ] );
      ( "aes128",
        [
          Alcotest.test_case "FIPS-197 vector" `Quick test_aes_fips197;
          Alcotest.test_case "SP 800-38A vector" `Quick test_aes_sp800_38a;
          Alcotest.test_case "roundtrip" `Quick test_aes_roundtrip;
          Alcotest.test_case "multi pass" `Quick test_aes_multi_pass;
        ] );
      ( "cbc-mac",
        [
          Alcotest.test_case "deterministic" `Quick test_mac_deterministic;
          Alcotest.test_case "distinct messages" `Quick test_mac_distinct_messages;
          Alcotest.test_case "length prefix" `Quick test_mac_length_extension_guard;
          Alcotest.test_case "empty message" `Quick test_mac_empty_message;
          Alcotest.test_case "truncation" `Quick test_mac_truncation;
          Alcotest.test_case "verify" `Quick test_mac_verify;
          Alcotest.test_case "ciphers disagree" `Quick test_mac_ciphers_disagree;
          QCheck_alcotest.to_alcotest prop_mac_injective_on_samples;
          QCheck_alcotest.to_alcotest prop_mac_verify_accepts;
        ] );
      ( "prf",
        [
          Alcotest.test_case "derivation" `Quick test_prf_derivation;
          Alcotest.test_case "label framing" `Quick test_prf_label_framing;
          Alcotest.test_case "int input" `Quick test_prf_int;
        ] );
      ( "siphash",
        [
          Alcotest.test_case "reference vectors" `Quick test_siphash_reference_vectors;
          Alcotest.test_case "key sensitivity" `Quick test_siphash_key_sensitivity;
          Alcotest.test_case "hash32" `Quick test_siphash_hash32;
        ] );
    ]
