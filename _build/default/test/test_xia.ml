(* Tests for the XIA substrate: XIDs, DAG addresses and the fallback
   router of paper §3 (F_DAG / F_intent). *)

open Dip_xia
module Sim = Dip_netsim.Sim

let ad name = Xid.of_name Xid.AD name
let hid name = Xid.of_name Xid.HID name
let sid name = Xid.of_name Xid.SID name
let cid name = Xid.of_name Xid.CID name

let test_xid_of_name_deterministic () =
  Alcotest.(check bool) "equal" true (Xid.equal (hid "h1") (hid "h1"));
  Alcotest.(check bool) "kind matters" false (Xid.equal (hid "h1") (sid "h1"));
  Alcotest.(check bool) "name matters" false (Xid.equal (hid "h1") (hid "h2"))

let test_xid_wire_roundtrip () =
  let x = cid "chunk-42" in
  Alcotest.(check bool) "roundtrip" true (Xid.equal x (Xid.of_wire (Xid.to_wire x)));
  Alcotest.(check int) "21 bytes" 21 (String.length (Xid.to_wire x))

let test_xid_wire_rejects () =
  Alcotest.(check bool) "bad length" true
    (try ignore (Xid.of_wire "short"); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad kind" true
    (try ignore (Xid.of_wire ("\x09" ^ String.make 20 'x')); false
     with Invalid_argument _ -> true)

let test_xid_validation () =
  Alcotest.(check bool) "20-byte ids only" true
    (try ignore (Xid.v Xid.AD "short"); false with Invalid_argument _ -> true)

let test_dag_direct () =
  let d = Dag.direct (sid "svc") in
  Alcotest.(check int) "one node" 1 (Dag.node_count d);
  Alcotest.(check bool) "intent" true (Xid.equal (sid "svc") (Dag.intent d));
  Alcotest.(check (list int)) "source edge" [ 1 ] (Dag.successors d 0)

let test_dag_fallback_shape () =
  (* source → intent directly, falling back to AD → HID → intent. *)
  let d = Dag.fallback ~intent:(sid "svc") ~via:[ ad "ad1"; hid "h1" ] in
  Alcotest.(check int) "3 nodes" 3 (Dag.node_count d);
  Alcotest.(check (list int)) "source tries intent first" [ 3; 1 ]
    (Dag.successors d 0);
  Alcotest.(check (list int)) "ad tries intent then hid" [ 3; 2 ]
    (Dag.successors d 1);
  Alcotest.(check (list int)) "hid goes to intent" [ 3 ] (Dag.successors d 2);
  Alcotest.(check (list int)) "intent is sink" [] (Dag.successors d 3)

let test_dag_validation () =
  let x = sid "s" in
  Alcotest.(check bool) "backward edge rejected" true
    (try
       ignore (Dag.make ~nodes:[| x; x |] ~edges:[| [ 2 ]; [ 1 ] |] |> ignore);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unreachable intent rejected" true
    (try
       ignore (Dag.make ~nodes:[| x; x |] ~edges:[| [ 1 ]; []; [] |]);
       false
     with Invalid_argument _ -> true)

let test_dag_wire_roundtrip () =
  let d = Dag.fallback ~intent:(cid "c") ~via:[ ad "a"; hid "h" ] in
  let d' = Dag.of_wire (Dag.to_wire d) in
  Alcotest.(check int) "nodes" (Dag.node_count d) (Dag.node_count d');
  Alcotest.(check bool) "intent" true (Xid.equal (Dag.intent d) (Dag.intent d'));
  List.iter
    (fun i ->
      Alcotest.(check (list int))
        (Printf.sprintf "edges %d" i)
        (Dag.successors d i) (Dag.successors d' i))
    [ 0; 1; 2; 3 ]

let test_dag_wire_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (Dag.of_wire "\x01garbage"); false
     with Invalid_argument _ -> true)

(* --- Router fallback semantics --- *)

let test_router_direct_route () =
  let r = Router.create () in
  Router.add_route r (sid "svc") 4;
  let d = Dag.direct (sid "svc") in
  match Router.step r d ~ptr:0 with
  | Router.Forward (4, 0) -> ()
  | _ -> Alcotest.fail "expected forward on port 4 without moving the pointer"

let test_router_fallback_order () =
  (* Intent not routable; fallback to the AD path. *)
  let r = Router.create () in
  Router.add_route r (ad "ad1") 2;
  let d = Dag.fallback ~intent:(sid "svc") ~via:[ ad "ad1" ] in
  (match Router.step r d ~ptr:0 with
  | Router.Forward (2, 0) -> ()
  | _ -> Alcotest.fail "expected fallback to AD");
  (* If the intent becomes routable it wins (priority order). *)
  Router.add_route r (sid "svc") 9;
  match Router.step r d ~ptr:0 with
  | Router.Forward (9, 0) -> ()
  | _ -> Alcotest.fail "intent must take priority"

let test_router_pointer_advances_at_owner () =
  (* The AD's border router owns ad1: the pointer moves past it and
     routing continues from the AD node. *)
  let r = Router.create () in
  Router.add_local r (ad "ad1");
  Router.add_route r (hid "h1") 5;
  let d = Dag.fallback ~intent:(sid "svc") ~via:[ ad "ad1"; hid "h1" ] in
  match Router.step r d ~ptr:0 with
  | Router.Forward (5, 1) -> ()
  | Router.Forward (p, ptr) -> Alcotest.failf "got port %d ptr %d" p ptr
  | _ -> Alcotest.fail "expected forward from inside the AD"

let test_router_delivery_at_intent_owner () =
  let r = Router.create () in
  Router.add_local r (hid "h1");
  Router.add_local r (sid "svc");
  let d = Dag.fallback ~intent:(sid "svc") ~via:[ hid "h1" ] in
  match Router.step r d ~ptr:0 with
  | Router.Deliver ptr ->
      Alcotest.(check int) "pointer at intent" (Dag.intent_index d) ptr
  | _ -> Alcotest.fail "owner of the intent must deliver"

let test_router_dead_end () =
  let r = Router.create () in
  let d = Dag.direct (sid "unknown") in
  match Router.step r d ~ptr:0 with
  | Router.Discard "dead-end" -> ()
  | _ -> Alcotest.fail "unroutable DAG must be discarded"

let test_packet_roundtrip_and_process () =
  let r = Router.create () in
  Router.add_route r (ad "ad1") 3;
  let d = Dag.fallback ~intent:(cid "obj") ~via:[ ad "ad1" ] in
  let pkt = Router.encode_packet d ~ptr:0 ~payload:"body" in
  (match Router.decode_packet pkt with
  | Ok (d', ptr, payload) ->
      Alcotest.(check int) "ptr" 0 ptr;
      Alcotest.(check string) "payload" "body" payload;
      Alcotest.(check bool) "intent survives" true
        (Xid.equal (Dag.intent d) (Dag.intent d'))
  | Error e -> Alcotest.fail e);
  match Router.process r pkt with
  | Router.Forward (3, _) -> ()
  | _ -> Alcotest.fail "process must route via the packet bytes"

let test_decode_rejects () =
  Alcotest.(check bool) "empty" true
    (Router.decode_packet (Dip_bitbuf.Bitbuf.of_string "") = Error "empty packet");
  Alcotest.(check bool) "garbage" true
    (match Router.decode_packet (Dip_bitbuf.Bitbuf.of_string "\x00\xff\xff") with
    | Error _ -> true
    | Ok _ -> false)

(* End-to-end: client → transit (routes ADs) → border (owns AD,
   routes HIDs) → host (owns HID + SID). *)
let test_xia_end_to_end () =
  let svc = sid "the-service" in
  let dag = Dag.fallback ~intent:svc ~via:[ ad "dest-ad"; hid "dest-host" ] in
  let sim = Sim.create () in
  let transit = Router.create () in
  Router.add_route transit (ad "dest-ad") 1;
  let border = Router.create () in
  Router.add_local border (ad "dest-ad");
  Router.add_route border (hid "dest-host") 1;
  let host = Router.create () in
  Router.add_local host (hid "dest-host");
  Router.add_local host svc;
  let t = Sim.add_node sim ~name:"transit" (Router.handler transit) in
  let b = Sim.add_node sim ~name:"border" (Router.handler border) in
  let h = Sim.add_node sim ~name:"host" (Router.handler host) in
  Sim.connect sim (t, 1) (b, 0);
  Sim.connect sim (b, 1) (h, 0);
  Sim.inject sim ~at:0.0 ~node:t ~port:0
    (Router.encode_packet dag ~ptr:0 ~payload:"request");
  Sim.run sim;
  match Sim.consumed sim with
  | [ (node, _, _) ] -> Alcotest.(check int) "delivered at host" h node
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let prop_dag_wire_roundtrip =
  QCheck.Test.make ~name:"xia: fallback DAG wire roundtrip" ~count:200
    QCheck.(int_range 0 6)
    (fun k ->
      let via = List.init k (fun i -> hid (Printf.sprintf "via%d" i)) in
      let d = Dag.fallback ~intent:(sid "s") ~via in
      let d' = Dag.of_wire (Dag.to_wire d) in
      Dag.node_count d = Dag.node_count d'
      && List.for_all
           (fun i -> Dag.successors d i = Dag.successors d' i)
           (List.init (Dag.node_count d + 1) Fun.id))

let () =
  Alcotest.run "xia"
    [
      ( "xid",
        [
          Alcotest.test_case "of_name deterministic" `Quick test_xid_of_name_deterministic;
          Alcotest.test_case "wire roundtrip" `Quick test_xid_wire_roundtrip;
          Alcotest.test_case "wire rejects" `Quick test_xid_wire_rejects;
          Alcotest.test_case "validation" `Quick test_xid_validation;
        ] );
      ( "dag",
        [
          Alcotest.test_case "direct" `Quick test_dag_direct;
          Alcotest.test_case "fallback shape" `Quick test_dag_fallback_shape;
          Alcotest.test_case "validation" `Quick test_dag_validation;
          Alcotest.test_case "wire roundtrip" `Quick test_dag_wire_roundtrip;
          Alcotest.test_case "wire rejects garbage" `Quick test_dag_wire_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_dag_wire_roundtrip;
        ] );
      ( "router",
        [
          Alcotest.test_case "direct route" `Quick test_router_direct_route;
          Alcotest.test_case "fallback order" `Quick test_router_fallback_order;
          Alcotest.test_case "pointer advances at owner" `Quick
            test_router_pointer_advances_at_owner;
          Alcotest.test_case "delivery at intent owner" `Quick
            test_router_delivery_at_intent_owner;
          Alcotest.test_case "dead end" `Quick test_router_dead_end;
          Alcotest.test_case "packet roundtrip/process" `Quick
            test_packet_roundtrip_and_process;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "three-router delivery" `Quick test_xia_end_to_end ] );
    ]
