(* Tests for the NetFence extension (F_cc, key 13) and the in-band
   telemetry extension (F_tel, key 14). *)

open Dip_core
module NF = Dip_netfence
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string

(* --- token bucket --- *)

let test_bucket_basic () =
  let b = NF.Token_bucket.create ~rate:1000.0 ~burst:500.0 ~now:0.0 in
  Alcotest.(check bool) "burst allows" true (NF.Token_bucket.consume b ~now:0.0 ~bytes:500);
  Alcotest.(check bool) "empty refuses" false (NF.Token_bucket.consume b ~now:0.0 ~bytes:1);
  (* After 0.1 s, 100 tokens have refilled. *)
  Alcotest.(check bool) "refill" true (NF.Token_bucket.consume b ~now:0.1 ~bytes:100);
  Alcotest.(check bool) "but no more" false (NF.Token_bucket.consume b ~now:0.1 ~bytes:1)

let test_bucket_burst_cap () =
  let b = NF.Token_bucket.create ~rate:1000.0 ~burst:200.0 ~now:0.0 in
  ignore (NF.Token_bucket.consume b ~now:0.0 ~bytes:200);
  (* A long idle period must not accumulate beyond the burst. *)
  Alcotest.(check (float 1e-6)) "capped at burst" 200.0
    (NF.Token_bucket.available b ~now:100.0)

let test_bucket_set_rate () =
  let b = NF.Token_bucket.create ~rate:100.0 ~burst:1000.0 ~now:0.0 in
  ignore (NF.Token_bucket.consume b ~now:0.0 ~bytes:1000);
  NF.Token_bucket.set_rate b 10000.0;
  Alcotest.(check bool) "faster refill" true
    (NF.Token_bucket.consume b ~now:0.1 ~bytes:900)

let test_bucket_validation () =
  Alcotest.(check bool) "bad rate" true
    (try ignore (NF.Token_bucket.create ~rate:0.0 ~burst:1.0 ~now:0.0); false
     with Invalid_argument _ -> true);
  let b = NF.Token_bucket.create ~rate:1.0 ~burst:1.0 ~now:5.0 in
  Alcotest.(check bool) "time backwards" true
    (try ignore (NF.Token_bucket.consume b ~now:4.0 ~bytes:1); false
     with Invalid_argument _ -> true)

(* --- AIMD --- *)

let test_aimd_additive_increase () =
  let a = NF.Aimd.create ~increase:100.0 ~min_rate:1.0 ~initial:1000.0 () in
  NF.Aimd.on_feedback a ~congested:false;
  NF.Aimd.on_feedback a ~congested:false;
  Alcotest.(check (float 1e-6)) "two increases" 1200.0 (NF.Aimd.rate a)

let test_aimd_multiplicative_decrease () =
  let a = NF.Aimd.create ~decrease:0.5 ~min_rate:1.0 ~initial:1000.0 () in
  NF.Aimd.on_feedback a ~congested:true;
  Alcotest.(check (float 1e-6)) "halved" 500.0 (NF.Aimd.rate a)

let test_aimd_bounds () =
  let a = NF.Aimd.create ~decrease:0.5 ~min_rate:400.0 ~max_rate:1100.0
      ~increase:1000.0 ~initial:1000.0 ()
  in
  NF.Aimd.on_feedback a ~congested:false;
  Alcotest.(check (float 1e-6)) "max clamp" 1100.0 (NF.Aimd.rate a);
  NF.Aimd.on_feedback a ~congested:true;
  NF.Aimd.on_feedback a ~congested:true;
  NF.Aimd.on_feedback a ~congested:true;
  Alcotest.(check (float 1e-6)) "min clamp" 400.0 (NF.Aimd.rate a)

let test_aimd_converges_after_congestion () =
  (* Sawtooth: repeated congestion must keep the rate bounded. *)
  let a = NF.Aimd.create ~min_rate:1.0 ~initial:1e6 () in
  for _ = 1 to 100 do
    NF.Aimd.on_feedback a ~congested:false;
    NF.Aimd.on_feedback a ~congested:true
  done;
  Alcotest.(check bool) "bounded" true (NF.Aimd.rate a < 1e6)

(* --- NetFence header --- *)

let test_nf_header_roundtrip () =
  let buf = Bitbuf.create NF.Header.size_bytes in
  NF.Header.init buf ~base:0 ~sender:77l ~rate:5000.0 ~timestamp:42l;
  Alcotest.(check int32) "sender" 77l (NF.Header.get_sender buf ~base:0);
  Alcotest.(check (float 1.0)) "rate" 5000.0 (NF.Header.get_rate buf ~base:0);
  Alcotest.(check int32) "timestamp" 42l (NF.Header.get_timestamp buf ~base:0);
  Alcotest.(check bool) "flag" true
    (NF.Header.get_flag buf ~base:0 = Some NF.Header.No_congestion)

let test_nf_header_mac () =
  let key = Dip_crypto.Prf.key_of_string "bottleneck-key-1" in
  let buf = Bitbuf.create NF.Header.size_bytes in
  NF.Header.init buf ~base:0 ~sender:1l ~rate:100.0 ~timestamp:9l;
  NF.Header.stamp ~key buf ~base:0;
  Alcotest.(check bool) "verifies" true (NF.Header.verify ~key buf ~base:0);
  (* Forging "no congestion" after the router marked it fails. *)
  NF.Header.set_flag buf ~base:0 NF.Header.Congestion;
  NF.Header.stamp ~key buf ~base:0;
  NF.Header.set_flag buf ~base:0 NF.Header.No_congestion;
  Alcotest.(check bool) "forged flag detected" false
    (NF.Header.verify ~key buf ~base:0)

(* --- policer --- *)

let policer ?mode () =
  NF.Policer.create ?mode ~key:(Dip_crypto.Prf.key_of_string "bottleneck-key-1") ()

let nf_buf ~rate =
  let buf = Bitbuf.create NF.Header.size_bytes in
  NF.Header.init buf ~base:0 ~sender:5l ~rate ~timestamp:0l;
  buf

let test_policer_pass_within_rate () =
  let p = policer () in
  let buf = nf_buf ~rate:100000.0 in
  Alcotest.(check bool) "pass" true
    (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1000 = NF.Policer.Pass);
  Alcotest.(check bool) "feedback stamped" true
    (NF.Header.verify ~key:(Dip_crypto.Prf.key_of_string "bottleneck-key-1")
       buf ~base:0)

let test_policer_marks_over_rate () =
  let p = policer () in
  let buf = nf_buf ~rate:100.0 (* tiny allowance *) in
  (* Exhaust the burst, then the next packet is marked. *)
  let rec drain n =
    if n > 0 then begin
      ignore (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1500);
      drain (n - 1)
    end
  in
  drain 20;
  Alcotest.(check bool) "marked" true
    (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1500 = NF.Policer.Marked);
  Alcotest.(check bool) "flag set" true
    (NF.Header.get_flag buf ~base:0 = Some NF.Header.Congestion)

let test_policer_drops_in_attack_mode () =
  let p = policer ~mode:NF.Policer.Police () in
  let buf = nf_buf ~rate:100.0 in
  let rec drain n =
    if n > 0 then begin
      ignore (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1500);
      drain (n - 1)
    end
  in
  drain 20;
  Alcotest.(check bool) "dropped" true
    (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1500 = NF.Policer.Dropped)

let test_policer_rate_ceiling () =
  (* A sender claiming an absurd rate is clamped to the ceiling. *)
  let p = NF.Policer.create ~rate_ceiling:1000.0 ~burst:1000.0
      ~key:(Dip_crypto.Prf.key_of_string "bottleneck-key-1") ()
  in
  let buf = nf_buf ~rate:1e9 in
  ignore (NF.Policer.police p buf ~base:0 ~now:0.0 ~size:1000);
  (* Burst exhausted; refill at the *ceiling* (1000 B/s), so after
     0.1 s only ~100 tokens exist. *)
  Alcotest.(check bool) "clamped" true
    (NF.Policer.police p buf ~base:0 ~now:0.1 ~size:1000 <> NF.Policer.Pass)

let test_policer_per_sender_isolation () =
  let p = policer ~mode:NF.Policer.Police () in
  let attacker = nf_buf ~rate:1000.0 in
  NF.Header.set_sender attacker ~base:0 666l;
  let legit = nf_buf ~rate:1000.0 in
  NF.Header.set_sender legit ~base:0 7l;
  (* The attacker floods and gets dropped … *)
  for _ = 1 to 50 do
    ignore (NF.Policer.police p attacker ~base:0 ~now:0.0 ~size:1500)
  done;
  Alcotest.(check bool) "attacker dropped" true
    (NF.Policer.police p attacker ~base:0 ~now:0.0 ~size:1500 = NF.Policer.Dropped);
  (* … while the legitimate sender still passes. *)
  Alcotest.(check bool) "legit passes" true
    (NF.Policer.police p legit ~base:0 ~now:0.0 ~size:1000 = NF.Policer.Pass);
  Alcotest.(check int) "two buckets" 2 (NF.Policer.sender_count p)

(* --- F_cc over the DIP engine --- *)

let cc_env ?mode () =
  let env = Env.create ~name:"bottleneck" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Env.set_netfence env (policer ?mode ());
  env

let test_fcc_forwards_within_rate () =
  let env = cc_env () in
  let pkt =
    Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender:5l
      ~rate:1e6 ~timestamp:0l ~payload:"x" ()
  in
  match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], _ -> ()
  | Engine.Dropped r, _ -> Alcotest.failf "dropped: %s" r
  | _ -> Alcotest.fail "expected forward"

let test_fcc_drops_flood_in_attack_mode () =
  let env = cc_env ~mode:NF.Policer.Police () in
  let pkt () =
    Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender:5l
      ~rate:100.0 ~timestamp:0l ~payload:(String.make 1400 'a') ()
  in
  let dropped = ref 0 in
  for _ = 1 to 30 do
    match Engine.process ~registry env ~now:0.0 ~ingress:0 (pkt ()) with
    | Engine.Dropped "cc-rate-exceeded", _ -> incr dropped
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "flood policed (%d dropped)" !dropped)
    true (!dropped > 15)

let test_fcc_noop_without_policer () =
  (* A transit router without a policer leaves the header alone. *)
  let env = Env.create ~name:"transit" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  let pkt =
    Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender:5l
      ~rate:100.0 ~timestamp:0l ~payload:"x" ()
  in
  match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
  | Engine.Forwarded [ 1 ], _ -> ()
  | _ -> Alcotest.fail "transit must forward untouched"

let test_fcc_aimd_closed_loop () =
  (* Sender + bottleneck closed loop: with AIMD reacting to the
     marked feedback, the sender's rate converges near the ceiling
     instead of staying at its initial over-claim. *)
  let ceiling = 10_000.0 in
  let env = Env.create ~name:"b" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Env.set_netfence env
    (NF.Policer.create ~rate_ceiling:ceiling ~burst:1500.0
       ~key:(Dip_crypto.Prf.key_of_string "bottleneck-key-1") ());
  let aimd = NF.Aimd.create ~increase:500.0 ~min_rate:100.0 ~initial:100_000.0 () in
  let size = 1000 in
  (* The sender transmits at its AIMD-allowed rate: the gap between
     packets is size / rate. Above the ceiling the bucket drains and
     packets get marked; below it they pass. *)
  let clock = ref 0.0 in
  let congested_feedback = ref false in
  for _ = 1 to 400 do
    clock := !clock +. (float_of_int size /. NF.Aimd.rate aimd);
    let now = !clock in
    let pkt =
      Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender:5l
        ~rate:(NF.Aimd.rate aimd) ~timestamp:0l
        ~payload:(String.make (size - 100) 'p') ()
    in
    (match Engine.process ~registry env ~now ~ingress:0 pkt with
    | Engine.Forwarded _, _ ->
        let view = Result.get_ok (Packet.parse pkt) in
        congested_feedback :=
          NF.Header.get_flag pkt ~base:view.Packet.loc_base
          = Some NF.Header.Congestion
    | _ -> congested_feedback := true);
    NF.Aimd.on_feedback aimd ~congested:!congested_feedback
  done;
  let final = NF.Aimd.rate aimd in
  Alcotest.(check bool)
    (Printf.sprintf "converged near ceiling (%.0f B/s)" final)
    true
    (final < 4.0 *. ceiling && final > 0.05 *. ceiling)

(* --- telemetry --- *)

let test_telemetry_region () =
  Alcotest.(check int) "size" 41 (Telemetry.region_size ~max_hops:5);
  Alcotest.(check int) "capacity" 5 (Telemetry.capacity ~region_bytes:41)

let test_telemetry_append_read () =
  let region_bytes = Telemetry.region_size ~max_hops:3 in
  let buf = Bitbuf.create region_bytes in
  Telemetry.init buf ~base:0;
  let r i = { Telemetry.node_id = i; timestamp = Int32.of_int (100 * i); queue_depth = i * 7 } in
  Alcotest.(check bool) "r1" true (Telemetry.append buf ~base:0 ~region_bytes (r 1));
  Alcotest.(check bool) "r2" true (Telemetry.append buf ~base:0 ~region_bytes (r 2));
  let records, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check int) "two records" 2 (List.length records);
  Alcotest.(check bool) "no overflow" false overflow;
  Alcotest.(check bool) "path order" true
    (List.map (fun x -> x.Telemetry.node_id) records = [ 1; 2 ])

let test_telemetry_overflow () =
  let region_bytes = Telemetry.region_size ~max_hops:1 in
  let buf = Bitbuf.create region_bytes in
  Telemetry.init buf ~base:0;
  let r = { Telemetry.node_id = 1; timestamp = 0l; queue_depth = 0 } in
  Alcotest.(check bool) "first fits" true (Telemetry.append buf ~base:0 ~region_bytes r);
  Alcotest.(check bool) "second refused" false (Telemetry.append buf ~base:0 ~region_bytes r);
  let records, overflow = Telemetry.read buf ~base:0 ~region_bytes in
  Alcotest.(check int) "one record" 1 (List.length records);
  Alcotest.(check bool) "overflow flagged" true overflow

let test_ftel_collects_path () =
  (* Three DIP routers append their identities; the packet arrives
     with the whole path recorded. *)
  let pkt =
    Realize.ipv4_telemetry ~max_hops:4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1")
      ~payload:"t" ()
  in
  List.iter
    (fun node_id ->
      let env = Env.create ~name:(Printf.sprintf "r%d" node_id) () in
      Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
      Env.set_telemetry_identity env ~node_id ~queue_depth:(fun () -> node_id * 10);
      match Engine.process ~registry env ~now:(float_of_int node_id) ~ingress:0 pkt with
      | Engine.Forwarded _, _ -> ()
      | Engine.Dropped r, _ -> Alcotest.failf "r%d dropped: %s" node_id r
      | _ -> Alcotest.fail "expected forward")
    [ 1; 2; 3 ];
  let view = Result.get_ok (Packet.parse pkt) in
  let region_bytes = Telemetry.region_size ~max_hops:4 in
  let records, overflow =
    Telemetry.read pkt ~base:view.Packet.loc_base ~region_bytes
  in
  Alcotest.(check bool) "no overflow" false overflow;
  Alcotest.(check (list int)) "node ids in path order" [ 1; 2; 3 ]
    (List.map (fun r -> r.Telemetry.node_id) records);
  Alcotest.(check (list int)) "queue depths" [ 10; 20; 30 ]
    (List.map (fun r -> r.Telemetry.queue_depth) records)

let test_ftel_never_blocks () =
  (* Overflowing telemetry must not stop forwarding. *)
  let pkt =
    Realize.ipv4_telemetry ~max_hops:1 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1")
      ~payload:"t" ()
  in
  let fwd i =
    let env = Env.create ~name:(Printf.sprintf "r%d" i) () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    Env.set_telemetry_identity env ~node_id:i ~queue_depth:(fun () -> 0);
    match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
    | Engine.Forwarded _, _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "hop 1" true (fwd 1);
  Alcotest.(check bool) "hop 2 still forwards" true (fwd 2);
  let view = Result.get_ok (Packet.parse pkt) in
  let _, overflow =
    Telemetry.read pkt ~base:view.Packet.loc_base
      ~region_bytes:(Telemetry.region_size ~max_hops:1)
  in
  Alcotest.(check bool) "overflow recorded" true overflow

(* --- properties --- *)

let prop_bucket_never_negative =
  QCheck.Test.make ~name:"token bucket: tokens never negative" ~count:300
    QCheck.(small_list (pair (int_range 0 1000) (int_range 1 2000)))
    (fun events ->
      let b = NF.Token_bucket.create ~rate:1000.0 ~burst:1500.0 ~now:0.0 in
      let t = ref 0.0 in
      List.for_all
        (fun (dt, bytes) ->
          t := !t +. (float_of_int dt /. 1000.0);
          ignore (NF.Token_bucket.consume b ~now:!t ~bytes);
          NF.Token_bucket.available b ~now:!t >= 0.0)
        events)

let prop_aimd_within_bounds =
  QCheck.Test.make ~name:"aimd: rate stays within bounds" ~count:300
    QCheck.(small_list bool)
    (fun feedback ->
      let a = NF.Aimd.create ~min_rate:10.0 ~max_rate:1000.0 ~initial:100.0 () in
      List.for_all
        (fun congested ->
          NF.Aimd.on_feedback a ~congested;
          NF.Aimd.rate a >= 10.0 && NF.Aimd.rate a <= 1000.0)
        feedback)

let () =
  Alcotest.run "netfence"
    [
      ( "token-bucket",
        [
          Alcotest.test_case "basic" `Quick test_bucket_basic;
          Alcotest.test_case "burst cap" `Quick test_bucket_burst_cap;
          Alcotest.test_case "set rate" `Quick test_bucket_set_rate;
          Alcotest.test_case "validation" `Quick test_bucket_validation;
          QCheck_alcotest.to_alcotest prop_bucket_never_negative;
        ] );
      ( "aimd",
        [
          Alcotest.test_case "additive increase" `Quick test_aimd_additive_increase;
          Alcotest.test_case "multiplicative decrease" `Quick test_aimd_multiplicative_decrease;
          Alcotest.test_case "bounds" `Quick test_aimd_bounds;
          Alcotest.test_case "sawtooth bounded" `Quick test_aimd_converges_after_congestion;
          QCheck_alcotest.to_alcotest prop_aimd_within_bounds;
        ] );
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_nf_header_roundtrip;
          Alcotest.test_case "feedback MAC" `Quick test_nf_header_mac;
        ] );
      ( "policer",
        [
          Alcotest.test_case "pass within rate" `Quick test_policer_pass_within_rate;
          Alcotest.test_case "marks over rate" `Quick test_policer_marks_over_rate;
          Alcotest.test_case "drops in attack mode" `Quick test_policer_drops_in_attack_mode;
          Alcotest.test_case "rate ceiling" `Quick test_policer_rate_ceiling;
          Alcotest.test_case "per-sender isolation" `Quick test_policer_per_sender_isolation;
        ] );
      ( "f-cc",
        [
          Alcotest.test_case "forwards within rate" `Quick test_fcc_forwards_within_rate;
          Alcotest.test_case "drops flood" `Quick test_fcc_drops_flood_in_attack_mode;
          Alcotest.test_case "noop without policer" `Quick test_fcc_noop_without_policer;
          Alcotest.test_case "AIMD closed loop" `Quick test_fcc_aimd_closed_loop;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "region sizing" `Quick test_telemetry_region;
          Alcotest.test_case "append/read" `Quick test_telemetry_append_read;
          Alcotest.test_case "overflow" `Quick test_telemetry_overflow;
          Alcotest.test_case "F_tel collects path" `Quick test_ftel_collects_path;
          Alcotest.test_case "F_tel never blocks" `Quick test_ftel_never_blocks;
        ] );
    ]
