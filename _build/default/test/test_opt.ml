(* Tests for the OPT substrate: DRKey derivation, the 544-bit header
   layout implied by the paper's FN triples, and the
   source/router/destination tag chain. *)

open Dip_opt
module Bitbuf = Dip_bitbuf.Bitbuf

let g = Dip_stdext.Prng.create 1234L
let secrets n = List.init n (fun _ -> Drkey.secret_gen g)

let test_drkey_deterministic () =
  let s = Drkey.secret_of_string "router-secret-00" in
  Alcotest.(check string) "same session, same key"
    (Drkey.derive s ~session_id:7L)
    (Drkey.derive s ~session_id:7L);
  Alcotest.(check bool) "sessions separate" true
    (Drkey.derive s ~session_id:7L <> Drkey.derive s ~session_id:8L)

let test_drkey_secrets_separate () =
  let a = Drkey.secret_of_string "router-secret-00" in
  let b = Drkey.secret_of_string "router-secret-01" in
  Alcotest.(check bool) "routers derive different keys" true
    (Drkey.derive a ~session_id:7L <> Drkey.derive b ~session_id:7L)

let test_drkey_session_keys_order () =
  let ss = secrets 3 in
  let ks = Drkey.session_keys ss ~session_id:9L in
  Alcotest.(check int) "arity" 3 (List.length ks);
  List.iteri
    (fun i s ->
      Alcotest.(check string) "path order" (Drkey.derive s ~session_id:9L)
        (List.nth ks i))
    ss

let test_header_sizes () =
  (* hops=1 must give exactly 68 bytes = 544 bits, the F_ver span of
     the paper's key-9 triple, and the value that makes Table 2's
     OPT row equal 98. *)
  Alcotest.(check int) "one hop" 68 (Header.size_bytes ~hops:1);
  Alcotest.(check int) "one hop bits" 544 (Header.size_bits ~hops:1);
  Alcotest.(check int) "per extra hop" 16
    (Header.size_bytes ~hops:2 - Header.size_bytes ~hops:1)

let test_header_field_layout_matches_triples () =
  (* The FN triples of paper §3 pin the layout. *)
  let open Dip_bitbuf.Field in
  Alcotest.(check bool) "F_parm (128,128)" true
    (equal Header.session_id_field (v ~off_bits:128 ~len_bits:128));
  Alcotest.(check bool) "F_MAC (0,416)" true
    (equal Header.mac_span_field (v ~off_bits:0 ~len_bits:416));
  Alcotest.(check bool) "F_mark (288,128)" true
    (equal Header.pvf_field (v ~off_bits:288 ~len_bits:128));
  Alcotest.(check bool) "F_ver (0,544)" true
    (equal (Header.ver_span_field ~hops:1) (v ~off_bits:0 ~len_bits:544))

let test_header_accessors () =
  let buf = Bitbuf.create (Header.size_bytes ~hops:2) in
  Header.set_session_id buf ~base:0 0xDEADL;
  Header.set_timestamp buf ~base:0 123456l;
  Header.set_pvf buf ~base:0 (String.make 16 'P');
  Header.set_opv buf ~base:0 2 (String.make 16 'Q');
  Alcotest.(check int64) "session id" 0xDEADL (Header.get_session_id buf ~base:0);
  Alcotest.(check int32) "timestamp" 123456l (Header.get_timestamp buf ~base:0);
  Alcotest.(check string) "pvf" (String.make 16 'P') (Header.get_pvf buf ~base:0);
  Alcotest.(check string) "opv2" (String.make 16 'Q') (Header.get_opv buf ~base:0 2);
  Alcotest.(check string) "opv1 untouched" (String.make 16 '\000')
    (Header.get_opv buf ~base:0 1)

let test_header_accessors_at_base () =
  (* The same region embedded 30 bytes into a larger packet — the DIP
     FN-locations case. *)
  let buf = Bitbuf.create (30 + Header.size_bytes ~hops:1) in
  Header.set_session_id buf ~base:30 99L;
  Alcotest.(check int64) "offset region" 99L (Header.get_session_id buf ~base:30);
  Alcotest.(check int) "nothing before base" 0 (Bitbuf.get_uint8 buf 29)

let setup ?(alg = Protocol.EM2) ?(hops = 3) ?(payload = "the data") () =
  let path_secrets = secrets hops in
  let dst_secret = Drkey.secret_gen g in
  let session_id = 0x1122334455667788L in
  let session_keys = Drkey.session_keys path_secrets ~session_id in
  let dest_key = Drkey.derive dst_secret ~session_id in
  let buf = Bitbuf.create (Header.size_bytes ~hops) in
  Protocol.source_init ~alg buf ~base:0 ~hops ~session_id ~timestamp:42l
    ~dest_key ~payload;
  (buf, session_keys, dest_key)

let run_routers ?(alg = Protocol.EM2) buf session_keys =
  List.iteri
    (fun i key -> Protocol.router_update ~alg buf ~base:0 ~hop:(i + 1) ~key)
    session_keys

let test_opt_valid_chain () =
  let payload = "the data" in
  let buf, session_keys, dest_key = setup ~payload () in
  run_routers buf session_keys;
  match
    Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key
      ~payload:(Some payload)
  with
  | Ok () -> ()
  | Error f -> Alcotest.failf "valid chain rejected: %a" Protocol.pp_failure f

let test_opt_detects_payload_tamper () =
  let buf, session_keys, dest_key = setup ~payload:"genuine" () in
  run_routers buf session_keys;
  match
    Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key
      ~payload:(Some "tampered")
  with
  | Error Protocol.Bad_data_hash -> ()
  | _ -> Alcotest.fail "tampered payload must fail the data hash"

let test_opt_detects_skipped_router () =
  (* A path that skips router 2 (source validation of the path). *)
  let buf, session_keys, dest_key = setup () in
  (match session_keys with
  | [ k1; _; k3 ] ->
      Protocol.router_update buf ~base:0 ~hop:1 ~key:k1;
      Protocol.router_update buf ~base:0 ~hop:3 ~key:k3
  | _ -> assert false);
  match Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key ~payload:None with
  | Error (Protocol.Bad_opv 2) -> ()
  | Error f -> Alcotest.failf "unexpected failure: %a" Protocol.pp_failure f
  | Ok () -> Alcotest.fail "skipped router must be detected"

let test_opt_detects_wrong_router_key () =
  (* An off-path router (wrong key) performs hop 2's update. *)
  let buf, session_keys, dest_key = setup () in
  let rogue = Drkey.derive (Drkey.secret_gen g) ~session_id:1L in
  (match session_keys with
  | [ k1; _; k3 ] ->
      Protocol.router_update buf ~base:0 ~hop:1 ~key:k1;
      Protocol.router_update buf ~base:0 ~hop:2 ~key:rogue;
      Protocol.router_update buf ~base:0 ~hop:3 ~key:k3
  | _ -> assert false);
  match Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key ~payload:None with
  | Error (Protocol.Bad_opv 2 | Protocol.Bad_opv 3 | Protocol.Bad_pvf) -> ()
  | Error Protocol.Bad_data_hash -> Alcotest.fail "wrong failure"
  | Error (Protocol.Bad_opv _) -> ()
  | Ok () -> Alcotest.fail "off-path router must be detected"

let test_opt_detects_reordered_path () =
  (* Routers 1 and 2 swap their updates: order must matter. *)
  let buf, session_keys, dest_key = setup () in
  (match session_keys with
  | [ k1; k2; k3 ] ->
      Protocol.router_update buf ~base:0 ~hop:1 ~key:k2;
      Protocol.router_update buf ~base:0 ~hop:2 ~key:k1;
      Protocol.router_update buf ~base:0 ~hop:3 ~key:k3
  | _ -> assert false);
  match Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key ~payload:None with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "path reordering must be detected"

let test_opt_detects_tag_corruption () =
  let buf, session_keys, dest_key = setup () in
  run_routers buf session_keys;
  (* Flip one bit of OPV 2. *)
  let opv = Bytes.of_string (Header.get_opv buf ~base:0 2) in
  Bytes.set opv 5 (Char.chr (Char.code (Bytes.get opv 5) lxor 0x80));
  Header.set_opv buf ~base:0 2 (Bytes.to_string opv);
  match Protocol.verify buf ~base:0 ~hops:3 ~session_keys ~dest_key ~payload:None with
  | Error (Protocol.Bad_opv 2) -> ()
  | _ -> Alcotest.fail "corrupted OPV must be pinpointed"

let test_opt_single_hop_paper_config () =
  (* "we use one hop for evaluation" (§4.1). *)
  let buf, session_keys, dest_key = setup ~hops:1 ~payload:"p" () in
  run_routers buf session_keys;
  Alcotest.(check int) "wire size" 68 (Bitbuf.length buf);
  match
    Protocol.verify buf ~base:0 ~hops:1 ~session_keys ~dest_key ~payload:(Some "p")
  with
  | Ok () -> ()
  | Error f -> Alcotest.failf "1-hop chain rejected: %a" Protocol.pp_failure f

let test_opt_aes_variant () =
  (* The AES ablation (§4.1's resubmit discussion) must be a working
     cipher swap: valid chains verify, cross-cipher chains do not. *)
  let payload = "x" in
  let buf, session_keys, dest_key = setup ~alg:Protocol.AES ~payload () in
  run_routers ~alg:Protocol.AES buf session_keys;
  (match
     Protocol.verify ~alg:Protocol.AES buf ~base:0 ~hops:3 ~session_keys
       ~dest_key ~payload:(Some payload)
   with
  | Ok () -> ()
  | Error f -> Alcotest.failf "AES chain rejected: %a" Protocol.pp_failure f);
  match
    Protocol.verify ~alg:Protocol.EM2 buf ~base:0 ~hops:3 ~session_keys
      ~dest_key ~payload:None
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cipher mismatch must not verify"

let test_opt_verify_arity_guard () =
  let buf, session_keys, dest_key = setup () in
  run_routers buf session_keys;
  Alcotest.(check bool) "key arity enforced" true
    (try
       ignore
         (Protocol.verify buf ~base:0 ~hops:3
            ~session_keys:(List.tl session_keys) ~dest_key ~payload:None);
       false
     with Invalid_argument _ -> true)

let prop_opt_random_corruption_detected =
  QCheck.Test.make ~name:"opt: any single-byte corruption of the region is caught"
    ~count:100
    QCheck.(int_range 0 67)
    (fun pos ->
      let payload = "payload" in
      let buf, session_keys, dest_key = setup ~hops:1 ~payload () in
      run_routers buf session_keys;
      let before = Bitbuf.get_uint8 buf pos in
      Bitbuf.set_uint8 buf pos (before lxor 0x01);
      match
        Protocol.verify buf ~base:0 ~hops:1 ~session_keys ~dest_key
          ~payload:(Some payload)
      with
      | Error _ -> true
      | Ok () -> false)

let () =
  Alcotest.run "opt"
    [
      ( "drkey",
        [
          Alcotest.test_case "deterministic" `Quick test_drkey_deterministic;
          Alcotest.test_case "secrets separate" `Quick test_drkey_secrets_separate;
          Alcotest.test_case "session keys order" `Quick test_drkey_session_keys_order;
        ] );
      ( "header",
        [
          Alcotest.test_case "sizes" `Quick test_header_sizes;
          Alcotest.test_case "layout matches FN triples" `Quick
            test_header_field_layout_matches_triples;
          Alcotest.test_case "accessors" `Quick test_header_accessors;
          Alcotest.test_case "accessors at base" `Quick test_header_accessors_at_base;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "valid chain" `Quick test_opt_valid_chain;
          Alcotest.test_case "payload tamper" `Quick test_opt_detects_payload_tamper;
          Alcotest.test_case "skipped router" `Quick test_opt_detects_skipped_router;
          Alcotest.test_case "wrong router key" `Quick test_opt_detects_wrong_router_key;
          Alcotest.test_case "reordered path" `Quick test_opt_detects_reordered_path;
          Alcotest.test_case "tag corruption" `Quick test_opt_detects_tag_corruption;
          Alcotest.test_case "single hop (paper config)" `Quick
            test_opt_single_hop_paper_config;
          Alcotest.test_case "AES variant" `Quick test_opt_aes_variant;
          Alcotest.test_case "verify arity guard" `Quick test_opt_verify_arity_guard;
          QCheck_alcotest.to_alcotest prop_opt_random_corruption_detected;
        ] );
    ]
