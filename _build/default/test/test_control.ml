(* Tests for the runtime control plane: authenticated FN upgrades,
   replay protection, and the end-to-end dynamic-policy scenario the
   paper sketches (§2.4, §5). *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Sim = Dip_netsim.Sim
module Name = Dip_tables.Name

let controller_key = Dip_crypto.Prf.key_of_string "controller-key-0"
let wrong_key = Dip_crypto.Prf.key_of_string "not-the-operator"

let fresh () =
  let env = Env.create ~name:"r" () in
  let master = Ops.default_registry () in
  let registry = Registry.restrict master (Registry.supported master) in
  (env, registry, master, Control.initial_state ())

let test_encode_is_control () =
  let pkt = Control.encode ~key:controller_key ~seq:1L Control.Disable_pass in
  Alcotest.(check bool) "control" true (Control.is_control pkt);
  Alcotest.(check bool) "data packet is not" false
    (Control.is_control
       (Realize.ndn_interest ~name:(Name.of_string "/a") ~payload:"" ()));
  (* Control and error notifications use distinct next-header codes. *)
  Alcotest.(check bool) "distinct from ICMP-like" false
    (Errors.is_control pkt)

let test_roundtrip_commands () =
  let env, registry, master, state = fresh () in
  List.iteri
    (fun i cmd ->
      let pkt = Control.encode ~key:controller_key ~seq:(Int64.of_int (i + 1)) cmd in
      match Control.apply ~key:controller_key ~state ~env ~registry ~master pkt with
      | Ok applied ->
          Alcotest.(check bool)
            (Format.asprintf "roundtrip %a" Control.pp_command cmd)
            true
            (Control.equal_command cmd applied)
      | Error e -> Alcotest.failf "command rejected: %s" e)
    [
      Control.Disable_op Opkey.F_pit;
      Control.Enable_op Opkey.F_pit;
      Control.Enable_pass (String.make 16 'p');
      Control.Disable_pass;
    ]

let test_enable_disable_op () =
  let env, registry, master, state = fresh () in
  let apply seq cmd =
    Control.apply ~key:controller_key ~state ~env ~registry ~master
      (Control.encode ~key:controller_key ~seq cmd)
  in
  Alcotest.(check bool) "initially supported" true
    (Registry.supports registry Opkey.F_mac);
  ignore (apply 1L (Control.Disable_op Opkey.F_mac));
  Alcotest.(check bool) "disabled" false (Registry.supports registry Opkey.F_mac);
  ignore (apply 2L (Control.Enable_op Opkey.F_mac));
  Alcotest.(check bool) "re-enabled from the master image" true
    (Registry.supports registry Opkey.F_mac)

let test_enable_pass_via_control () =
  let env, registry, master, state = fresh () in
  Alcotest.(check bool) "off" false env.Env.pass_enabled;
  (match
     Control.apply ~key:controller_key ~state ~env ~registry ~master
       (Control.encode ~key:controller_key ~seq:1L
          (Control.Enable_pass (String.make 16 'k')))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "on" true env.Env.pass_enabled

let test_policer_mode_via_control () =
  let env, registry, master, state = fresh () in
  (* Without a policer the command is refused. *)
  (match
     Control.apply ~key:controller_key ~state ~env ~registry ~master
       (Control.encode ~key:controller_key ~seq:1L Control.Policer_mode_police)
   with
  | Error "no policer installed" -> ()
  | _ -> Alcotest.fail "must refuse without a policer");
  Env.set_netfence env
    (Dip_netfence.Policer.create ~key:(Dip_crypto.Prf.key_of_string "bottleneck-key-0") ());
  (match
     Control.apply ~key:controller_key ~state ~env ~registry ~master
       (Control.encode ~key:controller_key ~seq:2L Control.Policer_mode_police)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match env.Env.netfence with
  | Some p ->
      Alcotest.(check bool) "attack mode" true
        (Dip_netfence.Policer.mode p = Dip_netfence.Policer.Police)
  | None -> Alcotest.fail "policer vanished"

let test_rejects_wrong_key () =
  let env, registry, master, state = fresh () in
  let forged = Control.encode ~key:wrong_key ~seq:1L Control.Disable_pass in
  match Control.apply ~key:controller_key ~state ~env ~registry ~master forged with
  | Error "control MAC verification failed" -> ()
  | _ -> Alcotest.fail "forged command must be rejected"

let test_rejects_replay () =
  let env, registry, master, state = fresh () in
  let pkt = Control.encode ~key:controller_key ~seq:5L Control.Disable_pass in
  (match Control.apply ~key:controller_key ~state ~env ~registry ~master pkt with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* The same packet again, and an older sequence number, are stale. *)
  (match Control.apply ~key:controller_key ~state ~env ~registry ~master pkt with
  | Error "replayed or stale command" -> ()
  | _ -> Alcotest.fail "replay must be rejected");
  let older = Control.encode ~key:controller_key ~seq:4L Control.Disable_pass in
  match Control.apply ~key:controller_key ~state ~env ~registry ~master older with
  | Error "replayed or stale command" -> ()
  | _ -> Alcotest.fail "stale sequence must be rejected"

let test_rejects_tampered_command () =
  let env, registry, master, state = fresh () in
  let pkt = Control.encode ~key:controller_key ~seq:1L (Control.Disable_op Opkey.F_mac) in
  (* Flip a byte of the command body. *)
  let pos = Bitbuf.length pkt - 18 in
  Bitbuf.set_uint8 pkt pos (Bitbuf.get_uint8 pkt pos lxor 1);
  match Control.apply ~key:controller_key ~state ~env ~registry ~master pkt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered command must be rejected"

(* End to end over the simulator: the operator upgrades a router from
   plain IP to OPT support at runtime — "support new services by only
   upgrading FNs" (§5). *)
let test_runtime_upgrade_scenario () =
  let master = Ops.default_registry () in
  let registry =
    Registry.restrict master [ Opkey.F_32_match; Opkey.F_source ]
  in
  let env = Env.create ~name:"r" () in
  Env.set_opt_identity env
    ~secret:(Dip_opt.Drkey.secret_of_string "router-secret-00") ~hop:1;
  Dip_ip.Ipv4.add_route env.Env.v4_routes
    (Dip_tables.Ipaddr.Prefix.of_string "0.0.0.0/0") 1;
  let sim = Sim.create () in
  let node =
    Sim.add_node sim ~name:"r"
      (Control.handler ~key:controller_key ~env ~registry ~master
         (Engine.handler ~registry env))
  in
  let sink = Sim.add_node sim ~name:"sink" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Consume ]) in
  Sim.connect sim (node, 0) (sink, 0);
  let opt_pkt () =
    Realize.opt ~hops:1 ~session_id:1L ~timestamp:0l
      ~dest_key:(String.make 16 'k') ~payload:"" ()
  in
  (* Before the upgrade: OPT packets bounce with FN-unsupported. *)
  Sim.inject sim ~at:0.0 ~node ~port:0 (opt_pkt ());
  Sim.run sim;
  Alcotest.(check int) "unsupported before upgrade" 1
    (Dip_netsim.Stats.Counters.get env.Env.counters "dip.unsupported.F_parm");
  (* The operator pushes Enable_op commands. *)
  List.iteri
    (fun i k ->
      Sim.inject sim ~at:(1.0 +. float_of_int i) ~node ~port:0
        (Control.encode ~key:controller_key ~seq:(Int64.of_int (i + 1))
           (Control.Enable_op k)))
    [ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ];
  Sim.run sim;
  Alcotest.(check int) "three commands applied" 3
    (Dip_netsim.Stats.Counters.get env.Env.counters "control.applied");
  (* After the upgrade the same packet is processed. Note: OPT alone
     proposes no route, so the engine now reports no-decision rather
     than unsupported — the FN executed. *)
  Sim.inject sim ~at:10.0 ~node ~port:0 (opt_pkt ());
  Sim.run sim;
  Alcotest.(check int) "no new unsupported" 1
    (Dip_netsim.Stats.Counters.get env.Env.counters "dip.unsupported.F_parm")

let () =
  Alcotest.run "control"
    [
      ( "codec",
        [
          Alcotest.test_case "is_control" `Quick test_encode_is_control;
          Alcotest.test_case "command roundtrip" `Quick test_roundtrip_commands;
        ] );
      ( "execution",
        [
          Alcotest.test_case "enable/disable op" `Quick test_enable_disable_op;
          Alcotest.test_case "enable pass" `Quick test_enable_pass_via_control;
          Alcotest.test_case "policer mode" `Quick test_policer_mode_via_control;
        ] );
      ( "security",
        [
          Alcotest.test_case "wrong key" `Quick test_rejects_wrong_key;
          Alcotest.test_case "replay" `Quick test_rejects_replay;
          Alcotest.test_case "tampered" `Quick test_rejects_tampered_command;
        ] );
      ( "scenario",
        [ Alcotest.test_case "runtime FN upgrade" `Quick test_runtime_upgrade_scenario ] );
    ]
