(* Unit and property tests for the bit-granular packet buffer, the
   substrate every Field Operation reads from and writes to. *)

open Dip_bitbuf

let field ~off ~len = Field.v ~off_bits:off ~len_bits:len

let test_field_validation () =
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Field.v: negative offset") (fun () ->
      ignore (field ~off:(-1) ~len:8));
  Alcotest.check_raises "zero length"
    (Invalid_argument "Field.v: non-positive length") (fun () ->
      ignore (field ~off:0 ~len:0))

let test_field_byte_span () =
  Alcotest.(check (pair int int)) "aligned" (1, 2)
    (Field.byte_span (field ~off:8 ~len:16));
  Alcotest.(check (pair int int)) "straddles" (0, 2)
    (Field.byte_span (field ~off:4 ~len:8));
  Alcotest.(check (pair int int)) "single bit" (2, 1)
    (Field.byte_span (field ~off:23 ~len:1))

let test_field_alignment () =
  Alcotest.(check bool) "aligned" true (Field.is_byte_aligned (field ~off:16 ~len:32));
  Alcotest.(check bool) "odd offset" false (Field.is_byte_aligned (field ~off:3 ~len:8));
  Alcotest.(check bool) "odd length" false (Field.is_byte_aligned (field ~off:8 ~len:5))

let test_field_overlap () =
  let a = field ~off:0 ~len:32 and b = field ~off:16 ~len:32 in
  let c = field ~off:32 ~len:8 in
  Alcotest.(check bool) "a/b overlap" true (Field.overlaps a b);
  Alcotest.(check bool) "a/c adjacent, no overlap" false (Field.overlaps a c);
  Alcotest.(check bool) "symmetric" true (Field.overlaps b a)

let test_field_contains () =
  let outer = field ~off:0 ~len:544 and inner = field ~off:288 ~len:128 in
  Alcotest.(check bool) "OPT ver contains mark" true (Field.contains outer inner);
  Alcotest.(check bool) "not reversed" false (Field.contains inner outer)

let test_bits_roundtrip () =
  let b = Bitbuf.create 4 in
  Bitbuf.set_bit b 0 true;
  Bitbuf.set_bit b 7 true;
  Bitbuf.set_bit b 31 true;
  Alcotest.(check bool) "bit 0" true (Bitbuf.get_bit b 0);
  Alcotest.(check bool) "bit 1 untouched" false (Bitbuf.get_bit b 1);
  Alcotest.(check bool) "bit 7" true (Bitbuf.get_bit b 7);
  Alcotest.(check bool) "bit 31" true (Bitbuf.get_bit b 31);
  (* MSB-first layout: bits 0 and 7 of byte 0 are 0x81. *)
  Alcotest.(check int) "byte 0" 0x81 (Bitbuf.get_uint8 b 0)

let test_uint_aligned () =
  let b = Bitbuf.create 8 in
  Bitbuf.set_uint b (field ~off:0 ~len:32) 0xDEADBEEFL;
  Alcotest.(check int64) "read back" 0xDEADBEEFL
    (Bitbuf.get_uint b (field ~off:0 ~len:32));
  Alcotest.(check int32) "byte accessor agrees" 0xDEADBEEFl
    (Bitbuf.get_uint32 b 0)

let test_uint_unaligned () =
  let b = Bitbuf.create 8 in
  (* A 12-bit field at bit 5 straddles three nibbles. *)
  let f = field ~off:5 ~len:12 in
  Bitbuf.set_uint b f 0xABCL;
  Alcotest.(check int64) "read back" 0xABCL (Bitbuf.get_uint b f);
  (* Neighbours untouched. *)
  Alcotest.(check int64) "bits before" 0L (Bitbuf.get_uint b (field ~off:0 ~len:5));
  Alcotest.(check int64) "bits after" 0L (Bitbuf.get_uint b (field ~off:17 ~len:47))

let test_uint_width_guard () =
  let b = Bitbuf.create 4 in
  Alcotest.check_raises "value too wide"
    (Invalid_argument "Bitbuf.set_uint: value exceeds field width") (fun () ->
      Bitbuf.set_uint b (field ~off:0 ~len:4) 16L)

let test_uint_bounds_guard () =
  let b = Bitbuf.create 2 in
  Alcotest.(check bool) "oob read raises" true
    (try
       ignore (Bitbuf.get_uint b (field ~off:10 ~len:8));
       false
     with Invalid_argument _ -> true)

let test_uint64_full_width () =
  let b = Bitbuf.create 9 in
  let f = field ~off:3 ~len:64 in
  Bitbuf.set_uint b f (-1L);
  Alcotest.(check int64) "all ones survive" (-1L) (Bitbuf.get_uint b f);
  Alcotest.(check int64) "prefix clean" 0L (Bitbuf.get_uint b (field ~off:0 ~len:3))

let test_byte_accessors () =
  let b = Bitbuf.create 16 in
  Bitbuf.set_uint16 b 2 0xCAFE;
  Bitbuf.set_uint64 b 8 0x1122334455667788L;
  Alcotest.(check int) "u16" 0xCAFE (Bitbuf.get_uint16 b 2);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Bitbuf.get_uint64 b 8)

let test_field_string_aligned () =
  let b = Bitbuf.create 16 in
  let f = field ~off:32 ~len:64 in
  Bitbuf.set_field b f "ABCDEFGH";
  Alcotest.(check string) "read back" "ABCDEFGH" (Bitbuf.get_field b f)

let test_field_string_unaligned () =
  let b = Bitbuf.create 16 in
  let f = field ~off:3 ~len:20 in
  (* 20 bits -> 3 bytes, last 4 bits must be zero padding. *)
  let v = "\xAB\xCD\xE0" in
  Bitbuf.set_field b f v;
  Alcotest.(check string) "read back" v (Bitbuf.get_field b f)

let test_field_string_padding_guard () =
  let b = Bitbuf.create 16 in
  let f = field ~off:0 ~len:20 in
  Alcotest.check_raises "dirty padding"
    (Invalid_argument "Bitbuf: non-zero padding bits in unaligned field value")
    (fun () -> Bitbuf.set_field b f "\xAB\xCD\xEF")

let test_xor_field () =
  let b = Bitbuf.create 8 in
  let f = field ~off:16 ~len:32 in
  Bitbuf.set_field b f "\x01\x02\x03\x04";
  Bitbuf.xor_field b f "\xFF\x00\xFF\x00";
  Alcotest.(check string) "xored" "\xfe\x02\xfc\x04" (Bitbuf.get_field b f);
  Bitbuf.xor_field b f "\xFF\x00\xFF\x00";
  Alcotest.(check string) "xor is involutive" "\x01\x02\x03\x04"
    (Bitbuf.get_field b f)

let test_equal_field () =
  let b = Bitbuf.create 4 in
  let f = field ~off:0 ~len:32 in
  Bitbuf.set_field b f "dip!";
  Alcotest.(check bool) "match" true (Bitbuf.equal_field b f "dip!");
  Alcotest.(check bool) "mismatch" false (Bitbuf.equal_field b f "dip?")

let test_copy_independent () =
  let a = Bitbuf.create 4 in
  let b = Bitbuf.copy a in
  Bitbuf.set_uint8 b 0 0xFF;
  Alcotest.(check int) "original untouched" 0 (Bitbuf.get_uint8 a 0)

let test_blit_check () =
  let src = Bitbuf.of_string "0123456789" in
  let dst = Bitbuf.create 10 in
  Bitbuf.blit ~src ~src_off:2 ~dst ~dst_off:5 ~len:3;
  Alcotest.(check string) "blitted" "\000\000\000\000\000234\000\000"
    (Bitbuf.to_string dst)

(* QCheck properties. *)

let arb_field_in bits =
  QCheck.make
    ~print:(fun (o, l) -> Printf.sprintf "(off:%d,len:%d)" o l)
    QCheck.Gen.(
      let* len = int_range 1 (min 64 bits) in
      let* off = int_range 0 (bits - len) in
      return (off, len))

let prop_uint_roundtrip =
  QCheck.Test.make ~name:"bitbuf: set_uint/get_uint roundtrip" ~count:1000
    QCheck.(pair (arb_field_in 256) int64)
    (fun ((off, len), raw) ->
      let f = field ~off ~len in
      let v =
        if len = 64 then raw
        else Int64.logand raw (Int64.sub (Int64.shift_left 1L len) 1L)
      in
      let b = Bitbuf.create 32 in
      Bitbuf.set_uint b f v;
      Bitbuf.get_uint b f = v)

let prop_uint_neighbours_untouched =
  QCheck.Test.make ~name:"bitbuf: set_uint leaves neighbours alone" ~count:500
    (arb_field_in 128)
    (fun (off, len) ->
      let f = field ~off ~len in
      let b = Bitbuf.create 16 in
      (* Fill with a known pattern, write all-ones into f, then check
         every bit outside f still matches the pattern. *)
      for i = 0 to 15 do
        Bitbuf.set_uint8 b i 0x5A
      done;
      let before = Array.init 128 (fun i -> Bitbuf.get_bit b i) in
      let ones =
        if len = 64 then -1L else Int64.sub (Int64.shift_left 1L len) 1L
      in
      Bitbuf.set_uint b f ones;
      let ok = ref true in
      for i = 0 to 127 do
        if i < off || i >= off + len then
          if Bitbuf.get_bit b i <> before.(i) then ok := false
      done;
      !ok)

let arb_wide_field_in bits =
  QCheck.make
    ~print:(fun (o, l) -> Printf.sprintf "(off:%d,len:%d)" o l)
    QCheck.Gen.(
      let* len = int_range 1 (bits / 2) in
      let* off = int_range 0 (bits - len) in
      return (off, len))

let prop_field_roundtrip =
  QCheck.Test.make ~name:"bitbuf: set_field/get_field roundtrip" ~count:500
    (arb_wide_field_in 1024)
    (fun (off, len) ->
      let f = field ~off ~len in
      let b = Bitbuf.create 128 in
      let width = (len + 7) / 8 in
      let g = Dip_stdext.Prng.create (Int64.of_int ((off * 131) + len)) in
      let v = Bytes.to_string (Dip_stdext.Prng.bytes g width) in
      (* Clear padding bits so the value is well-formed. *)
      let v =
        let pad = (8 - (len mod 8)) mod 8 in
        if pad = 0 then v
        else
          let bv = Bytes.of_string v in
          let last = Bytes.length bv - 1 in
          Bytes.set bv last
            (Char.chr (Char.code (Bytes.get bv last) land (0xFF lsl pad) land 0xFF));
          Bytes.to_string bv
      in
      Bitbuf.set_field b f v;
      Bitbuf.get_field b f = v)

let prop_xor_involutive =
  QCheck.Test.make ~name:"bitbuf: xor_field twice = id" ~count:500
    (arb_wide_field_in 512)
    (fun (off, len) ->
      let f = field ~off ~len in
      let b = Bitbuf.create 64 in
      let g = Dip_stdext.Prng.create (Int64.of_int ((off * 17) + len)) in
      Bitbuf.blit
        ~src:(Bitbuf.of_bytes (Dip_stdext.Prng.bytes g 64))
        ~src_off:0 ~dst:b ~dst_off:0 ~len:64;
      let width = (len + 7) / 8 in
      let v = Bytes.of_string (Bytes.to_string (Dip_stdext.Prng.bytes g width)) in
      let pad = (8 - (len mod 8)) mod 8 in
      if pad > 0 then begin
        let last = Bytes.length v - 1 in
        Bytes.set v last
          (Char.chr (Char.code (Bytes.get v last) land (0xFF lsl pad) land 0xFF))
      end;
      let v = Bytes.to_string v in
      let before = Bitbuf.to_string b in
      Bitbuf.xor_field b f v;
      Bitbuf.xor_field b f v;
      Bitbuf.to_string b = before)

let () =
  Alcotest.run "bitbuf"
    [
      ( "field",
        [
          Alcotest.test_case "validation" `Quick test_field_validation;
          Alcotest.test_case "byte span" `Quick test_field_byte_span;
          Alcotest.test_case "alignment" `Quick test_field_alignment;
          Alcotest.test_case "overlap" `Quick test_field_overlap;
          Alcotest.test_case "contains" `Quick test_field_contains;
        ] );
      ( "bits",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "uint aligned" `Quick test_uint_aligned;
          Alcotest.test_case "uint unaligned" `Quick test_uint_unaligned;
          Alcotest.test_case "uint width guard" `Quick test_uint_width_guard;
          Alcotest.test_case "uint bounds guard" `Quick test_uint_bounds_guard;
          Alcotest.test_case "uint64 full width" `Quick test_uint64_full_width;
          Alcotest.test_case "byte accessors" `Quick test_byte_accessors;
          QCheck_alcotest.to_alcotest prop_uint_roundtrip;
          QCheck_alcotest.to_alcotest prop_uint_neighbours_untouched;
        ] );
      ( "fields",
        [
          Alcotest.test_case "string aligned" `Quick test_field_string_aligned;
          Alcotest.test_case "string unaligned" `Quick test_field_string_unaligned;
          Alcotest.test_case "padding guard" `Quick test_field_string_padding_guard;
          Alcotest.test_case "xor" `Quick test_xor_field;
          Alcotest.test_case "equal_field" `Quick test_equal_field;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "blit" `Quick test_blit_check;
          QCheck_alcotest.to_alcotest prop_field_roundtrip;
          QCheck_alcotest.to_alcotest prop_xor_involutive;
        ] );
    ]
