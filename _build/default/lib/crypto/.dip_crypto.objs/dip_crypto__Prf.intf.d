lib/crypto/prf.mli:
