lib/crypto/arx_perm.ml: Array Bytes Int64 String
