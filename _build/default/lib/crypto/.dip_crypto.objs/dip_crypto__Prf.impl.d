lib/crypto/prf.ml: Buffer Bytes Cbc_mac Even_mansour Int32 String
