lib/crypto/cbc_mac.mli: Block
