lib/crypto/cbc_mac.ml: Block Bytes Char Int64 String
