lib/crypto/block.mli:
