lib/crypto/siphash.mli:
