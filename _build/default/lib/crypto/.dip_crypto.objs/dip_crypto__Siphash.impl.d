lib/crypto/siphash.ml: Char Int64 String
