lib/crypto/aes128.mli: Block
