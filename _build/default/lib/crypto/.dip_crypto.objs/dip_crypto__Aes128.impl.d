lib/crypto/aes128.ml: Array Char Lazy String
