lib/crypto/arx_perm.mli:
