lib/crypto/even_mansour.mli: Block
