lib/crypto/block.ml:
