lib/crypto/even_mansour.ml: Arx_perm Int64 String
