(** Pseudo-random function for key derivation.

    OPT routers "derive a dynamic key from the session ID in the
    packet header with their local key" (paper §3). This module is
    that derivation: a PRF keyed with the router's local secret,
    applied to the session identifier (plus a context label for
    domain separation). Built as a CBC-MAC over 2EM, so a derivation
    is exactly the primitive the dataplane already has. *)

type key

val key_of_string : string -> key
(** 16-byte master secret. Raises [Invalid_argument] otherwise. *)

val derive : key -> label:string -> string -> string
(** [derive k ~label input] is a 16-byte derived key. Distinct
    labels give independent keys for the same input. *)

val derive_int : key -> label:string -> int64 -> string
(** Convenience for 64-bit inputs such as numeric session IDs. *)
