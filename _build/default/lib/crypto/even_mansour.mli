(** 2EM — the two-round Even–Mansour cipher.

    The paper's prototype computes its MAC with 2EM [2] "since 2EM is
    more friendly to Barefoot Tofino and can be completed without
    resubmitting the packet, while the AES needs to resubmit the
    packet" (§4.1). The construction is

    {v E_k(x) = P(P(x ⊕ k1) ⊕ k2) ⊕ k3 v}

    with {i P} the public permutation from {!Arx_perm} and the three
    128-bit round keys derived from a 16-byte master key. Key
    alternation with two permutation calls is provably secure up to
    ~2^(2n/3) queries (Bogdanov et al., EUROCRYPT 2012). *)

include Block.S
