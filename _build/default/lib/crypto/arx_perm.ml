type block = int64 * int64

let rounds = 12

let rotl x n = Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))
let rotr x n = Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

(* Round constants break the symmetry between rounds so that
   [forward] has no fixed structure an attacker could slide. They are
   the first digits of pi interpreted as 64-bit words. *)
let rc =
  [|
    0x243F6A8885A308D3L; 0x13198A2E03707344L; 0xA4093822299F31D0L;
    0x082EFA98EC4E6C89L; 0x452821E638D01377L; 0xBE5466CF34E90C6CL;
    0xC0AC29B7C97C50DDL; 0x3F84D5B5B5470917L; 0x9216D5D98979FB1BL;
    0xD1310BA698DFB5ACL; 0x2FFD72DBD01ADFB7L; 0xB8E1AFED6A267E96L;
  |]

(* One SPECK-like round: invertible because every step is. *)
let round i (a, b) =
  let a = Int64.add (rotr a 8) b in
  let a = Int64.logxor a rc.(i) in
  let b = Int64.logxor (rotl b 3) a in
  (a, b)

let unround i (a, b) =
  let b = rotr (Int64.logxor b a) 3 in
  let a = Int64.logxor a rc.(i) in
  let a = rotl (Int64.sub a b) 8 in
  (a, b)

let forward blk =
  let rec go i blk = if i = rounds then blk else go (i + 1) (round i blk) in
  go 0 blk

let backward blk =
  let rec go i blk = if i < 0 then blk else go (i - 1) (unround i blk) in
  go (rounds - 1) blk

let of_string s =
  if String.length s <> 16 then invalid_arg "Arx_perm.of_string: need 16 bytes";
  (String.get_int64_be s 0, String.get_int64_be s 8)

let to_string (hi, lo) =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 hi;
  Bytes.set_int64_be b 8 lo;
  Bytes.unsafe_to_string b
