type key = { k0 : int64; k1 : int64 }

let key_of_string s =
  if String.length s <> 16 then invalid_arg "Siphash.key_of_string: need 16 bytes";
  { k0 = String.get_int64_le s 0; k1 = String.get_int64_le s 8 }

let default_key =
  key_of_string "\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f"

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

type state = {
  mutable v0 : int64;
  mutable v1 : int64;
  mutable v2 : int64;
  mutable v3 : int64;
}

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let hash { k0; k1 } msg =
  let s =
    {
      v0 = Int64.logxor k0 0x736f6d6570736575L;
      v1 = Int64.logxor k1 0x646f72616e646f6dL;
      v2 = Int64.logxor k0 0x6c7967656e657261L;
      v3 = Int64.logxor k1 0x7465646279746573L;
    }
  in
  let len = String.length msg in
  let nwords = len / 8 in
  for i = 0 to nwords - 1 do
    let m = String.get_int64_le msg (8 * i) in
    s.v3 <- Int64.logxor s.v3 m;
    sipround s;
    sipround s;
    s.v0 <- Int64.logxor s.v0 m
  done;
  (* Final block: remaining bytes little-endian, length in top byte. *)
  let last = ref (Int64.shift_left (Int64.of_int (len land 0xFF)) 56) in
  for i = 0 to (len mod 8) - 1 do
    last :=
      Int64.logor !last
        (Int64.shift_left (Int64.of_int (Char.code msg.[(nwords * 8) + i])) (8 * i))
  done;
  s.v3 <- Int64.logxor s.v3 !last;
  sipround s;
  sipround s;
  s.v0 <- Int64.logxor s.v0 !last;
  s.v2 <- Int64.logxor s.v2 0xFFL;
  sipround s;
  sipround s;
  sipround s;
  sipround s;
  Int64.logxor (Int64.logxor s.v0 s.v1) (Int64.logxor s.v2 s.v3)

let hash32 k msg =
  let h = hash k msg in
  Int64.to_int32 (Int64.logxor h (Int64.shift_right_logical h 32))
