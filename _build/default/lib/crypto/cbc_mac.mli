(** CBC-MAC over any {!Block.S} cipher, with length prefixing.

    This is the concrete realization of the paper's {i F_MAC}
    operation module: a "cryptographic computing module (e.g., 2EM)"
    that on-path routers run to update authentication tags (§2.3).

    Plain CBC-MAC is only secure for fixed-length messages; we
    prepend the message length as the first block (the standard
    prefix-free encoding), so tags over different-length inputs are
    domain-separated. Tags may be truncated; OPT uses 128-bit tags. *)

module Make (C : Block.S) : sig
  type key

  val expand_key : string -> key
  (** Raises [Invalid_argument] unless the key is [C.key_size] bytes. *)

  val mac : key -> string -> string
  (** [mac k msg] is the full [C.block_size]-byte tag over [msg]
      (any length, including empty). *)

  val mac_truncated : key -> int -> string -> string
  (** [mac_truncated k n msg] keeps the first [n] bytes of the tag.
      Raises [Invalid_argument] if [n] is not in [\[1, block_size\]]. *)

  val verify : key -> tag:string -> string -> bool
  (** Constant-time comparison of [tag] (possibly truncated) against
      the recomputed tag. *)

  val passes : int
  (** Pipeline passes per block, inherited from the cipher. *)
end
