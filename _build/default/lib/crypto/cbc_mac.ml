module Make (C : Block.S) = struct
  type key = C.key

  let expand_key = C.expand_key
  let passes = C.passes

  let xor_into dst src =
    for i = 0 to Bytes.length dst - 1 do
      Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code src.[i]))
    done

  (* Length block: 64-bit big-endian byte count, zero padded to a full
     block. Prefixing (not suffixing) the length makes the encoding
     prefix-free, which is what CBC-MAC needs for variable lengths. *)
  let length_block n =
    let b = Bytes.make C.block_size '\000' in
    Bytes.set_int64_be b (C.block_size - 8) (Int64.of_int n);
    Bytes.unsafe_to_string b

  let mac k msg =
    let bs = C.block_size in
    let state = ref (C.encrypt_block k (length_block (String.length msg))) in
    let nblocks = (String.length msg + bs - 1) / bs in
    for i = 0 to nblocks - 1 do
      let chunk = Bytes.make bs '\000' in
      let len = min bs (String.length msg - (i * bs)) in
      Bytes.blit_string msg (i * bs) chunk 0 len;
      xor_into chunk !state;
      state := C.encrypt_block k (Bytes.unsafe_to_string chunk)
    done;
    !state

  let mac_truncated k n msg =
    if n < 1 || n > C.block_size then
      invalid_arg "Cbc_mac.mac_truncated: bad tag length";
    String.sub (mac k msg) 0 n

  let verify k ~tag msg =
    let n = String.length tag in
    if n < 1 || n > C.block_size then false
    else
      let expected = String.sub (mac k msg) 0 n in
      (* Constant-time fold over all bytes; no early exit. *)
      let diff = ref 0 in
      for i = 0 to n - 1 do
        diff := !diff lor (Char.code tag.[i] lxor Char.code expected.[i])
      done;
      !diff = 0
end
