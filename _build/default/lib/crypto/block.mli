(** Common signature for 128-bit block ciphers.

    The DIP prototype's MAC operation ({i F_MAC}, key 7) is built on a
    block cipher. The paper uses 2EM [Bogdanov et al. 2012] because it
    completes in a single Tofino pass, and mentions AES as the
    alternative that needs a packet resubmission (§4.1). Both live
    behind this signature so the benchmark harness can swap them. *)

module type S = sig
  val name : string

  val block_size : int
  (** Block size in bytes (16 for every cipher here). *)

  val key_size : int
  (** Expected key length in bytes. *)

  val passes : int
  (** How many PISA pipeline passes one block operation costs on the
      modelled switch: 1 for 2EM, >1 for AES (resubmission, §4.1).
      The {!Dip_pisa} cost model reads this. *)

  type key

  val expand_key : string -> key
  (** [expand_key raw] precomputes the key schedule. Raises
      [Invalid_argument] if [String.length raw <> key_size]. *)

  val encrypt_block : key -> string -> string
  (** [encrypt_block k block] enciphers exactly [block_size] bytes.
      Raises [Invalid_argument] on a wrong-sized block. *)

  val decrypt_block : key -> string -> string
  (** Inverse of {!encrypt_block}. *)
end
