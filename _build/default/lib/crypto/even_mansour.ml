let name = "2EM"
let block_size = 16
let key_size = 16
let passes = 1

type key = {
  k1 : Arx_perm.block;
  k2 : Arx_perm.block;
  k3 : Arx_perm.block;
}

let xor (a1, a2) (b1, b2) = (Int64.logxor a1 b1, Int64.logxor a2 b2)

(* Round keys are separated by running the master key through the
   public permutation with distinct constants, so k1, k2, k3 are
   pairwise independent-looking. *)
let expand_key raw =
  if String.length raw <> key_size then
    invalid_arg "Even_mansour.expand_key: need a 16-byte key";
  let k1 = Arx_perm.of_string raw in
  let k2 = Arx_perm.forward (xor k1 (0x0101010101010101L, 0x0101010101010101L)) in
  let k3 = Arx_perm.forward (xor k2 (0x0202020202020202L, 0x0202020202020202L)) in
  { k1; k2; k3 }

let check_block b =
  if String.length b <> block_size then
    invalid_arg "Even_mansour: block must be 16 bytes"

let encrypt_block k block =
  check_block block;
  let x = Arx_perm.of_string block in
  let y = Arx_perm.forward (xor x k.k1) in
  let z = Arx_perm.forward (xor y k.k2) in
  Arx_perm.to_string (xor z k.k3)

let decrypt_block k block =
  check_block block;
  let z = xor (Arx_perm.of_string block) k.k3 in
  let y = xor (Arx_perm.backward z) k.k2 in
  let x = xor (Arx_perm.backward y) k.k1 in
  Arx_perm.to_string x
