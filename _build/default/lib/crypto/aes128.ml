let name = "AES-128"
let block_size = 16
let key_size = 16

(* On the modelled Tofino, the ten AES rounds do not fit in one
   pipeline traversal; the prototype would resubmit. We charge five
   passes (two rounds per traversal), matching the order of magnitude
   of published P4 AES implementations. *)
let passes = 5

(* GF(2^8) arithmetic with the AES reduction polynomial x^8+x^4+x^3+x+1. *)

let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then b lxor 0x11B else b

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
  in
  go a b 0

(* Multiplicative inverse by exhaustive search at table-build time;
   the table is built once so O(255) per entry is irrelevant. *)
let ginv a =
  if a = 0 then 0
  else
    let rec find x = if gmul a x = 1 then x else find (x + 1) in
    find 1

let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xFF

let sbox =
  lazy
    (Array.init 256 (fun x ->
         let b = ginv x in
         b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4
         lxor 0x63))

let inv_sbox =
  lazy
    (let s = Lazy.force sbox in
     let inv = Array.make 256 0 in
     Array.iteri (fun i v -> inv.(v) <- i) s;
     inv)

type key = { round_keys : int array array (* 11 round keys of 16 bytes *) }

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let expand_key raw =
  if String.length raw <> key_size then
    invalid_arg "Aes128.expand_key: need a 16-byte key";
  let s = Lazy.force sbox in
  (* Words are 4 bytes; AES-128 expands 4 key words into 44. *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code raw.[(4 * i) + j]
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        (* RotWord then SubWord then Rcon. *)
        let t = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let t = Array.map (fun b -> s.(b)) t in
        t.(0) <- t.(0) lxor rcon.((i / 4) - 1);
        t
      end
      else temp
    in
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor temp.(j)
    done
  done;
  let round_keys =
    Array.init 11 (fun r ->
        Array.init 16 (fun k -> w.((4 * r) + (k / 4)).(k mod 4)))
  in
  { round_keys }

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes box state =
  for i = 0 to 15 do
    state.(i) <- box.(state.(i))
  done

(* State is stored in input order: state.(r + 4c) would be the FIPS
   column-major layout; we keep the flat input order state.(4c + r)
   and express row shifts on that layout. Byte index of row r,
   column c is 4c + r. *)

let shift_rows state =
  let g r c = state.((4 * c) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((4 * c) + r) <- g r ((c + r) mod 4)
    done
  done;
  Array.blit out 0 state 0 16

let inv_shift_rows state =
  let g r c = state.((4 * c) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((4 * c) + r) <- g r ((c - r + 4) mod 4)
    done
  done;
  Array.blit out 0 state 0 16

let mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let a0 = state.(b) and a1 = state.(b + 1) in
    let a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.(b + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.(b + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.(b + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let a0 = state.(b) and a1 = state.(b + 1) in
    let a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.(b + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.(b + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.(b + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let check_block b =
  if String.length b <> block_size then invalid_arg "Aes128: block must be 16 bytes"

let state_of_string s = Array.init 16 (fun i -> Char.code s.[i])

let string_of_state st =
  String.init 16 (fun i -> Char.chr (st.(i) land 0xFF))

let encrypt_block k block =
  check_block block;
  let s = Lazy.force sbox in
  let st = state_of_string block in
  add_round_key st k.round_keys.(0);
  for r = 1 to 9 do
    sub_bytes s st;
    shift_rows st;
    mix_columns st;
    add_round_key st k.round_keys.(r)
  done;
  sub_bytes s st;
  shift_rows st;
  add_round_key st k.round_keys.(10);
  string_of_state st

let decrypt_block k block =
  check_block block;
  let s = Lazy.force inv_sbox in
  let st = state_of_string block in
  add_round_key st k.round_keys.(10);
  inv_shift_rows st;
  sub_bytes s st;
  for r = 9 downto 1 do
    add_round_key st k.round_keys.(r);
    inv_mix_columns st;
    inv_shift_rows st;
    sub_bytes s st
  done;
  add_round_key st k.round_keys.(0);
  string_of_state st
