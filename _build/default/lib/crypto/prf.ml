module M = Cbc_mac.Make (Even_mansour)

type key = M.key

let key_of_string s =
  if String.length s <> 16 then invalid_arg "Prf.key_of_string: need 16 bytes";
  M.expand_key s

(* The label is framed with its own length so that (label, input)
   pairs cannot collide across different splits of the same bytes. *)
let derive k ~label input =
  let framed =
    let b = Buffer.create (String.length label + String.length input + 4) in
    Buffer.add_int32_be b (Int32.of_int (String.length label));
    Buffer.add_string b label;
    Buffer.add_string b input;
    Buffer.contents b
  in
  M.mac k framed

let derive_int k ~label v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  derive k ~label (Bytes.unsafe_to_string b)
