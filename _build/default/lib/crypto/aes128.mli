(** AES-128 (FIPS-197), implemented from first principles.

    The paper's §4.1 notes that AES "needs to resubmit the packet" on
    Tofino, which is why the prototype preferred 2EM. We implement
    AES anyway so the MAC-cipher ablation (DESIGN.md, experiment A2)
    can quantify that trade-off: the PISA model charges {!passes} > 1
    pipeline passes per AES block.

    The S-box is derived at start-up from the GF(2^8) inverse plus
    the FIPS affine transform rather than pasted in as a table, and
    the implementation is validated against the FIPS-197 known-answer
    vector in the test suite. *)

include Block.S
