(** A public, keyless, invertible 128-bit permutation built from
    add-rotate-xor rounds over two 64-bit lanes.

    This is the public permutation {i P} inside the Even–Mansour
    construction (see {!Even_mansour}). It is deliberately simple —
    ARX rounds map directly onto a programmable-switch ALU, which is
    the property that made 2EM attractive on Tofino in the paper's
    prototype (§4.1). *)

type block = int64 * int64
(** A 128-bit block as two big-endian 64-bit lanes: [(hi, lo)] where
    [hi] holds bytes 0–7 of the wire representation. *)

val rounds : int
(** Number of ARX rounds applied (12). *)

val forward : block -> block
(** Apply the permutation. *)

val backward : block -> block
(** Invert the permutation: [backward (forward b) = b]. *)

val of_string : string -> block
(** Parse 16 big-endian bytes. Raises [Invalid_argument] otherwise. *)

val to_string : block -> string
(** Serialize to 16 big-endian bytes. *)
