module type S = sig
  val name : string
  val block_size : int
  val key_size : int
  val passes : int

  type key

  val expand_key : string -> key
  val encrypt_block : key -> string -> string
  val decrypt_block : key -> string -> string
end
