(** SipHash-2-4 (Aumasson & Bernstein 2012).

    A fast keyed 64-bit PRF used where a short, cheap authenticator
    or a DoS-resistant hash is enough: hashing content names into the
    32-bit identifiers the DIP prototype forwards on (§4.1, "we take
    the 32-bit content name"), and keying the simulator's flow
    tables. Validated against the reference test vectors. *)

type key
(** A 128-bit SipHash key. *)

val key_of_string : string -> key
(** 16 little-endian bytes, as in the reference implementation.
    Raises [Invalid_argument] otherwise. *)

val default_key : key
(** A fixed public key for non-adversarial uses (name hashing). *)

val hash : key -> string -> int64
(** The 64-bit SipHash-2-4 digest. *)

val hash32 : key -> string -> int32
(** The digest folded to 32 bits (hi XOR lo) — the width of the
    prototype's hashed content names. *)
