(** EPIC source/router/destination operations.

    Key structure mirrors OPT's DRKey usage, but the key is derived
    per (source, timestamp) rather than per negotiated session — EPIC
    needs no per-flow setup. With [mac] the 128-bit CBC-MAC and
    [trunc32] its first 32 bits:

    - key:      [k_i = PRF(secret_i, src ∥ timestamp)]
    - source:   [hvf_i = trunc32 (mac k_i origin)] for every hop,
                where [origin] is bits [0,192) of the region;
    - router i: check [hvf_i]; {e drop on mismatch} ("every packet is
                checked"); on success replace it with the verified
                form [hvf'_i = trunc32 (mac k_i ("fwd" ∥ hvf_i))];
    - dest:     confirm every HVF is in verified form (proves the
                packet traversed — and was checked by — each hop).

    All functions operate on a region at byte offset [base]. *)

val derive_key :
  Dip_opt.Drkey.secret -> src:int32 -> timestamp:int32 -> Dip_opt.Drkey.session_key
(** The hop key a router computes on the fly from its local secret. *)

val source_init :
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  src:int32 ->
  timestamp:int32 ->
  hop_keys:Dip_opt.Drkey.session_key list ->
  payload:string ->
  unit
(** Fill the region and compute every hop's HVF (the source holds the
    hop keys via DRKey, as in OPT). *)

type router_verdict = Forwarded | Rejected

val router_check : Dip_bitbuf.Bitbuf.t -> base:int -> hop:int -> key:Dip_opt.Drkey.session_key -> router_verdict
(** Verify-and-update hop [hop]'s HVF. [Rejected] means the router
    must drop the packet. *)

val verify_delivery :
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  hop_keys:Dip_opt.Drkey.session_key list ->
  payload:string option ->
  (unit, int) result
(** Destination check: every HVF must be in verified form (and the
    payload hash must match, when given — payload failures report hop
    0). [Error i] names the first offending hop. *)
