module Bitbuf = Dip_bitbuf.Bitbuf

let derive_key secret ~src ~timestamp =
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 src;
  Bytes.set_int32_be b 4 timestamp;
  Dip_opt.Drkey.derive_for secret ~label:"epic-hop" (Bytes.to_string b)

let mac ~key msg = Dip_opt.Protocol.mac ~alg:Dip_opt.Protocol.EM2 ~key msg

let trunc32 tag = String.get_int32_be tag 0

let origin buf ~base =
  Bitbuf.get_field buf
    (Dip_bitbuf.Field.v ~off_bits:(8 * base) ~len_bits:192)

let hvf_of_origin ~key buf ~base = trunc32 (mac ~key (origin buf ~base))

let verified_form ~key hvf =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 hvf;
  trunc32 (mac ~key ("fwd" ^ Bytes.to_string b))

let source_init buf ~base ~src ~timestamp ~hop_keys ~payload =
  Header.set_src buf ~base src;
  Header.set_timestamp buf ~base timestamp;
  Header.set_payload_hash buf ~base (Dip_opt.Protocol.hash_payload payload);
  List.iteri
    (fun i key -> Header.set_hvf buf ~base (i + 1) (hvf_of_origin ~key buf ~base))
    hop_keys

type router_verdict = Forwarded | Rejected

let router_check buf ~base ~hop ~key =
  let expected = hvf_of_origin ~key buf ~base in
  let carried = Header.get_hvf buf ~base hop in
  if Int32.equal expected carried then begin
    Header.set_hvf buf ~base hop (verified_form ~key carried);
    Forwarded
  end
  else Rejected

let verify_delivery buf ~base ~hop_keys ~payload =
  let payload_ok =
    match payload with
    | None -> true
    | Some p ->
        String.equal
          (Header.get_payload_hash buf ~base)
          (Dip_opt.Protocol.hash_payload p)
  in
  if not payload_ok then Error 0
  else
    let rec go i = function
      | [] -> Ok ()
      | key :: rest ->
          let original = hvf_of_origin ~key buf ~base in
          let expected = verified_form ~key original in
          if Int32.equal expected (Header.get_hvf buf ~base i) then
            go (i + 1) rest
          else Error i
    in
    go 1 hop_keys
