lib/epic/protocol.ml: Bytes Dip_bitbuf Dip_opt Header Int32 List String
