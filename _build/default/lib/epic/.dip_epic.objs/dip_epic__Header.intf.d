lib/epic/header.mli: Dip_bitbuf
