lib/epic/protocol.mli: Dip_bitbuf Dip_opt
