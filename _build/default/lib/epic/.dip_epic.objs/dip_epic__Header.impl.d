lib/epic/header.ml: Dip_bitbuf Int64
