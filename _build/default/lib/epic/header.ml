module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

let size_bits ~hops =
  if hops < 1 then invalid_arg "Epic.Header.size_bits: need at least one hop";
  192 + (32 * hops)

let size_bytes ~hops = size_bits ~hops / 8

let at base off len = Field.v ~off_bits:((8 * base) + off) ~len_bits:len

let get_src buf ~base = Int64.to_int32 (Bitbuf.get_uint buf (at base 0 32))
let set_src buf ~base v =
  Bitbuf.set_uint buf (at base 0 32) (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let get_timestamp buf ~base = Int64.to_int32 (Bitbuf.get_uint buf (at base 32 32))
let set_timestamp buf ~base v =
  Bitbuf.set_uint buf (at base 32 32) (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let get_payload_hash buf ~base = Bitbuf.get_field buf (at base 64 128)
let set_payload_hash buf ~base v = Bitbuf.set_field buf (at base 64 128) v

let hvf_field base i =
  if i < 1 then invalid_arg "Epic.Header.hvf: hops are 1-based";
  at base (192 + (32 * (i - 1))) 32

let get_hvf buf ~base i = Int64.to_int32 (Bitbuf.get_uint buf (hvf_field base i))
let set_hvf buf ~base i v =
  Bitbuf.set_uint buf (hvf_field base i) (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let origin_field = Field.v ~off_bits:0 ~len_bits:192
