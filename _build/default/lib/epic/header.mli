(** The EPIC header region.

    EPIC — "Every Packet Is Checked in the Data Plane of a Path-Aware
    Internet" (Legner et al., USENIX Security 2020) — is the second
    source/path-validation protocol the paper names next to OPT (§1):
    both "require on-path routers to verify and update the
    cryptographically generated code carried in customized packet
    headers". Where OPT validates at the destination, EPIC routers
    {e check} a per-hop validation field (HVF) before forwarding and
    drop on mismatch.

    Region layout, [base] bytes into a packet buffer:

    {v
    bits [  0, 32)  source id
    bits [ 32, 64)  packet timestamp
    bits [ 64,192)  payload hash (128)
    bits [192,...)  HVF_1, HVF_2, … (32 bits per hop)
    v} *)

val size_bytes : hops:int -> int
(** 24 + 4·hops. *)

val size_bits : hops:int -> int

val get_src : Dip_bitbuf.Bitbuf.t -> base:int -> int32
val set_src : Dip_bitbuf.Bitbuf.t -> base:int -> int32 -> unit
val get_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32
val set_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32 -> unit
val get_payload_hash : Dip_bitbuf.Bitbuf.t -> base:int -> string
val set_payload_hash : Dip_bitbuf.Bitbuf.t -> base:int -> string -> unit

val get_hvf : Dip_bitbuf.Bitbuf.t -> base:int -> int -> int32
val set_hvf : Dip_bitbuf.Bitbuf.t -> base:int -> int -> int32 -> unit
(** 1-based hop index. *)

val origin_field : Dip_bitbuf.Field.t
(** Bits [0,192) relative to the region — what every HVF covers. *)
