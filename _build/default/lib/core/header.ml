module Bitbuf = Dip_bitbuf.Bitbuf

type t = {
  next_header : int;
  fn_num : int;
  hop_limit : int;
  parallel : bool;
  fn_loc_len : int;
}

let basic_size = 6
let max_fn_loc_len = 0x3FF

let header_length t = basic_size + (t.fn_num * Fn.size) + t.fn_loc_len
let fn_offset i = basic_size + (i * Fn.size)
let locations_offset t = basic_size + (t.fn_num * Fn.size)
let payload_offset = header_length

let check t =
  let byte name v =
    if v < 0 || v > 255 then invalid_arg ("Dip.Header: " ^ name ^ " out of range")
  in
  byte "next_header" t.next_header;
  byte "fn_num" t.fn_num;
  byte "hop_limit" t.hop_limit;
  if t.fn_loc_len < 0 || t.fn_loc_len > max_fn_loc_len then
    invalid_arg "Dip.Header: fn_loc_len exceeds 10 bits"

(* Packet parameter: bit 0 (LSB) = parallel flag, bits 1-10 =
   FN-locations length, bits 11-15 reserved. *)
let param_word t =
  (if t.parallel then 1 else 0) lor (t.fn_loc_len lsl 1)

let encode t buf =
  check t;
  if Bitbuf.length buf < basic_size then
    invalid_arg "Dip.Header.encode: buffer too small";
  Bitbuf.set_uint8 buf 0 t.next_header;
  Bitbuf.set_uint8 buf 1 t.fn_num;
  Bitbuf.set_uint8 buf 2 t.hop_limit;
  Bitbuf.set_uint16 buf 3 (param_word t);
  Bitbuf.set_uint8 buf 5 0

let decode buf =
  if Bitbuf.length buf < basic_size then Error "truncated basic header"
  else
    let param = Bitbuf.get_uint16 buf 3 in
    let t =
      {
        next_header = Bitbuf.get_uint8 buf 0;
        fn_num = Bitbuf.get_uint8 buf 1;
        hop_limit = Bitbuf.get_uint8 buf 2;
        parallel = param land 1 = 1;
        fn_loc_len = (param lsr 1) land max_fn_loc_len;
      }
    in
    if header_length t > Bitbuf.length buf then
      Error "header exceeds packet bounds"
    else Ok t

let decrement_hop_limit buf =
  let hl = Bitbuf.get_uint8 buf 2 in
  if hl <= 1 then false
  else begin
    Bitbuf.set_uint8 buf 2 (hl - 1);
    true
  end

let pp fmt t =
  Format.fprintf fmt
    "@[<h>DIP{next:%d fns:%d hop:%d par:%b loc_len:%dB hdr:%dB}@]"
    t.next_header t.fn_num t.hop_limit t.parallel t.fn_loc_len
    (header_length t)
