(** Incremental deployment and backward compatibility — §2.4.

    Two mechanisms:

    - {b Tunneling}: "two DIP domains may not be directly connected.
      One could use tunneling technology to build an end-to-end path
      across DIP-agnostic domains." {!encapsulate_ipv4} wraps a DIP
      packet in a plain IPv4 header (IANA-style protocol number
      {!dip_protocol_number}) so legacy routers forward it; the far
      border router {!decapsulate_ipv4}s.

    - {b Header strip/restore}: "the existing network protocol header
      can be viewed as an FN location … the border router can remove
      the basic header and FN definitions, so that the packet is
      routed only based on the FN operations that are recognized by
      the legacy devices. Similarly, to process packets from a legacy
      domain, the inbound border router needs to add back the DIP
      basic header and FN definitions." {!strip} emits
      locations ∥ payload; {!restore} re-frames them. *)

val dip_protocol_number : int
(** The IPv4 protocol number used for DIP-in-IPv4 tunnels (0xFD,
    from the experimentation range). *)

val encapsulate_ipv4 :
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  ?ttl:int ->
  Dip_bitbuf.Bitbuf.t ->
  Dip_bitbuf.Bitbuf.t
(** Wrap a DIP packet for transit through a DIP-agnostic IPv4
    domain. *)

val decapsulate_ipv4 : Dip_bitbuf.Bitbuf.t -> (Dip_bitbuf.Bitbuf.t, string) result
(** Unwrap at the far tunnel endpoint; rejects non-tunnel packets. *)

val strip : Dip_bitbuf.Bitbuf.t -> (Dip_bitbuf.Bitbuf.t, string) result
(** Egress border router: drop the basic header and FN definitions,
    leaving the FN locations (the legacy header) and payload. *)

val restore :
  fns:Fn.t list ->
  ?next_header:int ->
  ?hop_limit:int ->
  ?parallel:bool ->
  loc_len:int ->
  Dip_bitbuf.Bitbuf.t ->
  (Dip_bitbuf.Bitbuf.t, string) result
(** Ingress border router: re-add the basic header and the FN
    definitions this AS uses, taking the first [loc_len] bytes of
    the legacy packet as the FN locations. *)
