(** The operator control plane: runtime FN management.

    §5 (Opportunities): "the network providers can now support new
    services by only upgrading FNs, instead of replacing the
    underlying hardware", and §2.4: security policies like
    {i F_pass} "can be enabled on the fly upon detecting content
    poisoning attacks". This module is the mechanism: authenticated,
    replay-protected control packets that a router applies to its own
    registry and environment — the limited form of runtime
    programmability the paper positions DIP as (§1, §6).

    A command packet is a DIP packet with the control next-header,
    carrying [seq ∥ command ∥ MAC]; the MAC is keyed with the
    operator's controller key and the sequence number must strictly
    increase, so captured commands cannot be replayed. *)

type command =
  | Enable_op of Opkey.t
      (** (re-)install an operation module from the node's master
          image — "upgrading FNs" without replacing hardware *)
  | Disable_op of Opkey.t
  | Enable_pass of string  (** 16-byte AS label key (§2.4) *)
  | Disable_pass
  | Policer_mode_mark
  | Policer_mode_police  (** NetFence attack mode *)

val equal_command : command -> command -> bool
val pp_command : Format.formatter -> command -> unit

val next_header_value : int
(** 0xFC. *)

val is_control : Dip_bitbuf.Bitbuf.t -> bool

val encode : key:Dip_crypto.Prf.key -> seq:int64 -> command -> Dip_bitbuf.Bitbuf.t
(** Build an authenticated command packet. *)

type state
(** Per-router anti-replay state. *)

val initial_state : unit -> state
val last_seq : state -> int64

val apply :
  key:Dip_crypto.Prf.key ->
  state:state ->
  env:Env.t ->
  registry:Registry.t ->
  master:Registry.t ->
  Dip_bitbuf.Bitbuf.t ->
  (command, string) result
(** Verify, check freshness, and execute a command against this
    node's registry/environment. [master] is the full operation-module
    image [Enable_op] installs from. *)

val handler :
  key:Dip_crypto.Prf.key ->
  env:Env.t ->
  registry:Registry.t ->
  master:Registry.t ->
  Dip_netsim.Sim.handler ->
  Dip_netsim.Sim.handler
(** Wrap a node handler: control packets are intercepted and applied
    (consumed on success, dropped with a reason otherwise); everything
    else passes through. *)
