type t = { max_ops : int; max_state_bytes : int }

let create ?(max_ops = 32) ?(max_state_bytes = 256) () =
  if max_ops < 1 || max_state_bytes < 0 then invalid_arg "Guard.create";
  { max_ops; max_state_bytes }

let unlimited () = { max_ops = max_int; max_state_bytes = max_int }

type budget = { limits : t; mutable ops : int; mutable state : int }

let start limits = { limits; ops = 0; state = 0 }

let charge_op b =
  b.ops <- b.ops + 1;
  b.ops <= b.limits.max_ops

let charge_state b ~bytes =
  b.state <- b.state + bytes;
  b.state <= b.limits.max_state_bytes

let ops_used b = b.ops
let state_used b = b.state
