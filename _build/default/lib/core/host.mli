(** The host side of DIP — §2.3 "Host Constructions".

    "Before sending the data packets, the host needs to formulate
    appropriate FNs in the packet header considering both the
    required network services and the supported FNs."

    A {!t} bundles a host's environment (its {!Env.t}, used by the
    host-tagged operations such as {i F_ver}) with the set of FNs its
    attachment point offers (learned via {!Bootstrap}); every [send_*]
    constructor first checks its requirements against that offer and
    refuses with the missing keys instead of emitting a packet the
    network cannot process. *)

type t

val create : ?offer:Opkey.t list -> name:string -> unit -> t
(** A host. Without [offer] every operation is assumed available
    (an all-DIP network, the §2.3 simplification). *)

val env : t -> Env.t
(** The host's environment (session table, local addresses, …). *)

val attach : t -> Bootstrap.t -> as_id:int -> unit
(** DHCP-style bootstrap: adopt the access AS's offer (§2.3). Raises
    [Not_found] for an unknown AS. *)

val attach_path : t -> Bootstrap.t -> src:int -> dst:int -> (unit, string) result
(** BGP-community-style bootstrap: adopt the intersection of support
    along the AS path — the safe set for all-path operations. *)

val offer : t -> Opkey.t list option
(** Currently known offer ([None] = everything). *)

val check : t -> Opkey.t list -> (unit, Opkey.t list) result
(** Which of the required keys the network cannot serve. *)

type 'a construction = ('a, Opkey.t list) result
(** Either the packet, or the operation keys the attachment point
    lacks. *)

val send_ipv4 :
  t ->
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_ipv6 :
  t ->
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V6.t ->
  dst:Dip_tables.Ipaddr.V6.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_interest :
  t ->
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Dip_tables.Name.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val open_opt_session :
  t ->
  session_id:int64 ->
  path_secrets:Dip_opt.Drkey.secret list ->
  dst_secret:Dip_opt.Drkey.secret ->
  unit
(** Model of OPT key negotiation: derive and store the session keys
    of every on-path router plus the destination key, so incoming
    packets can be verified by {i F_ver}. The transport of the
    negotiation is elided (DESIGN.md §2). *)

val send_opt :
  t ->
  ?hop_limit:int ->
  session_id:int64 ->
  timestamp:int32 ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** Build an OPT packet for a previously opened session. Raises
    [Not_found] if the session is unknown. *)

val send_data :
  t ->
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Dip_tables.Name.t ->
  content:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** An NDN data packet (producer side). *)

val send_xia :
  t ->
  ?hop_limit:int ->
  dag:Dip_xia.Dag.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_epic :
  t ->
  ?hop_limit:int ->
  src_id:int32 ->
  timestamp:int32 ->
  path_secrets:Dip_opt.Drkey.secret list ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** EPIC composed with DIP-32 forwarding; hop keys are derived from
    the path secrets obtained at setup (DRKey model). *)

val receive :
  t ->
  registry:Registry.t ->
  now:float ->
  Dip_bitbuf.Bitbuf.t ->
  Engine.verdict
(** Run the host side of Algorithm 1 (host-tagged FNs only). *)
