module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let ipv4 ?hop_limit ~src ~dst ~payload () =
  (* Destination in the lower 32 bits, source in the upper (§3). *)
  let locations = Ipaddr.V4.to_wire dst ^ Ipaddr.V4.to_wire src in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
        Fn.v ~loc:32 ~len:32 Opkey.F_source;
      ]
    ~locations ~payload ()

let ipv6 ?hop_limit ~src ~dst ~payload () =
  let locations = Ipaddr.V6.to_wire dst ^ Ipaddr.V6.to_wire src in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:128 Opkey.F_128_match;
        Fn.v ~loc:128 ~len:128 Opkey.F_source;
      ]
    ~locations ~payload ()

let hash_wire name =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Name.hash32 name);
  Bytes.to_string b

(* Optionally append an F_pass source label after the name: the
   label commits to the rest of the locations region (§2.4). *)
let with_pass ~pass ~fns ~locations =
  match pass with
  | None -> (fns, locations)
  | Some key ->
      let label_loc = 8 * String.length locations in
      let label_field = Dip_bitbuf.Field.v ~off_bits:label_loc ~len_bits:32 in
      let padded = locations ^ String.make 4 '\000' in
      let label = Ops.compute_pass_label key ~locations:padded ~label_field in
      let b = Bytes.of_string padded in
      Bytes.set_int32_be b (String.length locations) label;
      (* The label check must run before any forwarding/caching FN,
         so F_pass comes first in Algorithm 1's execution order. *)
      ( Fn.v ~loc:label_loc ~len:32 Opkey.F_pass :: fns,
        Bytes.to_string b )

let ndn_interest ?hop_limit ?pass ~name ~payload () =
  let fns, locations =
    with_pass ~pass
      ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_fib ]
      ~locations:(hash_wire name)
  in
  Packet.build ?hop_limit ~fns ~locations ~payload ()

let ndn_data ?hop_limit ?pass ~name ~content () =
  let fns, locations =
    with_pass ~pass
      ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_pit ]
      ~locations:(hash_wire name)
  in
  Packet.build ?hop_limit ~fns ~locations ~payload:content ()

let opt_fns ~hops ~name_after =
  let ver_len = Dip_opt.Header.size_bits ~hops in
  let base =
    [
      Fn.v ~loc:128 ~len:128 Opkey.F_parm;
      Fn.v ~loc:0 ~len:416 Opkey.F_mac;
      Fn.v ~loc:288 ~len:128 Opkey.F_mark;
      Fn.v ~tag:Fn.Host ~loc:0 ~len:ver_len Opkey.F_ver;
    ]
  in
  if name_after then Fn.v ~loc:ver_len ~len:32 Opkey.F_pit :: base else base

let opt_locations ?alg ~hops ~session_id ~timestamp ~dest_key ~payload extra =
  let size = Dip_opt.Header.size_bytes ~hops in
  let buf = Bitbuf.create (size + String.length extra) in
  Dip_opt.Protocol.source_init ?alg buf ~base:0 ~hops ~session_id ~timestamp
    ~dest_key ~payload;
  Bitbuf.blit ~src:(Bitbuf.of_string extra) ~src_off:0 ~dst:buf ~dst_off:size
    ~len:(String.length extra);
  Bitbuf.to_string buf

let opt ?hop_limit ?alg ~hops ~session_id ~timestamp ~dest_key ~payload () =
  Packet.build ?hop_limit
    ~fns:(opt_fns ~hops ~name_after:false)
    ~locations:
      (opt_locations ?alg ~hops ~session_id ~timestamp ~dest_key ~payload "")
    ~payload ()

let ndn_opt_interest ?hop_limit ~name ~payload () =
  ndn_interest ?hop_limit ~name ~payload ()

let ndn_opt_name_loc ~hops = Dip_opt.Header.size_bits ~hops

let ndn_opt_data ?hop_limit ?alg ~hops ~session_id ~timestamp ~dest_key ~name
    ~content () =
  Packet.build ?hop_limit
    ~fns:(opt_fns ~hops ~name_after:true)
    ~locations:
      (opt_locations ?alg ~hops ~session_id ~timestamp ~dest_key
         ~payload:content (hash_wire name))
    ~payload:content ()

let xia ?hop_limit ~dag ~payload () =
  let wire = "\x00" ^ Dip_xia.Dag.to_wire dag in
  let len_bits = 8 * String.length wire in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:len_bits Opkey.F_dag;
        Fn.v ~loc:0 ~len:len_bits Opkey.F_intent;
      ]
    ~locations:wire ~payload ()

let netfence ?hop_limit ~src ~dst ~sender ~rate ~timestamp ~payload () =
  let nf = Dip_netfence.Header.size_bytes in
  let region = Bitbuf.create (nf + 8) in
  Dip_netfence.Header.init region ~base:0 ~sender ~rate ~timestamp;
  Bitbuf.blit
    ~src:(Bitbuf.of_string (Ipaddr.V4.to_wire dst ^ Ipaddr.V4.to_wire src))
    ~src_off:0 ~dst:region ~dst_off:nf ~len:8;
  let nf_bits = 8 * nf in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:nf_bits Opkey.F_cc;
        Fn.v ~loc:nf_bits ~len:32 Opkey.F_32_match;
        Fn.v ~loc:(nf_bits + 32) ~len:32 Opkey.F_source;
      ]
    ~locations:(Bitbuf.to_string region) ~payload ()

let ipv4_telemetry ?hop_limit ~max_hops ~src ~dst ~payload () =
  let tel = Telemetry.region_size ~max_hops in
  let region = Bitbuf.create (tel + 8) in
  Telemetry.init region ~base:0;
  Bitbuf.blit
    ~src:(Bitbuf.of_string (Ipaddr.V4.to_wire dst ^ Ipaddr.V4.to_wire src))
    ~src_off:0 ~dst:region ~dst_off:tel ~len:8;
  let tel_bits = 8 * tel in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:tel_bits Opkey.F_tel;
        Fn.v ~loc:tel_bits ~len:32 Opkey.F_32_match;
        Fn.v ~loc:(tel_bits + 32) ~len:32 Opkey.F_source;
      ]
    ~locations:(Bitbuf.to_string region) ~payload ()

let epic ?hop_limit ~hops ~src_id ~timestamp ~hop_keys ~src ~dst ~payload () =
  if List.length hop_keys <> hops then
    invalid_arg "Realize.epic: need one hop key per hop";
  let region_bytes = Dip_epic.Header.size_bytes ~hops in
  let region = Bitbuf.create (region_bytes + 8) in
  Dip_epic.Protocol.source_init region ~base:0 ~src:src_id ~timestamp ~hop_keys
    ~payload;
  Bitbuf.blit
    ~src:(Bitbuf.of_string (Ipaddr.V4.to_wire dst ^ Ipaddr.V4.to_wire src))
    ~src_off:0 ~dst:region ~dst_off:region_bytes ~len:8;
  let region_bits = 8 * region_bytes in
  Packet.build ?hop_limit
    ~fns:
      [
        Fn.v ~loc:0 ~len:region_bits Opkey.F_hvf;
        Fn.v ~loc:region_bits ~len:32 Opkey.F_32_match;
        Fn.v ~loc:(region_bits + 32) ~len:32 Opkey.F_source;
      ]
    ~locations:(Bitbuf.to_string region) ~payload ()

type protocol =
  | P_ipv6_native
  | P_ipv4_native
  | P_dip128
  | P_dip32
  | P_ndn
  | P_opt
  | P_ndn_opt

let protocol_name = function
  | P_ipv6_native -> "IPv6 forwarding"
  | P_ipv4_native -> "IPv4 forwarding"
  | P_dip128 -> "DIP-128 forwarding"
  | P_dip32 -> "DIP-32 forwarding"
  | P_ndn -> "NDN forwarding"
  | P_opt -> "OPT forwarding"
  | P_ndn_opt -> "NDN+OPT forwarding"

let dip_header_size buf =
  match Packet.header_size buf with
  | Ok n -> n
  | Error e -> invalid_arg ("Realize.header_overhead: " ^ e)

let header_overhead p =
  let dest_key = String.make 16 'k' in
  match p with
  | P_ipv6_native -> Dip_ip.Ipv6.header_size
  | P_ipv4_native -> Dip_ip.Ipv4.header_size
  | P_dip128 ->
      dip_header_size
        (ipv6
           ~src:(Ipaddr.V6.of_string "2001:db8::1")
           ~dst:(Ipaddr.V6.of_string "2001:db8::2")
           ~payload:"" ())
  | P_dip32 ->
      dip_header_size
        (ipv4
           ~src:(Ipaddr.V4.of_string "10.0.0.1")
           ~dst:(Ipaddr.V4.of_string "10.0.0.2")
           ~payload:"" ())
  | P_ndn ->
      dip_header_size
        (ndn_interest ~name:(Name.of_string "/hotnets.org") ~payload:"" ())
  | P_opt ->
      dip_header_size
        (opt ~hops:1 ~session_id:1L ~timestamp:0l ~dest_key ~payload:"" ())
  | P_ndn_opt ->
      dip_header_size
        (ndn_opt_data ~hops:1 ~session_id:1L ~timestamp:0l ~dest_key
           ~name:(Name.of_string "/hotnets.org") ~content:"" ())
