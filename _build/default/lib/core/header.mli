(** The DIP packet header — Figure 1 of the paper.

    {v
    +------------------------------------------------------+
    | basic header (6 bytes)                               |
    |   next header (8) | FN number (8) | hop limit (8)    |
    |   packet parameter (16) | reserved (8)               |
    +------------------------------------------------------+
    | FN definitions: FN number × 6-byte triples           |
    +------------------------------------------------------+
    | FN locations: FN_LocLen bytes                        |
    +------------------------------------------------------+
    | payload                                              |
    +------------------------------------------------------+
    v}

    The 16-bit packet parameter packs, per §2.2: the lowest bit is
    the {e parallel} flag ("whether the operation modules can be
    executed in parallel"), the higher ten bits are the FN-locations
    length (in bytes), and the remaining five bits are reserved.

    "Since the triplet structure of an FN is fixed, we can use the FN
    number and the FN locations length to derive the DIP header
    length" (§2.2) — see {!header_length}. *)

type t = {
  next_header : int;  (** 8-bit, identifies the payload protocol *)
  fn_num : int;  (** number of FN triples *)
  hop_limit : int;
  parallel : bool;  (** packet-parameter bit 0 *)
  fn_loc_len : int;  (** FN-locations length in bytes (10 bits) *)
}

val basic_size : int
(** 6 bytes — the Table 2 "basic DIP header" figure. *)

val max_fn_loc_len : int
(** 1023: the 10-bit packet-parameter limit. *)

val header_length : t -> int
(** [basic_size + fn_num·6 + fn_loc_len] — the derivation of §2.2,
    and the quantity Table 2 reports per protocol. *)

val fn_offset : int -> int
(** Byte offset of the i-th FN triple (0-based). *)

val locations_offset : t -> int
(** Byte offset of the FN-locations region. *)

val payload_offset : t -> int
(** Byte offset of the payload; equals {!header_length}. *)

val encode : t -> Dip_bitbuf.Bitbuf.t -> unit
(** Write the basic header at offset 0. *)

val decode : Dip_bitbuf.Bitbuf.t -> (t, string) result
(** Parse and bounds-check a basic header ("parse basic DIP header",
    Algorithm 1 line 1). *)

val decrement_hop_limit : Dip_bitbuf.Bitbuf.t -> bool
(** In-place; [false] when the packet must be dropped instead. *)

val pp : Format.formatter -> t -> unit
