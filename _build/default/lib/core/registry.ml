type outcome =
  | Continue
  | Set_route of Env.port list
  | Deliver_local
  | Respond of Dip_bitbuf.Bitbuf.t
  | Silent
  | Abort of string

type ctx = {
  env : Env.t;
  view : Packet.view;
  fn : Fn.t;
  target : Dip_bitbuf.Field.t;
  ingress : Env.port;
  now : float;
  scratch : scratch;
  budget : Guard.budget;
}

and scratch = { mutable opt_key : Dip_opt.Drkey.session_key option }

type impl = ctx -> outcome

type t = (Opkey.t, impl) Hashtbl.t

let empty () : t = Hashtbl.create 16
let install t key impl = Hashtbl.replace t key impl
let uninstall t key = Hashtbl.remove t key
let find t key = Hashtbl.find_opt t key
let supports t key = Hashtbl.mem t key

let supported t =
  List.filter (fun k -> supports t k) Opkey.all

let restrict t keys =
  let r = empty () in
  List.iter
    (fun k -> match find t k with Some impl -> install r k impl | None -> ())
    keys;
  r
