(** The in-band telemetry region targeted by {i F_tel} (key 14).

    §5 lists "efficient network telemetry" among the opportunities
    DIP opens; this module is that opportunity realized in the style
    of INT: each on-path router appends a fixed 8-byte record to a
    region the sender pre-allocates in the FN locations.

    Layout: 1 byte [overflow(1) | hop count(7)], then [hop count]
    records of

    {v node id (16) | timestamp (32) | queue depth (16) v}

    When the region cannot hold another record the router sets the
    overflow bit instead — telemetry must never grow the packet or
    block forwarding. *)

type record = { node_id : int; timestamp : int32; queue_depth : int }

val region_size : max_hops:int -> int
(** Bytes to pre-allocate: [1 + 8·max_hops]. *)

val init : Dip_bitbuf.Bitbuf.t -> base:int -> unit
(** Zero the count and overflow bits. *)

val capacity : region_bytes:int -> int
(** Records that fit in a region of the given size. *)

val append :
  Dip_bitbuf.Bitbuf.t -> base:int -> region_bytes:int -> record -> bool
(** Append one record; [false] (and the overflow bit) when full. *)

val read : Dip_bitbuf.Bitbuf.t -> base:int -> region_bytes:int -> record list * bool
(** All records in path order, plus the overflow flag. *)
