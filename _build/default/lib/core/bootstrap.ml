module Key_set = Set.Make (Opkey)

type t = {
  support : (int, Key_set.t) Hashtbl.t;
  adj : (int, int list ref) Hashtbl.t;
}

let create () = { support = Hashtbl.create 16; adj = Hashtbl.create 16 }

let add_as t as_id keys =
  Hashtbl.replace t.support as_id (Key_set.of_list keys);
  if not (Hashtbl.mem t.adj as_id) then Hashtbl.replace t.adj as_id (ref [])

let check_known t as_id =
  if not (Hashtbl.mem t.support as_id) then raise Not_found

let link t a b =
  check_known t a;
  check_known t b;
  let add x y =
    let l = Hashtbl.find t.adj x in
    if not (List.mem y !l) then l := y :: !l
  in
  add a b;
  add b a

let supported t as_id =
  check_known t as_id;
  Key_set.elements (Hashtbl.find t.support as_id)

let local_offer = supported

let bfs_path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let pred = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace pred src src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun v ->
          if not (Hashtbl.mem pred v) then begin
            Hashtbl.replace pred v u;
            if v = dst then found := true else Queue.add v q
          end)
        !(Hashtbl.find t.adj u)
    done;
    if not !found then None
    else begin
      let rec back v acc = if v = src then src :: acc else back (Hashtbl.find pred v) (v :: acc) in
      Some (back dst [])
    end
  end

let path_supported t ~src ~dst =
  check_known t src;
  check_known t dst;
  match bfs_path t ~src ~dst with
  | None -> None
  | Some path ->
      let inter =
        List.fold_left
          (fun acc as_id -> Key_set.inter acc (Hashtbl.find t.support as_id))
          (Hashtbl.find t.support src)
          path
      in
      Some (Key_set.elements inter)

let plan ~required ~offered =
  let offered = Key_set.of_list offered in
  match List.filter (fun k -> not (Key_set.mem k offered)) required with
  | [] -> Ok ()
  | missing -> Error missing
