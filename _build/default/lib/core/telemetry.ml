module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type record = { node_id : int; timestamp : int32; queue_depth : int }

let record_bytes = 8

let region_size ~max_hops =
  if max_hops < 1 then invalid_arg "Telemetry.region_size";
  1 + (record_bytes * max_hops)

let capacity ~region_bytes = (region_bytes - 1) / record_bytes

let count_field base = Field.v ~off_bits:((8 * base) + 1) ~len_bits:7
let overflow_field base = Field.v ~off_bits:(8 * base) ~len_bits:1

let init buf ~base = Bitbuf.set_uint8 buf base 0

let get_count buf ~base = Int64.to_int (Bitbuf.get_uint buf (count_field base))

let record_off base i = base + 1 + (record_bytes * i)

let append buf ~base ~region_bytes r =
  let count = get_count buf ~base in
  if count >= capacity ~region_bytes || count >= 127 then begin
    Bitbuf.set_uint buf (overflow_field base) 1L;
    false
  end
  else begin
    let off = record_off base count in
    Bitbuf.set_uint16 buf off (r.node_id land 0xFFFF);
    Bitbuf.set_uint32 buf (off + 2) r.timestamp;
    Bitbuf.set_uint16 buf (off + 6) (r.queue_depth land 0xFFFF);
    Bitbuf.set_uint buf (count_field base) (Int64.of_int (count + 1));
    true
  end

let read buf ~base ~region_bytes =
  let count = min (get_count buf ~base) (capacity ~region_bytes) in
  let records =
    List.init count (fun i ->
        let off = record_off base i in
        {
          node_id = Bitbuf.get_uint16 buf off;
          timestamp = Bitbuf.get_uint32 buf (off + 2);
          queue_depth = Bitbuf.get_uint16 buf (off + 6);
        })
  in
  (records, Bitbuf.get_uint buf (overflow_field base) = 1L)
