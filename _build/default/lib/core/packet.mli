(** DIP packet construction and parsing.

    Hosts "formulate appropriate FNs in the packet header considering
    both the required network services and the supported FNs" (§2.3,
    Host Constructions): this module is that construction step, plus
    the parsed view routers work on. *)

type view = {
  header : Header.t;
  fns : Fn.t array;  (** parsed FN definitions, in order *)
  loc_base : int;  (** byte offset of the FN-locations region *)
  buf : Dip_bitbuf.Bitbuf.t;  (** the whole packet *)
}

val build :
  ?next_header:int ->
  ?hop_limit:int ->
  ?parallel:bool ->
  fns:Fn.t list ->
  locations:string ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** Assemble basic header + FN definitions + FN locations + payload.
    Raises [Invalid_argument] if an FN's target field falls outside
    the locations region, if there are more than 255 FNs, or if the
    locations region exceeds 10 bits of length. *)

val parse : Dip_bitbuf.Bitbuf.t -> (view, string) result
(** Algorithm 1 lines 1–3: parse the basic header, the FN
    definitions according to FN_Num, and locate the FN locations
    according to FN_LocLen. Validates every FN's field bounds. *)

val header_size : Dip_bitbuf.Bitbuf.t -> (int, string) result
(** Total DIP header length of an encoded packet — the quantity
    reported in Table 2. *)

val locations_field : view -> Fn.t -> Dip_bitbuf.Field.t
(** Translate an FN's locations-relative target field into an
    absolute bit field of the packet buffer (Algorithm 1 line 9:
    extract the target field from FN_Loc). *)

val get_target : view -> Fn.t -> string
(** Read an FN's target field bytes. *)

val set_target : view -> Fn.t -> string -> unit
(** Overwrite an FN's target field. *)

val payload : view -> string
(** Bytes after the DIP header. *)
