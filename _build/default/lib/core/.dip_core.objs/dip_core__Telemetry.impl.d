lib/core/telemetry.ml: Dip_bitbuf Int64 List
