lib/core/realize.mli: Dip_bitbuf Dip_crypto Dip_opt Dip_tables Dip_xia
