lib/core/bootstrap.mli: Opkey
