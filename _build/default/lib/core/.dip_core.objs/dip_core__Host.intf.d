lib/core/host.mli: Bootstrap Dip_bitbuf Dip_crypto Dip_opt Dip_tables Dip_xia Engine Env Opkey Registry
