lib/core/header.ml: Dip_bitbuf Fn Format
