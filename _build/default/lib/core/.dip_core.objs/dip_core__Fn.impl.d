lib/core/fn.ml: Dip_bitbuf Format Opkey Printf
