lib/core/registry.ml: Dip_bitbuf Dip_opt Env Fn Guard Hashtbl List Opkey Packet
