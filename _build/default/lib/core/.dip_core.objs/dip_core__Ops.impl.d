lib/core/ops.ml: Bytes Dip_bitbuf Dip_crypto Dip_epic Dip_netfence Dip_opt Dip_tables Dip_xia Env Fn Format Guard Hashtbl Header Int32 Int64 List Opkey Packet Registry String Telemetry
