lib/core/env.mli: Dip_crypto Dip_netfence Dip_netsim Dip_opt Dip_tables Dip_xia Guard Hashtbl
