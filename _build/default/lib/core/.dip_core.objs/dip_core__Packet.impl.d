lib/core/packet.ml: Array Dip_bitbuf Fn Format Header List Printf String
