lib/core/guard.ml:
