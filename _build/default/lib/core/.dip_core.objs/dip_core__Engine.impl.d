lib/core/engine.ml: Array Dip_bitbuf Dip_netsim Env Errors Fn Guard Header List Opkey Packet Registry
