lib/core/packet.mli: Dip_bitbuf Fn Header
