lib/core/fn.mli: Dip_bitbuf Format Opkey
