lib/core/ops.mli: Dip_bitbuf Dip_crypto Fn Packet Registry
