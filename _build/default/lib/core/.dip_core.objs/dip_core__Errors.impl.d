lib/core/errors.ml: Char Dip_bitbuf Header Opkey Packet String
