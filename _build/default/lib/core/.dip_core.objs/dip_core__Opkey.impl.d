lib/core/opkey.ml: Format Int List
