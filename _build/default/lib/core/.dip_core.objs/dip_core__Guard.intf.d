lib/core/guard.mli:
