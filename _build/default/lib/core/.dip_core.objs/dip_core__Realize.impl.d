lib/core/realize.ml: Bytes Dip_bitbuf Dip_epic Dip_ip Dip_netfence Dip_opt Dip_tables Dip_xia Fn List Opkey Ops Packet String Telemetry
