lib/core/control.ml: Buffer Bytes Char Dip_bitbuf Dip_crypto Dip_netfence Dip_netsim Env Format Header Int64 Opkey Packet Printf Registry String
