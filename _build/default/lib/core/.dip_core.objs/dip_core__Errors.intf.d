lib/core/errors.mli: Dip_bitbuf Opkey
