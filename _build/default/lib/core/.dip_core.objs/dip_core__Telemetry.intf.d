lib/core/telemetry.mli: Dip_bitbuf
