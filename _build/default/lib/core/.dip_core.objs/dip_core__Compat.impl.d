lib/core/compat.ml: Dip_bitbuf Dip_ip Packet String
