lib/core/engine.mli: Dip_bitbuf Dip_netsim Env Opkey Registry
