lib/core/compat.mli: Dip_bitbuf Dip_tables Fn
