lib/core/opkey.mli: Format
