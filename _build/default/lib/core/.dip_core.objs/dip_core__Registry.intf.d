lib/core/registry.mli: Dip_bitbuf Dip_opt Env Fn Guard Opkey Packet
