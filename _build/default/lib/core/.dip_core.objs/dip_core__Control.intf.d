lib/core/control.mli: Dip_bitbuf Dip_crypto Dip_netsim Env Format Opkey Registry
