lib/core/host.ml: Bootstrap Dip_epic Dip_opt Engine Env Hashtbl List Opkey Printf Realize
