lib/core/header.mli: Dip_bitbuf Format
