lib/core/bootstrap.ml: Hashtbl List Opkey Queue Set
