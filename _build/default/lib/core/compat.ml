module Bitbuf = Dip_bitbuf.Bitbuf

let dip_protocol_number = 0xFD

let encapsulate_ipv4 ~src ~dst ?(ttl = 64) dip_packet =
  let payload = Bitbuf.to_string dip_packet in
  Dip_ip.Ipv4.encode
    {
      Dip_ip.Ipv4.src = src;
      dst;
      ttl;
      protocol = dip_protocol_number;
      payload_len = String.length payload;
    }
    ~payload

let decapsulate_ipv4 buf =
  match Dip_ip.Ipv4.decode buf with
  | Error e -> Error ("tunnel: " ^ e)
  | Ok h ->
      if h.Dip_ip.Ipv4.protocol <> dip_protocol_number then
        Error "tunnel: not a DIP tunnel packet"
      else
        let s = Bitbuf.to_string buf in
        Ok
          (Bitbuf.of_string
             (String.sub s Dip_ip.Ipv4.header_size h.Dip_ip.Ipv4.payload_len))

let strip buf =
  match Packet.parse buf with
  | Error e -> Error e
  | Ok view ->
      let s = Bitbuf.to_string buf in
      let loc = view.Packet.loc_base in
      Ok (Bitbuf.of_string (String.sub s loc (String.length s - loc)))

let restore ~fns ?next_header ?hop_limit ?parallel ~loc_len legacy =
  let s = Bitbuf.to_string legacy in
  if String.length s < loc_len then Error "restore: packet shorter than loc_len"
  else
    let locations = String.sub s 0 loc_len in
    let payload = String.sub s loc_len (String.length s - loc_len) in
    match
      Packet.build ?next_header ?hop_limit ?parallel ~fns ~locations ~payload ()
    with
    | buf -> Ok buf
    | exception Invalid_argument e -> Error e
