(** FN discovery and propagation.

    §2.3: "After the host is connected to an accessed AS, it uses
    bootstrapping mechanisms (similar to DHCP) to get the set of
    available FNs … One readily deployable mechanism to globally
    propagate supported FNs among ASes is relying on BGP
    communities."

    This module models both halves: {!local_offer} is the DHCP-like
    answer of the access AS, and {!path_supported} is what
    BGP-community propagation lets the host learn about a whole
    path — for operations that need every on-path AS (OPT), the
    usable set is the intersection of the per-AS sets along the
    route. *)

type t

val create : unit -> t

val add_as : t -> int -> Opkey.t list -> unit
(** Register an AS and the operation keys its dataplanes support.
    Re-adding replaces the support set. *)

val link : t -> int -> int -> unit
(** Provider/peer adjacency between two registered ASes. *)

val supported : t -> int -> Opkey.t list
(** An AS's own support set. Raises [Not_found] for unknown ASes. *)

val local_offer : t -> int -> Opkey.t list
(** What a host attached to this AS learns at bootstrap (the DHCP
    analogue): the access AS's support set. *)

val path_supported : t -> src:int -> dst:int -> Opkey.t list option
(** The FN keys supported by {e every} AS on a shortest path from
    [src] to [dst]; [None] when unreachable. This is the set a host
    may safely use for all-path operations. *)

val plan :
  required:Opkey.t list -> offered:Opkey.t list -> (unit, Opkey.t list) result
(** Host construction check (§2.3): all [required] keys available?
    [Error missing] lists what is not. *)
