(** The §2.4 security guard: "we should prevent packet processing
    from exhausting the router state. Enforcing a hard limit for
    packet processing time and per-packet state consumption is enough
    to prevent such attacks."

    The engine charges each executed operation and each byte of new
    router state against a per-packet budget; exceeding either limit
    aborts the packet. *)

type t

val create : ?max_ops:int -> ?max_state_bytes:int -> unit -> t
(** Defaults: 32 operations, 256 state bytes per packet. *)

val unlimited : unit -> t
(** No limits (for ablation baselines). *)

type budget
(** The remaining allowance of one packet. *)

val start : t -> budget

val charge_op : budget -> bool
(** Account one executed operation; [false] means the limit is
    exceeded and the packet must be dropped. *)

val charge_state : budget -> bytes:int -> bool
(** Account new router state (e.g. a PIT insertion). *)

val ops_used : budget -> int
val state_used : budget -> int
