type t = {
  env : Env.t;
  mutable offer : Opkey.t list option;
  sessions : (int64, Dip_opt.Drkey.session_key) Hashtbl.t;
      (* session id → this source's destination key, for seeding the
         PVF when sending (the verification keys live in env). *)
}

let create ?offer ~name () =
  { env = Env.create ~name (); offer; sessions = Hashtbl.create 4 }

let env t = t.env

let attach t world ~as_id = t.offer <- Some (Bootstrap.local_offer world as_id)

let attach_path t world ~src ~dst =
  match Bootstrap.path_supported world ~src ~dst with
  | Some keys ->
      t.offer <- Some keys;
      Ok ()
  | None -> Error (Printf.sprintf "no AS path from %d to %d" src dst)

let offer t = t.offer

let check t required =
  match t.offer with
  | None -> Ok ()
  | Some offered -> Bootstrap.plan ~required ~offered

type 'a construction = ('a, Opkey.t list) result

let construct t ~required f =
  match check t required with Ok () -> Ok (f ()) | Error missing -> Error missing

let send_ipv4 t ?hop_limit ~src ~dst ~payload () =
  construct t
    ~required:[ Opkey.F_32_match; Opkey.F_source ]
    (fun () -> Realize.ipv4 ?hop_limit ~src ~dst ~payload ())

let send_ipv6 t ?hop_limit ~src ~dst ~payload () =
  construct t
    ~required:[ Opkey.F_128_match; Opkey.F_source ]
    (fun () -> Realize.ipv6 ?hop_limit ~src ~dst ~payload ())

let send_interest t ?hop_limit ?pass ~name ~payload () =
  let required =
    Opkey.F_fib :: (match pass with Some _ -> [ Opkey.F_pass ] | None -> [])
  in
  construct t ~required (fun () ->
      Realize.ndn_interest ?hop_limit ?pass ~name ~payload ())

let send_data t ?hop_limit ?pass ~name ~content () =
  let required =
    Opkey.F_pit :: (match pass with Some _ -> [ Opkey.F_pass ] | None -> [])
  in
  construct t ~required (fun () ->
      Realize.ndn_data ?hop_limit ?pass ~name ~content ())

let send_xia t ?hop_limit ~dag ~payload () =
  construct t
    ~required:[ Opkey.F_dag; Opkey.F_intent ]
    (fun () -> Realize.xia ?hop_limit ~dag ~payload ())

let send_epic t ?hop_limit ~src_id ~timestamp ~path_secrets ~src ~dst ~payload () =
  let hop_keys =
    List.map
      (fun s -> Dip_epic.Protocol.derive_key s ~src:src_id ~timestamp)
      path_secrets
  in
  construct t
    ~required:[ Opkey.F_hvf; Opkey.F_32_match; Opkey.F_source ]
    (fun () ->
      Realize.epic ?hop_limit ~hops:(List.length path_secrets) ~src_id
        ~timestamp ~hop_keys ~src ~dst ~payload ())

let open_opt_session t ~session_id ~path_secrets ~dst_secret =
  let session_keys = Dip_opt.Drkey.session_keys path_secrets ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  Env.register_opt_session t.env ~session_id ~session_keys ~dest_key;
  Hashtbl.replace t.sessions session_id dest_key

let send_opt t ?hop_limit ~session_id ~timestamp ~payload () =
  let dest_key =
    match Hashtbl.find_opt t.sessions session_id with
    | Some k -> k
    | None -> raise Not_found
  in
  let hops =
    match Hashtbl.find_opt t.env.Env.opt_sessions session_id with
    | Some (keys, _) -> List.length keys
    | None -> raise Not_found
  in
  construct t
    ~required:[ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark; Opkey.F_ver ]
    (fun () ->
      Realize.opt ?hop_limit ~hops ~session_id ~timestamp ~dest_key ~payload ())

let receive t ~registry ~now packet =
  fst (Engine.host_process ~registry t.env ~now ~ingress:0 packet)
