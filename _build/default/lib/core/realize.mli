(** Protocol realization using DIP — paper §3.

    Each function builds the DIP packet for one of the five realized
    protocols, using the paper's FN triples verbatim (keys follow
    Table 1):

    - {b IPv4}: (loc 0, len 32, key 1) destination match and
      (loc 32, len 32, key 3) source; destination in the lower 32
      bits of the FN locations, source in the upper 32.
    - {b IPv6}: (loc 0, len 128, key 2) and (loc 128, len 128, key 3).
    - {b NDN}: interests carry (loc 0, len 32, key 4) — {i F_FIB} —
      and data packets (loc 0, len 32, key 5) — {i F_PIT} — over the
      32-bit hashed content name of the prototype (§4.1).
    - {b OPT}: (loc 128, len 128, key 6), (loc 0, len 416, key 7),
      (loc 288, len 128, key 8) for the routers and
      (loc 0, len 544, key 9) host-tagged for the destination; the
      OPT header occupies the FN locations.
    - {b NDN+OPT}: the NDN forwarding FN composed with the four OPT
      FNs; the content name sits after the OPT region in the
      locations.
    - {b XIA}: (key 10) {i F_DAG} and (key 11) {i F_intent} over the
      XIA header (pointer + DAG) in the FN locations.

    With these layouts every Table 2 header size reproduces exactly
    (see {!header_overhead} and the Table 2 bench). *)

module Name = Dip_tables.Name

val ipv4 :
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** DIP-32 forwarding (26-byte header). *)

val ipv6 :
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V6.t ->
  dst:Dip_tables.Ipaddr.V6.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** DIP-128 forwarding (50-byte header). *)

val ndn_interest :
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Name.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** NDN interest (16-byte header; +10 with an {i F_pass} label). *)

val ndn_data :
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Name.t ->
  content:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** NDN data (16-byte header). *)

val opt :
  ?hop_limit:int ->
  ?alg:Dip_opt.Protocol.alg ->
  hops:int ->
  session_id:int64 ->
  timestamp:int32 ->
  dest_key:Dip_opt.Drkey.session_key ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** OPT packet (98-byte header at one hop), seeded by the source. *)

val ndn_opt_interest :
  ?hop_limit:int -> name:Name.t -> payload:string -> unit -> Dip_bitbuf.Bitbuf.t
(** The request side of NDN+OPT: plain {i F_FIB} forwarding. *)

val ndn_opt_data :
  ?hop_limit:int ->
  ?alg:Dip_opt.Protocol.alg ->
  hops:int ->
  session_id:int64 ->
  timestamp:int32 ->
  dest_key:Dip_opt.Drkey.session_key ->
  name:Name.t ->
  content:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** The secure content delivery packet (108-byte header at one hop):
    {i F_PIT} + the four OPT FNs; content name after the OPT region. *)

val xia :
  ?hop_limit:int -> dag:Dip_xia.Dag.t -> payload:string -> unit -> Dip_bitbuf.Bitbuf.t
(** XIA over DIP: pointer + DAG in the FN locations. *)

val ndn_opt_name_loc : hops:int -> int
(** Bit offset of the content name in an NDN+OPT locations region
    (544 at one hop). *)

val netfence :
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  sender:int32 ->
  rate:float ->
  timestamp:int32 ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** NetFence-over-DIP (extension, key 13): the congestion header in
    the locations, followed by dst/src for DIP-32 forwarding. FN
    order is F_cc, F_32_match, F_source, so policing precedes the
    forwarding decision. The NetFence region starts at the head of
    the FN locations; read feedback with
    [Dip_netfence.Header.get_flag buf ~base:view.loc_base]. *)

val ipv4_telemetry :
  ?hop_limit:int ->
  max_hops:int ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** DIP-32 forwarding with an in-band telemetry region (extension,
    key 14) sized for [max_hops] records. The telemetry region starts
    at the head of the FN locations. *)

val epic :
  ?hop_limit:int ->
  hops:int ->
  src_id:int32 ->
  timestamp:int32 ->
  hop_keys:Dip_opt.Drkey.session_key list ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t
(** EPIC-over-DIP (extension, key 15), composed with DIP-32
    forwarding: the EPIC region (24 + 4·hops bytes) followed by
    dst/src in the FN locations. F_hvf runs before the forwarding
    FNs, so an invalid hop field is dropped before any route is
    taken. *)

type protocol =
  | P_ipv6_native
  | P_ipv4_native
  | P_dip128
  | P_dip32
  | P_ndn
  | P_opt
  | P_ndn_opt

val protocol_name : protocol -> string
(** Table 2's row labels. *)

val header_overhead : protocol -> int
(** Total header size in bytes — regenerates Table 2. *)
