type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy payload = { time = 0.0; seq = 0; payload }

let create () = { heap = [||]; len = 0; next_seq = 0 }
let size t = t.len
let is_empty t = t.len = 0

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t c =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nh = Array.make ncap (dummy c.payload) in
    Array.blit t.heap 0 nh 0 t.len;
    t.heap <- nh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.push: time must be finite";
  if time < 0.0 then invalid_arg "Event_queue.push: negative time";
  let c = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t c;
  t.heap.(t.len) <- c;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let clear t =
  t.heap <- [||];
  t.len <- 0
