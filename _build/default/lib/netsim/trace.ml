type event_kind = Received of Sim.port | Consumed | Dropped of string

type event = { time : float; node : string; kind : event_kind }

type t = {
  fingerprint : Dip_bitbuf.Bitbuf.t -> int32;
  mutable log : (int32 * event) list; (* reversed *)
}

let default_fingerprint buf =
  Dip_stdext.Crc32.digest_bytes (Dip_bitbuf.Bitbuf.to_bytes buf)

let attach ?(fingerprint = default_fingerprint) sim =
  let t = { fingerprint; log = [] } in
  Sim.on_consume sim (fun node time pkt ->
      t.log <-
        (t.fingerprint pkt, { time; node = Sim.node_name sim node; kind = Consumed })
        :: t.log);
  t

let record t ~node ~time fp kind = t.log <- (fp, { time; node; kind }) :: t.log

let wrap t ~name inner sim ~now ~ingress packet =
  let fp = t.fingerprint packet in
  record t ~node:name ~time:now fp (Received ingress);
  let actions = inner sim ~now ~ingress packet in
  List.iter
    (fun action ->
      match action with
      | Sim.Drop reason -> record t ~node:name ~time:now fp (Dropped reason)
      | Sim.Forward _ | Sim.Consume -> ())
    actions;
  actions

let by_time evs = List.stable_sort (fun a b -> Float.compare a.time b.time) evs

let events t = by_time (List.rev_map snd t.log)

let journey t fp =
  List.rev t.log
  |> List.filter_map (fun (f, e) -> if Int32.equal f fp then Some e else None)
  |> by_time

let pp_kind fmt = function
  | Received p -> Format.fprintf fmt "received on port %d" p
  | Consumed -> Format.pp_print_string fmt "consumed"
  | Dropped r -> Format.fprintf fmt "dropped (%s)" r

let pp_events fmt evs =
  List.iter
    (fun e -> Format.fprintf fmt "%.6fs  %-12s %a@." e.time e.node pp_kind e.kind)
    evs
