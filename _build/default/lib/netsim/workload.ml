let paper_packet_sizes = [ 128; 768; 1500 ]

let payload ~seed ~size =
  let g = Dip_stdext.Prng.create seed in
  Dip_stdext.Prng.bytes g size

let pad_to pkt size =
  let len = Dip_bitbuf.Bitbuf.length pkt in
  if len >= size then pkt
  else begin
    let out = Dip_bitbuf.Bitbuf.create size in
    Dip_bitbuf.Bitbuf.blit ~src:pkt ~src_off:0 ~dst:out ~dst_off:0 ~len;
    out
  end

type arrival = { time : float; index : int }

let poisson_arrivals ~seed ~rate ~count =
  if rate <= 0.0 then invalid_arg "Workload.poisson_arrivals: rate must be positive";
  let g = Dip_stdext.Prng.create seed in
  let rec go i t acc =
    if i = count then List.rev acc
    else
      let t = t +. Dip_stdext.Prng.exponential g rate in
      go (i + 1) t ({ time = t; index = i } :: acc)
  in
  go 0 0.0 []

let constant_arrivals ~interval ~count =
  if interval <= 0.0 then
    invalid_arg "Workload.constant_arrivals: interval must be positive";
  List.init count (fun i -> { time = float_of_int i *. interval; index = i })

let catalog_name k =
  Dip_tables.Name.of_components [ "content"; Printf.sprintf "item%d" k ]

let zipf_names ~seed ~catalog ~count ~skew =
  if catalog < 1 then invalid_arg "Workload.zipf_names: empty catalog";
  let g = Dip_stdext.Prng.create seed in
  List.init count (fun _ -> catalog_name (Dip_stdext.Prng.zipf g ~n:catalog ~s:skew))
