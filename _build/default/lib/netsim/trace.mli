(** Packet-journey tracing.

    A trace records, per node, what happened to traffic (received /
    consumed / dropped with reason) with timestamps. Debugging aid
    for examples and experiment post-mortems: render a journey to see
    where a packet died.

    Packets are identified by a caller-chosen fingerprint — by
    default the CRC-32 of the buffer at observation time. Packets
    that are rewritten in flight (TTL decrements etc.) change their
    default fingerprint; pass a [fingerprint] that reads an invariant
    field to follow them across hops. *)

type event_kind =
  | Received of Sim.port
  | Consumed
  | Dropped of string

type event = { time : float; node : string; kind : event_kind }

type t

val attach : ?fingerprint:(Dip_bitbuf.Bitbuf.t -> int32) -> Sim.t -> t
(** Start recording; local deliveries are captured automatically via
    the simulator's consume hook. *)

val wrap : t -> name:string -> Sim.handler -> Sim.handler
(** Wrap a node's handler (use the same [name] as its
    {!Sim.add_node}) so its receptions and drops are recorded. *)

val events : t -> event list
(** All recorded events in time order. *)

val journey : t -> int32 -> event list
(** Events whose packet fingerprint matched. *)

val pp_events : Format.formatter -> event list -> unit
