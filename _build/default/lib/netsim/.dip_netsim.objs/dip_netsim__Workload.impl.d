lib/netsim/workload.ml: Dip_bitbuf Dip_stdext Dip_tables List Printf
