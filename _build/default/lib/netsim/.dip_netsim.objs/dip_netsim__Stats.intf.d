lib/netsim/stats.mli:
