lib/netsim/topology.ml: Array Dip_stdext Float Hashtbl List Queue Sim
