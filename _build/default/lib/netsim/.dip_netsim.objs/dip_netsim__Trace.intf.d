lib/netsim/trace.mli: Dip_bitbuf Format Sim
