lib/netsim/trace.ml: Dip_bitbuf Dip_stdext Float Format Int32 List Sim
