lib/netsim/sim.ml: Array Dip_bitbuf Event_queue Float Hashtbl List Printf Stats
