lib/netsim/sim.mli: Dip_bitbuf Stats
