lib/netsim/workload.mli: Dip_bitbuf Dip_tables
