lib/netsim/topology.mli: Sim
