lib/netsim/event_queue.mli:
