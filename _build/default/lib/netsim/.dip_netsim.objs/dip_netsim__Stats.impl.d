lib/netsim/stats.ml: Array Float Hashtbl List Printf Stdlib String
