lib/ndn/forwarder.mli: Dip_bitbuf Dip_netsim Dip_tables
