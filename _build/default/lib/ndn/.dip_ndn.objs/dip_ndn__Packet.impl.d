lib/ndn/packet.ml: Buffer Char Dip_bitbuf Dip_tables Printf String
