lib/ndn/packet.mli: Dip_bitbuf Dip_tables
