lib/ndn/forwarder.ml: Dip_bitbuf Dip_netsim Dip_tables List Packet
