module Bitbuf = Dip_bitbuf.Bitbuf
module Name = Dip_tables.Name
module Name_fib = Dip_tables.Name_fib
module Pit = Dip_tables.Pit
module Content_store = Dip_tables.Content_store

type t = {
  fib : Dip_netsim.Sim.port Name_fib.t;
  pit : string Pit.t; (* keyed by canonical name *)
  cache : string Content_store.t option;
  interest_lifetime : float;
}

let create ?(cache_capacity = 0) ?(pit_capacity = 65536)
    ?(interest_lifetime = 4.0) () =
  {
    fib = Name_fib.create ();
    pit = Pit.create ~capacity:pit_capacity ();
    cache =
      (if cache_capacity > 0 then Some (Content_store.create ~capacity:cache_capacity)
       else None);
    interest_lifetime;
  }

let fib t = t.fib
let cache_enabled t = t.cache <> None

type verdict =
  | Forward of Dip_netsim.Sim.port list
  | Reply of Bitbuf.t
  | Silent
  | Discard of string

let process t ~now ~ingress buf =
  match Packet.decode buf with
  | Error e -> Discard e
  | Ok (Packet.Interest { name; _ }) -> (
      let cached =
        match t.cache with
        | Some cs -> Content_store.find cs name
        | None -> None
      in
      match cached with
      | Some content -> Reply (Packet.encode (Packet.data name content))
      | None -> (
          let key = Name.to_string name in
          match
            Pit.insert t.pit ~key ~port:ingress ~now
              ~lifetime:t.interest_lifetime
          with
          | Pit.Aggregated -> Silent
          | Pit.Rejected -> Discard "pit-full"
          | Pit.Forwarded -> (
              match Name_fib.lookup t.fib name with
              | Some (_, port) -> Forward [ port ]
              | None ->
                  (* Nothing upstream will answer; retract the entry
                     so the slot is not held for the lifetime. *)
                  ignore (Pit.consume t.pit ~key ~now);
                  Discard "no-fib-entry")))
  | Ok (Packet.Data { name; content }) -> (
      let key = Name.to_string name in
      match Pit.consume t.pit ~key ~now with
      | [] -> Discard "unsolicited-data"
      | ports ->
          (match t.cache with
          | Some cs -> Content_store.insert cs name content
          | None -> ());
          Forward ports)

let handler t _sim ~now ~ingress packet =
  match process t ~now ~ingress packet with
  | Forward ports -> List.map (fun p -> Dip_netsim.Sim.Forward (p, packet)) ports
  | Reply pkt -> [ Dip_netsim.Sim.Forward (ingress, pkt) ]
  | Silent -> []
  | Discard reason -> [ Dip_netsim.Sim.Drop reason ]

let producer_handler ~prefix ~content _sim ~now:_ ~ingress packet =
  match Packet.decode packet with
  | Ok (Packet.Interest { name; _ }) when Name.is_prefix ~prefix name -> (
      match content name with
      | Some body ->
          [ Dip_netsim.Sim.Forward (ingress, Packet.encode (Packet.data name body)) ]
      | None -> [ Dip_netsim.Sim.Drop "no-such-content" ])
  | Ok (Packet.Data _) -> [ Dip_netsim.Sim.Consume ]
  | Ok (Packet.Interest _) -> [ Dip_netsim.Sim.Drop "wrong-prefix" ]
  | Error e -> [ Dip_netsim.Sim.Drop e ]
