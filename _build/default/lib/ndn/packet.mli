(** NDN packet codec: interest and data packets.

    NDN "uses data names instead of IP addresses for better content
    delivery with interest packets and data packets" (paper §1). This
    is the native wire format used by the baseline forwarder; the DIP
    realization of NDN instead carries only the 32-bit hashed name in
    the FN locations (§4.1), which is why its header is smaller.

    Wire layout: 1 type byte, 4-byte nonce (interests only), the
    name ({!Dip_tables.Name.to_wire}), and for data a 2-byte length
    plus the content bytes. *)

type t =
  | Interest of { name : Dip_tables.Name.t; nonce : int32 }
  | Data of { name : Dip_tables.Name.t; content : string }

val name : t -> Dip_tables.Name.t

val encode : t -> Dip_bitbuf.Bitbuf.t
val decode : Dip_bitbuf.Bitbuf.t -> (t, string) result

val interest : ?nonce:int32 -> Dip_tables.Name.t -> t
val data : Dip_tables.Name.t -> string -> t
