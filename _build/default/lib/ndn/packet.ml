module Bitbuf = Dip_bitbuf.Bitbuf
module Name = Dip_tables.Name

type t =
  | Interest of { name : Name.t; nonce : int32 }
  | Data of { name : Name.t; content : string }

let name = function Interest { name; _ } -> name | Data { name; _ } -> name

let interest ?(nonce = 0l) name = Interest { name; nonce }
let data name content = Data { name; content }

let encode t =
  let b = Buffer.create 64 in
  (match t with
  | Interest { name; nonce } ->
      Buffer.add_uint8 b 1;
      Buffer.add_int32_be b nonce;
      Buffer.add_string b (Name.to_wire name)
  | Data { name; content } ->
      Buffer.add_uint8 b 2;
      Buffer.add_string b (Name.to_wire name);
      if String.length content > 0xFFFF then
        invalid_arg "Ndn.Packet.encode: content too large";
      Buffer.add_uint16_be b (String.length content);
      Buffer.add_string b content);
  Bitbuf.of_string (Buffer.contents b)

(* Names are self-delimiting on the wire, so we re-parse them by
   walking the component lengths. *)
let name_wire_length s pos =
  if pos >= String.length s then None
  else
    let n = Char.code s.[pos] in
    let rec go i off =
      if i = n then Some (off - pos)
      else if off + 2 > String.length s then None
      else
        let l = String.get_uint16_be s off in
        if off + 2 + l > String.length s then None else go (i + 1) (off + 2 + l)
    in
    go 0 (pos + 1)

let decode buf =
  let s = Bitbuf.to_string buf in
  if String.length s < 1 then Error "empty packet"
  else
    match Char.code s.[0] with
    | 1 ->
        if String.length s < 5 then Error "truncated interest"
        else
          let nonce = String.get_int32_be s 1 in
          (match name_wire_length s 5 with
          | None -> Error "malformed interest name"
          | Some nl -> (
              try
                let name = Name.of_wire (String.sub s 5 nl) in
                (* Trailing bytes after the name are payload padding
                   added to reach a target wire size; ignore them. *)
                Ok (Interest { name; nonce })
              with Invalid_argument _ -> Error "malformed interest name"))
    | 2 -> (
        match name_wire_length s 1 with
        | None -> Error "malformed data name"
        | Some nl -> (
            try
              let name = Name.of_wire (String.sub s 1 nl) in
              let pos = 1 + nl in
              if pos + 2 > String.length s then Error "truncated data length"
              else
                let len = String.get_uint16_be s pos in
                if pos + 2 + len > String.length s then Error "truncated content"
                else Ok (Data { name; content = String.sub s (pos + 2) len })
            with Invalid_argument _ -> Error "malformed data name"))
    | t -> Error (Printf.sprintf "unknown packet type %d" t)
