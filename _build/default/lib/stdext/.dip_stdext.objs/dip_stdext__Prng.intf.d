lib/stdext/prng.mli:
