lib/stdext/hex.mli: Format
