lib/stdext/tabular.ml: Array Buffer List String
