lib/stdext/tabular.mli:
