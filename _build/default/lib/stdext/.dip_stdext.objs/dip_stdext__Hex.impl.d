lib/stdext/hex.ml: Bytes Char Format String
