lib/stdext/crc32.mli:
