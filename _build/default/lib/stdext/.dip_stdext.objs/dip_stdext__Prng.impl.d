lib/stdext/prng.ml: Array Bytes Char Int64
