let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let t = Lazy.force table in
  Int32.logxor
    t.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl))
    (Int32.shift_right_logical crc 8)

let run init get len =
  let crc = ref (Int32.lognot init) in
  for i = 0 to len - 1 do
    crc := update !crc (get i)
  done;
  Int32.lognot !crc

let digest ?(init = 0l) s = run init (fun i -> Char.code s.[i]) (String.length s)

let digest_bytes ?(init = 0l) b =
  run init (fun i -> Char.code (Bytes.get b i)) (Bytes.length b)

let digest_sub ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_sub: slice out of bounds";
  run init (fun i -> Char.code (Bytes.get b (pos + i))) len
