type t = {
  mutable state : int64;
  (* Lazily built Zipf CDF cache, keyed by (n, s). A generator is
     typically used with a single popularity law, so one slot is
     enough. *)
  mutable zipf_cache : (int * float * float array) option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed; zipf_cache = None }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next64 t in
  { state = mix64 seed; zipf_cache = None }

let copy t = { state = t.state; zipf_cache = t.zipf_cache }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw unbiased
     even when [bound] does not divide the range. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let zipf_cdf n s =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let acc = ref 0.0 in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      w
  in
  let total = !acc in
  (total, cdf)

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let total, cdf =
    match t.zipf_cache with
    | Some (n', s', cdf) when n' = n && s' = s -> (cdf.(n - 1), cdf)
    | _ ->
        let total, cdf = zipf_cdf n s in
        t.zipf_cache <- Some (n, s, cdf);
        (total, cdf)
  in
  let u = float t total in
  (* Binary search for the first index whose cumulative weight
     exceeds the draw. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1) + 1
