(** CRC-32 (IEEE 802.3 polynomial, reflected). Used for payload
    integrity checks in the simulator and for cheap content-name
    hashing where cryptographic strength is not needed. *)

val digest : ?init:int32 -> string -> int32
(** [digest s] is the CRC-32 of [s]. [init] allows incremental use by
    feeding a previous digest back in. *)

val digest_bytes : ?init:int32 -> bytes -> int32
(** As {!digest} on [bytes]. *)

val digest_sub : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** CRC of a slice, without copying. Raises [Invalid_argument] on an
    out-of-bounds slice. *)
