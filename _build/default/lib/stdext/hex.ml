let hexchar n = "0123456789abcdef".[n land 0xf]

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (hexchar (c lsr 4));
    Bytes.set b ((2 * i) + 1) (hexchar c)
  done;
  Bytes.unsafe_to_string b

let encode_bytes b = encode (Bytes.to_string b)

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n land 1 = 1 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))

let printable c = if c >= ' ' && c <= '~' then c else '.'

let dump fmt s =
  let n = String.length s in
  let line off =
    let len = min 16 (n - off) in
    Format.fprintf fmt "%08x  " off;
    for i = 0 to 15 do
      if i < len then Format.fprintf fmt "%02x " (Char.code s.[off + i])
      else Format.fprintf fmt "   ";
      if i = 7 then Format.fprintf fmt " "
    done;
    Format.fprintf fmt " |";
    for i = 0 to len - 1 do
      Format.fprintf fmt "%c" (printable s.[off + i])
    done;
    Format.fprintf fmt "|@."
  in
  let rec go off = if off < n then (line off; go (off + 16)) in
  go 0
