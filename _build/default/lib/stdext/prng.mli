(** Deterministic pseudo-random number generation for workloads.

    All workload generators in this repository derive their randomness
    from this module so that every experiment is reproducible from a
    seed. The core generator is SplitMix64 (Steele, Lea, Flood 2014),
    which is fast, has a full 2^64 period, and splits cleanly into
    independent streams. *)

type t
(** A mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t]. Used to give each simulated node its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. Rejection sampling keeps the draw unbiased. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** A fair coin. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val shuffle : t -> 'a array -> unit
(** Fisher–Yates in-place shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument]
    on an empty array. *)

val exponential : t -> float -> float
(** [exponential t rate] samples an exponential inter-arrival time
    with the given rate (mean [1. /. rate]). *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[1, n\]] from a Zipf
    distribution with exponent [s], via inverse-CDF over precomputed
    weights. Content-popularity workloads (NDN) use this. *)
