(** Hexadecimal encoding helpers used by debug output, traces and
    tests. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s], two characters
    per byte. *)

val encode_bytes : bytes -> string
(** Same as {!encode} on a [bytes] value. *)

val decode : string -> string
(** [decode h] inverts {!encode}. Raises [Invalid_argument] if [h]
    has odd length or contains a non-hex character. *)

val dump : Format.formatter -> string -> unit
(** [dump fmt s] pretty-prints [s] as a classic 16-bytes-per-line hex
    dump with offsets and an ASCII gutter. *)
