type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
  arity : int;
}

let create ?aligns headers =
  let arity = List.length headers in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> arity then
          invalid_arg "Tabular.create: aligns arity mismatch";
        a
    | None -> List.init arity (fun _ -> Left)
  in
  { headers; aligns; rows = []; arity }

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Tabular.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Sep -> ()
      | Cells cs ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (String.length c))
            cs)
    rows;
  let buf = Buffer.create 256 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  hline ();
  line t.headers;
  hline ();
  List.iter (function Sep -> hline () | Cells cs -> line cs) rows;
  hline ();
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
