(** Plain-text table rendering. The benchmark harness uses this to
    print the paper's tables (Table 1, Table 2, Figure 2 series) in a
    stable, diffable format. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to left alignment for every column. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity differs from
    the header. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render with box-drawing in ASCII ([+---+] style). *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
