type kind = AD | HID | SID | CID
type t = { kind : kind; id : string }

let v kind id =
  if String.length id <> 20 then invalid_arg "Xid.v: identifier must be 20 bytes";
  { kind; id }

let kind_label = function AD -> "AD" | HID -> "HID" | SID -> "SID" | CID -> "CID"

let of_name kind name =
  (* 160-bit identifier from two SipHash evaluations with distinct
     domain labels — enough to be collision-free for simulation-scale
     namespaces while keeping identifiers deterministic. *)
  let part label =
    let h =
      Dip_crypto.Siphash.hash Dip_crypto.Siphash.default_key
        (kind_label kind ^ ":" ^ label ^ ":" ^ name)
    in
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 h;
    Bytes.to_string b
  in
  let id = part "a" ^ part "b" ^ String.sub (part "c") 0 4 in
  v kind id

let kind_to_int = function AD -> 0 | HID -> 1 | SID -> 2 | CID -> 3

let kind_of_int = function
  | 0 -> Some AD
  | 1 -> Some HID
  | 2 -> Some SID
  | 3 -> Some CID
  | _ -> None

let equal a b = a.kind = b.kind && String.equal a.id b.id

let compare a b =
  match Int.compare (kind_to_int a.kind) (kind_to_int b.kind) with
  | 0 -> String.compare a.id b.id
  | c -> c

let hash t = Hashtbl.hash (kind_to_int t.kind, t.id)

let to_wire t = String.make 1 (Char.chr (kind_to_int t.kind)) ^ t.id

let of_wire s =
  if String.length s <> 21 then invalid_arg "Xid.of_wire: need 21 bytes";
  match kind_of_int (Char.code s.[0]) with
  | None -> invalid_arg "Xid.of_wire: unknown kind"
  | Some kind -> { kind; id = String.sub s 1 20 }

let pp fmt t =
  Format.fprintf fmt "%s:%s" (kind_label t.kind)
    (Dip_stdext.Hex.encode (String.sub t.id 0 4))
