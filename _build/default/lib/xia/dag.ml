type t = {
  nodes : Xid.t array; (* real nodes; DAG index i is nodes.(i-1) *)
  edges : int list array; (* edges.(i): successors of DAG index i *)
}

let validate t =
  let n = Array.length t.nodes in
  if n = 0 then invalid_arg "Xia.Dag: empty address";
  if Array.length t.edges <> n + 1 then
    invalid_arg "Xia.Dag: need successor lists for source and every node";
  Array.iteri
    (fun i succs ->
      List.iter
        (fun j ->
          if j <= i then invalid_arg "Xia.Dag: edges must go forward";
          if j > n then invalid_arg "Xia.Dag: edge to unknown node")
        succs)
    t.edges;
  (* The intent (last node) must be reachable from the source. *)
  let seen = Array.make (n + 1) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.edges.(i)
    end
  in
  visit 0;
  if not seen.(n) then invalid_arg "Xia.Dag: intent unreachable";
  t

let make ~nodes ~edges = validate { nodes; edges }

let direct xid = make ~nodes:[| xid |] ~edges:[| [ 1 ]; [] |]

let fallback ~intent ~via =
  let k = List.length via in
  let nodes = Array.of_list (via @ [ intent ]) in
  let intent_ix = k + 1 in
  (* Source tries the intent first, then the via chain; each via node
     tries the intent first, then the next via node. *)
  let edges =
    Array.init (k + 2) (fun i ->
        if i = intent_ix then []
        else if i = k then [ intent_ix ]
        else [ intent_ix; i + 1 ])
  in
  make ~nodes ~edges

let node_count t = Array.length t.nodes

let node t i =
  if i < 1 || i > node_count t then invalid_arg "Xia.Dag.node: bad index";
  t.nodes.(i - 1)

let successors t i =
  if i < 0 || i > node_count t then invalid_arg "Xia.Dag.successors: bad index";
  t.edges.(i)

let intent_index t = node_count t
let intent t = t.nodes.(node_count t - 1)

let to_wire t =
  let b = Buffer.create 128 in
  let n = node_count t in
  Buffer.add_uint8 b n;
  Array.iter (fun x -> Buffer.add_string b (Xid.to_wire x)) t.nodes;
  Array.iter
    (fun succs ->
      Buffer.add_uint8 b (List.length succs);
      List.iter (fun j -> Buffer.add_uint8 b j) succs)
    t.edges;
  Buffer.contents b

let of_wire s =
  let fail () = invalid_arg "Xia.Dag.of_wire: malformed encoding" in
  let pos = ref 0 in
  let u8 () =
    if !pos >= String.length s then fail ();
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let n = u8 () in
  if n = 0 then fail ();
  let nodes =
    Array.init n (fun _ ->
        if !pos + 21 > String.length s then fail ();
        let x =
          try Xid.of_wire (String.sub s !pos 21)
          with Invalid_argument _ -> fail ()
        in
        pos := !pos + 21;
        x)
  in
  let edges =
    Array.init (n + 1) (fun _ ->
        let d = u8 () in
        List.init d (fun _ -> u8 ()))
  in
  if !pos <> String.length s then fail ();
  validate { nodes; edges }

let pp fmt t =
  Format.fprintf fmt "@[<h>DAG(%d nodes; intent %a)@]" (node_count t) Xid.pp
    (intent t)
