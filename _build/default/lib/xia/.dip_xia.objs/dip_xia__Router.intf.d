lib/xia/router.mli: Dag Dip_bitbuf Dip_netsim Xid
