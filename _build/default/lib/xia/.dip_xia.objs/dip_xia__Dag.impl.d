lib/xia/dag.ml: Array Buffer Char Format List String Xid
