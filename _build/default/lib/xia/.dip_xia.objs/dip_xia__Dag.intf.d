lib/xia/dag.mli: Format Xid
