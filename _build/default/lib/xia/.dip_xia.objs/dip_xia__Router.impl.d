lib/xia/router.ml: Char Dag Dip_bitbuf Dip_netsim Hashtbl List String Xid
