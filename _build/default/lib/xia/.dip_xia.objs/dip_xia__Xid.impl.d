lib/xia/xid.ml: Bytes Char Dip_crypto Dip_stdext Format Hashtbl Int String
