lib/xia/xid.mli: Format
