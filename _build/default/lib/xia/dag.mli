(** XIA DAG addresses.

    An XIA destination address is a directed acyclic graph of XIDs.
    Forwarding starts at a virtual source node; at each step the
    router considers the current node's out-edges {e in priority
    order} and takes the first one it can make progress on — the
    "fallback" mechanism that lets new XID types coexist with
    routable legacy ones. The distinguished {e intent} node is what
    the sender ultimately wants (paper §1, §3: {i F_DAG} "parses the
    directed acyclic graph", {i F_intent} "handles the intent").

    Node 0 is always the virtual source; the intent is always the
    last node. Edges go from lower to higher indices (acyclicity by
    construction). *)

type t

val make : nodes:Xid.t array -> edges:int list array -> t
(** [nodes] are the real nodes (index 1..n in the DAG; the virtual
    source is index 0 and is not included). [edges.(i)] are the
    priority-ordered successors of DAG index [i] ([0] = the virtual
    source, real nodes start at 1). Raises [Invalid_argument] if an
    edge goes backwards/self, targets an unknown node, the graph has
    no nodes, or the intent (last node) is unreachable. *)

val direct : Xid.t -> t
(** The trivial address: source → intent. *)

val fallback : intent:Xid.t -> via:Xid.t list -> t
(** The canonical XIA fallback pattern: source tries the intent
    directly, else routes through [via] (e.g. AD → HID), and each
    [via] node also points at the intent. *)

val node_count : t -> int
(** Real nodes (excluding the virtual source). *)

val node : t -> int -> Xid.t
(** [node t i] for [i] in [\[1, node_count\]]. *)

val successors : t -> int -> int list
(** Priority-ordered successors of a DAG index (0 = virtual source). *)

val intent_index : t -> int
val intent : t -> Xid.t

val to_wire : t -> string
val of_wire : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> t -> unit
