module Bitbuf = Dip_bitbuf.Bitbuf

module Xid_tbl = Hashtbl.Make (struct
  type t = Xid.t

  let equal = Xid.equal
  let hash = Xid.hash
end)

type t = {
  routes : Dip_netsim.Sim.port Xid_tbl.t;
  local : unit Xid_tbl.t;
}

let create () = { routes = Xid_tbl.create 64; local = Xid_tbl.create 8 }

let add_route t xid port = Xid_tbl.replace t.routes xid port
let add_local t xid = Xid_tbl.replace t.local xid ()
let is_local t xid = Xid_tbl.mem t.local xid
let route t xid = Xid_tbl.find_opt t.routes xid

type verdict =
  | Forward of Dip_netsim.Sim.port * int
  | Deliver of int
  | Discard of string

let step t dag ~ptr =
  if ptr < 0 || ptr > Dag.node_count dag then Discard "bad-pointer"
  else begin
    (* Phase 1: advance through locally owned successors. *)
    let rec advance ptr =
      if ptr = Dag.intent_index dag then Deliver ptr
      else
        let local_succ =
          List.find_opt (fun j -> is_local t (Dag.node dag j)) (Dag.successors dag ptr)
        in
        match local_succ with
        | Some j -> advance j
        | None -> fallback ptr
    (* Phase 2: first routable successor, in priority order. *)
    and fallback ptr =
      let routable =
        List.find_map
          (fun j ->
            match route t (Dag.node dag j) with
            | Some port -> Some (port, ptr)
            | None -> None)
          (Dag.successors dag ptr)
      in
      match routable with
      | Some (port, ptr) -> Forward (port, ptr)
      | None -> Discard "dead-end"
    in
    advance ptr
  end

let encode_packet dag ~ptr ~payload =
  let wire = Dag.to_wire dag in
  if ptr < 0 || ptr > Dag.node_count dag then
    invalid_arg "Xia.Router.encode_packet: bad pointer";
  Bitbuf.of_string (String.make 1 (Char.chr ptr) ^ wire ^ payload)

let dag_wire_length s pos =
  (* Mirror of Dag.of_wire's framing: node count, nodes, successor
     lists for source + nodes. *)
  if pos >= String.length s then None
  else
    let n = Char.code s.[pos] in
    if n = 0 then None
    else
      let off = ref (pos + 1 + (21 * n)) in
      let ok = ref true in
      for _ = 0 to n do
        if !ok then
          if !off >= String.length s then ok := false
          else begin
            let d = Char.code s.[!off] in
            off := !off + 1 + d
          end
      done;
      if !ok && !off <= String.length s then Some (!off - pos) else None

let decode_packet buf =
  let s = Bitbuf.to_string buf in
  if String.length s < 1 then Error "empty packet"
  else
    let ptr = Char.code s.[0] in
    match dag_wire_length s 1 with
    | None -> Error "malformed DAG"
    | Some dl -> (
        try
          let dag = Dag.of_wire (String.sub s 1 dl) in
          if ptr > Dag.node_count dag then Error "bad pointer"
          else
            Ok (dag, ptr, String.sub s (1 + dl) (String.length s - 1 - dl))
        with Invalid_argument _ -> Error "malformed DAG")

let set_ptr buf ptr = Bitbuf.set_uint8 buf 0 ptr

let process t buf =
  match decode_packet buf with
  | Error e -> Discard e
  | Ok (dag, ptr, _) -> (
      match step t dag ~ptr with
      | Forward (port, ptr') ->
          set_ptr buf ptr';
          Forward (port, ptr')
      | (Deliver _ | Discard _) as v -> v)

let handler t _sim ~now:_ ~ingress:_ packet =
  match process t packet with
  | Forward (port, _) -> [ Dip_netsim.Sim.Forward (port, packet) ]
  | Deliver _ -> [ Dip_netsim.Sim.Consume ]
  | Discard reason -> [ Dip_netsim.Sim.Drop reason ]
