(** XIA identifiers.

    XIA "replaces the single address with a directed acyclic graph
    and uses the 'fallback' technology to support multi-protocol
    coexistence" (paper §1). The graph's nodes are XIDs: typed,
    self-certifying 160-bit identifiers. The types here are the four
    principal types of Han et al. (NSDI 2012). *)

type kind =
  | AD   (** autonomous domain *)
  | HID  (** host *)
  | SID  (** service *)
  | CID  (** content *)

type t = { kind : kind; id : string (* 20 bytes *) }

val v : kind -> string -> t
(** Raises [Invalid_argument] unless [id] is exactly 20 bytes. *)

val of_name : kind -> string -> t
(** Derive the 20-byte identifier from a human name (keyed hash) —
    self-certifying identifiers are hashes in XIA, and this gives
    tests and examples readable constructors. *)

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_wire : t -> string
(** 21 bytes: kind tag + identifier. *)

val of_wire : string -> t
(** Raises [Invalid_argument] on bad length or unknown kind. *)

val pp : Format.formatter -> t -> unit
(** e.g. [HID:1a2b3c4d…] (first 8 hex digits). *)
