(** XIA forwarding: fallback traversal of DAG addresses.

    A router owns a forwarding table (XID → port) and a set of local
    XIDs (identities it terminates: its AD, its HID, services and
    content it hosts). Processing a packet whose address pointer sits
    at DAG node [ptr]:

    + while some successor of [ptr] is {e local}, advance the pointer
      to it (first such successor in priority order); if the pointer
      reaches the intent, the packet is delivered — this is
      {i F_intent};
    + otherwise take the first successor with a forwarding-table
      route and transmit on that port — the fallback order is
      exactly the successor priority order — without moving the
      pointer (the pointer moves only at the node that owns the
      XID); this is the routing half of {i F_DAG};
    + if no successor is local or routable, discard.

    The packet wire format is [ptr byte ∥ DAG ∥ payload]; the DIP
    realization instead places the same bytes in the FN locations
    region (paper §3: "we set the header of XIA in the FN
    locations"). *)

type t

val create : unit -> t

val add_route : t -> Xid.t -> Dip_netsim.Sim.port -> unit
val add_local : t -> Xid.t -> unit
val is_local : t -> Xid.t -> bool
val route : t -> Xid.t -> Dip_netsim.Sim.port option

type verdict =
  | Forward of Dip_netsim.Sim.port * int  (** port, updated pointer *)
  | Deliver of int  (** pointer reached the intent *)
  | Discard of string

val step : t -> Dag.t -> ptr:int -> verdict
(** One fallback traversal step on a parsed address. *)

(** {1 Native packet form} *)

val encode_packet : Dag.t -> ptr:int -> payload:string -> Dip_bitbuf.Bitbuf.t
val decode_packet : Dip_bitbuf.Bitbuf.t -> (Dag.t * int * string, string) result
val set_ptr : Dip_bitbuf.Bitbuf.t -> int -> unit

val process : t -> Dip_bitbuf.Bitbuf.t -> verdict
(** Decode, {!step}, and write the updated pointer back in place. *)

val handler : t -> Dip_netsim.Sim.handler
