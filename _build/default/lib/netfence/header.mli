(** The NetFence congestion header region.

    NetFence "inserts a slim customized header between L3 and L4"
    (paper §1). In the DIP realization this header lives in the FN
    locations region and is the target of the {i F_cc} operation.
    Layout (168 bits = 21 bytes):

    {v
    bits [  0, 32)  sender id
    bits [ 32, 64)  allowed rate (bytes/second, truncated)
    bits [ 64, 72)  congestion flag (see {!flag})
    bits [ 72,104)  timestamp (units chosen by the deployment)
    bits [104,168)  feedback MAC (64-bit, keyed by the bottleneck)
    v}

    The MAC covers sender id ∥ flag ∥ timestamp under the bottleneck
    router's secret, so a sender cannot forge "no congestion"
    feedback — the property NetFence needs for open networks. *)

type flag = No_congestion | Congestion | Attack

val flag_to_int : flag -> int
val flag_of_int : int -> flag option

val size_bytes : int
(** 21. *)

val size_bits : int
(** 168. *)

(** Accessors at byte offset [base] in a packet buffer. *)

val get_sender : Dip_bitbuf.Bitbuf.t -> base:int -> int32
val set_sender : Dip_bitbuf.Bitbuf.t -> base:int -> int32 -> unit
val get_rate : Dip_bitbuf.Bitbuf.t -> base:int -> float
val set_rate : Dip_bitbuf.Bitbuf.t -> base:int -> float -> unit
val get_flag : Dip_bitbuf.Bitbuf.t -> base:int -> flag option
val set_flag : Dip_bitbuf.Bitbuf.t -> base:int -> flag -> unit
val get_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32
val set_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32 -> unit

val feedback_mac :
  key:Dip_crypto.Prf.key -> Dip_bitbuf.Bitbuf.t -> base:int -> int64
(** MAC over (sender, flag, timestamp) with the router's secret. *)

val stamp : key:Dip_crypto.Prf.key -> Dip_bitbuf.Bitbuf.t -> base:int -> unit
(** Write the feedback MAC field. *)

val verify : key:Dip_crypto.Prf.key -> Dip_bitbuf.Bitbuf.t -> base:int -> bool
(** Check the MAC field against the current header contents. *)

val init :
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  sender:int32 ->
  rate:float ->
  timestamp:int32 ->
  unit
(** Sender-side initialization: no-congestion flag, zero MAC. *)
