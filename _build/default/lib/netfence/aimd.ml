type t = {
  increase : float;
  decrease : float;
  min_rate : float;
  max_rate : float;
  mutable rate : float;
}

let create ?(increase = 12500.0) ?(decrease = 0.5) ?(min_rate = 1250.0)
    ?(max_rate = 1.25e9) ~initial () =
  if initial <= 0.0 || increase <= 0.0 then invalid_arg "Aimd.create";
  if decrease <= 0.0 || decrease >= 1.0 then
    invalid_arg "Aimd.create: decrease must be in (0,1)";
  if min_rate <= 0.0 || max_rate < min_rate then invalid_arg "Aimd.create: rates";
  { increase; decrease; min_rate; max_rate; rate = initial }

let rate t = t.rate

let clamp t v = Float.max t.min_rate (Float.min t.max_rate v)

let on_feedback t ~congested =
  t.rate <-
    clamp t (if congested then t.rate *. t.decrease else t.rate +. t.increase)
