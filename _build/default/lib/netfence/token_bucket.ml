type t = {
  mutable rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst ~now =
  if rate <= 0.0 || burst <= 0.0 then
    invalid_arg "Token_bucket.create: rate and burst must be positive";
  { rate; burst; tokens = burst; last = now }

let rate t = t.rate

let set_rate t rate =
  if rate <= 0.0 then invalid_arg "Token_bucket.set_rate: rate must be positive";
  t.rate <- rate

let refill t ~now =
  if now < t.last then invalid_arg "Token_bucket: time went backwards";
  t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
  t.last <- now

let consume t ~now ~bytes =
  refill t ~now;
  let need = float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

let available t ~now =
  refill t ~now;
  t.tokens
