(** The bottleneck router's policer: per-sender token buckets plus
    integrity-protected congestion feedback.

    On each packet the policer refills the sender's bucket at the
    rate the sender claims (bounded by the policer's ceiling),
    charges the packet size, and — when the sender is over its
    allowance — either {e marks} the congestion flag (normal mode) or
    {e drops} (attack mode, NetFence's DDoS stance). Marked or not,
    the feedback fields are MAC-stamped with the router's secret so
    end hosts cannot launder them. *)

type t

type mode = Mark | Police
(** [Mark]: over-rate packets are marked and forwarded.
    [Police]: over-rate packets are dropped (attack mode). *)

val create :
  ?mode:mode ->
  ?rate_ceiling:float ->
  ?burst:float ->
  key:Dip_crypto.Prf.key ->
  unit ->
  t
(** Defaults: [Mark], ceiling 1.25e8 B/s (1 Gb/s), burst 15000 B. *)

val mode : t -> mode
val set_mode : t -> mode -> unit
(** Switch to attack mode when a DDoS is detected. *)

val sender_count : t -> int

type verdict =
  | Pass  (** within allowance; feedback stamped as-is *)
  | Marked  (** over allowance; congestion flag set, forwarded *)
  | Dropped  (** over allowance in [Police] mode *)

val police :
  t -> Dip_bitbuf.Bitbuf.t -> base:int -> now:float -> size:int -> verdict
(** Process the NetFence header at [base]: enforce the bucket, set
    the flag if needed, stamp the MAC. [size] is the wire size the
    bucket is charged. *)
