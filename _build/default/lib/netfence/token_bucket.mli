(** Token-bucket rate limiter.

    The enforcement half of NetFence-style congestion policing
    (paper §1: NetFence "emulates congestion control (additive
    increase and multiplicative decrease) inside the network to
    mitigate DDoS attacks"). A bucket fills at [rate] bytes/second up
    to [burst] bytes; a packet passes if its size can be paid from
    the bucket. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** [rate] in bytes/second and [burst] in bytes must be positive. *)

val rate : t -> float

val set_rate : t -> float -> unit
(** Re-provision the fill rate (the policer applies AIMD decisions
    through this). *)

val consume : t -> now:float -> bytes:int -> bool
(** [consume t ~now ~bytes] refills for the elapsed time, then takes
    [bytes] tokens if available; [false] means the packet exceeds the
    allowance. [now] must not go backwards. *)

val available : t -> now:float -> float
(** Tokens available at [now], after refill. *)
