(** AIMD rate control — the sender's half of NetFence.

    The sender maintains an allowed rate; congestion feedback from the
    bottleneck (echoed by the receiver, integrity-protected by the
    router's MAC) triggers a multiplicative decrease, and each
    feedback-free control interval earns an additive increase. This
    is exactly the "congestion control emulated inside the network"
    of the paper's NetFence summary (§1). *)

type t

val create :
  ?increase:float ->
  ?decrease:float ->
  ?min_rate:float ->
  ?max_rate:float ->
  initial:float ->
  unit ->
  t
(** Defaults: [increase] 12500 B/s per interval, [decrease] 0.5,
    [min_rate] 1250 B/s, [max_rate] 1.25e9 B/s. *)

val rate : t -> float

val on_feedback : t -> congested:bool -> unit
(** One control interval elapsed: halve on congestion, otherwise add
    the increment. The rate stays within [min_rate, max_rate]. *)
