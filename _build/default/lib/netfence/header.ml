module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type flag = No_congestion | Congestion | Attack

let flag_to_int = function No_congestion -> 0 | Congestion -> 1 | Attack -> 2

let flag_of_int = function
  | 0 -> Some No_congestion
  | 1 -> Some Congestion
  | 2 -> Some Attack
  | _ -> None

let size_bits = 168
let size_bytes = size_bits / 8

let at base off len = Field.v ~off_bits:((8 * base) + off) ~len_bits:len

let get_sender buf ~base = Int64.to_int32 (Bitbuf.get_uint buf (at base 0 32))
let set_sender buf ~base v =
  Bitbuf.set_uint buf (at base 0 32) (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let get_rate buf ~base = Int64.to_float (Bitbuf.get_uint buf (at base 32 32))
let set_rate buf ~base v =
  let clamped = Float.max 0.0 (Float.min 4.294967295e9 v) in
  Bitbuf.set_uint buf (at base 32 32) (Int64.of_float clamped)

let get_flag buf ~base =
  flag_of_int (Int64.to_int (Bitbuf.get_uint buf (at base 64 8)))

let set_flag buf ~base f =
  Bitbuf.set_uint buf (at base 64 8) (Int64.of_int (flag_to_int f))

let get_timestamp buf ~base = Int64.to_int32 (Bitbuf.get_uint buf (at base 72 32))
let set_timestamp buf ~base v =
  Bitbuf.set_uint buf (at base 72 32) (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let feedback_mac ~key buf ~base =
  let covered = Bitbuf.get_field buf (at base 0 104) in
  let tag = Dip_crypto.Prf.derive key ~label:"netfence-feedback" covered in
  String.get_int64_be tag 0

let mac_field base = at base 104 64

let stamp ~key buf ~base =
  Bitbuf.set_uint buf (mac_field base) (feedback_mac ~key buf ~base)

let verify ~key buf ~base =
  Int64.equal (Bitbuf.get_uint buf (mac_field base)) (feedback_mac ~key buf ~base)

let init buf ~base ~sender ~rate ~timestamp =
  set_sender buf ~base sender;
  set_rate buf ~base rate;
  set_flag buf ~base No_congestion;
  set_timestamp buf ~base timestamp;
  Bitbuf.set_uint buf (mac_field base) 0L
