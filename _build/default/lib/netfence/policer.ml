type mode = Mark | Police

type t = {
  mutable mode : mode;
  rate_ceiling : float;
  burst : float;
  key : Dip_crypto.Prf.key;
  buckets : (int32, Token_bucket.t) Hashtbl.t;
}

let create ?(mode = Mark) ?(rate_ceiling = 1.25e8) ?(burst = 15000.0) ~key () =
  if rate_ceiling <= 0.0 || burst <= 0.0 then invalid_arg "Policer.create";
  { mode; rate_ceiling; burst; key; buckets = Hashtbl.create 64 }

let mode t = t.mode
let set_mode t m = t.mode <- m
let sender_count t = Hashtbl.length t.buckets

type verdict = Pass | Marked | Dropped

let bucket_for t ~sender ~claimed ~now =
  let rate = Float.max 1.0 (Float.min claimed t.rate_ceiling) in
  match Hashtbl.find_opt t.buckets sender with
  | Some b ->
      Token_bucket.set_rate b rate;
      b
  | None ->
      let b = Token_bucket.create ~rate ~burst:t.burst ~now in
      Hashtbl.replace t.buckets sender b;
      b

let police t buf ~base ~now ~size =
  let sender = Header.get_sender buf ~base in
  let claimed = Header.get_rate buf ~base in
  let bucket = bucket_for t ~sender ~claimed ~now in
  let within = Token_bucket.consume bucket ~now ~bytes:size in
  let verdict =
    if within then Pass
    else
      match t.mode with
      | Mark ->
          Header.set_flag buf ~base Header.Congestion;
          Marked
      | Police -> Dropped
  in
  (* Feedback integrity: stamp whatever flag the packet now carries
     (including a Congestion flag set by an upstream bottleneck). *)
  if verdict <> Dropped then Header.stamp ~key:t.key buf ~base;
  verdict
