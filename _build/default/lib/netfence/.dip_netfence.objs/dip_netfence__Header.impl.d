lib/netfence/header.ml: Dip_bitbuf Dip_crypto Float Int64 String
