lib/netfence/aimd.ml: Float
