lib/netfence/policer.mli: Dip_bitbuf Dip_crypto
