lib/netfence/policer.ml: Dip_crypto Float Hashtbl Header Token_bucket
