lib/netfence/token_bucket.ml: Float
