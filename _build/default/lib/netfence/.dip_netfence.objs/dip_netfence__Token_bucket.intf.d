lib/netfence/token_bucket.mli:
