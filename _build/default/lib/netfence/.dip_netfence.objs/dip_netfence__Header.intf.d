lib/netfence/header.mli: Dip_bitbuf Dip_crypto
