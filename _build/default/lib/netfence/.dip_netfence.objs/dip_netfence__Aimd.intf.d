lib/netfence/aimd.mli:
