lib/ip/ipv6.mli: Dip_bitbuf Dip_netsim Dip_tables
