lib/ip/ipv4.ml: Dip_bitbuf Dip_netsim Dip_tables String
