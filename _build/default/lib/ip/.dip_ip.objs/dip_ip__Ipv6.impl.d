lib/ip/ipv6.ml: Dip_bitbuf Dip_netsim Dip_tables String
