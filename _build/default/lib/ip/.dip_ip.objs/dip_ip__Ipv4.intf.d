lib/ip/ipv4.mli: Dip_bitbuf Dip_netsim Dip_tables
