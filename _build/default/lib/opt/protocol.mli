(** OPT source/router/destination operations.

    OPT provides {e source authentication} and {e path validation}:
    the source seeds a Path Verification Field (PVF), every on-path
    router folds its per-session key into the PVF and deposits an
    Origin and Path Verification tag (OPV), and the destination —
    holding the same session keys — replays the chain and compares
    (paper §3; Kim et al., SIGCOMM 2014).

    Concretely, with [mac k m] a 128-bit CBC-MAC:

    - source:   [pvf_0 = mac k_dst data_hash]
    - router i: [opv_i = mac k_i (bits 0..416)]  (data hash, session
                id, timestamp and the {e incoming} PVF), then
                [pvf_i = mac k_i pvf_(i-1)]
    - dest:     recompute both chains and compare all tags.

    The two router steps are exactly the paper's {i F_MAC} (key 7,
    span (0,416)) and {i F_mark} (key 8, span (288,128)) field
    operations, so the DIP realization reuses these functions
    verbatim. All operations work in place on a buffer region
    starting at byte [base], with the cipher selectable for the
    2EM-vs-AES ablation. *)

type alg = EM2 | AES
(** MAC cipher choice; the prototype uses 2EM (§4.1). *)

val mac : ?alg:alg -> key:string -> string -> string
(** The 16-byte tag primitive used by every step below. *)

val hash_payload : string -> string
(** The 128-bit data hash bound into the tags. Implemented as a
    CBC-MAC under a fixed public key — same primitive the dataplane
    already has (a collision-resistant hash in the real deployment;
    the substitution is recorded in DESIGN.md). *)

val source_init :
  ?alg:alg ->
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  hops:int ->
  session_id:int64 ->
  timestamp:int32 ->
  dest_key:Drkey.session_key ->
  payload:string ->
  unit
(** Fill the OPT region: data hash, session id, timestamp, seed PVF;
    OPVs zeroed. *)

val router_update :
  ?alg:alg ->
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  hop:int ->
  key:Drkey.session_key ->
  unit
(** The hop-[hop] router's work (1-based): write OPV then fold the
    PVF. *)

val mark_update : ?alg:alg -> Dip_bitbuf.Bitbuf.t -> base:int -> key:Drkey.session_key -> unit
(** Just the PVF fold ({i F_mark}) — exposed separately for the DIP
    engine. *)

val mac_update : ?alg:alg -> Dip_bitbuf.Bitbuf.t -> base:int -> hop:int -> key:Drkey.session_key -> unit
(** Just the OPV computation ({i F_MAC}). *)

type failure =
  | Bad_data_hash
  | Bad_opv of int  (** 1-based hop whose OPV does not verify *)
  | Bad_pvf

val verify :
  ?alg:alg ->
  Dip_bitbuf.Bitbuf.t ->
  base:int ->
  hops:int ->
  session_keys:Drkey.session_key list ->
  dest_key:Drkey.session_key ->
  payload:string option ->
  (unit, failure) result
(** Destination check ({i F_ver}): recompute the PVF/OPV chains from
    [session_keys] (path order) and compare every tag; optionally
    also re-hash the payload. First failure wins. *)

val pp_failure : Format.formatter -> failure -> unit
