(** The OPT header region: layout and field accessors.

    The layout is fixed by the FN triples the paper uses to realize
    OPT (§3): {i F_parm} at (loc 128, len 128), {i F_MAC} over
    (loc 0, len 416), {i F_mark} at (loc 288, len 128) and
    {i F_ver} over (loc 0, len 544). Solving those constraints gives

    {v
    bits [  0,128)  data hash
    bits [128,256)  session id (128-bit field; low 64 bits used)
    bits [256,288)  timestamp (32-bit)
    bits [288,416)  PVF — path verification field
    bits [416,544)  OPV 1 — per-hop verification tag
    bits [544,...)  OPV 2.. for longer paths (128 bits per hop)
    v}

    "The header length of OPT varies with the path length and we use
    one hop for evaluation" (§4.1): with [hops = 1] the region is
    exactly 544 bits = 68 bytes, which makes the paper's Table 2 OPT
    row (6 + 24 + 68 = 98 bytes) come out exactly.

    All accessors address an OPT region that starts [base] {e bytes}
    into a {!Dip_bitbuf.Bitbuf.t}, so the same code serves the native
    packet format and the DIP FN-locations region. *)

val size_bytes : hops:int -> int
(** 68 + 16·(hops-1). [hops >= 1]. *)

val size_bits : hops:int -> int

(** Field descriptors relative to the start of the region. *)
val data_hash_field : Dip_bitbuf.Field.t
val session_id_field : Dip_bitbuf.Field.t
val timestamp_field : Dip_bitbuf.Field.t
val pvf_field : Dip_bitbuf.Field.t
val opv_field : int -> Dip_bitbuf.Field.t
(** [opv_field i] is the i-th hop's OPV, [i >= 1]. *)

val mac_span_field : Dip_bitbuf.Field.t
(** Bits [0,416) — what {i F_MAC} reads (key 7 triple). *)

val ver_span_field : hops:int -> Dip_bitbuf.Field.t
(** Bits [0, 416 + 128·hops) — what {i F_ver} checks (544 bits at
    one hop, key 9 triple). *)

(** Accessors at a byte offset [base] within a buffer. *)

val get_data_hash : Dip_bitbuf.Bitbuf.t -> base:int -> string
val set_data_hash : Dip_bitbuf.Bitbuf.t -> base:int -> string -> unit
val get_session_id : Dip_bitbuf.Bitbuf.t -> base:int -> int64
val set_session_id : Dip_bitbuf.Bitbuf.t -> base:int -> int64 -> unit
val get_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32
val set_timestamp : Dip_bitbuf.Bitbuf.t -> base:int -> int32 -> unit
val get_pvf : Dip_bitbuf.Bitbuf.t -> base:int -> string
val set_pvf : Dip_bitbuf.Bitbuf.t -> base:int -> string -> unit
val get_opv : Dip_bitbuf.Bitbuf.t -> base:int -> int -> string
val set_opv : Dip_bitbuf.Bitbuf.t -> base:int -> int -> string -> unit
