module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

let size_bits ~hops =
  if hops < 1 then invalid_arg "Opt.Header.size_bits: need at least one hop";
  416 + (128 * hops)

let size_bytes ~hops = size_bits ~hops / 8

let data_hash_field = Field.v ~off_bits:0 ~len_bits:128
let session_id_field = Field.v ~off_bits:128 ~len_bits:128
let timestamp_field = Field.v ~off_bits:256 ~len_bits:32
let pvf_field = Field.v ~off_bits:288 ~len_bits:128

let opv_field i =
  if i < 1 then invalid_arg "Opt.Header.opv_field: hops are 1-based";
  Field.v ~off_bits:(416 + (128 * (i - 1))) ~len_bits:128

let mac_span_field = Field.v ~off_bits:0 ~len_bits:416
let ver_span_field ~hops = Field.v ~off_bits:0 ~len_bits:(size_bits ~hops)

let at base (f : Field.t) =
  Field.v ~off_bits:((8 * base) + f.Field.off_bits) ~len_bits:f.Field.len_bits

let get_data_hash buf ~base = Bitbuf.get_field buf (at base data_hash_field)
let set_data_hash buf ~base v = Bitbuf.set_field buf (at base data_hash_field) v

(* The session id occupies the low 64 bits of its 128-bit field, the
   upper half is reserved. *)
let session_id_low base =
  Field.v ~off_bits:((8 * base) + 128 + 64) ~len_bits:64

let get_session_id buf ~base = Bitbuf.get_uint buf (session_id_low base)
let set_session_id buf ~base v = Bitbuf.set_uint buf (session_id_low base) v

let get_timestamp buf ~base =
  Int64.to_int32 (Bitbuf.get_uint buf (at base timestamp_field))

let set_timestamp buf ~base v =
  Bitbuf.set_uint buf (at base timestamp_field)
    (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let get_pvf buf ~base = Bitbuf.get_field buf (at base pvf_field)
let set_pvf buf ~base v = Bitbuf.set_field buf (at base pvf_field) v
let get_opv buf ~base i = Bitbuf.get_field buf (at base (opv_field i))
let set_opv buf ~base i v = Bitbuf.set_field buf (at base (opv_field i)) v
