(** DRKey-style dynamic key derivation for OPT.

    In OPT, "after receiving a packet, the router will derive a
    dynamic key from the session ID in the packet header with its
    local key. Then the router uses the dynamic key, which is shared
    with the host, to recalculate and update the tags" (paper §3).

    Each router holds a long-term local secret; the per-session key
    is [PRF(local_secret, session_id)]. During session setup the
    source obtains the same session keys (the paper's "key
    negotiation process"), which we model with {!session_keys} — the
    trust structure is identical, only the key-exchange transport is
    elided (see DESIGN.md §2). *)

type secret
(** A router's long-term local secret. *)

val secret_of_string : string -> secret
(** 16 bytes. Raises [Invalid_argument] otherwise. *)

val secret_gen : Dip_stdext.Prng.t -> secret
(** A fresh random secret (for simulations). *)

type session_key = string
(** A derived 16-byte per-session key. *)

val derive : secret -> session_id:int64 -> session_key
(** The dynamic key a router computes on the fast path. *)

val derive_for : secret -> label:string -> string -> session_key
(** General labelled derivation from the same local secret — used by
    protocols that key on other inputs (e.g. EPIC derives per
    (source, timestamp)). Distinct labels give independent keys. *)

val session_keys : secret list -> session_id:int64 -> session_key list
(** What the source learns at session setup: the session key of every
    on-path node, in path order. *)
