type secret = Dip_crypto.Prf.key

let secret_of_string = Dip_crypto.Prf.key_of_string

let secret_gen g =
  Dip_crypto.Prf.key_of_string (Bytes.to_string (Dip_stdext.Prng.bytes g 16))

type session_key = string

let derive secret ~session_id =
  Dip_crypto.Prf.derive_int secret ~label:"opt-session" session_id

let derive_for secret ~label input = Dip_crypto.Prf.derive secret ~label input

let session_keys secrets ~session_id =
  List.map (fun s -> derive s ~session_id) secrets
