module Bitbuf = Dip_bitbuf.Bitbuf
module Mac2em = Dip_crypto.Cbc_mac.Make (Dip_crypto.Even_mansour)
module MacAes = Dip_crypto.Cbc_mac.Make (Dip_crypto.Aes128)

type alg = EM2 | AES

let mac ?(alg = EM2) ~key msg =
  match alg with
  | EM2 -> Mac2em.mac (Mac2em.expand_key key) msg
  | AES -> MacAes.mac (MacAes.expand_key key) msg

(* A fixed public key turns the MAC into an unkeyed compression
   function standing in for a hash; see DESIGN.md substitutions. *)
let hash_key = "opt-data-hash-k0"

let hash_payload payload = mac ~alg:EM2 ~key:hash_key payload

(* The 52-byte F_MAC input: bits [0,416) of the OPT region. *)
let mac_span buf ~base =
  Bitbuf.get_field buf
    (Dip_bitbuf.Field.v ~off_bits:(8 * base) ~len_bits:416)

let mac_span_with_pvf buf ~base ~pvf =
  let s = mac_span buf ~base in
  String.sub s 0 36 ^ pvf

let source_init ?alg buf ~base ~hops ~session_id ~timestamp ~dest_key ~payload =
  Header.set_data_hash buf ~base (hash_payload payload);
  (* Clear the reserved upper half of the session-id field, then set
     the id itself. *)
  Bitbuf.set_field buf
    (Dip_bitbuf.Field.v ~off_bits:((8 * base) + 128) ~len_bits:64)
    (String.make 8 '\000');
  Header.set_session_id buf ~base session_id;
  Header.set_timestamp buf ~base timestamp;
  Header.set_pvf buf ~base (mac ?alg ~key:dest_key (Header.get_data_hash buf ~base));
  for i = 1 to hops do
    Header.set_opv buf ~base i (String.make 16 '\000')
  done

let mac_update ?alg buf ~base ~hop ~key =
  Header.set_opv buf ~base hop (mac ?alg ~key (mac_span buf ~base))

let mark_update ?alg buf ~base ~key =
  Header.set_pvf buf ~base (mac ?alg ~key (Header.get_pvf buf ~base))

let router_update ?alg buf ~base ~hop ~key =
  mac_update ?alg buf ~base ~hop ~key;
  mark_update ?alg buf ~base ~key

type failure = Bad_data_hash | Bad_opv of int | Bad_pvf

let pp_failure fmt = function
  | Bad_data_hash -> Format.pp_print_string fmt "data hash mismatch"
  | Bad_opv i -> Format.fprintf fmt "OPV %d mismatch" i
  | Bad_pvf -> Format.pp_print_string fmt "PVF mismatch"

let ct_equal a b =
  String.length a = String.length b
  && begin
       let diff = ref 0 in
       String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
       !diff = 0
     end

let verify ?alg buf ~base ~hops ~session_keys ~dest_key ~payload =
  if List.length session_keys <> hops then
    invalid_arg "Opt.Protocol.verify: need one session key per hop";
  let data_hash = Header.get_data_hash buf ~base in
  let payload_ok =
    match payload with
    | None -> true
    | Some p -> ct_equal data_hash (hash_payload p)
  in
  if not payload_ok then Error Bad_data_hash
  else begin
    (* Replay the chain from the seed PVF. *)
    let rec go hop pvf = function
      | [] -> if ct_equal pvf (Header.get_pvf buf ~base) then Ok () else Error Bad_pvf
      | key :: rest ->
          let expected_opv =
            mac ?alg ~key (mac_span_with_pvf buf ~base ~pvf)
          in
          if not (ct_equal expected_opv (Header.get_opv buf ~base hop)) then
            Error (Bad_opv hop)
          else go (hop + 1) (mac ?alg ~key pvf) rest
    in
    go 1 (mac ?alg ~key:dest_key data_hash) session_keys
  end
