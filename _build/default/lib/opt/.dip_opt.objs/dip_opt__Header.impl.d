lib/opt/header.ml: Dip_bitbuf Int64
