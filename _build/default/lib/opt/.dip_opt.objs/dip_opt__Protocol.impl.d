lib/opt/protocol.ml: Char Dip_bitbuf Dip_crypto Format Header List String
