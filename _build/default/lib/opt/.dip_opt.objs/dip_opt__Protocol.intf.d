lib/opt/protocol.mli: Dip_bitbuf Drkey Format
