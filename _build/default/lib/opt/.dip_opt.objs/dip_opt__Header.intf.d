lib/opt/header.mli: Dip_bitbuf
