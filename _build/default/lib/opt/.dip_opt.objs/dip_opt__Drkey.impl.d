lib/opt/drkey.ml: Bytes Dip_crypto Dip_stdext List
