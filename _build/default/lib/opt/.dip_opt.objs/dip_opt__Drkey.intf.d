lib/opt/drkey.mli: Dip_stdext
