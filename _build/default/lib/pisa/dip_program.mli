(** The DIP dataplane program of §4.1, expressed on the PISA
    pipeline abstraction — what the paper's P4 prototype looks like
    in this repository.

    The program handles the DIP-32 forwarding shape (the packet
    layout of {!Dip_core.Realize.ipv4}): the parser checks FN_Num,
    extracts the operation keys of both FN triples and the preset
    destination/source slices; the stages then

    + validate FN 1's key against the installed module (key 1),
    + longest-prefix-match the destination slice,
    + validate FN 2's key (key 3),
    + decrement the hop limit (dropping expired packets).

    Packets of any other shape are rejected by the parser — the
    "preset fixed field slices" restriction, honest to the
    hardware. *)

val parser : unit -> Parser.t
(** The DIP-32 parse graph. *)

val pipeline :
  routes:(Dip_tables.Ipaddr.Prefix.t * int) list -> unit -> Pipeline.t
(** The four-stage match-action program with the given v4 routes
    installed in the LPM stage. *)

type verdict = Forward of int | Drop of string

val process : Parser.t -> Pipeline.t -> Dip_bitbuf.Bitbuf.t -> verdict * Pipeline.result option
(** Parse + run. [None] result when the parser rejected. *)

val demo_resubmit_pipeline : rounds:int -> Pipeline.t
(** A pipeline whose MAC stage requests [rounds] resubmissions
    before accepting — the AES-on-Tofino pattern, used by tests and
    the dispatch ablation to show pass accounting. *)
