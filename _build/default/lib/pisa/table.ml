type action = Phv.t -> unit

type kind = Exact | Lpm | Ternary

type entry = {
  value : int64;
  mask : int64; (* for ternary; for lpm derived from prefix_len *)
  prefix_len : int; (* lpm *)
  priority : int; (* ternary *)
  action_name : string;
  action : action;
}

type t = {
  name : string;
  key : string;
  kind : kind;
  default_name : string;
  default : action;
  exact : (int64, entry) Hashtbl.t;
  mutable listed : entry list; (* lpm / ternary entries *)
}

let create ?default ~name ~key kind =
  let default_name, default =
    match default with Some (n, a) -> (n, a) | None -> ("NoAction", fun _ -> ())
  in
  {
    name;
    key;
    kind;
    default_name;
    default;
    exact = Hashtbl.create 64;
    listed = [];
  }

let name t = t.name

let size t =
  match t.kind with
  | Exact -> Hashtbl.length t.exact
  | Lpm | Ternary -> List.length t.listed

let add_exact t value ~name action =
  if t.kind <> Exact then invalid_arg "Pisa.Table.add_exact: not an exact table";
  Hashtbl.replace t.exact value
    { value; mask = -1L; prefix_len = 0; priority = 0; action_name = name; action }

let mask_of_prefix ~width ~prefix_len =
  if prefix_len = 0 then 0L
  else if prefix_len >= width then
    if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  else
    Int64.shift_left
      (Int64.sub (Int64.shift_left 1L prefix_len) 1L)
      (width - prefix_len)

let add_lpm t ~value ~prefix_len ~width ~name action =
  if t.kind <> Lpm then invalid_arg "Pisa.Table.add_lpm: not an lpm table";
  if prefix_len < 0 || prefix_len > width || width < 1 || width > 64 then
    invalid_arg "Pisa.Table.add_lpm: bad prefix";
  let mask = mask_of_prefix ~width ~prefix_len in
  t.listed <-
    { value = Int64.logand value mask; mask; prefix_len; priority = 0;
      action_name = name; action }
    :: t.listed

let add_ternary t ~value ~mask ~priority ~name action =
  if t.kind <> Ternary then invalid_arg "Pisa.Table.add_ternary: not ternary";
  t.listed <-
    { value = Int64.logand value mask; mask; prefix_len = 0; priority;
      action_name = name; action }
    :: t.listed

let lookup t key_value =
  match t.kind with
  | Exact -> Hashtbl.find_opt t.exact key_value
  | Lpm ->
      List.fold_left
        (fun best e ->
          if Int64.logand key_value e.mask = e.value then
            match best with
            | Some b when b.prefix_len >= e.prefix_len -> best
            | _ -> Some e
          else best)
        None t.listed
  | Ternary ->
      List.fold_left
        (fun best e ->
          if Int64.logand key_value e.mask = e.value then
            match best with
            | Some b when b.priority <= e.priority -> best
            | _ -> Some e
          else best)
        None t.listed

let apply t phv =
  let hit =
    match Phv.get phv t.key with
    | exception Not_found -> None
    | v -> lookup t v
  in
  match hit with
  | Some e ->
      e.action phv;
      e.action_name
  | None ->
      t.default phv;
      t.default_name
