(** Unrolled FN dispatch — the §4.1 compilation strategy.

    "It was challenging to implement a loop to invoke the operation
    modules. We use the simple 'if-else' statement with FN_Num to
    determine how many field operations to perform. The field slices
    … are restricted to not using variables, therefore we preset some
    fixed field slices and use some tables to match the target
    field."

    {!compile} takes a {e template} DIP packet and pre-resolves
    everything Algorithm 1 would do per packet: the FN triples are
    parsed once, each operation module is looked up once, and each
    target field becomes a preset slice. The compiled program then
    processes any packet with the {e same header shape} (same FN
    definitions and locations length — the preset-slice restriction)
    without re-parsing or re-dispatching. The dispatch ablation (A1
    in DESIGN.md) measures interpreter vs compiled on identical
    packets. *)

type t

val compile :
  registry:Dip_core.Registry.t ->
  template:Dip_bitbuf.Bitbuf.t ->
  (t, string) result
(** Pre-resolve a packet shape. Fails on unparseable templates or on
    router-mandatory FNs missing from the registry. *)

val fn_count : t -> int
(** Router-side operations in the unrolled program. *)

val keys : t -> Dip_core.Opkey.t list
(** The router-side operation keys, in execution order. *)

val matches : t -> Dip_bitbuf.Bitbuf.t -> bool
(** Whether a packet has the template's header shape (the cheap
    runtime check the preset slices rely on). *)

val run :
  t ->
  Dip_core.Env.t ->
  now:float ->
  ingress:Dip_core.Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  Dip_core.Engine.verdict
(** Execute the unrolled program on a packet of the compiled shape.
    Returns [Dropped "shape-mismatch"] when {!matches} fails —
    a real switch would send such packets to the slow path. *)

val estimate : t -> ?alg:Dip_opt.Protocol.alg -> ?parallel:bool -> Cost.config -> Cost.estimate
(** The cost model's view of this program. *)
