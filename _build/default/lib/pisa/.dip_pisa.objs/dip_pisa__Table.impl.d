lib/pisa/table.ml: Hashtbl Int64 List Phv
