lib/pisa/pipeline.mli: Cost Phv Table
