lib/pisa/phv.mli: Dip_bitbuf
