lib/pisa/cost.mli: Dip_core Dip_opt
