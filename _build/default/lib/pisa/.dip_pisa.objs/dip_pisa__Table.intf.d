lib/pisa/table.mli: Phv
