lib/pisa/pipeline.ml: Cost List Phv Printf Table
