lib/pisa/dip_program.mli: Dip_bitbuf Dip_tables Parser Pipeline
