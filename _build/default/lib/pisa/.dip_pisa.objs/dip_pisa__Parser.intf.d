lib/pisa/parser.mli: Dip_bitbuf Phv
