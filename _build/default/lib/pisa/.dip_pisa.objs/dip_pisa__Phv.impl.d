lib/pisa/phv.ml: Dip_bitbuf Hashtbl Printf
