lib/pisa/compile.mli: Cost Dip_bitbuf Dip_core Dip_opt
