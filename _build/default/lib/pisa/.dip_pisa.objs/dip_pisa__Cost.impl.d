lib/pisa/cost.ml: Dip_core Dip_crypto Dip_opt List Stdlib
