lib/pisa/compile.ml: Array Cost Dip_bitbuf Dip_core Engine Env Fn Guard Header List Opkey Packet Printf Registry String
