lib/pisa/dip_program.ml: Dip_bitbuf Dip_tables Int64 List Parser Phv Pipeline Table
