lib/pisa/parser.ml: Dip_bitbuf Hashtbl List Phv
