(** Match-action tables — the unit of work in a PISA stage.

    A table matches one PHV container (exact, LPM or ternary) and
    runs the hit entry's action, or the default action on a miss
    ("we … use some tables to match the target field", §4.1).
    Actions are host-language closures over router state, exactly as
    P4 actions compile to ALU configurations plus extern calls. *)

type action = Phv.t -> unit

type kind =
  | Exact
  | Lpm  (** entries carry a prefix length; longest wins *)
  | Ternary  (** entries carry a mask; first-priority match wins *)

type t

val create : ?default:string * action -> name:string -> key:string -> kind -> t
(** [key] names the PHV container matched. The default action (miss)
    defaults to a no-op called ["NoAction"]. *)

val name : t -> string
val size : t -> int

val add_exact : t -> int64 -> name:string -> action -> unit
(** Raises [Invalid_argument] on a non-[Exact] table. *)

val add_lpm : t -> value:int64 -> prefix_len:int -> width:int -> name:string -> action -> unit
(** [width] is the container width in bits; the entry matches when
    the top [prefix_len] bits agree. *)

val add_ternary : t -> value:int64 -> mask:int64 -> priority:int -> name:string -> action -> unit
(** Lower [priority] wins among matches. *)

val apply : t -> Phv.t -> string
(** Match the key container, run the chosen action, return its name.
    A missing container counts as a miss. *)
