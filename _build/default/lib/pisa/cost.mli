(** The PISA cost model: what the paper's Tofino would pay.

    The prototype ran on a Barefoot Tofino S9180-32X with three
    §4.1 compromises baked in:

    + no loops — FN dispatch is an if-else chain on FN_Num, so every
      executed operation consumes match-action {e stages};
    + fixed field slices — slice extraction is free at runtime but
      bounded per pass;
    + no runtime programmability — operation modules are pre-written
      and selected by key.

    A packet traverses the pipeline in one or more {e passes}; an
    operation that does not fit the remaining stages (or that, like
    AES, needs more rounds than one traversal offers) forces a
    {e resubmit}. Time = parse + passes × pipeline latency. The
    absolute constants are calibrated to public Tofino figures
    (~400 ns pipeline latency); the model's purpose is relative
    shape, not nanosecond fidelity (DESIGN.md §2). *)

type config = {
  stages_per_pass : int;  (** match-action stages per traversal *)
  stage_ns : float;  (** per-stage latency *)
  parse_ns_per_byte : float;  (** programmable parser cost *)
  resubmit_ns : float;  (** fixed penalty per extra pass *)
}

val tofino_like : config
(** 12 stages, 400 ns/pass-ish constants. *)

(** Per-operation resource demand. *)
type op_cost = { stages : int; extra_passes : int }

val op_cost : alg:Dip_opt.Protocol.alg -> Dip_core.Opkey.t -> op_cost
(** Stage/pass demand of one operation module. The MAC operations
    cost [extra_passes > 0] under AES (the §4.1 resubmission) and 0
    under 2EM. *)

type estimate = {
  passes : int;
  stages_used : int;
  time_ns : float;
}

val estimate :
  config ->
  ?alg:Dip_opt.Protocol.alg ->
  ?parallel:bool ->
  header_bytes:int ->
  Dip_core.Opkey.t list ->
  estimate
(** Model the per-hop cost of executing the given (router-side)
    operation keys on a packet with [header_bytes] of DIP header.
    With [parallel] (the §2.2 flag), independent operations share
    stages: the stage demand is the maximum over dependency levels
    rather than the sum — we approximate by dividing the
    non-crypto stage demand evenly. *)
