(** A PISA pipeline: an ordered sequence of match-action stages with
    resubmission.

    A packet's PHV flows through every stage once per pass; an action
    may set the egress port, drop, or request a {e resubmit}, which
    sends the PHV through the pipeline again — the mechanism §4.1
    says AES would need on Tofino. The pipeline enforces the stage
    budget (a pass has a fixed number of stages) and a resubmission
    cap, and reports pass/stage accounting to the caller so measured
    behaviour and the {!Cost} model can be compared. *)

type stage = { label : string; tables : Table.t list }

type t

val build : ?config:Cost.config -> ?max_passes:int -> stage list -> t
(** Raises [Invalid_argument] if there are more stages than the
    configuration's [stages_per_pass] (the program does not fit the
    chip) or no stages at all. [max_passes] defaults to 8. *)

type result = {
  egress : int option;
  dropped : string option;
  passes : int;
  tables_applied : int;
  trace : (string * string) list;  (** (table, action) in order *)
}

val run : t -> Phv.t -> result
(** Send a parsed PHV through the pipeline. Resubmission repeats the
    pass with the (possibly rewritten) headers; exceeding
    [max_passes] drops with reason ["resubmit-limit"]. *)

val stage_count : t -> int
