(** The Packet Header Vector — the per-packet state a PISA pipeline
    operates on.

    A PISA parser deposits header fields into named containers; the
    match-action stages read and write those containers and a small
    set of metadata registers (egress port, drop, resubmit). §4.1's
    "preset fixed field slices" are exactly containers whose
    positions were fixed at compile time: a container is a name bound
    to a {!Dip_bitbuf.Field.t} of the underlying packet, so container
    writes go straight to the wire bytes (as in hardware, where
    deparsing re-emits the containers). *)

type t

val create : Dip_bitbuf.Bitbuf.t -> t
(** Wrap a packet with no containers bound yet. *)

val packet : t -> Dip_bitbuf.Bitbuf.t

val bind : t -> string -> Dip_bitbuf.Field.t -> unit
(** Bind a container name to a packet field (parser extraction).
    Rebinding replaces. Raises [Invalid_argument] if the field falls
    outside the packet. *)

val bound : t -> string -> bool

val get : t -> string -> int64
(** Read a container (≤ 64 bits). Raises [Not_found] for unbound
    names. *)

val set : t -> string -> int64 -> unit
(** Write a container; the packet bytes change underneath. *)

val get_bytes : t -> string -> string
val set_bytes : t -> string -> string -> unit
(** Wide-container access (e.g. 128-bit tags). *)

val field_of : t -> string -> Dip_bitbuf.Field.t
(** The slice a container is bound to. *)

(** {1 Standard metadata} *)

val get_meta : t -> string -> int64
(** 0 when never set. *)

val set_meta : t -> string -> int64 -> unit

val egress : t -> int option
val set_egress : t -> int -> unit
val drop : t -> string -> unit
val dropped : t -> string option
val request_resubmit : t -> unit
val resubmit_requested : t -> bool
val clear_resubmit : t -> unit
