type stage = { label : string; tables : Table.t list }

type t = { stages : stage list; max_passes : int }

let build ?(config = Cost.tofino_like) ?(max_passes = 8) stages =
  if stages = [] then invalid_arg "Pisa.Pipeline.build: no stages";
  if List.length stages > config.Cost.stages_per_pass then
    invalid_arg
      (Printf.sprintf
         "Pisa.Pipeline.build: %d stages exceed the %d-stage pipeline"
         (List.length stages) config.Cost.stages_per_pass);
  if max_passes < 1 then invalid_arg "Pisa.Pipeline.build: max_passes";
  { stages; max_passes }

type result = {
  egress : int option;
  dropped : string option;
  passes : int;
  tables_applied : int;
  trace : (string * string) list;
}

let stage_count t = List.length t.stages

let run t phv =
  let tables_applied = ref 0 in
  let trace = ref [] in
  let one_pass () =
    List.iter
      (fun stage ->
        if Phv.dropped phv = None then
          List.iter
            (fun table ->
              if Phv.dropped phv = None then begin
                incr tables_applied;
                let action = Table.apply table phv in
                trace := (Table.name table, action) :: !trace
              end)
            stage.tables)
      t.stages
  in
  let rec go pass =
    Phv.clear_resubmit phv;
    one_pass ();
    if Phv.dropped phv = None && Phv.resubmit_requested phv then
      if pass >= t.max_passes then begin
        Phv.drop phv "resubmit-limit";
        pass
      end
      else go (pass + 1)
    else pass
  in
  let passes = go 1 in
  {
    egress = Phv.egress phv;
    dropped = Phv.dropped phv;
    passes;
    tables_applied = !tables_applied;
    trace = List.rev !trace;
  }
