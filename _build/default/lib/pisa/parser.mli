(** The programmable parser: a finite state machine that extracts
    preset slices into PHV containers.

    §4.1: "The field slices in Barefoot Tofino are restricted to not
    using variables, therefore we preset some fixed field slices".
    Accordingly each parser state extracts containers at {e fixed}
    offsets; branching on an extracted value (e.g. FN_Num) is how a
    DIP parser selects between the preset layouts. *)

type extract = { container : string; field : Dip_bitbuf.Field.t }

type state = {
  name : string;
  extracts : extract list;
  transition : transition;
}

and transition =
  | Accept
  | Reject of string
  | Select of string * (int64 * string) list * string
      (** [(container, cases, default)] — branch to a state by the
          value of an already-extracted container. *)

type t

val build : start:string -> state list -> t
(** Validate the graph: the start state and every transition target
    must exist, and the graph must be cycle-free (a parser is a DAG).
    Raises [Invalid_argument] otherwise. *)

val run : t -> Dip_bitbuf.Bitbuf.t -> (Phv.t, string) result
(** Parse: walk the FSM, extracting into a fresh PHV. Fails cleanly
    when an extraction exceeds the packet or the FSM rejects. *)

val state_count : t -> int
