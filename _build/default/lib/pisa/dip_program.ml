module Field = Dip_bitbuf.Field
module Ipaddr = Dip_tables.Ipaddr

(* DIP-32 wire layout (Realize.ipv4): 6-byte basic header, two 6-byte
   FN triples, then the 8-byte locations region (dst ∥ src). *)

let f ~off ~len = Field.v ~off_bits:off ~len_bits:len

let parser () =
  Parser.build ~start:"start"
    [
      {
        Parser.name = "start";
        extracts =
          [
            { Parser.container = "fn_num"; field = f ~off:8 ~len:8 };
            { Parser.container = "hop_limit"; field = f ~off:16 ~len:8 };
            { Parser.container = "param"; field = f ~off:24 ~len:16 };
          ];
        transition = Parser.Select ("fn_num", [ (2L, "dip32") ], "reject");
      };
      {
        Parser.name = "dip32";
        extracts =
          [
            (* Operation keys of the two triples (offset 4 within
               each 6-byte triple), tag bit masked in the table. *)
            { Parser.container = "fn1_key"; field = f ~off:(8 * 10) ~len:16 };
            { Parser.container = "fn2_key"; field = f ~off:(8 * 16) ~len:16 };
            (* Preset slices: destination and source in the
               locations region at byte 18. *)
            { Parser.container = "dip32_dst"; field = f ~off:(8 * 18) ~len:32 };
            { Parser.container = "dip32_src"; field = f ~off:(8 * 22) ~len:32 };
          ];
        transition = Parser.Accept;
      };
      {
        Parser.name = "reject";
        extracts = [];
        transition = Parser.Reject "unsupported shape (preset slices)";
      };
    ]

let noop _ = ()

let key_table ~stage ~container ~expect =
  let t =
    Table.create
      ~default:("drop_unknown_op", fun phv -> Phv.drop phv "unknown-op")
      ~name:stage ~key:container Table.Exact
  in
  Table.add_exact t (Int64.of_int expect) ~name:"valid_op" noop;
  t

let pipeline ~routes () =
  let lpm =
    Table.create
      ~default:("drop_no_route", fun phv -> Phv.drop phv "no-route")
      ~name:"ipv4_lpm" ~key:"dip32_dst" Table.Lpm
  in
  List.iter
    (fun (prefix, port) ->
      match prefix.Ipaddr.Prefix.addr with
      | Ipaddr.Prefix.V4 a ->
          Table.add_lpm lpm
            ~value:(Int64.logand (Int64.of_int32 a) 0xFFFFFFFFL)
            ~prefix_len:prefix.Ipaddr.Prefix.len ~width:32 ~name:"set_egress"
            (fun phv -> Phv.set_egress phv port)
      | Ipaddr.Prefix.V6 _ ->
          invalid_arg "Dip_program.pipeline: v6 route in the DIP-32 program")
    routes;
  let hop =
    let t =
      Table.create
        ~default:
          ( "decrement_hop",
            fun phv -> Phv.set phv "hop_limit" (Int64.sub (Phv.get phv "hop_limit") 1L) )
        ~name:"hop_limit" ~key:"hop_limit" Table.Ternary
    in
    (* Exact-match entries on the expiring values, expressed as
       full-mask ternary entries. *)
    Table.add_ternary t ~value:0L ~mask:0xFFL ~priority:0 ~name:"drop_expired"
      (fun phv -> Phv.drop phv "hop-limit-expired");
    Table.add_ternary t ~value:1L ~mask:0xFFL ~priority:0 ~name:"drop_expired"
      (fun phv -> Phv.drop phv "hop-limit-expired");
    t
  in
  Pipeline.build
    [
      { Pipeline.label = "fn1"; tables = [ key_table ~stage:"fn1_dispatch" ~container:"fn1_key" ~expect:1 ] };
      { Pipeline.label = "route"; tables = [ lpm ] };
      { Pipeline.label = "fn2"; tables = [ key_table ~stage:"fn2_dispatch" ~container:"fn2_key" ~expect:3 ] };
      { Pipeline.label = "hop"; tables = [ hop ] };
    ]

type verdict = Forward of int | Drop of string

let process parser pipeline packet =
  match Parser.run parser packet with
  | Error e -> (Drop e, None)
  | Ok phv -> (
      let result = Pipeline.run pipeline phv in
      match (result.Pipeline.dropped, result.Pipeline.egress) with
      | Some reason, _ -> (Drop reason, Some result)
      | None, Some port -> (Forward port, Some result)
      | None, None -> (Drop "no-decision", Some result))

(* A stylized multi-pass MAC: each pass completes a few "rounds" and
   resubmits until done — the AES pattern of §4.1. The round counter
   lives in PHV metadata, surviving resubmission like Tofino's
   resubmit metadata. *)
let demo_resubmit_pipeline ~rounds =
  let mac =
    Table.create
      ~default:
        ( "mac_round",
          fun phv ->
            let done_ = Phv.get_meta phv "mac_rounds" in
            if Int64.to_int done_ + 1 >= rounds then begin
              Phv.set_meta phv "mac_rounds" (Int64.of_int rounds);
              Phv.set_egress phv 1
            end
            else begin
              Phv.set_meta phv "mac_rounds" (Int64.add done_ 1L);
              Phv.request_resubmit phv
            end )
      ~name:"mac" ~key:"hop_limit" Table.Exact
  in
  Pipeline.build [ { Pipeline.label = "mac"; tables = [ mac ] } ]
