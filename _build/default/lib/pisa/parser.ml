type extract = { container : string; field : Dip_bitbuf.Field.t }

type state = { name : string; extracts : extract list; transition : transition }

and transition =
  | Accept
  | Reject of string
  | Select of string * (int64 * string) list * string

type t = { start : string; states : (string, state) Hashtbl.t }

let targets = function
  | Accept | Reject _ -> []
  | Select (_, cases, default) -> default :: List.map snd cases

let build ~start states =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem tbl s.name then
        invalid_arg ("Pisa.Parser.build: duplicate state " ^ s.name);
      Hashtbl.replace tbl s.name s)
    states;
  if not (Hashtbl.mem tbl start) then
    invalid_arg "Pisa.Parser.build: unknown start state";
  List.iter
    (fun s ->
      List.iter
        (fun target ->
          if not (Hashtbl.mem tbl target) then
            invalid_arg ("Pisa.Parser.build: unknown transition target " ^ target))
        (targets s.transition))
    states;
  (* Cycle check by DFS. *)
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      invalid_arg "Pisa.Parser.build: parser graph has a cycle"
    else begin
      Hashtbl.replace visiting name ();
      List.iter visit (targets (Hashtbl.find tbl name).transition);
      Hashtbl.remove visiting name;
      Hashtbl.replace done_ name ()
    end
  in
  visit start;
  { start; states = tbl }

let state_count t = Hashtbl.length t.states

let run t packet =
  let phv = Phv.create packet in
  let rec step name =
    let state = Hashtbl.find t.states name in
    match
      List.iter
        (fun e -> Phv.bind phv e.container e.field)
        state.extracts
    with
    | exception Invalid_argument _ -> Error ("parser: truncated at " ^ name)
    | () -> (
        match state.transition with
        | Accept -> Ok phv
        | Reject reason -> Error ("parser: " ^ reason)
        | Select (container, cases, default) -> (
            match Phv.get phv container with
            | exception Not_found ->
                Error ("parser: select on unbound container " ^ container)
            | v -> (
                match List.assoc_opt v cases with
                | Some next -> step next
                | None -> step default)))
  in
  step t.start
