module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type t = {
  packet : Bitbuf.t;
  containers : (string, Field.t) Hashtbl.t;
  meta : (string, int64) Hashtbl.t;
  mutable egress : int option;
  mutable dropped : string option;
  mutable resubmit : bool;
}

let create packet =
  {
    packet;
    containers = Hashtbl.create 16;
    meta = Hashtbl.create 8;
    egress = None;
    dropped = None;
    resubmit = false;
  }

let packet t = t.packet

let bind t name field =
  if Field.last_bit field > Bitbuf.bit_length t.packet then
    invalid_arg
      (Printf.sprintf "Phv.bind: container %S exceeds the packet" name);
  Hashtbl.replace t.containers name field

let bound t name = Hashtbl.mem t.containers name

let field_of t name =
  match Hashtbl.find_opt t.containers name with
  | Some f -> f
  | None -> raise Not_found

let get t name = Bitbuf.get_uint t.packet (field_of t name)
let set t name v = Bitbuf.set_uint t.packet (field_of t name) v
let get_bytes t name = Bitbuf.get_field t.packet (field_of t name)
let set_bytes t name v = Bitbuf.set_field t.packet (field_of t name) v

let get_meta t name =
  match Hashtbl.find_opt t.meta name with Some v -> v | None -> 0L

let set_meta t name v = Hashtbl.replace t.meta name v

let egress t = t.egress
let set_egress t p = t.egress <- Some p
let drop t reason = t.dropped <- Some reason
let dropped t = t.dropped
let request_resubmit t = t.resubmit <- true
let resubmit_requested t = t.resubmit
let clear_resubmit t = t.resubmit <- false
