(** Hierarchical content names, NDN style.

    A name is a non-empty sequence of components, written
    ["/video/intro.mp4/seg3"]. NDN routers match names against FIB
    entries by {e component-wise} longest prefix (paper §3, NDN
    realization). The DIP prototype forwards on a {e 32-bit content
    name} (§4.1) — {!hash32} produces that compact form. *)

type t

val of_string : string -> t
(** Parse a ["/a/b/c"] (or ["a/b/c"]) name. Empty components are
    rejected; a name must have at least one component. *)

val to_string : t -> string
(** Canonical rendering with a leading slash. *)

val of_components : string list -> t
(** Build from components directly. Raises [Invalid_argument] on an
    empty list, empty components, or components containing ['/']. *)

val components : t -> string list
val length : t -> int
(** Number of components. *)

val append : t -> string -> t
(** Add one component at the end. *)

val prefix : t -> int -> t
(** [prefix n k] is the first [k] components ([1 <= k <= length n]). *)

val is_prefix : prefix:t -> t -> bool
(** Component-wise prefix relation, e.g. [/a/b] is a prefix of
    [/a/b/c] but not of [/a/bc]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash32 : t -> int32
(** The prototype's 32-bit content-name form: SipHash of the
    canonical rendering folded to 32 bits. Stable across runs. *)

val to_wire : t -> string
(** Length-prefixed component encoding (1-byte count, then per
    component a 2-byte big-endian length and the bytes). *)

val of_wire : string -> t
(** Inverse of {!to_wire}. Raises [Invalid_argument] on truncated or
    trailing bytes. *)

val pp : Format.formatter -> t -> unit
