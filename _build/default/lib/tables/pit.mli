(** The NDN pending interest table.

    {i F_PIT} (key 5): when an interest is forwarded, the router
    "records its receiving port in the PIT"; when matching data
    arrives, it is forwarded "to the recorded request port (match
    hit) or the packet is discarded (match miss)" (paper §3).

    Entries aggregate: a second interest for the same name from a
    different port joins the existing entry instead of being
    re-forwarded. Entries expire after their interest lifetime and a
    capacity bound protects router state — one of the §2.4 security
    requirements (bounded per-packet state consumption). *)

type port = int

type 'k t

val create : ?capacity:int -> unit -> 'k t
(** [capacity] bounds live entries (default 65536). *)

val size : 'k t -> int

type outcome =
  | Forwarded  (** new entry created; the interest should go upstream *)
  | Aggregated (** joined an existing entry; do not re-forward *)
  | Rejected   (** table full; drop the interest *)

val insert : 'k t -> key:'k -> port:port -> now:float -> lifetime:float -> outcome
(** Record a pending interest arriving on [port]. *)

val consume : 'k t -> key:'k -> now:float -> port list
(** Data arrived: return the request ports and drop the entry.
    Expired entries are treated as absent. The empty list is the
    "match miss → discard" case. *)

val pending : 'k t -> key:'k -> now:float -> port list
(** Inspect without consuming. *)

val purge_expired : 'k t -> now:float -> int
(** Evict all expired entries; returns how many were dropped. *)

val hash32_key : Name.t -> int32
(** Convenience: the prototype keys its PIT by the 32-bit hashed
    content name, same as the FIB. *)
