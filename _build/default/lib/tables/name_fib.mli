(** The NDN forwarding information base: content-name prefix →
    forwarding port, matched by component-wise longest prefix.

    This is the table behind the paper's {i F_FIB} operation (key 4):
    "a forwarding information base \[that\] performs the longest
    prefix match with the content name" (§2.3). The DIP prototype
    additionally forwards on 32-bit hashed names; {!lookup_hash}
    serves that path via an exact-match index maintained alongside
    the component trie. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int

val insert : 'a t -> Name.t -> 'a -> unit
(** Bind a name prefix; replaces an existing binding of the same
    prefix. *)

val remove : 'a t -> Name.t -> bool
(** Remove an exact prefix; returns whether it was present. *)

val lookup : 'a t -> Name.t -> (Name.t * 'a) option
(** Longest-prefix match: the most specific registered prefix of the
    queried name, with its value. *)

val lookup_hash : 'a t -> int32 -> 'a option
(** Exact match on the 32-bit hashed form of a registered prefix —
    the prototype's forwarding path (§4.1). *)

val fold : (Name.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
