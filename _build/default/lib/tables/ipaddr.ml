module V4 = struct
  type t = int32

  let of_octets a b c d =
    let ok x = x >= 0 && x <= 255 in
    if not (ok a && ok b && ok c && ok d) then
      invalid_arg "Ipaddr.V4.of_octets: octet out of range";
    Int32.logor
      (Int32.shift_left (Int32.of_int a) 24)
      (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        let parse x =
          match int_of_string_opt x with
          | Some v when v >= 0 && v <= 255 && x <> "" -> v
          | _ -> invalid_arg ("Ipaddr.V4.of_string: bad octet in " ^ s)
        in
        try of_octets (parse a) (parse b) (parse c) (parse d)
        with Invalid_argument _ ->
          invalid_arg ("Ipaddr.V4.of_string: bad octet in " ^ s))
    | _ -> invalid_arg ("Ipaddr.V4.of_string: malformed " ^ s)

  let octet a i = Int32.to_int (Int32.shift_right_logical a (8 * (3 - i))) land 0xFF

  let to_string a =
    Printf.sprintf "%d.%d.%d.%d" (octet a 0) (octet a 1) (octet a 2) (octet a 3)

  let to_wire a =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 a;
    Bytes.unsafe_to_string b

  let of_wire s =
    if String.length s <> 4 then invalid_arg "Ipaddr.V4.of_wire: need 4 bytes";
    String.get_int32_be s 0

  let bit a i =
    if i < 0 || i > 31 then invalid_arg "Ipaddr.V4.bit: index out of range";
    Int32.logand (Int32.shift_right_logical a (31 - i)) 1l = 1l

  let compare = Int32.unsigned_compare
  let pp fmt a = Format.pp_print_string fmt (to_string a)
end

module V6 = struct
  type t = int64 * int64

  let to_wire (hi, lo) =
    let b = Bytes.create 16 in
    Bytes.set_int64_be b 0 hi;
    Bytes.set_int64_be b 8 lo;
    Bytes.unsafe_to_string b

  let of_wire s =
    if String.length s <> 16 then invalid_arg "Ipaddr.V6.of_wire: need 16 bytes";
    (String.get_int64_be s 0, String.get_int64_be s 8)

  let group (hi, lo) i =
    let w = if i < 4 then hi else lo in
    Int64.to_int (Int64.shift_right_logical w (16 * (3 - (i mod 4)))) land 0xFFFF

  let to_string a =
    String.concat ":" (List.init 8 (fun i -> Printf.sprintf "%x" (group a i)))

  let of_groups gs =
    let set (hi, lo) i v =
      let v64 = Int64.of_int v in
      if i < 4 then (Int64.logor hi (Int64.shift_left v64 (16 * (3 - i))), lo)
      else (hi, Int64.logor lo (Int64.shift_left v64 (16 * (3 - (i mod 4)))))
    in
    List.fold_left
      (fun (acc, i) g -> (set acc i g, i + 1))
      ((0L, 0L), 0)
      gs
    |> fst

  let parse_group s g =
    if g = "" || String.length g > 4 then
      invalid_arg ("Ipaddr.V6.of_string: bad group in " ^ s);
    match int_of_string_opt ("0x" ^ g) with
    | Some v when v >= 0 && v <= 0xFFFF -> v
    | _ -> invalid_arg ("Ipaddr.V6.of_string: bad group in " ^ s)

  let of_string s =
    (* Accept one "::" elision, including leading/trailing. *)
    let split_groups part =
      if part = "" then []
      else List.map (parse_group s) (String.split_on_char ':' part)
    in
    let double =
      let rec find i =
        if i + 1 >= String.length s then None
        else if s.[i] = ':' && s.[i + 1] = ':' then Some i
        else find (i + 1)
      in
      find 0
    in
    match double with
    | None ->
        let gs = split_groups s in
        if List.length gs <> 8 then
          invalid_arg ("Ipaddr.V6.of_string: need 8 groups in " ^ s);
        of_groups gs
    | Some i ->
        let left = String.sub s 0 i in
        let right = String.sub s (i + 2) (String.length s - i - 2) in
        if String.length right >= 2 && String.sub right 0 1 = ":" then
          invalid_arg ("Ipaddr.V6.of_string: multiple elisions in " ^ s);
        let l = split_groups left and r = split_groups right in
        let missing = 8 - List.length l - List.length r in
        if missing < 1 then
          invalid_arg ("Ipaddr.V6.of_string: too many groups in " ^ s);
        of_groups (l @ List.init missing (fun _ -> 0) @ r)

  let bit (hi, lo) i =
    if i < 0 || i > 127 then invalid_arg "Ipaddr.V6.bit: index out of range";
    let w = if i < 64 then hi else lo in
    Int64.logand (Int64.shift_right_logical w (63 - (i mod 64))) 1L = 1L

  let compare (ah, al) (bh, bl) =
    match Int64.unsigned_compare ah bh with
    | 0 -> Int64.unsigned_compare al bl
    | c -> c

  let pp fmt a = Format.pp_print_string fmt (to_string a)
end

module Prefix = struct
  type addr = V4 of V4.t | V6 of V6.t
  type t = { addr : addr; len : int }

  let mask_v4 a len =
    if len = 0 then 0l
    else Int32.logand a (Int32.shift_left (-1l) (32 - len))

  let mask_v6 (hi, lo) len =
    if len = 0 then (0L, 0L)
    else if len <= 64 then (Int64.logand hi (Int64.shift_left (-1L) (64 - len)), 0L)
    else if len >= 128 then (hi, lo)
    else (hi, Int64.logand lo (Int64.shift_left (-1L) (128 - len)))

  let v4 a len =
    if len < 0 || len > 32 then invalid_arg "Prefix.v4: length out of range";
    { addr = V4 (mask_v4 a len); len }

  let v6 a len =
    if len < 0 || len > 128 then invalid_arg "Prefix.v6: length out of range";
    { addr = V6 (mask_v6 a len); len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> invalid_arg ("Prefix.of_string: missing / in " ^ s)
    | Some i -> (
        let a = String.sub s 0 i in
        let l = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt l with
        | None -> invalid_arg ("Prefix.of_string: bad length in " ^ s)
        | Some len ->
            if String.contains a ':' then v6 (V6.of_string a) len
            else v4 (V4.of_string a) len)

  let to_string t =
    match t.addr with
    | V4 a -> Printf.sprintf "%s/%d" (V4.to_string a) t.len
    | V6 a -> Printf.sprintf "%s/%d" (V6.to_string a) t.len

  let bits t i =
    match t.addr with V4 a -> V4.bit a i | V6 a -> V6.bit a i

  let matches t addr =
    match (t.addr, addr) with
    | V4 p, V4 a -> mask_v4 a t.len = p
    | V6 p, V6 a -> mask_v6 a t.len = p
    | V4 _, V6 _ | V6 _, V4 _ -> false

  let compare a b =
    match (a.addr, b.addr) with
    | V4 x, V4 y -> (
        match V4.compare x y with 0 -> Int.compare a.len b.len | c -> c)
    | V6 x, V6 y -> (
        match V6.compare x y with 0 -> Int.compare a.len b.len | c -> c)
    | V4 _, V6 _ -> -1
    | V6 _, V4 _ -> 1

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end
