type 'a node = {
  children : (string, 'a node) Hashtbl.t;
  mutable value : 'a option;
}

type 'a t = {
  root : 'a node;
  by_hash : (int32, 'a) Hashtbl.t;
  mutable count : int;
}

let fresh () = { children = Hashtbl.create 4; value = None }

let create () = { root = fresh (); by_hash = Hashtbl.create 64; count = 0 }
let size t = t.count

let insert t name v =
  let rec go node = function
    | [] ->
        if node.value = None then t.count <- t.count + 1;
        node.value <- Some v
    | c :: rest ->
        let next =
          match Hashtbl.find_opt node.children c with
          | Some n -> n
          | None ->
              let n = fresh () in
              Hashtbl.add node.children c n;
              n
        in
        go next rest
  in
  go t.root (Name.components name);
  Hashtbl.replace t.by_hash (Name.hash32 name) v

let remove t name =
  let rec go node = function
    | [] -> (
        match node.value with
        | None -> false
        | Some _ ->
            node.value <- None;
            t.count <- t.count - 1;
            true)
    | c :: rest -> (
        match Hashtbl.find_opt node.children c with
        | None -> false
        | Some n ->
            let removed = go n rest in
            if removed && n.value = None && Hashtbl.length n.children = 0 then
              Hashtbl.remove node.children c;
            removed)
  in
  let removed = go t.root (Name.components name) in
  if removed then Hashtbl.remove t.by_hash (Name.hash32 name);
  removed

let lookup t name =
  let rec go node comps taken best =
    let best =
      match node.value with
      | Some v when taken > 0 -> Some (taken, v)
      | Some v -> Some (taken, v) (* root binding: a default route *)
      | None -> best
    in
    match comps with
    | [] -> best
    | c :: rest -> (
        match Hashtbl.find_opt node.children c with
        | None -> best
        | Some n -> go n rest (taken + 1) best)
  in
  match go t.root (Name.components name) 0 None with
  | None -> None
  | Some (0, _) -> None (* a zero-component "name" cannot be built *)
  | Some (k, v) -> Some (Name.prefix name k, v)

let lookup_hash t h = Hashtbl.find_opt t.by_hash h

let fold f t init =
  let rec go node path_rev acc =
    let acc =
      match node.value with
      | Some v when path_rev <> [] ->
          f (Name.of_components (List.rev path_rev)) v acc
      | _ -> acc
    in
    Hashtbl.fold (fun c n acc -> go n (c :: path_rev) acc) node.children acc
  in
  go t.root [] init
