type t = string list (* non-empty, no '/', no empty components *)

let validate_component c =
  if c = "" then invalid_arg "Name: empty component";
  if String.contains c '/' then invalid_arg "Name: component contains /"

let of_components cs =
  if cs = [] then invalid_arg "Name.of_components: empty name";
  List.iter validate_component cs;
  cs

let of_string s =
  let s =
    if String.length s > 0 && s.[0] = '/' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  match String.split_on_char '/' s with
  | [] | [ "" ] -> invalid_arg ("Name.of_string: empty name: " ^ s)
  | cs -> of_components cs

let to_string t = "/" ^ String.concat "/" t
let components t = t
let length = List.length
let append t c = validate_component c; t @ [ c ]

let prefix t k =
  if k < 1 || k > length t then invalid_arg "Name.prefix: bad length";
  List.filteri (fun i _ -> i < k) t

let rec is_prefix ~prefix t =
  match (prefix, t) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps, c :: cs -> String.equal p c && is_prefix ~prefix:ps cs

let equal a b = List.equal String.equal a b
let compare a b = List.compare String.compare a b
let hash32 t = Dip_crypto.Siphash.hash32 Dip_crypto.Siphash.default_key (to_string t)

let to_wire t =
  let b = Buffer.create 64 in
  Buffer.add_uint8 b (length t);
  List.iter
    (fun c ->
      if String.length c > 0xFFFF then invalid_arg "Name.to_wire: component too long";
      Buffer.add_uint16_be b (String.length c);
      Buffer.add_string b c)
    t;
  Buffer.contents b

let of_wire s =
  let fail () = invalid_arg "Name.of_wire: malformed encoding" in
  if String.length s < 1 then fail ();
  let n = Char.code s.[0] in
  let pos = ref 1 in
  let comps =
    List.init n (fun _ ->
        if !pos + 2 > String.length s then fail ();
        let len = String.get_uint16_be s !pos in
        pos := !pos + 2;
        if !pos + len > String.length s then fail ();
        let c = String.sub s !pos len in
        pos := !pos + len;
        c)
  in
  if !pos <> String.length s then fail ();
  of_components comps

let pp fmt t = Format.pp_print_string fmt (to_string t)
