lib/tables/lpm_trie.ml: List
