lib/tables/lpm_trie.mli:
