lib/tables/name_fib.ml: Hashtbl List Name
