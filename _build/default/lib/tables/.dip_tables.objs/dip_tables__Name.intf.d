lib/tables/name.mli: Format
