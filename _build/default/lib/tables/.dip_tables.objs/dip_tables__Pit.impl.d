lib/tables/pit.ml: Float Hashtbl List Name
