lib/tables/lru.ml: Hashtbl List
