lib/tables/pit.mli: Name
