lib/tables/name.ml: Buffer Char Dip_crypto Format List String
