lib/tables/ipaddr.ml: Bytes Format Int Int32 Int64 List Printf String
