lib/tables/name_fib.mli: Name
