lib/tables/ipaddr.mli: Format
