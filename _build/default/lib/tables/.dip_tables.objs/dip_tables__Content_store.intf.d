lib/tables/content_store.mli: Name
