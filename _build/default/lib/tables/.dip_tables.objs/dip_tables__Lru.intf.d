lib/tables/lru.mli:
