lib/tables/content_store.ml: Hashtbl Name
