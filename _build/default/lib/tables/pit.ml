type port = int

type entry = { mutable ports : port list; mutable expires : float }

type 'k t = { table : ('k, entry) Hashtbl.t; capacity : int }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Pit.create: capacity must be positive";
  { table = Hashtbl.create 256; capacity }

let size t = Hashtbl.length t.table

type outcome = Forwarded | Aggregated | Rejected

let live t key now =
  match Hashtbl.find_opt t.table key with
  | Some e when e.expires > now -> Some e
  | Some _ ->
      Hashtbl.remove t.table key;
      None
  | None -> None

let insert t ~key ~port ~now ~lifetime =
  match live t key now with
  | Some e ->
      if not (List.mem port e.ports) then e.ports <- port :: e.ports;
      e.expires <- Float.max e.expires (now +. lifetime);
      Aggregated
  | None ->
      if Hashtbl.length t.table >= t.capacity then Rejected
      else begin
        Hashtbl.replace t.table key { ports = [ port ]; expires = now +. lifetime };
        Forwarded
      end

let consume t ~key ~now =
  match live t key now with
  | None -> []
  | Some e ->
      Hashtbl.remove t.table key;
      List.rev e.ports

let pending t ~key ~now =
  match live t key now with None -> [] | Some e -> List.rev e.ports

let purge_expired t ~now =
  let dead =
    Hashtbl.fold
      (fun k e acc -> if e.expires <= now then k :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) dead;
  List.length dead

let hash32_key = Name.hash32
