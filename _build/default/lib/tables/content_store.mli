(** An LRU content store (cache) for NDN data packets.

    The paper's prototype router "has no cached data" (§4.1,
    footnote 2), but the same footnote describes the extension: "the
    FIB matching module can be slightly modified to first match the
    local content store and then match the FIB." This module is that
    content store; the NDN forwarder and the {i F_FIB}-with-cache
    variant both use it, and the content-poisoning ablation (§2.4's
    {i F_pass} discussion) attacks it. *)

type 'v t

val create : capacity:int -> 'v t
(** LRU cache holding at most [capacity] entries ([capacity >= 1]). *)

val size : 'v t -> int
val capacity : 'v t -> int

val insert : 'v t -> Name.t -> 'v -> unit
(** Insert (or refresh) an entry, evicting the least recently used
    entry when full. *)

val find : 'v t -> Name.t -> 'v option
(** Lookup; a hit refreshes recency. *)

val mem : 'v t -> Name.t -> bool
(** Lookup without touching recency. *)

val remove : 'v t -> Name.t -> bool

val hits : 'v t -> int
val misses : 'v t -> int
(** Running hit/miss counters for cache-efficiency reporting. *)

val clear : 'v t -> unit
