(** IPv4 and IPv6 addresses and prefixes.

    These are the address formats behind the paper's
    {i F_32_match} / {i F_128_match} operations (Table 1, keys 1–2):
    32-bit and 128-bit destination matching against a
    longest-prefix-match table. *)

module V4 : sig
  type t = int32
  (** A 32-bit address in host order semantics (bit 0 = MSB). *)

  val of_string : string -> t
  (** Parse dotted-quad ["a.b.c.d"]. Raises [Invalid_argument] on
      malformed input. *)

  val to_string : t -> string
  val of_octets : int -> int -> int -> int -> t
  val to_wire : t -> string
  (** 4 big-endian bytes. *)

  val of_wire : string -> t
  (** Inverse of {!to_wire}; requires exactly 4 bytes. *)

  val bit : t -> int -> bool
  (** [bit a i] is bit [i], MSB first ([i] in [\[0,32)]). *)

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module V6 : sig
  type t = int64 * int64
  (** A 128-bit address as [(hi, lo)]. *)

  val of_string : string -> t
  (** Parse full (non-abbreviated) colon-hex
      ["xxxx:xxxx:...:xxxx"] (8 groups) or the abbreviated ["::"]
      forms with one elision. Raises [Invalid_argument] on malformed
      input. *)

  val to_string : t -> string
  (** Full 8-group lowercase colon-hex (no elision). *)

  val to_wire : t -> string
  (** 16 big-endian bytes. *)

  val of_wire : string -> t
  val bit : t -> int -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(** A CIDR prefix over either family. *)
module Prefix : sig
  type addr = V4 of V4.t | V6 of V6.t

  type t = private { addr : addr; len : int }

  val v4 : V4.t -> int -> t
  (** [v4 a len] with [len] in [\[0,32\]]; host bits beyond the
      prefix are cleared. *)

  val v6 : V6.t -> int -> t
  (** [v6 a len] with [len] in [\[0,128\]]. *)

  val of_string : string -> t
  (** Parse ["10.0.0.0/8"] or ["2001:db8::/32"]. *)

  val to_string : t -> string
  val bits : t -> int -> bool
  (** [bits p i] is bit [i] of the prefix address. *)

  val matches : t -> addr -> bool
  (** Whether an address falls inside the prefix (same family and
      shared high bits). *)

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end
