lib/bitbuf/field.ml: Format Int
