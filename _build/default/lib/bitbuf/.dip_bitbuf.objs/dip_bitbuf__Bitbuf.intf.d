lib/bitbuf/bitbuf.mli: Field Format
