lib/bitbuf/field.mli: Format
