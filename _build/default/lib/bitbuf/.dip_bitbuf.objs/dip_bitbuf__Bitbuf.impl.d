lib/bitbuf/bitbuf.ml: Bytes Char Dip_stdext Field Format Int64 Printf String
