type t = { off_bits : int; len_bits : int }

let v ~off_bits ~len_bits =
  if off_bits < 0 then invalid_arg "Field.v: negative offset";
  if len_bits <= 0 then invalid_arg "Field.v: non-positive length";
  { off_bits; len_bits }

let last_bit f = f.off_bits + f.len_bits

let byte_span f =
  let first = f.off_bits / 8 in
  let last = (last_bit f + 7) / 8 in
  (first, last - first)

let is_byte_aligned f = f.off_bits mod 8 = 0 && f.len_bits mod 8 = 0

let overlaps a b = a.off_bits < last_bit b && b.off_bits < last_bit a

let contains outer inner =
  outer.off_bits <= inner.off_bits && last_bit inner <= last_bit outer

let equal a b = a.off_bits = b.off_bits && a.len_bits = b.len_bits

let compare a b =
  match Int.compare a.off_bits b.off_bits with
  | 0 -> Int.compare a.len_bits b.len_bits
  | c -> c

let pp fmt f = Format.fprintf fmt "(loc:%d, len:%d)" f.off_bits f.len_bits
