(** A field is a contiguous run of bits inside a packet region,
    identified by a bit offset and a bit length — exactly the
    [(field_location, field_length)] half of a DIP Field Operation
    triple (paper §2.1). *)

type t = private { off_bits : int; len_bits : int }

val v : off_bits:int -> len_bits:int -> t
(** [v ~off_bits ~len_bits] validates and builds a field. Raises
    [Invalid_argument] if either component is negative or the length
    is zero. *)

val last_bit : t -> int
(** One past the highest bit touched, i.e. [off_bits + len_bits]. *)

val byte_span : t -> int * int
(** [(first_byte, byte_len)] of the smallest byte range covering the
    field. *)

val is_byte_aligned : t -> bool
(** True when both offset and length are multiples of 8; such fields
    take the fast byte-copy path. *)

val overlaps : t -> t -> bool
(** Whether two fields share at least one bit. The DIP engine uses
    this to decide if the header's parallel-execution flag (§2.2) is
    safe to honour. *)

val contains : t -> t -> bool
(** [contains outer inner] is true when every bit of [inner] lies in
    [outer]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
