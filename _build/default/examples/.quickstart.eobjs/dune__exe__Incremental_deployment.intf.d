examples/incremental_deployment.mli:
