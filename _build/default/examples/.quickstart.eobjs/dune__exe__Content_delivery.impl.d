examples/content_delivery.ml: Array Dip_bitbuf Dip_core Dip_netsim Dip_tables Engine Env Hashtbl Int64 List Ops Packet Printf Realize
