examples/quickstart.ml: Dip_bitbuf Dip_core Dip_ip Dip_netsim Dip_tables Engine Env Format Header List Ops Packet Printf Realize Result
