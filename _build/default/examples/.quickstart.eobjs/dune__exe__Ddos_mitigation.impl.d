examples/ddos_mitigation.ml: Dip_core Dip_crypto Dip_ip Dip_netfence Dip_netsim Dip_tables Engine Env Hashtbl Ops Option Packet Printf Realize String
