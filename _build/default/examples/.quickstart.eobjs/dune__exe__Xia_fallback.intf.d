examples/xia_fallback.mli:
