examples/quickstart.mli:
