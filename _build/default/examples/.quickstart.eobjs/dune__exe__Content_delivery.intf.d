examples/content_delivery.mli:
