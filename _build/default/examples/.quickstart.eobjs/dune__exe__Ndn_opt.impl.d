examples/ndn_opt.ml: Dip_core Dip_netsim Dip_opt Dip_stdext Dip_tables Engine Env List Ops Packet Printf Realize Result String
