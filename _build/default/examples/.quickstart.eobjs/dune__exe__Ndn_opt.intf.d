examples/ndn_opt.mli:
