examples/ddos_mitigation.mli:
