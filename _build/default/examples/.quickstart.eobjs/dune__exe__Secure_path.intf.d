examples/secure_path.mli:
