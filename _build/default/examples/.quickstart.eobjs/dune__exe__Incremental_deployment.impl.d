examples/incremental_deployment.ml: Bootstrap Compat Dip_bitbuf Dip_core Dip_ip Dip_netsim Dip_tables Engine Env Fn List Opkey Ops Packet Printf Realize Registry Result String
