examples/secure_path.ml: Dip_bitbuf Dip_core Dip_ip Dip_opt Dip_stdext Dip_tables Engine Env Fn Int32 Int64 List Opkey Ops Packet Printf Result
