examples/path_telemetry.ml: Dip_core Dip_ip Dip_netsim Dip_tables Engine Env Header List Ops Packet Printf Realize String Telemetry
