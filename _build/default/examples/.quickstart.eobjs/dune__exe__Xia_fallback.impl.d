examples/xia_fallback.ml: Dag Dip_core Dip_netsim Dip_xia Engine Env Format List Ops Packet Printf Realize Result Router String Xid
