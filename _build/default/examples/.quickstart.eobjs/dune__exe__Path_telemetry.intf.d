examples/path_telemetry.mli:
