(* Content delivery with DIP-realized NDN (paper §3).

     dune exec examples/content_delivery.exe

   A consumer requests Zipf-distributed content through a DIP router
   whose F_FIB/F_PIT modules do the NDN work on 32-bit hashed names
   (§4.1). The router runs with a content store (the §4.1 footnote 2
   extension), so popular items are served from the cache. *)

open Dip_core
module Sim = Dip_netsim.Sim
module Name = Dip_tables.Name
module Workload = Dip_netsim.Workload

let catalog_size = 200
let requests = 2000

let () =
  let registry = Ops.default_registry () in
  let sim = Sim.create () in

  (* Router with a content store. *)
  let renv = Env.create ~cache_capacity:64 ~name:"router" () in
  (* Producer owns the whole catalog prefix. *)
  Dip_tables.Name_fib.insert renv.Env.fib (Name.of_string "/content") 1;
  (* The prototype FIB matches hashed names exactly, so announce
     every catalog item (a real deployment would use prefixes). *)
  for k = 1 to catalog_size do
    Dip_tables.Name_fib.insert renv.Env.fib (Workload.catalog_name k) 1
  done;

  (* The producer answers interests with DIP data packets. *)
  let name_of_hash = Hashtbl.create 64 in
  for k = 1 to catalog_size do
    let n = Workload.catalog_name k in
    Hashtbl.replace name_of_hash (Name.hash32 n) n
  done;
  let producer _sim ~now:_ ~ingress pkt =
    match Packet.parse pkt with
    | Ok view when Array.length view.Packet.fns > 0 ->
        let hash =
          Int64.to_int32
            (Dip_bitbuf.Bitbuf.get_uint view.Packet.buf
               (Packet.locations_field view view.Packet.fns.(0)))
        in
        (match Hashtbl.find_opt name_of_hash hash with
        | Some name ->
            let data =
              Realize.ndn_data ~name
                ~content:("contents of " ^ Name.to_string name)
                ()
            in
            [ Sim.Forward (ingress, data) ]
        | None -> [ Sim.Drop "unknown-content" ])
    | _ -> [ Sim.Drop "malformed" ]
  in

  let consumer_received = ref 0 in
  let consumer _sim ~now:_ ~ingress:_ _pkt =
    incr consumer_received;
    [ Sim.Consume ]
  in

  let c = Sim.add_node sim ~name:"consumer" consumer in
  let r = Sim.add_node sim ~name:"router" (Engine.handler ~registry renv) in
  let p = Sim.add_node sim ~name:"producer" producer in
  Sim.connect sim ~latency:2e-3 (c, 0) (r, 0);
  Sim.connect sim ~latency:8e-3 (r, 1) (p, 0);

  (* Zipf-popular requests, spaced out so each interest/data exchange
     completes before the next request for the same item (no
     aggregation in this example). *)
  let names = Workload.zipf_names ~seed:42L ~catalog:catalog_size ~count:requests ~skew:1.1 in
  List.iteri
    (fun i name ->
      let interest = Realize.ndn_interest ~name ~payload:"" () in
      Sim.inject sim
        ~at:(0.05 *. float_of_int i)
        ~node:r ~port:0 interest)
    names;
  Sim.run sim;

  let ctrs = Sim.counters sim in
  let get = Dip_netsim.Stats.Counters.get ctrs in
  let responded = get "router.tx" in
  let from_producer = get "producer.rx" in
  Printf.printf "requests sent:        %d\n" requests;
  Printf.printf "data received:        %d\n" !consumer_received;
  Printf.printf "router transmissions: %d\n" responded;
  Printf.printf "reached producer:     %d\n" from_producer;
  Printf.printf "served from cache:    %d (%.1f%%)\n"
    (requests - from_producer)
    (100.0 *. float_of_int (requests - from_producer) /. float_of_int requests);
  assert (!consumer_received = requests);
  print_endline "\nall interests satisfied; the Zipf head came from the router's content store"
