(* In-band path telemetry with the F_tel extension (key 14).

     dune exec examples/path_telemetry.exe

   §5 lists "efficient network telemetry" among the opportunities DIP
   opens. Here a probe packet crosses a four-router chain whose third
   link is congested by cross-traffic; every router appends an
   INT-style record (node id, timestamp, live egress-queue depth) to
   the probe's FN locations, and the receiving host reads the whole
   path out of the packet — pinpointing the congested hop without any
   per-router polling. *)

open Dip_core
module Sim = Dip_netsim.Sim
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string
let hops = 4

let () =
  let registry = Ops.default_registry () in
  let sim = Sim.create () in

  (* Routers forward 10.0.0.0/8 down the chain and stamp telemetry
     with their *live* egress queue depth. *)
  let envs =
    List.init hops (fun i ->
        let env = Env.create ~name:(Printf.sprintf "r%d" (i + 1)) () in
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
        env)
  in
  let ids =
    List.map
      (fun env -> Sim.add_node sim ~name:env.Env.name (Engine.handler ~registry env))
      envs
  in
  List.iteri
    (fun i env ->
      let node = List.nth ids i in
      Env.set_telemetry_identity env ~node_id:(i + 1) ~queue_depth:(fun () ->
          Sim.queue_depth sim node 1))
    envs;
  let sink = Sim.add_node sim ~name:"sink" (fun _ ~now:_ ~ingress:_ _ -> [ Sim.Consume ]) in
  (* Wire the chain; the link out of r3 is slow (the bottleneck). *)
  let rec wire = function
    | a :: (b :: _ as rest) ->
        let bw = if List.length rest = 2 then 50_000.0 else 1.25e7 in
        Sim.connect sim ~latency:1e-4 ~bandwidth:bw (a, 1) (b, 0);
        wire rest
    | [ last ] -> Sim.connect sim ~latency:1e-4 ~bandwidth:1.25e7 (last, 1) (sink, 0)
    | [] -> ()
  in
  wire ids;

  (* Cross traffic floods r3's egress. *)
  for i = 0 to 199 do
    Sim.inject sim
      ~at:(1e-5 *. float_of_int i)
      ~node:(List.nth ids 2) ~port:0
      (Realize.ipv4 ~src:(v4 "198.51.100.9") ~dst:(v4 "10.0.0.9")
         ~payload:(String.make 900 'c') ())
  done;

  (* The probe follows mid-burst. *)
  let probe =
    Realize.ipv4_telemetry ~max_hops:hops ~src:(v4 "192.0.2.1")
      ~dst:(v4 "10.0.0.9") ~payload:"probe" ()
  in
  Sim.inject sim ~at:1e-3 ~node:(List.hd ids) ~port:0 probe;
  Sim.run sim;

  (* Read the telemetry out of the delivered probe. *)
  let probe_records =
    List.find_map
      (fun (_, _, pkt) ->
        match Packet.parse pkt with
        | Ok view when view.Packet.header.Header.fn_loc_len > 8 ->
            let region_bytes = Telemetry.region_size ~max_hops:hops in
            Some (fst (Telemetry.read pkt ~base:view.Packet.loc_base ~region_bytes))
        | _ -> None)
      (Sim.consumed sim)
  in
  match probe_records with
  | None -> failwith "probe never arrived"
  | Some records ->
      Printf.printf "probe path report (%d hops):\n" (List.length records);
      List.iter
        (fun r ->
          Printf.printf "  router %d: t=%ld us queue=%d%s\n" r.Telemetry.node_id
            r.Telemetry.timestamp r.Telemetry.queue_depth
            (if r.Telemetry.queue_depth > 10 then "   <-- congested hop" else ""))
        records;
      let worst =
        List.fold_left
          (fun (n, q) r ->
            if r.Telemetry.queue_depth > q then (r.Telemetry.node_id, r.Telemetry.queue_depth)
            else (n, q))
          (0, -1) records
      in
      Printf.printf "\nbottleneck identified at router %d (queue depth %d)\n"
        (fst worst) (snd worst);
      assert (fst worst = 3)
