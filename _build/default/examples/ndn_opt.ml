(* NDN+OPT — the paper's derived protocol (§3): secure content
   delivery obtained by composing the NDN FNs with the OPT FNs.

     dune exec examples/ndn_opt.exe

   The consumer requests a file; the interest is forwarded by F_FIB;
   the producer answers with an NDN+OPT data packet whose OPT tags
   every on-path router updates; the consumer's F_ver validates the
   content's source and path before accepting it. A poisoned data
   packet injected by an off-path attacker is rejected. *)

open Dip_core
module Sim = Dip_netsim.Sim
module Name = Dip_tables.Name

let name = Name.of_string "/secure/hotnets.pdf"
let session_id = 0xD1AL
let hops = 2

let () =
  let registry = Ops.default_registry () in
  let g = Dip_stdext.Prng.create 7L in
  let secrets = List.init hops (fun _ -> Dip_opt.Drkey.secret_gen g) in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  (* Keys in data-path traversal order: r2 (hop 1) then r1 (hop 2). *)
  let session_keys = Dip_opt.Drkey.session_keys (List.rev secrets) ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in

  let sim = Sim.create () in

  (* Two DIP routers: NDN forwarders and OPT hops at once. The OPT
     hop index follows the *data path*: the router nearest the
     producer touches the data packet first, so it is hop 1. With
     consumer - r1 - r2 - producer, r2 is hop 1 and r1 is hop 2, and
     the session keys are registered in that traversal order. *)
  let router i hop secret =
    let env = Env.create ~name:(Printf.sprintf "r%d" i) () in
    Env.set_opt_identity env ~secret ~hop;
    Dip_tables.Name_fib.insert env.Env.fib name 1;
    env
  in
  let renvs = List.mapi (fun i s -> router (i + 1) (hops - i) s) secrets in

  (* The producer answers the interest with an NDN+OPT data packet:
     it seeds the OPT region (source role) before sending. *)
  let producer _sim ~now:_ ~ingress _pkt =
    let data =
      Realize.ndn_opt_data ~hops ~session_id ~timestamp:3l ~dest_key ~name
        ~content:"PDF BYTES (signed route)" ()
    in
    [ Sim.Forward (ingress, data) ]
  in

  (* The consumer runs the host side of Algorithm 1: F_ver. *)
  let cenv = Env.create ~name:"consumer" () in
  Env.register_opt_session cenv ~session_id ~session_keys ~dest_key;
  let verdicts = ref [] in
  let consumer _sim ~now ~ingress pkt =
    let verdict, _ = Engine.host_process ~registry cenv ~now ~ingress pkt in
    (match verdict with
    | Engine.Delivered ->
        verdicts := "accepted" :: !verdicts;
        ()
    | Engine.Dropped r -> verdicts := ("rejected: " ^ r) :: !verdicts
    | _ -> verdicts := "other" :: !verdicts);
    match verdict with
    | Engine.Delivered -> [ Sim.Consume ]
    | Engine.Dropped r -> [ Sim.Drop r ]
    | _ -> []
  in

  let c = Sim.add_node sim ~name:"consumer" consumer in
  let rs = List.map (fun env -> Sim.add_node sim ~name:env.Env.name (Engine.handler ~registry env)) renvs in
  let p = Sim.add_node sim ~name:"producer" producer in
  (match rs with
  | [ r1; r2 ] ->
      Sim.connect sim (c, 0) (r1, 0);
      Sim.connect sim (r1, 1) (r2, 0);
      Sim.connect sim (r2, 1) (p, 0)
  | _ -> assert false);

  (* 1. Genuine request/response. *)
  let interest = Realize.ndn_opt_interest ~name ~payload:"" () in
  Sim.inject sim ~at:0.0 ~node:(List.hd rs) ~port:0 interest;
  Sim.run sim;

  (* 2. An off-path attacker forges a data packet for the same name
     with bogus keys (content poisoning). The consumer still has a
     pending session but the tags cannot verify. *)
  let attacker_key = String.make 16 'e' in
  let forged =
    Realize.ndn_opt_data ~hops ~session_id ~timestamp:3l ~dest_key:attacker_key
      ~name ~content:"MALWARE" ()
  in
  (* Inject the forgery straight at the consumer (the attacker is
     off-path, so no router has updated the tags). *)
  Sim.inject sim ~at:1.1 ~node:c ~port:0 forged;
  Sim.run sim;

  print_endline "consumer verdicts (in order):";
  List.iter (fun v -> Printf.printf "  - %s\n" v) (List.rev !verdicts);
  let header_bytes =
    Result.get_ok
      (Packet.header_size
         (Realize.ndn_opt_data ~hops:1 ~session_id ~timestamp:0l ~dest_key
            ~name ~content:"" ()))
  in
  Printf.printf
    "\nNDN+OPT header at one hop: %d bytes (Table 2 reports 108)\n" header_bytes
