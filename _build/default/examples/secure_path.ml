(* Source authentication and path validation with DIP-realized OPT
   (paper §3), composed with DIP-32 forwarding — a derived protocol
   the paper's primitive makes trivial: the same packet carries the
   OPT FNs *and* the IP forwarding FNs.

     dune exec examples/secure_path.exe

   The demo sends one genuine packet through the full 3-router path,
   then shows the two failures OPT exists to catch: a payload
   tampered in flight, and a path that skipped a router. *)

open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

let hops = 3
let session_id = 0x5E55104Dl |> Int32.to_int |> Int64.of_int

(* Build an OPT+IP packet by hand from FN triples — composability in
   action. Locations: OPT region (68 + 16*(hops-1) bytes) followed by
   dst(4) and src(4). *)
let opt_ip_packet ~dest_key ~payload ~src ~dst =
  let opt_bits = Dip_opt.Header.size_bits ~hops in
  let opt_bytes = opt_bits / 8 in
  let region = Bitbuf.create (opt_bytes + 8) in
  Dip_opt.Protocol.source_init region ~base:0 ~hops ~session_id ~timestamp:7l
    ~dest_key ~payload;
  Bitbuf.blit
    ~src:(Bitbuf.of_string (Ipaddr.V4.to_wire dst ^ Ipaddr.V4.to_wire src))
    ~src_off:0 ~dst:region ~dst_off:opt_bytes ~len:8;
  Packet.build
    ~fns:
      [
        Fn.v ~loc:128 ~len:128 Opkey.F_parm;
        Fn.v ~loc:0 ~len:416 Opkey.F_mac;
        Fn.v ~loc:288 ~len:128 Opkey.F_mark;
        Fn.v ~tag:Fn.Host ~loc:0 ~len:opt_bits Opkey.F_ver;
        Fn.v ~loc:opt_bits ~len:32 Opkey.F_32_match;
        Fn.v ~loc:(opt_bits + 32) ~len:32 Opkey.F_source;
      ]
    ~locations:(Bitbuf.to_string region) ~payload ()

let () =
  let registry = Ops.default_registry () in
  let g = Dip_stdext.Prng.create 2024L in
  let secrets = List.init hops (fun _ -> Dip_opt.Drkey.secret_gen g) in
  let dst_secret = Dip_opt.Drkey.secret_gen g in
  let session_keys = Dip_opt.Drkey.session_keys secrets ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in

  let routers =
    List.mapi
      (fun i secret ->
        let env = Env.create ~name:(Printf.sprintf "r%d" (i + 1)) () in
        Env.set_opt_identity env ~secret ~hop:(i + 1);
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
        env)
      secrets
  in
  let destination = Env.create ~name:"dst" () in
  Env.register_opt_session destination ~session_id ~session_keys ~dest_key;

  let src = Ipaddr.V4.of_string "192.0.2.1" in
  let dst = Ipaddr.V4.of_string "10.0.0.99" in

  let route_through pkt envs =
    List.for_all
      (fun env ->
        match Engine.process ~registry env ~now:0.0 ~ingress:0 pkt with
        | Engine.Forwarded _, _ -> true
        | Engine.Dropped r, _ ->
            Printf.printf "  %s dropped the packet: %s\n" env.Env.name r;
            false
        | _ -> false)
      envs
  in
  let verify pkt =
    match Engine.host_process ~registry destination ~now:0.0 ~ingress:0 pkt with
    | Engine.Delivered, _ -> "ACCEPTED (source and path verified)"
    | Engine.Dropped r, _ -> "REJECTED: " ^ r
    | _ -> "unexpected verdict"
  in

  print_endline "== scenario 1: genuine packet through r1 -> r2 -> r3 ==";
  let pkt = opt_ip_packet ~dest_key ~payload:"wire me safely" ~src ~dst in
  Printf.printf "  header: %d bytes (OPT region %d B + IP addresses 8 B + %d FNs)\n"
    (Result.get_ok (Packet.header_size pkt))
    (Dip_opt.Header.size_bytes ~hops) 6;
  ignore (route_through pkt routers);
  Printf.printf "  destination: %s\n\n" (verify pkt);

  print_endline "== scenario 2: payload tampered after r2 ==";
  let pkt = opt_ip_packet ~dest_key ~payload:"wire me safely" ~src ~dst in
  ignore (route_through pkt [ List.nth routers 0; List.nth routers 1 ]);
  let last = Bitbuf.length pkt - 1 in
  Bitbuf.set_uint8 pkt last (Bitbuf.get_uint8 pkt last lxor 0x20);
  ignore (route_through pkt [ List.nth routers 2 ]);
  Printf.printf "  destination: %s\n\n" (verify pkt);

  print_endline "== scenario 3: r2 skipped (packet took an unauthorized path) ==";
  let pkt = opt_ip_packet ~dest_key ~payload:"wire me safely" ~src ~dst in
  ignore (route_through pkt [ List.nth routers 0; List.nth routers 2 ]);
  Printf.printf "  destination: %s\n" (verify pkt)
