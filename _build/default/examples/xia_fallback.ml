(* XIA over DIP (paper §3): DAG addresses with fallback routing,
   realized with the F_DAG and F_intent operation modules.

     dune exec examples/xia_fallback.exe

   The client addresses a service SID with a fallback path through
   the destination AD and host. A transit router that has never heard
   of the SID still forwards the packet — fallback picks the AD edge —
   and the service's host delivers on the intent. *)

open Dip_core
open Dip_xia
module Sim = Dip_netsim.Sim

let () =
  let registry = Ops.default_registry () in
  let svc = Xid.of_name Xid.SID "video-service" in
  let dest_ad = Xid.of_name Xid.AD "dest-as" in
  let dest_host = Xid.of_name Xid.HID "dest-host" in

  (* source → SID (direct intent), falling back to AD → HID → SID. *)
  let dag = Dag.fallback ~intent:svc ~via:[ dest_ad; dest_host ] in
  Format.printf "address: %a@." Dag.pp dag;
  List.iteri
    (fun i succs ->
      Printf.printf "  node %d -> [%s]%s\n" i
        (String.concat "; " (List.map string_of_int succs))
        (if i = 0 then "  (virtual source)"
         else if i = Dag.intent_index dag then "  (intent)"
         else ""))
    (List.init (Dag.node_count dag + 1) (Dag.successors dag));

  let sim = Sim.create () in

  (* Transit: routes ADs only — the fallback case. *)
  let transit = Env.create ~name:"transit" () in
  Router.add_route transit.Env.xia dest_ad 1;

  (* Border router of the destination AD: owns the AD, routes HIDs. *)
  let border = Env.create ~name:"border" () in
  Router.add_local border.Env.xia dest_ad;
  Router.add_route border.Env.xia dest_host 1;

  (* The destination host owns its HID and hosts the SID. *)
  let host = Env.create ~name:"host" () in
  Router.add_local host.Env.xia dest_host;
  Router.add_local host.Env.xia svc;

  let t = Sim.add_node sim ~name:"transit" (Engine.handler ~registry transit) in
  let b = Sim.add_node sim ~name:"border" (Engine.handler ~registry border) in
  let h = Sim.add_node sim ~name:"host" (Engine.handler ~registry host) in
  Sim.connect sim (t, 1) (b, 0);
  Sim.connect sim (b, 1) (h, 0);

  let pkt = Realize.xia ~dag ~payload:"GET /video" () in
  Printf.printf "\nDIP-XIA packet: %d-byte header\n"
    (Result.get_ok (Packet.header_size pkt));
  Sim.inject sim ~at:0.0 ~node:t ~port:0 pkt;
  Sim.run sim;

  (match Sim.consumed sim with
  | [ (node, _, _) ] ->
      Printf.printf "delivered at %s via fallback (transit knew only the AD)\n"
        (Sim.node_name sim node);
      assert (node = h)
  | _ -> failwith "xia_fallback: not delivered");

  (* Now show the priority order: teach the transit router the SID
     directly and watch the pointer skip the fallback chain. *)
  let transit2 = Env.create ~name:"transit2" () in
  Router.add_route transit2.Env.xia svc 9;
  let pkt2 = Realize.xia ~dag ~payload:"GET /video" () in
  (match Engine.process ~registry transit2 ~now:0.0 ~ingress:0 pkt2 with
  | Engine.Forwarded [ 9 ], _ ->
      print_endline "with a direct SID route, the intent edge wins (no fallback)"
  | _ -> failwith "expected direct intent routing");
  ignore (b)
