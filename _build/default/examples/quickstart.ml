(* Quickstart: realize canonical IP forwarding with DIP (paper §3)
   and push a packet through a three-router chain in the simulator.

     dune exec examples/quickstart.exe

   A DIP-32 packet carries two Field Operations —
   (loc: 0, len: 32, key: 1) for the destination match and
   (loc: 32, len: 32, key: 3) for the source — and each router runs
   Algorithm 1 over them. *)

open Dip_core
module Sim = Dip_netsim.Sim
module Ipaddr = Dip_tables.Ipaddr

let () =
  let registry = Ops.default_registry () in
  let v4 = Ipaddr.V4.of_string in

  (* Three routers, each with a route for the destination prefix
     pointing at its "right-hand" port 1. *)
  let sim = Sim.create () in
  let router i =
    let env = Env.create ~name:(Printf.sprintf "r%d" i) () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes
      (Ipaddr.Prefix.of_string "10.9.0.0/16")
      1;
    Engine.handler ~registry env
  in
  let host =
    let env = Env.create ~name:"server" () in
    env.Env.local_v4 <- Some (v4 "10.9.0.42");
    Engine.handler ~registry env
  in
  let r1 = Sim.add_node sim ~name:"r1" (router 1) in
  let r2 = Sim.add_node sim ~name:"r2" (router 2) in
  let r3 = Sim.add_node sim ~name:"r3" (router 3) in
  let server = Sim.add_node sim ~name:"server" host in
  Sim.connect sim ~latency:1e-3 (r1, 1) (r2, 0);
  Sim.connect sim ~latency:1e-3 (r2, 1) (r3, 0);
  Sim.connect sim ~latency:1e-3 (r3, 1) (server, 0);

  (* Host construction (§2.3): build the DIP-32 packet. *)
  let packet =
    Realize.ipv4 ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42")
      ~payload:"hello through the narrow waist" ()
  in
  Printf.printf "DIP-32 packet: %d-byte header (Table 2 says 26), %d bytes total\n"
    (match Packet.header_size packet with Ok n -> n | Error _ -> -1)
    (Dip_bitbuf.Bitbuf.length packet);
  Format.printf "%a" Dip_bitbuf.Bitbuf.pp packet;

  Sim.inject sim ~at:0.0 ~node:r1 ~port:0 packet;
  Sim.run sim;

  (match Sim.consumed sim with
  | [ (node, time, pkt) ] ->
      let view = Result.get_ok (Packet.parse pkt) in
      Printf.printf
        "\ndelivered to %s after %.1f ms across 3 DIP routers\n"
        (Sim.node_name sim node) (1000.0 *. time);
      Printf.printf "payload: %S\n" (Packet.payload view);
      Printf.printf "hop limit on arrival: %d (started at 64)\n"
        view.Packet.header.Header.hop_limit
  | _ -> failwith "quickstart: packet was not delivered");

  print_endline "\nper-node counters:";
  List.iter
    (fun (k, v) -> Printf.printf "  %-24s %d\n" k v)
    (Dip_netsim.Stats.Counters.to_list (Sim.counters sim))
