(* DDoS mitigation with the NetFence-style F_cc extension (key 13).

     dune exec examples/ddos_mitigation.exe

   The paper's intro motivates DIP with exactly this protocol family:
   "NetFence inserts a slim customized header between L3 and L4 to
   emulate congestion control (AIMD) inside the network to mitigate
   DDoS attacks" (§1). Here the NetFence header is an FN location and
   the policing is one more operation module the bottleneck router
   composes with IP forwarding — no new protocol stack required.

   Scenario: an attacker and a legitimate sender share a bottleneck
   router in front of a victim server. In phase 1 the policer is in
   marking mode and the attacker's flood crowds the link. In phase 2
   the operator flips the policer to attack (police) mode — the flood
   is dropped at the bottleneck while compliant traffic is
   untouched. *)

open Dip_core
module Sim = Dip_netsim.Sim
module NF = Dip_netfence
module Ipaddr = Dip_tables.Ipaddr

let v4 = Ipaddr.V4.of_string
let ceiling = 125_000.0 (* 1 Mb/s per-sender allowance at the bottleneck *)

let () =
  let registry = Ops.default_registry () in
  let key = Dip_crypto.Prf.key_of_string "bottleneck-key!!" in

  let run ~mode ~label =
    let sim = Sim.create () in
    let env = Env.create ~name:"bottleneck" () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    Env.set_netfence env (NF.Policer.create ~mode ~rate_ceiling:ceiling ~key ());
    let victim_got = Hashtbl.create 4 in
    let victim _sim ~now:_ ~ingress:_ pkt =
      (match Packet.parse pkt with
      | Ok view ->
          let sender = NF.Header.get_sender pkt ~base:view.Packet.loc_base in
          Hashtbl.replace victim_got sender
            (1 + Option.value ~default:0 (Hashtbl.find_opt victim_got sender))
      | Error _ -> ());
      [ Sim.Consume ]
    in
    let b = Sim.add_node sim ~name:"bottleneck" (Engine.handler ~registry env) in
    let s = Sim.add_node sim ~name:"victim" victim in
    Sim.connect sim (b, 1) (s, 0);
    (* 2 seconds of traffic: the attacker sends 1000-byte packets at
       ~4 Mb/s (4x its allowance); the legitimate sender stays at
       ~0.8 Mb/s. *)
    let send ~sender ~pps ~count =
      for i = 1 to count do
        let pkt =
          Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender
            ~rate:ceiling ~timestamp:0l ~payload:(String.make 900 'd') ()
        in
        Sim.inject sim ~at:(float_of_int i /. pps) ~node:b ~port:0 pkt
      done
    in
    send ~sender:666l ~pps:500.0 ~count:1000 (* attacker: ~500 kB/s *);
    send ~sender:7l ~pps:100.0 ~count:200 (* legit: ~100 kB/s *);
    Sim.run sim;
    let got sender = Option.value ~default:0 (Hashtbl.find_opt victim_got sender) in
    Printf.printf "%s\n" label;
    Printf.printf "  attacker   (sent 1000): %4d delivered\n" (got 666l);
    Printf.printf "  legitimate (sent  200): %4d delivered\n" (got 7l);
    (got 666l, got 7l)
  in

  print_endline "== phase 1: marking mode (congestion feedback only) ==";
  let atk1, leg1 = run ~mode:NF.Policer.Mark ~label:"  [policer marks, nothing dropped]" in
  print_endline "\n== phase 2: attack mode (over-rate traffic policed) ==";
  let atk2, leg2 = run ~mode:NF.Policer.Police ~label:"  [policer drops over-rate packets]" in

  Printf.printf "\nattack traffic cut from %d to %d packets (%.0f%% suppressed);\n"
    atk1 atk2
    (100.0 *. float_of_int (atk1 - atk2) /. float_of_int (max 1 atk1));
  Printf.printf "legitimate delivery unchanged: %d -> %d\n" leg1 leg2;
  assert (atk2 < atk1 / 2);
  assert (leg2 = leg1)
