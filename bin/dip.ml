(* The dip command-line tool.

   Subcommands:
     dip catalog                      list the FN operation catalog (Table 1)
     dip inspect -p <protocol>        build a packet and dump header + hex
     dip sizes                        header overhead per protocol (Table 2)
     dip demo -p <protocol> -n <N>    run an N-router chain in the simulator
                                      (--metrics[=table|json|prom] exports the
                                      unified Dip_obs registry)
     dip trace -p <protocol> -n <N>   one packet through the chain: host-side
                                      trace merged with in-band F_tel records
     dip estimate -p <protocol>       PISA cost-model estimate per hop
     dip lint [-p <protocol>|--all|--hex H]
                                      statically verify FN programs
     dip chaos [--drop P ...]         reliable host pair over a faulty chain
                                      (seeded fault injection + recovery report)
     dip fib [--routes N]             build the at-scale forwarding tables from
                                      a seeded BGP-shaped prefix set and report
                                      build rate, memory layout, sample probes

   Everything here drives the same public API the examples use. *)

open Cmdliner
open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string

type proto = Dip32 | Dip128 | Ndn | Opt | Ndn_opt | Xia | Epic

let proto_conv =
  let parse = function
    | "dip32" | "ipv4" -> Ok Dip32
    | "dip128" | "ipv6" -> Ok Dip128
    | "ndn" -> Ok Ndn
    | "opt" -> Ok Opt
    | "ndn+opt" | "ndnopt" -> Ok Ndn_opt
    | "xia" -> Ok Xia
    | "epic" -> Ok Epic
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with
      | Dip32 -> "dip32"
      | Dip128 -> "dip128"
      | Ndn -> "ndn"
      | Opt -> "opt"
      | Ndn_opt -> "ndn+opt"
      | Xia -> "xia"
      | Epic -> "epic")
  in
  Arg.conv (parse, print)

let proto_arg =
  Arg.(
    required
    & opt (some proto_conv) None
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to realize: dip32, dip128, ndn, opt, ndn+opt, xia or epic.")

let sample_packet ?(hops = 1) proto =
  let dest_key = String.make 16 'k' in
  let name = Name.of_string "/hotnets.org/dip" in
  match proto with
  | Dip32 ->
      Realize.ipv4 ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~payload:"demo" ()
  | Dip128 ->
      Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::42")
        ~payload:"demo" ()
  | Ndn -> Realize.ndn_interest ~name ~payload:"" ()
  | Opt ->
      (* Composed with DIP-32 forwarding so routers can move it: the
         OPT region is followed by dst/src addresses in the
         locations. *)
      let opt_bits = Dip_opt.Header.size_bits ~hops in
      let region = Bitbuf.create ((opt_bits / 8) + 8) in
      Dip_opt.Protocol.source_init region ~base:0 ~hops ~session_id:0xD1AL
        ~timestamp:1l ~dest_key ~payload:"demo";
      Bitbuf.blit
        ~src:
          (Bitbuf.of_string
             (Ipaddr.V4.to_wire (v4 "10.9.0.42")
             ^ Ipaddr.V4.to_wire (v4 "192.0.2.7")))
        ~src_off:0 ~dst:region ~dst_off:(opt_bits / 8) ~len:8;
      Packet.build
        ~fns:
          [
            Fn.v ~loc:128 ~len:128 Opkey.F_parm;
            Fn.v ~loc:0 ~len:416 Opkey.F_mac;
            Fn.v ~loc:288 ~len:128 Opkey.F_mark;
            Fn.v ~tag:Fn.Host ~loc:0 ~len:opt_bits Opkey.F_ver;
            Fn.v ~loc:opt_bits ~len:32 Opkey.F_32_match;
            Fn.v ~loc:(opt_bits + 32) ~len:32 Opkey.F_source;
          ]
        ~locations:(Bitbuf.to_string region) ~payload:"demo" ()
  | Ndn_opt ->
      Realize.ndn_opt_data ~hops ~session_id:0xD1AL ~timestamp:1l ~dest_key
        ~name ~content:"demo" ()
  | Xia ->
      let open Dip_xia in
      let dag =
        Dag.fallback
          ~intent:(Xid.of_name Xid.SID "svc")
          ~via:[ Xid.of_name Xid.AD "as1"; Xid.of_name Xid.HID "h1" ]
      in
      Realize.xia ~dag ~payload:"demo" ()
  | Epic ->
      (* Hop keys derived from the same deterministic router secrets
         the demo chain installs, in path order. *)
      let hop_keys =
        List.init hops (fun i ->
            Dip_epic.Protocol.derive_key
              (Dip_opt.Drkey.secret_of_string
                 (Printf.sprintf "router-secret%03d" i))
              ~src:0xD1Al ~timestamp:1l)
      in
      Realize.epic ~hops ~src_id:0xD1Al ~timestamp:1l ~hop_keys
        ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~payload:"demo" ()

let router_keys proto =
  match proto with
  | Dip32 -> [ Opkey.F_32_match; Opkey.F_source ]
  | Dip128 -> [ Opkey.F_128_match; Opkey.F_source ]
  | Ndn -> [ Opkey.F_fib ]
  | Opt -> [ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ]
  | Ndn_opt -> [ Opkey.F_pit; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ]
  | Xia -> [ Opkey.F_dag; Opkey.F_intent ]
  | Epic -> [ Opkey.F_hvf; Opkey.F_32_match; Opkey.F_source ]

(* --- catalog --- *)

let catalog () =
  let t =
    Dip_stdext.Tabular.create
      ~aligns:[ Dip_stdext.Tabular.Right; Dip_stdext.Tabular.Left;
                Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Left ]
      [ "key"; "notation"; "operation"; "scope" ]
  in
  List.iter
    (fun k ->
      Dip_stdext.Tabular.add_row t
        [
          string_of_int (Opkey.to_int k);
          Opkey.name k;
          Opkey.description k;
          (if Engine.mandatory k then "all on-path ASes" else "per-AS");
        ])
    Opkey.all;
  Dip_stdext.Tabular.print t;
  0

(* --- inspect --- *)

let inspect proto hops =
  let pkt = sample_packet ~hops proto in
  (match Packet.parse pkt with
  | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
  | Ok view ->
      Format.printf "%a@." Header.pp view.Packet.header;
      Array.iteri
        (fun i fn ->
          Format.printf "  FN %d: %a  %s@." (i + 1) Fn.pp fn (Opkey.name fn.Fn.key))
        view.Packet.fns;
      Printf.printf "  locations: %d bytes at offset %d\n"
        view.Packet.header.Header.fn_loc_len view.Packet.loc_base;
      Printf.printf "  payload:   %d bytes\n\n"
        (String.length (Packet.payload view)));
  Format.printf "%a" Bitbuf.pp pkt;
  0

(* --- sizes --- *)

let sizes () =
  let t =
    Dip_stdext.Tabular.create
      ~aligns:[ Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Right ]
      [ "network function"; "total header size (B)" ]
  in
  List.iter
    (fun p ->
      Dip_stdext.Tabular.add_row t
        [ Realize.protocol_name p; string_of_int (Realize.header_overhead p) ])
    [
      Realize.P_ipv6_native; Realize.P_ipv4_native; Realize.P_dip128;
      Realize.P_dip32; Realize.P_ndn; Realize.P_opt; Realize.P_ndn_opt;
    ];
  Dip_stdext.Tabular.print t;
  0

(* --- demo / trace: the shared router chain --- *)

let chain_name = Name.of_string "/hotnets.org/dip"

(* One router of the demo chain, able to forward every protocol the
   sample packets realize: IPv4/IPv6 routes, an NDN FIB entry, an OPT
   identity matching its hop position, and an XIA route. *)
let mk_chain_router ?(no_cache = false) i =
  let env =
    Env.create
      ~prog_cache_capacity:(if no_cache then 0 else 512)
      ~name:(Printf.sprintf "r%d" (i + 1)) ()
  in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv6.add_route env.Env.v6_routes
    (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  Dip_tables.Name_fib.insert env.Env.fib chain_name 1;
  Env.set_opt_identity env
    ~secret:(Dip_opt.Drkey.secret_of_string (Printf.sprintf "router-secret%03d" i))
    ~hop:(i + 1);
  Dip_xia.Router.add_route env.Env.xia (Dip_xia.Xid.of_name Dip_xia.Xid.AD "as1") 1;
  env

(* NDN+OPT data packets follow PIT state left by a previous interest,
   which the chain pre-installs. *)
let preinstall_pit proto routers =
  match proto with
  | Ndn_opt ->
      List.iter
        (fun env ->
          ignore
            (Dip_tables.Pit.insert env.Env.pit
               ~key:(Name.hash32 chain_name) ~port:1 ~now:0.0 ~lifetime:1e9))
        routers
  | Dip32 | Dip128 | Ndn | Opt | Xia | Epic -> ()

(* --- demo --- *)

type metrics_fmt = Fmt_table | Fmt_json | Fmt_prom

let metrics_conv =
  let parse = function
    | "table" -> Ok Fmt_table
    | "json" -> Ok Fmt_json
    | "prom" | "prometheus" -> Ok Fmt_prom
    | s -> Error (`Msg (Printf.sprintf "unknown metrics format %S" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with Fmt_table -> "table" | Fmt_json -> "json" | Fmt_prom -> "prom")
  in
  Arg.conv (parse, print)

let export_metrics fmt m =
  print_string
    (match fmt with
    | Fmt_table -> Dip_obs.Export.table m
    | Fmt_json -> Dip_obs.Export.json_lines m
    | Fmt_prom -> Dip_obs.Export.prometheus m)

(* --- flight-recorder output --- *)

let write_flight ~path ~text ~pid_names events =
  let oc = open_out path in
  output_string oc
    (if text then Dip_obs.Export.timeline events
     else Dip_obs.Export.chrome_trace ~pid_names events);
  close_out oc;
  Printf.printf "flight trace: %d event(s) -> %s%s\n" (List.length events) path
    (if text then "" else " (load in Perfetto or about://tracing)")

let print_timeline_summary label (s : Dip_mcore.Pool.summary) =
  let module T = Dip_stdext.Tabular in
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
      [ "lane"; "count"; "mean us"; "p99 us"; "max us" ]
  in
  let row name (st : Dip_mcore.Pool.lane_stat) =
    T.add_row t
      [
        name;
        string_of_int st.count;
        Printf.sprintf "%.2f" (st.mean_ns /. 1e3);
        Printf.sprintf "%.2f" (float_of_int st.p99_ns /. 1e3);
        Printf.sprintf "%.2f" (float_of_int st.max_ns /. 1e3);
      ]
  in
  row "dispatch" s.Dip_mcore.Pool.dispatch;
  row
    (Printf.sprintf "await (%d blocked)" s.Dip_mcore.Pool.await_blocked)
    s.Dip_mcore.Pool.await;
  List.iter
    (fun (l : Dip_mcore.Pool.lane) ->
      row (Printf.sprintf "w%d queue-wait" l.worker) l.queue_wait;
      row (Printf.sprintf "w%d execute" l.worker) l.execute)
    s.Dip_mcore.Pool.lanes;
  Printf.printf "%s hand-off timeline (flight recorder):\n" label;
  T.print t

(* The --domains variant: each chain router becomes a Dip_mcore pool
   of worker domains, fed through the simulator's batched run loop.
   Injections are packed microseconds apart (instead of the
   sequential demo's 1 s) so arrivals actually batch; delivery counts
   are identical whatever the domain count (Sim.run_batched applies
   results in arrival order). *)
let demo_parallel proto n count no_cache metrics domains flight =
  let sim = Dip_netsim.Sim.create () in
  let m =
    match metrics with
    | None -> None
    | Some _ ->
        let m = Dip_obs.Metrics.create () in
        Dip_netsim.Sim.attach_metrics sim m;
        Some m
  in
  (* The recorder is armed for --flight, and also for --metrics=table
     because the table surfaces the hand-off latency summary, which is
     digested from flight events. *)
  let with_flight = flight <> None || metrics = Some Fmt_table in
  let sim_ring =
    if with_flight then Some (Dip_obs.Flight.create ~pid:0 ~tid:0 ()) else None
  in
  Dip_netsim.Sim.set_flight sim sim_ring;
  let mk_env i _w =
    let env = mk_chain_router ~no_cache i in
    preinstall_pit proto [ env ];
    env
  in
  let pools =
    List.init n (fun i ->
        Dip_mcore.Pool.create ~domains
          ~metrics:(metrics <> None)
          ?flight:(if with_flight then Some (i + 1) else None)
          (Dip_mcore.Snapshot.v ~registry ~mk_env:(mk_env i) ()))
  in
  let sink_consumed = ref 0 in
  let sink _sim ~now:_ ~ingress:_ _pkt =
    incr sink_consumed;
    [ Dip_netsim.Sim.Consume ]
  in
  (* The per-node handler only runs for arrivals the batched loop does
     not route to the pool (there are none in this topology, but the
     simulator API requires one); a one-item batch keeps it honest. *)
  let handler_of pool _sim ~now ~ingress pkt =
    (Dip_mcore.Pool.handle_batch pool [| { Dip_mcore.Pool.now; ingress; pkt } |]).(0)
  in
  let ids =
    List.mapi
      (fun i pool ->
        Dip_netsim.Sim.add_node sim
          ~name:(Printf.sprintf "r%d" (i + 1))
          (handler_of pool))
      pools
  in
  let sink_id = Dip_netsim.Sim.add_node sim ~name:"sink" sink in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        Dip_netsim.Sim.connect sim (a, 1) (b, 0);
        wire rest
    | [ last ] -> Dip_netsim.Sim.connect sim (last, 1) (sink_id, 0)
    | [] -> ()
  in
  wire ids;
  for k = 0 to count - 1 do
    Dip_netsim.Sim.inject sim ~at:(float_of_int k *. 1e-6) ~node:(List.hd ids)
      ~port:0
      (sample_packet ~hops:n proto)
  done;
  Dip_mcore.Runner.run_parallel ~window:16e-6 sim
    ~pools:(List.combine ids pools);
  Printf.printf
    "chain of %d DIP router(s), %d worker domain(s) each: %d/%d packet(s) \
     reached the sink\n"
    n domains !sink_consumed count;
  List.iter
    (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
    (Dip_netsim.Stats.Counters.to_list (Dip_netsim.Sim.counters sim));
  if no_cache then print_endline "program cache: disabled (--no-program-cache)"
  else
    List.iteri
      (fun i pool ->
        let c = Dip_mcore.Pool.counters pool in
        Printf.printf
          "  r%d program cache (%d worker envs): %d hit(s), %d miss(es)\n"
          (i + 1) domains
          (Dip_netsim.Stats.Counters.get c "progcache.hit")
          (Dip_netsim.Stats.Counters.get c "progcache.miss"))
      pools;
  (match (metrics, m) with
  | Some fmt, Some m ->
      List.iter
        (fun pool ->
          match Dip_mcore.Pool.metrics pool with
          | Some pm -> Dip_obs.Metrics.absorb m (Dip_obs.Metrics.snapshot pm)
          | None -> ())
        pools;
      print_newline ();
      export_metrics fmt m;
      if fmt = Fmt_table then
        List.iteri
          (fun i pool ->
            match Dip_mcore.Pool.timeline_summary pool with
            | Some s ->
                print_newline ();
                print_timeline_summary (Printf.sprintf "r%d" (i + 1)) s
            | None -> ())
          pools
  | _ -> ());
  (match flight with
  | Some path ->
      let rings =
        Option.to_list sim_ring
        @ List.concat_map Dip_mcore.Pool.flight_rings pools
      in
      let pid_names =
        (0, "sim")
        :: List.mapi (fun i _ -> (i + 1, Printf.sprintf "r%d" (i + 1))) pools
      in
      write_flight ~path ~text:false ~pid_names (Dip_obs.Flight.merge rings)
  | None -> ());
  List.iter Dip_mcore.Pool.shutdown pools;
  0

let demo proto n count no_cache metrics domains flight =
  if n < 1 then begin
    Printf.eprintf "need at least one router\n";
    exit 1
  end;
  if count < 1 then begin
    Printf.eprintf "need at least one packet\n";
    exit 1
  end;
  if domains < 1 then begin
    Printf.eprintf "need at least one domain\n";
    exit 1
  end;
  if domains > 1 then demo_parallel proto n count no_cache metrics domains flight
  else begin
  let sim = Dip_netsim.Sim.create () in
  (* Everything runs on this domain, so one ring carries the whole
     trace. *)
  let ring =
    match flight with
    | None -> None
    | Some _ -> Some (Dip_obs.Flight.create ~pid:0 ~tid:0 ())
  in
  Dip_netsim.Sim.set_flight sim ring;
  (* With --metrics, every router reports through one shared Obs (so
     per-opkey counters aggregate across the chain) and the simulator
     mirrors link activity into the same registry. sample_every:1
     because a short demo run wants every packet timed. *)
  let obs =
    match (metrics, ring) with
    | None, None -> None
    | _ ->
        let m = Dip_obs.Metrics.create () in
        if metrics <> None then Dip_netsim.Sim.attach_metrics sim m;
        Some (Obs.create ~sample_every:1 ?flight:ring m)
  in
  let mk_router i =
    let env = mk_chain_router ~no_cache i in
    Progcache.set_flight env.Env.prog_cache ring;
    env
  in
  let sink_consumed = ref 0 in
  let sink _sim ~now:_ ~ingress:_ _pkt =
    incr sink_consumed;
    [ Dip_netsim.Sim.Consume ]
  in
  let routers = List.init n mk_router in
  (* OPT alone carries no forwarding FN (the paper pairs it with a
     path-aware substrate); the demo composes it with DIP-32
     forwarding. *)
  preinstall_pit proto routers;
  let ids =
    List.map
      (fun env ->
        Dip_netsim.Sim.add_node sim ~name:env.Env.name
          (Engine.handler ?obs ~registry env))
      routers
  in
  let sink_id = Dip_netsim.Sim.add_node sim ~name:"sink" sink in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        Dip_netsim.Sim.connect sim (a, 1) (b, 0);
        wire rest
    | [ last ] -> Dip_netsim.Sim.connect sim (last, 1) (sink_id, 0)
    | [] -> ()
  in
  wire ids;
  (* EPIC hop indices follow the chain: router i is hop i+1, which
     matches how mk_router assigns opt_hop. The engine mutates
     packets in flight, so each injection builds a fresh one — which
     is also what exercises the program cache (same FN program, new
     packet: hit). *)
  for k = 0 to count - 1 do
    Dip_netsim.Sim.inject sim ~at:(float_of_int k) ~node:(List.hd ids) ~port:0
      (sample_packet ~hops:n proto)
  done;
  Dip_netsim.Sim.run sim;
  Printf.printf "chain of %d DIP router(s): %d/%d packet(s) reached the sink\n" n
    !sink_consumed count;
  List.iter
    (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
    (Dip_netsim.Stats.Counters.to_list (Dip_netsim.Sim.counters sim));
  if no_cache then print_endline "program cache: disabled (--no-program-cache)"
  else
    List.iter
      (fun env ->
        Printf.printf "  %s program cache: %d hit(s), %d miss(es)\n"
          env.Env.name
          (Dip_netsim.Stats.Counters.get env.Env.counters "progcache.hit")
          (Dip_netsim.Stats.Counters.get env.Env.counters "progcache.miss"))
      routers;
  (match (metrics, obs) with
  | Some fmt, Some o ->
      print_newline ();
      export_metrics fmt (Obs.metrics o)
  | _ -> ());
  (match (flight, ring) with
  | Some path, Some r ->
      write_flight ~path ~text:false
        ~pid_names:[ (0, "chain") ]
        (Dip_obs.Flight.events r)
  | _ -> ());
  0
  end

(* --- trace --- *)

module Trace = Dip_netsim.Trace

(* One packet through the chain, observed from both sides at once:
   the host-side Trace records what each node did with it, and (for
   -p ipv4, which composes with F_tel) the routers stamp in-band
   telemetry records that the sink reads back out of the packet. The
   two views are merged on the time axis — the in-band timestamp is
   the engine's [now] in whole microseconds, so with the default
   1 us link latency each record lands beside its hop's reception. *)
let trace proto n =
  if n < 1 then begin
    Printf.eprintf "need at least one router\n";
    exit 1
  end;
  let sim = Dip_netsim.Sim.create () in
  (* The engine rewrites the packet in flight (hop limit, telemetry
     appends), so the default CRC fingerprint would change per hop;
     there is only one packet, give it a constant identity. *)
  let tr = Trace.attach ~fingerprint:(fun _ -> 1l) sim in
  let routers = List.init n (fun i -> mk_chain_router i) in
  preinstall_pit proto routers;
  let ids =
    List.map
      (fun env ->
        Dip_netsim.Sim.add_node sim ~name:env.Env.name
          (Trace.wrap tr ~name:env.Env.name (Engine.handler ~registry env)))
      routers
  in
  (* Telemetry identity needs the node ids: router i reports node_id
     i+1 and its live egress-queue depth. *)
  List.iteri
    (fun i env ->
      let node = List.nth ids i in
      Env.set_telemetry_identity env ~node_id:(i + 1)
        ~queue_depth:(fun () -> Dip_netsim.Sim.queue_depth sim node 1))
    routers;
  let sink_id =
    Dip_netsim.Sim.add_node sim ~name:"sink"
      (Trace.wrap tr ~name:"sink" (fun _ ~now:_ ~ingress:_ _ ->
           [ Dip_netsim.Sim.Consume ]))
  in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        Dip_netsim.Sim.connect sim (a, 1) (b, 0);
        wire rest
    | [ last ] -> Dip_netsim.Sim.connect sim (last, 1) (sink_id, 0)
    | [] -> ()
  in
  wire ids;
  let telemetry = proto = Dip32 in
  let pkt =
    if telemetry then
      Realize.ipv4_telemetry ~max_hops:n ~src:(v4 "192.0.2.7")
        ~dst:(v4 "10.9.0.42") ~payload:"trace" ()
    else sample_packet ~hops:n proto
  in
  Dip_netsim.Sim.inject sim ~at:0.0 ~node:(List.hd ids) ~port:0 pkt;
  Dip_netsim.Sim.run sim;
  let host_lines =
    List.map
      (fun e ->
        ( e.Trace.time,
          e.Trace.node,
          match e.Trace.kind with
          | Trace.Received p -> Printf.sprintf "received on port %d" p
          | Trace.Consumed -> "consumed"
          | Trace.Dropped reason -> Printf.sprintf "dropped (%s)" reason ))
      (Trace.journey tr 1l)
  in
  let inband_lines =
    if not telemetry then []
    else
      match
        List.find_map
          (fun (_, _, p) ->
            match Packet.parse p with
            | Ok view ->
                Some
                  (Telemetry.read p ~base:view.Packet.loc_base
                     ~region_bytes:(Telemetry.region_size ~max_hops:n))
            | Error _ -> None)
          (Dip_netsim.Sim.consumed sim)
      with
      | None -> []
      | Some (records, overflow) ->
          if overflow then
            print_endline "note: in-band telemetry region overflowed";
          List.map
            (fun r ->
              ( Int32.to_float r.Telemetry.timestamp /. 1e6,
                Printf.sprintf "r%d" r.Telemetry.node_id,
                Printf.sprintf "[in-band] F_tel: node %d, queue depth %d"
                  r.Telemetry.node_id r.Telemetry.queue_depth ))
            records
  in
  (* Host events sort before same-instant in-band records (stable
     sort, hosts listed first) — reception, then the stamp it made. *)
  let merged =
    List.stable_sort
      (fun (a, _, _) (b, _, _) -> Float.compare a b)
      (host_lines @ inband_lines)
  in
  Printf.printf "packet journey through %d router(s)%s:\n" n
    (if telemetry then " (host-side trace + in-band F_tel records)" else "");
  List.iter
    (fun (t, node, what) -> Printf.printf "  %9.6fs  %-5s %s\n" t node what)
    merged;
  if telemetry then
    Printf.printf "\n%d in-band record(s) read back at the sink for %d hop(s)\n"
      (List.length inband_lines) n
  else
    print_endline
      "\n(no in-band records: F_tel composes with -p ipv4; other protocols \
       show the host-side trace only)";
  0

(* --- estimate --- *)

let estimate proto parallel =
  let keys = router_keys proto in
  let pkt = sample_packet proto in
  let header_bytes =
    match Packet.header_size pkt with Ok n -> n | Error _ -> 0
  in
  List.iter
    (fun (label, alg) ->
      let e =
        Dip_pisa.Cost.estimate Dip_pisa.Cost.tofino_like ~alg ~parallel
          ~header_bytes keys
      in
      Printf.printf "%-8s passes=%d stages=%d time=%.0f ns\n" label
        e.Dip_pisa.Cost.passes e.Dip_pisa.Cost.stages_used e.Dip_pisa.Cost.time_ns)
    [ ("2EM:", Dip_opt.Protocol.EM2); ("AES:", Dip_opt.Protocol.AES) ];
  0

(* --- lint: static FN-program verification --- *)

(* The six §3 realizations — the programs `dip lint` must accept with
   zero diagnostics. *)
let section3_targets ~hops =
  let dest_key = String.make 16 'k' in
  let name = Name.of_string "/hotnets.org/dip" in
  [
    ( "ipv4 (DIP-32)",
      Realize.ipv4 ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~payload:"demo" () );
    ( "ipv6 (DIP-128)",
      Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::42")
        ~payload:"demo" () );
    ("ndn interest", Realize.ndn_interest ~name ~payload:"" ());
    ("ndn data", Realize.ndn_data ~name ~content:"demo" ());
    ( "opt",
      Realize.opt ~hops ~session_id:0xD1AL ~timestamp:1l ~dest_key
        ~payload:"demo" () );
    ("ndn+opt interest", Realize.ndn_opt_interest ~name ~payload:"" ());
    ( "ndn+opt data",
      Realize.ndn_opt_data ~hops ~session_id:0xD1AL ~timestamp:1l ~dest_key
        ~name ~content:"demo" () );
    ( "xia",
      let open Dip_xia in
      Realize.xia
        ~dag:
          (Dag.fallback
             ~intent:(Xid.of_name Xid.SID "svc")
             ~via:[ Xid.of_name Xid.AD "as1"; Xid.of_name Xid.HID "h1" ])
        ~payload:"demo" () );
  ]

(* This repo's documented extensions (keys 12-15), as the examples
   construct them. *)
let extension_targets ~hops =
  let name = Name.of_string "/hotnets.org/dip" in
  [
    ( "ndn interest + F_pass",
      Realize.ndn_interest ~pass:Dip_crypto.Siphash.default_key ~name
        ~payload:"" () );
    ( "netfence",
      Realize.netfence ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~sender:7l
        ~rate:1e6 ~timestamp:1l ~payload:"demo" () );
    ( "ipv4 + telemetry",
      Realize.ipv4_telemetry ~max_hops:8 ~src:(v4 "192.0.2.7")
        ~dst:(v4 "10.9.0.42") ~payload:"demo" () );
    ("epic", sample_packet ~hops Epic);
  ]

let targets_of_proto ~hops proto =
  let all = section3_targets ~hops @ extension_targets ~hops in
  let pick labels = List.filter (fun (l, _) -> List.mem l labels) all in
  match proto with
  | Dip32 -> pick [ "ipv4 (DIP-32)" ]
  | Dip128 -> pick [ "ipv6 (DIP-128)" ]
  | Ndn -> pick [ "ndn interest"; "ndn data" ]
  | Opt -> pick [ "opt" ]
  | Ndn_opt -> pick [ "ndn+opt interest"; "ndn+opt data" ]
  | Xia -> pick [ "xia" ]
  | Epic -> pick [ "epic" ]

(* Canned reachability models. {!Dip_analysis.Reach} only needs the
   topology for its node count; forwarding structure lives in the
   per-node route tables, keyed on the packet's concrete match-field
   bytes. *)

module Reach = Dip_analysis.Reach
module Report = Dip_analysis.Report

let reach_node ?reg routes =
  {
    Reach.n_registry = Some (Option.value reg ~default:registry);
    n_routes = routes;
    n_local = [];
  }

(* A delivery chain: src router 0, hops-1 more routers, host dst. *)
let chain_config ~hops v =
  {
    Reach.c_topology = Dip_netsim.Topology.linear (hops + 1);
    c_node = (fun i -> reach_node (if i < hops then [ (v, i + 1) ] else []));
    c_src = 0;
    c_dst = hops;
  }

(* Static routes that cycle 0→1→2→0 while dst 3 is never entered. *)
let ring_config v =
  {
    Reach.c_topology = Dip_netsim.Topology.linear 4;
    c_node =
      (fun i ->
        reach_node
          (match i with
          | 0 -> [ (v, 1) ]
          | 1 -> [ (v, 2) ]
          | 2 -> [ (v, 0) ]
          | _ -> []));
    c_src = 0;
    c_dst = 3;
  }

(* Node 1 simply has no route for the match value. *)
let cut_config v =
  {
    Reach.c_topology = Dip_netsim.Topology.linear 3;
    c_node = (fun i -> reach_node (if i = 0 then [ (v, 1) ] else []));
    c_src = 0;
    c_dst = 2;
  }

(* A diamond 0→1→{2,3}: node 1 only fans out to node 2 for packets
   whose match value an FN has rewritten (the unknown-value fanout),
   and node 2 lacks a mandatory key. The shortest path 0→1→3 is
   clean, which is exactly why check_deployment misses the gap. *)
let diamond_config v =
  let gapped =
    Registry.restrict registry
      (List.filter (fun k -> k <> Opkey.F_hvf) (Registry.supported registry))
  in
  {
    Reach.c_topology = Dip_netsim.Topology.linear 4;
    c_node =
      (fun i ->
        match i with
        | 0 -> reach_node [ (v, 1) ]
        | 1 -> reach_node [ (v, 3); ("\xff off-path", 2) ]
        | 2 -> reach_node ~reg:gapped [ (v, 3) ]
        | _ -> reach_node []);
    c_src = 0;
    c_dst = 3;
  }

(* Reachability diagnostics for a lint target over an [hops]-router
   chain. Targets without a forwarding FN carry no match value to
   route on, so there is nothing to propagate. *)
let chain_reach_diags ~hops pkt =
  match Packet.parse pkt with
  | Error _ -> []
  | Ok view -> (
      match Reach.match_value view with
      | None -> []
      | Some v -> Reach.check_view (chain_config ~hops v) view)

(* --deep: show the abstract execution both sides of the engine would
   perform — resolved reads/writes, the dependence edges the analyzer
   actually proved, and the match value the forwarding decision sees. *)
let print_deep pkt =
  match Packet.parse pkt with
  | Error _ -> ()
  | Ok view ->
      let module Absint = Dip_analysis.Absint in
      let module Field = Dip_bitbuf.Field in
      let region_bits = 8 * view.Packet.header.Header.fn_loc_len in
      let bytes =
        if region_bits = 0 then None
        else
          Some
            (Bitbuf.get_field view.Packet.buf
               (Dip_bitbuf.Field.v
                  ~off_bits:(8 * view.Packet.loc_base)
                  ~len_bits:region_bits))
      in
      let program = List.mapi (fun i fn -> (i, fn)) (Array.to_list view.Packet.fns) in
      let span (f : Field.t) =
        Printf.sprintf "%d..%d" f.Field.off_bits (Field.last_bit f)
      in
      let value_name = function
        | Absint.Bytes _ -> "exact"
        | Absint.Abs (k, []) -> Absint.kind_name k
        | Absint.Abs (k, ws) ->
            Printf.sprintf "%s by FN %s" (Absint.kind_name k)
              (String.concat "/" (List.map (fun i -> string_of_int (i + 1)) ws))
      in
      List.iter
        (fun (side, name) ->
          let r = Absint.exec ~registry ?bytes ~side ~region_bits program in
          Printf.printf "  %s dataflow:\n" name;
          List.iter
            (fun (st : Absint.step) ->
              let fn = st.Absint.st_fn in
              if not st.Absint.st_ran then
                Printf.printf "    FN %-2d %-12s skipped (%s-tagged)\n"
                  (st.Absint.st_index + 1) (Opkey.name fn.Fn.key)
                  (match fn.Fn.tag with Fn.Router -> "router" | Fn.Host -> "host")
              else begin
                let reads =
                  (if st.Absint.st_reads_region then [ "region" ] else [])
                  @ List.map span st.Absint.st_reads
                in
                let writes =
                  List.map
                    (fun (f, k) ->
                      Printf.sprintf "%s:%s" (span f)
                        (match k with
                        | Registry.W_step -> "step"
                        | Registry.W_node -> "node"
                        | Registry.W_data -> "data"))
                    st.Absint.st_writes
                in
                let deps =
                  List.map
                    (fun i -> Printf.sprintf "FN %d" (i + 1))
                    st.Absint.st_read_writers
                  @ List.map
                      (fun (c, p) -> Printf.sprintf "scratch.%s←FN %d" c (p + 1))
                      st.Absint.st_scratch_deps
                in
                Printf.printf "    FN %-2d %-12s reads[%s] writes[%s]%s%s\n"
                  (st.Absint.st_index + 1) (Opkey.name fn.Fn.key)
                  (String.concat " " reads) (String.concat " " writes)
                  (match st.Absint.st_value with
                  | Some v
                    when (Registry.transfer fn.Fn.key).Registry.t_match ->
                      " match=" ^ value_name v
                  | _ -> "")
                  (if deps = [] then ""
                   else " deps{" ^ String.concat ", " deps ^ "}")
              end)
            r.Absint.steps)
        [ (Absint.Router, "router"); (Absint.Host, "host") ]

(* --- the defect corpus (--corpus / --emit-corpus) --- *)

(* Checked-in programs under test/corpus/: good/ must analyze with
   zero errors, bad/<check>--<name>.hex must produce at least one
   Error of the named class. Regenerate with
   `dip lint --emit-corpus test/corpus`. *)
let corpus_programs () =
  let region n = String.make n '\000' in
  let ipv4 =
    Realize.ipv4 ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~payload:"demo" ()
  in
  let bounds_bad =
    (* Packet.build refuses out-of-region targets, so forge one: grow
       the first FN's declared length past the region after the fact. *)
    let p =
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
               Fn.v ~loc:32 ~len:32 Opkey.F_source ]
        ~locations:(region 8) ~payload:"" ()
    in
    Bitbuf.set_uint16 p (Header.fn_offset 0 + 2) 96;
    p
  in
  let key_bad =
    let p =
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
               Fn.v ~loc:32 ~len:32 Opkey.F_source ]
        ~locations:(region 8) ~payload:"" ()
    in
    Bitbuf.set_uint16 p (Header.fn_offset 1 + 4) 999;
    p
  in
  [
    ("good", "ipv4.hex", ipv4);
    ( "good", "ndn-data.hex",
      Realize.ndn_data ~name:(Name.of_string "/hotnets.org/dip") ~content:"demo" () );
    ("good", "xia.hex", snd (List.hd (targets_of_proto ~hops:3 Xia)));
    ("good", "epic.hex", sample_packet ~hops:3 Epic);
    ( "good", "ndn-opt-data.hex",
      Realize.ndn_opt_data ~hops:3 ~session_id:0xD1AL ~timestamp:1l
        ~dest_key:(String.make 16 'k') ~name:(Name.of_string "/hotnets.org/dip")
        ~content:"demo" () );
    ("bad", "bounds--region-overflow.hex", bounds_bad);
    ("bad", "key--unknown.hex", key_bad);
    ( "bad", "race--parallel-overlap.hex",
      Packet.build ~parallel:true
        ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_cc; Fn.v ~loc:0 ~len:72 Opkey.F_tel ]
        ~locations:(region 9) ~payload:"" () );
    ( "bad", "race--scratch-chain.hex",
      (* Disjoint fields, so the engine's overlap leveling runs both
         at level 1 — but F_mark consumes the scratch key F_parm
         produces: the hazard only the dataflow pass sees. *)
      Packet.build ~parallel:true
        ~fns:[ Fn.v ~loc:128 ~len:128 Opkey.F_parm;
               Fn.v ~loc:288 ~len:128 Opkey.F_mark ]
        ~locations:(region 52) ~payload:"" () );
    ( "bad", "dependency--missing-producer.hex",
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:416 Opkey.F_mac ]
        ~locations:(region 52) ~payload:"" () );
    ( "bad", "sharding--telemetry-rewrite.hex",
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
               Fn.v ~loc:0 ~len:72 Opkey.F_tel ]
        ~locations:(region 9) ~payload:"" () );
    ("bad", "loop--static-ring.hex", ipv4);
    ("bad", "blackhole--missing-route.hex", ipv4);
    ( "bad", "deployment--post-rewrite-gap.hex",
      Packet.build
        ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
               Fn.v ~loc:0 ~len:72 Opkey.F_tel;
               Fn.v ~loc:72 ~len:32 Opkey.F_hvf ]
        ~locations:(region 13) ~payload:"" () );
  ]

let emit_corpus dir =
  let ensure d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  ensure dir;
  List.iter
    (fun (sub, name, pkt) ->
      ensure (Filename.concat dir sub);
      let path = Filename.concat (Filename.concat dir sub) name in
      let oc = open_out path in
      output_string oc (Dip_stdext.Hex.encode (Bitbuf.to_string pkt));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path)
    (corpus_programs ());
  0

(* Topology-dependent defect classes get a canned model chosen by the
   file's class prefix; everything else is per-program analysis. *)
let corpus_topology_diags cls pkt =
  match Packet.parse pkt with
  | Error e -> [ Report.error cls ("parse: " ^ e) ]
  | Ok view -> (
      match Reach.match_value view with
      | None ->
          [ Report.error cls "no concrete match value for the topology model" ]
      | Some v ->
          let config =
            match cls with
            | Report.Loop -> ring_config v
            | Report.Blackhole -> cut_config v
            | _ -> diamond_config v
          in
          Reach.check_view config view)

type corpus_result = {
  cr_file : string;
  cr_expect : string;  (* "clean" or a check-class name *)
  cr_errors : int;
  cr_warnings : int;
  cr_ok : bool;
  cr_detail : string;
}

let corpus_file (sub, name, path) =
  let file = Filename.concat sub name in
  let data = In_channel.with_open_bin path In_channel.input_all in
  match Dip_stdext.Hex.decode (String.trim data) with
  | exception Invalid_argument e ->
      { cr_file = file; cr_expect = "?"; cr_errors = 0; cr_warnings = 0;
        cr_ok = false; cr_detail = "bad hex: " ^ e }
  | s -> (
      let pkt = Bitbuf.of_string s in
      let report = Dip_analysis.analyze_packet ~registry pkt in
      if sub = "good" then
        {
          cr_file = file;
          cr_expect = "clean";
          cr_errors = Report.errors report;
          cr_warnings = Report.warnings report;
          cr_ok = Report.ok report;
          cr_detail =
            (if Report.ok report then "no errors"
             else Option.value ~default:"" (Report.first_error report));
        }
      else
        let cls_name =
          match String.index_opt name '-' with
          | Some i when i + 1 < String.length name && name.[i + 1] = '-' ->
              String.sub name 0 i
          | _ -> ""
        in
        match Report.check_of_name cls_name with
        | None ->
            { cr_file = file; cr_expect = cls_name; cr_errors = 0;
              cr_warnings = 0; cr_ok = false;
              cr_detail = "unknown check class in file name" }
        | Some cls ->
            let extra =
              match cls with
              | Report.Loop | Report.Blackhole | Report.Deployment ->
                  corpus_topology_diags cls pkt
              | _ -> []
            in
            let diags = report.Report.diags @ extra in
            let hit =
              List.find_opt
                (fun (d : Report.diag) ->
                  d.Report.severity = Report.Error && d.Report.check = cls)
                diags
            in
            {
              cr_file = file;
              cr_expect = cls_name;
              cr_errors =
                List.length
                  (List.filter
                     (fun (d : Report.diag) -> d.Report.severity = Report.Error)
                     diags);
              cr_warnings =
                List.length
                  (List.filter
                     (fun (d : Report.diag) -> d.Report.severity = Report.Warning)
                     diags);
              cr_ok = hit <> None;
              cr_detail =
                (match hit with
                | Some d -> d.Report.message
                | None ->
                    Printf.sprintf "expected an Error of class %s, found none"
                      cls_name);
            })

let run_corpus dir json =
  let list sub =
    let d = Filename.concat dir sub in
    if not (Sys.file_exists d) then []
    else
      Sys.readdir d |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".hex")
      |> List.sort compare
      |> List.map (fun f -> (sub, f, Filename.concat d f))
  in
  let files = list "good" @ list "bad" in
  if files = [] then begin
    Printf.eprintf "no corpus files under %s\n" dir;
    exit 2
  end;
  let results = List.map corpus_file files in
  let failed = List.filter (fun r -> not r.cr_ok) results in
  if json then begin
    let obj r =
      Printf.sprintf
        "{\"file\":%S,\"expect\":%S,\"errors\":%d,\"warnings\":%d,\"ok\":%b,\
         \"detail\":%S}"
        r.cr_file r.cr_expect r.cr_errors r.cr_warnings r.cr_ok r.cr_detail
    in
    Printf.printf "{\"corpus\":%S,\"files\":[%s],\"failed\":%d}\n" dir
      (String.concat "," (List.map obj results))
      (List.length failed)
  end
  else begin
    List.iter
      (fun r ->
        Printf.printf "%-40s %-12s %s (%s)\n" r.cr_file
          ("expect " ^ r.cr_expect)
          (if r.cr_ok then "ok" else "FAIL")
          r.cr_detail)
      results;
    Printf.printf "%d corpus file(s), %d failure(s)\n" (List.length results)
      (List.length failed)
  end;
  if failed <> [] then 1 else 0

let lint proto all hex strict deep topology json corpus emit =
  match emit with
  | Some dir -> emit_corpus dir
  | None -> (
      match corpus with
      | Some dir -> run_corpus dir json
      | None ->
          let hops = 3 in
          let targets =
            match hex with
            | Some h -> (
                match Dip_stdext.Hex.decode h with
                | s -> [ ("packet", Bitbuf.of_string s) ]
                | exception Invalid_argument e ->
                    Printf.eprintf "bad hex: %s\n" e;
                    exit 2)
            | None -> (
                if all then section3_targets ~hops @ extension_targets ~hops
                else
                  match proto with
                  | Some p -> targets_of_proto ~hops p
                  | None -> section3_targets ~hops)
          in
          let failed = ref false in
          let reports =
            List.map
              (fun (label, pkt) ->
                let report = Dip_analysis.analyze_packet ~registry pkt in
                let report =
                  match topology with
                  | None -> report
                  | Some n ->
                      { report with
                        Report.diags =
                          report.Report.diags @ chain_reach_diags ~hops:n pkt }
                in
                if not (Report.ok report) then failed := true;
                if strict && not (Report.clean report) then failed := true;
                (label, pkt, report))
              targets
          in
          if json then
            print_endline
              ("["
              ^ String.concat ","
                  (List.map
                     (fun (label, _, r) -> Report.to_json ~label r)
                     reports)
              ^ "]")
          else
            List.iter
              (fun (label, pkt, report) ->
                Format.printf "%-20s %a@." (label ^ ":") Report.pp report;
                if deep then print_deep pkt)
              reports;
          if !failed then 1 else 0)

(* --- chaos: fault injection + reliable delivery --- *)

let chaos n count interval seed drop corrupt duplicate jitter flap crash
    custody passes horizon no_retx json metrics flight =
  let spec =
    try Dip_netsim.Faults.spec ~drop ~corrupt ~duplicate ~jitter ()
    with Invalid_argument e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  let reliable =
    if no_retx then { Host.Reliable.default_config with max_retries = 0 }
    else Host.Reliable.default_config
  in
  let schedule =
    match passes with
    | None -> []
    | Some (period, pass) -> (
        try
          Dip_netsim.Workload.satellite_passes ~seed:(Int64.of_int seed)
            ~period ~pass ~horizon ()
        with Invalid_argument e ->
          Printf.eprintf "%s\n" e;
          exit 2)
  in
  let cfg =
    {
      Chaos.default with
      routers = n;
      packets = count;
      interval;
      seed = Int64.of_int seed;
      spec;
      flap;
      schedule;
      crash;
      reliable;
      custody =
        (if custody then
           (* The sweep deadline bounds the run even if bundles end up
              permanently stranded (e.g. --drop 1). *)
           Some
             { Dip_core.Custody.default_config with
               retry_until = (2.0 *. horizon) +. 60.0 }
         else None);
    }
  in
  let m =
    match metrics with None -> None | Some _ -> Some (Dip_obs.Metrics.create ())
  in
  let ring =
    match flight with
    | None -> None
    | Some _ -> Some (Dip_obs.Flight.create ~pid:0 ~tid:0 ())
  in
  let r =
    try Chaos.run ?metrics:m ?flight:ring cfg
    with Invalid_argument e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  if json then begin
    let ints kvs =
      String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) kvs)
    in
    Printf.printf
      "{\"sent\":%d,\"delivered\":%d,\"delivery_rate\":%.6f,\"duplicates\":%d,\
       \"rejected\":%d,\"transmissions\":%d,\"acked\":%d,\"custodied\":%d,\
       \"gave_up\":%d,\"in_flight\":%d,\"latency_mean\":%.6f,\
       \"latency_p50\":%.6f,\"latency_p99\":%.6f,\"faults\":{%s},\
       \"custody\":{%s}}\n"
      r.Chaos.sent r.Chaos.delivered r.Chaos.delivery_rate r.Chaos.duplicates
      r.Chaos.rejected r.Chaos.transmissions r.Chaos.acked r.Chaos.custodied
      r.Chaos.gave_up r.Chaos.in_flight r.Chaos.latency_mean r.Chaos.latency_p50
      r.Chaos.latency_p99 (ints r.Chaos.faults) (ints r.Chaos.custody)
  end
  else begin
    Printf.printf
      "%d router(s), %d packet(s), seed %d%s%s:\n  delivered %d/%d (%.1f%%), %d \
       duplicate(s) deduped, %d integrity drop(s)\n  %d transmission(s), %d \
       acked, %d custodied, %d abandoned, %d unresolved\n  latency mean %.4fs  \
       p50 %.4fs  p99 %.4fs\n"
      n count seed
      (if no_retx then " (retransmission off)" else "")
      (if custody then " (custody transfer on)" else "")
      r.Chaos.delivered r.Chaos.sent
      (100.0 *. r.Chaos.delivery_rate)
      r.Chaos.duplicates r.Chaos.rejected r.Chaos.transmissions r.Chaos.acked
      r.Chaos.custodied r.Chaos.gave_up r.Chaos.in_flight r.Chaos.latency_mean
      r.Chaos.latency_p50 r.Chaos.latency_p99;
    if r.Chaos.faults <> [] then begin
      let t =
        Dip_stdext.Tabular.create
          ~aligns:[ Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Right ]
          [ "injected fault"; "count" ]
      in
      List.iter
        (fun (k, v) -> Dip_stdext.Tabular.add_row t [ k; string_of_int v ])
        r.Chaos.faults;
      Dip_stdext.Tabular.print t
    end
    else print_endline "no faults injected";
    if r.Chaos.custody <> [] then begin
      let t =
        Dip_stdext.Tabular.create
          ~aligns:[ Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Right ]
          [ "custody (all routers)"; "count" ]
      in
      List.iter
        (fun (k, v) -> Dip_stdext.Tabular.add_row t [ k; string_of_int v ])
        r.Chaos.custody;
      Dip_stdext.Tabular.print t
    end
  end;
  (match (metrics, m) with
  | Some fmt, Some m ->
      print_newline ();
      export_metrics fmt m
  | _ -> ());
  (match (flight, ring) with
  | Some path, Some r ->
      write_flight ~path ~text:false
        ~pid_names:[ (0, "chaos") ]
        (Dip_obs.Flight.events r)
  | _ -> ());
  0

(* --- profile: flight-recorded parallel run --- *)

(* A demo-shaped chain run with the flight recorder armed everywhere:
   per-pool worker lanes, the dispatcher lane, the simulator's window
   lifecycle, plus one deliberate mid-run epoch republish so the trace
   shows a configuration swap. The merged timeline is written as
   Chrome trace-event JSON (or plain text with --text). *)
let profile proto n count domains out text =
  if n < 1 || count < 1 || domains < 1 then begin
    Printf.eprintf "need at least one router, packet and domain\n";
    exit 1
  end;
  let sim = Dip_netsim.Sim.create () in
  let sim_ring = Dip_obs.Flight.create ~pid:0 ~tid:0 () in
  Dip_netsim.Sim.set_flight sim (Some sim_ring);
  let mk_env i _w =
    let env = mk_chain_router ~no_cache:false i in
    preinstall_pit proto [ env ];
    env
  in
  let snaps =
    List.init n (fun i -> Dip_mcore.Snapshot.v ~registry ~mk_env:(mk_env i) ())
  in
  let pools =
    List.mapi
      (fun i snap ->
        Dip_mcore.Pool.create ~domains ~metrics:true ~obs_sample_every:1
          ~flight:(i + 1) snap)
      snaps
  in
  let sink_consumed = ref 0 in
  let sink _sim ~now:_ ~ingress:_ _pkt =
    incr sink_consumed;
    [ Dip_netsim.Sim.Consume ]
  in
  let handler_of pool _sim ~now ~ingress pkt =
    (Dip_mcore.Pool.handle_batch pool [| { Dip_mcore.Pool.now; ingress; pkt } |]).(0)
  in
  let ids =
    List.mapi
      (fun i pool ->
        Dip_netsim.Sim.add_node sim
          ~name:(Printf.sprintf "r%d" (i + 1))
          (handler_of pool))
      pools
  in
  let sink_id = Dip_netsim.Sim.add_node sim ~name:"sink" sink in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        Dip_netsim.Sim.connect sim (a, 1) (b, 0);
        wire rest
    | [ last ] -> Dip_netsim.Sim.connect sim (last, 1) (sink_id, 0)
    | [] -> ()
  in
  wire ids;
  for k = 0 to count - 1 do
    Dip_netsim.Sim.inject sim ~at:(float_of_int k *. 1e-6) ~node:(List.hd ids)
      ~port:0
      (sample_packet ~hops:n proto)
  done;
  (* Republish every pool halfway through so the trace contains an
     epoch swap. The timer drains the execution pipeline first, so the
     pools are quiescent at the swap. *)
  Dip_netsim.Sim.schedule sim
    ~at:(float_of_int (count / 2) *. 1e-6)
    (fun _ ->
      List.iter2
        (fun snap pool ->
          match Dip_mcore.Pool.publish pool (Dip_mcore.Snapshot.next snap) with
          | Ok () -> ()
          | Error e -> Printf.eprintf "republish: %s\n" e)
        snaps pools);
  Dip_mcore.Runner.run_parallel ~window:16e-6 sim
    ~pools:(List.combine ids pools);
  let rings =
    sim_ring :: List.concat_map Dip_mcore.Pool.flight_rings pools
  in
  let events = Dip_obs.Flight.merge rings in
  let layer_count prefix =
    List.length
      (List.filter
         (fun e ->
           let name = Dip_obs.Flight.id_name e.Dip_obs.Flight.ev_id in
           String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix)
         events)
  in
  Printf.printf
    "profiled %d router(s) x %d domain(s): %d/%d packet(s) reached the sink\n"
    n domains !sink_consumed count;
  Printf.printf "recorded %d event(s) (%d ring(s)):\n" (List.length events)
    (List.length rings);
  List.iter
    (fun (label, prefix) -> Printf.printf "  %-14s %d\n" label (layer_count prefix))
    [
      ("engine", "engine.");
      ("progcache", "progcache.");
      ("pool", "pool.");
      ("epoch swaps", "pool.publish");
      ("sim windows", "sim.window.");
      ("gc", "gc.");
    ];
  List.iteri
    (fun i pool ->
      match Dip_mcore.Pool.timeline_summary pool with
      | Some s ->
          print_newline ();
          print_timeline_summary (Printf.sprintf "r%d" (i + 1)) s
      | None -> ())
    pools;
  let pid_names =
    (0, "sim")
    :: List.mapi (fun i _ -> (i + 1, Printf.sprintf "r%d" (i + 1))) pools
  in
  write_flight ~path:out ~text ~pid_names events;
  List.iter Dip_mcore.Pool.shutdown pools;
  0

(* --- control: runtime FN management demo --- *)

let control () =
  let controller_key = Dip_crypto.Prf.key_of_string "controller-key-0" in
  let master = Ops.default_registry () in
  let live = Registry.restrict master [ Opkey.F_32_match; Opkey.F_source ] in
  let env = Env.create ~name:"edge" () in
  let state = Control.initial_state () in
  let show () =
    Printf.printf "  installed: %s\n"
      (String.concat ", " (List.map Opkey.name (Registry.supported live)))
  in
  print_endline "router boots with the minimal IP image:";
  show ();
  print_endline "\noperator pushes authenticated Enable_op commands:";
  List.iteri
    (fun i key ->
      let pkt =
        Control.encode ~key:controller_key ~seq:(Int64.of_int (i + 1))
          (Control.Enable_op key)
      in
      match
        Control.apply ~key:controller_key ~state ~env ~registry:live ~master pkt
      with
      | Ok cmd -> Format.printf "  applied: %a@." Control.pp_command cmd
      | Error e -> Printf.printf "  REJECTED: %s\n" e)
    [ Opkey.F_fib; Opkey.F_pit; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ];
  show ();
  print_endline "\na replayed command is refused:";
  let replay =
    Control.encode ~key:controller_key ~seq:1L (Control.Enable_op Opkey.F_ver)
  in
  (match
     Control.apply ~key:controller_key ~state ~env ~registry:live ~master replay
   with
  | Error e -> Printf.printf "  %s\n" e
  | Ok _ -> print_endline "  UNEXPECTEDLY ACCEPTED");
  print_endline "\nand a forged command (wrong controller key) is refused:";
  let forged =
    Control.encode
      ~key:(Dip_crypto.Prf.key_of_string "not-the-operator")
      ~seq:99L Control.Disable_pass
  in
  (match
     Control.apply ~key:controller_key ~state ~env ~registry:live ~master forged
   with
  | Error e -> Printf.printf "  %s\n" e
  | Ok _ -> print_endline "  UNEXPECTEDLY ACCEPTED");
  0

(* --- cmdliner wiring --- *)

let hops_arg =
  Arg.(value & opt int 1 & info [ "hops" ] ~docv:"N" ~doc:"OPT path length.")

let n_arg =
  Arg.(value & opt int 3 & info [ "n"; "routers" ] ~docv:"N" ~doc:"Chain length.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-program-cache" ]
        ~doc:
          "Disable the per-router decoded-FN-program cache so every packet \
           is cold-parsed (the escape hatch for debugging the fast path).")

let count_arg =
  Arg.(
    value & opt int 4
    & info [ "c"; "count" ] ~docv:"N"
        ~doc:
          "Packets to inject (each one freshly built, so from the second on \
           every router's program cache hits).")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some Fmt_table) (some metrics_conv) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Export the unified observability registry after the run: per-FN \
           run/skip counts and execution spans, verdict tallies, program-cache \
           and link metrics. $(docv) is $(b,table) (default), $(b,json) or \
           $(b,prom).")

let parallel_arg =
  Arg.(value & flag & info [ "parallel" ] ~doc:"Set the \\S2.2 parallel flag.")

let flight_arg =
  Arg.(
    value
    & opt ~vopt:(Some "dip-flight.json") (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Arm the flight recorder and write the merged timeline to $(docv) \
           (default $(b,dip-flight.json)) as Chrome trace-event JSON — load \
           it in Perfetto or about://tracing.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains per router. With $(docv) > 1 each router runs as a \
           $(b,Dip_mcore) pool: packets are sharded to workers by a flow hash \
           over the match field and executed in parallel batches; delivery \
           counts are identical to the single-domain run.")

let catalog_cmd =
  Cmd.v (Cmd.info "catalog" ~doc:"List the field-operation catalog (Table 1).")
    Term.(const catalog $ const ())

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Build a protocol's DIP packet and dump it.")
    Term.(const inspect $ proto_arg $ hops_arg)

let sizes_cmd =
  Cmd.v (Cmd.info "sizes" ~doc:"Header overhead per protocol (Table 2).")
    Term.(const sizes $ const ())

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run a router-chain simulation for a protocol.")
    Term.(
      const demo $ proto_arg $ n_arg $ count_arg $ no_cache_arg $ metrics_arg
      $ domains_arg $ flight_arg)

let profile_proto_arg =
  Arg.(
    value
    & opt proto_conv Dip32
    & info [ "p"; "protocol"; "realization" ] ~docv:"PROTOCOL"
        ~doc:
          "Realization to profile (default dip32): dip32, dip128, ndn, opt, \
           ndn+opt, xia or epic.")

let profile_n_arg =
  Arg.(
    value & opt int 2 & info [ "n"; "routers" ] ~docv:"N" ~doc:"Chain length.")

let profile_count_arg =
  Arg.(
    value & opt int 5000
    & info [ "c"; "count" ] ~docv:"N" ~doc:"Packets to inject.")

let profile_domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains per router.")

let profile_out_arg =
  Arg.(
    value
    & opt string "dip-trace.json"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the trace.")

let profile_text_arg =
  Arg.(
    value & flag
    & info [ "text" ]
        ~doc:"Write a plain-text merged timeline instead of Chrome JSON.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a fully flight-recorded parallel chain (engine spans, \
          program-cache traffic, pool hand-off lanes, a mid-run epoch swap, \
          window lifecycle, GC counters) and write the merged timeline as \
          Chrome trace-event JSON.")
    Term.(
      const profile $ profile_proto_arg $ profile_n_arg $ profile_count_arg
      $ profile_domains_arg $ profile_out_arg $ profile_text_arg)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Follow one packet through the chain: the host-side trace merged \
          with the in-band F_tel telemetry records it accumulated.")
    Term.(const trace $ proto_arg $ n_arg)

let control_cmd =
  Cmd.v
    (Cmd.info "control"
       ~doc:"Demonstrate runtime FN upgrades via the control plane.")
    Term.(const control $ const ())

let estimate_cmd =
  Cmd.v (Cmd.info "estimate" ~doc:"PISA cost-model estimate for one hop.")
    Term.(const estimate $ proto_arg $ parallel_arg)

let lint_proto_arg =
  Arg.(
    value
    & opt (some proto_conv) None
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Lint only this protocol's packets (default: the six \\S3 realizations).")

let lint_all_arg =
  Arg.(
    value & flag
    & info [ "all" ] ~doc:"Lint the \\S3 realizations and this repo's extensions.")

let lint_hex_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hex" ] ~docv:"HEX" ~doc:"Lint a raw DIP packet given as hex.")

let lint_strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit non-zero on warnings too, not just errors.")

let lint_deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ]
        ~doc:
          "Also print the abstract dataflow per execution side: resolved \
           reads/writes, scratch and read-after-write dependence edges, and \
           the value the forwarding decision matches on.")

let lint_topology_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "topology" ] ~docv:"N"
        ~doc:
          "Additionally run the symbolic reachability pass over an \
           $(docv)-router delivery chain (detects loops, black holes and \
           \\S2.4 deployment gaps). Targets without a forwarding FN are \
           skipped.")

let lint_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit reports as a JSON array (or a JSON object with --corpus).")

let lint_corpus_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Run the defect-corpus gate: $(docv)/good/*.hex must analyze with \
           zero errors and every $(docv)/bad/<check>--<name>.hex must \
           produce at least one Error of the named check class (loop, \
           blackhole and deployment files are checked against canned \
           topology models).")

let lint_emit_corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-corpus" ] ~docv:"DIR"
        ~doc:"Regenerate the checked-in defect corpus under $(docv).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify FN programs: bounds, parallel races, scratch \
          dependency chains, keys, mcore sharding safety, and (with \
          --topology or the corpus models) network-wide loops, black holes \
          and deployment gaps.")
    Term.(
      const lint $ lint_proto_arg $ lint_all_arg $ lint_hex_arg
      $ lint_strict_arg $ lint_deep_arg $ lint_topology_arg $ lint_json_arg
      $ lint_corpus_arg $ lint_emit_corpus_arg)

let chaos_count_arg =
  Arg.(
    value & opt int 200
    & info [ "c"; "count" ] ~docv:"N" ~doc:"Payloads to deliver reliably.")

let interval_arg =
  Arg.(
    value & opt float 0.01
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Spacing between sends.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Fault-schedule seed. Equal seeds reproduce byte-identical fault \
           schedules.")

let prob_arg name doc =
  Arg.(value & opt float 0.0 & info [ name ] ~docv:"PROB" ~doc)

let jitter_arg =
  Arg.(
    value & opt float 0.0
    & info [ "link-jitter" ] ~docv:"SECONDS"
        ~doc:"Max extra per-packet link delay (causes reordering).")

let window_conv = Arg.(pair ~sep:':' float float)

let flap_arg =
  Arg.(
    value
    & opt (some window_conv) None
    & info [ "flap" ] ~docv:"FROM:UNTIL"
        ~doc:"Down window for the link after the middle router.")

let crash_arg =
  Arg.(
    value
    & opt (some window_conv) None
    & info [ "crash" ] ~docv:"FROM:UNTIL"
        ~doc:"Crash window for the middle router.")

let custody_arg =
  Arg.(
    value & flag
    & info [ "custody" ]
        ~doc:
          "Turn every router into a custodian (F_cust): bundles are stored \
           hop-by-hop, ACKed upstream and replayed when the link comes back \
           up — DTN-style disruption tolerance.")

let passes_arg =
  Arg.(
    value
    & opt (some (pair ~sep:':' float float)) None
    & info [ "passes" ] ~docv:"PERIOD:PASS"
        ~doc:
          "Satellite-pass contact schedule for the middle link: up for PASS \
           seconds every PERIOD seconds, down otherwise (until --horizon).")

let horizon_arg =
  Arg.(
    value & opt float 60.0
    & info [ "horizon" ] ~docv:"SECONDS"
        ~doc:"End of the --passes schedule (the link stays up after it).")

let no_retx_arg =
  Arg.(
    value & flag
    & info [ "no-retransmit" ]
        ~doc:"Send each payload exactly once (measure raw loss).")

let chaos_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a reliable host pair across a router chain with seeded fault \
          injection (drop, corruption, duplication, reordering, link flap, \
          router crash, satellite-pass outages) and report delivery and \
          recovery statistics; --custody adds DTN-style custody transfer.")
    Term.(
      const chaos $ n_arg $ chaos_count_arg $ interval_arg $ seed_arg
      $ prob_arg "drop" "Per-transmission drop probability."
      $ prob_arg "corrupt" "Per-transmission byte-corruption probability."
      $ prob_arg "duplicate" "Per-transmission duplication probability."
      $ jitter_arg $ flap_arg $ crash_arg $ custody_arg $ passes_arg
      $ horizon_arg $ no_retx_arg $ chaos_json_arg $ metrics_arg $ flight_arg)

(* --- fib --- *)

(* Build the at-scale forwarding tables from a seeded BGP-shaped
   prefix set and report what a line card would care about: build
   rate, memory layout, and a few longest-match probes. *)
let fib routes v6_routes seed =
  let module Fib = Dip_tables.Fib in
  let module Workload = Dip_netsim.Workload in
  let ps = Workload.v4_prefixes ~seed ~count:routes in
  let t0 = Unix.gettimeofday () in
  let t = Fib.V4.create () in
  Array.iteri (fun i (a, len) -> Fib.V4.insert t a ~len (i land 15)) ps;
  let dt = Unix.gettimeofday () -. t0 in
  let st = Fib.V4.stats t in
  Printf.printf "IPv4: DIR-24-8 flat-array engine\n";
  Printf.printf "  routes         %d (%.0f inserts/s)\n" st.Fib.V4.routes
    (float_of_int routes /. dt);
  Printf.printf "  next hops      %d interned\n" st.Fib.V4.next_hops;
  Printf.printf "  /24 chunks     %d of 1024 materialized\n" st.Fib.V4.chunks;
  Printf.printf "  spill blocks   %d (for /25-/32 routes)\n" st.Fib.V4.spill_blocks;
  Printf.printf "  data plane     %.1f MB (%.1f B/route)\n"
    (float_of_int st.Fib.V4.lookup_bytes /. 1e6)
    (float_of_int st.Fib.V4.lookup_bytes /. float_of_int (max 1 st.Fib.V4.routes));
  Printf.printf "  with side store %.1f MB total\n"
    (float_of_int st.Fib.V4.total_bytes /. 1e6);
  let g = Dip_stdext.Prng.create (Int64.add seed 1L) in
  Printf.printf "  sample probes:\n";
  for _ = 1 to 4 do
    let a, _ = ps.(Dip_stdext.Prng.int g routes) in
    match Fib.V4.lookup t a with
    | Some (l, p) ->
        Printf.printf "    %-18s -> %s/%d via port %d\n"
          (Ipaddr.V4.to_string a)
          (Ipaddr.V4.to_string a) l p
    | None -> Printf.printf "    %-18s -> no route\n" (Ipaddr.V4.to_string a)
  done;
  let p6 = Workload.v6_prefixes ~seed ~count:v6_routes in
  let t0 = Unix.gettimeofday () in
  let t6 = Fib.V6.create () in
  Array.iteri (fun i (a, len) -> Fib.V6.insert t6 a ~len (i land 15)) p6;
  let dt6 = Unix.gettimeofday () -. t0 in
  let st6 = Fib.V6.stats t6 in
  Printf.printf "IPv6: compressed stride-8 multibit trie\n";
  Printf.printf "  routes         %d (%.0f inserts/s)\n" st6.Fib.V6.routes
    (float_of_int v6_routes /. dt6);
  Printf.printf "  nodes          %d (%d promoted to dense)\n" st6.Fib.V6.nodes
    st6.Fib.V6.dense_nodes;
  Printf.printf "  memory         %.1f MB (%.1f B/route)\n"
    (float_of_int st6.Fib.V6.total_bytes /. 1e6)
    (float_of_int st6.Fib.V6.total_bytes /. float_of_int (max 1 st6.Fib.V6.routes));
  0

let fib_routes_arg =
  Arg.(
    value & opt int 100_000
    & info [ "routes" ] ~docv:"N" ~doc:"IPv4 route count.")

let fib_v6_routes_arg =
  Arg.(
    value & opt int 10_000
    & info [ "v6-routes" ] ~docv:"N" ~doc:"IPv6 route count.")

let fib_seed_arg =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let fib_cmd =
  Cmd.v
    (Cmd.info "fib"
       ~doc:
         "Build the at-scale forwarding tables (DIR-24-8 IPv4, multibit-trie \
          IPv6) from a seeded BGP-shaped prefix set and report build rate, \
          memory layout and sample probes.")
    Term.(const fib $ fib_routes_arg $ fib_v6_routes_arg $ fib_seed_arg)

let () =
  let doc = "DIP: unified L3 protocols from shared field operations" in
  let info = Cmd.info "dip" ~version:"0.1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            catalog_cmd; inspect_cmd; sizes_cmd; demo_cmd; profile_cmd;
            trace_cmd; estimate_cmd; lint_cmd; chaos_cmd; control_cmd;
            fib_cmd;
          ]))
