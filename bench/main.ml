(* The DIP benchmark harness.

   One target per paper artifact (DESIGN.md §5):

     table1            Table 1  — the FN catalog
     figure1           Figure 1 — the DIP header structure
     table2            Table 2  — packet header size overhead
     figure2           Figure 2 — packet processing time
     ablation-dispatch A1 — Algorithm 1 interpreter vs §4.1 unrolled dispatch
     ablation-mac      A2 — 2EM vs AES (the §4.1 resubmission trade-off)
     ablation-parallel A3 — the §2.2 parallel-execution flag
     ablation-fpass    A4 — §2.4 F_pass: cost and efficacy
     ablation-tables   A5 — FIB/LPM scaling
     ablation-netfence A6 — F_cc congestion policing (extension)
     ablation-telemetry A7 — F_tel in-band telemetry (extension)
     ablation-epic     A8 — F_hvf EPIC hop validation (extension)
     cache             program-cache fast path vs cold parse+verify
                       (writes BENCH_PR2.json in the current directory)
     cache-smoke       quick CI variant of cache: asserts a positive
                       hit rate on a soak workload, exits non-zero on
                       regression
     obs               Dip_obs engine instrumentation overhead, off vs
                       on (writes BENCH_PR3.json in the current
                       directory)
     obs-smoke         quick CI variant of obs: asserts the overhead
                       stays under the 15% budget and the counters
                       agree with the packets processed
     faults            reliable delivery + p99 latency vs injected loss
                       rate, with and without retransmission (writes
                       BENCH_PR4.json in the current directory)
     faults-smoke      quick CI variant of faults: fixed seed, 5% loss
                       + corruption + duplication + link flap; asserts
                       100% deduplicated delivery with retransmission,
                       at least one fault of each enabled kind, and a
                       seed-reproducible fault schedule
     mcore             domain-parallel batched data plane: throughput
                       scaling at 1/2/4/8 worker domains vs the
                       sequential engine (writes BENCH_PR5.json in the
                       current directory)
     mcore-smoke       quick CI variant of mcore: verifies batch
                       results, and on machines with >= 4 cores
                       asserts >= 1.5x throughput at 4 domains vs 1
                       (skips the ratio check on smaller machines)
     flight            Dip_obs.Flight recorder overhead: uninstrumented
                       vs obs vs obs+ring on the cached hot path
                       (writes BENCH_PR8.json in the current directory)
     flight-smoke      quick CI variant of flight: asserts the ring
                       stays within its 5% budget over the obs baseline
                       and drains exactly the events recorded
     custody           delivery rate and p99 latency across
                       disconnection lengths, custody transfer vs the
                       end-to-end baseline (writes BENCH_PR9.json in
                       the current directory)
     custody-smoke     quick CI variant of custody: on a seeded
                       satellite-pass schedule custody must reach full
                       delivery where the e2e baseline gives up, with
                       bounded store occupancy and a reproducible run
     fib               million-route DIR-24-8 v4 FIB + 100k-route v6
                       multibit trie vs the binary-trie oracle on a
                       BGP-shaped table and Zipf/Pareto traffic:
                       lookups/s, inserts/s, update cost, bytes/route
                       (writes BENCH_PR10.json in the current
                       directory)
     fib-smoke         quick CI variant of fib: 50k routes, hard
                       FIB ≡ trie equivalence on the whole stream,
                       miss probes and a withdrawal wave, plus a
                       conservative speedup floor
     all               everything above (default; excludes the smokes)

   Usage: dune exec bench/main.exe [-- <target>] *)

open Bechamel
open Dip_core
module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr
module Name = Dip_tables.Name
module Tabular = Dip_stdext.Tabular
module Pit = Dip_tables.Pit

let registry = Ops.default_registry ()
let v4 = Ipaddr.V4.of_string
let v6 = Ipaddr.V6.of_string

(* --- bechamel plumbing ------------------------------------------- *)

let instance = Toolkit.Instance.monotonic_clock

let measure_ns_per_run test =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | Some _ | None -> Float.nan
      in
      (name, ns) :: acc)
    results []

let bench1 name f =
  match measure_ns_per_run (Test.make ~name (Staged.stage f)) with
  | [ (_, ns) ] -> ns
  | l -> (
      match List.assoc_opt name l with Some ns -> ns | None -> Float.nan)

(* --- Table 1 ------------------------------------------------------ *)

let table1 () =
  print_endline "== Table 1: field operations in the DIP prototype ==";
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Left; Tabular.Right ]
      [ "operation"; "notation"; "key" ]
  in
  List.iter
    (fun k ->
      Tabular.add_row t
        [ Opkey.description k; Opkey.name k; string_of_int (Opkey.to_int k) ])
    Opkey.all;
  Tabular.print t;
  print_endline
    "(keys 1-11 as in the paper's Table 1; keys 12-15 are documented\n\
    \ extensions: F_pass from sec 2.4, F_cc and F_hvf motivated in sec 1,\n\
    \ F_tel from the sec 5 opportunities)\n"

(* --- Figure 1 ----------------------------------------------------- *)

let figure1 () =
  print_endline "== Figure 1: the structure of a DIP packet header ==";
  Printf.printf
    {|
  +---------------------------------------------------------------+
  | basic header (%d bytes)                                        |
  |   next header (8b) | FN number (8b) | hop limit (8b)          |
  |   packet parameter (16b):                                     |
  |     [parallel flag (1b) | FN locations length (10b) | 5b rsv] |
  |   reserved (8b)                                               |
  +---------------------------------------------------------------+
  | FN definitions: FN number x %d-byte triples                    |
  |   each: field location (16b) | field length (16b) |           |
  |         tag (1b) + operation key (15b)                        |
  +---------------------------------------------------------------+
  | FN locations (FN_LocLen bytes)                                |
  +---------------------------------------------------------------+
  | payload                                                       |
  +---------------------------------------------------------------+
|}
    Header.basic_size Fn.size;
  let pkt = Realize.ipv4 ~src:(v4 "192.0.2.7") ~dst:(v4 "10.9.0.42") ~payload:"" () in
  print_endline "  example: DIP-32 forwarding header (hex)";
  Format.printf "%a@." Bitbuf.pp pkt

(* --- Table 2 ------------------------------------------------------ *)

let table2 () =
  print_endline "== Table 2: packet header size overhead ==";
  let paper =
    [
      (Realize.P_ipv6_native, 40);
      (Realize.P_ipv4_native, 20);
      (Realize.P_dip128, 50);
      (Realize.P_dip32, 26);
      (Realize.P_ndn, 16);
      (Realize.P_opt, 98);
      (Realize.P_ndn_opt, 108);
    ]
  in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Left ]
      [ "network function"; "paper (B)"; "ours (B)"; "match" ]
  in
  List.iter
    (fun (p, expect) ->
      let got = Realize.header_overhead p in
      Tabular.add_row t
        [
          Realize.protocol_name p;
          string_of_int expect;
          string_of_int got;
          (if got = expect then "exact" else "MISMATCH");
        ])
    paper;
  Tabular.print t;
  (* Beyond the paper: header overhead of the extension realizations. *)
  let ext =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right ]
      [ "extension (not in the paper)"; "ours (B)" ]
  in
  let hdr pkt = Result.get_ok (Packet.header_size pkt) in
  Tabular.add_row ext
    [
      "NetFence (F_cc + DIP-32)";
      string_of_int
        (hdr
           (Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1")
              ~sender:1l ~rate:1e6 ~timestamp:0l ~payload:"" ()));
    ];
  Tabular.add_row ext
    [
      "EPIC 1-hop (F_hvf + DIP-32)";
      string_of_int
        (hdr
           (Realize.epic ~hops:1 ~src_id:1l ~timestamp:0l
              ~hop_keys:[ String.make 16 'k' ]
              ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~payload:"" ()));
    ];
  Tabular.add_row ext
    [
      "telemetry 8-hop (F_tel + DIP-32)";
      string_of_int
        (hdr
           (Realize.ipv4_telemetry ~max_hops:8 ~src:(v4 "192.0.2.1")
              ~dst:(v4 "10.0.0.1") ~payload:"" ()));
    ];
  Tabular.print ext;
  print_newline ()

(* --- Figure 2 ----------------------------------------------------- *)

(* Each benched closure processes one packet per run. State consumed
   by a run (TTL/hop-limit bytes, PIT entries) is restored inside the
   closure; the restores are O(1) stores, uniform across protocols,
   and negligible next to the forwarding work. *)

let fig2_ipv4 () =
  let table = Dip_tables.Fib.V4.create () in
  Dip_ip.Ipv4.add_route table (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv4.add_route table (Ipaddr.Prefix.of_string "10.1.0.0/16") 2;
  fun size ->
    let payload = String.make (size - 20) 'x' in
    let pkt =
      Dip_ip.Ipv4.encode
        { Dip_ip.Ipv4.src = v4 "192.0.2.1"; dst = v4 "10.1.2.3"; ttl = 64;
          protocol = 17; payload_len = String.length payload }
        ~payload
    in
    let ttl_word = Bitbuf.get_uint16 pkt 8 and chk = Bitbuf.get_uint16 pkt 10 in
    fun () ->
      Bitbuf.set_uint16 pkt 8 ttl_word;
      Bitbuf.set_uint16 pkt 10 chk;
      ignore (Sys.opaque_identity (Dip_ip.Ipv4.forward table pkt))

let fig2_ipv6 () =
  let table = Dip_tables.Fib.V6.create () in
  Dip_ip.Ipv6.add_route table (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  fun size ->
    let payload = String.make (size - 40) 'x' in
    let pkt =
      Dip_ip.Ipv6.encode
        { Dip_ip.Ipv6.src = v6 "2001:db8::1"; dst = v6 "2001:db8::42";
          hop_limit = 64; next_header = 17;
          payload_len = String.length payload }
        ~payload
    in
    fun () ->
      Bitbuf.set_uint8 pkt 7 64;
      ignore (Sys.opaque_identity (Dip_ip.Ipv6.forward table pkt))

let dip_env () =
  let env = Env.create ~name:"bench" () in
  Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
  Dip_ip.Ipv6.add_route env.Env.v6_routes (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
  env

let run_engine env pkt =
  Bitbuf.set_uint8 pkt 2 64 (* restore hop limit *);
  ignore (Sys.opaque_identity (Engine.process ~registry env ~now:0.0 ~ingress:0 pkt))

let fig2_dip32 () =
  let env = dip_env () in
  fun size ->
    let pkt =
      Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
        ~payload:(String.make (size - 26) 'x') ()
    in
    fun () -> run_engine env pkt

let fig2_dip128 () =
  let env = dip_env () in
  fun size ->
    let pkt =
      Realize.ipv6 ~src:(v6 "2001:db8::1") ~dst:(v6 "2001:db8::42")
        ~payload:(String.make (size - 50) 'x') ()
    in
    fun () -> run_engine env pkt

let fig2_ndn () =
  let env = Env.create ~name:"bench" () in
  let name = Name.of_string "/hotnets.org/figure2" in
  Dip_tables.Name_fib.insert env.Env.fib name 1;
  let key = Name.hash32 name in
  fun size ->
    let pkt = Realize.ndn_interest ~name ~payload:(String.make (size - 16) 'x') () in
    fun () ->
      Bitbuf.set_uint8 pkt 2 64;
      let v = Engine.process ~registry env ~now:0.0 ~ingress:0 pkt in
      (* Restore the PIT so the next run forwards again. *)
      ignore (Pit.consume env.Env.pit ~key ~now:0.0);
      ignore (Sys.opaque_identity v)

let opt_identity env =
  Env.set_opt_identity env
    ~secret:(Dip_opt.Drkey.secret_of_string "bench-router-key")
    ~hop:1

let fig2_opt () =
  let env = dip_env () in
  opt_identity env;
  fun size ->
    let pkt =
      Realize.opt ~hops:1 ~session_id:7L ~timestamp:1l
        ~dest_key:(String.make 16 'd')
        ~payload:(String.make (size - 98) 'x')
        ()
    in
    fun () -> run_engine env pkt

let fig2_ndn_opt () =
  let env = Env.create ~name:"bench" () in
  opt_identity env;
  let name = Name.of_string "/hotnets.org/figure2" in
  Dip_tables.Name_fib.insert env.Env.fib name 1;
  let key = Name.hash32 name in
  fun size ->
    let pkt =
      Realize.ndn_opt_data ~hops:1 ~session_id:7L ~timestamp:1l
        ~dest_key:(String.make 16 'd') ~name
        ~content:(String.make (size - 108) 'x')
        ()
    in
    fun () ->
      Bitbuf.set_uint8 pkt 2 64;
      ignore (Pit.insert env.Env.pit ~key ~port:9 ~now:0.0 ~lifetime:1e9);
      ignore (Sys.opaque_identity (Engine.process ~registry env ~now:0.0 ~ingress:0 pkt))

let figure2 () =
  print_endline "== Figure 2: packet processing time (ns/packet) ==";
  print_endline "   (software dataplane on a host CPU; compare shapes, not";
  print_endline "    absolute values, with the paper's Tofino -- DESIGN.md 2)";
  let sizes = Dip_netsim.Workload.paper_packet_sizes in
  let series =
    [
      ("IPv4 (native baseline)", fig2_ipv4 ());
      ("IPv6 (native baseline)", fig2_ipv6 ());
      ("DIP-32 (IP)", fig2_dip32 ());
      ("DIP-128 (IP)", fig2_dip128 ());
      ("DIP NDN", fig2_ndn ());
      ("DIP OPT", fig2_opt ());
      ("DIP NDN+OPT", fig2_ndn_opt ());
    ]
  in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      ("protocol \\ packet size"
      :: List.map (fun s -> Printf.sprintf "%d B" s) sizes)
  in
  let results =
    List.map
      (fun (label, mk) ->
        let per_size = List.map (fun size -> bench1 label (mk size)) sizes in
        Tabular.add_row t
          (label :: List.map (fun ns -> Printf.sprintf "%.0f" ns) per_size);
        (label, per_size))
      series
  in
  Tabular.print t;
  (* Shape checks mirroring the paper's 4.2 claims. *)
  let avg label =
    let l = List.assoc label results in
    List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let ipv4 = avg "IPv4 (native baseline)" and dip32 = avg "DIP-32 (IP)" in
  let ipv6 = avg "IPv6 (native baseline)" and dip128 = avg "DIP-128 (IP)" in
  let opt = avg "DIP OPT" and ndn_opt = avg "DIP NDN+OPT" in
  let ndn = avg "DIP NDN" in
  Printf.printf "\nshape checks (paper 4.2):\n";
  Printf.printf "  DIP-32  / IPv4 baseline : %.2fx  (paper: close to baseline)\n"
    (dip32 /. ipv4);
  Printf.printf "  DIP-128 / IPv6 baseline : %.2fx  (paper: close to baseline)\n"
    (dip128 /. ipv6);
  Printf.printf "  OPT     / DIP-32        : %.2fx  (paper: more, MACs are expensive)\n"
    (opt /. dip32);
  Printf.printf "  NDN+OPT / NDN           : %.2fx  (paper: more, MACs are expensive)\n"
    (ndn_opt /. ndn);
  Printf.printf "  OPT slower than IP      : %b\n" (opt > dip32);
  Printf.printf "  NDN+OPT slower than NDN : %b\n\n" (ndn_opt > ndn)

(* --- A1: dispatch ablation ---------------------------------------- *)

let ablation_dispatch () =
  print_endline "== A1: Algorithm-1 interpreter vs 4.1 unrolled dispatch ==";
  let env = dip_env () in
  opt_identity env;
  let cases =
    [
      ( "DIP-32",
        Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
          ~payload:(String.make 100 'x') () );
      ( "DIP OPT",
        Realize.opt ~hops:1 ~session_id:7L ~timestamp:1l
          ~dest_key:(String.make 16 'd') ~payload:(String.make 100 'x') () );
    ]
  in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "packet"; "interpreter (ns)"; "compiled (ns)"; "speedup" ]
  in
  List.iter
    (fun (label, pkt) ->
      let prog =
        match Dip_pisa.Compile.compile ~registry ~template:pkt with
        | Ok p -> p
        | Error e -> failwith e
      in
      let interp = bench1 (label ^ "/interp") (fun () -> run_engine env pkt) in
      let compiled =
        bench1
          (label ^ "/compiled")
          (fun () ->
            Bitbuf.set_uint8 pkt 2 64;
            ignore
              (Sys.opaque_identity
                 (Dip_pisa.Compile.run prog env ~now:0.0 ~ingress:0 pkt)))
      in
      Tabular.add_row t
        [
          label;
          Printf.sprintf "%.0f" interp;
          Printf.sprintf "%.0f" compiled;
          Printf.sprintf "%.2fx" (interp /. compiled);
        ])
    cases;
  Tabular.print t;
  print_endline
    "(compiled = FN triples parsed once, modules pre-resolved, preset slices)\n"

(* --- A2: MAC cipher ablation --------------------------------------- *)

let ablation_mac () =
  print_endline "== A2: 2EM vs AES for F_MAC (the 4.1 resubmission) ==";
  let buf = Bitbuf.create (Dip_opt.Header.size_bytes ~hops:1) in
  Dip_opt.Protocol.source_init buf ~base:0 ~hops:1 ~session_id:7L ~timestamp:1l
    ~dest_key:(String.make 16 'd') ~payload:"bench";
  let key = String.make 16 'k' in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "cipher"; "router update (ns)"; "PISA passes"; "model time (ns)" ]
  in
  List.iter
    (fun (label, alg) ->
      let ns =
        bench1 label (fun () ->
            ignore
              (Sys.opaque_identity
                 (Dip_opt.Protocol.router_update ~alg buf ~base:0 ~hop:1 ~key)))
      in
      let est =
        Dip_pisa.Cost.estimate Dip_pisa.Cost.tofino_like ~alg ~header_bytes:98
          [ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ]
      in
      Tabular.add_row t
        [
          label;
          Printf.sprintf "%.0f" ns;
          string_of_int est.Dip_pisa.Cost.passes;
          Printf.sprintf "%.0f" est.Dip_pisa.Cost.time_ns;
        ])
    [ ("2EM", Dip_opt.Protocol.EM2); ("AES-128", Dip_opt.Protocol.AES) ];
  Tabular.print t;
  print_endline
    "(a 2EM block fits within a pass; each AES block forces resubmissions,\n\
    \ which is why the prototype \"takes 2EM instead of AES\" -- 4.1)\n"

(* --- A3: parallel flag --------------------------------------------- *)

let ablation_parallel () =
  print_endline "== A3: the 2.2 parallel-execution flag (PISA model) ==";
  let keys32 = [ Opkey.F_32_match; Opkey.F_source ] in
  let keys_ndn_opt = [ Opkey.F_pit; Opkey.F_parm; Opkey.F_mac; Opkey.F_mark ] in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "packet"; "sequential (ns)"; "parallel (ns)"; "gain" ]
  in
  List.iter
    (fun (label, header_bytes, keys) ->
      let seq =
        Dip_pisa.Cost.estimate Dip_pisa.Cost.tofino_like ~header_bytes keys
      in
      let par =
        Dip_pisa.Cost.estimate Dip_pisa.Cost.tofino_like ~parallel:true
          ~header_bytes keys
      in
      Tabular.add_row t
        [
          label;
          Printf.sprintf "%.0f" seq.Dip_pisa.Cost.time_ns;
          Printf.sprintf "%.0f" par.Dip_pisa.Cost.time_ns;
          Printf.sprintf "%.2fx"
            (seq.Dip_pisa.Cost.time_ns /. par.Dip_pisa.Cost.time_ns);
        ])
    [ ("DIP-32", 26, keys32); ("DIP NDN+OPT", 108, keys_ndn_opt) ];
  Tabular.print t;
  (* And the engine's dependency analysis on a real packet. *)
  let env = Env.create ~name:"p" () in
  opt_identity env;
  Dip_tables.Name_fib.insert env.Env.fib (Name.of_string "/a") 1;
  let data =
    Realize.ndn_opt_data ~hops:1 ~session_id:7L ~timestamp:1l
      ~dest_key:(String.make 16 'd') ~name:(Name.of_string "/a") ~content:"c" ()
  in
  let view = Result.get_ok (Packet.parse data) in
  let fns = Array.to_list view.Packet.fns in
  let locations =
    Bitbuf.get_field data
      (Dip_bitbuf.Field.v
         ~off_bits:(8 * view.Packet.loc_base)
         ~len_bits:(8 * view.Packet.header.Header.fn_loc_len))
  in
  let par_pkt = Packet.build ~parallel:true ~fns ~locations ~payload:"c" () in
  ignore
    (Pit.insert env.Env.pit
       ~key:(Name.hash32 (Name.of_string "/a"))
       ~port:3 ~now:0.0 ~lifetime:10.0);
  let _, info = Engine.process ~registry env ~now:0.0 ~ingress:0 par_pkt in
  Printf.printf
    "engine dependency analysis on NDN+OPT: %d FNs in the packet, critical \
     path %d levels\n\
     (the F_PIT name field is disjoint from the OPT region, so it runs in \
     parallel)\n\n"
    (info.Engine.ops_run + info.Engine.ops_skipped)
    info.Engine.parallel_depth

(* --- A4: F_pass ----------------------------------------------------- *)

let ablation_fpass () =
  print_endline "== A4: F_pass source-label verification (2.4) ==";
  let key = Dip_crypto.Siphash.default_key in
  let wrong = Dip_crypto.Siphash.key_of_string "attacker-key-16b" in
  let name = Name.of_string "/cache/item" in
  let mk_env enabled =
    let env = Env.create ~cache_capacity:64 ~name:"r" () in
    Dip_tables.Name_fib.insert env.Env.fib name 1;
    if enabled then Env.enable_pass env ~key;
    env
  in
  let genuine = Realize.ndn_interest ~pass:key ~name ~payload:"" () in
  let nk = Name.hash32 name in
  let bench_env label env =
    bench1 label (fun () ->
        Bitbuf.set_uint8 genuine 2 64;
        let v = Engine.process ~registry env ~now:0.0 ~ingress:0 genuine in
        ignore (Pit.consume env.Env.pit ~key:nk ~now:0.0);
        ignore (Sys.opaque_identity v))
  in
  let off = bench_env "pass-off" (mk_env false) in
  let on = bench_env "pass-on" (mk_env true) in
  Printf.printf "forwarding cost, F_pass disabled: %.0f ns\n" off;
  Printf.printf "forwarding cost, F_pass enabled:  %.0f ns (%.2fx)\n" on (on /. off);
  (* Efficacy: a content-poisoning burst. *)
  let env = mk_env true in
  let forged = Realize.ndn_interest ~pass:wrong ~name ~payload:"" () in
  let dropped = ref 0 and passed = ref 0 in
  for _ = 1 to 1000 do
    Bitbuf.set_uint8 forged 2 64;
    (match Engine.process ~registry env ~now:0.0 ~ingress:0 forged with
    | Engine.Dropped "pass-verify-failed", _ -> incr dropped
    | _ -> incr passed);
    ignore (Pit.consume env.Env.pit ~key:nk ~now:0.0)
  done;
  Printf.printf "forged packets dropped: %d/1000 (passed: %d)\n\n" !dropped !passed

(* --- A5: table scaling ---------------------------------------------- *)

let ablation_tables () =
  print_endline "== A5: lookup-structure scaling ==";
  let g = Dip_stdext.Prng.create 31337L in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "entries"; "v4 LPM lookup (ns)"; "name FIB hash lookup (ns)" ]
  in
  List.iter
    (fun n ->
      let trie = Dip_tables.Lpm_trie.create () in
      let fib = Dip_tables.Name_fib.create () in
      for i = 0 to n - 1 do
        let a = Int32.of_int (Dip_stdext.Prng.int g 0x3FFFFFFF) in
        let len = Dip_stdext.Prng.int_in g 8 28 in
        Dip_tables.Lpm_trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len i;
        Dip_tables.Name_fib.insert fib
          (Name.of_components [ "scale"; string_of_int i ])
          i
      done;
      let q = Int32.of_int (Dip_stdext.Prng.int g 0x3FFFFFFF) in
      let h = Name.hash32 (Name.of_components [ "scale"; string_of_int (n / 2) ]) in
      let lpm_ns =
        bench1
          (Printf.sprintf "lpm-%d" n)
          (fun () ->
            ignore
              (Sys.opaque_identity
                 (Dip_tables.Lpm_trie.lookup trie ~bits:(Ipaddr.V4.bit q) ~len:32)))
      in
      let fib_ns =
        bench1
          (Printf.sprintf "fib-%d" n)
          (fun () -> ignore (Sys.opaque_identity (Dip_tables.Name_fib.lookup_hash fib h)))
      in
      Tabular.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.0f" lpm_ns;
          Printf.sprintf "%.0f" fib_ns;
        ])
    [ 100; 1_000; 10_000; 100_000 ];
  Tabular.print t;
  print_endline
    "(LPM cost grows with trie depth; the prototype's hashed-name FIB is O(1))\n"

(* --- A6: NetFence congestion policing (extension, key 13) ----------- *)

let ablation_netfence () =
  print_endline "== A6: F_cc congestion policing (NetFence-style extension) ==";
  let key = Dip_crypto.Prf.key_of_string "bottleneck-key-1" in
  let mk_env ~policer =
    let env = Env.create ~name:"b" () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    if policer then
      Env.set_netfence env (Dip_netfence.Policer.create ~key ());
    env
  in
  let pkt =
    Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender:5l
      ~rate:1e9 ~timestamp:0l ~payload:(String.make 100 'x') ()
  in
  let bench_with label env =
    bench1 label (fun () -> run_engine env pkt)
  in
  let transit = bench_with "transit" (mk_env ~policer:false) in
  let bottleneck = bench_with "bottleneck" (mk_env ~policer:true) in
  Printf.printf "per-packet cost, transit router (no policer): %.0f ns\n" transit;
  Printf.printf "per-packet cost, bottleneck (bucket + feedback MAC): %.0f ns (%.2fx)\n"
    bottleneck (bottleneck /. transit);
  (* Efficacy: attacker flooding at 20x its allowance vs a compliant
     sender, through an attack-mode policer. *)
  let env = mk_env ~policer:false in
  Env.set_netfence env
    (Dip_netfence.Policer.create ~mode:Dip_netfence.Policer.Police
       ~rate_ceiling:100_000.0 ~key ());
  let send ~sender ~rate ~count ~interval =
    let forwarded = ref 0 in
    for i = 1 to count do
      let p =
        Realize.netfence ~src:(v4 "192.0.2.1") ~dst:(v4 "10.0.0.1") ~sender
          ~rate ~timestamp:0l ~payload:(String.make 900 'x') ()
      in
      match
        Engine.process ~registry env ~now:(float_of_int i *. interval)
          ~ingress:0 p
      with
      | Engine.Forwarded _, _ -> incr forwarded
      | _ -> ()
    done;
    !forwarded
  in
  (* Attacker: 1000-byte packets every 0.5 ms = ~2 MB/s against a
     100 kB/s ceiling. Legit: one packet every 10 ms = ~100 kB/s. *)
  let attacker = send ~sender:666l ~rate:1e9 ~count:500 ~interval:5e-4 in
  let legit = send ~sender:7l ~rate:100_000.0 ~count:50 ~interval:1e-2 in
  Printf.printf "attack-mode policer: attacker %d/500 forwarded, compliant %d/50 forwarded\n\n"
    attacker legit

(* --- A7: in-band telemetry (extension, key 14) ----------------------- *)

let ablation_telemetry () =
  print_endline "== A7: F_tel in-band telemetry overhead ==";
  let env = dip_env () in
  Env.set_telemetry_identity env ~node_id:3 ~queue_depth:(fun () -> 12);
  let plain =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let with_tel =
    Realize.ipv4_telemetry ~max_hops:8 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let t_plain = bench1 "dip32" (fun () -> run_engine env plain) in
  let t_tel =
    bench1 "dip32+tel" (fun () ->
        (* Reset the record count so every run appends at slot 0. *)
        let view = Result.get_ok (Packet.parse with_tel) in
        Bitbuf.set_uint8 with_tel view.Packet.loc_base 0;
        run_engine env with_tel)
  in
  Printf.printf "DIP-32:              %.0f ns/packet, %d-byte header\n" t_plain
    (Result.get_ok (Packet.header_size plain));
  Printf.printf "DIP-32 + telemetry:  %.0f ns/packet, %d-byte header (8 hops)\n"
    t_tel
    (Result.get_ok (Packet.header_size with_tel));
  Printf.printf "telemetry cost: %.2fx time, +%d header bytes\n\n"
    (t_tel /. t_plain)
    (Result.get_ok (Packet.header_size with_tel)
    - Result.get_ok (Packet.header_size plain))

(* --- A8: EPIC vs OPT (extension, key 15) ----------------------------- *)

let ablation_epic () =
  print_endline "== A8: F_hvf (EPIC) vs OPT router work ==";
  let g = Dip_stdext.Prng.create 8L in
  let secret = Dip_opt.Drkey.secret_gen g in
  (* OPT router hop. *)
  let opt_env = dip_env () in
  Env.set_opt_identity opt_env ~secret ~hop:1;
  let opt_pkt =
    Realize.opt ~hops:1 ~session_id:7L ~timestamp:1l
      ~dest_key:(String.make 16 'd') ~payload:(String.make 100 'x') ()
  in
  let opt_ns = bench1 "opt" (fun () -> run_engine opt_env opt_pkt) in
  (* EPIC router hop: the packet must be reset to origin form per run
     (the router replaces the HVF), which we do by re-writing the
     carried HVF from a saved copy. *)
  let epic_env = dip_env () in
  Env.set_opt_identity epic_env ~secret ~hop:1;
  let key = Dip_epic.Protocol.derive_key secret ~src:1l ~timestamp:1l in
  let epic_pkt =
    Realize.epic ~hops:1 ~src_id:1l ~timestamp:1l ~hop_keys:[ key ]
      ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let view = Result.get_ok (Packet.parse epic_pkt) in
  let base = view.Packet.loc_base in
  let origin_hvf = Dip_epic.Header.get_hvf epic_pkt ~base 1 in
  let epic_ns =
    bench1 "epic" (fun () ->
        Dip_epic.Header.set_hvf epic_pkt ~base 1 origin_hvf;
        run_engine epic_env epic_pkt)
  in
  Printf.printf "OPT router hop (derive + MAC + mark):   %.0f ns\n" opt_ns;
  Printf.printf "EPIC router hop (derive + check + upd): %.0f ns\n" epic_ns;
  (* The qualitative difference: where a forgery dies. *)
  let forged_epic =
    Realize.epic ~hops:1 ~src_id:1l ~timestamp:1l
      ~hop_keys:[ String.make 16 'z' ] ~src:(v4 "192.0.2.1")
      ~dst:(v4 "10.1.2.3") ~payload:"evil" ()
  in
  (match Engine.process ~registry epic_env ~now:0.0 ~ingress:0 forged_epic with
  | Engine.Dropped "hvf-rejected", _ ->
      print_endline "forged EPIC packet: dropped at the FIRST router (every packet is checked)"
  | _ -> print_endline "unexpected: forged EPIC packet survived");
  let forged_opt =
    Realize.opt ~hops:1 ~session_id:99L ~timestamp:1l
      ~dest_key:(String.make 16 'z') ~payload:"evil" ()
  in
  (match Engine.process ~registry opt_env ~now:0.0 ~ingress:0 forged_opt with
  | Engine.Forwarded _, _ | Engine.Dropped "no-forwarding-decision", _ ->
      print_endline "forged OPT packet:  traverses routers; only the destination's F_ver rejects it\n"
  | Engine.Dropped r, _ -> Printf.printf "forged OPT packet: dropped (%s)\n\n" r
  | _ -> print_endline "unexpected OPT verdict\n")

(* --- program cache: the PR-2 fast path ------------------------------- *)

(* DIP-32 forwarding with the per-env program cache on and off, with
   and without static verification. The cache key covers the basic
   header and FN definitions only, so every DIP-32 packet shares one
   entry regardless of addresses — the steady state of a forwarding
   router. *)

let cache_soak ~packets =
  (* A 2-router chain forwarding an interleaved DIP-32 / DIP-128
     workload, routers running the verified engine handler. Hit and
     miss totals come out of the per-node counters the handler
     publishes. *)
  let sim = Dip_netsim.Sim.create () in
  let mk i =
    let env = Env.create ~name:(Printf.sprintf "r%d" i) () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    Dip_ip.Ipv6.add_route env.Env.v6_routes
      (Ipaddr.Prefix.of_string "2001:db8::/32") 1;
    env
  in
  let envs = [ mk 1; mk 2 ] in
  let verify = Dip_analysis.verifier ~registry () in
  let ids =
    List.map
      (fun env ->
        Dip_netsim.Sim.add_node sim ~name:env.Env.name
          (Engine.handler ~verify ~registry env))
      envs
  in
  let sink_id =
    Dip_netsim.Sim.add_node sim ~name:"sink" (fun _ ~now:_ ~ingress:_ _ ->
        [ Dip_netsim.Sim.Consume ])
  in
  (match ids with
  | [ a; b ] ->
      Dip_netsim.Sim.connect sim (a, 1) (b, 0);
      Dip_netsim.Sim.connect sim (b, 1) (sink_id, 0)
  | _ -> assert false);
  let first = List.hd ids in
  for i = 0 to packets - 1 do
    let pkt =
      if i mod 2 = 0 then
        Realize.ipv4 ~src:(v4 "192.0.2.1")
          ~dst:(v4 (Printf.sprintf "10.1.2.%d" (i mod 250)))
          ~payload:"soak" ()
      else
        Realize.ipv6 ~src:(v6 "2001:db8::1")
          ~dst:(v6 (Printf.sprintf "2001:db8::%x" (i mod 250)))
          ~payload:"soak" ()
    in
    Dip_netsim.Sim.inject sim ~at:(float_of_int i *. 1e-5) ~node:first ~port:0 pkt
  done;
  Dip_netsim.Sim.run sim;
  let total name =
    List.fold_left
      (fun acc env -> acc + Dip_netsim.Stats.Counters.get env.Env.counters name)
      0 envs
  in
  (total "progcache.hit", total "progcache.miss")

let bench_cache ?(smoke = false) () =
  print_endline "== program cache: cached fast path vs cold parse+verify ==";
  let verify = Dip_analysis.verifier ~registry () in
  let mk_env ~cached =
    let env =
      Env.create ~name:"bench"
        ~prog_cache_capacity:(if cached then 512 else 0)
        ()
    in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    env
  in
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let run ?verify env =
    Bitbuf.set_uint8 pkt 2 64;
    ignore
      (Sys.opaque_identity
         (Engine.process ?verify ~registry env ~now:0.0 ~ingress:0 pkt))
  in
  let time label ~cached ~verified =
    let env = mk_env ~cached in
    if verified then bench1 label (fun () -> run ~verify env)
    else bench1 label (fun () -> run env)
  in
  let cold_parse = time "cold/parse" ~cached:false ~verified:false in
  let cached_parse = time "cached/parse" ~cached:true ~verified:false in
  let cold_verify = time "cold/parse+verify" ~cached:false ~verified:true in
  let cached_verify = time "cached/parse+verify" ~cached:true ~verified:true in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "DIP-32 forwarding"; "cold (ns)"; "cached (ns)"; "speedup" ]
  in
  let row label cold cached =
    Tabular.add_row t
      [
        label;
        Printf.sprintf "%.0f" cold;
        Printf.sprintf "%.0f" cached;
        Printf.sprintf "%.2fx" (cold /. cached);
      ]
  in
  row "parse only" cold_parse cached_parse;
  row "parse + static verify" cold_verify cached_verify;
  Tabular.print t;
  let soak_packets = if smoke then 200 else 1000 in
  let hits, misses = cache_soak ~packets:soak_packets in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "soak workload (%d packets, 2 verified routers): %d hits, %d misses \
     (hit rate %.3f)\n"
    soak_packets hits misses hit_rate;
  let oc = open_out "BENCH_PR2.json" in
  Printf.fprintf oc
    {|{
  "bench": "pr2-program-cache",
  "packet": "DIP-32 forwarding, 100-byte payload",
  "cold_parse_ns": %.1f,
  "cached_parse_ns": %.1f,
  "parse_speedup": %.3f,
  "cold_parse_verify_ns": %.1f,
  "cached_parse_verify_ns": %.1f,
  "parse_verify_speedup": %.3f,
  "soak": { "packets": %d, "hits": %d, "misses": %d, "hit_rate": %.4f }
}
|}
    cold_parse cached_parse (cold_parse /. cached_parse) cold_verify
    cached_verify (cold_verify /. cached_verify) soak_packets hits misses
    hit_rate;
  close_out oc;
  print_endline "wrote BENCH_PR2.json";
  if smoke then begin
    if hits = 0 then begin
      prerr_endline "SMOKE FAIL: program cache recorded no hits on the soak workload";
      exit 1
    end;
    if not (cached_verify < cold_verify) then
      (* Timing on shared CI machines is noisy; warn rather than fail. *)
      Printf.eprintf
        "SMOKE WARN: cached parse+verify (%.0f ns) not faster than cold (%.0f ns)\n"
        cached_verify cold_verify;
    print_endline "smoke ok: cache hit rate positive on the soak workload"
  end;
  print_newline ()

(* --- observability: the PR-3 Dip_obs instrumentation ----------------- *)

(* DIP-32 forwarding with the engine span recorder off vs on (default
   sampling), on the same steady-state cached hot path the cache
   bench measures. The budget is <15% overhead: counters are plain
   field stores and only every sample_every-th packet pays the clock
   reads. *)

let bench_obs ?(smoke = false) () =
  print_endline "== observability: Dip_obs instrumentation overhead ==";
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let run ?obs env =
    Bitbuf.set_uint8 pkt 2 64;
    ignore
      (Sys.opaque_identity
         (Engine.process ?obs ~registry env ~now:0.0 ~ingress:0 pkt))
  in
  let attempt () =
    let env_off = dip_env () in
    let off = bench1 "obs-off" (fun () -> run env_off) in
    let env_on = dip_env () in
    let obs_default = Obs.create (Dip_obs.Metrics.create ()) in
    let on = bench1 "obs-on" (fun () -> run ~obs:obs_default env_on) in
    let env_all = dip_env () in
    let obs_all = Obs.create ~sample_every:1 (Dip_obs.Metrics.create ()) in
    let every = bench1 "obs-every" (fun () -> run ~obs:obs_all env_all) in
    (off, on, every, (on -. off) /. off)
  in
  (* Timing on shared machines is noisy and the deltas are a few ns;
     take the best of up to three attempts (stop early once under
     budget). *)
  let budget = 0.15 in
  let best = ref (attempt ()) in
  let tries = ref 1 in
  while
    (let _, _, _, frac = !best in
     frac >= budget)
    && !tries < 3
  do
    incr tries;
    let (_, _, _, frac') as a = attempt () in
    let _, _, _, frac = !best in
    if frac' < frac then best := a
  done;
  let off, on, every, frac = !best in
  Printf.printf "DIP-32 forwarding, no obs:                 %.0f ns/packet\n" off;
  Printf.printf "with obs (sample_every=%d):                %.0f ns/packet (%+.1f%%)\n"
    Obs.default_sample_every on (100.0 *. frac);
  Printf.printf "with obs, every packet span-timed:         %.0f ns/packet (%+.1f%%)\n"
    every
    (100.0 *. (every -. off) /. off);
  (* Deterministic sanity check on what the instruments recorded. *)
  let m = Dip_obs.Metrics.create () in
  let obs = Obs.create ~sample_every:1 m in
  let env = dip_env () in
  for _ = 1 to 10 do
    run ~obs env
  done;
  let counted name =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Dip_obs.Metrics.snapshot m)
    with
    | Some (_, _, Dip_obs.Metrics.Counter_v v) -> v
    | Some (_, _, Dip_obs.Metrics.Histogram_v h) -> h.Dip_obs.Metrics.count
    | _ -> 0
  in
  let packets = counted "engine.packets"
  and runs = counted "engine.op.F_32_match.run"
  and spans = counted "engine.process_ns" in
  Printf.printf
    "sanity (10 instrumented packets): packets=%d F_32_match.run=%d spans=%d\n"
    packets runs spans;
  let oc = open_out "BENCH_PR3.json" in
  Printf.fprintf oc
    {|{
  "bench": "pr3-observability",
  "packet": "DIP-32 forwarding, 100-byte payload",
  "obs_off_ns": %.1f,
  "obs_on_ns": %.1f,
  "overhead_frac": %.4f,
  "obs_every_packet_ns": %.1f,
  "sample_every": %d,
  "budget_frac": %.2f
}
|}
    off on frac every Obs.default_sample_every budget;
  close_out oc;
  print_endline "wrote BENCH_PR3.json";
  if smoke then begin
    if packets <> 10 || runs <> 10 || spans <> 10 then begin
      prerr_endline "SMOKE FAIL: obs counters disagree with the packets processed";
      exit 1
    end;
    if Float.is_nan frac || frac >= budget then begin
      Printf.eprintf
        "SMOKE FAIL: obs overhead %.1f%% exceeds the %.0f%% budget (off %.0f ns, on %.0f ns)\n"
        (100.0 *. frac) (100.0 *. budget) off on;
      exit 1
    end;
    Printf.printf "smoke ok: obs overhead %.1f%% within the %.0f%% budget\n"
      (100.0 *. frac) (100.0 *. budget)
  end;
  print_newline ()

(* --- faults: the PR-4 fault layer + recovery path -------------------- *)

(* Delivery rate and latency of the reliable host pair (Chaos harness:
   sender — 3 routers — receiver) across a sweep of drop rates, with
   retransmission on and off. Everything is seeded, so the numbers are
   machine-independent (simulated time, not wall clock). *)

let bench_faults ?(smoke = false) () =
  print_endline "== faults: reliable delivery under injected loss ==";
  let packets = if smoke then 120 else 400 in
  let no_retx =
    { Host.Reliable.default_config with Host.Reliable.max_retries = 0 }
  in
  let case ~drop ~retx =
    Chaos.run
      {
        Chaos.default with
        packets;
        spec = Dip_netsim.Faults.spec ~drop ();
        reliable = (if retx then Host.Reliable.default_config else no_retx);
      }
  in
  let rates = [ 0.01; 0.05; 0.1; 0.2 ] in
  let results =
    List.map (fun drop -> (drop, case ~drop ~retx:true, case ~drop ~retx:false)) rates
  in
  let t =
    Tabular.create
      ~aligns:
        [ Tabular.Right; Tabular.Right; Tabular.Right; Tabular.Right;
          Tabular.Right; Tabular.Right ]
      [ "loss rate"; "delivered (retx)"; "p99 (retx)"; "delivered (no retx)";
        "p99 (no retx)"; "retx tx" ]
  in
  List.iter
    (fun (drop, r, r0) ->
      Tabular.add_row t
        [
          Printf.sprintf "%.0f%%" (100.0 *. drop);
          Printf.sprintf "%.1f%%" (100.0 *. r.Chaos.delivery_rate);
          Printf.sprintf "%.1f ms" (1e3 *. r.Chaos.latency_p99);
          Printf.sprintf "%.1f%%" (100.0 *. r0.Chaos.delivery_rate);
          Printf.sprintf "%.1f ms" (1e3 *. r0.Chaos.latency_p99);
          string_of_int r.Chaos.transmissions;
        ])
    results;
  Tabular.print t;
  let oc = open_out "BENCH_PR4.json" in
  let case_json drop retx r =
    Printf.sprintf
      "    { \"loss_rate\": %.2f, \"retransmit\": %b, \"sent\": %d, \
       \"delivered\": %d, \"delivery_rate\": %.4f, \"p99_latency_s\": %.6f, \
       \"mean_latency_s\": %.6f, \"transmissions\": %d }"
      drop retx r.Chaos.sent r.Chaos.delivered r.Chaos.delivery_rate
      r.Chaos.latency_p99 r.Chaos.latency_mean r.Chaos.transmissions
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pr4-faults\",\n\
    \  \"topology\": \"sender - 3 DIP routers - receiver\",\n\
    \  \"packets\": %d,\n\
    \  \"seed\": 42,\n\
    \  \"cases\": [\n%s\n  ]\n}\n"
    packets
    (String.concat ",\n"
       (List.concat_map
          (fun (drop, r, r0) ->
            [ case_json drop true r; case_json drop false r0 ])
          results));
  close_out oc;
  print_endline "wrote BENCH_PR4.json";
  if smoke then begin
    (* The §2.4-style degradation regime the tentpole targets: loss +
       corruption + duplication + a link flap, all seeded. The
       reliable pair must still get every payload across, exactly
       once, and the schedule must reproduce from the seed. *)
    let cfg =
      {
        Chaos.default with
        packets = 150;
        spec =
          Dip_netsim.Faults.spec ~drop:0.05 ~corrupt:0.03 ~duplicate:0.03 ();
        flap = Some (0.4, 0.6);
      }
    in
    let r = Chaos.run cfg in
    let r2 = Chaos.run cfg in
    if r.Chaos.events <> r2.Chaos.events then begin
      prerr_endline "SMOKE FAIL: same seed produced different fault schedules";
      exit 1
    end;
    if r.Chaos.delivered <> r.Chaos.sent then begin
      Printf.eprintf
        "SMOKE FAIL: only %d/%d payloads delivered under 5%% loss with \
         retransmission\n"
        r.Chaos.delivered r.Chaos.sent;
      exit 1
    end;
    List.iter
      (fun kind ->
        match List.assoc_opt kind r.Chaos.faults with
        | Some n when n >= 1 -> ()
        | _ ->
            Printf.eprintf "SMOKE FAIL: no %S fault was injected\n" kind;
            exit 1)
      [ "drop"; "corrupt"; "duplicate"; "link-down" ];
    Printf.printf
      "smoke ok: %d/%d delivered (%d duplicates deduped, %d integrity drops, \
       %d faults injected), schedule reproducible\n"
      r.Chaos.delivered r.Chaos.sent r.Chaos.duplicates r.Chaos.rejected
      (List.fold_left (fun a (_, n) -> a + n) 0 r.Chaos.faults)
  end;
  print_newline ()

(* --- mcore: the domain-parallel data plane (PR 5, reworked PR 7) ----- *)

(* Throughput of the batched engine across worker-domain counts, on a
   steady-state DIP-32 forwarding workload spread over many flows
   (each flow lands on one worker via the match-field hash). Wall
   clock, not simulated time: parallel speedup is exactly what this
   measures, so the numbers are machine-dependent by nature.

   Two ratios matter (ISSUE PR 7): the 4-domain speedup over the
   plain sequential fold (target >= 2x, needs >= 4 cores to mean
   anything) and the 1-domain overhead floor (pool >= 0.9x
   sequential — the whole hand-off path, sharding + ring transfer +
   countdown, must cost < 10%). The smoke asserts whichever of the
   two this machine can actually measure. *)

let bench_mcore ?(smoke = false) () =
  print_endline "== mcore: domain-parallel batched data plane ==";
  let nflows = 64 in
  let npackets = if smoke then 4096 else 8192 in
  let batch_size = 256 in
  let pkts =
    Array.init npackets (fun i ->
        Realize.ipv4 ~src:(v4 "192.0.2.1")
          ~dst:(v4 (Printf.sprintf "10.1.%d.%d" (i mod nflows) (i / nflows mod 250)))
          ~payload:(String.make 100 'x') ())
  in
  let items =
    Array.map (fun pkt -> { Dip_mcore.Pool.now = 0.0; ingress = 0; pkt }) pkts
  in
  let batches =
    let n = (npackets + batch_size - 1) / batch_size in
    Array.init n (fun b ->
        Array.sub items (b * batch_size)
          (Stdlib.min batch_size (npackets - (b * batch_size))))
  in
  let reset () = Array.iter (fun p -> Bitbuf.set_uint8 p 2 64) pkts in
  let mk_env _w =
    let env = Env.create ~name:"mcore" () in
    Dip_ip.Ipv4.add_route env.Env.v4_routes (Ipaddr.Prefix.of_string "10.0.0.0/8") 1;
    env
  in
  let snap = Dip_mcore.Snapshot.v ~registry ~mk_env () in
  (* Noise discipline: machines running this smoke (laptops, shared
     CI runners, 1-core containers) jitter far more per 100ms window
     than the 10% the overhead floor asserts. So instead of timing
     one long run per configuration, time many single passes and
     keep the {e fastest} — interference only ever adds time, so the
     minimum is the best estimate of the true cost — and interleave
     the sequential and pool samples so a slow phase of the machine
     hits both sides alike. *)
  let samples = if smoke then 50 else 120 in
  let sample pass =
    reset ();
    let t0 = Unix.gettimeofday () in
    pass ();
    Unix.gettimeofday () -. t0
  in
  let seq_pass =
    let env = mk_env 0 in
    fun () ->
      Array.iter
        (fun pkt ->
          ignore
            (Sys.opaque_identity
               (Engine.process ~registry env ~now:0.0 ~ingress:0 pkt)))
        pkts
  in
  let pool_pass pool () =
    Array.iter
      (fun b ->
        ignore (Sys.opaque_identity (Dip_mcore.Pool.process_batch pool b)))
      batches
  in
  let check_pool pool domains =
    (* Sanity: every packet forwarded. *)
    reset ();
    let verdicts = Dip_mcore.Pool.process_batch pool items in
    let forwarded =
      Array.fold_left
        (fun acc (v, _) -> match v with Engine.Forwarded _ -> acc + 1 | _ -> acc)
        0 verdicts
    in
    if forwarded <> npackets then begin
      Printf.eprintf "BUG: %d/%d packets forwarded at %d domain(s)\n" forwarded
        npackets domains;
      exit 1
    end
  in
  (* Sequential fold and the 1-domain pool, sample-interleaved: their
     ratio is the hand-off overhead floor the smoke asserts. *)
  let seq_pps, base =
    let pool = Dip_mcore.Pool.create ~domains:1 snap in
    let pass1 = pool_pass pool in
    ignore (sample seq_pass) (* warm caches *);
    ignore (sample pass1);
    let seq_min = ref infinity and p1_min = ref infinity in
    for _ = 1 to samples do
      seq_min := Float.min !seq_min (sample seq_pass);
      p1_min := Float.min !p1_min (sample pass1)
    done;
    check_pool pool 1;
    Dip_mcore.Pool.shutdown pool;
    (float_of_int npackets /. !seq_min, float_of_int npackets /. !p1_min)
  in
  let pool_pps domains =
    let pool = Dip_mcore.Pool.create ~domains snap in
    let pass = pool_pass pool in
    ignore (sample pass) (* warm the caches and the worker domains *);
    let best = ref infinity in
    for _ = 1 to samples do
      best := Float.min !best (sample pass)
    done;
    check_pool pool domains;
    Dip_mcore.Pool.shutdown pool;
    float_of_int npackets /. !best
  in
  let recommended = Domain.recommended_domain_count () in
  let domain_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let results =
    List.map
      (fun d -> (d, if d = 1 then base else pool_pps d))
      domain_counts
  in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Right; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "domains"; "pkts/s"; "vs sequential"; "vs 1 domain" ]
  in
  List.iter
    (fun (d, pps) ->
      Tabular.add_row t
        [
          string_of_int d;
          Printf.sprintf "%.0f" pps;
          Printf.sprintf "%.2fx" (pps /. seq_pps);
          Printf.sprintf "%.2fx" (pps /. base);
        ])
    results;
  Tabular.print t;
  let overhead1 = base /. seq_pps in
  Printf.printf
    "sequential Engine.process baseline: %.0f pkts/s (1-domain pool: %.2fx)\n"
    seq_pps overhead1;
  Printf.printf "recommended_domain_count on this machine: %d\n" recommended;
  let speedup4 =
    match List.assoc_opt 4 results with
    | Some p -> p /. seq_pps
    | None -> Float.nan
  in
  let oc = open_out "BENCH_PR7.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pr7-mcore\",\n\
    \  \"workload\": \"DIP-32 forwarding, 100-byte payload, %d flows\",\n\
    \  \"packets\": %d,\n\
    \  \"batch_size\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"sequential_pps\": %.0f,\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"overhead1\": %.3f,\n\
    \  \"speedup4_vs_sequential\": %.3f\n\
     }\n"
    nflows npackets batch_size recommended seq_pps
    (String.concat ",\n"
       (List.map
          (fun (d, pps) ->
            Printf.sprintf
              "    { \"domains\": %d, \"pps\": %.0f, \"vs_sequential\": %.3f \
               }"
              d pps (pps /. seq_pps))
          results))
    overhead1 speedup4;
  close_out oc;
  print_endline "wrote BENCH_PR7.json";
  if smoke then
    (* Never vacuous: every machine can measure the 1-domain hand-off
       overhead even if it cannot measure scaling. *)
    if recommended < 4 then begin
      if overhead1 < 0.9 then begin
        Printf.eprintf
          "SMOKE FAIL: 1-domain pool at %.2fx of sequential (need >= 0.9x; \
           hand-off overhead floor)\n"
          overhead1;
        exit 1
      end;
      Printf.printf
        "smoke ok: 1-domain pool %.2fx of sequential (scaling needs 4 cores, \
         this machine recommends %d domain(s))\n"
        overhead1 recommended
    end
    else if speedup4 < 2.0 then begin
      Printf.eprintf
        "SMOKE FAIL: 4-domain throughput only %.2fx of sequential (need >= \
         2.0x)\n"
        speedup4;
      exit 1
    end
    else
      Printf.printf
        "smoke ok: 4-domain throughput %.2fx of sequential, 1-domain pool \
         %.2fx\n"
        speedup4 overhead1;
  print_newline ()

(* --- flight: the PR-8 flight recorder ------------------------------- *)

(* Recorder overhead on the same cached DIP-32 hot path the obs bench
   measures. Three configurations: uninstrumented, obs at default
   sampling (the PR-3 baseline), and obs + flight ring armed (engine
   spans and program-cache traffic recorded). The 5% budget is the
   flight-specific delta over the obs baseline — a ring store is a few
   plain int writes on sampled packets only, so it must be nearly
   free; the obs cost itself is budgeted by obs-smoke. *)

let bench_flight ?(smoke = false) () =
  print_endline "== flight: Dip_obs.Flight recorder overhead ==";
  let module Flight = Dip_obs.Flight in
  let pkt =
    Realize.ipv4 ~src:(v4 "192.0.2.1") ~dst:(v4 "10.1.2.3")
      ~payload:(String.make 100 'x') ()
  in
  let run ?obs env =
    Bitbuf.set_uint8 pkt 2 64;
    ignore
      (Sys.opaque_identity
         (Engine.process ?obs ~registry env ~now:0.0 ~ingress:0 pkt))
  in
  let attempt () =
    let env_plain = dip_env () in
    let plain = bench1 "flight-uninstrumented" (fun () -> run env_plain) in
    let env_base = dip_env () in
    let obs_base = Obs.create (Dip_obs.Metrics.create ()) in
    let base = bench1 "flight-obs-only" (fun () -> run ~obs:obs_base env_base) in
    let env_fl = dip_env () in
    let ring = Flight.create ~pid:0 ~tid:0 () in
    let obs_fl = Obs.create ~flight:ring (Dip_obs.Metrics.create ()) in
    Progcache.set_flight env_fl.Env.prog_cache (Some ring);
    let fl = bench1 "flight-recording" (fun () -> run ~obs:obs_fl env_fl) in
    (plain, base, fl, (fl -. base) /. base)
  in
  let budget = 0.05 in
  let best = ref (attempt ()) in
  let tries = ref 1 in
  while
    (let _, _, _, frac = !best in
     frac >= budget)
    && !tries < 3
  do
    incr tries;
    let (_, _, _, frac') as a = attempt () in
    let _, _, _, frac = !best in
    if frac' < frac then best := a
  done;
  let plain, base, fl, frac = !best in
  Printf.printf "DIP-32 forwarding, uninstrumented:        %.0f ns/packet\n"
    plain;
  Printf.printf "with obs (sample_every=%d):                %.0f ns/packet\n"
    Obs.default_sample_every base;
  Printf.printf "with obs + flight ring:                   %.0f ns/packet (%+.1f%% over obs)\n"
    fl (100.0 *. frac);
  (* Deterministic sanity: every packet span-timed into a ring, then
     drained — the counts and ordering must be exact. *)
  let ring = Flight.create ~pid:0 ~tid:0 () in
  let obs = Obs.create ~sample_every:1 ~flight:ring (Dip_obs.Metrics.create ()) in
  let env = dip_env () in
  Progcache.set_flight env.Env.prog_cache (Some ring);
  for _ = 1 to 10 do
    run ~obs env
  done;
  let events = Flight.events ring in
  let named name =
    List.length
      (List.filter (fun e -> Flight.id_name e.Flight.ev_id = name) events)
  in
  let spans = named "engine.process" in
  let monotone =
    let ok = ref true in
    let last = ref min_int in
    List.iter
      (fun e ->
        if e.Flight.ev_ts < !last then ok := false;
        last := e.Flight.ev_ts)
      events;
    !ok
  in
  Printf.printf
    "sanity (10 packets, sample_every=1): %d event(s), engine.process=%d, \
     monotone=%b\n"
    (List.length events) spans monotone;
  let oc = open_out "BENCH_PR8.json" in
  Printf.fprintf oc
    {|{
  "bench": "pr8-flight-recorder",
  "packet": "DIP-32 forwarding, 100-byte payload",
  "uninstrumented_ns": %.1f,
  "obs_on_ns": %.1f,
  "flight_on_ns": %.1f,
  "overhead_frac": %.4f,
  "sample_every": %d,
  "budget_frac": %.2f
}
|}
    plain base fl frac Obs.default_sample_every budget;
  close_out oc;
  print_endline "wrote BENCH_PR8.json";
  if smoke then begin
    if spans <> 10 || not monotone then begin
      prerr_endline
        "SMOKE FAIL: flight ring disagrees with the packets processed";
      exit 1
    end;
    if Float.is_nan frac || frac >= budget then begin
      Printf.eprintf
        "SMOKE FAIL: flight overhead %.1f%% exceeds the %.0f%% budget (obs \
         %.0f ns, +flight %.0f ns)\n"
        (100.0 *. frac) (100.0 *. budget) base fl;
      exit 1
    end;
    Printf.printf "smoke ok: flight overhead %.1f%% within the %.0f%% budget\n"
      (100.0 *. frac) (100.0 *. budget)
  end;
  print_newline ()

(* --- custody: disruption tolerance (PR 9) --------------------------- *)

(* Delivery and p99 latency across disconnection lengths, custody
   transfer vs the PR 4 end-to-end baseline. A single outage of D
   seconds covers the whole send window. The e2e retry budget
   (8 retries, backoff 2 from 50 ms ≈ 12.8 s) rides out short
   outages but abandons everything once D exceeds it; custodians hold
   bundles for arbitrary D and replay them on link-up, at the price
   of bounded per-router store occupancy (reported). *)
let bench_custody ?(smoke = false) () =
  print_endline "== custody: delivery across long disconnections ==";
  let packets = if smoke then 60 else 200 in
  let downs = if smoke then [ 30.0 ] else [ 5.0; 15.0; 30.0 ] in
  let store_cfg down =
    { Custody.default_config with retry_until = down +. 60.0 }
  in
  let case ~schedule ~custody ~deadline =
    Chaos.run
      {
        Chaos.default with
        packets;
        schedule;
        custody = (if custody then Some (store_cfg deadline) else None);
      }
  in
  let results =
    List.map
      (fun down ->
        ( down,
          case ~schedule:[ (0.0, down) ] ~custody:true ~deadline:down,
          case ~schedule:[ (0.0, down) ] ~custody:false ~deadline:down ))
      downs
  in
  let t =
    Tabular.create
      ~aligns:
        [ Tabular.Right; Tabular.Right; Tabular.Right; Tabular.Right;
          Tabular.Right; Tabular.Right ]
      [ "outage"; "delivered (custody)"; "p99 (custody)"; "delivered (e2e)";
        "p99 (e2e)"; "store high-water" ]
  in
  List.iter
    (fun (down, rc, re) ->
      Tabular.add_row t
        [
          Printf.sprintf "%.0f s" down;
          Printf.sprintf "%.1f%%" (100.0 *. rc.Chaos.delivery_rate);
          Printf.sprintf "%.2f s" rc.Chaos.latency_p99;
          Printf.sprintf "%.1f%%" (100.0 *. re.Chaos.delivery_rate);
          Printf.sprintf "%.2f s" re.Chaos.latency_p99;
          string_of_int (List.assoc "high-water" rc.Chaos.custody);
        ])
    results;
  Tabular.print t;
  (* The acceptance scenario: a seeded satellite-pass contact plan
     (one 0.1 s contact every 20 s) that leaves most of the workload
     stranded between passes. *)
  let passes =
    Dip_netsim.Workload.satellite_passes ~seed:42L ~period:20.0 ~pass:0.1
      ~horizon:45.0 ()
  in
  let sat_c = case ~schedule:passes ~custody:true ~deadline:45.0 in
  let sat_e = case ~schedule:passes ~custody:false ~deadline:45.0 in
  Printf.printf
    "satellite passes (0.1 s contact / 20 s period): custody %.1f%%, e2e \
     baseline %.1f%%\n"
    (100.0 *. sat_c.Chaos.delivery_rate)
    (100.0 *. sat_e.Chaos.delivery_rate);
  let case_json label custody r =
    Printf.sprintf
      "    { \"case\": %S, \"custody\": %b, \"sent\": %d, \"delivered\": %d, \
       \"delivery_rate\": %.4f, \"p99_latency_s\": %.6f, \"mean_latency_s\": \
       %.6f, \"transmissions\": %d, \"custodied\": %d, \"gave_up\": %d, \
       \"store_take\": %d, \"store_evict\": %d, \"store_high_water\": %d, \
       \"store_held_at_drain\": %d }"
      label custody r.Chaos.sent r.Chaos.delivered r.Chaos.delivery_rate
      r.Chaos.latency_p99 r.Chaos.latency_mean r.Chaos.transmissions
      r.Chaos.custodied r.Chaos.gave_up
      (Option.value ~default:0 (List.assoc_opt "take" r.Chaos.custody))
      (Option.value ~default:0 (List.assoc_opt "evict" r.Chaos.custody))
      (Option.value ~default:0 (List.assoc_opt "high-water" r.Chaos.custody))
      (Option.value ~default:0 (List.assoc_opt "held" r.Chaos.custody))
  in
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pr9-custody\",\n\
    \  \"topology\": \"sender - 3 custodian DIP routers - receiver\",\n\
    \  \"packets\": %d,\n\
    \  \"seed\": 42,\n\
    \  \"store\": { \"capacity\": %d, \"max_bytes\": %d },\n\
    \  \"cases\": [\n%s\n  ]\n}\n"
    packets Custody.default_config.Custody.capacity
    Custody.default_config.Custody.max_bytes
    (String.concat ",\n"
       (List.concat_map
          (fun (down, rc, re) ->
            let label = Printf.sprintf "outage-%.0fs" down in
            [ case_json label true rc; case_json label false re ])
          results
       @ [
           case_json "satellite-passes" true sat_c;
           case_json "satellite-passes" false sat_e;
         ]));
  close_out oc;
  print_endline "wrote BENCH_PR9.json";
  if smoke then begin
    (* Acceptance: on the seeded satellite-pass schedule custody must
       reach >= 99% delivery where the e2e baseline gets < 50%, with
       nothing stranded, bounded store occupancy, and a reproducible
       run. *)
    if sat_e.Chaos.delivery_rate >= 0.5 then begin
      Printf.eprintf
        "SMOKE FAIL: e2e baseline delivered %.1f%% — the schedule is not \
         disruptive enough to prove anything\n"
        (100.0 *. sat_e.Chaos.delivery_rate);
      exit 1
    end;
    if sat_c.Chaos.delivery_rate < 0.99 then begin
      Printf.eprintf "SMOKE FAIL: custody delivered only %d/%d\n"
        sat_c.Chaos.delivered sat_c.Chaos.sent;
      exit 1
    end;
    if List.assoc "held" sat_c.Chaos.custody <> 0 then begin
      prerr_endline "SMOKE FAIL: bundles stranded in custody after drain";
      exit 1
    end;
    let bound = 3 * Custody.default_config.Custody.capacity in
    if List.assoc "high-water" sat_c.Chaos.custody > bound then begin
      prerr_endline "SMOKE FAIL: custody store occupancy exceeded its bound";
      exit 1
    end;
    let again = case ~schedule:passes ~custody:true ~deadline:45.0 in
    if again.Chaos.deliveries <> sat_c.Chaos.deliveries then begin
      prerr_endline "SMOKE FAIL: custody delivery order not reproducible";
      exit 1
    end;
    Printf.printf
      "smoke ok: custody %d/%d vs e2e %d/%d on the satellite-pass schedule, \
       store high-water %d, reproducible\n"
      sat_c.Chaos.delivered sat_c.Chaos.sent sat_e.Chaos.delivered
      sat_e.Chaos.sent
      (List.assoc "high-water" sat_c.Chaos.custody)
  end;
  print_newline ()

(* --- fib: the PR-10 million-route DIR-24-8 engine -------------------- *)

(* Builds a realistic at-scale routing workload — a BGP-shaped prefix
   table whose next hops are what one site of a B4-style WAN would
   install, and a Zipf/Pareto traffic stream over it — then measures
   the flat-array engine against the binary-trie oracle: lookups/s,
   inserts/s, route-update cost, bytes/route. The smoke run (50k
   routes) checks FIB ≡ trie on the full stream, on uniform miss
   probes, and across a withdrawal wave, and asserts a conservative
   speedup floor; the full run reports the million-route numbers. *)
let bench_fib ?(smoke = false) () =
  let module Fib = Dip_tables.Fib in
  let module Trie = Dip_tables.Lpm_trie in
  let module Workload = Dip_netsim.Workload in
  let module Topology = Dip_netsim.Topology in
  let module Prng = Dip_stdext.Prng in
  let v4_count = if smoke then 50_000 else 1_000_000 in
  let v6_count = if smoke then 10_000 else 100_000 in
  let flows = if smoke then 20_000 else 1_000_000 in
  let packets = if smoke then 200_000 else 2_000_000 in
  Printf.printf
    "== fib: DIR-24-8 at %d v4 routes (%d flows, %d-packet stream) ==\n"
    v4_count flows packets;
  (* Next hops are what site 0 of a 12-site B4-style WAN installs:
     the egress port toward each prefix's (Zipf-popular) owner
     site. *)
  let sites = 12 in
  let topo = Topology.wan ~seed:7L ~sites ~chords:6 in
  let egress =
    Array.init sites (fun dst ->
        if dst = 0 then 0
        else
          match Topology.next_hop topo ~src:0 ~dst with
          | Some h -> Topology.port_of topo 0 h
          | None -> 0)
  in
  let owner_g = Prng.create 11L in
  let port_of_prefix () = egress.(Prng.zipf owner_g ~n:sites ~s:1.1 - 1) in
  let prefixes = Workload.v4_prefixes ~seed:42L ~count:v4_count in
  let ports = Array.map (fun _ -> port_of_prefix ()) prefixes in
  let fib = Fib.V4.create () in
  let t0 = Unix.gettimeofday () in
  Array.iteri (fun i (a, len) -> Fib.V4.insert fib a ~len ports.(i)) prefixes;
  let build_s = Unix.gettimeofday () -. t0 in
  let trie = Trie.create () in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i (a, len) -> Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len ports.(i))
    prefixes;
  let trie_build_s = Unix.gettimeofday () -. t0 in
  let traffic =
    Workload.v4_traffic ~seed:43L ~prefixes ~flows ~packets ~skew:1.05
  in
  (* Correctness first: the engines must agree on longest match, not
     just on the port. *)
  let agree dst =
    match (Fib.V4.lookup fib dst, Trie.lookup_ipv4 trie dst) with
    | None, None -> true
    | Some (l1, p1), Some (l2, p2) -> l1 = l2 && p1 = p2
    | _ -> false
  in
  let check_sample label n =
    for i = 0 to n - 1 do
      let dst = traffic.(i) in
      if not (agree dst) then begin
        Printf.eprintf "BUG: FIB and trie disagree on %s (%s)\n"
          (Ipaddr.V4.to_string dst) label;
        exit 1
      end
    done
  in
  let equiv_sample = if smoke then packets else 100_000 in
  check_sample "hit stream" equiv_sample;
  let probe_g = Prng.create 17L in
  let probes = if smoke then 20_000 else 50_000 in
  for _ = 1 to probes do
    let dst =
      Int32.of_int (Int64.to_int (Prng.next64 probe_g) land 0xFFFFFFFF)
    in
    if not (agree dst) then begin
      Printf.eprintf "BUG: FIB and trie disagree on probe %s\n"
        (Ipaddr.V4.to_string dst);
      exit 1
    end
  done;
  (* Withdrawal wave: pull a seeded 2% from both tables, re-check
     (exercises slot re-covering and spill-block compaction), then
     reinstall. *)
  let wave_g = Prng.create 23L in
  let wave = Array.init (v4_count / 50) (fun _ -> Prng.int wave_g v4_count) in
  Array.iter
    (fun i ->
      let a, len = prefixes.(i) in
      ignore (Fib.V4.remove fib a ~len);
      ignore (Trie.remove trie ~bits:(Ipaddr.V4.bit a) ~len))
    wave;
  check_sample "after withdrawal wave" (min equiv_sample 50_000);
  Array.iter
    (fun i ->
      let a, len = prefixes.(i) in
      Fib.V4.insert fib a ~len ports.(i);
      Trie.insert trie ~bits:(Ipaddr.V4.bit a) ~len ports.(i))
    wave;
  check_sample "after reinstall" (min equiv_sample 50_000);
  (* Lookup throughput: min-of-samples passes over the stream. *)
  let time_pass pass =
    ignore (Sys.opaque_identity (pass ()));
    let samples = if smoke then 3 else 5 in
    let best = ref infinity in
    for _ = 1 to samples do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (pass ()));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let fib_pass () =
    let acc = ref 0 in
    Array.iter (fun dst -> acc := !acc + Fib.V4.lookup_id fib dst) traffic;
    !acc
  in
  let trie_pass () =
    let acc = ref 0 in
    Array.iter
      (fun dst ->
        match Trie.lookup_ipv4 trie dst with
        | Some (_, p) -> acc := !acc + p
        | None -> ())
      traffic;
    !acc
  in
  let fib_lps = float_of_int packets /. time_pass fib_pass in
  let trie_lps = float_of_int packets /. time_pass trie_pass in
  let speedup = fib_lps /. trie_lps in
  (* Route-update cost on the live table: withdraw then reinstall a
     seeded slice, counted as individual updates. *)
  let upd_g = Prng.create 19L in
  let n_upd = if smoke then 2_000 else 20_000 in
  let upd_idx = Array.init n_upd (fun _ -> Prng.int upd_g v4_count) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun i ->
      let a, len = prefixes.(i) in
      ignore (Fib.V4.remove fib a ~len))
    upd_idx;
  Array.iter
    (fun i ->
      let a, len = prefixes.(i) in
      Fib.V4.insert fib a ~len ports.(i))
    upd_idx;
  let updates_per_s = float_of_int (2 * n_upd) /. (Unix.gettimeofday () -. t0) in
  check_sample "after update churn" (min equiv_sample 50_000);
  let st = Fib.V4.stats fib in
  (* End-to-end native forwarding: the full IPv4 datapath (parse,
     checksum verify, FIB, TTL rewrite) against the same table. *)
  let npkts = 1024 in
  let pkts =
    Array.init npkts (fun i ->
        Dip_ip.Ipv4.encode
          {
            Dip_ip.Ipv4.src = v4 "192.0.2.1";
            dst = traffic.(i);
            ttl = 64;
            protocol = 17;
            payload_len = 0;
          }
          ~payload:"")
  in
  let saved =
    Array.map (fun p -> (Bitbuf.get_uint16 p 8, Bitbuf.get_uint16 p 10)) pkts
  in
  let fwd_reps = if smoke then 50 else 200 in
  let fwd_pass () =
    let acc = ref 0 in
    Array.iteri
      (fun i p ->
        let tw, ck = saved.(i) in
        Bitbuf.set_uint16 p 8 tw;
        Bitbuf.set_uint16 p 10 ck;
        match Dip_ip.Ipv4.forward fib p with
        | Dip_ip.Ipv4.Forward port -> acc := !acc + port
        | _ -> ())
      pkts;
    !acc
  in
  let forward_pps =
    ignore (Sys.opaque_identity (fwd_pass ()));
    let t0 = Unix.gettimeofday () in
    for _ = 1 to fwd_reps do
      ignore (Sys.opaque_identity (fwd_pass ()))
    done;
    float_of_int (fwd_reps * npkts) /. (Unix.gettimeofday () -. t0)
  in
  (* IPv6: the compressed multibit trie at 100k routes vs the binary
     trie on its generic closure-per-bit path (what the engine used
     before this PR). *)
  let p6 = Workload.v6_prefixes ~seed:44L ~count:v6_count in
  let ports6 = Array.map (fun _ -> port_of_prefix ()) p6 in
  let fib6 = Fib.V6.create () in
  let t0 = Unix.gettimeofday () in
  Array.iteri (fun i (a, len) -> Fib.V6.insert fib6 a ~len ports6.(i)) p6;
  let build6_s = Unix.gettimeofday () -. t0 in
  let trie6 = Trie.create () in
  Array.iteri
    (fun i (a, len) -> Trie.insert trie6 ~bits:(Ipaddr.V6.bit a) ~len ports6.(i))
    p6;
  let mask64 n =
    if n <= 0 then 0L
    else if n >= 64 then -1L
    else Int64.shift_left (-1L) (64 - n)
  in
  let t6_g = Prng.create 29L in
  let n6pkts = if smoke then 50_000 else 500_000 in
  let traffic6 =
    Array.init n6pkts (fun _ ->
        let (hi, lo), len = p6.(Prng.zipf t6_g ~n:v6_count ~s:1.05 - 1) in
        let hi =
          if len >= 64 then hi
          else Int64.logor hi (Int64.logand (Prng.next64 t6_g) (Int64.lognot (mask64 len)))
        in
        let lo =
          if len >= 128 then lo
          else if len <= 64 then Prng.next64 t6_g
          else
            Int64.logor lo
              (Int64.logand (Prng.next64 t6_g) (Int64.lognot (mask64 (len - 64))))
        in
        (hi, lo))
  in
  let equiv6 = if smoke then n6pkts else 50_000 in
  for i = 0 to equiv6 - 1 do
    let dst = traffic6.(i) in
    let a = Fib.V6.lookup fib6 dst in
    let b = Trie.lookup trie6 ~bits:(Ipaddr.V6.bit dst) ~len:128 in
    let same =
      match (a, b) with
      | None, None -> true
      | Some (l1, p1), Some (l2, p2) -> l1 = l2 && p1 = p2
      | _ -> false
    in
    if not same then begin
      Printf.eprintf "BUG: v6 FIB and trie disagree on %s\n"
        (Ipaddr.V6.to_string dst);
      exit 1
    end
  done;
  let fib6_pass () =
    let acc = ref 0 in
    Array.iter
      (fun (hi, lo) -> acc := !acc + Fib.V6.lookup_id fib6 hi lo)
      traffic6;
    !acc
  in
  let trie6_pass () =
    let acc = ref 0 in
    Array.iter
      (fun dst ->
        match Trie.lookup trie6 ~bits:(Ipaddr.V6.bit dst) ~len:128 with
        | Some (_, p) -> acc := !acc + p
        | None -> ())
      traffic6;
    !acc
  in
  let fib6_lps = float_of_int n6pkts /. time_pass fib6_pass in
  let trie6_lps = float_of_int n6pkts /. time_pass trie6_pass in
  let speedup6 = fib6_lps /. trie6_lps in
  let st6 = Fib.V6.stats fib6 in
  let t =
    Tabular.create
      ~aligns:[ Tabular.Left; Tabular.Right; Tabular.Right; Tabular.Right ]
      [ "table"; "FIB"; "binary trie"; "ratio" ]
  in
  Tabular.add_row t
    [
      Printf.sprintf "v4 lookups/s (%d routes)" v4_count;
      Printf.sprintf "%.2fM" (fib_lps /. 1e6);
      Printf.sprintf "%.2fM" (trie_lps /. 1e6);
      Printf.sprintf "%.2fx" speedup;
    ];
  Tabular.add_row t
    [
      "v4 build (s)";
      Printf.sprintf "%.2f" build_s;
      Printf.sprintf "%.2f" trie_build_s;
      Printf.sprintf "%.2fx" (trie_build_s /. build_s);
    ];
  Tabular.add_row t
    [
      Printf.sprintf "v6 lookups/s (%d routes)" v6_count;
      Printf.sprintf "%.2fM" (fib6_lps /. 1e6);
      Printf.sprintf "%.2fM" (trie6_lps /. 1e6);
      Printf.sprintf "%.2fx" speedup6;
    ];
  Tabular.print t;
  Printf.printf
    "v4: %.0f inserts/s, %.0f updates/s, %.1f B/route data plane (%.1f \
     B/route total), %d chunks, %d spill blocks, %d next hops\n"
    (float_of_int v4_count /. build_s)
    updates_per_s
    (float_of_int st.Fib.V4.lookup_bytes /. float_of_int st.Fib.V4.routes)
    (float_of_int st.Fib.V4.total_bytes /. float_of_int st.Fib.V4.routes)
    st.Fib.V4.chunks st.Fib.V4.spill_blocks st.Fib.V4.next_hops;
  Printf.printf
    "v6: %.0f inserts/s, %.1f B/route total, %d nodes (%d dense)\n"
    (float_of_int v6_count /. build6_s)
    (float_of_int st6.Fib.V6.total_bytes /. float_of_int st6.Fib.V6.routes)
    st6.Fib.V6.nodes st6.Fib.V6.dense_nodes;
  Printf.printf "native IPv4 forward (parse+checksum+FIB+TTL): %.2fM pkts/s\n"
    (forward_pps /. 1e6);
  let oc = open_out "BENCH_PR10.json" in
  Printf.fprintf oc
    {|{
  "bench": "pr10-fib",
  "workload": { "sites": %d, "flows": %d, "packets": %d,
                "equiv_checked": %d, "miss_probes": %d },
  "v4_routes": %d,
  "v4_lookups_per_s": %.0f,
  "trie_lookups_per_s": %.0f,
  "v4_speedup_vs_trie": %.3f,
  "v4_inserts_per_s": %.0f,
  "v4_updates_per_s": %.0f,
  "v4_lookup_bytes_per_route": %.1f,
  "v4_bytes_per_route": %.1f,
  "v4_chunks": %d,
  "v4_spill_blocks": %d,
  "v4_next_hops": %d,
  "forward_pps": %.0f,
  "v6_routes": %d,
  "v6_lookups_per_s": %.0f,
  "v6_trie_lookups_per_s": %.0f,
  "v6_speedup_vs_trie": %.3f,
  "v6_bytes_per_route": %.1f,
  "v6_nodes": %d,
  "v6_dense_nodes": %d
}
|}
    sites flows packets equiv_sample probes v4_count fib_lps trie_lps speedup
    (float_of_int v4_count /. build_s)
    updates_per_s
    (float_of_int st.Fib.V4.lookup_bytes /. float_of_int st.Fib.V4.routes)
    (float_of_int st.Fib.V4.total_bytes /. float_of_int st.Fib.V4.routes)
    st.Fib.V4.chunks st.Fib.V4.spill_blocks st.Fib.V4.next_hops forward_pps
    v6_count fib6_lps trie6_lps speedup6
    (float_of_int st6.Fib.V6.total_bytes /. float_of_int st6.Fib.V6.routes)
    st6.Fib.V6.nodes st6.Fib.V6.dense_nodes;
  close_out oc;
  print_endline "wrote BENCH_PR10.json";
  if smoke then begin
    (* Equivalence was already hard-checked above (any disagreement
       exits 1). The ratio floor is conservative: the full bench
       targets >= 5x at 1M routes; at 50k the trie is still mostly
       cache-resident, so require 2x. *)
    if speedup < 2.0 then begin
      Printf.eprintf
        "SMOKE FAIL: v4 FIB only %.2fx the binary trie (floor 2.0x)\n" speedup;
      exit 1
    end;
    if speedup6 < 1.5 then begin
      Printf.eprintf
        "SMOKE FAIL: v6 FIB only %.2fx the binary trie (floor 1.5x)\n" speedup6;
      exit 1
    end;
    Printf.printf
      "smoke ok: FIB ≡ trie on %d hits + %d probes (incl. withdrawal wave), \
       v4 %.1fx / v6 %.1fx the binary trie\n"
      equiv_sample probes speedup speedup6
  end
  else if speedup < 5.0 then
    Printf.eprintf
      "WARN: v4 speedup %.2fx below the 5x million-route target\n" speedup;
  print_newline ()

(* --- driver --------------------------------------------------------- *)

let targets =
  [
    ("table1", table1);
    ("figure1", figure1);
    ("table2", table2);
    ("figure2", figure2);
    ("ablation-dispatch", ablation_dispatch);
    ("ablation-mac", ablation_mac);
    ("ablation-parallel", ablation_parallel);
    ("ablation-fpass", ablation_fpass);
    ("ablation-tables", ablation_tables);
    ("ablation-netfence", ablation_netfence);
    ("ablation-telemetry", ablation_telemetry);
    ("ablation-epic", ablation_epic);
    ("cache", fun () -> bench_cache ());
    ("obs", fun () -> bench_obs ());
    ("faults", fun () -> bench_faults ());
    ("mcore", fun () -> bench_mcore ());
    ("flight", fun () -> bench_flight ());
    ("custody", fun () -> bench_custody ());
    ("fib", fun () -> bench_fib ());
  ]

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "all" ->
      List.iter
        (fun (_, f) ->
          f ();
          flush stdout)
        targets
  | "cache-smoke" -> bench_cache ~smoke:true ()
  | "obs-smoke" -> bench_obs ~smoke:true ()
  | "faults-smoke" -> bench_faults ~smoke:true ()
  | "mcore-smoke" -> bench_mcore ~smoke:true ()
  | "flight-smoke" -> bench_flight ~smoke:true ()
  | "custody-smoke" -> bench_custody ~smoke:true ()
  | "fib-smoke" -> bench_fib ~smoke:true ()
  | name -> (
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf
            "unknown target %S; available: all cache-smoke obs-smoke \
             faults-smoke mcore-smoke flight-smoke custody-smoke fib-smoke %s\n"
            name
            (String.concat " " (List.map fst targets));
          exit 1)
