#!/usr/bin/env bash
# Bench-regression gate.
#
# The CI bench-smoke job re-runs each smoke from the workspace root,
# overwriting the committed BENCH_PR*.json files with fresh numbers;
# this script then compares fresh vs the baselines committed at HEAD
# (recovered with `git show`, since the working-tree copies are
# already overwritten).
#
# Two classes of check:
#   - hard-fail: machine-independent RATIOS (cache speedup, the
#     1-domain hand-off floor, FIB-vs-trie speedup). A >20% drop
#     against the committed baseline fails the job.
#   - warn-only: absolute THROUGHPUT numbers (pps, lookups/s), which
#     swing wildly across shared CI runners; a drop prints a warning
#     for the log but never fails.
#
# The FIB checks use absolute floors instead of baseline ratios: the
# committed BENCH_PR10.json is the full million-route run, while CI
# produces the 50k-route smoke, and the speedup grows with table
# size, so cross-scale ratio comparison would be meaningless.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

baseline() { # file
  git show "HEAD:$1" 2>/dev/null || true
}

# ratio_guard FILE JQ_EXPR MIN_FRACTION LABEL
#   hard-fails when fresh < MIN_FRACTION * baseline.
ratio_guard() {
  local file=$1 expr=$2 frac=$3 label=$4
  local base new
  base=$(baseline "$file" | jq -r "$expr // empty" 2>/dev/null)
  [ -f "$file" ] || { echo "SKIP  $label: no fresh $file"; return; }
  new=$(jq -r "$expr // empty" "$file")
  if [ -z "$base" ] || [ -z "$new" ]; then
    echo "SKIP  $label: metric missing (base='$base' new='$new')"
    return
  fi
  if awk -v n="$new" -v b="$base" -v f="$frac" 'BEGIN { exit !(n < b * f) }'; then
    echo "FAIL  $label: $new vs baseline $base (floor ${frac}x)"
    fail=1
  else
    echo "ok    $label: $new vs baseline $base"
  fi
}

# floor_guard FILE JQ_EXPR FLOOR LABEL
#   hard-fails when fresh < FLOOR (absolute).
floor_guard() {
  local file=$1 expr=$2 floor=$3 label=$4
  local new
  [ -f "$file" ] || { echo "SKIP  $label: no fresh $file"; return; }
  new=$(jq -r "$expr // empty" "$file")
  if [ -z "$new" ]; then
    echo "SKIP  $label: metric missing"
    return
  fi
  if awk -v n="$new" -v f="$floor" 'BEGIN { exit !(n < f) }'; then
    echo "FAIL  $label: $new below floor $floor"
    fail=1
  else
    echo "ok    $label: $new (floor $floor)"
  fi
}

# warn_guard FILE JQ_EXPR MIN_FRACTION LABEL
#   warn-only variant of ratio_guard for noisy throughput metrics.
warn_guard() {
  local file=$1 expr=$2 frac=$3 label=$4
  local base new
  base=$(baseline "$file" | jq -r "$expr // empty" 2>/dev/null)
  [ -f "$file" ] || return 0
  new=$(jq -r "$expr // empty" "$file")
  [ -n "$base" ] && [ -n "$new" ] || return 0
  if awk -v n="$new" -v b="$base" -v f="$frac" 'BEGIN { exit !(n < b * f) }'; then
    echo "WARN  $label: $new vs baseline $base (noisy metric, not failing)"
  else
    echo "ok    $label: $new vs baseline $base"
  fi
}

echo "== bench-regression gate (baselines from git HEAD) =="

# PR2 program cache: the cached/cold speedup is a ratio of two runs
# on the same machine, so it transfers across runners.
ratio_guard BENCH_PR2.json '.parse_verify_speedup' 0.8 "cache parse+verify speedup"
warn_guard  BENCH_PR2.json '.parse_speedup'        0.8 "cache parse-only speedup"
warn_guard  BENCH_PR2.json '.soak.hit_rate'        0.9 "cache soak hit rate"

# PR7 mcore: the 1-domain pool must stay near the sequential fold —
# the hand-off overhead floor. Throughput itself is warn-only.
ratio_guard BENCH_PR7.json '.scaling[] | select(.domains == 1) | .vs_sequential' \
  0.9 "mcore 1-domain hand-off floor"
warn_guard  BENCH_PR7.json '.sequential_pps' 0.8 "mcore sequential throughput"

# PR8 flight recorder: overhead fraction must stay inside its budget.
floor_guard BENCH_PR8.json '.budget_frac - .overhead_frac' 0 "flight overhead within budget"

# PR10 FIB: absolute floors at smoke scale (50k routes); equivalence
# itself is enforced inside the smoke (any FIB/trie disagreement
# exits non-zero before a JSON is written).
floor_guard BENCH_PR10.json '.v4_speedup_vs_trie' 2.0 "fib v4 speedup vs trie"
floor_guard BENCH_PR10.json '.v6_speedup_vs_trie' 1.5 "fib v6 speedup vs trie"
warn_guard  BENCH_PR10.json '.v4_lookups_per_s'   0.5 "fib v4 lookup throughput"

if [ "$fail" -ne 0 ]; then
  echo "bench-regression gate: FAILED"
  exit 1
fi
echo "bench-regression gate: ok"
