module M = Dip_obs.Metrics
module F = Dip_obs.Flight

let default_sample_every = 16

(* Flight-recorder event types (registered once, process-wide). Both
   spans ride the sampled path — begin_packet already decides which
   packets pay for clock reads, so arming a flight ring adds no
   unsampled per-packet work. *)
let ev_process = F.register ~kind:F.Span "engine.process"
let ev_op = F.register ~kind:F.Span "engine.op"

type t = {
  m : M.t;
  (* Dense per-opkey handle arrays, indexed by Opkey.to_int. Slot 0 is
     unused (keys start at 1) but keeping it avoids an offset on the
     hot path. *)
  op_run : M.counter array;
  op_skip : M.counter array;
  op_error : M.counter array;
  op_nanos : M.counter array;
  verdicts : M.counter array; (* 6 classes, see class_index *)
  packets : M.counter;
  latency : M.histogram;
  cache_hit : M.gauge;
  cache_miss : M.gauge;
  cache_evict : M.gauge;
  sample_every : int;
  mutable tick : int;
  mutable flight : F.ring option;
  (* The verdict class of the current run, captured by [verdict] so
     the flight span recorded in [process_ns] can carry it (the
     engine always reports the verdict before the span). *)
  mutable last_class : int;
}

let verdict_names =
  [| "forwarded"; "delivered"; "responded"; "quiet"; "dropped"; "unsupported" |]

let class_index = function
  | `Forwarded -> 0
  | `Delivered -> 1
  | `Responded -> 2
  | `Quiet -> 3
  | `Dropped -> 4
  | `Unsupported -> 5

let create ?(prefix = "engine") ?(sample_every = default_sample_every) ?flight
    m =
  if sample_every < 1 then invalid_arg "Obs.create: sample_every must be >= 1";
  let n = Opkey.max_key + 1 in
  let per_op suffix help =
    let reg k =
      M.counter
        ~help:(help ^ Opkey.description k)
        m
        (Printf.sprintf "%s.op.%s.%s" prefix (Opkey.name k) suffix)
    in
    (* Slot 0 is never read (keys start at 1); fill it with the first
       real handle rather than registering a spurious metric. *)
    let a = Array.make n (reg (List.hd Opkey.all)) in
    List.iter (fun k -> a.(Opkey.to_int k) <- reg k) Opkey.all;
    a
  in
  {
    m;
    op_run = per_op "run" "executions of ";
    op_skip = per_op "skip" "tag/deployment skips of ";
    op_error = per_op "error" "aborts raised by ";
    op_nanos = per_op "ns" "sampled execution nanos of ";
    verdicts =
      Array.map
        (fun v -> M.counter m (prefix ^ ".verdict." ^ v))
        verdict_names;
    packets = M.counter ~help:"engine runs observed" m (prefix ^ ".packets");
    latency =
      M.histogram ~help:"sampled whole-run latency (ns)" m
        (prefix ^ ".process_ns");
    cache_hit = M.gauge m (prefix ^ ".progcache.hit");
    cache_miss = M.gauge m (prefix ^ ".progcache.miss");
    cache_evict = M.gauge m (prefix ^ ".progcache.evict");
    sample_every;
    tick = 0;
    flight;
    last_class = 0;
  }

let metrics t = t.m
let set_flight t r = t.flight <- r
let flight t = t.flight

let publish_cache t pc =
  M.Gauge.set t.cache_hit (Progcache.hits pc);
  M.Gauge.set t.cache_miss (Progcache.misses pc);
  M.Gauge.set t.cache_evict (Progcache.evictions pc)

let begin_packet t =
  M.Counter.incr t.packets;
  let tk = t.tick + 1 in
  if tk >= t.sample_every then begin
    t.tick <- 0;
    true
  end
  else begin
    t.tick <- tk;
    false
  end

let op_run t k = M.Counter.incr t.op_run.(Opkey.to_int k)
let op_skip t k = M.Counter.incr t.op_skip.(Opkey.to_int k)
let op_error t k = M.Counter.incr t.op_error.(Opkey.to_int k)
let op_ns t k ns =
  M.Counter.incr ~by:ns t.op_nanos.(Opkey.to_int k);
  match t.flight with
  | None -> ()
  | Some r -> F.record r ev_op ns (Opkey.to_int k) 0

let verdict t v =
  let c = class_index v in
  M.Counter.incr t.verdicts.(c);
  t.last_class <- c

let process_ns t ns =
  M.Histogram.observe t.latency (float_of_int ns);
  match t.flight with
  | None -> ()
  | Some r -> F.record r ev_process ns t.last_class 0
