(** Per-node environment: the state the FN operation modules operate
    against.

    A DIP node (router or host) owns the classic dataplane state —
    IP route tables, the NDN FIB/PIT/content-store, the XIA
    forwarding table — plus the DIP-specific state: its OPT local
    secret and hop position, its {i F_pass} source-label key, and the
    security-guard configuration of §2.4. The operation modules in
    {!Ops} read and update exactly this record, which is what makes
    the "common network function core shared by these L3 protocols"
    concrete: every realized protocol runs against the same tables. *)

type port = Dip_netsim.Sim.port

(** Per-packet scratch shared between the FNs of one packet (F_parm
    deposits the derived OPT key, F_MAC/F_mark consume it). Owned by
    the environment so the engine reuses one record per node instead
    of allocating per packet; {!Dip_core.Engine} resets it before
    each run.

    [emit] is the auxiliary-transmission channel: an operation that
    must put an {e extra} packet on the wire without deciding the
    current packet's fate (F_cust's hop-by-hop custody ACK) pushes
    [(egress_port, packet)] here and returns [Continue];
    {!Dip_core.Engine.actions_of_verdict} drains it into leading
    [Forward] actions. *)
type scratch = {
  mutable opt_key : Dip_opt.Drkey.session_key option;
  mutable emit : (Dip_netsim.Sim.port * Dip_bitbuf.Bitbuf.t) list;
}

type t = {
  name : string;
  (* IP state (F_32_match / F_128_match): the at-scale LPM engines —
     DIR-24-8 flat arrays for v4, a compressed multibit trie for v6
     (see {!Dip_tables.Fib}). Tables are lazily sized, so idle Envs
     stay cheap. *)
  v4_routes : port Dip_tables.Fib.V4.t;
  v6_routes : port Dip_tables.Fib.V6.t;
  mutable local_v4 : Dip_tables.Ipaddr.V4.t option;
  mutable local_v6 : Dip_tables.Ipaddr.V6.t option;
  (* NDN state (F_FIB / F_PIT); the prototype forwards on 32-bit
     hashed content names (§4.1), so the PIT and cache are keyed by
     the hash. *)
  fib : port Dip_tables.Name_fib.t;
  pit : int32 Dip_tables.Pit.t;
  cache : (int32, string) Dip_tables.Lru.t option;
  interest_lifetime : float;
  (* OPT state (F_parm / F_MAC / F_mark): the router's long-term
     secret and which OPV slot it fills on this path. *)
  mutable opt_secret : Dip_opt.Drkey.secret option;
  mutable opt_hop : int;
  opt_alg : Dip_opt.Protocol.alg;
  (* Host-side OPT verification state (F_ver): session id →
     (per-hop session keys, destination key). *)
  opt_sessions : (int64, Dip_opt.Drkey.session_key list * Dip_opt.Drkey.session_key) Hashtbl.t;
  (* XIA state (F_DAG / F_intent). *)
  xia : Dip_xia.Router.t;
  (* F_pass (§2.4): AS-wide source-label key; verification can be
     enabled on the fly when an attack is detected. *)
  mutable pass_key : Dip_crypto.Siphash.key option;
  mutable pass_enabled : bool;
  (* NetFence-style congestion policing (F_cc, key 13). *)
  mutable netfence : Dip_netfence.Policer.t option;
  (* In-band telemetry (F_tel, key 14): this node's id and a hook
     reporting the current queue depth. *)
  mutable node_id : int;
  mutable queue_depth : unit -> int;
  (* §2.4 security guard: hard limits on per-packet work/state. *)
  guard : Guard.t;
  counters : Dip_netsim.Stats.Counters.t;
  (* Hot-path state: the reused per-packet scratch and the
     decoded-FN-program cache. *)
  scratch : scratch;
  prog_cache : Progcache.t;
  (* Custody transfer (F_cust, key 16): the bounded per-router bundle
     store, keyed by bundle id. [None] (default) means this node
     never takes custody — F_cust then ignores the FN per §2.4. *)
  mutable custody :
    (int32, Dip_bitbuf.Bitbuf.t) Dip_tables.Custody_store.t option;
}

val create :
  ?cache_capacity:int ->
  ?pit_capacity:int ->
  ?interest_lifetime:float ->
  ?opt_alg:Dip_opt.Protocol.alg ->
  ?guard:Guard.t ->
  ?prog_cache_capacity:int ->
  name:string ->
  unit ->
  t
(** Fresh empty environment. [cache_capacity = 0] (default) disables
    the content store, matching the paper's prototype.
    [prog_cache_capacity] (default 512) bounds the decoded-FN-program
    cache; [0] disables it so every packet is cold-parsed. *)

val set_opt_identity : t -> secret:Dip_opt.Drkey.secret -> hop:int -> unit
(** Give a router its OPT role: local secret and 1-based OPV slot. *)

val register_opt_session :
  t ->
  session_id:int64 ->
  session_keys:Dip_opt.Drkey.session_key list ->
  dest_key:Dip_opt.Drkey.session_key ->
  unit
(** Host-side: record the keys learned during OPT key negotiation so
    {i F_ver} can validate incoming packets. *)

val enable_pass : t -> key:Dip_crypto.Siphash.key -> unit
(** Switch {i F_pass} verification on ("can be enabled on the fly
    upon detecting content poisoning attacks", §2.4). *)

val disable_pass : t -> unit

val set_netfence : t -> Dip_netfence.Policer.t -> unit
(** Install a congestion policer (makes this node a NetFence
    bottleneck router). *)

val set_telemetry_identity : t -> node_id:int -> queue_depth:(unit -> int) -> unit
(** Configure what {i F_tel} records at this node. *)

val cache_find : t -> int32 -> string option
val cache_insert : t -> int32 -> string -> unit
(** Hashed-name content store access (no-ops when the cache is
    disabled). *)

val publish_cache_stats : t -> unit
(** Copy the program-cache hit/miss/evict totals into
    {!field-counters} as ["progcache.hit"] / ["progcache.miss"] /
    ["progcache.evict"], the per-node simulator stats. The engine's
    simulator handlers do this after every packet; call it manually
    when driving {!Engine.process} directly. *)
