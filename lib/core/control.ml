module Bitbuf = Dip_bitbuf.Bitbuf

type command =
  | Enable_op of Opkey.t
  | Disable_op of Opkey.t
  | Enable_pass of string
  | Disable_pass
  | Policer_mode_mark
  | Policer_mode_police

let equal_command a b = a = b

let pp_command fmt = function
  | Enable_op k -> Format.fprintf fmt "enable %s" (Opkey.name k)
  | Disable_op k -> Format.fprintf fmt "disable %s" (Opkey.name k)
  | Enable_pass _ -> Format.pp_print_string fmt "enable F_pass (with key)"
  | Disable_pass -> Format.pp_print_string fmt "disable F_pass"
  | Policer_mode_mark -> Format.pp_print_string fmt "policer: mark mode"
  | Policer_mode_police -> Format.pp_print_string fmt "policer: police mode"

let next_header_value = 0xFC

let is_control buf =
  match Header.decode buf with
  | Ok h -> h.Header.next_header = next_header_value
  | Error _ -> false

let command_bytes = function
  | Enable_op k -> Printf.sprintf "\x01%c" (Char.chr (Opkey.to_int k))
  | Disable_op k -> Printf.sprintf "\x02%c" (Char.chr (Opkey.to_int k))
  | Enable_pass key ->
      if String.length key <> 16 then
        invalid_arg "Control: pass key must be 16 bytes";
      "\x03" ^ key
  | Disable_pass -> "\x04"
  | Policer_mode_mark -> "\x05"
  | Policer_mode_police -> "\x06"

let command_of_bytes s =
  if String.length s < 1 then Error "empty command"
  else
    match s.[0] with
    | '\x01' | '\x02' ->
        if String.length s <> 2 then Error "bad op command length"
        else (
          match Opkey.of_int (Char.code s.[1]) with
          | None -> Error "unknown operation key"
          | Some k ->
              Ok (if s.[0] = '\x01' then Enable_op k else Disable_op k))
    | '\x03' ->
        if String.length s <> 17 then Error "bad pass-key length"
        else Ok (Enable_pass (String.sub s 1 16))
    | '\x04' -> if s = "\x04" then Ok Disable_pass else Error "trailing bytes"
    | '\x05' -> if s = "\x05" then Ok Policer_mode_mark else Error "trailing bytes"
    | '\x06' -> if s = "\x06" then Ok Policer_mode_police else Error "trailing bytes"
    | _ -> Error "unknown command tag"

let mac ~key ~seq body =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 seq;
  Dip_crypto.Prf.derive key ~label:"dip-control" (Bytes.to_string b ^ body)

let encode ~key ~seq cmd =
  let body = command_bytes cmd in
  let b = Buffer.create 32 in
  Buffer.add_int64_be b seq;
  Buffer.add_uint16_be b (String.length body);
  Buffer.add_string b body;
  Buffer.add_string b (mac ~key ~seq body);
  Packet.build ~next_header:next_header_value ~fns:[] ~locations:""
    ~payload:(Buffer.contents b) ()

type state = { mutable last : int64 }

let initial_state () = { last = Int64.min_int }
let last_seq s = s.last

let ct_equal a b =
  String.length a = String.length b
  && begin
       let d = ref 0 in
       String.iteri (fun i c -> d := !d lor (Char.code c lxor Char.code b.[i])) a;
       !d = 0
     end

let decode ~key buf =
  match Header.decode buf with
  | Error e -> Error e
  | Ok h ->
      if h.Header.next_header <> next_header_value then Error "not a control packet"
      else
        let s = Bitbuf.to_string buf in
        let off = Header.payload_offset h in
        if String.length s < off + 10 then Error "truncated control payload"
        else
          let seq = String.get_int64_be s off in
          let len = String.get_uint16_be s (off + 8) in
          if String.length s < off + 10 + len + 16 then Error "truncated command"
          else
            let body = String.sub s (off + 10) len in
            let tag = String.sub s (off + 10 + len) 16 in
            if not (ct_equal tag (mac ~key ~seq body)) then
              Error "control MAC verification failed"
            else
              match command_of_bytes body with
              | Error e -> Error e
              | Ok cmd -> Ok (seq, cmd)

let execute ~env ~registry ~master = function
  | Enable_op k as cmd -> (
      match Registry.find master k with
      | Some impl ->
          Registry.install registry k impl;
          (* Enabling (or upgrading) an operation changes verify
             verdicts for every cached program mentioning it. *)
          ignore (Progcache.invalidate_key env.Env.prog_cache k : int);
          Ok cmd
      | None -> Error ("no module image for " ^ Opkey.name k))
  | Disable_op k as cmd ->
      Registry.uninstall registry k;
      ignore (Progcache.invalidate_key env.Env.prog_cache k : int);
      Ok cmd
  | Enable_pass key as cmd ->
      Env.enable_pass env ~key:(Dip_crypto.Siphash.key_of_string key);
      Ok cmd
  | Disable_pass as cmd ->
      Env.disable_pass env;
      Ok cmd
  | Policer_mode_mark as cmd -> (
      match env.Env.netfence with
      | Some p ->
          Dip_netfence.Policer.set_mode p Dip_netfence.Policer.Mark;
          Ok cmd
      | None -> Error "no policer installed")
  | Policer_mode_police as cmd -> (
      match env.Env.netfence with
      | Some p ->
          Dip_netfence.Policer.set_mode p Dip_netfence.Policer.Police;
          Ok cmd
      | None -> Error "no policer installed")

let apply ~key ~state ~env ~registry ~master buf =
  match decode ~key buf with
  | Error e -> Error e
  | Ok (seq, cmd) ->
      if seq <= state.last then Error "replayed or stale command"
      else begin
        state.last <- seq;
        execute ~env ~registry ~master cmd
      end

let handler ~key ~env ~registry ~master inner =
  let state = initial_state () in
  fun sim ~now ~ingress packet ->
    if is_control packet then
      match apply ~key ~state ~env ~registry ~master packet with
      | Ok _ ->
          Dip_netsim.Stats.Counters.incr env.Env.counters "control.applied";
          [ Dip_netsim.Sim.Consume ]
      | Error reason ->
          Dip_netsim.Stats.Counters.incr env.Env.counters "control.rejected";
          [ Dip_netsim.Sim.Drop ("control: " ^ reason) ]
    else inner sim ~now ~ingress packet
