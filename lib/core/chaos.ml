module Sim = Dip_netsim.Sim
module Faults = Dip_netsim.Faults
module Stats = Dip_netsim.Stats
module Ipaddr = Dip_tables.Ipaddr
module Reliable = Host.Reliable

type config = {
  routers : int;
  packets : int;
  interval : float;
  payload_size : int;
  seed : int64;
  spec : Faults.spec;
  flap : (float * float) option;
  schedule : (float * float) list;
  crash : (float * float) option;
  reliable : Reliable.config;
  custody : Custody.config option;
}

let default =
  {
    routers = 3;
    packets = 200;
    interval = 0.01;
    payload_size = 32;
    seed = 42L;
    spec = Faults.spec ();
    flap = None;
    schedule = [];
    crash = None;
    reliable = Reliable.default_config;
    custody = None;
  }

type report = {
  sent : int;
  delivered : int;
  duplicates : int;
  rejected : int;
  transmissions : int;
  acked : int;
  custodied : int;
  gave_up : int;
  in_flight : int;
  delivery_rate : float;
  latency_mean : float;
  latency_p50 : float;
  latency_p99 : float;
  faults : (string * int) list;
  events : Faults.event list;
  counters : (string * int) list;
  custody : (string * int) list;
  deliveries : (int32 * float) list;
}

(* Sender and receiver sit in distinct prefixes so every router can
   route data (10/8, toward the receiver) and ACKs (192.168/16, back
   toward the sender) with two static entries. *)
let sender_addr = Ipaddr.V4.of_string "192.168.0.1"
let receiver_addr = Ipaddr.V4.of_string "10.0.0.1"

let payload_for cfg i =
  let s = Printf.sprintf "chaos-%06d-" i in
  let n = max 1 cfg.payload_size in
  if String.length s >= n then String.sub s 0 n
  else s ^ String.make (n - String.length s) 'x'

let run ?metrics ?flight cfg =
  if cfg.routers < 1 then invalid_arg "Chaos.run: need at least one router";
  if cfg.packets < 0 then invalid_arg "Chaos.run: negative packet count";
  if cfg.interval <= 0.0 then invalid_arg "Chaos.run: non-positive interval";
  let sim = Sim.create () in
  (match metrics with Some m -> Sim.attach_metrics sim m | None -> ());
  Sim.set_flight sim flight;
  (* Everything runs on the simulator's domain, so one ring carries
     engine, progcache, window and fault events alike; sample_every:1
     because a chaos run is short and post-mortems want every span. *)
  let obs =
    match flight with
    | None -> None
    | Some r ->
        let reg =
          match metrics with Some m -> m | None -> Dip_obs.Metrics.create ()
        in
        Some (Obs.create ~sample_every:1 ~flight:r reg)
  in
  let registry = Ops.default_registry () in
  (* With custody enabled every router becomes a custodian (store +
     replay path out of port 1, the data direction); [cust_routers]
     keeps the handles for link-up hooks and the aggregate report. *)
  let cust_routers = Array.make cfg.routers None in
  let routers =
    Array.init cfg.routers (fun i ->
        let name = Printf.sprintf "r%d" (i + 1) in
        let env = Env.create ~name () in
        Progcache.set_flight env.Env.prog_cache flight;
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "10.0.0.0/8")
          1;
        Dip_ip.Ipv4.add_route env.Env.v4_routes
          (Ipaddr.Prefix.of_string "192.168.0.0/16")
          0;
        match cfg.custody with
        | Some ccfg ->
            let r =
              Custody.add_router ?obs ?metrics ?flight ~config:ccfg sim
                ~registry ~env ~name ~out_port:1 ()
            in
            cust_routers.(i) <- Some r;
            Custody.node r
        | None -> Sim.add_node sim ~name (Engine.handler ?obs ~registry env))
  in
  let sender =
    Reliable.add_sender ~config:cfg.reliable
      ~custody:(Option.is_some cfg.custody) sim ~name:"sender"
      ~seed:(Int64.add cfg.seed 1L) ~src:sender_addr ~dst:receiver_addr
      ~out_port:0
  in
  let recv, recv_node = Reliable.add_receiver sim ~name:"receiver" in
  let link a b = Sim.connect sim ~latency:1e-3 a b in
  link (Reliable.sender_node sender, 0) (routers.(0), 0);
  for i = 0 to cfg.routers - 2 do
    link (routers.(i), 1) (routers.(i + 1), 0)
  done;
  link (routers.(cfg.routers - 1), 1) (recv_node, 0);
  (* The fault layer draws from [seed] itself; the sender's timer
     jitter uses seed+1 (above), so the two streams are independent
     but both reproducible. *)
  let faults = Faults.attach ~seed:cfg.seed sim in
  Faults.all_links faults cfg.spec;
  let mid = routers.(cfg.routers / 2) in
  let windows =
    (match cfg.flap with Some w -> [ w ] | None -> []) @ cfg.schedule
  in
  List.iter
    (fun (a, b) -> Faults.link_down faults (mid, 1) ~from_:a ~until:b)
    windows;
  (match cfg.crash with
  | Some (a, b) -> Faults.crash_node faults mid ~at:a ~until:b
  | None -> ());
  (* Every custodian replays its held bundles the moment its data
     egress comes back up (the DTN contact event); the periodic sweep
     in Custody covers lost custody ACKs. *)
  Array.iter
    (function
      | Some r ->
          Faults.on_link_up faults
            (Custody.node r, 1)
            (fun _now -> Custody.replay r)
      | None -> ())
    cust_routers;
  for i = 0 to cfg.packets - 1 do
    Reliable.send sender
      ~at:(float_of_int i *. cfg.interval)
      ~payload:(payload_for cfg i)
  done;
  Sim.run sim;
  let ss = Reliable.sender_stats sender in
  let lat = Stats.Series.create () in
  List.iter
    (fun (seq, t) ->
      Stats.Series.add lat
        (t -. (float_of_int (Int32.to_int seq) *. cfg.interval)))
    (Reliable.deliveries recv);
  let pct p =
    if Stats.Series.count lat = 0 then 0.0 else Stats.Series.percentile lat p
  in
  let delivered = Reliable.delivered recv in
  let custody =
    match List.filter_map Fun.id (Array.to_list cust_routers) with
    | [] -> []
    | rs ->
        let keys = List.map fst (Custody.stats (List.hd rs)) in
        List.map
          (fun k ->
            ( k,
              List.fold_left
                (fun acc r -> acc + List.assoc k (Custody.stats r))
                0 rs ))
          keys
  in
  {
    sent = ss.Reliable.sent;
    delivered;
    duplicates = Reliable.duplicates recv;
    rejected = Reliable.rejected recv;
    transmissions = ss.Reliable.transmissions;
    acked = ss.Reliable.acked;
    custodied = ss.Reliable.custodied;
    gave_up = ss.Reliable.gave_up;
    in_flight = ss.Reliable.in_flight;
    delivery_rate =
      (if ss.Reliable.sent = 0 then 1.0
       else float_of_int delivered /. float_of_int ss.Reliable.sent);
    latency_mean = Stats.Series.mean lat;
    latency_p50 = pct 50.0;
    latency_p99 = pct 99.0;
    faults = Faults.counts faults;
    events = Faults.events faults;
    counters = Stats.Counters.to_list (Sim.counters sim);
    custody;
    deliveries = Reliable.deliveries recv;
  }
