(** The Field Operation — the paper's core primitive (§2.1).

    "Each FN consists of two elements: a target field and an
    operation to be applied on the corresponding target field."
    On the wire an FN is a fixed triple — field location, field
    length, operation key (§2.2) — 6 bytes in this implementation:

    {v field_loc(16 bits) | field_len(16 bits) | tag(1) op_key(15) v}

    Locations and lengths are in {e bits}, relative to the start of
    the packet's FN-locations region; that is what lets the paper
    write triples like (loc: 288, len: 128, key: 8). "The highest bit
    of the operation key field is a tag bit to indicate whether the
    operation should be performed by the router or the host" (§2.2). *)

(** Who executes the operation. Routers skip host-tagged FNs
    (Algorithm 1 line 5) and vice versa. *)
type tag = Router | Host

type t = { field : Dip_bitbuf.Field.t; key : Opkey.t; tag : tag }

val v : ?tag:tag -> loc:int -> len:int -> Opkey.t -> t
(** [v ~loc ~len key] is the triple (loc, len, key), in bits, with
    [tag] defaulting to [Router]. Raises [Invalid_argument] when the
    location or length does not fit its 16-bit wire field. *)

val size : int
(** Wire size of one FN triple: 6 bytes. *)

val encode : t -> Dip_bitbuf.Bitbuf.t -> pos:int -> unit
(** Write the 6-byte triple at byte offset [pos]. *)

val decode : Dip_bitbuf.Bitbuf.t -> pos:int -> (t, string) result
(** Parse a triple; [Error] on an unknown operation key, a
    zero-length field, or a buffer too short for 6 bytes at [pos]
    (including negative [pos]). Never raises. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Paper notation: [(loc: 0, len: 32, key: 4)]. *)
