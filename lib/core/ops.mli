(** The operation modules of Table 1 (plus {i F_pass}), implemented
    against {!Env} state.

    Each function is a {!Registry.impl}; {!default_registry} is a
    node with every module pre-written on its dataplane (the §4.1
    prototype configuration). Heterogeneous ASes (§2.4) install
    subsets via {!Registry.restrict}. *)

val f_32_match : Registry.impl
(** Key 1: 32-bit destination match against the v4 LPM table; local
    address → delivery. *)

val f_128_match : Registry.impl
(** Key 2: 128-bit destination match against the v6 LPM table. *)

val f_source : Registry.impl
(** Key 3: the source-address field. Routers take no action; the
    field merely names where the source lives (32 or 128 bits). *)

val f_fib : Registry.impl
(** Key 4: content-name FIB match for interest packets — records the
    receiving port in the PIT, then forwards on the FIB hit (§3,
    NDN). With a content store configured, a cache hit answers
    directly (§4.1 footnote 2). *)

val f_pit : Registry.impl
(** Key 5: PIT match for data packets — forward to the recorded
    request ports, or discard on a miss (§3, NDN). *)

val f_parm : Registry.impl
(** Key 6: derive the dynamic OPT key from the session id in the
    target field with the router's local secret (§3, OPT). *)

val f_mac : Registry.impl
(** Key 7: MAC over the target span, deposited in this router's OPV
    slot. Requires {i F_parm} to have run first. *)

val f_mark : Registry.impl
(** Key 8: fold the router's key into the PVF (the mark update). *)

val f_ver : Registry.impl
(** Key 9: host-side verification of source and path over the whole
    OPT span; delivers on success. *)

val f_dag : Registry.impl
(** Key 10: parse the XIA DAG in the target field and forward by
    fallback, updating the address pointer in place. *)

val f_intent : Registry.impl
(** Key 11: handle the intent — deliver when the pointer has reached
    an intent this node owns. *)

val f_pass : Registry.impl
(** Key 12 (§2.4): verify the source label over the FN-locations
    region; drops forged packets when enabled, free when disabled. *)

val f_cc : Registry.impl
(** Key 13 (extension): NetFence-style congestion policing — enforce
    the per-sender token bucket at bottleneck routers, mark or drop
    over-rate packets, and MAC-stamp the feedback. *)

val f_tel : Registry.impl
(** Key 14 (extension): append this node's telemetry record to the
    packet's telemetry region (best-effort, never blocks). *)

val f_hvf : Registry.impl
(** Key 15 (extension): EPIC-style hop validation — check this hop's
    HVF against the key derived from (source, timestamp), dropping
    the packet on mismatch, and replace it with its verified form. *)

val f_cust : Registry.impl
(** Key 16 (extension): DTN custody transfer (see {!Custody}). On a
    custodian (an {!Env.t} with a custody store): store a copy of a
    custody-requested packet, set the in-custody bit, push a
    hop-local custody ACK upstream via [scratch.emit], and keep
    forwarding; release the stored copy when the matching custody
    ACK arrives. Without a store the FN is a no-op — ignorable per
    §2.4. *)

val compute_pass_label :
  Dip_crypto.Siphash.key ->
  locations:string ->
  label_field:Dip_bitbuf.Field.t ->
  int32
(** What a legitimate source writes into the label field: a keyed
    hash of the locations region with the label field zeroed. *)

val default_registry : unit -> Registry.t
(** All operation modules installed. *)

val fn_location_base : Packet.view -> Fn.t -> span_off_bits:int -> (int, string) result
(** Resolve the byte offset (within the whole packet) of a protocol
    region from an FN whose target starts [span_off_bits] into that
    region — e.g. {i F_mark}'s target starts 288 bits into the OPT
    region. Exposed for the engine tests. *)
