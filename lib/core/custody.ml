module Sim = Dip_netsim.Sim
module Stats = Dip_netsim.Stats
module Bitbuf = Dip_bitbuf.Bitbuf
module Custody_store = Dip_tables.Custody_store

(* Custody transfer (F_cust, key 16) — DTN semantics as an ignorable
   FN (§2.4).

   Wire layout: a 5-byte custody region carried in the locations,
   placed by convention right after the Host.Reliable layout (so the
   end-to-end CRC, which covers locations[0..12) + payload, never
   sees it — custodians may flip bits in flight without breaking
   integrity):

     byte 0      tag: bit0 custody-requested (set by the source)
                      bit1 in-custody       (set by each custodian)
                      bit2 custody-ACK      (marks the hop-local ACK)
     byte 1..5   bundle id (big-endian; Reliable uses its sequence
                 number)

   The hop-by-hop custody ACK is its own single-FN packet (next
   header 0xFB): F_cust over the same 5-byte region with bit2 set.
   It travels exactly one custodial hop — the upstream custodian's
   F_cust releases its stored copy and ends processing [Silent]; a
   router without custody state consumes it silently too. *)

let region_bytes = 5
let region_bits = 40

let flag_request = 0x01
let flag_in_custody = 0x02
let flag_ack = 0x04

let ack_next_header = 0xFB

(* Virtual ingress for retransmissions out of the custody store. The
   stored bundle already ran the full FN program at this node once
   (route chosen, custody taken, hop limit charged), so replayed
   copies bypass the engine and go straight out the configured data
   egress — the DTN "forward from custody" path. Must not be wired. *)
let replay_port = 98

let fn_at ~loc = Fn.v ~loc ~len:region_bits Opkey.F_cust

let set_region b ~off ~flags ~bundle =
  Bytes.set_uint8 b off flags;
  Bytes.set_int32_be b (off + 1) bundle

let read_flags buf ~base = Bitbuf.get_uint8 buf base
let read_bundle buf ~base = Bitbuf.get_uint32 buf (base + 1)

let build_ack ~bundle =
  let loc = Bytes.create region_bytes in
  set_region loc ~off:0 ~flags:flag_ack ~bundle;
  Packet.build ~next_header:ack_next_header
    ~fns:[ fn_at ~loc:0 ]
    ~locations:(Bytes.to_string loc) ~payload:"" ()

type config = {
  capacity : int;  (** max bundles held per router *)
  max_bytes : int;  (** max stored bytes per router *)
  retry : float;  (** seconds between replay sweeps; 0 disables *)
  retry_until : float;  (** stop re-arming the sweep past this time *)
}

let default_config =
  { capacity = 1024; max_bytes = 1 lsl 20; retry = 0.5;
    retry_until = Float.infinity }

(* Flight instants: a0 = node id, a1 = store depth after the event. *)
let ev_take = Dip_obs.Flight.register "custody.take"
let ev_release = Dip_obs.Flight.register "custody.release"
let ev_evict = Dip_obs.Flight.register "custody.evict"
let ev_reject = Dip_obs.Flight.register "custody.reject"
let ev_replay = Dip_obs.Flight.register "custody.replay"

let counter_name = function
  | Custody_store.Take -> "custody.take"
  | Custody_store.Release -> "custody.release"
  | Custody_store.Evict -> "custody.evict"
  | Custody_store.Reject -> "custody.reject"

let event_id = function
  | Custody_store.Take -> ev_take
  | Custody_store.Release -> ev_release
  | Custody_store.Evict -> ev_evict
  | Custody_store.Reject -> ev_reject

let make_store cfg =
  if cfg.retry < 0.0 then invalid_arg "Custody: negative retry interval";
  Custody_store.create ~capacity:cfg.capacity ~max_bytes:cfg.max_bytes
    ~size:Bitbuf.length ()

(* Mirror store transitions into the env counters (so chaos/bench
   reports see custody.{take,release,evict,reject} next to the dip.*
   counters), an optional depth gauge, and optional Flight instants. *)
let observe ?gauge ?flight ~env ~store ~node ev =
  Stats.Counters.incr env.Env.counters (counter_name ev);
  (match gauge with
  | Some g -> Dip_obs.Metrics.Gauge.set g (Custody_store.size store)
  | None -> ());
  match flight with
  | Some r ->
      Dip_obs.Flight.record r (event_id ev) node (Custody_store.size store) 0
  | None -> ()

let enable ?(config = default_config) env =
  let store = make_store config in
  env.Env.custody <- Some store;
  Custody_store.set_observer store
    (observe ?gauge:None ?flight:None ~env ~store ~node:0);
  store

type router = {
  sim : Sim.t;
  env : Env.t;
  store : (int32, Bitbuf.t) Custody_store.t;
  cfg : config;
  out_port : Sim.port;
  mutable node : Sim.node_id;
  mutable armed : bool;
  flight : Dip_obs.Flight.ring option;
}

let node t = t.node
let env t = t.env
let store t = t.store

(* Put every held bundle back on the wire (link-up, or the periodic
   safety sweep covering lost custody ACKs). Injection goes through
   [replay_port]; the node handler turns each arrival into a direct
   [Forward] out [out_port]. *)
let rec replay t =
  let n =
    Custody_store.fold
      (fun _bundle pkt n ->
        Sim.inject t.sim ~at:(Sim.now t.sim) ~node:t.node ~port:replay_port
          (Bitbuf.copy pkt);
        n + 1)
      t.store 0
  in
  if n > 0 then begin
    Stats.Counters.incr ~by:n (Sim.counters t.sim) "custody.replay";
    (match t.flight with
    | Some r -> Dip_obs.Flight.record r ev_replay t.node n 0
    | None -> ())
  end;
  maybe_arm t

and maybe_arm t =
  let now = Sim.now t.sim in
  if
    t.cfg.retry > 0.0 && (not t.armed)
    && Custody_store.size t.store > 0
    && now < t.cfg.retry_until
  then begin
    t.armed <- true;
    Sim.schedule t.sim ~at:(now +. t.cfg.retry) (fun _sim ->
        t.armed <- false;
        if
          Custody_store.size t.store > 0
          && Sim.now t.sim < t.cfg.retry_until
        then replay t)
  end

let add_router ?obs ?metrics ?flight ?(config = default_config) sim ~registry
    ~env ~name ~out_port () =
  let store = make_store config in
  env.Env.custody <- Some store;
  let t =
    { sim; env; store; cfg = config; out_port; node = -1; armed = false;
      flight }
  in
  t.node <-
    Sim.add_node sim ~name (fun sim ~now ~ingress packet ->
        if ingress = replay_port then [ Sim.Forward (t.out_port, packet) ]
        else begin
          let actions =
            Engine.handler ?obs ~registry env sim ~now ~ingress packet
          in
          maybe_arm t;
          actions
        end);
  let gauge =
    match metrics with
    | Some m ->
        Some
          (Dip_obs.Metrics.gauge m
             (Printf.sprintf "custody.%s.depth" name)
             ~help:"bundles currently held in this router's custody store")
    | None -> None
  in
  Custody_store.set_observer store
    (observe ?gauge ?flight ~env ~store ~node:t.node);
  t

let stats t =
  let c = Custody_store.counters t.store in
  [
    ("take", c.Custody_store.takes);
    ("release", c.Custody_store.releases);
    ("evict", c.Custody_store.evicts);
    ("reject", c.Custody_store.rejects);
    ("held", Custody_store.size t.store);
    ("high-water", Custody_store.high_water t.store);
    ("high-water-bytes", Custody_store.high_water_bytes t.store);
  ]
