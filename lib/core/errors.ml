module Bitbuf = Dip_bitbuf.Bitbuf

let next_header_value = 0xFE
let echo_limit = 64
let integrity_reason = "integrity-check-failed"

type t = { key : Opkey.t; echo : string }

let fn_unsupported ~key ~rejected =
  let echo_len = min echo_limit (Bitbuf.length rejected) in
  let echo = String.sub (Bitbuf.to_string rejected) 0 echo_len in
  let payload = String.make 1 (Char.chr (Opkey.to_int key)) ^ echo in
  (* A control packet carries no FNs: routers forward it by whatever
     reverse path delivered it (our simulator sends it back out the
     ingress port hop by hop). *)
  Packet.build ~next_header:next_header_value ~fns:[] ~locations:""
    ~payload ()

let is_control buf =
  match Header.decode buf with
  | Ok h -> h.Header.next_header = next_header_value
  | Error _ -> false

let parse buf =
  match Header.decode buf with
  | Error e -> Error e
  | Ok h ->
      if h.Header.next_header <> next_header_value then Error "not a control packet"
      else
        let off = Header.payload_offset h in
        let s = Bitbuf.to_string buf in
        if String.length s <= off then Error "empty control payload"
        else
          match Opkey.of_int (Char.code s.[off]) with
          | None -> Error "unknown key in notification"
          | Some key ->
              Ok { key; echo = String.sub s (off + 1) (String.length s - off - 1) }
