type t = {
  env : Env.t;
  mutable offer : Opkey.t list option;
  sessions : (int64, Dip_opt.Drkey.session_key) Hashtbl.t;
      (* session id → this source's destination key, for seeding the
         PVF when sending (the verification keys live in env). *)
}

let create ?offer ~name () =
  { env = Env.create ~name (); offer; sessions = Hashtbl.create 4 }

let env t = t.env

let attach t world ~as_id = t.offer <- Some (Bootstrap.local_offer world as_id)

let attach_path t world ~src ~dst =
  match Bootstrap.path_supported world ~src ~dst with
  | Some keys ->
      t.offer <- Some keys;
      Ok ()
  | None -> Error (Printf.sprintf "no AS path from %d to %d" src dst)

let offer t = t.offer

let check t required =
  match t.offer with
  | None -> Ok ()
  | Some offered -> Bootstrap.plan ~required ~offered

type 'a construction = ('a, Opkey.t list) result

let construct t ~required f =
  match check t required with Ok () -> Ok (f ()) | Error missing -> Error missing

let send_ipv4 t ?hop_limit ~src ~dst ~payload () =
  construct t
    ~required:[ Opkey.F_32_match; Opkey.F_source ]
    (fun () -> Realize.ipv4 ?hop_limit ~src ~dst ~payload ())

let send_ipv6 t ?hop_limit ~src ~dst ~payload () =
  construct t
    ~required:[ Opkey.F_128_match; Opkey.F_source ]
    (fun () -> Realize.ipv6 ?hop_limit ~src ~dst ~payload ())

let send_interest t ?hop_limit ?pass ~name ~payload () =
  let required =
    Opkey.F_fib :: (match pass with Some _ -> [ Opkey.F_pass ] | None -> [])
  in
  construct t ~required (fun () ->
      Realize.ndn_interest ?hop_limit ?pass ~name ~payload ())

let send_data t ?hop_limit ?pass ~name ~content () =
  let required =
    Opkey.F_pit :: (match pass with Some _ -> [ Opkey.F_pass ] | None -> [])
  in
  construct t ~required (fun () ->
      Realize.ndn_data ?hop_limit ?pass ~name ~content ())

let send_xia t ?hop_limit ~dag ~payload () =
  construct t
    ~required:[ Opkey.F_dag; Opkey.F_intent ]
    (fun () -> Realize.xia ?hop_limit ~dag ~payload ())

let send_epic t ?hop_limit ~src_id ~timestamp ~path_secrets ~src ~dst ~payload () =
  let hop_keys =
    List.map
      (fun s -> Dip_epic.Protocol.derive_key s ~src:src_id ~timestamp)
      path_secrets
  in
  construct t
    ~required:[ Opkey.F_hvf; Opkey.F_32_match; Opkey.F_source ]
    (fun () ->
      Realize.epic ?hop_limit ~hops:(List.length path_secrets) ~src_id
        ~timestamp ~hop_keys ~src ~dst ~payload ())

let open_opt_session t ~session_id ~path_secrets ~dst_secret =
  let session_keys = Dip_opt.Drkey.session_keys path_secrets ~session_id in
  let dest_key = Dip_opt.Drkey.derive dst_secret ~session_id in
  Env.register_opt_session t.env ~session_id ~session_keys ~dest_key;
  Hashtbl.replace t.sessions session_id dest_key

let send_opt t ?hop_limit ~session_id ~timestamp ~payload () =
  let dest_key =
    match Hashtbl.find_opt t.sessions session_id with
    | Some k -> k
    | None -> raise Not_found
  in
  let hops =
    match Hashtbl.find_opt t.env.Env.opt_sessions session_id with
    | Some (keys, _) -> List.length keys
    | None -> raise Not_found
  in
  construct t
    ~required:[ Opkey.F_parm; Opkey.F_mac; Opkey.F_mark; Opkey.F_ver ]
    (fun () ->
      Realize.opt ?hop_limit ~hops ~session_id ~timestamp ~dest_key ~payload ())

let receive t ~registry ~now packet =
  fst (Engine.host_process ~registry t.env ~now ~ingress:0 packet)

module Reliable = struct
  module Sim = Dip_netsim.Sim
  module Bitbuf = Dip_bitbuf.Bitbuf
  module Prng = Dip_stdext.Prng
  module Crc32 = Dip_stdext.Crc32
  module Ipaddr = Dip_tables.Ipaddr

  (* Wire format: a plain DIP-32 packet (F_32_match + F_source route
     it like any IPv4-style flow) whose locations region carries two
     extra words the network never interprets:

       byte   0..4    destination address   (F_32_match target)
       byte   4..8    source address        (F_source target)
       byte   8..12   sequence number       (big-endian)
       byte  12..16   CRC-32                (big-endian)

     The CRC covers locations[0..12) then the payload — everything
     that must survive the path unchanged. The basic header is
     excluded on purpose: hop limit legitimately mutates in flight. *)

  let data_next_header = 0xFD
  let ack_next_header = 0xFC
  let self_port = 99
  let loc_len = 16

  type config = {
    rto : float;
    backoff : float;
    rto_max : float;
    max_jitter : float;
    max_retries : int;
  }

  let default_config =
    { rto = 0.05; backoff = 2.0; rto_max = Float.infinity; max_jitter = 0.005;
      max_retries = 8 }

  let fns =
    [
      Fn.v ~loc:0 ~len:32 Opkey.F_32_match;
      Fn.v ~loc:32 ~len:32 Opkey.F_source;
    ]

  let crc_of_view (view : Packet.view) =
    let covered = Bitbuf.sub_string view.Packet.buf ~pos:view.Packet.loc_base ~len:12 in
    Crc32.digest ~init:(Crc32.digest covered) (Packet.payload view)

  (* With [custody] the locations grow by the 5-byte Custody region
     (tag + bundle id = seq) and the program gains the ignorable
     F_cust. The CRC still covers only locations[0..12) + payload, so
     custodians flipping the in-custody bit in flight don't break the
     end-to-end integrity check. *)
  let build ?(custody = false) ~next_header ~dst ~src ~seq ~payload () =
    let n = if custody then loc_len + Custody.region_bytes else loc_len in
    let loc = Bytes.create n in
    Bytes.blit_string (Ipaddr.V4.to_wire dst) 0 loc 0 4;
    Bytes.blit_string (Ipaddr.V4.to_wire src) 0 loc 4 4;
    Bytes.set_int32_be loc 8 seq;
    let crc =
      Crc32.digest ~init:(Crc32.digest_sub loc ~pos:0 ~len:12) payload
    in
    Bytes.set_int32_be loc 12 crc;
    let fns =
      if custody then begin
        Custody.set_region loc ~off:loc_len ~flags:Custody.flag_request
          ~bundle:seq;
        fns @ [ Custody.fn_at ~loc:(8 * loc_len) ]
      end
      else fns
    in
    Packet.build ~next_header ~fns ~locations:(Bytes.to_string loc) ~payload ()

  (* A validated reliable-protocol packet. [custody] is the bundle id
     when the source requested custody transfer for this packet. *)
  type frame = {
    f_dst : Ipaddr.V4.t;
    f_src : Ipaddr.V4.t;
    seq : int32;
    custody : int32 option;
  }

  let classify packet =
    match Packet.parse packet with
    | Error e -> `Invalid ("parse: " ^ e)
    | Ok view ->
        let nh = view.Packet.header.Header.next_header in
        if nh = Custody.ack_next_header then begin
          (* A hop-local custody ACK that reached an endpoint: the
             first custodian is taking over from the sender. *)
          if view.Packet.header.Header.fn_loc_len < Custody.region_bytes then
            `Invalid "custody: short ack region"
          else
            `Cust_ack (Custody.read_bundle view.Packet.buf ~base:view.Packet.loc_base)
        end
        else if nh <> data_next_header && nh <> ack_next_header then `Other
        else if view.Packet.header.Header.fn_loc_len < loc_len then
          `Invalid "reliable: short locations region"
        else begin
          let base = view.Packet.loc_base in
          let stored = Bitbuf.get_uint32 view.Packet.buf (base + 12) in
          if not (Int32.equal stored (crc_of_view view)) then `Corrupt
          else
            let custody =
              if
                view.Packet.header.Header.fn_loc_len
                >= loc_len + Custody.region_bytes
                && Custody.read_flags view.Packet.buf ~base:(base + loc_len)
                   land Custody.flag_request
                   <> 0
              then Some (Custody.read_bundle view.Packet.buf ~base:(base + loc_len))
              else None
            in
            let frame =
              {
                f_dst = Ipaddr.V4.of_wire (Bitbuf.sub_string view.Packet.buf ~pos:base ~len:4);
                f_src = Ipaddr.V4.of_wire (Bitbuf.sub_string view.Packet.buf ~pos:(base + 4) ~len:4);
                seq = Bitbuf.get_uint32 view.Packet.buf (base + 8);
                custody;
              }
            in
            if nh = data_next_header then `Data frame else `Ack frame
        end

  type pending = { packet : Bitbuf.t; mutable tries : int }

  type sender_stats = {
    sent : int;  (** unique payloads handed to {!send} *)
    transmissions : int;  (** wire transmissions incl. retransmits *)
    acked : int;
    custodied : int;
    gave_up : int;
    in_flight : int;
  }

  type sender = {
    sim : Sim.t;
    mutable node : Sim.node_id;
    cfg : config;
    cust : bool;
    rng : Prng.t;
    src : Ipaddr.V4.t;
    dst : Ipaddr.V4.t;
    out_port : Sim.port;
    pending : (int32, pending) Hashtbl.t;
    mutable next_seq : int32;
    mutable s_sent : int;
    mutable s_tx : int;
    mutable s_acked : int;
    mutable s_custodied : int;
    mutable s_gave_up : int;
  }

  let timeout_after s tries =
    Float.min s.cfg.rto_max
      (s.cfg.rto *. (s.cfg.backoff ** float_of_int (tries - 1)))
    +. (if s.cfg.max_jitter > 0.0 then Prng.float s.rng s.cfg.max_jitter
        else 0.0)

  (* Timers cannot return [Forward] actions, so every (re)transmission
     goes through self-injection: the timer injects the packet on
     [self_port] and the node handler turns that arrival into the
     actual [Forward].

     The timer re-arms *itself* after every retransmission it
     injects. Re-arming from the handler instead (as the first
     version did) wedges the sequence permanently if the
     self-injection never reaches the handler — a crash window over
     the sender, a full queue — because nothing else ever schedules
     another look at that seq: not retried, not counted as gave-up,
     [in_flight] never draining. *)
  let rec arm s seq =
    match Hashtbl.find_opt s.pending seq with
    | None -> ()
    | Some p ->
        let at = Sim.now s.sim +. timeout_after s p.tries in
        Sim.schedule s.sim ~at (fun sim ->
            match Hashtbl.find_opt s.pending seq with
            | None -> () (* acked meanwhile *)
            | Some p ->
                if p.tries > s.cfg.max_retries then begin
                  Hashtbl.remove s.pending seq;
                  s.s_gave_up <- s.s_gave_up + 1
                end
                else begin
                  p.tries <- p.tries + 1;
                  Sim.inject sim ~at:(Sim.now sim) ~node:s.node
                    ~port:self_port (Bitbuf.copy p.packet);
                  arm s seq
                end)

  let sender_handler s _sim ~now:_ ~ingress packet =
    if ingress = self_port then begin
      (match classify packet with
      | `Data frame ->
          if not (Hashtbl.mem s.pending frame.seq) then begin
            Hashtbl.replace s.pending frame.seq
              { packet = Bitbuf.copy packet; tries = 1 };
            if s.cfg.max_retries > 0 then arm s frame.seq
          end
      | `Ack _ | `Cust_ack _ | `Other | `Invalid _ | `Corrupt -> ());
      s.s_tx <- s.s_tx + 1;
      [ Sim.Forward (s.out_port, packet) ]
    end
    else
      match classify packet with
      | `Ack frame ->
          if Hashtbl.mem s.pending frame.seq then begin
            Hashtbl.remove s.pending frame.seq;
            s.s_acked <- s.s_acked + 1
          end;
          [ Sim.Consume ]
      | `Cust_ack bundle ->
          (* The first-hop custodian holds the bundle now: stop
             retransmitting end-to-end, the network owns delivery. *)
          if Hashtbl.mem s.pending bundle then begin
            Hashtbl.remove s.pending bundle;
            s.s_custodied <- s.s_custodied + 1
          end;
          [ Sim.Consume ]
      | `Corrupt -> [ Sim.Drop Errors.integrity_reason ]
      | `Invalid e -> [ Sim.Drop e ]
      | `Data _ | `Other -> [ Sim.Drop "reliable-unexpected" ]

  let add_sender ?(config = default_config) ?(custody = false) sim ~name ~seed
      ~src ~dst ~out_port =
    if config.rto <= 0.0 then invalid_arg "Reliable: rto must be positive";
    if config.backoff < 1.0 then invalid_arg "Reliable: backoff must be >= 1";
    if config.rto_max < config.rto then
      invalid_arg "Reliable: rto_max must be >= rto";
    if config.max_jitter < 0.0 || config.max_retries < 0 then
      invalid_arg "Reliable: negative jitter or retries";
    let s =
      {
        sim;
        node = -1;
        cfg = config;
        cust = custody;
        rng = Prng.create seed;
        src;
        dst;
        out_port;
        pending = Hashtbl.create 32;
        next_seq = 0l;
        s_sent = 0;
        s_tx = 0;
        s_acked = 0;
        s_custodied = 0;
        s_gave_up = 0;
      }
    in
    s.node <-
      Sim.add_node sim ~name (fun sim ~now ~ingress packet ->
          sender_handler s sim ~now ~ingress packet);
    s

  let send s ~at ~payload =
    let seq = s.next_seq in
    s.next_seq <- Int32.add s.next_seq 1l;
    s.s_sent <- s.s_sent + 1;
    let packet =
      build ~custody:s.cust ~next_header:data_next_header ~dst:s.dst
        ~src:s.src ~seq ~payload ()
    in
    Sim.inject s.sim ~at ~node:s.node ~port:self_port packet

  let sender_node s = s.node

  let sender_stats s =
    {
      sent = s.s_sent;
      transmissions = s.s_tx;
      acked = s.s_acked;
      custodied = s.s_custodied;
      gave_up = s.s_gave_up;
      in_flight = Hashtbl.length s.pending;
    }

  type receiver = {
    seen : (int32, unit) Hashtbl.t;
    mutable deliveries : (int32 * float) list; (* reversed *)
    mutable r_dups : int;
    mutable r_rejected : int;
  }

  let receiver_handler r _sim ~now ~ingress packet =
    match classify packet with
    | `Data frame ->
        (* ACK every valid copy — re-acking duplicates is what stops
           the sender retransmitting when the first ACK was lost. For
           custody packets also ACK the last-hop custodian so it can
           release its stored copy (again on duplicates: the replay
           that produced the duplicate re-stored the bundle). *)
        let ack =
          build ~next_header:ack_next_header ~dst:frame.f_src
            ~src:frame.f_dst ~seq:frame.seq ~payload:"" ()
        in
        let acks =
          match frame.custody with
          | Some bundle ->
              [
                Sim.Forward (ingress, ack);
                Sim.Forward (ingress, Custody.build_ack ~bundle);
              ]
          | None -> [ Sim.Forward (ingress, ack) ]
        in
        if Hashtbl.mem r.seen frame.seq then begin
          r.r_dups <- r.r_dups + 1;
          acks @ [ Sim.Drop "reliable-duplicate" ]
        end
        else begin
          Hashtbl.replace r.seen frame.seq ();
          r.deliveries <- (frame.seq, now) :: r.deliveries;
          acks @ [ Sim.Consume ]
        end
    | `Corrupt ->
        r.r_rejected <- r.r_rejected + 1;
        [ Sim.Drop Errors.integrity_reason ]
    | `Invalid e -> [ Sim.Drop e ]
    | `Ack _ | `Cust_ack _ | `Other -> [ Sim.Drop "reliable-unexpected" ]

  let add_receiver sim ~name =
    let r =
      { seen = Hashtbl.create 64; deliveries = []; r_dups = 0; r_rejected = 0 }
    in
    let node = Sim.add_node sim ~name (fun sim ~now ~ingress packet ->
        receiver_handler r sim ~now ~ingress packet)
    in
    (r, node)

  let deliveries r = List.rev r.deliveries
  let delivered r = Hashtbl.length r.seen
  let duplicates r = r.r_dups
  let rejected r = r.r_rejected
end
