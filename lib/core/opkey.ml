type t =
  | F_32_match
  | F_128_match
  | F_source
  | F_fib
  | F_pit
  | F_parm
  | F_mac
  | F_mark
  | F_ver
  | F_dag
  | F_intent
  | F_pass
  | F_cc
  | F_tel
  | F_hvf
  | F_cust

let to_int = function
  | F_32_match -> 1
  | F_128_match -> 2
  | F_source -> 3
  | F_fib -> 4
  | F_pit -> 5
  | F_parm -> 6
  | F_mac -> 7
  | F_mark -> 8
  | F_ver -> 9
  | F_dag -> 10
  | F_intent -> 11
  | F_pass -> 12
  | F_cc -> 13
  | F_tel -> 14
  | F_hvf -> 15
  | F_cust -> 16

let all =
  [
    F_32_match; F_128_match; F_source; F_fib; F_pit; F_parm; F_mac; F_mark;
    F_ver; F_dag; F_intent; F_pass; F_cc; F_tel; F_hvf; F_cust;
  ]

let of_int i = List.find_opt (fun k -> to_int k = i) all

let max_key = List.fold_left (fun acc k -> Stdlib.max acc (to_int k)) 0 all

let name = function
  | F_32_match -> "F_32_match"
  | F_128_match -> "F_128_match"
  | F_source -> "F_source"
  | F_fib -> "F_FIB"
  | F_pit -> "F_PIT"
  | F_parm -> "F_parm"
  | F_mac -> "F_MAC"
  | F_mark -> "F_mark"
  | F_ver -> "F_ver"
  | F_dag -> "F_DAG"
  | F_intent -> "F_intent"
  | F_pass -> "F_pass"
  | F_cc -> "F_cc"
  | F_tel -> "F_tel"
  | F_hvf -> "F_hvf"
  | F_cust -> "F_cust"

let description = function
  | F_32_match -> "32-bit address match"
  | F_128_match -> "128-bit address match"
  | F_source -> "source address"
  | F_fib -> "forwarding information base match"
  | F_pit -> "pending interest table match"
  | F_parm -> "load parameters"
  | F_mac -> "calculate MAC"
  | F_mark -> "mark update"
  | F_ver -> "destination verification"
  | F_dag -> "parse the directed acyclic graph"
  | F_intent -> "handle intent"
  | F_pass -> "source label verification"
  | F_cc -> "congestion policing"
  | F_tel -> "in-band telemetry"
  | F_hvf -> "per-hop validation field check"
  | F_cust -> "custody transfer"

let equal a b = a = b
let compare a b = Int.compare (to_int a) (to_int b)
let pp fmt t = Format.pp_print_string fmt (name t)
