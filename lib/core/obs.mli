(** The engine's span recorder: per-opkey execution accounting for
    Algorithm 1, backed by a {!Dip_obs.Metrics} registry.

    An [Obs.t] holds pre-resolved metric handles indexed densely by
    operation key, so the engine's per-packet cost with observability
    enabled is a handful of integer stores — and {e zero} when the
    engine runs without [?obs] (the handles are never touched, no
    closure is allocated).

    Timing uses {e sampling}: every [sample_every]-th packet gets
    monotonic-clock spans around the whole run and around each
    operation module; the rest only bump counters. At the default
    rate the two clock reads per FN amortize to well under the 15%
    overhead budget while the nanosecond totals and the latency
    histogram stay statistically faithful (multiply by
    [sample_every] to estimate wall totals).

    Registered metric names (under [prefix], default ["engine"]):
    - ["<p>.op.<F_key>.run" / ".skip" / ".error"] — counters per
      operation key: executed, tag- or deployment-skipped, aborted.
    - ["<p>.op.<F_key>.ns"] — cumulative {e sampled} execution nanos.
    - ["<p>.verdict.<name>"] — forwarded / delivered / responded /
      quiet / dropped / unsupported tallies.
    - ["<p>.process_ns"] — sampled whole-run latency histogram.
    - ["<p>.packets"] — runs observed.
    - ["<p>.progcache.hit" / ".miss" / ".evict"] — gauges mirrored
      from the node's {!Progcache} by {!publish_cache}. *)

type t

val create :
  ?prefix:string ->
  ?sample_every:int ->
  ?flight:Dip_obs.Flight.ring ->
  Dip_obs.Metrics.t ->
  t
(** [create metrics] registers the engine instruments.
    [sample_every] (default {!default_sample_every}, must be [>= 1])
    sets the span-timing rate; [1] times every packet. [flight] arms
    a flight-recorder ring: sampled runs additionally record
    ["engine.process"] spans (a0 = ns, a1 = verdict class) and
    ["engine.op"] spans (a0 = ns, a1 = opkey) into it. *)

val default_sample_every : int
(** 16. *)

val metrics : t -> Dip_obs.Metrics.t

val set_flight : t -> Dip_obs.Flight.ring option -> unit
(** Arm (or disarm) the flight ring after creation. The ring must be
    owned by the domain running this observer's engine. *)

val flight : t -> Dip_obs.Flight.ring option

val publish_cache : t -> Progcache.t -> unit
(** Mirror the program cache's hit/miss/evict totals into the
    ["<p>.progcache.*"] gauges. The engine's simulator handlers call
    this after every packet. *)

(** {1 Engine-facing recording}

    These are called by {!Engine}; they are exposed so alternative
    execution engines (e.g. {!Dip_pisa.Compile}) can report through
    the same instruments. *)

val begin_packet : t -> bool
(** Count one run; [true] when this run should be span-timed. *)

val op_run : t -> Opkey.t -> unit
val op_skip : t -> Opkey.t -> unit
val op_error : t -> Opkey.t -> unit
val op_ns : t -> Opkey.t -> int -> unit
(** Add sampled execution nanoseconds to an opkey's total. *)

val verdict : t -> [ `Forwarded | `Delivered | `Responded | `Quiet
                   | `Dropped | `Unsupported ] -> unit

val process_ns : t -> int -> unit
(** Observe one sampled whole-run latency. *)
