(** Custody transfer — DTN disruption tolerance as an FN realization.

    Hop-by-hop custody beats end-to-end retransmission when
    disconnections outlast any sane RTO: instead of the source
    retrying across the whole path, each supporting router {e takes
    custody} of a bundle (stores a copy, bounded by
    {!Dip_tables.Custody_store}), ACKs one hop upstream (releasing
    the upstream copy), and puts held bundles back on the wire when
    the downstream link comes up (or on a periodic safety sweep).

    The realization is a single ignorable FN, {i F_cust} (key 16),
    over a 5-byte region in the locations: one tag byte
    (custody-requested / in-custody / custody-ACK bits) and a 32-bit
    bundle id. Placed after the {!Host.Reliable} layout the
    end-to-end CRC never covers it, so custodians may mutate it in
    flight; routers without the operation installed skip it per §2.4
    and the packet degrades gracefully to pure end-to-end recovery. *)

val region_bytes : int
(** 5 — tag byte + 32-bit bundle id. *)

val region_bits : int

val flag_request : int
(** bit 0: the source asks on-path routers to take custody. *)

val flag_in_custody : int
(** bit 1: some upstream custodian holds a copy (set by each taker —
    the FN's declared [W_node] write). *)

val flag_ack : int
(** bit 2: this packet is a hop-local custody ACK. *)

val ack_next_header : int
(** 0xFB — the custody-ACK packet (a single-F_cust program). *)

val replay_port : Dip_netsim.Sim.port
(** 98 — virtual ingress for retransmissions out of the custody
    store; {!add_router} turns such arrivals into direct forwards.
    Must not be wired. *)

val fn_at : loc:int -> Fn.t
(** The F_cust FN definition for a region at bit offset [loc]. *)

val set_region : Bytes.t -> off:int -> flags:int -> bundle:int32 -> unit
(** Write a custody region into a locations buffer being built. *)

val read_flags : Dip_bitbuf.Bitbuf.t -> base:int -> int
val read_bundle : Dip_bitbuf.Bitbuf.t -> base:int -> int32
(** Read the region at absolute byte offset [base] of a packet. *)

val build_ack : bundle:int32 -> Dip_bitbuf.Bitbuf.t
(** The hop-local custody ACK for [bundle]. *)

type config = {
  capacity : int;  (** max bundles held per router *)
  max_bytes : int;  (** max stored bytes per router *)
  retry : float;
      (** seconds between safety replay sweeps (covers lost custody
          ACKs); 0 disables the sweep — link-up replay still works *)
  retry_until : float;
      (** stop re-arming the sweep past this simulated time, so a
          run with permanently stranded bundles still terminates *)
}

val default_config : config
(** 1024 bundles / 1 MiB / 0.5 s sweep, no deadline. *)

val enable : ?config:config -> Env.t -> (int32, Dip_bitbuf.Bitbuf.t) Dip_tables.Custody_store.t
(** Give an environment a custody store (making its F_cust take
    custody) without simulator wiring — for driving
    {!Engine.process} directly in tests. *)

(** A simulator router that takes custody. *)
type router

val add_router :
  ?obs:Obs.t ->
  ?metrics:Dip_obs.Metrics.t ->
  ?flight:Dip_obs.Flight.ring ->
  ?config:config ->
  Dip_netsim.Sim.t ->
  registry:Registry.t ->
  env:Env.t ->
  name:string ->
  out_port:Dip_netsim.Sim.port ->
  unit ->
  router
(** Add a custodial router node: the full engine handler plus a
    custody store on [env], a replay path out of [out_port], and the
    periodic safety sweep. [metrics] adds a ["custody.<name>.depth"]
    gauge; store transitions and replays land in [flight] as
    instants ([custody.take/release/evict/reject/replay]) and in the
    env counters under the same names. *)

val node : router -> Dip_netsim.Sim.node_id
val env : router -> Env.t
val store : router -> (int32, Dip_bitbuf.Bitbuf.t) Dip_tables.Custody_store.t

val replay : router -> unit
(** Put every held bundle back on the wire now — what the
    {!Dip_netsim.Faults.on_link_up} hook should call. *)

val stats : router -> (string * int) list
(** [take/release/evict/reject] counters plus current [held],
    [high-water] occupancy and [high-water-bytes]. *)
