(** Operation keys — Table 1 of the paper.

    Every Field Operation names its behaviour with a small integer
    key; routers match the key against the operation modules
    pre-installed on their dataplane (§4.1: "we pre-write the
    required operation modules on the data plane and use the
    operation key to match these operation modules").

    Keys 1–11 are exactly the paper's Table 1. Key 12 ({i F_pass})
    is the source-label verification operation the paper introduces
    in §2.4 as a dynamically enabled defence against cache-poisoning
    FN combinations. Keys 13–14 are extensions the paper motivates:
    {i F_cc} realizes NetFence-style in-network congestion policing
    (§1), {i F_tel} the in-band telemetry opportunity of §5, and
    {i F_hvf} the EPIC hop-validation check (§1 names EPIC beside
    OPT). Key 16 ({i F_cust}) realizes DTN-style custody transfer as
    an ignorable FN (§2.4): supporting routers take custody of the
    packet and ACK hop-by-hop; others forward it untouched. *)

type t =
  | F_32_match   (** 1 — 32-bit address match *)
  | F_128_match  (** 2 — 128-bit address match *)
  | F_source     (** 3 — source address *)
  | F_fib        (** 4 — forwarding information base match *)
  | F_pit        (** 5 — pending interest table match *)
  | F_parm       (** 6 — load parameters *)
  | F_mac        (** 7 — calculate MAC *)
  | F_mark       (** 8 — mark update *)
  | F_ver        (** 9 — destination verification *)
  | F_dag        (** 10 — parse the directed acyclic graph *)
  | F_intent     (** 11 — handle intent *)
  | F_pass       (** 12 — source label verification (§2.4) *)
  | F_cc         (** 13 — congestion policing (NetFence-style, §1) *)
  | F_tel        (** 14 — in-band telemetry (§5 opportunities) *)
  | F_hvf        (** 15 — EPIC per-hop validation field check (§1) *)
  | F_cust       (** 16 — DTN-style custody transfer (§2.4 ignorable) *)

val to_int : t -> int
val of_int : int -> t option
val all : t list
(** In key order. *)

val max_key : int
(** The largest {!to_int} value — sizes key-indexed dense arrays
    (e.g. the {!Obs} per-opkey tallies). *)

val name : t -> string
(** The paper's notation, e.g. ["F_FIB"]. *)

val description : t -> string
(** The Table 1 operation column, e.g.
    ["forwarding information base match"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
