module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type verdict =
  | Forwarded of Env.port list
  | Delivered
  | Responded of Bitbuf.t
  | Quiet
  | Dropped of string
  | Unsupported of Opkey.t

type info = {
  ops_run : int;
  ops_skipped : int;
  state_bytes : int;
  parallel_depth : int;
}

let mandatory = function
  | Opkey.F_parm | Opkey.F_mac | Opkey.F_mark | Opkey.F_hvf -> true
  | Opkey.F_32_match | Opkey.F_128_match | Opkey.F_source | Opkey.F_fib
  | Opkey.F_pit | Opkey.F_ver | Opkey.F_dag | Opkey.F_intent | Opkey.F_pass
  | Opkey.F_cc | Opkey.F_tel | Opkey.F_cust ->
      false

(* Dependency leveling for the §2.2 parallel flag: two FNs conflict
   when their target fields overlap (a conservative approximation of
   read/write dependences). The critical-path length is what a
   modular-parallel dataplane (NFP-style, refs [31,32]) would pay.
   [included] restricts the analysis to the FNs that actually
   executed — a tag-skipped or unknown-ignorable FN contributes no
   dataplane work, so it must not lengthen the path. *)
let critical_path_over fns ~included =
  let n = Array.length fns in
  let level = Array.make n 0 in
  let depth = ref 0 in
  for i = 0 to n - 1 do
    if included i then begin
      level.(i) <- 1;
      for j = 0 to i - 1 do
        if level.(j) > 0 && Field.overlaps fns.(i).Fn.field fns.(j).Fn.field
        then level.(i) <- max level.(i) (level.(j) + 1)
      done;
      if level.(i) > !depth then depth := level.(i)
    end
  done;
  !depth

let critical_path fns = critical_path_over fns ~included:(fun _ -> true)

let no_info = { ops_run = 0; ops_skipped = 0; state_bytes = 0; parallel_depth = 0 }

let verdict_class = function
  | Forwarded _ -> `Forwarded
  | Delivered -> `Delivered
  | Responded _ -> `Responded
  | Quiet -> `Quiet
  | Dropped _ -> `Dropped
  | Unsupported _ -> `Unsupported

(* Opt-in static pre-check (Dip_analysis.verifier): reject a
   malformed FN program before executing any of it. A cached
   known-good (or known-bad) program skips re-verification. *)
let check_view ?verify parsed =
  match parsed with
  | Error e -> Error ("parse: " ^ e)
  | Ok (view, entry) -> (
      match verify with
      | None -> Ok (view, entry)
      | Some check -> (
          let verdict =
            match entry with
            | Some e -> (
                (* The memo is keyed on the hook's physical identity:
                   a different verifier (new registry, new policy)
                   re-checks instead of inheriting a verdict it never
                   produced. *)
                match e.Progcache.verdict with
                | Some (h, v) when h == check -> v
                | _ ->
                    let v = check view in
                    e.Progcache.verdict <- Some (check, v);
                    v)
            | None -> check view
          in
          match verdict with
          | Ok () -> Ok (view, entry)
          | Error e -> Error ("verify: " ^ e)))

(* Algorithm 1 proper, over an already parsed-and-checked program.
   [sampled]/[t_start] come from the caller's [Obs.begin_packet] so
   that batch entry points share the instrumentation protocol with
   the per-packet one. *)
let execute ?obs ~registry ~side env ~now ~ingress buf ~sampled ~t_start checked
    =
  let observe verdict =
    match obs with
    | None -> ()
    | Some o ->
        Obs.verdict o (verdict_class verdict);
        if sampled then Obs.process_ns o (Dip_obs.Clock.elapsed_ns t_start)
  in
  match checked with
  | Error e ->
      observe (Dropped e);
      (Dropped e, no_info)
  | Ok (view, entry) ->
      let budget = Guard.start env.Env.guard in
      let scratch = env.Env.scratch in
      scratch.Registry.opt_key <- None;
      scratch.Registry.emit <- [];
      let ops_run = ref 0 and ops_skipped = ref 0 in
      let route = ref None in
      let nfns = Array.length view.Packet.fns in
      (* Which FNs actually executed — only needed for the parallel
         flag's critical-path accounting. *)
      let executed =
        if view.Packet.header.Header.parallel then Array.make nfns false
        else [||]
      in
      let finish verdict =
        let depth =
          if view.Packet.header.Header.parallel then
            if !ops_run < nfns then
              critical_path_over view.Packet.fns ~included:(fun i ->
                  executed.(i))
            else
              (* The whole program ran: the full-program path applies
                 and is memoized on the cache entry. *)
              match entry with
              | Some e ->
                  if e.Progcache.depth < 0 then
                    e.Progcache.depth <- critical_path view.Packet.fns;
                  e.Progcache.depth
              | None -> critical_path view.Packet.fns
          else !ops_run
        in
        observe verdict;
        ( verdict,
          {
            ops_run = !ops_run;
            ops_skipped = !ops_skipped;
            state_bytes = Guard.state_used budget;
            parallel_depth = depth;
          } )
      in
      let rec loop i =
        if i = nfns then
          (* end processing: act on the accumulated decision *)
          match (!route, side) with
          | Some (`Ports ports), _ ->
              if Header.decrement_hop_limit buf then finish (Forwarded ports)
              else finish (Dropped "hop-limit-expired")
          | Some `Local, _ -> finish Delivered
          | None, `Host -> finish Delivered
          | None, `Router -> finish (Dropped "no-forwarding-decision")
        else
          let fn = view.Packet.fns.(i) in
          let skip_tag =
            match (side, fn.Fn.tag) with
            | `Router, Fn.Host -> true (* Algorithm 1 line 5 *)
            | `Host, Fn.Router -> true
            | (`Router | `Host), _ -> false
          in
          if skip_tag then begin
            incr ops_skipped;
            (match obs with Some o -> Obs.op_skip o fn.Fn.key | None -> ());
            loop (i + 1)
          end
          else
            match Registry.find registry fn.Fn.key with
            | None ->
                if mandatory fn.Fn.key then finish (Unsupported fn.Fn.key)
                else begin
                  (* "Otherwise, the router can simply ignore this
                     FN" (§2.4). *)
                  incr ops_skipped;
                  (match obs with
                  | Some o -> Obs.op_skip o fn.Fn.key
                  | None -> ());
                  loop (i + 1)
                end
            | Some impl ->
                if not (Guard.charge_op budget) then
                  finish (Dropped "guard-ops-exhausted")
                else begin
                  incr ops_run;
                  if view.Packet.header.Header.parallel then
                    executed.(i) <- true;
                  let ctx =
                    {
                      Registry.env;
                      view;
                      fn;
                      target = Packet.locations_field view fn;
                      ingress;
                      now;
                      scratch;
                      budget;
                    }
                  in
                  let outcome =
                    match obs with
                    | Some o ->
                        Obs.op_run o fn.Fn.key;
                        if sampled then begin
                          let t0 = Dip_obs.Clock.now_ns () in
                          let r = impl ctx in
                          Obs.op_ns o fn.Fn.key (Dip_obs.Clock.elapsed_ns t0);
                          r
                        end
                        else impl ctx
                    | None -> impl ctx
                  in
                  match outcome with
                  | Registry.Continue -> loop (i + 1)
                  | Registry.Set_route ports ->
                      if !route = None then route := Some (`Ports ports);
                      loop (i + 1)
                  | Registry.Deliver_local ->
                      if !route = None then route := Some `Local;
                      loop (i + 1)
                  | Registry.Respond pkt -> finish (Responded pkt)
                  | Registry.Silent -> finish Quiet
                  | Registry.Abort reason ->
                      (match obs with
                      | Some o -> Obs.op_error o fn.Fn.key
                      | None -> ());
                      finish (Dropped reason)
                end
      in
      loop 0

let run ?obs ?verify ~registry ~side env ~now ~ingress buf =
  (* Observability is opt-in: with [obs = None] every instrumentation
     point is a single match on an immediate — no clock reads, no
     allocation. [sampled] selects the runs that additionally get
     monotonic-clock spans (Obs sampling keeps timing overhead off
     most packets). *)
  let sampled = match obs with None -> false | Some o -> Obs.begin_packet o in
  let t_start = if sampled then Dip_obs.Clock.now_ns () else 0L in
  let parsed =
    (* Fast path: packets of a known program reuse the cached FN
       array (and its memoized verification verdict) instead of
       re-decoding the definitions. *)
    if Progcache.enabled env.Env.prog_cache then
      Progcache.parse env.Env.prog_cache buf
    else
      match Packet.parse buf with
      | Ok view -> Ok (view, None)
      | Error e -> Error e
  in
  execute ?obs ~registry ~side env ~now ~ingress buf ~sampled ~t_start
    (check_view ?verify parsed)

let process ?obs ?verify ~registry env ~now ~ingress buf =
  run ?obs ?verify ~registry ~side:`Router env ~now ~ingress buf

let host_process ?obs ?verify ~registry env ~now ~ingress buf =
  run ?obs ?verify ~registry ~side:`Host env ~now ~ingress buf

let count env key = Dip_netsim.Stats.Counters.incr env.Env.counters key

(* Auxiliary transmissions (scratch.emit, pushed by F_cust) precede
   the verdict's own actions: custody is taken — and ACKed — even
   when a later decision drops the packet (hop-limit expiry), which
   is exactly when the stored copy matters. Draining here instead of
   threading a value through [info] keeps every call site — the sim
   handlers, the mcore pool, direct users — correct without a
   signature change. *)
let drain_aux env =
  match env.Env.scratch.Registry.emit with
  | [] -> []
  | l ->
      env.Env.scratch.Registry.emit <- [];
      List.rev_map (fun (p, pkt) -> Dip_netsim.Sim.Forward (p, pkt)) l

let verdict_actions env ~ingress buf = function
  | Forwarded ports ->
      count env "dip.forwarded";
      (* Fan-out copies must not share storage: every downstream hop
         mutates its packet in place (hop limit, tag updates), so two
         in-flight copies aliasing one Bitbuf.t would corrupt each
         other. The first port keeps the original buffer. *)
      List.mapi
        (fun i p ->
          Dip_netsim.Sim.Forward (p, if i = 0 then buf else Bitbuf.copy buf))
        ports
  | Delivered ->
      count env "dip.delivered";
      [ Dip_netsim.Sim.Consume ]
  | Responded reply ->
      count env "dip.responded";
      [ Dip_netsim.Sim.Forward (ingress, reply) ]
  | Quiet ->
      count env "dip.quiet";
      []
  | Dropped reason ->
      count env ("dip.drop." ^ reason);
      [ Dip_netsim.Sim.Drop reason ]
  | Unsupported key ->
      count env ("dip.unsupported." ^ Opkey.name key);
      [
        Dip_netsim.Sim.Forward (ingress, Errors.fn_unsupported ~key ~rejected:buf);
        Dip_netsim.Sim.Drop ("unsupported-" ^ Opkey.name key);
      ]

let actions_of_verdict env ~ingress buf verdict =
  match drain_aux env with
  | [] -> verdict_actions env ~ingress buf verdict
  | aux -> aux @ verdict_actions env ~ingress buf verdict

let publish_obs obs env =
  match obs with
  | None -> ()
  | Some o -> Obs.publish_cache o env.Env.prog_cache

(* --- batch processing -------------------------------------------- *)

(* A batch amortizes the per-packet setup that [run] pays every time:
   the progcache probe collapses to a byte-compare for runs of
   same-program packets (the steady state of a forwarding router),
   and the cache-stats / obs-gauge publication happens once per batch
   instead of once per packet. *)
type batch = {
  b_obs : Obs.t option;
  b_verify : (Packet.view -> (unit, string) result) option;
  b_registry : Registry.t;
  b_env : Env.t;
  b_hint : Progcache.hint option;
}

let batch_start ?obs ?verify ?hint ~registry env =
  {
    b_obs = obs;
    b_verify = verify;
    b_registry = registry;
    b_env = env;
    b_hint =
      (if Progcache.enabled env.Env.prog_cache then
         Some (match hint with Some h -> h | None -> Progcache.hint ())
       else None);
  }

let batch_step b ~now ~ingress buf =
  let obs = b.b_obs in
  let env = b.b_env in
  let sampled = match obs with None -> false | Some o -> Obs.begin_packet o in
  let t_start = if sampled then Dip_obs.Clock.now_ns () else 0L in
  let parsed =
    match b.b_hint with
    | Some h -> Progcache.parse_hinted env.Env.prog_cache h buf
    | None -> (
        match Packet.parse buf with
        | Ok view -> Ok (view, None)
        | Error e -> Error e)
  in
  execute ?obs ~registry:b.b_registry ~side:`Router env ~now ~ingress buf
    ~sampled ~t_start
    (check_view ?verify:b.b_verify parsed)

let batch_finish b =
  Env.publish_cache_stats b.b_env;
  publish_obs b.b_obs b.b_env

let process_batch ?obs ?verify ~registry env ~now ~ingress bufs =
  let b = batch_start ?obs ?verify ~registry env in
  let out = Array.map (fun buf -> batch_step b ~now ~ingress buf) bufs in
  batch_finish b;
  out

let handler ?obs ?verify ~registry env _sim ~now ~ingress packet =
  let verdict, _info = process ?obs ?verify ~registry env ~now ~ingress packet in
  Env.publish_cache_stats env;
  publish_obs obs env;
  actions_of_verdict env ~ingress packet verdict

let host_handler ?obs ?verify ~registry env _sim ~now ~ingress packet =
  let verdict, _info =
    host_process ?obs ?verify ~registry env ~now ~ingress packet
  in
  Env.publish_cache_stats env;
  publish_obs obs env;
  actions_of_verdict env ~ingress packet verdict
