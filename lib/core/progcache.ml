module Bitbuf = Dip_bitbuf.Bitbuf
module Lru = Dip_tables.Lru
module F = Dip_obs.Flight

(* Flight-recorder event types. Hits dominate a steady-state router
   (hit rate ~0.998 on the soak workload), so they are sampled
   1-in-16 to stay inside the recorder's overhead budget; misses and
   evictions are rare and recorded unconditionally. Operand a0
   carries the running total so a sampled stream still reconstructs
   exact counts. *)
let ev_hit = F.register "progcache.hit"
let ev_miss = F.register "progcache.miss"
let ev_evict = F.register "progcache.evict"
let fl_sample_every = 16

type entry = {
  header : Header.t; (* hop_limit forced to 0; patched per packet *)
  header_len : int;
  fns : Fn.t array;
  loc_base : int;
  mutable depth : int; (* full-program critical path; -1 = not computed *)
  mutable verdict :
    ((Packet.view -> (unit, string) result) * (unit, string) result) option;
}

type t = {
  table : (string, entry) Lru.t;
  mutable enabled : bool;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Inline single-entry hint: the last program parsed. A forwarding
     router's steady state is a run of same-program packets, so most
     parses resolve here with zero allocation — no key extraction, no
     LRU probe. Because the hint is re-armed on every LRU access, an
     inline hit is always the LRU's MRU entry: skipping the touch
     cannot change the eviction order. *)
  mutable last_key : string;
  mutable last_entry : entry option;
  mutable flight : F.ring option;
  mutable fl_tick : int;
}

(* The LRU buckets by a full structural hash of the key string; for
   per-packet lookups that is measurable overhead (BENCH_PR2's
   pure-parse regression). Program prefixes differ early — FN_Num at
   byte 1, the first triple at bytes 6..11 — so an FNV-1a over the
   length, a bounded prefix and the last byte fingerprints just as
   well at a fraction of the cost. Collisions only cost a bucket-list
   comparison. *)
let fingerprint (key : string) =
  let h = ref 0x811c9dc5 in
  let step c = h := (!h lxor Char.code c) * 0x01000193 in
  let n = String.length key in
  step (Char.unsafe_chr (n land 0xff));
  for i = 0 to min n 24 - 1 do
    step (String.unsafe_get key i)
  done;
  if n > 24 then step (String.unsafe_get key (n - 1));
  !h land max_int

let create ?(capacity = 512) () =
  {
    table = Lru.create ~hash:fingerprint ~capacity:(max 1 capacity) ();
    enabled = capacity > 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    last_key = "";
    last_entry = None;
    flight = None;
    fl_tick = 0;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let set_flight t r = t.flight <- r
let flight t = t.flight

let note_hit t =
  t.hits <- t.hits + 1;
  match t.flight with
  | None -> ()
  | Some r ->
      let tk = t.fl_tick + 1 in
      if tk >= fl_sample_every then begin
        t.fl_tick <- 0;
        F.record r ev_hit t.hits 0 0
      end
      else t.fl_tick <- tk

let note_miss t =
  t.misses <- t.misses + 1;
  match t.flight with
  | None -> ()
  | Some r -> F.record r ev_miss t.misses 0 0

let note_evict t =
  t.evictions <- t.evictions + 1;
  match t.flight with
  | None -> ()
  | Some r -> F.record r ev_evict t.evictions 0 0
let size t = Lru.size t.table
let capacity t = Lru.capacity t.table

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let drop_hint t =
  t.last_key <- "";
  t.last_entry <- None

let arm_hint t key e =
  t.last_key <- key;
  t.last_entry <- Some e

let clear t =
  drop_hint t;
  Lru.clear t.table

(* The cache key: the raw basic-header + FN-definition prefix, with
   the hop-limit byte masked out (it decrements per hop but does not
   change the program). Packets of the same realization carry
   byte-identical prefixes, so the key is exact — no canonicalization
   or hashing ambiguity. [None] when the buffer cannot contain the
   prefix it announces; the cold parser then reports the right error. *)
let key_of buf =
  if Bitbuf.length buf < Header.basic_size then None
  else
    let fn_num = Bitbuf.get_uint8 buf 1 in
    let prefix = Header.basic_size + (fn_num * Fn.size) in
    if prefix > Bitbuf.length buf then None
    else begin
      let b = Bitbuf.sub_bytes buf ~pos:0 ~len:prefix in
      Bytes.set b 2 '\000';
      Some (Bytes.unsafe_to_string b)
    end

let view_of_entry e buf =
  {
    Packet.header =
      { e.header with Header.hop_limit = Bitbuf.get_uint8 buf 2 };
    fns = e.fns;
    loc_base = e.loc_base;
    buf;
  }

let insert t key (view : Packet.view) =
  let e =
    {
      header = { view.Packet.header with Header.hop_limit = 0 };
      header_len = Header.header_length view.Packet.header;
      fns = view.Packet.fns;
      loc_base = view.Packet.loc_base;
      depth = -1;
      verdict = None;
    }
  in
  (* [insert] is only reached on a miss, so the key is new: a full
     table means the LRU victim is about to be displaced. The victim
     could be the hinted entry, so the hint is dropped — it must not
     serve an entry whose verdict a later re-insert could contradict. *)
  if Lru.size t.table = Lru.capacity t.table then begin
    note_evict t;
    drop_hint t
  end;
  Lru.insert t.table key e;
  arm_hint t key e;
  e

(* Does [buf]'s program prefix equal [key], hop-limit byte ignored?
   Byte 1 of the key is FN_Num, so byte equality implies the two
   prefixes have the same length — no allocation, no hashing. *)
let key_matches buf key =
  let klen = String.length key in
  klen > 0
  && Bitbuf.length buf >= klen
  && begin
       let i = ref 0 in
       while
         !i < klen
         && (!i = 2
            || Bitbuf.get_uint8 buf !i = Char.code (String.unsafe_get key !i))
       do
         incr i
       done;
       !i = klen
     end

let parse t buf =
  match t.last_entry with
  | Some e when key_matches buf t.last_key ->
      (* Same program as the previous packet: serve it without
         touching the key or the LRU (the hint is the LRU's MRU by
         construction). The packet must still be long enough for the
         header the prefix announces. *)
      if e.header_len > Bitbuf.length buf then
        Error "header exceeds packet bounds"
      else begin
        note_hit t;
        Ok (view_of_entry e buf, Some e)
      end
  | _ -> (
      match key_of buf with
      | None -> (
          (* Too short to hold its own FN definitions: always an error,
             and not a meaningful cache event. *)
          match Packet.parse buf with
          | Ok view -> Ok (view, None)
          | Error e -> Error e)
      | Some key -> (
          match Lru.find t.table key with
          | Some e ->
              (* Same program prefix, but the packet must still be long
                 enough for the header the prefix announces (the
                 locations region lies beyond the keyed bytes). *)
              if e.header_len > Bitbuf.length buf then
                Error "header exceeds packet bounds"
              else begin
                note_hit t;
                arm_hint t key e;
                Ok (view_of_entry e buf, Some e)
              end
          | None -> (
              match Packet.parse buf with
              | Error _ as err -> err
              | Ok view ->
                  note_miss t;
                  Ok (view, Some (insert t key view)))))

(* --- batch parse hint -------------------------------------------- *)

type hint = { mutable hkey : string; mutable hentry : entry option }

let hint () = { hkey = ""; hentry = None }

let parse_hinted t h buf =
  match h.hentry with
  | Some e when key_matches buf h.hkey ->
      (* Same program as the previous packet of the batch: skip the
         key allocation and the LRU probe entirely. Counted as a hit
         so batch and per-packet accounting agree. *)
      if e.header_len > Bitbuf.length buf then
        Error "header exceeds packet bounds"
      else begin
        note_hit t;
        Ok (view_of_entry e buf, Some e)
      end
  | _ -> (
      match key_of buf with
      | None -> (
          match Packet.parse buf with
          | Ok view -> Ok (view, None)
          | Error e -> Error e)
      | Some key -> (
          match Lru.find t.table key with
          | Some e ->
              if e.header_len > Bitbuf.length buf then
                Error "header exceeds packet bounds"
              else begin
                note_hit t;
                h.hkey <- key;
                h.hentry <- Some e;
                Ok (view_of_entry e buf, Some e)
              end
          | None -> (
              match Packet.parse buf with
              | Error _ as err -> err
              | Ok view ->
                  note_miss t;
                  let e = insert t key view in
                  h.hkey <- key;
                  h.hentry <- Some e;
                  Ok (view, Some e))))

let invalidate_key t key =
  let victims =
    Lru.fold
      (fun k e acc ->
        if Array.exists (fun fn -> Opkey.equal fn.Fn.key key) e.fns then
          k :: acc
        else acc)
      t.table []
  in
  List.iter (fun k -> ignore (Lru.remove t.table k)) victims;
  if victims <> [] then drop_hint t;
  List.length victims
