(** Decoded-FN-program cache: the engine's hot-path fast path.

    Every DIP packet of one realization carries a byte-identical
    program prefix — the basic header (minus the hop limit, which
    decrements per hop) plus the FN-definition triples. P4-style
    pipelines get their speed by compiling the protocol program once
    and streaming packets through it (§4.1 pre-written operation
    modules); this cache is the software-dataplane analogue: the
    first packet of a program pays the full parse (and, when the
    engine runs with a [?verify] pre-check, the full static
    analysis), every later packet reuses the decoded [Fn.t array],
    the memoized verification verdict and the memoized critical-path
    depth.

    One cache per {!Env} (routers differ in registry, so verdicts
    must not be shared across nodes). Control-plane FN
    install/upgrade ({!Control}) invalidates the affected entries;
    mutating a registry behind the engine's back without going
    through [Control] requires an explicit {!clear}. *)

type entry = {
  header : Header.t;  (** as parsed, with [hop_limit] forced to 0 *)
  header_len : int;  (** total header length — hit-time bounds check *)
  fns : Fn.t array;
  loc_base : int;
  mutable depth : int;
      (** memoized {!Engine.critical_path} over the full program;
          [-1] until the engine first needs it *)
  mutable verdict :
    ((Packet.view -> (unit, string) result) * (unit, string) result) option;
      (** memoized result of the engine's [?verify] pre-check,
          tagged with the hook that produced it (compared physically
          by {!Engine.check_view}): a different verifier re-checks
          instead of inheriting another hook's verdict *)
}

type t

val create : ?capacity:int -> unit -> t
(** LRU-bounded cache of at most [capacity] (default 512) distinct
    programs. [capacity = 0] creates a disabled cache. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** The [--no-program-cache] escape hatch: a disabled cache makes
    {!Engine} fall back to cold parsing. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Programs displaced by LRU pressure (capacity overflow). A high
    evict rate means the working set of distinct programs exceeds
    the cache — the signal the observability layer watches. *)

val reset_counters : t -> unit
val size : t -> int
val capacity : t -> int

val set_flight : t -> Dip_obs.Flight.ring option -> unit
(** Arm (or disarm) a flight-recorder ring: cache events are recorded
    as ["progcache.hit"] (sampled 1-in-16, a0 = running hit total),
    ["progcache.miss"] and ["progcache.evict"] instants (every one,
    a0 = running total). The ring must belong to the domain whose
    engine owns this cache. *)

val flight : t -> Dip_obs.Flight.ring option

val key_of : Dip_bitbuf.Bitbuf.t -> string option
(** The raw basic-header + FN-definition prefix with the hop-limit
    byte zeroed; [None] when the buffer is shorter than the prefix it
    announces. Exposed for tests. *)

val parse : t -> Dip_bitbuf.Bitbuf.t -> (Packet.view * entry option, string) result
(** {!Packet.parse} through the cache. On a hit the returned view
    shares the cached FN array and header (with the packet's actual
    hop limit patched in); on a miss the cold parse result is
    inserted. The entry is [None] only when the packet is too
    malformed to be keyed. Cached parse and cold parse agree on every
    packet, including errors.

    A run of same-program packets (the steady state of a forwarding
    router) is served by an inline single-entry hint: a byte
    comparison against the last program's prefix, no allocation, no
    LRU probe. The hint is dropped on {!clear}, {!invalidate_key} and
    eviction, so it never outlives the entry it points to. *)

type hint
(** A one-batch parse memo: remembers the last program prefix parsed
    through it so a run of same-program packets (the steady state of
    a forwarding router, and the common shape of a batch) skips both
    the key allocation and the LRU probe. A hint must not outlive the
    batch it was created for: cache invalidation ({!clear},
    {!invalidate_key}, {!Control} updates) does not reach into live
    hints. *)

val hint : unit -> hint

val parse_hinted :
  t -> hint -> Dip_bitbuf.Bitbuf.t -> (Packet.view * entry option, string) result
(** {!parse}, amortized: when the packet's prefix matches the hint's
    remembered program (hop-limit byte ignored), the cached entry is
    reused without touching the LRU; otherwise it falls back to
    {!parse} semantics and re-arms the hint. Hit/miss accounting is
    identical to {!parse}. *)

val clear : t -> unit
(** Drop every entry (registry changed outside {!Control}). *)

val invalidate_key : t -> Opkey.t -> int
(** Drop the entries whose program uses the given operation key —
    the {!Control} FN install/upgrade hook. Returns how many entries
    were dropped. *)
