type port = Dip_netsim.Sim.port

type scratch = {
  mutable opt_key : Dip_opt.Drkey.session_key option;
  mutable emit : (Dip_netsim.Sim.port * Dip_bitbuf.Bitbuf.t) list;
}

type t = {
  name : string;
  v4_routes : port Dip_tables.Fib.V4.t;
  v6_routes : port Dip_tables.Fib.V6.t;
  mutable local_v4 : Dip_tables.Ipaddr.V4.t option;
  mutable local_v6 : Dip_tables.Ipaddr.V6.t option;
  fib : port Dip_tables.Name_fib.t;
  pit : int32 Dip_tables.Pit.t;
  cache : (int32, string) Dip_tables.Lru.t option;
  interest_lifetime : float;
  mutable opt_secret : Dip_opt.Drkey.secret option;
  mutable opt_hop : int;
  opt_alg : Dip_opt.Protocol.alg;
  opt_sessions :
    (int64, Dip_opt.Drkey.session_key list * Dip_opt.Drkey.session_key) Hashtbl.t;
  xia : Dip_xia.Router.t;
  mutable pass_key : Dip_crypto.Siphash.key option;
  mutable pass_enabled : bool;
  mutable netfence : Dip_netfence.Policer.t option;
  mutable node_id : int;
  mutable queue_depth : unit -> int;
  guard : Guard.t;
  counters : Dip_netsim.Stats.Counters.t;
  scratch : scratch;
  prog_cache : Progcache.t;
  mutable custody :
    (int32, Dip_bitbuf.Bitbuf.t) Dip_tables.Custody_store.t option;
}

let create ?(cache_capacity = 0) ?(pit_capacity = 65536)
    ?(interest_lifetime = 4.0) ?(opt_alg = Dip_opt.Protocol.EM2) ?guard
    ?(prog_cache_capacity = 512) ~name () =
  {
    name;
    v4_routes = Dip_tables.Fib.V4.create ();
    v6_routes = Dip_tables.Fib.V6.create ();
    local_v4 = None;
    local_v6 = None;
    fib = Dip_tables.Name_fib.create ();
    pit = Dip_tables.Pit.create ~capacity:pit_capacity ();
    cache =
      (if cache_capacity > 0 then
         Some (Dip_tables.Lru.create ~capacity:cache_capacity ())
       else None);
    interest_lifetime;
    opt_secret = None;
    opt_hop = 1;
    opt_alg;
    opt_sessions = Hashtbl.create 8;
    xia = Dip_xia.Router.create ();
    pass_key = None;
    pass_enabled = false;
    netfence = None;
    node_id = 0;
    queue_depth = (fun () -> 0);
    guard = (match guard with Some g -> g | None -> Guard.create ());
    counters = Dip_netsim.Stats.Counters.create ();
    scratch = { opt_key = None; emit = [] };
    prog_cache = Progcache.create ~capacity:prog_cache_capacity ();
    custody = None;
  }

let set_opt_identity t ~secret ~hop =
  if hop < 1 then invalid_arg "Env.set_opt_identity: hops are 1-based";
  t.opt_secret <- Some secret;
  t.opt_hop <- hop

let register_opt_session t ~session_id ~session_keys ~dest_key =
  Hashtbl.replace t.opt_sessions session_id (session_keys, dest_key)

let enable_pass t ~key =
  t.pass_key <- Some key;
  t.pass_enabled <- true

let disable_pass t = t.pass_enabled <- false

let set_netfence t p = t.netfence <- Some p

let set_telemetry_identity t ~node_id ~queue_depth =
  t.node_id <- node_id;
  t.queue_depth <- queue_depth

let cache_find t h =
  match t.cache with Some c -> Dip_tables.Lru.find c h | None -> None

let cache_insert t h v =
  match t.cache with Some c -> Dip_tables.Lru.insert c h v | None -> ()

let publish_cache_stats t =
  Dip_netsim.Stats.Counters.set t.counters "progcache.hit"
    (Progcache.hits t.prog_cache);
  Dip_netsim.Stats.Counters.set t.counters "progcache.miss"
    (Progcache.misses t.prog_cache);
  Dip_netsim.Stats.Counters.set t.counters "progcache.evict"
    (Progcache.evictions t.prog_cache)
