module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type view = {
  header : Header.t;
  fns : Fn.t array;
  loc_base : int;
  buf : Bitbuf.t;
}

let fn_in_bounds ~loc_len_bytes (fn : Fn.t) =
  Field.last_bit fn.Fn.field <= 8 * loc_len_bytes

let build ?(next_header = 0) ?(hop_limit = 64) ?(parallel = false) ~fns
    ~locations ~payload () =
  let fn_num = List.length fns in
  if fn_num > 255 then invalid_arg "Dip.Packet.build: more than 255 FNs";
  let fn_loc_len = String.length locations in
  if fn_loc_len > Header.max_fn_loc_len then
    invalid_arg "Dip.Packet.build: FN locations exceed 1023 bytes";
  List.iter
    (fun fn ->
      if not (fn_in_bounds ~loc_len_bytes:fn_loc_len fn) then
        invalid_arg
          (Format.asprintf
             "Dip.Packet.build: FN %a exceeds the %d-byte locations region"
             Fn.pp fn fn_loc_len))
    fns;
  let header =
    { Header.next_header; fn_num; hop_limit; parallel; fn_loc_len }
  in
  let total = Header.header_length header + String.length payload in
  let buf = Bitbuf.create total in
  Header.encode header buf;
  List.iteri (fun i fn -> Fn.encode fn buf ~pos:(Header.fn_offset i)) fns;
  let loc_off = Header.locations_offset header in
  Bitbuf.blit ~src:(Bitbuf.of_string locations) ~src_off:0 ~dst:buf
    ~dst_off:loc_off ~len:fn_loc_len;
  Bitbuf.blit ~src:(Bitbuf.of_string payload) ~src_off:0 ~dst:buf
    ~dst_off:(Header.payload_offset header) ~len:(String.length payload);
  buf

(* Decode the FN definitions straight into an array — the hot path
   must not build an intermediate list per packet. *)
let parse_fns buf (header : Header.t) =
  let n = header.Header.fn_num in
  let decode i =
    match Fn.decode buf ~pos:(Header.fn_offset i) with
    | Error e -> Error (Printf.sprintf "FN %d: %s" (i + 1) e)
    | Ok fn ->
        if fn_in_bounds ~loc_len_bytes:header.Header.fn_loc_len fn then Ok fn
        else
          Error (Printf.sprintf "FN %d: target exceeds locations region" (i + 1))
  in
  if n = 0 then Ok [||]
  else
    match decode 0 with
    | Error e -> Error e
    | Ok fn0 ->
        let fns = Array.make n fn0 in
        let rec fill i =
          if i = n then Ok fns
          else
            match decode i with
            | Error e -> Error e
            | Ok fn ->
                fns.(i) <- fn;
                fill (i + 1)
        in
        fill 1

let parse buf =
  match Header.decode buf with
  | Error e -> Error e
  | Ok header -> (
      match parse_fns buf header with
      | Error e -> Error e
      | Ok fns ->
          Ok { header; fns; loc_base = Header.locations_offset header; buf })

let header_size buf =
  match Header.decode buf with
  | Error e -> Error e
  | Ok h -> Ok (Header.header_length h)

let locations_field view (fn : Fn.t) =
  Field.v
    ~off_bits:((8 * view.loc_base) + fn.Fn.field.Field.off_bits)
    ~len_bits:fn.Fn.field.Field.len_bits

let get_target view fn = Bitbuf.get_field view.buf (locations_field view fn)
let set_target view fn v = Bitbuf.set_field view.buf (locations_field view fn) v

let payload view =
  let off = Header.payload_offset view.header in
  Bitbuf.sub_string view.buf ~pos:off ~len:(Bitbuf.length view.buf - off)
