(** The host side of DIP — §2.3 "Host Constructions".

    "Before sending the data packets, the host needs to formulate
    appropriate FNs in the packet header considering both the
    required network services and the supported FNs."

    A {!t} bundles a host's environment (its {!Env.t}, used by the
    host-tagged operations such as {i F_ver}) with the set of FNs its
    attachment point offers (learned via {!Bootstrap}); every [send_*]
    constructor first checks its requirements against that offer and
    refuses with the missing keys instead of emitting a packet the
    network cannot process. *)

type t

val create : ?offer:Opkey.t list -> name:string -> unit -> t
(** A host. Without [offer] every operation is assumed available
    (an all-DIP network, the §2.3 simplification). *)

val env : t -> Env.t
(** The host's environment (session table, local addresses, …). *)

val attach : t -> Bootstrap.t -> as_id:int -> unit
(** DHCP-style bootstrap: adopt the access AS's offer (§2.3). Raises
    [Not_found] for an unknown AS. *)

val attach_path : t -> Bootstrap.t -> src:int -> dst:int -> (unit, string) result
(** BGP-community-style bootstrap: adopt the intersection of support
    along the AS path — the safe set for all-path operations. *)

val offer : t -> Opkey.t list option
(** Currently known offer ([None] = everything). *)

val check : t -> Opkey.t list -> (unit, Opkey.t list) result
(** Which of the required keys the network cannot serve. *)

type 'a construction = ('a, Opkey.t list) result
(** Either the packet, or the operation keys the attachment point
    lacks. *)

val send_ipv4 :
  t ->
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_ipv6 :
  t ->
  ?hop_limit:int ->
  src:Dip_tables.Ipaddr.V6.t ->
  dst:Dip_tables.Ipaddr.V6.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_interest :
  t ->
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Dip_tables.Name.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val open_opt_session :
  t ->
  session_id:int64 ->
  path_secrets:Dip_opt.Drkey.secret list ->
  dst_secret:Dip_opt.Drkey.secret ->
  unit
(** Model of OPT key negotiation: derive and store the session keys
    of every on-path router plus the destination key, so incoming
    packets can be verified by {i F_ver}. The transport of the
    negotiation is elided (DESIGN.md §2). *)

val send_opt :
  t ->
  ?hop_limit:int ->
  session_id:int64 ->
  timestamp:int32 ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** Build an OPT packet for a previously opened session. Raises
    [Not_found] if the session is unknown. *)

val send_data :
  t ->
  ?hop_limit:int ->
  ?pass:Dip_crypto.Siphash.key ->
  name:Dip_tables.Name.t ->
  content:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** An NDN data packet (producer side). *)

val send_xia :
  t ->
  ?hop_limit:int ->
  dag:Dip_xia.Dag.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction

val send_epic :
  t ->
  ?hop_limit:int ->
  src_id:int32 ->
  timestamp:int32 ->
  path_secrets:Dip_opt.Drkey.secret list ->
  src:Dip_tables.Ipaddr.V4.t ->
  dst:Dip_tables.Ipaddr.V4.t ->
  payload:string ->
  unit ->
  Dip_bitbuf.Bitbuf.t construction
(** EPIC composed with DIP-32 forwarding; hop keys are derived from
    the path secrets obtained at setup (DRKey model). *)

val receive :
  t ->
  registry:Registry.t ->
  now:float ->
  Dip_bitbuf.Bitbuf.t ->
  Engine.verdict
(** Run the host side of Algorithm 1 (host-tagged FNs only). *)

(** A minimal reliable transport over DIP-32 forwarding, built for
    the fault-injection experiments ({!Dip_netsim.Faults}).

    Data and ACK packets are ordinary DIP-32 packets (F_32_match +
    F_source), so any router stack routes them; the locations region
    additionally carries a 32-bit sequence number and a CRC-32 over
    [locations\[0..12)] + payload (the basic header is excluded — hop
    limit legitimately mutates in flight). Receivers drop packets
    failing the CRC with reason {!Errors.integrity_reason} and dedup
    by sequence number, re-ACKing duplicates; senders retransmit on a
    timer with exponential backoff plus seeded uniform jitter. All
    randomness is a {!Dip_stdext.Prng} stream, so runs are
    deterministic per seed. *)
module Reliable : sig
  module Sim = Dip_netsim.Sim

  val data_next_header : int
  (** 0xFD — reliable data. *)

  val ack_next_header : int
  (** 0xFC — reliable ACK. *)

  val self_port : Sim.port
  (** The virtual ingress the sender self-injects (re)transmissions
      on (timers cannot return [Forward] actions). Must not be wired
      on a sender node. *)

  type config = {
    rto : float;  (** initial retransmit timeout, seconds *)
    backoff : float;  (** timeout multiplier per retry, ≥ 1 *)
    rto_max : float;  (** ceiling the backed-off timeout is clamped to
                          (before jitter); must be ≥ [rto] *)
    max_jitter : float;  (** uniform extra timeout in [\[0, max_jitter)] *)
    max_retries : int;  (** retransmissions after the first try; 0 disables
                            retransmission entirely *)
  }

  val default_config : config
  (** [rto = 50ms; backoff = 2; rto_max = ∞; max_jitter = 5ms;
      max_retries = 8]. The infinite [rto_max] preserves the historic
      unclamped backoff. *)

  type sender

  val add_sender :
    ?config:config ->
    ?custody:bool ->
    Sim.t ->
    name:string ->
    seed:int64 ->
    src:Dip_tables.Ipaddr.V4.t ->
    dst:Dip_tables.Ipaddr.V4.t ->
    out_port:Sim.port ->
    sender
  (** Create the sending endpoint as a simulator node. Wire its
      [out_port] toward the network; ACKs are accepted on any wired
      ingress. With [~custody:true] every data packet carries the
      F_cust custody-request FN ({!Custody}): custodian routers along
      the path may take over delivery, in which case the sender stops
      retransmitting as soon as the first hop-local custody ACK
      arrives (counted in [custodied], not [acked]). *)

  val send : sender -> at:float -> payload:string -> unit
  (** Queue one payload for reliable delivery at simulated time
      [at]. Sequence numbers are assigned in call order. *)

  val sender_node : sender -> Sim.node_id

  type sender_stats = {
    sent : int;  (** unique payloads handed to {!send} *)
    transmissions : int;  (** wire transmissions incl. retransmits *)
    acked : int;  (** end-to-end ACKs *)
    custodied : int;  (** sequences handed off to a custodian router *)
    gave_up : int;  (** sequences abandoned after [max_retries] *)
    in_flight : int;  (** sent, not yet acked, custodied or abandoned *)
  }

  val sender_stats : sender -> sender_stats

  type receiver

  val add_receiver : Sim.t -> name:string -> receiver * Sim.node_id
  (** Create the receiving endpoint as a simulator node. Valid new
      data is [Consume]d (so it appears in {!Sim.consumed}) and
      ACKed out the ingress port; duplicates are re-ACKed and counted;
      CRC failures drop with {!Errors.integrity_reason}. *)

  val deliveries : receiver -> (int32 * float) list
  (** First delivery of each sequence, in delivery order. *)

  val delivered : receiver -> int
  (** Unique sequences delivered. *)

  val duplicates : receiver -> int
  val rejected : receiver -> int
  (** Packets dropped by the integrity check. *)
end
