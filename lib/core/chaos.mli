(** A canned fault-injection experiment: a reliable host pair
    ({!Host.Reliable}) across a chain of DIP routers with a
    {!Dip_netsim.Faults} layer attached.

    The topology is [sender — r1 — … — rN — receiver]; every router
    runs the full engine (Algorithm 1) over DIP-32 FNs with static
    routes (data toward 10/8, ACKs toward 192.168/16). Faults apply
    to every link; the optional link-flap window hits the link
    downstream of the middle router and the optional crash window
    hits the middle router itself.

    Shared by [dip chaos], [bench faults] and the test suite so that
    all three exercise the identical recovery path. Fully
    deterministic per [seed]. *)

type config = {
  routers : int;  (** chain length, ≥ 1 *)
  packets : int;  (** unique payloads to send *)
  interval : float;  (** seconds between sends *)
  payload_size : int;  (** bytes per payload *)
  seed : int64;  (** drives faults (seed) and sender jitter (seed+1) *)
  spec : Dip_netsim.Faults.spec;  (** applied to all links *)
  flap : (float * float) option;  (** middle-link down window *)
  schedule : (float * float) list;
      (** additional middle-link down windows — e.g. the output of
          {!Dip_netsim.Workload.satellite_passes} for DTN runs *)
  crash : (float * float) option;  (** middle-router crash window *)
  reliable : Host.Reliable.config;
      (** set [max_retries = 0] to measure without retransmission *)
  custody : Custody.config option;
      (** [Some _] turns every router into a custodian
          ({!Custody.add_router}), marks all data packets with the
          F_cust custody request and replays held bundles on link-up *)
}

val default : config
(** 3 routers, 200 packets at 10 ms spacing, 32-byte payloads, seed
    42, no faults, default reliable config, no custody. *)

type report = {
  sent : int;
  delivered : int;  (** unique sequences that reached the receiver *)
  duplicates : int;
  rejected : int;  (** integrity-check drops at the endpoints *)
  transmissions : int;  (** data packets put on the wire *)
  acked : int;
  custodied : int;  (** sequences the sender handed to a custodian *)
  gave_up : int;
  in_flight : int;  (** unacked at drain — 0 when every fate resolved *)
  delivery_rate : float;  (** delivered / sent *)
  latency_mean : float;  (** send-to-first-delivery, seconds *)
  latency_p50 : float;
  latency_p99 : float;
  faults : (string * int) list;  (** injected faults by kind *)
  events : Dip_netsim.Faults.event list;  (** full fault schedule *)
  counters : (string * int) list;  (** simulator counters *)
  custody : (string * int) list;
      (** custody-store counters summed over all routers
          ({!Custody.stats} keys); empty without custody *)
  deliveries : (int32 * float) list;
      (** first delivery of each sequence in delivery order — lets
          callers check reruns for bit-identical behavior *)
}

val run :
  ?metrics:Dip_obs.Metrics.t -> ?flight:Dip_obs.Flight.ring -> config -> report
(** Build the network, inject the workload, drain the simulator and
    summarize. [metrics] additionally mirrors simulator and fault
    activity into a Dip_obs registry ([sim.*], [sim.fault.*]).
    [flight] records the whole experiment — engine spans (unsampled),
    program-cache traffic, window lifecycle and fault injections —
    into one caller-owned ring (everything runs on the simulator's
    domain), ready for {!Dip_obs.Export.chrome_trace}. *)
