type outcome =
  | Continue
  | Set_route of Env.port list
  | Deliver_local
  | Respond of Dip_bitbuf.Bitbuf.t
  | Silent
  | Abort of string

type ctx = {
  env : Env.t;
  view : Packet.view;
  fn : Fn.t;
  target : Dip_bitbuf.Field.t;
  ingress : Env.port;
  now : float;
  scratch : scratch;
  budget : Guard.budget;
}

and scratch = Env.scratch = {
  mutable opt_key : Dip_opt.Drkey.session_key option;
  mutable emit : (Env.port * Dip_bitbuf.Bitbuf.t) list;
}

type impl = ctx -> outcome

type mode = Read | Write | Read_write

type access = {
  target : mode;
  reads_scratch : bool;
  writes_scratch : bool;
  forwarding : bool;
}

let ro = { target = Read; reads_scratch = false; writes_scratch = false;
           forwarding = false }

(* Declared access modes, one per operation module. These mirror what
   the implementations in Ops actually do to their target slice and
   to the per-packet scratch; the static analyzer builds its hazard
   and dependency graphs from this table, so an operation that starts
   mutating its target must update its row here. *)
let access = function
  | Opkey.F_32_match | Opkey.F_128_match -> { ro with forwarding = true }
  | Opkey.F_source -> ro
  | Opkey.F_fib | Opkey.F_pit -> { ro with forwarding = true }
  | Opkey.F_parm -> { ro with writes_scratch = true }
  | Opkey.F_mac | Opkey.F_mark ->
      { ro with target = Read_write; reads_scratch = true }
  | Opkey.F_ver -> ro
  | Opkey.F_dag -> { ro with target = Read_write; forwarding = true }
  | Opkey.F_intent -> { ro with forwarding = true }
  | Opkey.F_pass -> ro
  | Opkey.F_cc | Opkey.F_tel -> { ro with target = Read_write }
  | Opkey.F_hvf -> { ro with target = Read_write }
  | Opkey.F_cust -> { ro with target = Read_write }

let writes_target a = a.target <> Read

(* ------------------------------------------------------------------ *)
(* Declared transfer functions (abstract semantics).                   *)
(* ------------------------------------------------------------------ *)

type span = { s_off : int; s_len : int }

let whole = { s_off = 0; s_len = -1 }

type written_kind = W_step | W_node | W_data

type transfer = {
  t_reads : span list;
  t_reads_region : bool;
  t_writes : (span * written_kind) list;
  t_consumes : string list;
  t_produces : string list;
  t_match : bool;
  t_deliver : bool;
}

let pure = {
  t_reads = [ whole ];
  t_reads_region = false;
  t_writes = [];
  t_consumes = [];
  t_produces = [];
  t_match = false;
  t_deliver = false;
}

(* One row per operation key: the abstract effect of running the FN on
   its target slice, the locations region and the per-packet scratch.
   The Dip_analysis abstract interpreter executes these rows instead of
   the real implementations, so a new side effect in Ops must be
   declared here or the analyzer will certify unsound programs. *)
let transfer = function
  | Opkey.F_32_match | Opkey.F_128_match ->
      { pure with t_match = true; t_deliver = true }
  | Opkey.F_source -> pure
  | Opkey.F_fib | Opkey.F_pit -> { pure with t_match = true }
  | Opkey.F_parm -> { pure with t_produces = [ "opt_key" ] }
  | Opkey.F_mac | Opkey.F_mark ->
      { pure with
        t_writes = [ (whole, W_data) ];
        t_consumes = [ "opt_key" ] }
  | Opkey.F_ver -> { pure with t_deliver = true }
  | Opkey.F_dag ->
      (* rewrites only the XIA next-pointer byte of its own DAG *)
      { pure with t_writes = [ ({ s_off = 0; s_len = 8 }, W_step) ];
        t_match = true }
  | Opkey.F_intent -> { pure with t_match = true; t_deliver = true }
  | Opkey.F_pass -> { pure with t_reads_region = true }
  | Opkey.F_cc | Opkey.F_tel ->
      { pure with t_writes = [ (whole, W_node) ] }
  | Opkey.F_hvf -> { pure with t_writes = [ (whole, W_data) ] }
  | Opkey.F_cust ->
      (* flips only the in-custody bit of the leading tag byte; the
         bundle id is read-only *)
      { pure with t_writes = [ ({ s_off = 0; s_len = 8 }, W_node) ] }

let resolve_span ~(field : Dip_bitbuf.Field.t) ~region_bits s =
  let off = field.Dip_bitbuf.Field.off_bits + s.s_off in
  let len =
    if s.s_len < 0 then field.Dip_bitbuf.Field.len_bits - s.s_off
    else s.s_len
  in
  let len = min len (field.Dip_bitbuf.Field.len_bits - s.s_off) in
  let len = min len (region_bits - off) in
  if len <= 0 || off < 0 then None
  else Some (Dip_bitbuf.Field.v ~off_bits:off ~len_bits:len)

type t = (Opkey.t, impl) Hashtbl.t

let empty () : t = Hashtbl.create 16
let install t key impl = Hashtbl.replace t key impl
let uninstall t key = Hashtbl.remove t key
let find t key = Hashtbl.find_opt t key
let supports t key = Hashtbl.mem t key

let supported t =
  List.filter (fun k -> supports t k) Opkey.all

let restrict t keys =
  let r = empty () in
  List.iter
    (fun k -> match find t k with Some impl -> install r k impl | None -> ())
    keys;
  r
