type outcome =
  | Continue
  | Set_route of Env.port list
  | Deliver_local
  | Respond of Dip_bitbuf.Bitbuf.t
  | Silent
  | Abort of string

type ctx = {
  env : Env.t;
  view : Packet.view;
  fn : Fn.t;
  target : Dip_bitbuf.Field.t;
  ingress : Env.port;
  now : float;
  scratch : scratch;
  budget : Guard.budget;
}

and scratch = Env.scratch = {
  mutable opt_key : Dip_opt.Drkey.session_key option;
}

type impl = ctx -> outcome

type mode = Read | Write | Read_write

type access = {
  target : mode;
  reads_scratch : bool;
  writes_scratch : bool;
  forwarding : bool;
}

let ro = { target = Read; reads_scratch = false; writes_scratch = false;
           forwarding = false }

(* Declared access modes, one per operation module. These mirror what
   the implementations in Ops actually do to their target slice and
   to the per-packet scratch; the static analyzer builds its hazard
   and dependency graphs from this table, so an operation that starts
   mutating its target must update its row here. *)
let access = function
  | Opkey.F_32_match | Opkey.F_128_match -> { ro with forwarding = true }
  | Opkey.F_source -> ro
  | Opkey.F_fib | Opkey.F_pit -> { ro with forwarding = true }
  | Opkey.F_parm -> { ro with writes_scratch = true }
  | Opkey.F_mac | Opkey.F_mark ->
      { ro with target = Read_write; reads_scratch = true }
  | Opkey.F_ver -> ro
  | Opkey.F_dag -> { ro with target = Read_write; forwarding = true }
  | Opkey.F_intent -> { ro with forwarding = true }
  | Opkey.F_pass -> ro
  | Opkey.F_cc | Opkey.F_tel -> { ro with target = Read_write }
  | Opkey.F_hvf -> { ro with target = Read_write }

let writes_target a = a.target <> Read

type t = (Opkey.t, impl) Hashtbl.t

let empty () : t = Hashtbl.create 16
let install t key impl = Hashtbl.replace t key impl
let uninstall t key = Hashtbl.remove t key
let find t key = Hashtbl.find_opt t key
let supports t key = Hashtbl.mem t key

let supported t =
  List.filter (fun k -> supports t k) Opkey.all

let restrict t keys =
  let r = empty () in
  List.iter
    (fun k -> match find t k with Some impl -> install r k impl | None -> ())
    keys;
  r
