(** The operation-module registry and the semantics shared by all
    operation implementations.

    "Runtime programmability has not yet been implemented on Barefoot
    Tofino, so we pre-write the required operation modules on the
    data plane and use the operation key to match these operation
    modules" (§4.1). A registry is a node's installed set of
    operation modules; heterogeneous deployments (§2.4) are nodes
    with different registries. *)

(** What one operation may do. Algorithm 1 executes {e all} FNs of a
    packet, so a forwarding choice must not abort the loop — an
    NDN+OPT interest both matches the FIB and updates MAC tags. *)
type outcome =
  | Continue  (** pure field manipulation; keep going *)
  | Set_route of Env.port list
      (** propose forwarding port(s); first proposal wins *)
  | Deliver_local  (** propose local delivery *)
  | Respond of Dip_bitbuf.Bitbuf.t
      (** answer with a new packet out of the ingress port (e.g. a
          content-store hit turning an interest into data) *)
  | Silent  (** drop the loop without error (aggregated interest) *)
  | Abort of string  (** security/sanity failure: drop now *)

(** Everything an operation sees: Algorithm 1's [target_field]
    resolved to an absolute bit range, plus node state and per-packet
    scratch. *)
type ctx = {
  env : Env.t;
  view : Packet.view;
  fn : Fn.t;
  target : Dip_bitbuf.Field.t;  (** absolute position in [view.buf] *)
  ingress : Env.port;
  now : float;
  scratch : scratch;
  budget : Guard.budget;  (** §2.4 per-packet state/ops allowance *)
}

(** Per-packet scratch shared between the FNs of one packet: F_parm
    deposits the derived OPT key here, F_MAC/F_mark consume it, and
    F_cust pushes auxiliary transmissions (custody ACKs) onto [emit]
    for {!Engine.actions_of_verdict} to drain. The engine reuses
    {!Env.scratch} (one record per node) rather than allocating per
    packet. *)
and scratch = Env.scratch = {
  mutable opt_key : Dip_opt.Drkey.session_key option;
  mutable emit : (Env.port * Dip_bitbuf.Bitbuf.t) list;
}

type impl = ctx -> outcome
(** One operation module. *)

(** How an operation touches its target field slice. *)
type mode = Read | Write | Read_write

(** Declared (static) behaviour of an operation module: what it does
    to its target slice, whether it consumes or produces the
    per-packet scratch ({!scratch}), and whether it may propose a
    forwarding/delivery decision. This is the metadata the
    {!Dip_analysis} verifier reasons over — the §2.2 parallel bit is
    only safe when no two FNs race on overlapping slices. *)
type access = {
  target : mode;
  reads_scratch : bool;  (** consumes [scratch.opt_key] (F_MAC, F_mark) *)
  writes_scratch : bool;  (** deposits [scratch.opt_key] (F_parm) *)
  forwarding : bool;
      (** may return [Set_route]/[Deliver_local] on a router — the
          operations a host-tagged FN would silently disable *)
}

val access : Opkey.t -> access
(** The declared access mode of an operation key. Total: every key in
    Table 1 (plus this repo's extensions) has a row. *)

val writes_target : access -> bool
(** [true] when the target mode is [Write] or [Read_write]. *)

(** {1 Transfer functions}

    The coarse {!access} row says {e whether} an operation touches its
    target; the transfer function says {e which bit slices} it reads
    and writes, how the written value relates to the packet, and which
    scratch cells it consumes or produces. This is the declared
    abstract semantics the {!Dip_analysis} interpreter executes. *)

type span = { s_off : int; s_len : int }
(** A slice of the FN's target field, in bits relative to the target's
    own offset. [s_len = -1] means "to the end of the target". *)

val whole : span
(** The entire target field. *)

(** How a written slice relates to the inputs — this is what the
    Sharding check keys on:
    - [W_step]: a deterministic in-place step of the field's own value
      (e.g. F_dag advancing the XIA DAG pointer). Every replica
      applies the same rewrite, so flow affinity survives.
    - [W_node]: node-local data appended/overwritten (telemetry
      records, congestion feedback) — different per node and hop.
    - [W_data]: packet- or key-derived data (MACs, per-hop validation
      fields). *)
type written_kind = W_step | W_node | W_data

type transfer = {
  t_reads : span list;  (** slices of the target the FN reads *)
  t_reads_region : bool;
      (** reads the whole locations region beyond its target (F_pass
          hashes every byte of the region) *)
  t_writes : (span * written_kind) list;  (** slices the FN writes *)
  t_consumes : string list;  (** scratch cells read (e.g. ["opt_key"]) *)
  t_produces : string list;  (** scratch cells written *)
  t_match : bool;
      (** matches the target value against a node table to pick a
          route (the slice {!Dip_mcore.Flow} hashes on) *)
  t_deliver : bool;  (** may propose local delivery *)
}

val transfer : Opkey.t -> transfer
(** The declared transfer function of an operation key. Total, and
    kept consistent with {!access} (checked by the test suite). *)

val resolve_span :
  field:Dip_bitbuf.Field.t -> region_bits:int -> span ->
  Dip_bitbuf.Field.t option
(** Resolve a target-relative span against a concrete FN target field,
    clipping to the target and to the locations region. [None] when
    the clipped slice is empty. *)

type t

val empty : unit -> t
val install : t -> Opkey.t -> impl -> unit
(** Pre-write an operation module; replaces an existing one. *)

val uninstall : t -> Opkey.t -> unit
val find : t -> Opkey.t -> impl option
val supports : t -> Opkey.t -> bool
val supported : t -> Opkey.t list
(** Installed keys in key order — what the §2.3 bootstrap
    advertises. *)

val restrict : t -> Opkey.t list -> t
(** A copy supporting only the listed keys (heterogeneous-AS
    configurations, §2.4). *)
