(** FN-unsupported notifications — DIP's ICMP analogue.

    §2.4: "the inbound router may receive a DIP packet carrying an FN
    that the AS has not supported yet. If this FN requires all
    on-path ASes to participate (e.g., the FN designed for path
    authentication), the router should return an FN unsupported
    message to notify the source through a mechanism similar to
    ICMP."

    The notification is itself a DIP packet whose next-header value
    marks it as control traffic; the payload names the offending
    operation key and echoes the first bytes of the rejected
    packet. *)

val next_header_value : int
(** The reserved next-header code for DIP control messages (0xFE). *)

val integrity_reason : string
(** The drop reason ["integrity-check-failed"] shared by every
    checksum-guarded receive path (see {!Host.Reliable}), so corrupted
    packets are distinguishable from policy drops in the counters. *)

val fn_unsupported :
  key:Opkey.t -> rejected:Dip_bitbuf.Bitbuf.t -> Dip_bitbuf.Bitbuf.t
(** Build the notification for a packet we refused. *)

type t = { key : Opkey.t; echo : string }

val parse : Dip_bitbuf.Bitbuf.t -> (t, string) result
(** Recognize and decode a notification; [Error] if the packet is
    not one. *)

val is_control : Dip_bitbuf.Bitbuf.t -> bool
