module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
module Ipaddr = Dip_tables.Ipaddr
module Pit = Dip_tables.Pit
open Registry

(* --- IP forwarding (keys 1-3) --- *)

let f_32_match ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 32 then Abort "f32: field must be 32 bits"
  else
    let dst = Int64.to_int32 (Bitbuf.get_uint ctx.view.Packet.buf ctx.target) in
    if ctx.env.Env.local_v4 = Some dst then Deliver_local
    else
      (* DIR-24-8 fast path: id-based lookup is allocation-free. *)
      let id = Dip_tables.Fib.V4.lookup_id ctx.env.Env.v4_routes dst in
      if id < 0 then Abort "no-route"
      else Set_route [ Dip_tables.Fib.V4.value ctx.env.Env.v4_routes id ]

let f_128_match ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 128 then
    Abort "f128: field must be 128 bits"
  else
    let dst = Ipaddr.V6.of_wire (Bitbuf.get_field ctx.view.Packet.buf ctx.target) in
    if ctx.env.Env.local_v6 = Some dst then Deliver_local
    else
      let hi, lo = dst in
      let id = Dip_tables.Fib.V6.lookup_id ctx.env.Env.v6_routes hi lo in
      if id < 0 then Abort "no-route"
      else Set_route [ Dip_tables.Fib.V6.value ctx.env.Env.v6_routes id ]

let f_source ctx =
  (* The source field only needs to be well-formed; routers do not
     act on it. *)
  match ctx.fn.Fn.field.Field.len_bits with
  | 32 | 128 -> Continue
  | _ -> Abort "source: field must be 32 or 128 bits"

(* --- NDN (keys 4-5): the prototype forwards on 32-bit hashed
   content names (§4.1). --- *)

let read_name_hash ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 32 then None
  else Some (Int64.to_int32 (Bitbuf.get_uint ctx.view.Packet.buf ctx.target))

(* A content-store hit turns the interest into a data packet sent
   back out of the ingress port: same 32-bit name in the locations,
   F_PIT replacing F_FIB, cached bytes as payload. *)
let data_packet_for ctx ~hash ~content =
  let loc = Bytes.create 4 in
  Bytes.set_int32_be loc 0 hash;
  Packet.build
    ~hop_limit:ctx.view.Packet.header.Header.hop_limit
    ~fns:[ Fn.v ~loc:0 ~len:32 Opkey.F_pit ]
    ~locations:(Bytes.to_string loc) ~payload:content ()

let f_fib ctx =
  match read_name_hash ctx with
  | None -> Abort "fib: field must be 32 bits"
  | Some hash -> (
      match Env.cache_find ctx.env hash with
      | Some content -> Respond (data_packet_for ctx ~hash ~content)
      | None -> (
          (* Record the receiving port in the PIT (paper §3), then
             match the FIB. A PIT entry is new router state, charged
             against the §2.4 budget. *)
          if not (Guard.charge_state ctx.budget ~bytes:16) then
            Abort "guard-state-exhausted"
          else
            match
              Pit.insert ctx.env.Env.pit ~key:hash ~port:ctx.ingress
                ~now:ctx.now ~lifetime:ctx.env.Env.interest_lifetime
            with
            | Pit.Aggregated -> Silent
            | Pit.Rejected -> Abort "pit-full"
            | Pit.Forwarded -> (
                match Dip_tables.Name_fib.lookup_hash ctx.env.Env.fib hash with
                | Some port -> Set_route [ port ]
                | None ->
                    ignore (Pit.consume ctx.env.Env.pit ~key:hash ~now:ctx.now);
                    Abort "no-fib-entry")))

let f_pit ctx =
  match read_name_hash ctx with
  | None -> Abort "pit: field must be 32 bits"
  | Some hash -> (
      match Pit.consume ctx.env.Env.pit ~key:hash ~now:ctx.now with
      | [] -> Abort "unsolicited-data"
      | ports ->
          Env.cache_insert ctx.env hash (Packet.payload ctx.view);
          Set_route ports)

(* --- OPT (keys 6-9) --- *)

(* An FN's target sits [span_off_bits] into its protocol region;
   recover the region's byte offset within the whole packet. *)
let fn_location_base view (fn : Fn.t) ~span_off_bits =
  let rel = fn.Fn.field.Field.off_bits - span_off_bits in
  if rel < 0 then Error "FN target before region start"
  else if rel mod 8 <> 0 then Error "region not byte aligned"
  else Ok (view.Packet.loc_base + (rel / 8))

let f_parm ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 128 then
    Abort "parm: field must be 128 bits"
  else
    match ctx.env.Env.opt_secret with
    | None -> Abort "no-opt-identity"
    | Some secret -> (
        match fn_location_base ctx.view ctx.fn ~span_off_bits:128 with
        | Error e -> Abort ("parm: " ^ e)
        | Ok base ->
            let session_id =
              Dip_opt.Header.get_session_id ctx.view.Packet.buf ~base
            in
            ctx.scratch.opt_key <-
              Some (Dip_opt.Drkey.derive secret ~session_id);
            Continue)

let f_mac ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 416 then
    Abort "mac: field must be 416 bits"
  else
    match ctx.scratch.opt_key with
    | None -> Abort "parm-not-loaded"
    | Some key -> (
        match fn_location_base ctx.view ctx.fn ~span_off_bits:0 with
        | Error e -> Abort ("mac: " ^ e)
        | Ok base ->
            let hop = ctx.env.Env.opt_hop in
            let opv_end_bits = 416 + (128 * hop) in
            let region_bits =
              8 * (ctx.view.Packet.header.Header.fn_loc_len
                   - (base - ctx.view.Packet.loc_base))
            in
            if opv_end_bits > region_bits then Abort "opv-slot-out-of-range"
            else begin
              Dip_opt.Protocol.mac_update ~alg:ctx.env.Env.opt_alg
                ctx.view.Packet.buf ~base ~hop ~key;
              Continue
            end)

let f_mark ctx =
  if ctx.fn.Fn.field.Field.len_bits <> 128 then
    Abort "mark: field must be 128 bits"
  else
    match ctx.scratch.opt_key with
    | None -> Abort "parm-not-loaded"
    | Some key -> (
        match fn_location_base ctx.view ctx.fn ~span_off_bits:288 with
        | Error e -> Abort ("mark: " ^ e)
        | Ok base ->
            Dip_opt.Protocol.mark_update ~alg:ctx.env.Env.opt_alg
              ctx.view.Packet.buf ~base ~key;
            Continue)

let f_ver ctx =
  let len = ctx.fn.Fn.field.Field.len_bits in
  if len < 544 || (len - 416) mod 128 <> 0 then
    Abort "ver: field must span 416 + 128*hops bits"
  else
    match fn_location_base ctx.view ctx.fn ~span_off_bits:0 with
    | Error e -> Abort ("ver: " ^ e)
    | Ok base -> (
        let hops = (len - 416) / 128 in
        let session_id = Dip_opt.Header.get_session_id ctx.view.Packet.buf ~base in
        match Hashtbl.find_opt ctx.env.Env.opt_sessions session_id with
        | None -> Abort "unknown-session"
        | Some (session_keys, dest_key) -> (
            if List.length session_keys <> hops then Abort "session-hop-mismatch"
            else
              match
                Dip_opt.Protocol.verify ~alg:ctx.env.Env.opt_alg
                  ctx.view.Packet.buf ~base ~hops ~session_keys ~dest_key
                  ~payload:(Some (Packet.payload ctx.view))
              with
              | Ok () -> Deliver_local
              | Error f ->
                  Abort
                    (Format.asprintf "opt-verify-failed: %a"
                       Dip_opt.Protocol.pp_failure f)))

(* --- XIA (keys 10-11) --- *)

let read_xia ctx =
  let bytes = Bitbuf.get_field ctx.view.Packet.buf ctx.target in
  match Dip_xia.Router.decode_packet (Bitbuf.of_string bytes) with
  | Ok (dag, ptr, _) -> Ok (dag, ptr)
  | Error e -> Error e

let write_xia_ptr ctx ptr =
  (* The pointer is the first byte of the target field. *)
  Bitbuf.set_uint ctx.view.Packet.buf
    (Field.v ~off_bits:ctx.target.Field.off_bits ~len_bits:8)
    (Int64.of_int ptr)

let f_dag ctx =
  match read_xia ctx with
  | Error e -> Abort ("dag: " ^ e)
  | Ok (dag, ptr) -> (
      match Dip_xia.Router.step ctx.env.Env.xia dag ~ptr with
      | Dip_xia.Router.Forward (port, ptr') ->
          write_xia_ptr ctx ptr';
          Set_route [ port ]
      | Dip_xia.Router.Deliver ptr' ->
          (* Reached the intent's owner: record progress and let
             F_intent decide delivery. *)
          write_xia_ptr ctx ptr';
          Continue
      | Dip_xia.Router.Discard reason -> Abort ("dag: " ^ reason))

let f_intent ctx =
  match read_xia ctx with
  | Error e -> Abort ("intent: " ^ e)
  | Ok (dag, ptr) ->
      if ptr = Dip_xia.Dag.intent_index dag then
        if Dip_xia.Router.is_local ctx.env.Env.xia (Dip_xia.Dag.intent dag) then
          Deliver_local
        else Abort "intent-not-local"
      else Continue

(* --- F_pass (key 12, §2.4) --- *)

let label_input ~locations ~(label_field : Field.t) =
  (* Hash the locations region with the label field zeroed, so the
     label commits to everything else the packet's FNs will read. *)
  let buf = Bitbuf.of_string locations in
  Bitbuf.set_field buf label_field (String.make ((label_field.Field.len_bits + 7) / 8) '\000');
  Bitbuf.to_string buf

let compute_pass_label key ~locations ~label_field =
  if label_field.Field.len_bits <> 32 then
    invalid_arg "compute_pass_label: label must be 32 bits";
  Dip_crypto.Siphash.hash32 key (label_input ~locations ~label_field)

let f_pass ctx =
  if not ctx.env.Env.pass_enabled then Continue
  else if ctx.fn.Fn.field.Field.len_bits <> 32 then
    Abort "pass: label must be 32 bits"
  else
    match ctx.env.Env.pass_key with
    | None -> Abort "pass: no key configured"
    | Some key ->
        let loc_len = ctx.view.Packet.header.Header.fn_loc_len in
        let locations =
          Bitbuf.get_field ctx.view.Packet.buf
            (Field.v ~off_bits:(8 * ctx.view.Packet.loc_base)
               ~len_bits:(8 * loc_len))
        in
        let expected =
          compute_pass_label key ~locations ~label_field:ctx.fn.Fn.field
        in
        let got = Int64.to_int32 (Bitbuf.get_uint ctx.view.Packet.buf ctx.target) in
        if Int32.equal expected got then Continue else Abort "pass-verify-failed"

(* --- F_cc (key 13): NetFence-style congestion policing --- *)

let f_cc ctx =
  if ctx.fn.Fn.field.Field.len_bits <> Dip_netfence.Header.size_bits then
    Abort "cc: field must be a NetFence header"
  else
    match ctx.env.Env.netfence with
    | None -> Continue (* not a bottleneck router: leave feedback alone *)
    | Some policer -> (
        match fn_location_base ctx.view ctx.fn ~span_off_bits:0 with
        | Error e -> Abort ("cc: " ^ e)
        | Ok base -> (
            let size = Bitbuf.length ctx.view.Packet.buf in
            match
              Dip_netfence.Policer.police policer ctx.view.Packet.buf ~base
                ~now:ctx.now ~size
            with
            | Dip_netfence.Policer.Pass | Dip_netfence.Policer.Marked ->
                Continue
            | Dip_netfence.Policer.Dropped -> Abort "cc-rate-exceeded"))

(* --- F_tel (key 14): in-band telemetry --- *)

let f_tel ctx =
  match fn_location_base ctx.view ctx.fn ~span_off_bits:0 with
  | Error e -> Abort ("tel: " ^ e)
  | Ok base ->
      let region_bytes = ctx.fn.Fn.field.Field.len_bits / 8 in
      if ctx.fn.Fn.field.Field.len_bits mod 8 <> 0 || region_bytes < 9 then
        Abort "tel: region must be byte-sized and hold one record"
      else begin
        (* Telemetry is strictly best-effort: overflow sets a bit and
           forwarding continues. *)
        ignore
          (Telemetry.append ctx.view.Packet.buf ~base ~region_bytes
             {
               Telemetry.node_id = ctx.env.Env.node_id;
               timestamp = Int32.of_float (ctx.now *. 1e6);
               queue_depth = ctx.env.Env.queue_depth ();
             });
        Continue
      end

(* --- F_hvf (key 15): EPIC per-hop validation --- *)

let f_hvf ctx =
  let len = ctx.fn.Fn.field.Field.len_bits in
  if len < 224 || (len - 192) mod 32 <> 0 then
    Abort "hvf: field must span 192 + 32*hops bits"
  else
    match ctx.env.Env.opt_secret with
    | None -> Abort "no-hvf-identity"
    | Some secret -> (
        match fn_location_base ctx.view ctx.fn ~span_off_bits:0 with
        | Error e -> Abort ("hvf: " ^ e)
        | Ok base ->
            let hops = (len - 192) / 32 in
            let hop = ctx.env.Env.opt_hop in
            if hop > hops then Abort "hvf: hop index beyond region"
            else
              let key =
                Dip_epic.Protocol.derive_key secret
                  ~src:(Dip_epic.Header.get_src ctx.view.Packet.buf ~base)
                  ~timestamp:
                    (Dip_epic.Header.get_timestamp ctx.view.Packet.buf ~base)
              in
              (* "Every packet is checked": an invalid HVF is dropped
                 at the router, not at the destination. *)
              (match
                 Dip_epic.Protocol.router_check ctx.view.Packet.buf ~base ~hop
                   ~key
               with
              | Dip_epic.Protocol.Forwarded -> Continue
              | Dip_epic.Protocol.Rejected -> Abort "hvf-rejected"))

(* --- F_cust (key 16): DTN custody transfer --- *)

(* Ignorable by design (§2.4): a router without a custody store — or
   without the operation installed at all — leaves the region alone
   and the packet falls back to pure end-to-end recovery. A custodian
   stores a copy of the whole packet, marks the in-custody bit, and
   ACKs one hop upstream through the scratch emit channel (the packet
   itself must keep forwarding, so the ACK cannot be a [Respond]). *)
let f_cust ctx =
  if ctx.fn.Fn.field.Field.len_bits <> Custody.region_bits then
    Abort "cust: field must be 40 bits"
  else if ctx.target.Field.off_bits mod 8 <> 0 then
    Abort "cust: region not byte aligned"
  else begin
    let buf = ctx.view.Packet.buf in
    let base = ctx.target.Field.off_bits / 8 in
    let flags = Custody.read_flags buf ~base in
    let bundle = Custody.read_bundle buf ~base in
    let ack_upstream () =
      ctx.scratch.emit <-
        (ctx.ingress, Custody.build_ack ~bundle) :: ctx.scratch.emit;
      Dip_netsim.Stats.Counters.incr ctx.env.Env.counters "custody.ack"
    in
    if flags land Custody.flag_ack <> 0 then begin
      (* Hop-local custody ACK: downstream holds the bundle now. *)
      (match ctx.env.Env.custody with
      | Some store -> ignore (Dip_tables.Custody_store.release store bundle)
      | None -> ());
      Silent
    end
    else if flags land Custody.flag_request = 0 then Continue
    else
      match ctx.env.Env.custody with
      | None -> Continue (* not a custodian: forward untouched *)
      | Some store ->
          if Dip_tables.Custody_store.mem store bundle then begin
            (* Upstream retransmitted: its custody ACK was lost.
               Re-ACK so the upstream copy is released. *)
            ack_upstream ();
            Continue
          end
          else begin
            Bitbuf.set_uint8 buf base (flags lor Custody.flag_in_custody);
            match
              Dip_tables.Custody_store.take store bundle (Bitbuf.copy buf)
            with
            | `Stored ->
                ack_upstream ();
                Continue
            | `Rejected ->
                (* Store bounds refuse the bundle: upstream keeps
                   custody, we forward without taking over. *)
                Bitbuf.set_uint8 buf base flags;
                Continue
          end
  end

let default_registry () =
  let r = Registry.empty () in
  Registry.install r Opkey.F_32_match f_32_match;
  Registry.install r Opkey.F_128_match f_128_match;
  Registry.install r Opkey.F_source f_source;
  Registry.install r Opkey.F_fib f_fib;
  Registry.install r Opkey.F_pit f_pit;
  Registry.install r Opkey.F_parm f_parm;
  Registry.install r Opkey.F_mac f_mac;
  Registry.install r Opkey.F_mark f_mark;
  Registry.install r Opkey.F_ver f_ver;
  Registry.install r Opkey.F_dag f_dag;
  Registry.install r Opkey.F_intent f_intent;
  Registry.install r Opkey.F_pass f_pass;
  Registry.install r Opkey.F_cc f_cc;
  Registry.install r Opkey.F_tel f_tel;
  Registry.install r Opkey.F_hvf f_hvf;
  Registry.install r Opkey.F_cust f_cust;
  r
