(** The DIP packet processing engine — Algorithm 1 of the paper.

    {v
    parse basic DIP header (FN_Num and FN_LocLen);
    parse FN[] according to FN_Num;
    extract FN_Loc according to FN_LocLen;
    for i ← 1 to FN_Num do
      if FN[i].tag == 1 then continue        (skip host operation)
      else
        target_field ← FN_Loc(FN[i].FieldLoc, FN[i].FieldLen);
        switch FN[i].key do … dispatch to the operation module
    end processing
    v}

    {!process} is the router-side loop (skips host-tagged FNs,
    decrements the hop limit when forwarding); {!host_process} is the
    receiving host's dual (runs only host-tagged FNs, e.g.
    {i F_ver}). Both enforce the §2.4 guard budget and the §2.4
    heterogeneous-deployment rule: an uninstalled operation key is
    skipped if ignorable and generates an FN-unsupported notification
    if it requires all-path participation. *)

type verdict =
  | Forwarded of Env.port list
  | Delivered
  | Responded of Dip_bitbuf.Bitbuf.t
      (** a reply (e.g. cached data) to send out of the ingress port *)
  | Quiet  (** processed but nothing to transmit (aggregation) *)
  | Dropped of string
  | Unsupported of Opkey.t
      (** a mandatory FN this node does not support; the caller
          should return {!Errors.fn_unsupported} to the source *)

(** Execution accounting, consumed by the PISA cost model and the
    parallelism ablation. *)
type info = {
  ops_run : int;  (** router FNs actually executed *)
  ops_skipped : int;  (** host-tagged or unsupported-but-ignorable *)
  state_bytes : int;  (** §2.4 state consumed (PIT inserts etc.) *)
  parallel_depth : int;
      (** length of the FN dependency critical path over the FNs that
          actually executed (tag-skipped and unknown-ignorable FNs
          contribute no dataplane work): with the §2.2 parallel bit
          set, a modular-parallel dataplane finishes in this many
          sequential steps instead of [ops_run] *)
}

val mandatory : Opkey.t -> bool
(** Keys that "require all on-path ASes to participate" (§2.4): the
    OPT path-authentication operations. *)

val critical_path : Fn.t array -> int
(** Length of the FN dependency critical path over a whole program:
    FNs whose target fields overlap are serialized, everything else
    may run concurrently (§2.2 parallel bit). This is the engine's
    conservative (access-mode-blind) estimate; the {!Dip_analysis}
    verifier recomputes it from declared {!Registry.access} modes and
    cross-checks the two. [parallel_depth] restricts the same
    analysis to the executed subset. *)

val critical_path_over : Fn.t array -> included:(int -> bool) -> int
(** {!critical_path} restricted to the FNs whose index satisfies
    [included] — what [parallel_depth] reports when some FNs were
    skipped. *)

val process :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  registry:Registry.t ->
  Env.t ->
  now:float ->
  ingress:Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  verdict * info
(** Router-side Algorithm 1. Mutates the packet in place (tag
    updates, pointer advances, hop limit). When [verify] is given it
    runs on the parsed view {e before} any FN executes; an [Error e]
    fails fast with [Dropped ("verify: " ^ e)] — pass
    [Dip_analysis.verifier] to statically reject malformed FN
    programs.

    When [obs] is given, per-opkey run/skip/error counts, verdict
    tallies and (sampled) execution spans are recorded through it
    ({!Obs}); without it the loop stays allocation- and clock-free.

    Parsing and verification go through the node's
    {!Env.prog_cache}: packets whose basic-header + FN-definition
    prefix was seen before reuse the decoded program and the memoized
    verify verdict (so [verify] is called at most once per cached
    program — it must be a pure function of the FN program, which
    {!Dip_analysis.verifier} is). Disable the cache
    ([Progcache.set_enabled], or [Env.create ~prog_cache_capacity:0])
    to force cold parsing. *)

val host_process :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  registry:Registry.t ->
  Env.t ->
  now:float ->
  ingress:Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  verdict * info
(** Host-side: executes only host-tagged FNs; a packet with no host
    FNs is simply delivered. *)

val actions_of_verdict :
  Env.t ->
  ingress:Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  verdict ->
  Dip_netsim.Sim.action list
(** The router-side verdict → simulator-action translation {!handler}
    applies: [Forwarded] becomes per-port transmissions (with fan-out
    buffer copies), [Unsupported] becomes the §2.3 FN-unsupported
    notification plus a drop, and so on. Counts the verdict into
    [env]'s counters. Also drains the auxiliary-transmission channel
    ([scratch.emit] — custody ACKs pushed by F_cust during the
    preceding [process]) into leading [Forward] actions. Exposed so
    batched dispatchers ({!Dip_mcore.Pool}) can produce action lists
    off the handler path. *)

(** {1 Batch processing}

    The data-plane entry points for {!Dip_mcore}-style batched
    dispatch. A batch shares one progcache hint across its packets —
    a run of same-program packets costs one byte-compare each instead
    of a key allocation plus an LRU probe — and publishes cache
    stats / obs gauges once per batch rather than once per packet. *)

type batch

val batch_start :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  ?hint:Progcache.hint ->
  registry:Registry.t ->
  Env.t ->
  batch
(** Open a router-side batch on [env]. The batch must not outlive
    control-plane changes to [env]'s program cache or registry (its
    parse hint pins cache entries — see {!Progcache.hint}).

    [hint] lets a long-lived dispatcher ({!Dip_mcore.Pool} workers)
    carry one warm parse hint across {e many} batches on the same
    env: without it every batch re-arms a cold hint, and the first
    packet of each batch pays the full key-hash + LRU probe even in
    the steady state of small per-worker batches. The same lifetime
    rule applies to the caller-owned hint — it must be dropped with
    the env/cache it was warmed on. *)

val batch_step :
  batch -> now:float -> ingress:Env.port -> Dip_bitbuf.Bitbuf.t -> verdict * info
(** Process one packet of the batch; semantically identical to
    {!process} with the batch's [obs]/[verify]/[registry]. *)

val batch_finish : batch -> unit
(** Publish the per-batch deferred accounting (progcache counters
    into [env]'s {!Dip_netsim.Stats.Counters}, obs cache gauges). *)

val process_batch :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  registry:Registry.t ->
  Env.t ->
  now:float ->
  ingress:Env.port ->
  Dip_bitbuf.Bitbuf.t array ->
  (verdict * info) array
(** [batch_start] / [batch_step] over every buffer / [batch_finish].
    Equivalent to folding {!process} over the array (same verdicts,
    drops, and per-opkey obs counts) — the batch property the test
    suite checks — but with the per-packet setup amortized. Packets
    are mutated in place exactly as {!process} does. *)

val handler :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  registry:Registry.t ->
  Env.t ->
  Dip_netsim.Sim.handler
(** A DIP router as a simulator node. Unsupported-FN verdicts send
    an {!Errors.fn_unsupported} notification back out the ingress
    port. With [obs], the handler additionally mirrors the node's
    program-cache totals into the [engine.progcache.*] gauges after
    every packet. *)

val host_handler :
  ?obs:Obs.t ->
  ?verify:(Packet.view -> (unit, string) result) ->
  registry:Registry.t ->
  Env.t ->
  Dip_netsim.Sim.handler
(** A DIP end host as a simulator node. *)
