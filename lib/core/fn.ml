module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field

type tag = Router | Host
type t = { field : Field.t; key : Opkey.t; tag : tag }

let v ?(tag = Router) ~loc ~len key =
  if loc < 0 || loc > 0xFFFF then invalid_arg "Fn.v: location exceeds 16 bits";
  if len <= 0 || len > 0xFFFF then invalid_arg "Fn.v: length exceeds 16 bits";
  { field = Field.v ~off_bits:loc ~len_bits:len; key; tag }

let size = 6

let encode t buf ~pos =
  Bitbuf.set_uint16 buf pos t.field.Field.off_bits;
  Bitbuf.set_uint16 buf (pos + 2) t.field.Field.len_bits;
  let tag_bit = match t.tag with Host -> 0x8000 | Router -> 0 in
  Bitbuf.set_uint16 buf (pos + 4) (tag_bit lor Opkey.to_int t.key)

let decode buf ~pos =
  if pos < 0 || pos + size > Bitbuf.length buf then Error "truncated FN triple"
  else
    let loc = Bitbuf.get_uint16 buf pos in
    let len = Bitbuf.get_uint16 buf (pos + 2) in
    let raw_key = Bitbuf.get_uint16 buf (pos + 4) in
    let tag = if raw_key land 0x8000 <> 0 then Host else Router in
    if len = 0 then Error "zero-length FN field"
    else
      match Opkey.of_int (raw_key land 0x7FFF) with
      | None -> Error (Printf.sprintf "unknown operation key %d" (raw_key land 0x7FFF))
      | Some key -> Ok { field = Field.v ~off_bits:loc ~len_bits:len; key; tag }

let equal a b = Field.equal a.field b.field && Opkey.equal a.key b.key && a.tag = b.tag

let pp fmt t =
  Format.fprintf fmt "(loc: %d, len: %d, key: %d%s)" t.field.Field.off_bits
    t.field.Field.len_bits (Opkey.to_int t.key)
    (match t.tag with Host -> ", host" | Router -> "")
