module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

type header = {
  src : Ipaddr.V6.t;
  dst : Ipaddr.V6.t;
  hop_limit : int;
  next_header : int;
  payload_len : int;
}

let header_size = 40

let encode h ~payload =
  if h.hop_limit < 0 || h.hop_limit > 255 then invalid_arg "Ipv6.encode: bad hop limit";
  if h.next_header < 0 || h.next_header > 255 then
    invalid_arg "Ipv6.encode: bad next header";
  if h.payload_len <> String.length payload then
    invalid_arg "Ipv6.encode: payload_len mismatch";
  if h.payload_len > 0xFFFF then invalid_arg "Ipv6.encode: payload too large";
  let b = Bitbuf.create (header_size + String.length payload) in
  Bitbuf.set_uint8 b 0 0x60 (* version 6, traffic class 0 *);
  (* bytes 1-3: traffic class low nibble + flow label, all zero *)
  Bitbuf.set_uint16 b 4 h.payload_len;
  Bitbuf.set_uint8 b 6 h.next_header;
  Bitbuf.set_uint8 b 7 h.hop_limit;
  Bitbuf.blit ~src:(Bitbuf.of_string (Ipaddr.V6.to_wire h.src)) ~src_off:0
    ~dst:b ~dst_off:8 ~len:16;
  Bitbuf.blit ~src:(Bitbuf.of_string (Ipaddr.V6.to_wire h.dst)) ~src_off:0
    ~dst:b ~dst_off:24 ~len:16;
  Bitbuf.blit ~src:(Bitbuf.of_string payload) ~src_off:0 ~dst:b
    ~dst_off:header_size ~len:(String.length payload);
  b

let field_addr off =
  Dip_bitbuf.Field.v ~off_bits:(8 * off) ~len_bits:128

let decode buf =
  if Bitbuf.length buf < header_size then Error "truncated header"
  else if Bitbuf.get_uint8 buf 0 lsr 4 <> 6 then Error "not IPv6"
  else
    let payload_len = Bitbuf.get_uint16 buf 4 in
    if header_size + payload_len > Bitbuf.length buf then Error "bad payload length"
    else
      Ok
        {
          src = Ipaddr.V6.of_wire (Bitbuf.get_field buf (field_addr 8));
          dst = Ipaddr.V6.of_wire (Bitbuf.get_field buf (field_addr 24));
          hop_limit = Bitbuf.get_uint8 buf 7;
          next_header = Bitbuf.get_uint8 buf 6;
          payload_len;
        }

let decrement_hop_limit buf =
  let hl = Bitbuf.get_uint8 buf 7 in
  if hl <= 1 then false
  else begin
    Bitbuf.set_uint8 buf 7 (hl - 1);
    true
  end

type route_table = Dip_netsim.Sim.port Dip_tables.Fib.V6.t

let add_route table prefix port =
  match prefix.Ipaddr.Prefix.addr with
  | Ipaddr.Prefix.V6 a ->
      Dip_tables.Fib.V6.insert table a ~len:prefix.Ipaddr.Prefix.len port
  | Ipaddr.Prefix.V4 _ -> invalid_arg "Ipv6.add_route: v4 prefix in v6 table"

type verdict =
  | Forward of Dip_netsim.Sim.port
  | Deliver
  | Discard of string

let forward ?local table buf =
  match decode buf with
  | Error e -> Discard e
  | Ok h -> (
      if local = Some h.dst then Deliver
      else
        match Dip_tables.Fib.V6.lookup table h.dst with
        | None -> Discard "no-route"
        | Some (_, port) ->
            if decrement_hop_limit buf then Forward port
            else Discard "hop-limit-expired")

let handler ?local table _sim ~now:_ ~ingress:_ packet =
  match forward ?local table packet with
  | Forward port -> [ Dip_netsim.Sim.Forward (port, packet) ]
  | Deliver -> [ Dip_netsim.Sim.Consume ]
  | Discard reason -> [ Dip_netsim.Sim.Drop reason ]
