(** IPv6 header codec and native forwarding — the "IPv6 forwarding"
    baseline of Figure 2 and the 40-byte row of Table 2.

    A fixed 40-byte RFC 8200 header. IPv6 has no header checksum, so
    the per-hop work is parse, LPM over 128 bits, hop-limit
    decrement, emit. *)

type header = {
  src : Dip_tables.Ipaddr.V6.t;
  dst : Dip_tables.Ipaddr.V6.t;
  hop_limit : int;
  next_header : int;
  payload_len : int;
}

val header_size : int
(** 40 bytes. *)

val encode : header -> payload:string -> Dip_bitbuf.Bitbuf.t
val decode : Dip_bitbuf.Bitbuf.t -> (header, string) result

val decrement_hop_limit : Dip_bitbuf.Bitbuf.t -> bool
(** In-place decrement; [false] when the packet must be dropped. *)

type route_table = Dip_netsim.Sim.port Dip_tables.Fib.V6.t
(** Routes live in the compressed stride-8 multibit trie
    ({!Dip_tables.Fib.V6}). *)

val add_route : route_table -> Dip_tables.Ipaddr.Prefix.t -> Dip_netsim.Sim.port -> unit

type verdict =
  | Forward of Dip_netsim.Sim.port
  | Deliver
  | Discard of string

val forward :
  ?local:Dip_tables.Ipaddr.V6.t -> route_table -> Dip_bitbuf.Bitbuf.t -> verdict

val handler : ?local:Dip_tables.Ipaddr.V6.t -> route_table -> Dip_netsim.Sim.handler
