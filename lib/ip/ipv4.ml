module Bitbuf = Dip_bitbuf.Bitbuf
module Ipaddr = Dip_tables.Ipaddr

type header = {
  src : Ipaddr.V4.t;
  dst : Ipaddr.V4.t;
  ttl : int;
  protocol : int;
  payload_len : int;
}

let header_size = 20

(* One's-complement sum over 16-bit words of the header (RFC 1071). *)
let internet_checksum buf ~pos ~len =
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + Bitbuf.get_uint16 buf (pos + !i);
    i := !i + 2
  done;
  if !i < len then sum := !sum + (Bitbuf.get_uint8 buf (pos + !i) lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let encode h ~payload =
  if h.ttl < 0 || h.ttl > 255 then invalid_arg "Ipv4.encode: bad ttl";
  if h.protocol < 0 || h.protocol > 255 then invalid_arg "Ipv4.encode: bad protocol";
  if h.payload_len <> String.length payload then
    invalid_arg "Ipv4.encode: payload_len mismatch";
  let total = header_size + String.length payload in
  if total > 0xFFFF then invalid_arg "Ipv4.encode: packet too large";
  let b = Bitbuf.create total in
  Bitbuf.set_uint8 b 0 0x45 (* version 4, IHL 5 *);
  Bitbuf.set_uint8 b 1 0 (* DSCP/ECN *);
  Bitbuf.set_uint16 b 2 total;
  Bitbuf.set_uint16 b 4 0 (* identification *);
  Bitbuf.set_uint16 b 6 0 (* flags/fragment *);
  Bitbuf.set_uint8 b 8 h.ttl;
  Bitbuf.set_uint8 b 9 h.protocol;
  Bitbuf.set_uint16 b 10 0 (* checksum placeholder *);
  Bitbuf.set_uint32 b 12 h.src;
  Bitbuf.set_uint32 b 16 h.dst;
  Bitbuf.set_uint16 b 10 (internet_checksum b ~pos:0 ~len:header_size);
  Bitbuf.blit ~src:(Bitbuf.of_string payload) ~src_off:0 ~dst:b
    ~dst_off:header_size ~len:(String.length payload);
  b

let checksum_valid buf =
  Bitbuf.length buf >= header_size
  && internet_checksum buf ~pos:0 ~len:header_size = 0

let decode buf =
  if Bitbuf.length buf < header_size then Error "truncated header"
  else
    let vihl = Bitbuf.get_uint8 buf 0 in
    if vihl lsr 4 <> 4 then Error "not IPv4"
    else if vihl land 0xF <> 5 then Error "options unsupported"
    else if not (checksum_valid buf) then Error "bad checksum"
    else
      let total = Bitbuf.get_uint16 buf 2 in
      if total < header_size || total > Bitbuf.length buf then
        Error "bad total length"
      else
        Ok
          {
            src = Bitbuf.get_uint32 buf 12;
            dst = Bitbuf.get_uint32 buf 16;
            ttl = Bitbuf.get_uint8 buf 8;
            protocol = Bitbuf.get_uint8 buf 9;
            payload_len = total - header_size;
          }

(* RFC 1624 incremental update: the TTL lives in the high byte of
   word 4, so decrementing it subtracts 0x0100 from that word. *)
let decrement_ttl buf =
  let ttl = Bitbuf.get_uint8 buf 8 in
  if ttl <= 1 then false
  else begin
    Bitbuf.set_uint8 buf 8 (ttl - 1);
    let sum = Bitbuf.get_uint16 buf 10 + 0x0100 in
    let sum = (sum land 0xFFFF) + (sum lsr 16) in
    Bitbuf.set_uint16 buf 10 (sum land 0xFFFF);
    true
  end

type route_table = Dip_netsim.Sim.port Dip_tables.Fib.V4.t

let add_route table prefix port =
  match prefix.Ipaddr.Prefix.addr with
  | Ipaddr.Prefix.V4 a ->
      Dip_tables.Fib.V4.insert table a ~len:prefix.Ipaddr.Prefix.len port
  | Ipaddr.Prefix.V6 _ -> invalid_arg "Ipv4.add_route: v6 prefix in v4 table"

type verdict =
  | Forward of Dip_netsim.Sim.port
  | Deliver
  | Discard of string

let forward ?local table buf =
  match decode buf with
  | Error e -> Discard e
  | Ok h -> (
      if local = Some h.dst then Deliver
      else
        match Dip_tables.Fib.V4.lookup table h.dst with
        | None -> Discard "no-route"
        | Some (_, port) ->
            if decrement_ttl buf then Forward port else Discard "ttl-expired")

(* The binary-trie path survives as the correctness oracle and the
   bench baseline, on the direct int32 fast path (no closure per
   bit). *)
type trie_table = Dip_netsim.Sim.port Dip_tables.Lpm_trie.t

let add_route_trie table prefix port =
  match prefix.Ipaddr.Prefix.addr with
  | Ipaddr.Prefix.V4 a ->
      Dip_tables.Lpm_trie.insert table ~bits:(Ipaddr.V4.bit a)
        ~len:prefix.Ipaddr.Prefix.len port
  | Ipaddr.Prefix.V6 _ ->
      invalid_arg "Ipv4.add_route_trie: v6 prefix in v4 table"

let forward_trie ?local table buf =
  match decode buf with
  | Error e -> Discard e
  | Ok h -> (
      if local = Some h.dst then Deliver
      else
        match Dip_tables.Lpm_trie.lookup_ipv4 table h.dst with
        | None -> Discard "no-route"
        | Some (_, port) ->
            if decrement_ttl buf then Forward port else Discard "ttl-expired")

let handler ?local table _sim ~now:_ ~ingress:_ packet =
  match forward ?local table packet with
  | Forward port -> [ Dip_netsim.Sim.Forward (port, packet) ]
  | Deliver -> [ Dip_netsim.Sim.Consume ]
  | Discard reason -> [ Dip_netsim.Sim.Drop reason ]
