(** IPv4 header codec and native forwarding — the paper's "IPv4
    forwarding" baseline in Figure 2 and the 20-byte row of Table 2.

    A faithful 20-byte RFC 791 header (no options) with the Internet
    checksum, so the native baseline does the same per-hop work a
    real IP router does: parse, checksum-verify, LPM, TTL decrement,
    incremental checksum update, emit. *)

type header = {
  src : Dip_tables.Ipaddr.V4.t;
  dst : Dip_tables.Ipaddr.V4.t;
  ttl : int;
  protocol : int;
  payload_len : int;
}

val header_size : int
(** 20 bytes. *)

val encode : header -> payload:string -> Dip_bitbuf.Bitbuf.t
(** Serialize header + payload with a correct checksum. *)

val decode : Dip_bitbuf.Bitbuf.t -> (header, string) result
(** Parse and verify: version, header length, checksum, total
    length. Returns [Error reason] on malformed packets. *)

val checksum_valid : Dip_bitbuf.Bitbuf.t -> bool
(** Recompute the header checksum of an encoded packet. *)

val decrement_ttl : Dip_bitbuf.Bitbuf.t -> bool
(** In-place TTL decrement with the RFC 1624 incremental checksum
    update; returns [false] (and leaves the packet unchanged) when
    the TTL is already 0 or 1 — the packet must be dropped. *)

type route_table = Dip_netsim.Sim.port Dip_tables.Fib.V4.t
(** Routes live in the DIR-24-8 flat-array engine
    ({!Dip_tables.Fib.V4}) — what a real line card holds. *)

val add_route : route_table -> Dip_tables.Ipaddr.Prefix.t -> Dip_netsim.Sim.port -> unit
(** Install a v4 prefix route. Raises [Invalid_argument] on a v6
    prefix. *)

type verdict =
  | Forward of Dip_netsim.Sim.port
  | Deliver  (** addressed to this router/host *)
  | Discard of string

val forward :
  ?local:Dip_tables.Ipaddr.V4.t -> route_table -> Dip_bitbuf.Bitbuf.t -> verdict
(** One native forwarding step: validate, check for local delivery,
    LPM, TTL decrement (mutating the packet). This is the function
    the Figure 2 baseline benchmarks. *)

type trie_table = Dip_netsim.Sim.port Dip_tables.Lpm_trie.t
(** The pre-Fib binary-trie table, kept as the correctness oracle
    and the `bench fib` baseline. *)

val add_route_trie :
  trie_table -> Dip_tables.Ipaddr.Prefix.t -> Dip_netsim.Sim.port -> unit

val forward_trie :
  ?local:Dip_tables.Ipaddr.V4.t -> trie_table -> Dip_bitbuf.Bitbuf.t -> verdict
(** {!forward} against the trie, on the {!Dip_tables.Lpm_trie.lookup_ipv4}
    fast path. *)

val handler : ?local:Dip_tables.Ipaddr.V4.t -> route_table -> Dip_netsim.Sim.handler
(** Wrap {!forward} as a simulator node. *)
