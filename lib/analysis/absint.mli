(** Abstract interpretation of FN programs over a per-bit-slice store.

    The declared transfer functions ({!Dip_core.Registry.transfer})
    are executed over an abstract store mapping disjoint bit slices
    of the FN-locations region to values: exact bytes ([Bytes], the
    slice still holds what the packet carried or a reconstructable
    constant) or abstract values ([Abs]) that remember {e how} and
    {e by which FNs} the slice may have been written. Scratch cells
    are tracked by name with their producer's FN index.

    This is the middle-end shared by the per-program checks in
    {!Dip_analysis} (dependency chains, parallel-ordering hazards,
    the Sharding check) and the topology-wide reachability pass in
    {!Reach}. *)

(** Abstract classification of a written slice, the lattice join of
    {!Dip_core.Registry.written_kind}: [K_top] when joins mix
    kinds. *)
type kind = K_step | K_node | K_data | K_top

val kind_of_written : Dip_core.Registry.written_kind -> kind
val join_kind : kind -> kind -> kind
val kind_name : kind -> string

type value =
  | Bytes of string
      (** exact MSB-aligned bytes of the slice
          ({!Dip_bitbuf.Bitbuf.get_field} convention) *)
  | Abs of kind * int list
      (** abstractly known: the kind of write and the sorted FN
          indices that may have produced it (empty for the initial
          unknown region) *)

val writers_of : value -> int list
val join_value : value -> value -> value

type store
(** Disjoint sorted slices covering the whole locations region. *)

val init : bits:int -> ?bytes:string -> unit -> store
(** A store of [bits] bits, initially one slice: exact [bytes] (the
    packet's locations region) when given, unknown otherwise. *)

val read : store -> Dip_bitbuf.Field.t -> value
(** The value of a slice, reassembling exact bytes across cell
    boundaries when possible. Out-of-region bits read as unknown. *)

val write : store -> Dip_bitbuf.Field.t -> value -> store
val writers_in : store -> Dip_bitbuf.Field.t -> int list
val join : store -> store -> store
val equal : store -> store -> bool

(** {1 Abstract execution} *)

(** The execution side: Algorithm 1 skips host-tagged FNs on routers
    and router-tagged FNs on hosts. *)
type side = Router | Host

val side_of_tag : Dip_core.Fn.tag -> side

type step = {
  st_index : int;  (** original program index *)
  st_fn : Dip_core.Fn.t;
  st_ran : bool;
      (** executed on this side: tag matches and (given a registry)
          the key is installed *)
  st_reads : Dip_bitbuf.Field.t list;  (** resolved read slices *)
  st_reads_region : bool;
  st_writes : (Dip_bitbuf.Field.t * Dip_core.Registry.written_kind) list;
  st_read_writers : int list;
      (** FN indices whose written slices this FN read — the true
          dependence edges, at any chain depth *)
  st_value : value option;
      (** the value of the target's first read slice at execution
          time — for a match FN, the value the forwarding decision
          keys on *)
  st_scratch_deps : (string * int) list;
      (** consumed scratch cells with their producer *)
  st_missing_scratch : string list;
      (** consumed scratch cells no earlier same-side FN produced *)
}

type exec_result = {
  steps : step list;
  store : store;
  scratch : (string * int) list;
}

val resolved :
  region_bits:int ->
  Dip_core.Fn.t ->
  Dip_bitbuf.Field.t list
  * (Dip_bitbuf.Field.t * Dip_core.Registry.written_kind) list
  * Dip_core.Registry.transfer
(** The FN's declared reads and writes resolved against its concrete
    target field and clipped to the region. *)

val exec :
  ?registry:Dip_core.Registry.t ->
  ?store:store ->
  ?bytes:string ->
  side:side ->
  region_bits:int ->
  (int * Dip_core.Fn.t) list ->
  exec_result
(** Run a program abstractly on one side. [store] (or else [bytes])
    seeds the region; FNs whose tag is for the other side, or whose
    key the given registry has not installed, are skipped exactly as
    Algorithm 1 skips them. *)
