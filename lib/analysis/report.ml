module Field = Dip_bitbuf.Field

type severity = Error | Warning

type check =
  | Parse
  | Bounds
  | Race
  | Dependency
  | Key
  | Tag
  | Deployment
  | Loop
  | Blackhole
  | Sharding

type diag = {
  severity : severity;
  check : check;
  fn_index : int option;
  field : Field.t option;
  message : string;
}

type t = {
  diags : diag list;
  fn_count : int;
  depth : int;
  engine_depth : int;
}

let diag severity ?fn_index ?field check message =
  { severity; check; fn_index; field; message }

let error ?fn_index ?field check message =
  diag Error ?fn_index ?field check message

let warning ?fn_index ?field check message =
  diag Warning ?fn_index ?field check message

let count sev t =
  List.length (List.filter (fun d -> d.severity = sev) t.diags)

let errors t = count Error t
let warnings t = count Warning t
let ok t = errors t = 0
let clean t = t.diags = []

let check_name = function
  | Parse -> "parse"
  | Bounds -> "bounds"
  | Race -> "race"
  | Dependency -> "dependency"
  | Key -> "key"
  | Tag -> "tag"
  | Deployment -> "deployment"
  | Loop -> "loop"
  | Blackhole -> "blackhole"
  | Sharding -> "sharding"

let check_of_name = function
  | "parse" -> Some Parse
  | "bounds" -> Some Bounds
  | "race" -> Some Race
  | "dependency" -> Some Dependency
  | "key" -> Some Key
  | "tag" -> Some Tag
  | "deployment" -> Some Deployment
  | "loop" -> Some Loop
  | "blackhole" -> Some Blackhole
  | "sharding" -> Some Sharding
  | _ -> None

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_diag fmt d =
  (match d.fn_index with
  | Some i -> Format.fprintf fmt "FN %d" (i + 1)
  | None -> Format.pp_print_string fmt "packet");
  (match d.field with
  | Some f ->
      Format.fprintf fmt " [bits %d..%d)" f.Field.off_bits (Field.last_bit f)
  | None -> ());
  Format.fprintf fmt ": %s (%s): %s" (severity_name d.severity)
    (check_name d.check) d.message

let first_error t =
  List.find_opt (fun d -> d.severity = Error) t.diags
  |> Option.map (Format.asprintf "%a" pp_diag)

(* Hand-rolled JSON so the analyzer stays dependency-free; messages
   only need string escaping. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_to_json d =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"severity\":\"%s\",\"check\":\"%s\""
       (severity_name d.severity) (check_name d.check));
  (match d.fn_index with
  | Some i -> Buffer.add_string b (Printf.sprintf ",\"fn\":%d" (i + 1))
  | None -> ());
  (match d.field with
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf ",\"bits\":[%d,%d]" f.Field.off_bits (Field.last_bit f))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"message\":\"%s\"}" (json_escape d.message));
  Buffer.contents b

let to_json ?label t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  (match label with
  | Some l -> Buffer.add_string b (Printf.sprintf "\"label\":\"%s\"," (json_escape l))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf
       "\"fn_count\":%d,\"depth\":%d,\"engine_depth\":%d,\"errors\":%d,\"warnings\":%d,\"diags\":["
       t.fn_count t.depth t.engine_depth (errors t) (warnings t));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (diag_to_json d))
    t.diags;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "@[<v>%d FN(s), depth %d" t.fn_count t.depth;
  if t.engine_depth <> t.depth then
    Format.fprintf fmt " (engine estimate %d)" t.engine_depth;
  if clean t then Format.fprintf fmt "; clean"
  else
    Format.fprintf fmt "; %d error(s), %d warning(s)" (errors t) (warnings t);
  List.iter (fun d -> Format.fprintf fmt "@,  %a" pp_diag d) t.diags;
  Format.fprintf fmt "@]"
