module Field = Dip_bitbuf.Field

type severity = Error | Warning

type check =
  | Parse
  | Bounds
  | Race
  | Dependency
  | Key
  | Tag
  | Deployment

type diag = {
  severity : severity;
  check : check;
  fn_index : int option;
  field : Field.t option;
  message : string;
}

type t = {
  diags : diag list;
  fn_count : int;
  depth : int;
  engine_depth : int;
}

let diag severity ?fn_index ?field check message =
  { severity; check; fn_index; field; message }

let error ?fn_index ?field check message =
  diag Error ?fn_index ?field check message

let warning ?fn_index ?field check message =
  diag Warning ?fn_index ?field check message

let count sev t =
  List.length (List.filter (fun d -> d.severity = sev) t.diags)

let errors t = count Error t
let warnings t = count Warning t
let ok t = errors t = 0
let clean t = t.diags = []

let check_name = function
  | Parse -> "parse"
  | Bounds -> "bounds"
  | Race -> "race"
  | Dependency -> "dependency"
  | Key -> "key"
  | Tag -> "tag"
  | Deployment -> "deployment"

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_diag fmt d =
  (match d.fn_index with
  | Some i -> Format.fprintf fmt "FN %d" (i + 1)
  | None -> Format.pp_print_string fmt "packet");
  (match d.field with
  | Some f ->
      Format.fprintf fmt " [bits %d..%d)" f.Field.off_bits (Field.last_bit f)
  | None -> ());
  Format.fprintf fmt ": %s (%s): %s" (severity_name d.severity)
    (check_name d.check) d.message

let first_error t =
  List.find_opt (fun d -> d.severity = Error) t.diags
  |> Option.map (Format.asprintf "%a" pp_diag)

let pp fmt t =
  Format.fprintf fmt "@[<v>%d FN(s), depth %d" t.fn_count t.depth;
  if t.engine_depth <> t.depth then
    Format.fprintf fmt " (engine estimate %d)" t.engine_depth;
  if clean t then Format.fprintf fmt "; clean"
  else
    Format.fprintf fmt "; %d error(s), %d warning(s)" (errors t) (warnings t);
  List.iter (fun d -> Format.fprintf fmt "@,  %a" pp_diag d) t.diags;
  Format.fprintf fmt "@]"
