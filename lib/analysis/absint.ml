(* Abstract interpretation of FN programs.

   Algorithm 1 is a straight-line interpreter: each FN reads and
   writes declared slices of the FN-locations region plus a few named
   scratch cells. This module executes the declared transfer
   functions (Registry.transfer) over an abstract store that maps
   disjoint bit slices of the region to abstract values, tracking for
   every slice which FNs may have written it. The per-program checks
   in Dip_analysis and the topology-wide reachability pass in Reach
   are both built on this. *)

module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
open Dip_core

type kind = K_step | K_node | K_data | K_top

let kind_of_written = function
  | Registry.W_step -> K_step
  | Registry.W_node -> K_node
  | Registry.W_data -> K_data

let join_kind a b = if a = b then a else K_top

let kind_name = function
  | K_step -> "step"
  | K_node -> "node-local"
  | K_data -> "data"
  | K_top -> "unknown"

type value =
  | Bytes of string  (* exact MSB-aligned bytes of the slice *)
  | Abs of kind * int list  (* abstract; sorted FN indices that may have written *)

let writers_of = function Bytes _ -> [] | Abs (_, w) -> w

let merge_writers a b = List.sort_uniq compare (a @ b)

let join_value a b =
  match (a, b) with
  | Bytes x, Bytes y when String.equal x y -> a
  | Bytes _, Bytes _ -> Abs (K_top, [])
  | Bytes _, Abs (_, w) | Abs (_, w), Bytes _ -> Abs (K_top, w)
  | Abs (k1, w1), Abs (k2, w2) -> Abs (join_kind k1 k2, merge_writers w1 w2)

type cell = { span : Field.t; v : value }

(* Invariant: cells are sorted by offset, pairwise disjoint, and
   cover [0, bits) exactly (no cells when [bits = 0]). *)
type store = { bits : int; cells : cell list }

let inter (a : Field.t) (b : Field.t) =
  let lo = max a.Field.off_bits b.Field.off_bits in
  let hi = min (Field.last_bit a) (Field.last_bit b) in
  if hi <= lo then None else Some (Field.v ~off_bits:lo ~len_bits:(hi - lo))

(* The value of [sub] (within [span]) given the value of [span]. *)
let sub_value (span : Field.t) v (sub : Field.t) =
  if Field.equal span sub then v
  else
    match v with
    | Abs _ -> v
    | Bytes s ->
        let b = Bitbuf.of_string s in
        Bytes
          (Bitbuf.get_field b
             (Field.v
                ~off_bits:(sub.Field.off_bits - span.Field.off_bits)
                ~len_bits:sub.Field.len_bits))

let init ~bits ?bytes () =
  if bits <= 0 then { bits = 0; cells = [] }
  else
    let v = match bytes with Some s -> Bytes s | None -> Abs (K_top, []) in
    { bits; cells = [ { span = Field.v ~off_bits:0 ~len_bits:bits; v } ] }

let region_field st = Field.v ~off_bits:0 ~len_bits:st.bits

let write st (f : Field.t) v =
  if st.bits <= 0 then st
  else
    match inter f (region_field st) with
    | None -> st
    | Some f ->
        let keep c =
          match inter c.span f with
          | None -> [ c ]
          | Some _ ->
              let lo = c.span.Field.off_bits and hi = Field.last_bit c.span in
              let wlo = max lo f.Field.off_bits
              and whi = min hi (Field.last_bit f) in
              let left =
                if wlo > lo then
                  let sp = Field.v ~off_bits:lo ~len_bits:(wlo - lo) in
                  [ { span = sp; v = sub_value c.span c.v sp } ]
                else []
              and right =
                if hi > whi then
                  let sp = Field.v ~off_bits:whi ~len_bits:(hi - whi) in
                  [ { span = sp; v = sub_value c.span c.v sp } ]
                else []
              in
              left @ right
        in
        let cells = { span = f; v } :: List.concat_map keep st.cells in
        let cells =
          List.sort
            (fun a b -> compare a.span.Field.off_bits b.span.Field.off_bits)
            cells
        in
        { st with cells }

let read st (f : Field.t) =
  if st.bits <= 0 then Abs (K_top, [])
  else
    match inter f (region_field st) with
    | None -> Abs (K_top, [])
    | Some f -> (
        let pieces =
          List.filter_map
            (fun c ->
              match inter c.span f with None -> None | Some i -> Some (c, i))
            st.cells
        in
        match pieces with
        | [] -> Abs (K_top, [])
        | [ (c, i) ] when Field.equal i f -> sub_value c.span c.v f
        | pieces ->
            let all_bytes =
              List.for_all
                (fun (c, _) -> match c.v with Bytes _ -> true | Abs _ -> false)
                pieces
            in
            if all_bytes then begin
              (* Reassemble exact bytes across cell boundaries. *)
              let out = Bitbuf.create ((f.Field.len_bits + 7) / 8) in
              List.iter
                (fun (c, i) ->
                  match sub_value c.span c.v i with
                  | Bytes s ->
                      Bitbuf.set_field out
                        (Field.v
                           ~off_bits:(i.Field.off_bits - f.Field.off_bits)
                           ~len_bits:i.Field.len_bits)
                        s
                  | Abs _ -> ())
                pieces;
              Bytes
                (Bitbuf.get_field out
                   (Field.v ~off_bits:0 ~len_bits:f.Field.len_bits))
            end
            else
              let kind =
                List.fold_left
                  (fun acc (c, _) ->
                    match c.v with
                    | Bytes _ -> acc
                    | Abs (k, _) -> (
                        match acc with
                        | None -> Some k
                        | Some k' -> Some (join_kind k k'))
                  )
                  None pieces
                |> Option.value ~default:K_top
              in
              let ws =
                List.sort_uniq compare
                  (List.concat_map (fun (c, _) -> writers_of c.v) pieces)
              in
              Abs (kind, ws))

let writers_in st f = writers_of (read st f)

let join a b =
  if a.bits <> b.bits then invalid_arg "Absint.join: store widths differ";
  if a.bits <= 0 then a
  else
    let cuts =
      List.sort_uniq compare
        (0 :: a.bits
        :: List.concat_map
             (fun st ->
               List.concat_map
                 (fun c ->
                   [ c.span.Field.off_bits; Field.last_bit c.span ])
                 st.cells)
             [ a; b ])
    in
    let rec spans = function
      | lo :: (hi :: _ as rest) ->
          (if hi > lo then [ Field.v ~off_bits:lo ~len_bits:(hi - lo) ]
           else [])
          @ spans rest
      | _ -> []
    in
    let cells =
      List.map
        (fun sp -> { span = sp; v = join_value (read a sp) (read b sp) })
        (spans cuts)
    in
    { bits = a.bits; cells }

let equal_value a b =
  match (a, b) with
  | Bytes x, Bytes y -> String.equal x y
  | Abs (k1, w1), Abs (k2, w2) -> k1 = k2 && w1 = w2
  | _ -> false

let equal a b =
  a.bits = b.bits
  && List.length a.cells = List.length b.cells
  && List.for_all2
       (fun x y -> Field.equal x.span y.span && equal_value x.v y.v)
       a.cells b.cells

(* ------------------------------------------------------------------ *)
(* Abstract execution of one program on one side.                      *)
(* ------------------------------------------------------------------ *)

type side = Router | Host

let side_of_tag = function Fn.Router -> Router | Fn.Host -> Host

type step = {
  st_index : int;  (* original program index *)
  st_fn : Fn.t;
  st_ran : bool;  (* executed on this side (tag and registry allow) *)
  st_reads : Field.t list;  (* resolved read slices *)
  st_reads_region : bool;
  st_writes : (Field.t * Registry.written_kind) list;
  st_read_writers : int list;  (* FNs whose output this one read *)
  st_value : value option;  (* value of the target's first read slice *)
  st_scratch_deps : (string * int) list;  (* consumed cell, producer *)
  st_missing_scratch : string list;  (* consumed cells with no producer *)
}

type exec_result = {
  steps : step list;
  store : store;
  scratch : (string * int) list;  (* cells produced, with producer index *)
}

let resolved ~region_bits (fn : Fn.t) =
  let tr = Registry.transfer fn.Fn.key in
  let resolve s = Registry.resolve_span ~field:fn.Fn.field ~region_bits s in
  let reads = List.filter_map resolve tr.Registry.t_reads in
  let writes =
    List.filter_map
      (fun (s, k) -> Option.map (fun f -> (f, k)) (resolve s))
      tr.Registry.t_writes
  in
  (reads, writes, tr)

let skipped i fn =
  {
    st_index = i;
    st_fn = fn;
    st_ran = false;
    st_reads = [];
    st_reads_region = false;
    st_writes = [];
    st_read_writers = [];
    st_value = None;
    st_scratch_deps = [];
    st_missing_scratch = [];
  }

let exec ?registry ?store:init_store ?bytes ~side ~region_bits program =
  let store =
    ref
      (match init_store with
      | Some st -> st
      | None -> init ~bits:region_bits ?bytes ())
  in
  let scratch : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let steps =
    List.map
      (fun (i, (fn : Fn.t)) ->
        let installed =
          match registry with
          | None -> true
          | Some r -> Registry.supports r fn.Fn.key
        in
        if side_of_tag fn.Fn.tag <> side || not installed then skipped i fn
        else begin
          let reads, writes, tr = resolved ~region_bits fn in
          let read_fields =
            if tr.Registry.t_reads_region && region_bits > 0 then
              Field.v ~off_bits:0 ~len_bits:region_bits :: reads
            else reads
          in
          let read_writers =
            List.sort_uniq compare
              (List.concat_map (fun f -> writers_in !store f) read_fields)
          in
          let value =
            match reads with f :: _ -> Some (read !store f) | [] -> None
          in
          let deps = ref [] and missing = ref [] in
          List.iter
            (fun c ->
              match Hashtbl.find_opt scratch c with
              | Some p -> deps := (c, p) :: !deps
              | None -> missing := c :: !missing)
            tr.Registry.t_consumes;
          List.iter (fun c -> Hashtbl.replace scratch c i) tr.Registry.t_produces;
          List.iter
            (fun (f, k) ->
              store := write !store f (Abs (kind_of_written k, [ i ])))
            writes;
          {
            st_index = i;
            st_fn = fn;
            st_ran = true;
            st_reads = reads;
            st_reads_region = tr.Registry.t_reads_region;
            st_writes = writes;
            st_read_writers = read_writers;
            st_value = value;
            st_scratch_deps = List.rev !deps;
            st_missing_scratch = List.rev !missing;
          }
        end)
      program
  in
  {
    steps;
    store = !store;
    scratch = Hashtbl.fold (fun k v acc -> (k, v) :: acc) scratch [];
  }
