(** Topology-wide symbolic reachability (§2.4).

    Propagates the abstract packet node by node across a
    {!Dip_netsim.Topology.t}: at each node the FN program runs
    abstractly against that node's registry, the first match FN's
    abstract value picks the successor set (a known value follows the
    node's route table; a rewritten/unknown value fans out to every
    route target), and states are joined to a fixpoint. Detects:

    - {b Loop}: a directed cycle in the traversed forwarding edges —
      nothing but basic-header hop-limit expiry bounds the packet;
    - {b Blackhole}: a reachable node with no route for the (known)
      match value, or no forwarding FN executing at all;
    - {b Deployment}: a reachable node missing a mandatory key —
      including nodes only reached {e after} an upstream FN rewrote
      the match field, which the shortest-path walk of
      {!Dip_analysis.check_deployment} cannot see. *)

type node = {
  n_registry : Dip_core.Registry.t option;
      (** [None] means every key is installed *)
  n_routes : (string * int) list;
      (** route table: exact match-field bytes
          ({!Dip_bitbuf.Bitbuf.get_field} convention) to next node *)
  n_local : string list;  (** match values delivered locally *)
}

type config = {
  c_topology : Dip_netsim.Topology.t;
  c_node : int -> node;
  c_src : int;
  c_dst : int;
}

val match_field : Dip_core.Fn.t list -> Dip_bitbuf.Field.t option
(** The region-relative target field of the first FN with forwarding
    access — the slice routing keys on and {!Dip_mcore.Flow} hashes.
    [None] when the program has no forwarding FN. *)

val match_value : Dip_core.Packet.view -> string option
(** The concrete bytes of {!match_field} in a parsed packet — handy
    for building route tables keyed the way {!check} compares. *)

val check :
  config ->
  region_bits:int ->
  ?bytes:string ->
  Dip_core.Fn.t list ->
  Report.diag list
(** Run the reachability pass for one program injected at [c_src]
    toward [c_dst]. [bytes] seeds the locations region with the
    packet's concrete contents (without it every match value is
    unknown and every node fans out). *)

val check_view : config -> Dip_core.Packet.view -> Report.diag list
(** {!check} with region size and bytes taken from a parsed packet. *)
